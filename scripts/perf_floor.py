#!/usr/bin/env python3
"""Check a bench_simcore --json run against a recorded throughput floor.

Usage: perf_floor.py run.json floor.json

Every key in floor.json (except "comment") must be present in the run and
measure at or above the floor value. Floors are set at half the recorded
baseline — a red here means a >2x simulator-throughput regression; see
docs/PERFORMANCE.md for provenance and how to re-baseline.
"""

import json
import sys


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        run = json.load(f)
    with open(sys.argv[2]) as f:
        floor = json.load(f)
    bad = []
    for key, lo in floor.items():
        if key == "comment":
            continue
        got = run.get(key)
        if got is None or got < lo:
            bad.append(f"  {key}: measured {got}, floor {lo}")
    if bad:
        print("perf smoke FAILED (>2x regression vs recorded baseline):")
        print("\n".join(bad))
        return 1
    print("perf smoke OK:",
          ", ".join(f"{k}={run[k]}" for k in floor if k != "comment"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
