#!/usr/bin/env python3
"""Check a bench_simcore --json run against a recorded throughput floor.

Usage: perf_floor.py run.json floor.json

Every numeric key in floor.json (except the meta keys below) must be present
in the run and measure at or above the floor value. Floors are set at half
the recorded baseline — a red here means a >2x simulator-throughput
regression; see docs/PERFORMANCE.md for provenance and how to re-baseline.

The floor file also declares the full key universe: every key the run JSON
emits must be either a floor or listed in the floor file's "informational"
array (keys recorded for trend-watching but not gated — wall times, raw
counts, machine-dependent speedups). A run key absent from both is an error
(exit 2, like metrics_diff.py's shape errors): it means bench_simcore
gained an output that nobody decided how to gate, which is exactly how
regressions sneak past a floor check that silently ignores unknown keys.

Meta keys in floor.json: "comment" (provenance text) and "informational"
(the ungated key list).

Exit status: 0 = all floors hold, 1 = a floor regressed, 2 = usage/shape
error (unknown run keys, or a floor key the run no longer reports).
"""

import json
import sys

META_KEYS = ("comment", "informational")


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        run = json.load(f)
    with open(sys.argv[2]) as f:
        floor = json.load(f)

    floors = {k: v for k, v in floor.items() if k not in META_KEYS}
    informational = floor.get("informational", [])
    if not isinstance(informational, list):
        print(f"perf smoke SHAPE ERROR: \"informational\" in {sys.argv[2]} "
              "must be a JSON array of key names", file=sys.stderr)
        return 2

    known = set(floors) | set(informational)
    unknown = sorted(k for k in run if k not in known)
    if unknown:
        print("perf smoke SHAPE ERROR: run reports keys the floor file "
              "doesn't know:", file=sys.stderr)
        for k in unknown:
            print(f"  {k}", file=sys.stderr)
        print(f"Add each to {sys.argv[2]} — as a floor value to gate it, or "
              "to the \"informational\" list to record it ungated.",
              file=sys.stderr)
        return 2

    missing = sorted(k for k in floors if k not in run)
    if missing:
        print("perf smoke SHAPE ERROR: floor keys absent from the run "
              "(bench output shrank or was renamed):", file=sys.stderr)
        for k in missing:
            print(f"  {k}", file=sys.stderr)
        return 2

    bad = [f"  {key}: measured {run[key]}, floor {lo}"
           for key, lo in floors.items() if run[key] < lo]
    if bad:
        print("perf smoke FAILED (>2x regression vs recorded baseline):")
        print("\n".join(bad))
        return 1
    print("perf smoke OK:", ", ".join(f"{k}={run[k]}" for k in floors))
    return 0


if __name__ == "__main__":
    sys.exit(main())
