#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# then check bench metrics against the committed golden runs.
# This is the exact command gate a change must pass before merging; CI's
# main job runs `verify.sh --quick` (see .github/workflows/ci.yml).
#
# Modes and optional stages:
#   --quick        CI-sized gate (~minutes): skips the chaos determinism
#                  double-run and validates the campaign with one pass.
#   --perf-smoke   run bench_simcore --quick and fail if any metric falls
#                  below bench/golden/simcore_floor.json (a >2x regression;
#                  see docs/PERFORMANCE.md for the floor's provenance and
#                  how to re-baseline it).
#   --sanitize     additionally build with -DSANFAULT_SANITIZE=address,undefined
#                  in build_asan/ and run the test suite under the sanitizers.
#   --coverage     additionally build with -DSANFAULT_COVERAGE=ON in
#                  build_cov/, run the test suite there, print a per-file
#                  line-coverage summary, and enforce the per-directory
#                  coverage ratchet against bench/golden/coverage_floor.json
#                  (scripts/coverage_summary.py --check-floor).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
PERF_SMOKE=0
SANITIZE=0
COVERAGE=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --perf-smoke) PERF_SMOKE=1 ;;
    --sanitize) SANITIZE=1 ;;
    --coverage) COVERAGE=1 ;;
    *) echo "usage: $0 [--quick] [--perf-smoke] [--sanitize] [--coverage]" >&2
       exit 2 ;;
  esac
done

# Docs gate (cheap, so it runs first): every markdown link and anchor must
# resolve and docs/ARCHITECTURE.md must cover every src/ module. Blocking
# in quick and full modes alike.
python3 scripts/check_docs.py

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Metrics regression gate: re-run the quick KV sweep and diff its counters
# against bench/golden/kv_quick_metrics.json (tolerance-based; see
# scripts/metrics_diff.py --help). Regenerate the golden after intentional
# protocol changes with:
#   ./build/bench/bench_kv_service --quick --metrics-json bench/golden/kv_quick_metrics.json
./build/bench/bench_kv_service --quick --metrics-json build/kv_quick_metrics.json >/dev/null
python3 scripts/metrics_diff.py bench/golden/kv_quick_metrics.json \
    build/kv_quick_metrics.json

# Chaos recovery gate: drive the quick fault campaign (docs/CHAOS.md) and
# diff its recovery counters against bench/golden/chaos_quick_metrics.json.
# The wider tolerance covers the chaos.*_ns timing counters, which shift
# more across toolchains than event counts do. Regenerate after intentional
# recovery-path changes with:
#   ./build/bench/bench_chaos --quick --metrics-json bench/golden/chaos_quick_metrics.json
echo "--- chaos gate: bench_chaos --quick vs bench/golden/chaos_quick_metrics.json"
./build/bench/bench_chaos --quick \
    --json build/chaos_quick.json \
    --metrics-json build/chaos_quick_metrics.json \
    --log build/chaos_quick_events.log >/dev/null
python3 scripts/metrics_diff.py --tolerance 0.5 \
    bench/golden/chaos_quick_metrics.json build/chaos_quick_metrics.json

# Corruption smoke (docs/CHAOS.md "State corruption"): one fixed-seed
# convergence cell per corruption class, run twice; the scrubber's repair
# path must replay byte-identically, and every class must converge. Cheap
# enough to block the quick gate too.
echo "--- corruption smoke: bench_chaos --corrupt-smoke double run"
./build/bench/bench_chaos --corrupt-smoke \
    --log build/corrupt_smoke_events.log >/dev/null
./build/bench/bench_chaos --corrupt-smoke \
    --log build/corrupt_smoke2_events.log >/dev/null
cmp build/corrupt_smoke_events.log build/corrupt_smoke2_events.log
echo "corruption smoke OK: all classes converged, double run bit-identical"

if [[ "$QUICK" == 0 ]]; then
  # Determinism contract: a second same-seed run must be bit-identical in
  # results, event log, and metrics (the property tests/chaos_test.cpp and
  # the chaos-smoke CI job also enforce).
  ./build/bench/bench_chaos --quick \
      --json build/chaos_quick2.json \
      --metrics-json build/chaos_quick2_metrics.json \
      --log build/chaos_quick2_events.log >/dev/null
  cmp build/chaos_quick.json build/chaos_quick2.json
  cmp build/chaos_quick_metrics.json build/chaos_quick2_metrics.json
  cmp build/chaos_quick_events.log build/chaos_quick2_events.log
  echo "chaos determinism OK: double run bit-identical"

  # Proactive-failover gate (docs/ROUTING.md, EXPERIMENTS.md "Failover cost
  # and TTFR"): every scenario runs as an on-demand/proactive pair; the
  # binary exits nonzero unless proactive median per-destination TTFR is
  # strictly lower on each link-kill cell (with promoted convergences
  # observed) and retransmission amplification regresses nowhere.
  echo "--- failover compare gate: bench_chaos --compare"
  ./build/bench/bench_chaos --compare --jobs "$(nproc)"
fi

# Membership gate: the SWIM sweep (docs/OBSERVABILITY.md membership.*) must
# confirm the killed host everywhere, hold the analytic detection bound, and
# win the confirm-vs-local-threshold race in every cell; the sweep exits
# nonzero otherwise. The detector is seeded-Rng + sim-time driven, so a
# second run — at a different --jobs — must produce byte-identical JSON.
echo "--- membership gate: bench_membership --quick determinism double run"
./build/bench/bench_membership --quick \
    --json build/membership_quick.json >/dev/null
./build/bench/bench_membership --quick --jobs 2 \
    --json build/membership_quick2.json >/dev/null
cmp build/membership_quick.json build/membership_quick2.json
echo "membership determinism OK: double run bit-identical"

# Repair gate (DESIGN.md §13, EXPERIMENTS.md "Repair bandwidth vs foreground
# goodput"): the striped host-kill sweep must reconstruct every stripe with
# clean audits, an honest token bucket, and a throttle-bounded goodput dip —
# the binary exits nonzero otherwise — and a second run must produce a
# byte-identical repair transcript and cell JSON.
echo "--- repair gate: bench_repair --quick determinism double run"
./build/bench/bench_repair --quick \
    --json build/repair_quick.json \
    --log build/repair_quick_events.log >/dev/null
./build/bench/bench_repair --quick \
    --json build/repair_quick2.json \
    --log build/repair_quick2_events.log >/dev/null
cmp build/repair_quick.json build/repair_quick2.json
cmp build/repair_quick_events.log build/repair_quick2_events.log
# Serial oracle vs conservative parallel engine on the clos-16 repair smoke
# scenario: the artifact must not depend on thread count.
./build/bench/bench_repair --sim-threads 0 \
    --log build/repair_st0.log >/dev/null
./build/bench/bench_repair --sim-threads 4 \
    --log build/repair_st4.log >/dev/null
cmp build/repair_st0.log build/repair_st4.log
echo "repair determinism OK: double run and sim-threads 0/4 bit-identical"

# Workflow static validation (actionlint stand-in; no-op without PyYAML).
python3 scripts/validate_ci.py

if [[ "$PERF_SMOKE" == 1 ]]; then
  echo "--- perf smoke: bench_simcore --quick vs bench/golden/simcore_floor.json"
  ./build/bench/bench_simcore --quick --json build/simcore_quick.json
  python3 scripts/perf_floor.py build/simcore_quick.json \
      bench/golden/simcore_floor.json
fi

if [[ "$SANITIZE" == 1 ]]; then
  echo "--- sanitizer build: -DSANFAULT_SANITIZE=address,undefined"
  cmake -B build_asan -S . -DSANFAULT_SANITIZE=address,undefined
  cmake --build build_asan -j"$(nproc)"
  # lsan.supp covers the known detached sim::Process pump-loop frames (see
  # the file's header); any other leak still fails.
  LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
      ctest --test-dir build_asan --output-on-failure -j"$(nproc)"
fi

if [[ "$COVERAGE" == 1 ]]; then
  echo "--- coverage build: -DSANFAULT_COVERAGE=ON (advisory)"
  cmake -B build_cov -S . -DSANFAULT_COVERAGE=ON
  cmake --build build_cov -j"$(nproc)"
  # Stale .gcda from a previous run would double-count; drop them first.
  find build_cov -name '*.gcda' -delete
  ctest --test-dir build_cov --output-on-failure -j"$(nproc)"
  if command -v gcovr >/dev/null 2>&1; then
    gcovr --root . --filter 'src/' build_cov \
        | tee build_cov/coverage_summary.txt
  fi
  # Ratchet: per-directory line coverage must hold the committed floor
  # (bench/golden/coverage_floor.json). Re-baseline after adding tests with
  #   python3 scripts/coverage_summary.py build_cov --root . \
  #       --write-floor bench/golden/coverage_floor.json
  python3 scripts/coverage_summary.py build_cov --root . \
      --output build_cov/coverage_summary.txt \
      --check-floor bench/golden/coverage_floor.json
fi

cat <<'EOF'

verify: OK

Reading bench JSON: every bench binary exports its obs registry when
SANFAULT_METRICS_JSON=<file> is set (SANFAULT_TRACE=<capacity> adds the
packet-lifecycle trace ring); bench_kv_service and bench_chaos also take
--metrics-json <file> for per-cell dumps, and bench_chaos --log <file>
writes the deterministic campaign event log. Metric names, units, and
increment semantics are documented in docs/OBSERVABILITY.md; compare two
runs with scripts/metrics_diff.py.
EOF
