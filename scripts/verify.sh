#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# then check bench metrics against the committed golden run.
# This is the exact command gate a change must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Metrics regression gate: re-run the quick KV sweep and diff its counters
# against bench/golden/kv_quick_metrics.json (tolerance-based; see
# scripts/metrics_diff.py --help). Regenerate the golden after intentional
# protocol changes with:
#   ./build/bench/bench_kv_service --quick --metrics-json bench/golden/kv_quick_metrics.json
./build/bench/bench_kv_service --quick --metrics-json build/kv_quick_metrics.json >/dev/null
python3 scripts/metrics_diff.py bench/golden/kv_quick_metrics.json \
    build/kv_quick_metrics.json

cat <<'EOF'

verify: OK

Reading bench JSON: every bench binary exports its obs registry when
SANFAULT_METRICS_JSON=<file> is set (SANFAULT_TRACE=<capacity> adds the
packet-lifecycle trace ring); bench_kv_service also takes --metrics-json
<file> for per-cell dumps. Metric names, units, and increment semantics are
documented in docs/OBSERVABILITY.md; compare two runs with
scripts/metrics_diff.py.
EOF
