#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# then check bench metrics against the committed golden run.
# This is the exact command gate a change must pass before merging.
#
# Optional stages:
#   --perf-smoke   run bench_simcore --quick and fail if any metric falls
#                  below bench/golden/simcore_floor.json (a >2x regression;
#                  see docs/PERFORMANCE.md for the floor's provenance and
#                  how to re-baseline it).
#   --sanitize     additionally build with -DSANFAULT_SANITIZE=address,undefined
#                  in build_asan/ and run the test suite under the sanitizers.
set -euo pipefail
cd "$(dirname "$0")/.."

PERF_SMOKE=0
SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --perf-smoke) PERF_SMOKE=1 ;;
    --sanitize) SANITIZE=1 ;;
    *) echo "usage: $0 [--perf-smoke] [--sanitize]" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Metrics regression gate: re-run the quick KV sweep and diff its counters
# against bench/golden/kv_quick_metrics.json (tolerance-based; see
# scripts/metrics_diff.py --help). Regenerate the golden after intentional
# protocol changes with:
#   ./build/bench/bench_kv_service --quick --metrics-json bench/golden/kv_quick_metrics.json
./build/bench/bench_kv_service --quick --metrics-json build/kv_quick_metrics.json >/dev/null
python3 scripts/metrics_diff.py bench/golden/kv_quick_metrics.json \
    build/kv_quick_metrics.json

if [[ "$PERF_SMOKE" == 1 ]]; then
  echo "--- perf smoke: bench_simcore --quick vs bench/golden/simcore_floor.json"
  ./build/bench/bench_simcore --quick --json build/simcore_quick.json
  python3 - build/simcore_quick.json bench/golden/simcore_floor.json <<'PY'
import json, sys
run = json.load(open(sys.argv[1]))
floor = json.load(open(sys.argv[2]))
bad = []
for key, lo in floor.items():
    if key == "comment":
        continue
    got = run.get(key)
    if got is None or got < lo:
        bad.append(f"  {key}: measured {got}, floor {lo}")
if bad:
    print("perf smoke FAILED (>2x regression vs recorded baseline):")
    print("\n".join(bad))
    sys.exit(1)
print("perf smoke OK:",
      ", ".join(f"{k}={run[k]}" for k in floor if k != "comment"))
PY
fi

if [[ "$SANITIZE" == 1 ]]; then
  echo "--- sanitizer build: -DSANFAULT_SANITIZE=address,undefined"
  cmake -B build_asan -S . -DSANFAULT_SANITIZE=address,undefined
  cmake --build build_asan -j"$(nproc)"
  # lsan.supp covers the known detached sim::Process pump-loop frames (see
  # the file's header); any other leak still fails.
  LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
      ctest --test-dir build_asan --output-on-failure -j"$(nproc)"
fi

cat <<'EOF'

verify: OK

Reading bench JSON: every bench binary exports its obs registry when
SANFAULT_METRICS_JSON=<file> is set (SANFAULT_TRACE=<capacity> adds the
packet-lifecycle trace ring); bench_kv_service also takes --metrics-json
<file> for per-cell dumps. Metric names, units, and increment semantics are
documented in docs/OBSERVABILITY.md; compare two runs with
scripts/metrics_diff.py.
EOF
