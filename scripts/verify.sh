#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite.
# This is the exact command gate a change must pass before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
