#!/usr/bin/env python3
"""Link, anchor, and coverage checker for the repo's markdown docs.

Three checks, all blocking (scripts/verify.sh and CI run this):

  1. Every relative markdown link resolves to an existing file or
     directory (http(s)/mailto links are not fetched).
  2. Every anchor (`file.md#heading` or in-page `#heading`) names a real
     heading in the target file, using GitHub's slug rules (lowercase,
     punctuation stripped, spaces to hyphens, duplicate slugs suffixed
     -1, -2, ...).
  3. Every `src/<module>` directory has an entry in docs/ARCHITECTURE.md,
     so the layered map cannot silently go stale when a subsystem lands.

Fenced code blocks are ignored on both sides: a `# comment` inside a
```sh block is not a heading, and example links inside fences are not
checked.

Usage: check_docs.py [repo-root]     (default: the repo containing this
script). Exit status: 0 = clean, 1 = problems found (each printed with
file and line).
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".claude", "third_party"}

# [text](target) that is not an image and whose target is not nested
# parens; good enough for the hand-written docs in this repo.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def find_markdown(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build"))
        for name in sorted(filenames):
            if name.endswith(".md"):
                out.append(os.path.join(dirpath, name))
    return out


def strip_inline_markup(text):
    """Heading text -> the plain text GitHub slugifies."""
    text = re.sub(r"`([^`]*)`", r"\1", text)              # code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.replace("**", "").replace("__", "")
    text = re.sub(r"(?<!\w)[*_](\S[^*_]*)[*_](?!\w)", r"\1", text)
    return text


def github_slug(text):
    text = strip_inline_markup(text).strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)   # drop punctuation, keep _ and -
    text = text.replace(" ", "-")          # every space, not runs: GitHub
    return text                            # keeps consecutive hyphens


def scan_file(path):
    """Return (slugs, links) for one markdown file; links are
    (lineno, target) with fenced code blocks skipped on both sides."""
    slugs = set()
    counts = {}
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = github_slug(m.group(2))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                slugs.add(slug if n == 0 else f"{slug}-{n}")
            for lm in LINK_RE.finditer(line):
                links.append((lineno, lm.group(1)))
    return slugs, links


def check_links(root, md_files):
    slugs_by_file = {}
    links_by_file = {}
    for path in md_files:
        slugs_by_file[path], links_by_file[path] = scan_file(path)

    problems = []
    for path, links in links_by_file.items():
        rel = os.path.relpath(path, root)
        for lineno, target in links:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            target, _, anchor = target.partition("#")
            if target:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
            else:
                dest = path  # in-page anchor
            if not os.path.exists(dest):
                problems.append(f"{rel}:{lineno}: broken link "
                                f"'{target}' (no such file)")
                continue
            if anchor:
                if dest not in slugs_by_file:
                    if dest.endswith(".md"):
                        # .md outside the scan set (should not happen)
                        slugs_by_file[dest] = scan_file(dest)[0]
                    else:
                        problems.append(
                            f"{rel}:{lineno}: anchor '#{anchor}' on "
                            f"non-markdown target '{target}'")
                        continue
                if anchor not in slugs_by_file[dest]:
                    problems.append(
                        f"{rel}:{lineno}: anchor '#{anchor}' not found in "
                        f"'{target or os.path.basename(dest)}'")
    return problems


def check_architecture_coverage(root):
    problems = []
    arch_path = os.path.join(root, "docs", "ARCHITECTURE.md")
    src_dir = os.path.join(root, "src")
    if not os.path.isfile(arch_path):
        return ["docs/ARCHITECTURE.md is missing"]
    with open(arch_path, encoding="utf-8") as f:
        arch = f.read()
    for module in sorted(os.listdir(src_dir)):
        if not os.path.isdir(os.path.join(src_dir, module)):
            continue
        if f"src/{module}" not in arch:
            problems.append(
                f"docs/ARCHITECTURE.md: no entry for 'src/{module}' — "
                "add the module to the layered map")
    return problems


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), ".."))
    md_files = find_markdown(root)
    problems = check_links(root, md_files)
    problems += check_architecture_coverage(root)
    for p in problems:
        print(p)
    if problems:
        print(f"check_docs: {len(problems)} problem(s) across "
              f"{len(md_files)} markdown file(s)")
        return 1
    print(f"check_docs: OK ({len(md_files)} markdown files, links + "
          "anchors resolve, ARCHITECTURE.md covers every src/ module)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
