#!/usr/bin/env python3
"""Compare two bench metrics JSON files and flag counter regressions.

Inputs are files produced either by a bench binary's --metrics-json flag
(an array of {"cell": {...}, "metrics": {...}} objects, one per sweep cell)
or by the SANFAULT_METRICS_JSON teardown export (a single registry dump).
See docs/OBSERVABILITY.md for the metric schema.

Counters are aggregated per cell by their schema name — the part of the
instance name before the '{label=...}' suffix — so per-node instances fold
into one number. Each aggregated counter is then compared against the
baseline according to its direction:

  * cost counters (retransmissions, drops, failures, stalls, probes...)
    regress when they GROW beyond tolerance — the protocol got noisier;
  * goodput counters (deliveries, ok calls, acks...) regress when they
    SHRINK beyond tolerance — the run did less useful work;
  * everything else is informational (printed with --verbose only).

Tolerance is relative plus an absolute slack, because goldens are committed
from one toolchain and re-checked on others: the simulator is deterministic
for a fixed binary, but floating-point differences across compilers can
shift event interleavings slightly.

Usage:
  metrics_diff.py golden.json candidate.json [--tolerance 0.25]
                  [--abs-slack 100] [--verbose]

Exit status: 0 = no regressions, 1 = regressions found, 2 = usage/shape
error — cells don't match, a counter lacks its "value" key, or the golden
predates a classified counter the candidate reports (regen the golden).
"""

import argparse
import json
import sys

# Counter schema-name prefixes where growth means the system got worse.
COST_PREFIXES = (
    "firmware.retransmissions",
    "firmware.retrans_rounds",
    "firmware.ooo_drops",
    "firmware.dup_drops",
    "firmware.corrupt_drops",
    "firmware.stale_gen_drops",
    "firmware.unreachable_drops",
    "firmware.no_route_drops",
    "firmware.path_failures",
    "firmware.generation_restarts",
    "firmware.remap_requests",
    # Self-stabilization scrubber (docs/CHAOS.md "State corruption"): in a
    # fixed campaign, more invariant repairs, stale-generation adoptions,
    # rejected bogus acks, scrub-escalated resets or misrouted-packet drops
    # means live state got corrupted more often or recovered less cleanly.
    # firmware.scrub_passes is deliberately unclassified — it scales with
    # run length, not protocol health.
    "firmware.scrub_tx_repairs",
    "firmware.scrub_rx_repairs",
    "firmware.scrub_gen_adoptions",
    "firmware.scrub_bogus_acks",
    "firmware.scrub_resets",
    "firmware.misroute_drops",
    "mapper.mappings_failed",
    "mapper.probe_timeouts",
    "mapper.probe_budget_exhausted",
    "mapper.path_cache_evictions",   # growth = cache thrash on this sweep
    # Proactive backup paths (docs/ROUTING.md): more backups found dead at
    # promote time, or more background verification traffic, for the same
    # fault campaign means the backups got staler or churnier.
    "mapper.backup_stale_rejections",
    "mapper.backup_replenish_probes",
    "nic.crc_failures",
    "nic.injection_stalls",
    "fabric.dropped_",          # all fabric drop classes
    "fabric.delivered_corrupt",
    "kv.client_failed",
    "kv.client_timeouts",
    "kv.client_failovers",
    "kv.server_repl_failures",
    "kv.server_repl_retries",
    "traffic.failed",
    "traffic.retries",
    "vmmc.rejected_rx",
    "vmmc.imports_denied",
    # Chaos recovery counters (src/chaos, docs/CHAOS.md): slower or noisier
    # recovery from the same injected faults is a regression. The *_ns and
    # *_milli counters are timing-scale — gate them with a wider tolerance
    # (scripts/verify.sh uses --tolerance 0.5 for the chaos diff).
    "chaos.gen_regressions",
    "chaos.remap_unconverged",
    "chaos.remap_failures",
    "chaos.ttfr_max_ns",
    "chaos.ttfr_dest_max_ns",
    "chaos.remap_conv_max_ns",
    "chaos.remap_conv_from_fault_max_ns",
    "chaos.retrans_amplification_milli",
    "chaos.goodput_dip_area_milli",
    # State corruption (src/chaos/corruptor.hpp): for a fixed scenario the
    # number of applied corruptions is deterministic, so growth means the
    # campaign's corruption surface widened; slower scrub-to-recovery means
    # the scrubber's repairs took longer to restore traffic.
    "chaos.corruptions_applied",
    "chaos.scrub_repairs",
    "chaos.scrub_recovery_max_ns",
    # Membership (src/membership, docs/OBSERVABILITY.md): more missed direct
    # acks, suspicions, refutations, or gossip volume for the same run means
    # the detector got noisier or chattier.
    "membership.probe_timeouts",
    "membership.suspects",
    "membership.refutations",
    "membership.gossip_msgs_tx",
    "membership.gossip_bytes_tx",
    "chaos.peer_exclusions",
    # Erasure-coded striping + SNS repair (src/ec via src/kv, DESIGN.md §13):
    # for the same kill campaign, more failed striped calls, parity-path
    # reads, unit RPC timeouts, repair retries, or abandoned stripes means
    # the striped service degraded or repair stopped converging cleanly.
    # ec.repair_throttle_waits is deliberately unclassified — it scales with
    # the configured token bucket, not protocol health.
    "ec.striped_failed",
    "ec.degraded_reads",
    "ec.unit_timeouts",
    "ec.stale_replies",
    "ec.client_bad_msgs",
    "ec.store_bad_msgs",
    "ec.store_unit_not_found",
    "ec.repair_fetch_retries",
    "ec.repair_put_retries",
    "ec.repair_stripes_abandoned",
)

# Counter schema names where shrinkage means useful work was lost.
GOODPUT_PREFIXES = (
    "firmware.data_rx_in_order",
    "fabric.delivered",
    "nic.host_deliveries",
    "kv.client_ok",
    "traffic.ok",
    "traffic.completed",
    "vmmc.deposits_rx",
    "mapper.mappings_succeeded",
    "mapper.path_cache_hits",        # shrink = cache stopped serving routes
    "mapper.backup_promotions",      # shrink = failovers stopped being O(1)
    # Chaos recovery: fewer observed recoveries for the same campaign means
    # the protocol stopped demonstrating them.
    "chaos.data_deliveries",
    "chaos.remap_convergences",
    "chaos.ttfr_samples",
    "chaos.ttfr_dest_samples",
    # Fewer observed scrub-to-recovery completions for the same corruption
    # campaign means repaired channels stopped demonstrably recovering.
    "chaos.scrub_recovery_samples",
    # Membership: fewer acked probes means probing stopped reaching members;
    # fewer confirms for the same kill campaign means detection stopped.
    "membership.acks_rx",
    "membership.confirms",
    # Striped object class + repair: fewer committed striped calls for the
    # same workload, or fewer repaired stripes / rebuilt units for the same
    # kill campaign, means the striped service or its repair stopped working.
    "ec.striped_puts_ok",
    "ec.striped_gets_ok",
    "ec.store_unit_puts",
    "ec.store_unit_gets",
    "ec.repair_stripes_repaired",
    "ec.repair_units_rebuilt",
)


class ShapeError(Exception):
    """Input-shape problem: reported by name, exits 2 (not a regression)."""


def schema_name(instance_name):
    """'firmware.retransmissions{node=3}' -> 'firmware.retransmissions'."""
    return instance_name.split("{", 1)[0]


def load_cells(path):
    """Normalize either input shape to [(cell_key, {schema: value})]."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict):  # single registry dump
        doc = [{"cell": {}, "metrics": doc}]
    cells = []
    for entry in doc:
        metrics = entry.get("metrics", {}).get("metrics", {})
        agg = {}
        for name, m in metrics.items():
            if m.get("type") != "counter":
                continue
            if "value" not in m:
                raise ShapeError(
                    f"{path}: counter '{name}' has no 'value' key — "
                    "truncated or hand-edited metrics dump?")
            agg[schema_name(name)] = agg.get(schema_name(name), 0) + m["value"]
        cells.append((json.dumps(entry.get("cell", {}), sort_keys=True), agg))
    return cells


def direction(name):
    # "delivered_corrupt" is a cost counter but shares the "delivered" stem;
    # cost classification wins, so check it first.
    if any(name.startswith(p) for p in COST_PREFIXES):
        return "cost"
    if any(name.startswith(p) for p in GOODPUT_PREFIXES):
        return "goodput"
    return "info"


def compare_cell(cell_key, golden, candidate, tol, slack, verbose):
    regressions = []
    for name in sorted(set(golden) | set(candidate)):
        g = golden.get(name, 0)
        c = candidate.get(name, 0)
        d = direction(name)
        if d == "cost":
            limit = g * (1 + tol) + slack
            if c > limit:
                regressions.append(
                    f"  {name}: {g} -> {c} (cost grew past {limit:.0f})")
        elif d == "goodput":
            limit = g * (1 - tol) - slack
            if c < limit:
                regressions.append(
                    f"  {name}: {g} -> {c} (goodput fell below {limit:.0f})")
        elif verbose and g != c:
            print(f"  [info] {name}: {g} -> {c}")
    return regressions


def main():
    ap = argparse.ArgumentParser(
        description="Flag counter regressions between two bench metrics "
                    "JSON files (see docs/OBSERVABILITY.md).")
    ap.add_argument("golden")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative headroom on each counter (default 0.25)")
    ap.add_argument("--abs-slack", type=float, default=100,
                    help="absolute headroom added on top (default 100)")
    ap.add_argument("--verbose", action="store_true",
                    help="also print changed informational counters")
    args = ap.parse_args()

    try:
        golden = load_cells(args.golden)
        candidate = load_cells(args.candidate)
    except ShapeError as e:
        print(f"metrics_diff: {e}", file=sys.stderr)
        return 2
    if [k for k, _ in golden] != [k for k, _ in candidate]:
        print("metrics_diff: cell layouts differ between the two files; "
              "re-generate the golden with the same sweep flags",
              file=sys.stderr)
        return 2

    # A cost/goodput-classified counter in the candidate that the golden has
    # never seen means the golden predates the counter: comparing it against
    # an implicit 0 would either always pass (goodput) or fail with a
    # misleading "cost grew" message. Name the keys and demand a regen.
    stale = sorted({
        name
        for (_, g), (_, c) in zip(golden, candidate)
        for name in c
        if name not in g and direction(name) != "info"
    })
    if stale:
        print("metrics_diff: golden file lacks classified counter(s) the "
              "candidate reports:", file=sys.stderr)
        for name in stale:
            print(f"  {name}", file=sys.stderr)
        print(f"re-generate {args.golden} with the current binary "
              "(see scripts/verify.sh for the per-golden command)",
              file=sys.stderr)
        return 2

    total = 0
    for (key, g), (_, c) in zip(golden, candidate):
        cell = json.loads(key)
        label = ", ".join(f"{k}={v}" for k, v in cell.items()) or "(run)"
        regs = compare_cell(key, g, c, args.tolerance, args.abs_slack,
                            args.verbose)
        if regs or args.verbose:
            print(f"cell [{label}]:")
        for r in regs:
            print(r)
        if not regs and args.verbose:
            print("  ok")
        total += len(regs)

    if total:
        print(f"metrics_diff: {total} regression(s) vs {args.golden}")
        return 1
    print(f"metrics_diff: no counter regressions across "
          f"{len(candidate)} cell(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
