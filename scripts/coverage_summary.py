#!/usr/bin/env python3
"""Summarize gcov-format line coverage for a --coverage build tree.

Dependency-free stand-in for gcovr (which the CI coverage job installs but
thin local toolchains may lack): walks a build directory for .gcda files,
asks `gcov --json-format` for per-source line data, and prints a per-file
and total line-coverage table for first-party sources (src/ by default).

Usage:
  coverage_summary.py [build_dir] [--root DIR] [--filter PREFIX]
                      [--gcov GCOV] [--output FILE]
                      [--check-floor FLOOR.json]

  build_dir   tree to scan for .gcda (default: build_cov)
  --root      repo root that source paths are resolved against (default: .)
  --filter    only report sources whose repo-relative path starts with this
              prefix (repeatable; default: src/)
  --gcov      gcov executable (default: $GCOV or 'gcov'; use
              'llvm-cov gcov' for clang-compiled trees)
  --output    also write the table to FILE (for CI artifacts / step summary)

Without --check-floor, coverage is advisory: exit status is 0 whenever the
data could be read, 1 only when no .gcda files exist (nothing was run) or
gcov fails.

With --check-floor FLOOR.json the summary becomes a ratchet: the floor file
(bench/golden/coverage_floor.json) records the committed per-top-level-dir
line-coverage percentages, and the run fails (exit 1) if any directory's
measured coverage falls more than `tolerance_pts` (default 1.0) below its
floor, or if a floored directory produced no coverage data at all. The CI
coverage job gates on this. To re-ratchet after a legitimate change, run
with --write-floor FLOOR.json from a healthy coverage build.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    out = []
    for dirpath, _, files in os.walk(build_dir):
        out.extend(os.path.join(dirpath, f) for f in files
                   if f.endswith(".gcda"))
    return sorted(out)


def run_gcov(gcov_cmd, gcda_files, workdir):
    """Run gcov in json mode; returns paths of the .gcov.json.gz it wrote."""
    cmd = gcov_cmd.split() + ["--json-format", "--branch-probabilities"]
    # Batch to keep command lines bounded.
    for i in range(0, len(gcda_files), 64):
        batch = [os.path.abspath(p) for p in gcda_files[i:i + 64]]
        res = subprocess.run(cmd + batch, cwd=workdir,
                             capture_output=True, text=True)
        if res.returncode != 0:
            sys.stderr.write(res.stderr)
            raise RuntimeError(f"gcov failed (exit {res.returncode})")
    return [os.path.join(workdir, f) for f in os.listdir(workdir)
            if f.endswith(".gcov.json.gz")]


def accumulate(json_paths, root, filters):
    """-> {relpath: (covered_lines, instrumented_lines)} merged over TUs."""
    per_file = {}
    root = os.path.realpath(root)
    for jp in json_paths:
        with gzip.open(jp, "rt") as f:
            doc = json.load(f)
        for fentry in doc.get("files", []):
            src = fentry.get("file", "")
            abs_src = src if os.path.isabs(src) else os.path.join(root, src)
            rel = os.path.relpath(os.path.realpath(abs_src), root)
            if filters and not any(rel.startswith(p) for p in filters):
                continue
            # Merge by line number: a line is covered if any TU executed it
            # (headers are compiled into many translation units).
            lines = per_file.setdefault(rel, {})
            for line in fentry.get("lines", []):
                n = line["line_number"]
                lines[n] = lines.get(n, 0) + line.get("count", 0)
    return {
        rel: (sum(1 for c in lines.values() if c > 0), len(lines))
        for rel, lines in per_file.items()
    }


def render(stats):
    rows = []
    tot_cov = tot_lines = 0
    for rel in sorted(stats):
        cov, n = stats[rel]
        tot_cov += cov
        tot_lines += n
        pct = 100.0 * cov / n if n else 0.0
        rows.append(f"{pct:6.1f}%  {cov:>6}/{n:<6}  {rel}")
    pct = 100.0 * tot_cov / tot_lines if tot_lines else 0.0
    header = f"{'cover':>7}  {'lines':>13}  file"
    total = f"{pct:6.1f}%  {tot_cov:>6}/{tot_lines:<6}  TOTAL"
    return "\n".join([header] + rows + ["-" * len(total), total]) + "\n"


def dir_percentages(stats):
    """-> {top-level dir: coverage pct}, e.g. {'src/chaos': 81.2, ...}."""
    agg = {}
    for rel, (cov, n) in stats.items():
        parts = rel.split(os.sep)
        key = os.sep.join(parts[:2]) if len(parts) > 1 else parts[0]
        c, t = agg.get(key, (0, 0))
        agg[key] = (c + cov, t + n)
    return {k: (100.0 * c / t if t else 0.0) for k, (c, t) in agg.items()}


def check_floor(stats, floor_path):
    """Ratchet check; returns a list of violations (empty = pass)."""
    with open(floor_path) as f:
        floor = json.load(f)
    tol = float(floor.get("tolerance_pts", 1.0))
    measured = dir_percentages(stats)
    fails = []
    for d, want in sorted(floor.get("dirs", {}).items()):
        have = measured.get(d)
        if have is None:
            fails.append(f"{d}: no coverage data (floor {want:.1f}%)")
        elif have < want - tol:
            fails.append(
                f"{d}: {have:.1f}% < floor {want:.1f}% - {tol:.1f}pt")
    for d in sorted(set(measured) - set(floor.get("dirs", {}))):
        print(f"coverage_summary: note: {d} ({measured[d]:.1f}%) has no "
              f"floor entry; add it to {floor_path} to ratchet it")
    return fails


def write_floor(stats, floor_path):
    doc = {
        "tolerance_pts": 1.0,
        "dirs": {d: round(p, 1) for d, p in
                 sorted(dir_percentages(stats).items())},
    }
    with open(floor_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description="Per-file gcov line-coverage summary (gcovr stand-in).")
    ap.add_argument("build_dir", nargs="?", default="build_cov")
    ap.add_argument("--root", default=".")
    ap.add_argument("--filter", action="append", default=None)
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    ap.add_argument("--output")
    ap.add_argument("--check-floor", metavar="FLOOR.json",
                    help="fail if any floored dir drops below its committed "
                         "coverage floor minus tolerance_pts")
    ap.add_argument("--write-floor", metavar="FLOOR.json",
                    help="write the measured per-dir percentages as the new "
                         "floor file")
    args = ap.parse_args()
    filters = args.filter if args.filter is not None else ["src/"]

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"coverage_summary: no .gcda files under {args.build_dir} — "
              "build with -DSANFAULT_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as tmp:
        try:
            json_paths = run_gcov(args.gcov, gcda, tmp)
        except (RuntimeError, OSError) as e:
            print(f"coverage_summary: {e}", file=sys.stderr)
            return 1
        stats = accumulate(json_paths, args.root, filters)

    table = render(stats)
    sys.stdout.write(table)
    if args.output:
        with open(args.output, "w") as f:
            f.write(table)
    if args.write_floor:
        write_floor(stats, args.write_floor)
        print(f"coverage_summary: wrote floor {args.write_floor}")
    if args.check_floor:
        fails = check_floor(stats, args.check_floor)
        if fails:
            for v in fails:
                print(f"coverage_summary: FLOOR VIOLATION: {v}",
                      file=sys.stderr)
            return 1
        print(f"coverage_summary: coverage floor held "
              f"({args.check_floor})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
