#!/usr/bin/env python3
"""Static validation for GitHub Actions workflow files.

Stand-in for actionlint in environments without it: parses each workflow
with PyYAML and checks the structural contract GitHub enforces at dispatch
time — top-level `name`/`on`/`jobs`, every job has `runs-on` and `steps`,
every step has exactly one of `uses`/`run`, `needs` references exist, and
matrix interpolations only name defined matrix keys.

Two repo-policy checks ride along:
  * every `uses:` of a marketplace action must pin a ref (`@v4`, `@<sha>`);
    bare actions and floating `@main`/`@master` refs are rejected — a
    moving ref can silently change what CI runs;
  * upload-artifact step names must be unique across ALL workflow files —
    two jobs uploading under one name clobber each other's artifacts (the
    nightly soak's replay seed must never be overwritten by another job).

Usage: validate_ci.py [workflow.yml ...]   (default: .github/workflows/*.yml)

Exits 0 when every file passes, 1 on any violation, and 0 with a notice if
PyYAML is unavailable (the check is advisory where the toolchain is thin;
CI runners always have it).
"""

import glob
import re
import sys

try:
    import yaml
except ImportError:  # pragma: no cover - thin toolchains only
    print("validate_ci: PyYAML unavailable, skipping workflow validation")
    sys.exit(0)

MATRIX_REF = re.compile(r"\$\{\{\s*matrix\.([A-Za-z_][A-Za-z0-9_]*)")


def matrix_keys(job):
    keys = set()
    matrix = (job.get("strategy") or {}).get("matrix") or {}
    for k, v in matrix.items():
        if k == "include":
            for entry in v or []:
                keys.update(entry)
        elif k != "exclude":
            keys.add(k)
    return keys


def check_uses_pin(where, uses, errors):
    if not isinstance(uses, str) or uses.startswith("./"):
        return  # local actions are pinned by the checkout itself
    if "@" not in uses:
        errors.append(f"{where}: unpinned action '{uses}' (add @<ref>)")
        return
    ref = uses.rsplit("@", 1)[1]
    if ref in ("main", "master"):
        errors.append(
            f"{where}: action '{uses}' pinned to a moving branch; "
            "use a tag or commit sha")


def check_job(path, name, job, all_jobs, errors, artifacts):
    where = f"{path}: job '{name}'"
    if not isinstance(job, dict):
        errors.append(f"{where}: not a mapping")
        return
    if "runs-on" not in job:
        errors.append(f"{where}: missing runs-on")
    steps = job.get("steps")
    if not isinstance(steps, list) or not steps:
        errors.append(f"{where}: missing steps")
        steps = []
    needs = job.get("needs", [])
    for dep in [needs] if isinstance(needs, str) else needs:
        if dep not in all_jobs:
            errors.append(f"{where}: needs unknown job '{dep}'")
    keys = matrix_keys(job)
    for i, step in enumerate(steps):
        swhere = f"{where} step {i + 1}"
        if not isinstance(step, dict):
            errors.append(f"{swhere}: not a mapping")
            continue
        if ("uses" in step) == ("run" in step):
            errors.append(f"{swhere}: needs exactly one of uses/run")
        if "uses" in step:
            check_uses_pin(swhere, step["uses"], errors)
            uses = str(step["uses"])
            if uses.startswith("actions/upload-artifact"):
                aname = (step.get("with") or {}).get("name")
                # Expression-valued names (e.g. embedding the run id) are
                # unique by construction; only literal names can collide.
                if isinstance(aname, str) and "${{" not in aname:
                    artifacts.setdefault(aname, []).append(swhere)
        for ref in MATRIX_REF.findall(str(step)):
            if ref not in keys:
                errors.append(f"{swhere}: undefined matrix key '{ref}'")
    for ref in MATRIX_REF.findall(str(job.get("env", {}))):
        if ref not in keys:
            errors.append(f"{where}: undefined matrix key '{ref}' in env")


def check_file(path, errors, artifacts):
    with open(path) as f:
        try:
            doc = yaml.safe_load(f)
        except yaml.YAMLError as e:
            errors.append(f"{path}: YAML parse error: {e}")
            return
    if not isinstance(doc, dict):
        errors.append(f"{path}: not a mapping")
        return
    # PyYAML 1.1 reads the bare `on:` trigger key as boolean True.
    triggers = doc.get("on", doc.get(True))
    if triggers is None:
        errors.append(f"{path}: missing 'on' trigger block")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict) or not jobs:
        errors.append(f"{path}: missing jobs")
        return
    for name, job in jobs.items():
        check_job(path, name, job, jobs, errors, artifacts)


def main():
    paths = sys.argv[1:] or sorted(glob.glob(".github/workflows/*.yml"))
    if not paths:
        print("validate_ci: no workflow files found", file=sys.stderr)
        return 1
    errors = []
    artifacts = {}
    for path in paths:
        check_file(path, errors, artifacts)
    for aname, wheres in sorted(artifacts.items()):
        if len(wheres) > 1:
            errors.append(
                f"duplicate artifact name '{aname}' "
                f"({'; '.join(wheres)}) — uploads clobber each other")
    for e in errors:
        print(f"validate_ci: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"validate_ci: {len(paths)} workflow file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
