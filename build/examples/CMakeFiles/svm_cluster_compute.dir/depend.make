# Empty dependencies file for svm_cluster_compute.
# This may be replaced when dependencies are built.
