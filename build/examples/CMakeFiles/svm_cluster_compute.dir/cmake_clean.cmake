file(REMOVE_RECURSE
  "CMakeFiles/svm_cluster_compute.dir/svm_cluster_compute.cpp.o"
  "CMakeFiles/svm_cluster_compute.dir/svm_cluster_compute.cpp.o.d"
  "svm_cluster_compute"
  "svm_cluster_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_cluster_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
