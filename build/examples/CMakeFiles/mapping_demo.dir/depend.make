# Empty dependencies file for mapping_demo.
# This may be replaced when dependencies are built.
