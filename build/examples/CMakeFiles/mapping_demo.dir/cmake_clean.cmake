file(REMOVE_RECURSE
  "CMakeFiles/mapping_demo.dir/mapping_demo.cpp.o"
  "CMakeFiles/mapping_demo.dir/mapping_demo.cpp.o.d"
  "mapping_demo"
  "mapping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
