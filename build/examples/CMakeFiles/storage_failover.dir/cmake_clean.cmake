file(REMOVE_RECURSE
  "CMakeFiles/storage_failover.dir/storage_failover.cpp.o"
  "CMakeFiles/storage_failover.dir/storage_failover.cpp.o.d"
  "storage_failover"
  "storage_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
