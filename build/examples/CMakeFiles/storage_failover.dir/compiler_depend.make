# Empty compiler generated dependencies file for storage_failover.
# This may be replaced when dependencies are built.
