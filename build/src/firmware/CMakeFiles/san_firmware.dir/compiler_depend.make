# Empty compiler generated dependencies file for san_firmware.
# This may be replaced when dependencies are built.
