file(REMOVE_RECURSE
  "libsan_firmware.a"
)
