
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/mapper_full.cpp" "src/firmware/CMakeFiles/san_firmware.dir/mapper_full.cpp.o" "gcc" "src/firmware/CMakeFiles/san_firmware.dir/mapper_full.cpp.o.d"
  "/root/repo/src/firmware/mapper_ondemand.cpp" "src/firmware/CMakeFiles/san_firmware.dir/mapper_ondemand.cpp.o" "gcc" "src/firmware/CMakeFiles/san_firmware.dir/mapper_ondemand.cpp.o.d"
  "/root/repo/src/firmware/reliability.cpp" "src/firmware/CMakeFiles/san_firmware.dir/reliability.cpp.o" "gcc" "src/firmware/CMakeFiles/san_firmware.dir/reliability.cpp.o.d"
  "/root/repo/src/firmware/updown.cpp" "src/firmware/CMakeFiles/san_firmware.dir/updown.cpp.o" "gcc" "src/firmware/CMakeFiles/san_firmware.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nic/CMakeFiles/san_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/san_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/san_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
