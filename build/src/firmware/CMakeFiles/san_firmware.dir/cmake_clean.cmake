file(REMOVE_RECURSE
  "CMakeFiles/san_firmware.dir/mapper_full.cpp.o"
  "CMakeFiles/san_firmware.dir/mapper_full.cpp.o.d"
  "CMakeFiles/san_firmware.dir/mapper_ondemand.cpp.o"
  "CMakeFiles/san_firmware.dir/mapper_ondemand.cpp.o.d"
  "CMakeFiles/san_firmware.dir/reliability.cpp.o"
  "CMakeFiles/san_firmware.dir/reliability.cpp.o.d"
  "CMakeFiles/san_firmware.dir/updown.cpp.o"
  "CMakeFiles/san_firmware.dir/updown.cpp.o.d"
  "libsan_firmware.a"
  "libsan_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
