file(REMOVE_RECURSE
  "libsan_harness.a"
)
