file(REMOVE_RECURSE
  "CMakeFiles/san_harness.dir/microbench.cpp.o"
  "CMakeFiles/san_harness.dir/microbench.cpp.o.d"
  "libsan_harness.a"
  "libsan_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
