# Empty dependencies file for san_harness.
# This may be replaced when dependencies are built.
