file(REMOVE_RECURSE
  "libsan_vmmc.a"
)
