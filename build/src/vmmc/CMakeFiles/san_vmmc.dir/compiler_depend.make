# Empty compiler generated dependencies file for san_vmmc.
# This may be replaced when dependencies are built.
