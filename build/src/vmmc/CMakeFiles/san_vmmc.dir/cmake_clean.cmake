file(REMOVE_RECURSE
  "CMakeFiles/san_vmmc.dir/endpoint.cpp.o"
  "CMakeFiles/san_vmmc.dir/endpoint.cpp.o.d"
  "libsan_vmmc.a"
  "libsan_vmmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_vmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
