file(REMOVE_RECURSE
  "libsan_apps.a"
)
