# Empty dependencies file for san_apps.
# This may be replaced when dependencies are built.
