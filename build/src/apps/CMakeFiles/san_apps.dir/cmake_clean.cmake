file(REMOVE_RECURSE
  "CMakeFiles/san_apps.dir/fft.cpp.o"
  "CMakeFiles/san_apps.dir/fft.cpp.o.d"
  "CMakeFiles/san_apps.dir/radix.cpp.o"
  "CMakeFiles/san_apps.dir/radix.cpp.o.d"
  "CMakeFiles/san_apps.dir/water.cpp.o"
  "CMakeFiles/san_apps.dir/water.cpp.o.d"
  "libsan_apps.a"
  "libsan_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
