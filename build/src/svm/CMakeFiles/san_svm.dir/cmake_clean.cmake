file(REMOVE_RECURSE
  "CMakeFiles/san_svm.dir/runtime.cpp.o"
  "CMakeFiles/san_svm.dir/runtime.cpp.o.d"
  "libsan_svm.a"
  "libsan_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
