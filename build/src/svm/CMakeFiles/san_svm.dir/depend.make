# Empty dependencies file for san_svm.
# This may be replaced when dependencies are built.
