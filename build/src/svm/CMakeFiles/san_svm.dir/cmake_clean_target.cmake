file(REMOVE_RECURSE
  "libsan_svm.a"
)
