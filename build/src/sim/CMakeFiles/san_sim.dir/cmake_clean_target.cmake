file(REMOVE_RECURSE
  "libsan_sim.a"
)
