file(REMOVE_RECURSE
  "CMakeFiles/san_sim.dir/scheduler.cpp.o"
  "CMakeFiles/san_sim.dir/scheduler.cpp.o.d"
  "libsan_sim.a"
  "libsan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
