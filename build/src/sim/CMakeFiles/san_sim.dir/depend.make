# Empty dependencies file for san_sim.
# This may be replaced when dependencies are built.
