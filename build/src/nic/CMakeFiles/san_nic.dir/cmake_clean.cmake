file(REMOVE_RECURSE
  "CMakeFiles/san_nic.dir/nic.cpp.o"
  "CMakeFiles/san_nic.dir/nic.cpp.o.d"
  "libsan_nic.a"
  "libsan_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
