# Empty dependencies file for san_nic.
# This may be replaced when dependencies are built.
