file(REMOVE_RECURSE
  "libsan_nic.a"
)
