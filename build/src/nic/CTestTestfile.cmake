# CMake generated Testfile for 
# Source directory: /root/repo/src/nic
# Build directory: /root/repo/build/src/nic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
