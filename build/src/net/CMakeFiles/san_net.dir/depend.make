# Empty dependencies file for san_net.
# This may be replaced when dependencies are built.
