
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/crc.cpp" "src/net/CMakeFiles/san_net.dir/crc.cpp.o" "gcc" "src/net/CMakeFiles/san_net.dir/crc.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/san_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/san_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/san_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/san_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/san_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
