file(REMOVE_RECURSE
  "libsan_net.a"
)
