file(REMOVE_RECURSE
  "CMakeFiles/san_net.dir/crc.cpp.o"
  "CMakeFiles/san_net.dir/crc.cpp.o.d"
  "CMakeFiles/san_net.dir/fabric.cpp.o"
  "CMakeFiles/san_net.dir/fabric.cpp.o.d"
  "CMakeFiles/san_net.dir/topology.cpp.o"
  "CMakeFiles/san_net.dir/topology.cpp.o.d"
  "libsan_net.a"
  "libsan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/san_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
