# Empty dependencies file for bench_fig3_latency_breakdown.
# This may be replaced when dependencies are built.
