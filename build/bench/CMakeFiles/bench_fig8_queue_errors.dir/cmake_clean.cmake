file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_queue_errors.dir/bench_fig8_queue_errors.cpp.o"
  "CMakeFiles/bench_fig8_queue_errors.dir/bench_fig8_queue_errors.cpp.o.d"
  "bench_fig8_queue_errors"
  "bench_fig8_queue_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_queue_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
