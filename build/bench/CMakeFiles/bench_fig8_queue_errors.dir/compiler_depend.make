# Empty compiler generated dependencies file for bench_fig8_queue_errors.
# This may be replaced when dependencies are built.
