file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_interval_errors.dir/bench_fig6_interval_errors.cpp.o"
  "CMakeFiles/bench_fig6_interval_errors.dir/bench_fig6_interval_errors.cpp.o.d"
  "bench_fig6_interval_errors"
  "bench_fig6_interval_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_interval_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
