# Empty dependencies file for bench_fig6_interval_errors.
# This may be replaced when dependencies are built.
