file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency_bandwidth.dir/bench_fig4_latency_bandwidth.cpp.o"
  "CMakeFiles/bench_fig4_latency_bandwidth.dir/bench_fig4_latency_bandwidth.cpp.o.d"
  "bench_fig4_latency_bandwidth"
  "bench_fig4_latency_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
