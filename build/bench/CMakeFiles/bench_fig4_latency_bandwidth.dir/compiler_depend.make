# Empty compiler generated dependencies file for bench_fig4_latency_bandwidth.
# This may be replaced when dependencies are built.
