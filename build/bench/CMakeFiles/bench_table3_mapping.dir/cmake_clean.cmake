file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mapping.dir/bench_table3_mapping.cpp.o"
  "CMakeFiles/bench_table3_mapping.dir/bench_table3_mapping.cpp.o.d"
  "bench_table3_mapping"
  "bench_table3_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
