file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_queue_noerrors.dir/bench_fig7_queue_noerrors.cpp.o"
  "CMakeFiles/bench_fig7_queue_noerrors.dir/bench_fig7_queue_noerrors.cpp.o.d"
  "bench_fig7_queue_noerrors"
  "bench_fig7_queue_noerrors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_queue_noerrors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
