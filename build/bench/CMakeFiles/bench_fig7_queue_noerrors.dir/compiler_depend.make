# Empty compiler generated dependencies file for bench_fig7_queue_noerrors.
# This may be replaced when dependencies are built.
