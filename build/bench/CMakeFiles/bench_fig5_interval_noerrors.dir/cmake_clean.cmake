file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_interval_noerrors.dir/bench_fig5_interval_noerrors.cpp.o"
  "CMakeFiles/bench_fig5_interval_noerrors.dir/bench_fig5_interval_noerrors.cpp.o.d"
  "bench_fig5_interval_noerrors"
  "bench_fig5_interval_noerrors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_interval_noerrors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
