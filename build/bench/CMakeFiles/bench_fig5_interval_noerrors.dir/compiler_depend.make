# Empty compiler generated dependencies file for bench_fig5_interval_noerrors.
# This may be replaced when dependencies are built.
