file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_applications.dir/bench_fig9_applications.cpp.o"
  "CMakeFiles/bench_fig9_applications.dir/bench_fig9_applications.cpp.o.d"
  "bench_fig9_applications"
  "bench_fig9_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
