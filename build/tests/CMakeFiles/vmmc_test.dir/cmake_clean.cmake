file(REMOVE_RECURSE
  "CMakeFiles/vmmc_test.dir/vmmc_test.cpp.o"
  "CMakeFiles/vmmc_test.dir/vmmc_test.cpp.o.d"
  "vmmc_test"
  "vmmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
