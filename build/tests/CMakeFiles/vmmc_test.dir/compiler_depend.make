# Empty compiler generated dependencies file for vmmc_test.
# This may be replaced when dependencies are built.
