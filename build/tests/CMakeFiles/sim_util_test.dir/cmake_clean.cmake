file(REMOVE_RECURSE
  "CMakeFiles/sim_util_test.dir/sim_util_test.cpp.o"
  "CMakeFiles/sim_util_test.dir/sim_util_test.cpp.o.d"
  "sim_util_test"
  "sim_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
