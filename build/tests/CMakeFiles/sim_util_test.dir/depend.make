# Empty dependencies file for sim_util_test.
# This may be replaced when dependencies are built.
