# Empty dependencies file for reliability_test.
# This may be replaced when dependencies are built.
