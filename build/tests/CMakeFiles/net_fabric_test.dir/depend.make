# Empty dependencies file for net_fabric_test.
# This may be replaced when dependencies are built.
