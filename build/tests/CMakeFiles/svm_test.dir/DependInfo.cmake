
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/svm_test.cpp" "tests/CMakeFiles/svm_test.dir/svm_test.cpp.o" "gcc" "tests/CMakeFiles/svm_test.dir/svm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svm/CMakeFiles/san_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/san_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/vmmc/CMakeFiles/san_vmmc.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/san_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/san_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/san_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/san_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
