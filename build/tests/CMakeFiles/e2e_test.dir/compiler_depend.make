# Empty compiler generated dependencies file for e2e_test.
# This may be replaced when dependencies are built.
