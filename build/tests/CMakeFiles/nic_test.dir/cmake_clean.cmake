file(REMOVE_RECURSE
  "CMakeFiles/nic_test.dir/nic_test.cpp.o"
  "CMakeFiles/nic_test.dir/nic_test.cpp.o.d"
  "nic_test"
  "nic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
