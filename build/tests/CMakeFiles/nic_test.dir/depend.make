# Empty dependencies file for nic_test.
# This may be replaced when dependencies are built.
