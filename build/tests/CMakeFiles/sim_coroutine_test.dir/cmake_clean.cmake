file(REMOVE_RECURSE
  "CMakeFiles/sim_coroutine_test.dir/sim_coroutine_test.cpp.o"
  "CMakeFiles/sim_coroutine_test.dir/sim_coroutine_test.cpp.o.d"
  "sim_coroutine_test"
  "sim_coroutine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_coroutine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
