# Empty dependencies file for sim_coroutine_test.
# This may be replaced when dependencies are built.
