file(REMOVE_RECURSE
  "CMakeFiles/mapper_test.dir/mapper_test.cpp.o"
  "CMakeFiles/mapper_test.dir/mapper_test.cpp.o.d"
  "mapper_test"
  "mapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
