// Quickstart: build a 2-node cluster with the reliable firmware, exchange a
// message through VMMC, inject some faults, and watch the protocol recover.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <numeric>

#include "harness/cluster.hpp"
#include "harness/trace.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

using namespace sanfault;

namespace {

sim::Process run_demo(harness::Cluster& c, vmmc::Endpoint& alice,
                      vmmc::Endpoint& bob, bool& done) {
  // Bob exports 64 KB of receive space; Alice imports it.
  auto exp = bob.export_buffer(64 * 1024);
  auto imp = co_await alice.import(c.hosts[1], exp);
  std::printf("[%8.1f us] import granted: %zu bytes at host %u\n",
              sim::to_micros(c.sched.now()), imp->size, imp->remote.v);

  // Deposit a 20 KB message (segmented at 4 KB by the MCP) at offset 1024.
  std::vector<std::uint8_t> msg(20000);
  std::iota(msg.begin(), msg.end(), std::uint8_t{0});
  co_await alice.send(*imp, 1024, msg, /*tag=*/7);

  auto ev = co_await bob.notifications(exp).pop(c.sched);
  std::printf("[%8.1f us] deposit landed: %llu bytes at offset %llu, tag %llu\n",
              sim::to_micros(ev.at),
              static_cast<unsigned long long>(ev.length),
              static_cast<unsigned long long>(ev.offset),
              static_cast<unsigned long long>(ev.tag));

  const auto buf = bob.buffer(exp);
  bool intact = true;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    intact = intact && buf[1024 + i] == msg[i];
  }
  std::printf("payload intact: %s\n", intact ? "yes" : "NO");
  done = true;
}

}  // namespace

int main() {
  // A cluster: topology, fabric, NICs, and the paper's retransmission
  // firmware — with an aggressive injected error rate of 1e-2 (every 100th
  // data packet is dropped before reaching the wire, §5.1.3).
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.rel.retrans_interval = sim::milliseconds(1);
  cfg.rel.drop_interval = 3;  // demo-grade brutality: ~every 3rd packet
  harness::Cluster c(cfg);

  vmmc::Endpoint alice(c.sched, c.nic(0));
  vmmc::Endpoint bob(c.sched, c.nic(1));
  harness::PacketTrace trace(c.fabric(), c.sched, /*capacity=*/12);

  bool done = false;
  run_demo(c, alice, bob, done);
  while (!done && c.sched.step()) {
  }

  const auto& s = c.rel(0).stats();
  std::printf(
      "\nsender firmware: %llu data packets, %llu injected drops, "
      "%llu retransmissions, %llu go-back-N rounds\n",
      static_cast<unsigned long long>(s.data_tx),
      static_cast<unsigned long long>(s.injected_drops),
      static_cast<unsigned long long>(s.retransmissions),
      static_cast<unsigned long long>(s.retrans_rounds));
  std::printf("transparent recovery: the application never noticed.\n");

  std::printf("\nlast wire events (PacketTrace):\n");
  trace.dump(stdout);
  return 0;
}
