// On-demand mapping walkthrough: watch the BFS prober discover routes on the
// Figure-2 fabric, compare against the full-map UP*/DOWN* baseline, and move
// a node to demonstrate dynamic reconfiguration (§4.2).
//
//   ./build/examples/mapping_demo
#include <cstdio>
#include <optional>

#include "firmware/updown.hpp"
#include "harness/cluster.hpp"

using namespace sanfault;

namespace {

void map_and_report(harness::Cluster& c, std::size_t from, std::size_t to) {
  bool done = false;
  std::optional<net::Route> route;
  c.mapper(from).request_route(c.hosts[to], [&](std::optional<net::Route> r) {
    route = std::move(r);
    done = true;
  });
  while (!done && c.sched.step()) {
  }
  const auto& st = c.mapper(from).stats();
  std::printf("  host %zu -> host %zu: route %-12s %3llu host + %3llu switch probes, %7.3f ms\n",
              from, to, route ? route->str().c_str() : "(unreachable)",
              static_cast<unsigned long long>(st.last_host_probes),
              static_cast<unsigned long long>(st.last_switch_probes),
              sim::to_millis(st.last_mapping_time));
}

}  // namespace

int main() {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 32;  // near-full fabric (probing empty crossbar ports is
                       // what makes switch detection expensive); the two
                       // free ports left on each 16-port switch host the
                       // dynamic-reconfiguration part of the demo
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.preload_routes = false;  // cold start: nobody knows any routes
  harness::Cluster c(cfg);

  std::printf("Figure-2 fabric: sw8_a - sw16_a - sw16_b - sw8_b (redundant trunks)\n");
  std::printf("hosts 0..3 sit on those switches in order; host 4 shares sw8_a.\n\n");

  std::printf("cold-start on-demand mappings from host 4:\n");
  map_and_report(c, 4, 0);  // 1 switch
  map_and_report(c, 4, 1);  // 2 switches
  map_and_report(c, 4, 2);  // 3 switches
  map_and_report(c, 4, 3);  // 4 switches

  std::printf("\nfull-map baseline for comparison (UP*/DOWN* over the whole fabric):\n");
  firmware::UpDownRouting ud(c.topo);
  for (std::size_t t = 0; t < 4; ++t) {
    auto r = ud.route(c.hosts[4], c.hosts[t]);
    std::printf("  host 4 -> host %zu: UP*/DOWN* route %s\n", t,
                r ? r->str().c_str() : "(none)");
  }
  std::printf("  (a full map must probe every switch port: ~%u probes vs the handful above)\n",
              2u * (8 + 16 + 16 + 8) + 8u);

  // Dynamic reconfiguration: move host 3 from sw8_b to sw16_a and remap.
  std::printf("\nmoving host 3 from sw8_b to a free port on sw16_a...\n");
  auto att = c.topo.peer_of({net::Device::host(c.hosts[3]), 0});
  c.topo.disconnect(att->link);
  c.topo.connect({net::Device::host(c.hosts[3]), 0},
                 {net::Device::sw(c.switches[1]), 14});  // a free port
  c.mapper(3).flush_cache();  // the moved NIC rediscovers its attach port
  map_and_report(c, 4, 3);    // re-mapping finds the new location
  return 0;
}
