// Storage failover: the paper's motivating commercial scenario (§1, §7 cite
// VI-based database storage [33]) — a client streams blocks to a storage
// server over the Figure-2 redundant fabric; mid-stream, the trunk its route
// uses dies permanently. The reliability firmware detects the dead path, the
// on-demand mapper discovers the redundant route, a new sequence-number
// generation starts, and the stream completes without losing a block.
//
//   ./build/examples/storage_failover
#include <cstdio>
#include <vector>

#include "harness/cluster.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

using namespace sanfault;

namespace {

constexpr int kBlocks = 48;
constexpr std::size_t kBlockBytes = 16 * 1024;

sim::Process client(harness::Cluster& c, vmmc::Endpoint& ep,
                    vmmc::Endpoint::Import imp, bool& done) {
  for (int b = 0; b < kBlocks; ++b) {
    std::vector<std::uint8_t> block(kBlockBytes,
                                    static_cast<std::uint8_t>(b + 1));
    co_await ep.send(imp, 0, std::move(block), static_cast<std::uint64_t>(b));
  }
  done = true;
}

// A failover restarts the sequence space, so blocks that were delivered but
// not yet acknowledged are deposited again (VMMC deposits are idempotent:
// same offset, same bytes). Completion therefore means "every distinct block
// arrived", and duplicates are reported, not treated as errors.
sim::Process server(harness::Cluster& c, vmmc::Endpoint& ep,
                    vmmc::ExportId exp, int& distinct, int& duplicates,
                    bool& done) {
  std::vector<bool> seen(kBlocks, false);
  while (distinct < kBlocks) {
    auto ev = co_await ep.notifications(exp).pop(c.sched);
    const auto b = static_cast<std::size_t>(ev.tag);
    if (b < seen.size() && !seen[b]) {
      seen[b] = true;
      ++distinct;
    } else {
      ++duplicates;
    }
  }
  done = true;
}

}  // namespace

int main() {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 36;  // fully-populated fabric (fast on-demand mapping)
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.rel.fail_threshold = sim::milliseconds(20);  // fast failover demo
  harness::Cluster c(cfg);

  // Client on sw8_a (host 0), storage server on sw8_b (host 3): the path
  // crosses all three trunk segments.
  vmmc::Endpoint client_ep(c.sched, c.nic(0));
  vmmc::Endpoint server_ep(c.sched, c.nic(3));
  auto exp = server_ep.export_buffer(kBlockBytes);

  bool setup = false;
  vmmc::Endpoint::Import imp;
  [](harness::Cluster& cc, vmmc::Endpoint& ep, vmmc::ExportId e,
     vmmc::Endpoint::Import& out, bool& ok) -> sim::Process {
    auto i = co_await ep.import(cc.hosts[3], e);
    out = *i;
    ok = true;
  }(c, client_ep, exp, imp, setup);
  while (!setup && c.sched.step()) {
  }

  int distinct = 0;
  int duplicates = 0;
  bool recv_done = false;
  bool send_done = false;
  server(c, server_ep, exp, distinct, duplicates, recv_done);
  client(c, client_ep, imp, send_done);

  // Kill the primary trunks 2 ms into the stream (the preloaded shortest
  // route uses the first trunk of each redundant pair).
  c.sched.after(sim::milliseconds(2), [&] {
    std::printf("[%8.3f ms] *** primary trunk links fail permanently ***\n",
                sim::to_millis(c.sched.now()));
    c.topo.set_link_up(net::LinkId{0}, false);
    c.topo.set_link_up(net::LinkId{2}, false);
    c.topo.set_link_up(net::LinkId{4}, false);
  });

  while ((!recv_done || !send_done) && c.sched.step()) {
  }

  std::printf(
      "[%8.3f ms] stream complete: %d/%d distinct blocks (%d idempotent "
      "re-deposits across the failover)\n",
      sim::to_millis(c.sched.now()), distinct, kBlocks, duplicates);

  const auto& fw = c.rel(0).stats();
  const auto& mp = c.mapper(0).stats();
  std::printf("\nfailover anatomy (client NIC):\n");
  std::printf("  path failures declared : %llu\n",
              static_cast<unsigned long long>(fw.path_failures));
  std::printf("  re-mapping requests    : %llu\n",
              static_cast<unsigned long long>(fw.remap_requests));
  std::printf("  mappings succeeded     : %llu (last one took %.3f ms, %llu+%llu probes)\n",
              static_cast<unsigned long long>(mp.mappings_succeeded),
              sim::to_millis(mp.last_mapping_time),
              static_cast<unsigned long long>(mp.last_host_probes),
              static_cast<unsigned long long>(mp.last_switch_probes));
  std::printf("  retransmissions        : %llu\n",
              static_cast<unsigned long long>(fw.retransmissions));
  const auto* ch = c.rel(0).tx_channel(c.hosts[3]);
  std::printf("  sequence generation    : %u (a re-map restarts the space)\n",
              ch != nullptr ? ch->generation : 0);
  return distinct == kBlocks ? 0 : 1;
}
