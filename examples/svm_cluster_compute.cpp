// SVM cluster computing: run the three SPLASH-2 kernels on the paper's
// 4-node / 8-processor configuration, under a chosen error rate, and print
// the Figure-9-style execution-time breakdown plus the numerical
// verification each kernel performs (FFT round-trip, Radix sortedness,
// Water momentum conservation).
//
//   ./build/examples/svm_cluster_compute [drop_interval]
//   e.g. ./build/examples/svm_cluster_compute 1000   # error rate 1e-3
#include <cstdio>
#include <cstdlib>

#include "apps/fft.hpp"
#include "apps/radix.hpp"
#include "apps/water.hpp"
#include "harness/cluster.hpp"

using namespace sanfault;

namespace {

harness::Cluster make_cluster(std::uint64_t drop_interval) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.rel.drop_interval = drop_interval;
  cfg.rel.fail_threshold = sim::seconds(30);
  cfg.rel.fail_min_rounds = 1000;
  return harness::Cluster(cfg);
}

void report(const char* name, const apps::AppResult& r) {
  const auto agg = r.aggregate();
  std::printf("%-14s verified=%-3s elapsed=%8.2f ms | barrier %7.2f  lock %7.2f  data %8.2f  compute %8.2f (ms, summed over 8 procs)\n",
              name, r.verified ? "yes" : "NO", sim::to_millis(r.elapsed),
              sim::to_millis(agg.barrier), sim::to_millis(agg.lock),
              sim::to_millis(agg.data), sim::to_millis(agg.compute));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t drop =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 0;
  std::printf("4 nodes x 2 processors over the reliable firmware");
  if (drop != 0) {
    std::printf(", dropping every ~%llu-th data packet",
                static_cast<unsigned long long>(drop));
  }
  std::printf("\n\n");

  {
    harness::Cluster c = make_cluster(drop);
    apps::FftConfig cfg;
    cfg.log2_points = 14;
    cfg.iterations = 2;
    report("FFT", apps::run_fft(c, cfg));
  }
  {
    harness::Cluster c = make_cluster(drop);
    apps::RadixConfig cfg;
    cfg.num_keys = 1 << 16;
    cfg.iterations = 4;
    report("RadixLocal", apps::run_radix(c, cfg));
  }
  {
    harness::Cluster c = make_cluster(drop);
    apps::WaterConfig cfg;
    cfg.num_molecules = 512;
    cfg.steps = 3;
    report("WaterNSquared", apps::run_water(c, cfg));
  }
  return 0;
}
