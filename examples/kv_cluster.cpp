// A replicated key-value cluster riding the fault-tolerant SAN.
//
// Four KV server nodes (primary-backup per shard, consistent-hash map) and
// two client hosts run on the paper's Figure-2 redundant fabric. An
// open-loop population of 100 clients drives GET/PUT/DEL traffic; one third
// of the way in, a trunk link dies permanently. The firmware declares the
// path dead, the on-demand mapper discovers the redundant trunk, sequence
// generations restart — and the service rides through it: clients fail over
// to shard backups, retries are deduplicated server-side, and the post-run
// audit shows every committed write on both replicas exactly once.
//
//   ./build/examples/kv_cluster
#include <cstdio>

#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "traffic/engine.hpp"

using namespace sanfault;

int main() {
  kv::KvRigConfig rc;
  rc.num_servers = 4;
  rc.num_client_hosts = 2;
  rc.cluster.topo = harness::TopoKind::kFigure2;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = 100;
  tc.total_requests = 3000;
  tc.rate_rps = 50000;
  tc.zipf_theta = 0.99;
  tc.seed = 7;
  traffic::TrafficEngine engine(rig.c.sched, rig.client_view(), tc);
  engine.start();

  rig.c.sched.after(sim::milliseconds(20), [&rig] {
    std::printf("[%8.3f ms] *** trunk link 0 (sw8_a <-> sw16_a) dies ***\n",
                sim::to_millis(rig.c.sched.now()));
    rig.c.topo.set_link_up(net::LinkId{0}, false);
  });

  while (!engine.done() && rig.c.sched.step()) {
  }
  const double elapsed_ms = sim::to_millis(rig.c.sched.now());
  rig.c.sched.run_for(sim::milliseconds(100));
  while (!rig.servers_idle() && rig.c.sched.step()) {
  }
  rig.c.sched.run_for(sim::milliseconds(100));

  const auto& s = engine.stats();
  std::printf("[%8.3f ms] run complete: %llu/%llu ok (availability %.4f)\n",
              elapsed_ms, static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.issued), s.availability());
  std::printf("\nlatency (us): p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f  max %.1f\n",
              static_cast<double>(s.latency.quantile(0.50)) / 1e3,
              static_cast<double>(s.latency.quantile(0.90)) / 1e3,
              static_cast<double>(s.latency.quantile(0.99)) / 1e3,
              static_cast<double>(s.latency.quantile(0.999)) / 1e3,
              static_cast<double>(s.latency.max()) / 1e3);
  std::printf("retries %llu, client failovers %llu\n",
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.failovers));

  std::uint64_t path_failures = 0;
  std::uint64_t remaps = 0;
  for (std::size_t i = 0; i < rig.c.size(); ++i) {
    path_failures += rig.c.rel(i).stats().path_failures;
    remaps += rig.c.rel(i).stats().remap_requests;
  }
  std::printf("firmware: %llu path failures declared, %llu re-map requests\n",
              static_cast<unsigned long long>(path_failures),
              static_cast<unsigned long long>(remaps));

  const kv::AuditResult audit =
      kv::audit(*rig.map, rig.server_view(), engine.shadow());
  std::printf(
      "\naudit: %llu committed writes — lost %llu, duplicated %llu, replica "
      "mismatches %llu, alien values %llu => %s\n",
      static_cast<unsigned long long>(audit.committed),
      static_cast<unsigned long long>(audit.lost),
      static_cast<unsigned long long>(audit.duplicated),
      static_cast<unsigned long long>(audit.replica_mismatches),
      static_cast<unsigned long long>(audit.alien_values),
      audit.ok() ? "OK" : "FAIL");
  return audit.ok() ? 0 : 1;
}
