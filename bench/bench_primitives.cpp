// google-benchmark microbenchmarks of the simulator's hot primitives: these
// bound how much simulated traffic the harness can push per wall-second and
// guard against regressions in the event loop and protocol fast paths.
#include <benchmark/benchmark.h>

#include "firmware/raw.hpp"
#include "harness/cluster.hpp"
#include "net/crc.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/server.hpp"

namespace {

using namespace sanfault;

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.after(static_cast<sim::Duration>(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_SchedulerCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    int depth = 0;
    std::function<void()> chain = [&] {
      if (++depth < 1000) s.after(1, chain);
    };
    s.after(1, chain);
    s.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerCascade);

void BM_FifoServer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    sim::FifoServer srv(s);
    for (int i = 0; i < 1000; ++i) srv.submit(10, [] {});
    s.run();
    benchmark::DoNotOptimize(srv.jobs_served());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FifoServer);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_ShortestRouteFigure2(benchmark::State& state) {
  auto f = net::make_figure2_fabric(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.topo.shortest_route(f.hosts[0], f.hosts[3]));
  }
}
BENCHMARK(BM_ShortestRouteFigure2);

void BM_EndToEndPacketRaw(benchmark::State& state) {
  // Full stack cost of one delivered 4 KB packet (raw firmware).
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kRaw;
  harness::Cluster c(cfg);
  std::uint64_t delivered = 0;
  c.nic(1).set_host_rx([&](net::UserHeader, net::PayloadRef,
                           net::HostId) { ++delivered; });
  for (auto _ : state) {
    c.send(0, 1, std::vector<std::uint8_t>(4096, 1));
    c.sched.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndPacketRaw);

void BM_EndToEndPacketReliable(benchmark::State& state) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  harness::Cluster c(cfg);
  std::uint64_t delivered = 0;
  c.nic(1).set_host_rx([&](net::UserHeader, net::PayloadRef,
                           net::HostId) { ++delivered; });
  for (auto _ : state) {
    c.send(0, 1, std::vector<std::uint8_t>(4096, 1));
    // Drain the current burst (timers re-arm forever; bound the drain).
    c.sched.run_until(c.sched.now() + sim::microseconds(200));
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndPacketReliable);

}  // namespace

BENCHMARK_MAIN();
