// Repair-bandwidth vs foreground-goodput sweep: the erasure-coded striped
// object class (src/ec, src/kv striped/repair) under a clos host kill, with
// the online SNS-style repair machines rebuilding the dead server's units
// while the primary-backup KV service keeps serving an open-loop foreground
// workload over the same fabric.
//
// Per cell (throttle level x foreground load): preload a striped keyspace,
// run the foreground traffic, kill one unit-holding server at the p25 phase,
// let SWIM confirm, read the whole striped keyspace back mid-repair (degraded
// reads must return exact bytes), then drain repair and audit. The cell
// reports foreground goodput, the repair drain time, and the observed repair
// bandwidth — the sweep is the "repair bandwidth vs goodput dip" experiment
// in docs/EXPERIMENTS.md.
//
// Hard gates (non-zero exit on violation — this is a CI gate):
//   * completeness — every committed stripe decodes and is whole again on
//     live holders (extended exactly-once audit, audit_striped);
//   * the foreground service's own exactly-once audit stays clean;
//   * no live repair machine abandons a stripe, and the kill cost units;
//   * throttled cells: the token bucket engaged and was never overdrawn
//     (moved bytes <= bucket + overdraft + refill since the kill);
//   * tighter throttles drain strictly no faster, and the most-throttled
//     cell's goodput stays within 10% of the unthrottled cell at the same
//     load — the goodput dip is bounded by the throttle.
//
// A separate `--sim-threads N` mode mirrors bench_chaos's determinism smoke
// on the clos-16 fabric with a permanent host kill: N=0 runs the serial
// oracle, N>0 the conservative parallel engine; CI byte-compares the two
// artifacts. (The KV rigs themselves are serial-only; the smoke covers the
// firmware layers repair traffic rides on.)
//
//   ./build/bench/bench_repair [--quick] [--json <file>]
//                              [--metrics-json <file>] [--log <file>]
//                              [--jobs <N>] [--sim-threads <N>]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>
#include <string_view>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"
#include "harness/cluster.hpp"
#include "harness/parallel_cluster.hpp"
#include "harness/table.hpp"
#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "membership/swim.hpp"
#include "obs/metrics.hpp"
#include "parallel_sweep.hpp"
#include "sim/process.hpp"
#include "traffic/engine.hpp"

namespace {

using namespace sanfault;

struct RepairCellSpec {
  /// Repair token-bucket rate in bytes/sec; 0 = unthrottled.
  std::uint64_t throttle = 0;
  /// Foreground open-loop request rate.
  double rate_rps = 50'000;
  std::size_t hosts = 64;  // 64 -> clos-64 (k=8), 16 -> clos-16 (k=4)
  /// Only the tightest throttle is slow enough that the mid-repair read
  /// battery is guaranteed to catch un-repaired stripes (degraded reads).
  bool expect_degraded = false;
};

struct RepairCellResult {
  RepairCellSpec spec;
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double goodput_rps = 0;
  double availability = 0;
  std::uint64_t stripes_repaired = 0;
  std::uint64_t stripes_abandoned = 0;  // live machines only
  std::uint64_t units_rebuilt = 0;
  std::uint64_t repair_bytes = 0;       // fetched + written, live machines
  std::uint64_t throttle_waits = 0;
  sim::Duration repair_drain = 0;       // kill -> all live machines idle
  double repair_bw_bps = 0;             // repair_bytes / repair_drain
  std::uint64_t degraded_reads = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_exact = 0;
  std::uint64_t read_total = 0;
  bool throttle_bound_ok = true;
  kv::StripedAuditResult striped_audit;
  kv::AuditResult kv_audit;
  std::uint64_t live_mismatches = 0;  // replica divergence off-victim shards
  bool foreground_ok = false;
  std::string event_log;      // per-machine repair stats + event lines
  std::string metrics_json;
  std::vector<std::string> violations;
};

/// Replica-divergence count over the shards that do NOT touch the victim.
/// On the victim's own shards, a write in flight at the kill legitimately
/// leaves one-sided residue (e.g. the backup applied and acked, but the ack
/// could not reach the dead primary, which therefore never applied) — and no
/// such write was ever acknowledged to a client, so lost/duplicated/alien
/// from the full audit still gate those shards. Live shards get the strict
/// two-replica divergence check.
std::uint64_t live_shard_mismatches(
    const kv::ShardMap& map, const std::vector<const kv::KvServer*>& servers,
    net::HostId victim) {
  std::unordered_map<std::uint32_t, const kv::KvServer*> by_host;
  for (const auto* s : servers) by_host[s->host().v] = s;
  std::uint64_t mismatches = 0;
  for (std::size_t shard = 0; shard < map.num_shards(); ++shard) {
    if (map.primary(shard).v == victim.v || map.backup(shard).v == victim.v) {
      continue;
    }
    const kv::KvServer* prim = by_host.at(map.primary(shard).v);
    const kv::KvServer* back = by_host.at(map.backup(shard).v);
    for (const auto& [key, value] : prim->store()) {
      if (map.shard_of(key) != shard) continue;
      const auto bit = back->store().find(key);
      if (bit == back->store().end() || bit->second != value) ++mismatches;
    }
    for (const auto& [key, value] : back->store()) {
      if (map.shard_of(key) != shard) continue;
      if (!prim->store().contains(key)) ++mismatches;
    }
  }
  return mismatches;
}

/// Tally for the mid-repair striped read battery.
struct ReadTally {
  std::uint64_t ok = 0;
  std::uint64_t exact = 0;
  std::uint64_t total = 0;
  bool done = false;
};

constexpr std::uint32_t kObjectLen = 512;  // 6 units x ~128 B per stripe

RepairCellResult run_repair_cell(const RepairCellSpec& spec,
                                 std::uint64_t total_requests,
                                 std::size_t num_clients,
                                 std::uint64_t preload_keys,
                                 bool want_metrics) {
  kv::KvRigConfig rc;
  rc.num_servers = spec.hosts == 64 ? 16 : spec.hosts / 2;
  rc.num_client_hosts = spec.hosts - rc.num_servers;
  rc.cluster.topo = harness::TopoKind::kClos;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.nic.send_buffers = 64;
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  // Configured-deployment mapper mode for clos remaps (see bench_chaos).
  rc.cluster.clos.k = spec.hosts <= 16 ? 4 : 8;
  rc.cluster.ondemand.configured_identity = true;
  rc.cluster.ondemand.multipath = true;
  rc.cluster.ondemand.max_probes = std::size_t{1} << 17;
  rc.cluster.ondemand.probe_timeout = sim::microseconds(30);
  rc.membership = true;
  rc.pod_aware_placement = true;
  rc.ring_per_peer = 16 * 1024;
  // Congestion-tolerant failure detection: SWIM pings share the fabric with
  // the foreground bursts, and the library's test-tuned 200 us / 3 ms
  // timeouts false-confirm live peers under 100 krps of KV traffic — which
  // the repair machines would then "repair". Production-style margins keep
  // detection honest; the read battery and drain poller scale with
  // detection_bound(), so cells stay comparable.
  rc.swim.protocol_period = sim::milliseconds(2);
  rc.swim.probe_timeout = sim::milliseconds(1);
  rc.swim.suspect_timeout = sim::milliseconds(20);
  rc.striped = true;
  rc.repair.bandwidth_bytes_per_sec = spec.throttle;
  // A small bucket keeps throttled repair genuinely paced (per-machine moved
  // bytes exceed the burst, so the token bucket engages and the degraded-read
  // window stays open); unthrottled cells never consult it.
  rc.repair.burst_bytes = 512;
  rc.repair.log_events = true;
  kv::KvRig rig(rc);

  // Preload the striped keyspace — the repair corpus.
  kv::StripedShadow shadow;
  bool preloaded = false;
  [](kv::KvRig& rig, kv::StripedShadow& shadow, std::uint64_t keys,
     bool& done) -> sim::Process {
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < keys; ++key) {
      const kv::RequestId id{99, key + 1};
      shadow.record_issued(id, key, kObjectLen);
      auto put = co_await sc.put(id, key, kv::make_value(id, kObjectLen));
      if (put.status == kv::Status::kOk) shadow.record_committed(id);
    }
    done = true;
  }(rig, shadow, preload_keys, preloaded);
  while (!preloaded && rig.c.sched.step()) {
  }

  RepairCellResult r;
  r.spec = spec;
  if (shadow.committed().size() != preload_keys) {
    r.violations.push_back("preload incomplete: " +
                           std::to_string(shadow.committed().size()) + "/" +
                           std::to_string(preload_keys));
    return r;
  }

  // Foreground: the production primary-backup KV workload.
  traffic::TrafficConfig tc;
  tc.num_clients = num_clients;
  tc.total_requests = total_requests;
  tc.rate_rps = spec.rate_rps;
  tc.zipf_theta = 0.99;
  // Read-only foreground, by design. The primary-backup write path has no
  // re-replication: a write to a shard whose primary died is forwarded by
  // the failed-over backup straight back to the corpse, where it retries
  // its full retransmission budget. Sustained post-kill writes therefore
  // measure that doomed-forwarding storm (it starves NIC send buffers until
  // SWIM false-confirms the whole fabric), not repair interference. Reads
  // fail over to the backup and keep serving — the contended-but-healthy
  // baseline this sweep needs.
  tc.get_ratio = 1.0;
  tc.del_ratio = 0.0;
  tc.seed = 42;
  traffic::TrafficEngine traffic(rig.c.sched, rig.client_view(), tc);

  // At p25: kill a unit-holding server for good, then — once SWIM has had
  // time to confirm — read the whole striped keyspace back mid-repair.
  const net::HostId victim = rig.c.hosts[5];
  ReadTally tally;
  tally.total = preload_keys;
  bool killed = false;
  sim::Time t_kill = 0;
  sim::Time t_drained = 0;
  // Sim-clock poller armed at the kill: the drain stamp is taken the
  // millisecond every live machine has both enqueued work (i.e. SWIM
  // confirmed) and gone idle again — repair usually finishes while the
  // foreground traffic is still running, so sampling after traffic would
  // right-censor every cell to the same timestamp.
  std::function<void()> poll_drained = [&] {
    bool enqueued = false;
    bool idle = true;
    for (const auto& rm : rig.repairs) {
      if (rm->host() == victim) continue;
      enqueued |= rm->stats().stripes_enqueued > 0;
      idle &= rm->idle();
    }
    if (enqueued && idle) {
      t_drained = rig.c.sched.now();
      return;
    }
    rig.c.sched.after(sim::milliseconds(1), poll_drained);
  };
  traffic.set_phase_hook([&](std::string_view phase) {
    if (phase != "p25" || killed) return;
    killed = true;
    t_kill = rig.c.sched.now();
    rig.c.fabric().cut_host(victim);
    poll_drained();
    const sim::Duration bound = membership::SwimAgent::detection_bound(
        rig.config().swim, rig.c.size());
    rig.c.sched.after(bound + sim::milliseconds(2), [&rig, &shadow, &tally] {
      [](kv::KvRig& rig, const kv::StripedShadow& shadow,
         ReadTally& tally) -> sim::Process {
        auto& sc = rig.striped_client(1);
        for (const auto& [packed, w] : shadow.issued()) {
          auto get = co_await sc.get({98, w.id.seq}, w.key);
          if (get.status == kv::Status::kOk) {
            ++tally.ok;
            if (get.value == kv::make_value(w.id, w.object_len)) ++tally.exact;
          }
        }
        tally.done = true;
      }(rig, shadow, tally);
    });
  });
  const sim::Time t_traffic = rig.c.sched.now();  // preload already elapsed
  traffic.start();

  const sim::Time cap = sim::seconds(600);
  while (!traffic.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  const double elapsed_s = sim::to_seconds(rig.c.sched.now() - t_traffic);
  while (!tally.done && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }

  // If repair outlasted the foreground run, keep driving until the poller
  // stamps the drain.
  while (killed && t_drained == 0 && rig.c.sched.now() < cap) {
    rig.c.sched.run_for(sim::milliseconds(1));
  }
  rig.quiesce();

  const auto& s = traffic.stats();
  r.issued = s.issued;
  r.ok = s.ok;
  r.failed = s.failed;
  r.goodput_rps = elapsed_s > 0 ? static_cast<double>(s.ok) / elapsed_s : 0;
  r.availability = s.availability();
  r.degraded_reads = rig.striped_client(1).stats().degraded_reads;
  r.reads_ok = tally.ok;
  r.reads_exact = tally.exact;
  r.read_total = tally.total;
  r.repair_drain = killed && t_drained > t_kill ? t_drained - t_kill : 0;

  std::string log;
  for (const auto& rm : rig.repairs) {
    if (rm->host() == victim) continue;
    const auto& st = rm->stats();
    r.stripes_repaired += st.stripes_repaired;
    r.stripes_abandoned += st.stripes_abandoned;
    r.units_rebuilt += st.units_rebuilt;
    r.repair_bytes += st.bytes_fetched + st.bytes_written;
    r.throttle_waits += st.throttle_waits;
    if (spec.throttle > 0 && killed) {
      const std::uint64_t moved = st.bytes_fetched + st.bytes_written;
      const std::uint64_t budget =
          2 * rc.repair.burst_bytes +
          spec.throttle * (t_drained - t_kill) / 1'000'000'000ull;
      if (moved > budget) r.throttle_bound_ok = false;
    }
    log += "node " + std::to_string(rm->host().v) +
           " enq=" + std::to_string(st.stripes_enqueued) +
           " rep=" + std::to_string(st.stripes_repaired) +
           " aband=" + std::to_string(st.stripes_abandoned) +
           " units=" + std::to_string(st.units_rebuilt) +
           " fetched=" + std::to_string(st.bytes_fetched) +
           " written=" + std::to_string(st.bytes_written) +
           " waits=" + std::to_string(st.throttle_waits) + "\n";
    for (const std::string& line : rm->log()) log += "  " + line + "\n";
  }
  r.event_log = std::move(log);
  r.repair_bw_bps =
      r.repair_drain > 0
          ? static_cast<double>(r.repair_bytes) /
                (static_cast<double>(r.repair_drain) / 1e9)
          : 0;

  const auto dead = [&rig](net::HostId h) {
    return rig.agents[0]->confirmed_dead(h);
  };
  r.striped_audit = kv::audit_striped(*rig.stripe_map, *rig.codec,
                                      rig.store_view(), shadow, dead);
  r.kv_audit = kv::audit(*rig.map, rig.server_view(), traffic.shadow());
  r.live_mismatches = live_shard_mismatches(*rig.map, rig.server_view(), victim);
  r.foreground_ok = r.kv_audit.lost == 0 && r.kv_audit.duplicated == 0 &&
                    r.kv_audit.alien_values == 0 && r.live_mismatches == 0;

  // --- per-cell gates -------------------------------------------------------
  if (!killed) r.violations.emplace_back("p25 never fired; no kill");
  if (!rig.agents[0]->confirmed_dead(victim)) {
    r.violations.emplace_back("SWIM never confirmed the victim dead");
  }
  if (!r.striped_audit.ok()) {
    r.violations.push_back(
        "striped audit: lost=" + std::to_string(r.striped_audit.lost) +
        " mismatched=" + std::to_string(r.striped_audit.mismatched) +
        " duplicated=" + std::to_string(r.striped_audit.duplicated) +
        " incomplete=" + std::to_string(r.striped_audit.incomplete) +
        " alien=" + std::to_string(r.striped_audit.alien_units));
  }
  if (!r.foreground_ok) {
    r.violations.push_back(
        "foreground KV audit: lost=" + std::to_string(r.kv_audit.lost) +
        " duplicated=" + std::to_string(r.kv_audit.duplicated) +
        " live_shard_mismatches=" + std::to_string(r.live_mismatches) +
        " alien=" + std::to_string(r.kv_audit.alien_values));
  }
  if (r.stripes_abandoned != 0) {
    r.violations.push_back("live machines abandoned " +
                           std::to_string(r.stripes_abandoned) + " stripes");
  }
  if (r.stripes_repaired == 0 || r.units_rebuilt == 0) {
    r.violations.emplace_back("the kill cost no units; cell proves nothing");
  }
  if (!tally.done || tally.ok != tally.total || tally.exact != tally.total) {
    r.violations.push_back("mid-repair reads: " + std::to_string(tally.exact) +
                           "/" + std::to_string(tally.total) + " byte-exact");
  }
  if (spec.expect_degraded && r.degraded_reads == 0) {
    r.violations.emplace_back(
        "no degraded read despite the squeezed throttle");
  }
  if (spec.throttle > 0) {
    if (!r.throttle_bound_ok) {
      r.violations.emplace_back("token bucket overdrawn");
    }
    if (r.throttle_waits == 0) {
      r.violations.emplace_back("throttle never engaged");
    }
  }

  if (want_metrics) r.metrics_json = obs::Registry::of(rig.c.sched).to_json();
  return r;
}

bool write_json(const char* path, const std::vector<RepairCellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RepairCellResult& r = rows[i];
    std::fprintf(
        f,
        "  {\"hosts\": %zu, \"throttle_bps\": %llu, \"load_rps\": %.0f, "
        "\"issued\": %llu, \"ok\": %llu, \"failed\": %llu, "
        "\"goodput_rps\": %.1f, \"availability\": %.6f, "
        "\"stripes_repaired\": %llu, \"units_rebuilt\": %llu, "
        "\"repair_bytes\": %llu, \"repair_drain_ns\": %llu, "
        "\"repair_bw_bps\": %.1f, \"throttle_waits\": %llu, "
        "\"degraded_reads\": %llu, \"reads_exact\": %llu, "
        "\"read_total\": %llu, \"striped_audit_ok\": %s, "
        "\"kv_audit_ok\": %s, \"violations\": %zu}%s\n",
        r.spec.hosts, static_cast<unsigned long long>(r.spec.throttle),
        r.spec.rate_rps, static_cast<unsigned long long>(r.issued),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed), r.goodput_rps,
        r.availability, static_cast<unsigned long long>(r.stripes_repaired),
        static_cast<unsigned long long>(r.units_rebuilt),
        static_cast<unsigned long long>(r.repair_bytes),
        static_cast<unsigned long long>(r.repair_drain),
        r.repair_bw_bps, static_cast<unsigned long long>(r.throttle_waits),
        static_cast<unsigned long long>(r.degraded_reads),
        static_cast<unsigned long long>(r.reads_exact),
        static_cast<unsigned long long>(r.read_total),
        r.striped_audit.ok() ? "true" : "false",
        r.foreground_ok ? "true" : "false", r.violations.size(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

bool write_metrics_json(const char* path,
                        const std::vector<RepairCellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RepairCellResult& r = rows[i];
    std::fprintf(f,
                 "{\"cell\": {\"scenario\": \"repair-%llu-%0.0f\", "
                 "\"hosts\": %zu},\n\"metrics\": %s}%s\n",
                 static_cast<unsigned long long>(r.spec.throttle),
                 r.spec.rate_rps, r.spec.hosts, r.metrics_json.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// Concatenated per-cell repair event logs + integer stats — the
/// byte-comparable determinism artifact (verify.sh double-runs and diffs).
bool write_log(const char* path, const std::vector<RepairCellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  for (const RepairCellResult& r : rows) {
    std::fprintf(f, "=== hosts=%zu throttle=%llu load=%.0f ===\n%s",
                 r.spec.hosts,
                 static_cast<unsigned long long>(r.spec.throttle),
                 r.spec.rate_rps, r.event_log.c_str());
  }
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

// ---------------------------------------------------------------------------
// --sim-threads determinism smoke: clos-16 reliable ring + a permanent host
// kill, serial oracle vs conservative parallel engine (see bench_chaos for
// the fig2-16 twin). CI runs N=0 and N=4 and byte-compares the artifacts.

std::vector<std::size_t> smoke_ring(const std::vector<std::uint32_t>& pods) {
  std::vector<std::size_t> order(pods.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pods[a] < pods[b];
                   });
  std::vector<std::size_t> next(pods.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    next[order[i]] = order[(i + 1) % order.size()];
  }
  return next;
}

template <class Rig>
struct SmokePump {
  Rig& rig;
  std::vector<std::size_t> next;
  std::vector<int> remaining;
  std::size_t skip;  // the killed host stops chaining

  SmokePump(Rig& r, const std::vector<std::uint32_t>& pods, int msgs,
            std::size_t victim)
      : rig(r), next(smoke_ring(pods)), remaining(pods.size(), msgs),
        skip(victim) {}

  void send_next(std::size_t i) {
    if (remaining[i] <= 0 || i == skip || next[i] == skip) return;
    --remaining[i];
    std::vector<std::uint8_t> payload(256,
                                      static_cast<std::uint8_t>(0x40 + i));
    rig.send(i, next[i], std::move(payload), {},
             [this, i] { send_next(i); });
  }
};

harness::ClusterConfig smoke_config() {
  harness::ClusterConfig cc;
  cc.num_hosts = 16;
  cc.topo = harness::TopoKind::kClos;
  cc.clos.k = 4;
  cc.fw = harness::FirmwareKind::kReliable;
  cc.mapper = harness::MapperKind::kOnDemand;
  cc.fabric.seed = 3003;
  return cc;
}

const char* smoke_scenario() {
  return
      "scenario repair-sim-threads-smoke\n"
      "seed 23\n"
      "at 400us error_ramp loss=0.002 corrupt=0.001 steps=3 over=600us\n"
      "at 700us partition hosts=5\n";
}

std::string smoke_stats_text(const net::FabricStats& s) {
  return "injected=" + std::to_string(s.injected) +
         " delivered=" + std::to_string(s.delivered) +
         " delivered_corrupt=" + std::to_string(s.delivered_corrupt) +
         " corruptions=" + std::to_string(s.corruptions_injected) +
         " drop_link=" + std::to_string(s.dropped_link_down) +
         " drop_random=" + std::to_string(s.dropped_random) +
         " drop_path_reset=" + std::to_string(s.dropped_path_reset);
}

std::string run_sim_threads_smoke(unsigned threads) {
  constexpr sim::Time kHorizon = 3'000'000;  // 3 ms simulated
  constexpr int kMsgs = 30;
  constexpr std::size_t kVictim = 5;
  const harness::ClusterConfig cc = smoke_config();

  std::string stats;
  std::string metrics;
  std::string chaos_log;
  if (threads == 0) {
    harness::Cluster c(cc);
    chaos::ChaosEngine eng(c.sched, c.fabric(),
                           chaos::Scenario::parse(smoke_scenario()));
    eng.arm();
    SmokePump<harness::Cluster> pump(c, c.host_pods, kMsgs, kVictim);
    for (std::size_t i = 0; i < c.size(); ++i) {
      c.sched.at(1000 + i, [&pump, i] { pump.send_next(i); });
    }
    c.sched.run_until(kHorizon);
    stats = smoke_stats_text(c.fabric().stats());
    metrics = obs::Registry::of(c.sched).to_json();
    chaos_log = eng.log_text();
  } else {
    harness::ParallelCluster pc(
        harness::ParallelClusterConfig{cc, /*partitions=*/4, threads});
    chaos::ChaosEngine eng(pc.engine->control(), pc.injector(),
                           chaos::Scenario::parse(smoke_scenario()));
    eng.arm();
    SmokePump<harness::ParallelCluster> pump(pc, pc.host_pods, kMsgs, kVictim);
    for (std::size_t i = 0; i < pc.size(); ++i) {
      pc.sched_of(i).at(1000 + i, [&pump, i] { pump.send_next(i); });
    }
    pc.engine->run_until(kHorizon);
    stats = smoke_stats_text(pc.fabric_stats());
    metrics = pc.merged_metrics_json();
    chaos_log = eng.log_text();
  }
  return "=== sim-threads determinism smoke: clos-16 ring + host kill ===\n" +
         chaos_log + "stats: " + stats + "\nmetrics: " + metrics + "\n";
}

int run_sim_threads_mode(unsigned threads, const char* log_path) {
  std::printf(
      "sim-threads determinism smoke: clos-16 reliable ring + host kill, "
      "%s\n",
      threads == 0 ? "serial oracle"
                   : ("parallel engine (4 partitions, " +
                      std::to_string(threads) + " threads)")
                         .c_str());
  const std::string artifact = run_sim_threads_smoke(threads);
  if (log_path != nullptr) {
    std::FILE* f = std::fopen(log_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path);
      return 1;
    }
    std::fwrite(artifact.data(), 1, artifact.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", log_path, artifact.size());
  } else {
    std::fwrite(artifact.data(), 1, artifact.size(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  int sim_threads = -1;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* log_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      sim_threads = std::atoi(argv[++i]);
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <file>] "
                   "[--metrics-json <file>] [--log <file>] [--jobs <N>] "
                   "[--sim-threads <N>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (sim_threads >= 0) {
    return run_sim_threads_mode(static_cast<unsigned>(sim_threads), log_path);
  }

  // The throttle sweep. 20 kB/s stretches the drain to hundreds of
  // milliseconds — comfortably past the detection bound, so the mid-repair
  // read battery provably lands in the degraded window; 2 MB/s is two
  // orders of magnitude looser; 0 lets repair stampede. Quick runs the two
  // extremes on the clos-16 fabric — still >= 2 throttle levels for the
  // dip gate.
  std::vector<RepairCellSpec> specs;
  std::uint64_t total_requests = 0;
  std::size_t num_clients = 0;
  std::uint64_t preload_keys = 0;
  if (quick) {
    total_requests = 1200;
    num_clients = 64;
    preload_keys = 32;
    specs = {
        {/*throttle=*/0, /*rate_rps=*/50'000, /*hosts=*/16},
        {/*throttle=*/20'000, /*rate_rps=*/50'000, /*hosts=*/16,
         /*expect_degraded=*/true},
    };
  } else {
    total_requests = 3000;
    num_clients = 128;
    preload_keys = 64;
    for (const double rate : {25'000.0, 100'000.0}) {
      specs.push_back({0, rate, 64});
      specs.push_back({2'000'000, rate, 64});
      specs.push_back({20'000, rate, 64, /*expect_degraded=*/true});
    }
  }

  std::printf(
      "Repair sweep: striped keyspace + host kill + SNS repair vs foreground "
      "KV traffic on clos fabrics, %llu requests per cell, %zu cells\n\n",
      static_cast<unsigned long long>(total_requests), specs.size());

  std::vector<std::function<RepairCellResult()>> cells;
  cells.reserve(specs.size());
  for (const RepairCellSpec& spec : specs) {
    cells.emplace_back(
        [spec, total_requests, num_clients, preload_keys, metrics_path] {
          return run_repair_cell(spec, total_requests, num_clients,
                                 preload_keys, metrics_path != nullptr);
        });
  }
  const std::vector<RepairCellResult> rows =
      bench::run_cells<RepairCellResult>(jobs, cells);

  harness::Table t({"Hosts", "Throttle(B/s)", "Load(rps)", "Goodput(rps)",
                    "Avail", "Repaired", "Units", "RepairKB", "Drain(ms)",
                    "RepairBW(B/s)", "Degraded", "Audit"});
  for (const RepairCellResult& r : rows) {
    t.add_row({std::to_string(r.spec.hosts),
               r.spec.throttle == 0 ? "unthrottled"
                                    : std::to_string(r.spec.throttle),
               harness::fmt(r.spec.rate_rps, 0), harness::fmt(r.goodput_rps, 0),
               harness::fmt(r.availability, 4),
               std::to_string(r.stripes_repaired),
               std::to_string(r.units_rebuilt),
               harness::fmt(static_cast<double>(r.repair_bytes) / 1024.0, 1),
               harness::fmt(static_cast<double>(r.repair_drain) / 1e6, 1),
               harness::fmt(r.repair_bw_bps, 0),
               std::to_string(r.degraded_reads),
               r.striped_audit.ok() && r.foreground_ok ? "OK" : "FAIL"});
  }
  t.print();

  bool all_ok = true;
  for (const RepairCellResult& r : rows) {
    for (const std::string& v : r.violations) {
      std::printf("REPAIR GATE FAILED [throttle=%llu load=%.0f]: %s\n",
                  static_cast<unsigned long long>(r.spec.throttle),
                  r.spec.rate_rps, v.c_str());
      all_ok = false;
    }
  }

  // Cross-cell gates, per load group: tighter throttles must not drain
  // faster, and the tightest throttle's goodput must stay within 10% of the
  // unthrottled cell's — the foreground dip is bounded by the throttle.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows.size(); ++j) {
      const RepairCellResult& a = rows[i];
      const RepairCellResult& b = rows[j];
      if (a.spec.rate_rps != b.spec.rate_rps ||
          a.spec.hosts != b.spec.hosts) {
        continue;
      }
      const std::uint64_t ta =
          a.spec.throttle == 0 ? std::uint64_t(-1) : a.spec.throttle;
      const std::uint64_t tb =
          b.spec.throttle == 0 ? std::uint64_t(-1) : b.spec.throttle;
      if (ta < tb && a.repair_drain < b.repair_drain) {
        std::printf(
            "REPAIR GATE FAILED [load=%.0f]: throttle %llu drained slower "
            "(%.1f ms) than tighter throttle %llu (%.1f ms)\n",
            a.spec.rate_rps, static_cast<unsigned long long>(b.spec.throttle),
            static_cast<double>(b.repair_drain) / 1e6,
            static_cast<unsigned long long>(a.spec.throttle),
            static_cast<double>(a.repair_drain) / 1e6);
        all_ok = false;
      }
      if (a.spec.throttle == 0 && b.spec.expect_degraded &&
          b.goodput_rps < a.goodput_rps * 0.9) {
        std::printf(
            "REPAIR GATE FAILED [load=%.0f]: throttled goodput %.0f rps "
            "dipped >10%% below unthrottled %.0f rps\n",
            a.spec.rate_rps, b.goodput_rps, a.goodput_rps);
        all_ok = false;
      }
    }
  }
  std::printf("\nrepair gates: %s\n", all_ok ? "all cells OK" : "FAILURES");

  if (json_path != nullptr) all_ok = write_json(json_path, rows) && all_ok;
  if (metrics_path != nullptr) {
    all_ok = write_metrics_json(metrics_path, rows) && all_ok;
  }
  if (log_path != nullptr) all_ok = write_log(log_path, rows) && all_ok;
  return all_ok ? 0 : 1;
}
