// Figure 3: one-way latency breakdown for 4-byte messages, with and without
// the retransmission protocol.
//
// Paper (ICPP 2002, Fig. 3): ~8 us total without fault tolerance, ~10 us
// with; the protocol's ~2 us overhead splits about evenly between the send
// path (retransmission-queue management) and the receive path
// (acknowledgment processing).
//
// The per-stage numbers come from the calibrated cost model (they are the
// model's ground truth); the bottom rows cross-check that the measured
// end-to-end ping-pong latency equals the sum of the stages.
#include <cstdio>

#include "harness/cluster.hpp"
#include "harness/microbench.hpp"
#include "harness/table.hpp"

namespace {

using namespace sanfault;
using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

double measure_latency(FirmwareKind kind) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = kind;
  Cluster c(cfg);
  return harness::run_latency(c, 4, 50).one_way_us();
}

}  // namespace

int main() {
  std::printf("=== Figure 3: 4-byte one-way latency breakdown (us) ===\n\n");

  const nic::NicConfig nic_cfg;
  const auto& h = nic_cfg.host;
  const auto& m = nic_cfg.costs;

  // Stage components for a 4-byte PIO message (see nic/cost_model.hpp).
  const double host_send =
      sim::to_micros(h.send_overhead + h.pio_base +
                     static_cast<sim::Duration>(h.pio_per_byte_ns * 4));
  const double nic_send_raw = sim::to_micros(m.mcp_tx);
  const double nic_send_ft = sim::to_micros(m.mcp_tx + m.mcp_tx_reliable);
  // Wire for a 1-switch path: 2 links x 250 ns + 300 ns fall-through +
  // serialization of the ~29-byte wire packet at 160 MB/s + tail propagation.
  net::Packet probe;
  probe.hdr.route.ports = {1};
  probe.payload.assign(4, 0);
  const double wire =
      sim::to_micros(250 + 300 + sim::transfer_time(probe.wire_bytes(), 160e6) + 250);
  const double nic_recv_raw = sim::to_micros(m.mcp_rx);
  const double nic_recv_ft = sim::to_micros(m.mcp_rx + m.mcp_rx_reliable);
  const double host_recv =
      sim::to_micros(300 + sim::transfer_time(4, h.pci_bandwidth_bps) +
                     h.rx_notify);

  harness::Table t({"Stage", "No Fault Tolerance", "With Fault Tolerance"});
  t.add_row({"Host Send", harness::fmt(host_send), harness::fmt(host_send)});
  t.add_row({"NIC Send", harness::fmt(nic_send_raw), harness::fmt(nic_send_ft)});
  t.add_row({"Wire", harness::fmt(wire), harness::fmt(wire)});
  t.add_row({"NIC Receive", harness::fmt(nic_recv_raw), harness::fmt(nic_recv_ft)});
  t.add_row({"Host Receive", harness::fmt(host_recv), harness::fmt(host_recv)});
  const double total_raw =
      host_send + nic_send_raw + wire + nic_recv_raw + host_recv;
  const double total_ft =
      host_send + nic_send_ft + wire + nic_recv_ft + host_recv;
  t.add_row({"Total (model)", harness::fmt(total_raw), harness::fmt(total_ft)});

  const double meas_raw = measure_latency(FirmwareKind::kRaw);
  const double meas_ft = measure_latency(FirmwareKind::kReliable);
  t.add_row({"Total (measured)", harness::fmt(meas_raw), harness::fmt(meas_ft)});
  t.print();

  std::printf(
      "\nPaper reference: ~8 us -> ~10 us; overhead split ~1 us send-side "
      "(queue management) + ~1 us receive-side (ack processing).\n");
  std::printf("Measured overhead: %.2f us (send-side %.2f, receive-side %.2f).\n",
              meas_ft - meas_raw, nic_send_ft - nic_send_raw,
              nic_recv_ft - nic_recv_raw);
  return 0;
}
