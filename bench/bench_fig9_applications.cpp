// Figure 9: execution-time breakdowns for FFT, RadixLocal and WaterNSquared
// on the 4-node / 8-processor cluster, grouped by injected error rate
// (0, 1e-4, 1e-3), with 4 bars per group: r100us-q2, r100us-q32, r1ms-q2,
// r1ms-q32 (retransmission interval x NIC send queue size).
//
// Paper findings to reproduce in shape:
//  * WaterNSquared is insensitive to everything (compute-dominated);
//  * FFT and RadixLocal barely move up to 1e-4;
//  * at 1e-3 and above, performance degrades significantly (> 20%);
//  * within one error rate, parameter choice moves performance by up to ~19%.
//
// Default problem sizes are bench-scale; --paper-sizes switches to Table 2
// (FFT 1M points x 18 iters, Radix 4M keys x 5 iters, Water 4096 molecules
// x 15 steps) — expect a long run.
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/fft.hpp"
#include "apps/radix.hpp"
#include "apps/water.hpp"
#include "harness/cluster.hpp"
#include "harness/table.hpp"

namespace {

using namespace sanfault;
using harness::Cluster;
using harness::ClusterConfig;

struct ProtoConfig {
  const char* name;
  sim::Duration interval;
  std::size_t queue;
};

const ProtoConfig kConfigs[] = {
    {"r100us-q2", sim::microseconds(100), 2},
    {"r100us-q32", sim::microseconds(100), 32},
    {"r1ms-q2", sim::milliseconds(1), 2},
    {"r1ms-q32", sim::milliseconds(1), 32},
};

struct ErrorRate {
  const char* name;
  std::uint64_t drop_interval;
};

const ErrorRate kRates[] = {{"0", 0}, {"1e-4", 10000}, {"1e-3", 1000}};

Cluster make_cluster(const ProtoConfig& pc, std::uint64_t drop_interval) {
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.nic.send_buffers = pc.queue;
  cfg.rel.retrans_interval = pc.interval;
  cfg.rel.drop_interval = drop_interval;
  cfg.rel.fail_threshold = sim::seconds(30);  // no permanent failures here
  cfg.rel.fail_min_rounds = 1000;
  return Cluster(cfg);
}

void print_app(const char* app_name,
               const std::function<apps::AppResult(Cluster&)>& run) {
  std::printf("--- %s ---\n", app_name);
  harness::Table t({"Error", "Config", "Barrier(ms)", "Lock(ms)", "Data(ms)",
                    "Compute(ms)", "Total(ms)", "Elapsed(ms)", "OK"});
  double base_elapsed = -1;
  for (const auto& rate : kRates) {
    for (const auto& pc : kConfigs) {
      Cluster c = make_cluster(pc, rate.drop_interval);
      apps::AppResult r = run(c);
      const auto agg = r.aggregate();
      if (base_elapsed < 0) base_elapsed = sim::to_millis(r.elapsed);
      t.add_row({rate.name, pc.name, harness::fmt(sim::to_millis(agg.barrier)),
                 harness::fmt(sim::to_millis(agg.lock)),
                 harness::fmt(sim::to_millis(agg.data)),
                 harness::fmt(sim::to_millis(agg.compute)),
                 harness::fmt(sim::to_millis(agg.total())),
                 harness::fmt(sim::to_millis(r.elapsed)),
                 r.verified ? "yes" : "NO"});
    }
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool paper = argc > 1 && std::strcmp(argv[1], "--paper-sizes") == 0;

  std::printf("=== Figure 9: application execution-time breakdowns ===\n");
  std::printf("(aggregate over 8 processors; 4 bars per error-rate group)\n\n");

  apps::FftConfig fft;
  fft.log2_points = paper ? 20u : 14u;
  fft.iterations = paper ? 18 : 2;
  print_app(paper ? "FFT (1M points, 18 iterations)"
                  : "FFT (16K points, 2 iterations)",
            [&](Cluster& c) { return apps::run_fft(c, fft); });

  apps::RadixConfig radix;
  radix.num_keys = paper ? (4u << 20) : (1u << 16);
  radix.iterations = paper ? 5 : 4;
  print_app(paper ? "RadixLocal (4M keys, 5 iterations)"
                  : "RadixLocal (64K keys, 4 iterations)",
            [&](Cluster& c) { return apps::run_radix(c, radix); });

  apps::WaterConfig water;
  water.num_molecules = paper ? 4096u : 512u;
  water.steps = paper ? 15 : 3;
  print_app(paper ? "WaterNSquared (4096 molecules, 15 steps)"
                  : "WaterNSquared (512 molecules, 3 steps)",
            [&](Cluster& c) { return apps::run_water(c, water); });

  std::printf(
      "Paper reference: Water insensitive everywhere; FFT/Radix flat up to\n"
      "1e-4 (<=19%% spread across configs); >20%% degradation at 1e-3+.\n");
  return 0;
}
