// Service-level benchmark: the firmware as *infrastructure* rather than as
// the benchmark subject. A sharded primary-backup KV service (src/kv) runs
// on 4 server nodes of the Figure-2 redundant fabric while an open-loop
// client population (src/traffic) drives it; the sweep crosses client count
// x injected error rate x fault campaign:
//
//   steady    — transient drops only (the paper's §5.1.3 injection);
//   link-kill — same drops, plus one trunk link dies permanently mid-run,
//               exercising failure declaration, on-demand re-mapping,
//               generation restart and client failover under live load.
//
// Reported per cell: achieved throughput/goodput, availability, retries,
// client failovers, firmware path failures, and p50/p90/p99/p99.9 latency
// from the HDR histogram — plus a post-run consistency audit proving no
// committed write was lost or duplicated (exactly-once atop at-least-once).
//
//   ./build/bench/bench_kv_service [--quick] [--json <file>]
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "harness/table.hpp"
#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "obs/metrics.hpp"
#include "parallel_sweep.hpp"
#include "traffic/engine.hpp"

namespace {

using namespace sanfault;

struct RunSpec {
  std::size_t clients;
  const char* err_name;
  std::uint64_t drop_interval;  // 0 = clean
  bool link_kill;
};

struct RunResult {
  RunSpec spec;
  double elapsed_ms = 0;
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double throughput_rps = 0;
  double goodput_rps = 0;
  double availability = 0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t path_failures = 0;
  double p50_us = 0, p90_us = 0, p99_us = 0, p999_us = 0;
  kv::AuditResult audit;
  std::string metrics_json;  // full obs registry dump, if requested
};

RunResult run_cell(const RunSpec& spec, std::uint64_t total_requests,
                   double rate_rps, bool want_metrics) {
  kv::KvRigConfig rc;
  rc.num_servers = 4;
  rc.num_client_hosts = 4;
  rc.cluster.topo = harness::TopoKind::kFigure2;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.nic.send_buffers = 64;
  rc.cluster.rel.drop_interval = spec.drop_interval;
  // Fast permanent-failure declaration so the mid-run kill resolves within
  // the run (the paper's conservative default is tuned for hours-long jobs).
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = spec.clients;
  tc.total_requests = total_requests;
  tc.rate_rps = rate_rps;
  tc.zipf_theta = 0.99;
  tc.seed = 42;
  traffic::TrafficEngine engine(rig.c.sched, rig.client_view(), tc);
  engine.start();

  if (spec.link_kill) {
    // Halfway through the nominal run, kill one trunk of the first redundant
    // pair (sw8_a <-> sw16_a). Every preloaded shortest route crossing that
    // segment dies; the on-demand mapper must find the twin trunk.
    const double half_ns = 0.5 * 1e9 * static_cast<double>(total_requests) /
                           rate_rps;
    rig.c.sched.after(static_cast<sim::Duration>(half_ns), [&rig] {
      rig.c.topo.set_link_up(net::LinkId{0}, false);
    });
  }

  // Drive to completion (open-loop: the generator never stalls), then
  // quiesce: let in-flight replication and forwarded writes drain so the
  // audit sees final state.
  const sim::Time cap = sim::seconds(600);
  while (!engine.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  const double elapsed_ms = sim::to_millis(rig.c.sched.now());
  rig.c.sched.run_for(sim::milliseconds(100));  // stragglers (forwards) arrive
  const sim::Time quiesce_cap = rig.c.sched.now() + sim::seconds(10);
  while (!rig.servers_idle() && rig.c.sched.now() < quiesce_cap &&
         rig.c.sched.step()) {
  }
  rig.c.sched.run_for(sim::milliseconds(100));  // final applies + replies land

  RunResult r;
  r.spec = spec;
  r.elapsed_ms = elapsed_ms;
  const auto& s = engine.stats();
  r.issued = s.issued;
  r.ok = s.ok;
  r.failed = s.failed;
  r.throughput_rps = static_cast<double>(s.completed) / (elapsed_ms / 1e3);
  r.goodput_rps = static_cast<double>(s.ok) / (elapsed_ms / 1e3);
  r.availability = s.availability();
  r.retries = s.retries;
  r.failovers = s.failovers;
  r.p50_us = static_cast<double>(s.latency.quantile(0.50)) / 1e3;
  r.p90_us = static_cast<double>(s.latency.quantile(0.90)) / 1e3;
  r.p99_us = static_cast<double>(s.latency.quantile(0.99)) / 1e3;
  r.p999_us = static_cast<double>(s.latency.quantile(0.999)) / 1e3;
  for (std::size_t i = 0; i < rig.c.size(); ++i) {
    r.path_failures += rig.c.rel(i).stats().path_failures;
  }
  r.audit = kv::audit(*rig.map, rig.server_view(), engine.shadow());
  // Snapshot the cell's metrics registry while the rig is still alive (each
  // cell has its own scheduler, and with it its own registry).
  if (want_metrics) r.metrics_json = obs::Registry::of(rig.c.sched).to_json();
  return r;
}

bool write_json(const char* path, const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(
        f,
        "  {\"clients\": %zu, \"error_rate\": \"%s\", \"campaign\": \"%s\", "
        "\"elapsed_ms\": %.3f, \"issued\": %llu, \"ok\": %llu, "
        "\"failed\": %llu, \"throughput_rps\": %.1f, \"goodput_rps\": %.1f, "
        "\"availability\": %.6f, \"retries\": %llu, \"failovers\": %llu, "
        "\"path_failures\": %llu, \"p50_us\": %.1f, \"p90_us\": %.1f, "
        "\"p99_us\": %.1f, \"p999_us\": %.1f, \"audit_ok\": %s, "
        "\"lost_writes\": %llu, \"dup_writes\": %llu}%s\n",
        r.spec.clients, r.spec.err_name,
        r.spec.link_kill ? "link-kill" : "steady", r.elapsed_ms,
        static_cast<unsigned long long>(r.issued),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed), r.throughput_rps,
        r.goodput_rps, r.availability,
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.path_failures), r.p50_us, r.p90_us,
        r.p99_us, r.p999_us, r.audit.ok() ? "true" : "false",
        static_cast<unsigned long long>(r.audit.lost),
        static_cast<unsigned long long>(r.audit.duplicated),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

// Per-cell obs registry dumps: an array of {"cell": ..., "metrics": ...}
// objects (the "metrics" value is the registry's own JSON — see
// docs/OBSERVABILITY.md for the schema and scripts/metrics_diff.py for the
// comparison tool).
bool write_metrics_json(const char* path, const std::vector<RunResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "{\"cell\": {\"clients\": %zu, \"error_rate\": \"%s\", "
                 "\"campaign\": \"%s\"},\n\"metrics\": %s}%s\n",
                 r.spec.clients, r.spec.err_name,
                 r.spec.link_kill ? "link-kill" : "steady",
                 r.metrics_json.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <file>] "
                   "[--metrics-json <file>] [--jobs <N>]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::uint64_t total_requests = quick ? 2000 : 10000;
  const double rate_rps = quick ? 50000 : 100000;
  const std::vector<std::size_t> client_counts =
      quick ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{250, 1000};
  struct Err {
    const char* name;
    std::uint64_t drop_interval;
  };
  const Err errs[] = {{"0", 0}, {"1e-4", 10000}, {"1e-3", 1000}};

  std::printf(
      "KV service sweep: 4 servers + 4 client hosts on the Figure-2 fabric, "
      "%llu requests @ %.0fk rps, Zipf(0.99)\n\n",
      static_cast<unsigned long long>(total_requests), rate_rps / 1e3);

  // Each cell owns its scheduler and registry; run them on a worker pool
  // (declaration-order results, so output is identical for any --jobs N).
  std::vector<std::function<RunResult()>> cells;
  for (const std::size_t clients : client_counts) {
    for (const Err& e : errs) {
      for (const bool kill : {false, true}) {
        const RunSpec spec{clients, e.name, e.drop_interval, kill};
        cells.emplace_back([spec, total_requests, rate_rps, metrics_path] {
          return run_cell(spec, total_requests, rate_rps,
                          metrics_path != nullptr);
        });
      }
    }
  }
  const std::vector<RunResult> rows = bench::run_cells<RunResult>(jobs, cells);

  harness::Table t({"Clients", "Err", "Campaign", "Goodput(rps)", "Avail",
                    "p50(us)", "p90(us)", "p99(us)", "p99.9(us)", "Retries",
                    "Failovers", "PathFail", "Audit"});
  for (const RunResult& r : rows) {
    t.add_row({std::to_string(r.spec.clients), r.spec.err_name,
               r.spec.link_kill ? "link-kill" : "steady",
               harness::fmt(r.goodput_rps, 0),
               harness::fmt(r.availability, 4), harness::fmt(r.p50_us, 1),
               harness::fmt(r.p90_us, 1), harness::fmt(r.p99_us, 1),
               harness::fmt(r.p999_us, 1), std::to_string(r.retries),
               std::to_string(r.failovers), std::to_string(r.path_failures),
               r.audit.ok() ? "OK" : "FAIL"});
  }
  t.print();

  bool all_ok = true;
  for (const RunResult& r : rows) all_ok = all_ok && r.audit.ok();
  std::printf("\nconsistency audit: %s (committed writes audited per cell; "
              "lost=%s dup=%s)\n",
              all_ok ? "all cells OK" : "FAILURES", all_ok ? "0" : "!=0",
              all_ok ? "0" : "!=0");

  if (json_path != nullptr) all_ok = write_json(json_path, rows) && all_ok;
  if (metrics_path != nullptr) {
    all_ok = write_metrics_json(metrics_path, rows) && all_ok;
  }
  return all_ok ? 0 : 1;
}
