// Figure 4: one-way latency for small messages (4-64 B) and ping-pong
// ("bidirectional") + unidirectional bandwidth (4 B - 1 MB), with and
// without the retransmission protocol.
//
// Paper: FT latency overhead <= 2.1 us up to 64 B (<= 20%); bandwidth
// overhead < 4% for message sizes >= 4 KB; plateau ~120 MB/s (PCI-limited).
#include <cstdio>
#include <cstring>

#include "harness/cluster.hpp"
#include "harness/microbench.hpp"
#include "harness/table.hpp"

namespace {

using namespace sanfault;
using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

Cluster make(FirmwareKind kind) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = kind;
  return Cluster(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const int lat_iters = full ? 200 : 50;
  const int bw_msgs = full ? 60 : 24;

  std::printf("=== Figure 4 (left): one-way latency, small messages ===\n\n");
  {
    harness::Table t({"Size (B)", "No FT (us)", "With FT (us)", "Overhead (us)"});
    for (std::size_t bytes : {4u, 8u, 16u, 32u, 64u}) {
      Cluster craw = make(FirmwareKind::kRaw);
      Cluster cft = make(FirmwareKind::kReliable);
      const double raw = harness::run_latency(craw, bytes, lat_iters).one_way_us();
      const double ft = harness::run_latency(cft, bytes, lat_iters).one_way_us();
      t.add_row({harness::fmt_bytes(bytes), harness::fmt(raw),
                 harness::fmt(ft), harness::fmt(ft - raw)});
    }
    t.print();
    std::printf("Paper reference: overhead at most 2.1 us up to 64 bytes.\n\n");
  }

  const std::size_t sizes[] = {4,      16,      64,      256,     1024,
                               4096,   16384,   65536,   262144,  1048576};

  std::printf("=== Figure 4 (right): bandwidth vs message size (MB/s) ===\n\n");
  harness::Table t({"Size", "PP no FT", "PP with FT", "Uni no FT",
                    "Uni with FT", "FT loss(uni)"});
  for (std::size_t bytes : sizes) {
    Cluster c1 = make(FirmwareKind::kRaw);
    Cluster c2 = make(FirmwareKind::kReliable);
    Cluster c3 = make(FirmwareKind::kRaw);
    Cluster c4 = make(FirmwareKind::kReliable);
    const double pp_raw =
        harness::run_pingpong_bw(c1, bytes, bw_msgs).mbytes_per_sec();
    const double pp_ft =
        harness::run_pingpong_bw(c2, bytes, bw_msgs).mbytes_per_sec();
    const double uni_raw =
        harness::run_unidirectional_bw(c3, bytes, bw_msgs).mbytes_per_sec();
    const double uni_ft =
        harness::run_unidirectional_bw(c4, bytes, bw_msgs).mbytes_per_sec();
    const double loss = uni_raw > 0 ? (uni_raw - uni_ft) / uni_raw * 100 : 0;
    t.add_row({harness::fmt_bytes(bytes), harness::fmt(pp_raw, 1),
               harness::fmt(pp_ft, 1), harness::fmt(uni_raw, 1),
               harness::fmt(uni_ft, 1), harness::fmt(loss, 1) + "%"});
  }
  t.print();
  std::printf(
      "\nPaper reference: < 4%% bandwidth loss above 4 KB; ~120 MB/s plateau "
      "(32-bit PCI limit).\n");
  return 0;
}
