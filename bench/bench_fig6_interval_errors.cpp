// Figure 6: effect of the retransmission timer interval on bandwidth with
// injected errors at rates 1e-2, 1e-3, 1e-4 (NIC send queue fixed at 32).
//
// Paper: the 1 ms timer is the robust choice — at error rate 1e-4 it keeps
// bandwidth within ~10% of error-free for >= 4 KB messages, while 100 us
// loses > 18% and 1 s loses > 72% at the same sizes.
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "harness/table.hpp"
#include "parallel_sweep.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace sanfault;
  bool full = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr, "usage: %s [--full] [--jobs <N>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<sim::Duration> intervals = {
      sim::microseconds(10), sim::microseconds(100), sim::milliseconds(1),
      sim::milliseconds(10), sim::seconds(1)};
  const std::vector<std::uint64_t> rates = {100, 1000, 10000};  // 1/err
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{4096, 16384, 65536, 262144, 1048576}
           : std::vector<std::size_t>{4096, 65536, 1048576};

  std::printf("=== Figure 6: retransmission interval with errors, q=32 ===\n\n");

  // Cell list in report order: rate -> size -> [No-FT baseline, intervals...].
  std::vector<std::function<benchsweep::PointResult()>> cells;
  for (std::uint64_t rate : rates) {
    (void)rate;
    for (std::size_t bytes : sizes) {
      benchsweep::PointConfig base;
      base.msg_bytes = bytes;
      base.full = full;
      base.with_ft = false;
      base.drop_interval = 0;  // the No-FT reference runs error-free
      cells.emplace_back([base] { return benchsweep::run_point(base); });
      for (auto iv : intervals) {
        benchsweep::PointConfig pc = base;
        pc.with_ft = true;
        pc.retrans_interval = iv;
        pc.drop_interval = rate;
        cells.emplace_back([pc] { return benchsweep::run_point(pc); });
      }
    }
  }
  const auto res = bench::run_cells<benchsweep::PointResult>(jobs, cells);

  const std::size_t stride = 1 + intervals.size();
  std::size_t cell = 0;
  for (std::uint64_t rate : rates) {
    std::printf("--- error rate 1e-%d (drop every %llu packets) ---\n",
                rate == 100 ? 2 : rate == 1000 ? 3 : 4,
                static_cast<unsigned long long>(rate));
    harness::Table t({"Size", "Dir", "No FT(q32)", "10us", "100us", "1ms",
                      "10ms", "1s"});
    for (std::size_t bytes : sizes) {
      const benchsweep::PointResult& raw = res[cell];
      for (const bool uni : {false, true}) {
        std::vector<std::string> row{harness::fmt_bytes(bytes),
                                     uni ? "uni" : "bidi"};
        row.push_back(harness::fmt(uni ? raw.uni_mbps : raw.bidi_mbps, 1));
        for (std::size_t k = 1; k < stride; ++k) {
          const benchsweep::PointResult& r = res[cell + k];
          row.push_back(harness::fmt(uni ? r.uni_mbps : r.bidi_mbps, 1));
        }
        t.add_row(std::move(row));
      }
      cell += stride;
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference: 1ms stays within ~10%% of error-free at 1e-4 for\n"
      ">=4KB messages; 100us loses >18%%, 1s loses >72%% at the same sizes.\n");
  return 0;
}
