// Chaos campaign runner: the KV + open-loop traffic workload driven through
// a matrix of declarative fault scenarios (src/chaos) on 4/8/16-node
// Figure-2 fabrics. Where bench_kv_service asks "what does the service look
// like under one fault", this asks "how fast does the stack *recover*, and
// do the invariants hold" — the view self-healing-network evaluations take.
//
// Scenarios (each a src/chaos DSL text, phase-anchored to the workload):
//   link-kill      — one trunk of the first redundant pair dies at p25;
//                    on-demand remap must converge onto the twin trunk;
//   flap-train     — the same trunk flaps down/up for ~5 cycles at p25;
//                    go-back-N must absorb it without a generation restart;
//   switch-death   — crossbar sw16_a dies at p25 and revives 18 ms later
//                    (outliving the 10 ms permanent-failure threshold);
//   partition-heal — a server host's access link is cut at p25 for 18 ms;
//                    recovery needs remap + generation restart after heal;
//   error-ramp     — loss/corruption rates ramp up on every link (transient
//                    errors only; no disruptive fault);
//   compound       — ramp + flap + NIC reset + client partition together;
//   spine-death-placement / spine-death-random
//                  — Clos-only placement experiment: every server in one pod
//                    dies permanently at p25 (whole fault domain lost) with
//                    the SWIM membership stack running. Pod-aware placement
//                    must keep every shard at quorum; the seeded-random
//                    control must demonstrably lose quorum (both cells kill
//                    the same pod — the one carrying a co-located shard
//                    under random placement).
//
// Per cell: recovery metrics from chaos::RecoveryMonitor (time-to-first-
// redelivery, remap convergence, retransmission amplification, goodput dip
// area), the exactly-once KV audit, and the chaos invariant checker. Any
// invariant violation fails the process — this is the CI gate.
//
// A separate mode drives the serial-vs-parallel determinism smoke:
// `--sim-threads N` runs one firmware-level chaos scenario (reliable ring on
// the 16-host Figure-2 fabric) on the conservative parallel engine with N
// worker threads — or on the serial oracle for N=0 — and writes the chaos
// event log, wire totals and metrics JSON to --log. CI runs it at N=0 and
// N=4 and byte-compares the two files (see .github/workflows/ci.yml).
//
// Two state-corruption modes ride along (docs/CHAOS.md "State corruption"):
// `--corrupt-smoke` runs one fixed-seed convergence cell per corruption
// class and emits a byte-comparable artifact (verify.sh double-runs and
// diffs it); `--soak <seed> [--soak-cases N]` derives N randomized cases
// from the master seed — the nightly workflow's randomized battery, whose
// artifact records every case's scenario DSL for exact replay.
//
//   ./build/bench/bench_chaos [--quick] [--json <file>]
//                             [--metrics-json <file>] [--log <file>]
//                             [--jobs <N>] [--sim-threads <N>]
//                             [--corrupt-smoke] [--soak <seed>]
//                             [--soak-cases <N>]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/corruptor.hpp"
#include "chaos/engine.hpp"
#include "chaos/recovery.hpp"
#include "chaos/scenario.hpp"
#include "firmware/reliability.hpp"
#include "harness/cluster.hpp"
#include "sim/rng.hpp"
#include "harness/parallel_cluster.hpp"
#include "harness/table.hpp"
#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "obs/metrics.hpp"
#include "parallel_sweep.hpp"
#include "traffic/engine.hpp"

namespace {

using namespace sanfault;

struct CellSpec {
  const char* scenario;
  std::size_t hosts;
  bool require_redelivery;
  bool require_remap;
  /// Fabric under test; the scale cells run on the 64-host k=8 fat-tree.
  harness::TopoKind topo = harness::TopoKind::kFigure2;
  /// spine_death_placement cells: run SWIM membership on every host, kill one
  /// whole fault domain (every server in the victim pod) permanently, and
  /// judge the replica-quorum invariant. `pod_aware` selects the placement
  /// policy under test; false is the seeded-random control expected to LOSE
  /// quorum (some shard keeps both replicas in one pod).
  bool placement_cell = false;
  bool pod_aware = false;
  /// Proactive backup paths (docs/ROUTING.md): precompute disjoint alternates
  /// and promote on failure instead of probing. The --compare mode runs each
  /// scenario with this off and on and gates on the TTFR improvement.
  bool proactive = false;
};

struct CellResult {
  CellSpec spec;
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double goodput_rps = 0;
  double availability = 0;
  chaos::RecoveryReport recovery;
  kv::AuditResult audit;
  std::vector<std::string> violations;
  std::string event_log;
  std::string metrics_json;
  /// Placement cells only (-1 otherwise): the quorum verdict, mirrored from
  /// the invariant input so the campaign JSON logs both outcomes.
  int quorum_expected = -1;
  bool quorum_held = true;
  std::uint64_t shards_no_live_replica = 0;
  /// Proactive-backup mapper totals summed over all nodes (compare mode).
  std::uint64_t backup_promotions = 0;
  std::uint64_t backup_stale_rejections = 0;
  std::uint64_t backup_replenish_probes = 0;
};

/// The scenario DSL text for `name` on an `n`-host Figure-2 fabric. Link 0
/// is one trunk of the redundant sw8_a<->sw16_a pair (link 1 its twin);
/// switch 1 is sw16_a; host 1 is always a server (servers are hosts
/// 0..n/2-1), host n-1 always a client host.
std::string scenario_text(const std::string& name, std::size_t n) {
  const std::string header = "scenario " + name + "\n";
  if (name == "link-kill") {
    return header + "seed 11\nphase p25 link_down link=0\n";
  }
  if (name == "flap-train") {
    return header +
           "seed 12\n"
           "phase p25 flap link=0 count=5 period=2ms duty=0.5 jitter=0.25\n";
  }
  if (name == "switch-death") {
    return header +
           "seed 13\n"
           "phase p25 switch_down switch=1\n"
           "phase p25+18ms switch_up switch=1\n";
  }
  if (name == "partition-heal") {
    // 18 ms outlives fail_threshold (10 ms), so the partitioned server's
    // peers declare the path failed and must remap after the heal; it is
    // far below the replication give-up, so the audit stays exactly-once.
    return header +
           "seed 14\n"
           "phase p25 partition hosts=1\n"
           "phase p25+18ms heal hosts=1\n";
  }
  if (name == "spine-death") {
    // Clos-only: switch 0 is a core (the builder creates the spine first),
    // so this kills one spine crossbar for 18 ms — longer than the 10 ms
    // permanent-failure threshold, forcing cross-pod pairs routed through it
    // to remap onto one of the redundant spines.
    return header +
           "seed 17\n"
           "phase p25 switch_down switch=0\n"
           "phase p25+18ms switch_up switch=0\n";
  }
  if (name == "error-ramp") {
    return header +
           "seed 15\n"
           "at 2ms error_ramp loss=0.002 corrupt=0.0005 steps=4 over=10ms\n";
  }
  if (name == "compound") {
    const std::string victim = std::to_string(n - 1);
    return header +
           "seed 16\n"
           "at 1ms error_ramp loss=0.001 corrupt=0.0002 steps=2 over=5ms\n"
           "phase p25 flap link=1 count=3 period=2ms duty=0.5 jitter=0.2\n"
           "phase p50 nic_reset host=0\n"
           "phase p50+1ms partition hosts=" + victim + "\n" +
           "phase p75 heal hosts=" + victim + "\n";
  }
  std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
  std::abort();
}

/// Victim hosts for the spine_death_placement cells: every server in the
/// first pod where a POD-BLIND shard map co-locates some shard's primary and
/// backup. The pod is computed from a blind twin of the rig's map (same
/// servers, shard count, vnodes and seed), so the pod-aware cell and its
/// random control kill the exact same fault domain — the one that provably
/// carries both replicas of at least one shard under random placement.
std::vector<std::uint32_t> placement_victims(const kv::KvRig& rig) {
  const kv::KvRigConfig& cfg = rig.config();
  std::vector<net::HostId> servers(
      rig.c.hosts.begin(),
      rig.c.hosts.begin() + static_cast<std::ptrdiff_t>(cfg.num_servers));
  const kv::ShardMap blind(std::move(servers), cfg.num_shards, /*vnodes=*/16,
                           cfg.map_seed);
  std::uint32_t victim_pod = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t sh = 0; sh < blind.num_shards(); ++sh) {
    const std::uint32_t p = rig.c.host_pods[blind.primary(sh).v];
    const std::uint32_t b = rig.c.host_pods[blind.backup(sh).v];
    if (p == b) {
      victim_pod = p;
      break;
    }
  }
  if (victim_pod == std::numeric_limits<std::uint32_t>::max()) {
    std::fprintf(stderr,
                 "placement cell: blind map co-locates no shard; the control "
                 "would show nothing\n");
    std::abort();
  }
  std::vector<std::uint32_t> victims;
  for (std::uint32_t i = 0; i < cfg.num_servers; ++i) {
    if (rig.c.host_pods[i] == victim_pod) victims.push_back(i);
  }
  return victims;
}

/// Permanent whole-domain kill: cut every victim's access link at p25, no
/// heal. SWIM confirms the deaths, survivors exclude the peers, clients fail
/// over; whether a shard stays served depends purely on placement.
std::string placement_scenario_text(const std::string& name,
                                    const std::vector<std::uint32_t>& victims) {
  std::string list;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    if (i > 0) list += ",";
    list += std::to_string(victims[i]);
  }
  return "scenario " + name + "\nseed 18\nphase p25 partition hosts=" + list +
         "\n";
}

/// Median of the per-destination TTFR samples (0 when none). The median, not
/// the max, is the headline: a single stale-backup fallback legitimately
/// probes and should not hide the promoted majority.
sim::Duration median_ttfr(const chaos::RecoveryReport& rec) {
  if (rec.ttfr_dest.empty()) return 0;
  std::vector<sim::Duration> v = rec.ttfr_dest;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

CellResult run_cell(const CellSpec& spec, std::uint64_t total_requests,
                    double rate_rps, std::size_t num_clients,
                    bool want_metrics) {
  kv::KvRigConfig rc;
  rc.num_servers = spec.hosts / 2;
  rc.num_client_hosts = spec.hosts - rc.num_servers;
  rc.cluster.topo = spec.topo;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.nic.send_buffers = 64;
  // Fast permanent-failure declaration (the paper's default is tuned for
  // hours-long jobs); scenario timings above are calibrated against this.
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  rc.cluster.ondemand.proactive_backup = spec.proactive;
  if (spec.placement_cell) {
    // Placement cells run the full production membership stack: SWIM gossip
    // on every host (confirm -> firmware exclusion -> client dead-hook
    // failover) plus the placement policy under test. Gossip needs a full
    // n x n message mesh, so shrink the per-sender ring partitions (gossip
    // packets are tiny; the largest KV message still fits in 16 KiB).
    rc.membership = true;
    rc.pod_aware_placement = spec.pod_aware;
    rc.ring_per_peer = 16 * 1024;
  }
  if (spec.topo == harness::TopoKind::kClos) {
    // k=4 (16-host) fat-tree for the quick placement cells; the 64-host
    // cells keep the canonical k=8.
    if (spec.hosts <= 16) rc.cluster.clos.k = 4;
    // Scale-out remaps must converge inside the KV replication retry budget
    // (~seconds). A cross-pod BFS on the 80-switch fat-tree costs ~20k+
    // probes with the default Table-3 methodology — mostly duplicate
    // detection, each a timeout — so these cells run the mapper in its
    // configured-deployment mode: fabric database resolves duplicate
    // verdicts (no dup probes), deterministic multipath spreads remapped
    // pairs over the redundant spines, and the probe timeout is sized to the
    // Clos RTT (~6 us) instead of the conservative default.
    rc.cluster.ondemand.configured_identity = true;
    rc.cluster.ondemand.multipath = true;
    rc.cluster.ondemand.max_probes = std::size_t{1} << 17;
    rc.cluster.ondemand.probe_timeout = sim::microseconds(30);
  }
  kv::KvRig rig(rc);

  chaos::RecoveryMonitor monitor(rig.c.sched);
  rig.c.fabric().set_fault_hook(
      [&monitor](const net::FaultEvent& ev) { monitor.on_fault(ev); });
  rig.c.fabric().set_delivery_hook(
      [&monitor](const net::Packet& pkt, net::HostId dst) {
        monitor.on_delivery(pkt, dst);
      });
  for (firmware::ReliableFirmware* fw : rig.rel_view()) {
    fw->set_event_hook(
        [&monitor](const firmware::FwEvent& ev) { monitor.on_fw_event(ev); });
  }

  std::vector<std::uint32_t> victims;
  std::string scen_text;
  if (spec.placement_cell) {
    victims = placement_victims(rig);
    scen_text = placement_scenario_text(spec.scenario, victims);
  } else {
    scen_text = scenario_text(spec.scenario, spec.hosts);
  }
  chaos::ChaosEngine engine(rig.c.sched, rig.c.fabric(),
                            chaos::Scenario::parse(scen_text));
  engine.set_nic_reset_fn(
      [&rig](std::uint32_t host) { rig.c.rel(host).nic_reset(); });
  engine.arm();

  traffic::TrafficConfig tc;
  tc.num_clients = num_clients;
  tc.total_requests = total_requests;
  tc.rate_rps = rate_rps;
  tc.zipf_theta = 0.99;
  tc.seed = 42;
  traffic::TrafficEngine traffic(rig.c.sched, rig.client_view(), tc);
  traffic.set_phase_hook(
      [&engine](std::string_view phase) { engine.fire_phase(phase); });
  traffic.start();

  const sim::Time cap = sim::seconds(600);
  while (!traffic.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  const double elapsed_s = sim::to_seconds(rig.c.sched.now());
  rig.quiesce();
  monitor.finalize();

  CellResult r;
  r.spec = spec;
  const auto& s = traffic.stats();
  r.issued = s.issued;
  r.ok = s.ok;
  r.failed = s.failed;
  r.goodput_rps = elapsed_s > 0 ? static_cast<double>(s.ok) / elapsed_s : 0;
  r.availability = s.availability();
  r.recovery = monitor.report();
  r.audit = kv::audit(*rig.map, rig.server_view(), traffic.shadow());
  r.event_log = engine.log_text();
  for (std::size_t i = 0; i < rig.c.size(); ++i) {
    const auto& ms = rig.c.mapper(i).stats();
    r.backup_promotions += ms.backup_promotions;
    r.backup_stale_rejections += ms.backup_stale_rejections;
    r.backup_replenish_probes += ms.backup_replenish_probes;
  }

  chaos::InvariantInput in;
  in.audit_clean = r.audit.ok();
  in.ops_expected = tc.total_requests;
  in.ops_completed = s.completed;
  in.require_redelivery = spec.require_redelivery;
  in.require_remap = spec.require_remap;
  if (spec.placement_cell) {
    // Replica-quorum verdict: a shard is lost when both its replicas sat on
    // hosts in the killed domain. Pod-aware placement guarantees primary and
    // backup straddle pods, so no shard can lose both.
    std::vector<bool> dead(spec.hosts, false);
    for (const std::uint32_t v : victims) dead[v] = true;
    std::uint64_t lost = 0;
    for (std::size_t sh = 0; sh < rig.map->num_shards(); ++sh) {
      if (dead[rig.map->primary(sh).v] && dead[rig.map->backup(sh).v]) ++lost;
    }
    in.quorum_expected = spec.pod_aware ? 1 : 0;
    in.quorum_held = lost == 0;
    in.shards_no_live_replica = lost;
    r.quorum_expected = in.quorum_expected;
    r.quorum_held = in.quorum_held;
    r.shards_no_live_replica = lost;
  }
  r.violations = chaos::check_invariants(r.recovery, in);

  if (want_metrics) r.metrics_json = obs::Registry::of(rig.c.sched).to_json();
  return r;
}

bool write_json(const char* path, const std::vector<CellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& r = rows[i];
    const auto& rec = r.recovery;
    std::fprintf(
        f,
        "  {\"scenario\": \"%s\", \"hosts\": %zu, \"issued\": %llu, "
        "\"ok\": %llu, \"failed\": %llu, \"goodput_rps\": %.1f, "
        "\"availability\": %.6f, \"proactive\": %s, \"ttfr_first_ns\": %llu, "
        "\"ttfr_max_ns\": %llu, \"ttfr_samples\": %llu, "
        "\"ttfr_dest_samples\": %llu, \"ttfr_dest_median_ns\": %llu, "
        "\"gen_restarts\": %llu, \"remap_convergences\": %llu, "
        "\"remap_conv_max_ns\": %llu, \"remap_conv_promoted\": %llu, "
        "\"remap_conv_probed\": %llu, \"retrans_amplification\": %.4f, "
        "\"goodput_dip_area\": %.1f, \"nic_resets\": %llu, "
        "\"audit_ok\": %s, \"invariant_violations\": %zu, "
        "\"placement\": \"%s\", \"quorum_expected\": %d, "
        "\"quorum_held\": %s, \"shards_no_live_replica\": %llu}%s\n",
        r.spec.scenario, r.spec.hosts,
        static_cast<unsigned long long>(r.issued),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed), r.goodput_rps,
        r.availability, r.spec.proactive ? "true" : "false",
        static_cast<unsigned long long>(rec.ttfr_first),
        static_cast<unsigned long long>(rec.ttfr_max),
        static_cast<unsigned long long>(rec.ttfr_samples),
        static_cast<unsigned long long>(rec.ttfr_dest_samples),
        static_cast<unsigned long long>(median_ttfr(rec)),
        static_cast<unsigned long long>(rec.gen_restarts),
        static_cast<unsigned long long>(rec.remap_convergences),
        static_cast<unsigned long long>(rec.remap_conv_max),
        static_cast<unsigned long long>(rec.remap_conv_promoted),
        static_cast<unsigned long long>(rec.remap_conv_probed),
        rec.retrans_amplification(), rec.goodput_dip_area,
        static_cast<unsigned long long>(rec.nic_resets),
        r.audit.ok() ? "true" : "false", r.violations.size(),
        !r.spec.placement_cell ? "none"
        : r.spec.pod_aware     ? "pod-aware"
                               : "random",
        r.quorum_expected, r.quorum_held ? "true" : "false",
        static_cast<unsigned long long>(r.shards_no_live_replica),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

bool write_metrics_json(const char* path,
                        const std::vector<CellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& r = rows[i];
    std::fprintf(f,
                 "{\"cell\": {\"scenario\": \"%s\", \"hosts\": %zu},\n"
                 "\"metrics\": %s}%s\n",
                 r.spec.scenario, r.spec.hosts, r.metrics_json.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// Concatenated per-cell chaos event logs — the byte-comparable determinism
/// artifact (scripts/verify.sh runs the campaign twice and diffs this).
bool write_log(const char* path, const std::vector<CellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  for (const CellResult& r : rows) {
    std::fprintf(f, "=== scenario=%s hosts=%zu ===\n%s", r.spec.scenario,
                 r.spec.hosts, r.event_log.c_str());
  }
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

// ---------------------------------------------------------------------------
// --sim-threads determinism smoke: one firmware-level chaos cell, serial or
// parallel, emitting a byte-comparable artifact.

/// Pod-major ring successor map (hosts sorted by pod, each sends to the
/// next): keeps most traffic partition-local while still crossing every pod
/// seam, so the parallel run exercises both the local path and the channels.
std::vector<std::size_t> smoke_ring(const std::vector<std::uint32_t>& pods) {
  std::vector<std::size_t> order(pods.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pods[a] < pods[b];
                   });
  std::vector<std::size_t> next(pods.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    next[order[i]] = order[(i + 1) % order.size()];
  }
  return next;
}

/// Self-clocked sender: each accepted submission chains the next, keeping
/// the workload causally host-local (the shape the conservative engine can
/// parallelize without extra synchronization).
template <class Rig>
struct SmokePump {
  Rig& rig;
  std::vector<std::size_t> next;
  std::vector<int> remaining;

  SmokePump(Rig& r, const std::vector<std::uint32_t>& pods, int msgs)
      : rig(r), next(smoke_ring(pods)), remaining(pods.size(), msgs) {}

  void send_next(std::size_t i) {
    if (remaining[i] <= 0) return;
    --remaining[i];
    std::vector<std::uint8_t> payload(256,
                                      static_cast<std::uint8_t>(0x40 + i));
    rig.send(i, next[i], std::move(payload), {},
             [this, i] { send_next(i); });
  }
};

harness::ClusterConfig smoke_config() {
  harness::ClusterConfig cc;
  cc.num_hosts = 16;
  cc.topo = harness::TopoKind::kFigure2;
  cc.fw = harness::FirmwareKind::kReliable;
  cc.mapper = harness::MapperKind::kOnDemand;
  cc.fabric.seed = 2002;
  return cc;
}

/// Error ramp + trunk death/recovery + jittered flap: exercises the
/// per-(link,direction) fault RNG streams, disruptive fault actions, and the
/// campaign RNG, all of which must land identically serial vs parallel.
const char* smoke_scenario() {
  return
      "scenario sim-threads-smoke\n"
      "seed 11\n"
      "at 400us error_ramp loss=0.002 corrupt=0.001 steps=3 over=600us\n"
      "at 700us link_down link=2\n"
      "at 1500us link_up link=2\n"
      "at 1800us flap link=5 count=3 period=120us duty=0.5 jitter=0.25\n";
}

std::string smoke_stats_text(const net::FabricStats& s) {
  std::string out = "injected=" + std::to_string(s.injected) +
                    " delivered=" + std::to_string(s.delivered) +
                    " delivered_corrupt=" + std::to_string(s.delivered_corrupt) +
                    " corruptions=" + std::to_string(s.corruptions_injected) +
                    " drop_link=" + std::to_string(s.dropped_link_down) +
                    " drop_random=" + std::to_string(s.dropped_random) +
                    " drop_path_reset=" + std::to_string(s.dropped_path_reset);
  return out;
}

/// Runs the smoke cell and returns the full byte-comparable artifact:
/// chaos event log + wire totals + merged metrics JSON. threads==0 runs the
/// serial oracle; otherwise the parallel engine with 4 partitions and the
/// given worker count. The artifact deliberately omits anything
/// engine-dependent (wall time, thread ids) so serial and parallel runs of
/// a correct build are byte-identical.
std::string run_sim_threads_smoke(unsigned threads) {
  constexpr sim::Time kHorizon = 3'000'000;  // 3 ms simulated
  constexpr int kMsgs = 30;
  const harness::ClusterConfig cc = smoke_config();

  std::string stats;
  std::string metrics;
  std::string chaos_log;
  if (threads == 0) {
    harness::Cluster c(cc);
    chaos::ChaosEngine eng(c.sched, c.fabric(),
                           chaos::Scenario::parse(smoke_scenario()));
    eng.arm();
    SmokePump<harness::Cluster> pump(c, c.host_pods, kMsgs);
    for (std::size_t i = 0; i < c.size(); ++i) {
      c.sched.at(1000 + i, [&pump, i] { pump.send_next(i); });
    }
    c.sched.run_until(kHorizon);
    stats = smoke_stats_text(c.fabric().stats());
    metrics = obs::Registry::of(c.sched).to_json();
    chaos_log = eng.log_text();
  } else {
    harness::ParallelCluster pc(
        harness::ParallelClusterConfig{cc, /*partitions=*/4, threads});
    chaos::ChaosEngine eng(pc.engine->control(), pc.injector(),
                           chaos::Scenario::parse(smoke_scenario()));
    eng.arm();
    SmokePump<harness::ParallelCluster> pump(pc, pc.host_pods, kMsgs);
    for (std::size_t i = 0; i < pc.size(); ++i) {
      pc.sched_of(i).at(1000 + i, [&pump, i] { pump.send_next(i); });
    }
    pc.engine->run_until(kHorizon);
    stats = smoke_stats_text(pc.fabric_stats());
    metrics = pc.merged_metrics_json();
    chaos_log = eng.log_text();
  }
  return "=== sim-threads determinism smoke: fig2-16 ring + chaos ===\n" +
         chaos_log + "stats: " + stats + "\nmetrics: " + metrics + "\n";
}

// ---------------------------------------------------------------------------
// State-corruption convergence cell, shared by --corrupt-smoke (fixed seed,
// all six classes, byte-comparable artifact) and --soak (randomized cases
// derived from a master seed; the nightly workflow's needle-mover). Mirrors
// the tests/property_test SelfStabilization battery: three DSL-driven live
// corruptions plus a trunk kill, then Phase A loss/order accounting, a
// scrub/restart witness, and a post-horizon exactly-once Phase B burst.

constexpr const char* kCorruptClasses[6] = {"seq",        "ack",
                                            "gen",        "retx_queue",
                                            "path_cache", "backup_slot"};

struct CorruptCaseResult {
  std::string dsl;        // exact scenario text — the replay recipe
  std::string chaos_log;  // engine log incl. corruption audit lines
  std::string fw_stats;   // endpoint scrub/restart counters
  std::uint64_t applied = 0;
  std::uint64_t witness = 0;
  std::string metrics_json;
  std::vector<std::string> violations;  // empty == converged
  [[nodiscard]] bool converged() const { return violations.empty(); }
};

/// Links a route traverses from `src`, access link first; empty when the
/// route dead-ends (only possible for corrupted routes, never the primary).
std::vector<net::LinkId> corrupt_route_links(const harness::Cluster& c,
                                             std::size_t src,
                                             const net::Route& r) {
  std::vector<net::LinkId> links;
  auto att = c.topo.peer_of({net::Device::host(c.hosts[src]), 0});
  if (!att.has_value()) return links;
  links.push_back(att->link);
  net::Device cur = att->peer.dev;
  for (const std::uint8_t p : r.ports) {
    auto hop = c.topo.peer_of({cur, p});
    if (!hop.has_value()) return {};
    links.push_back(hop->link);
    cur = hop->peer.dev;
  }
  return links;
}

CorruptCaseResult run_corrupt_case(harness::TopoKind topo,
                                   std::size_t num_hosts, int cls,
                                   std::uint64_t seed, bool want_metrics) {
  CorruptCaseResult out;
  const char* cls_name = kCorruptClasses[cls];
  sim::Rng knobs(seed ^ 0x5E1F57ABull);
  harness::ClusterConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.topo = topo;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.ondemand.proactive_backup = true;
  cfg.ondemand.probe_retries = 6;
  cfg.ondemand.probe_timeout = sim::milliseconds(2);
  cfg.rel.fail_threshold = sim::milliseconds(10);
  cfg.rel.fail_min_rounds = 8;
  cfg.nic.send_buffers = 64;
  cfg.fabric.seed = seed;
  harness::Cluster c(cfg);

  std::size_t dsti = 0;
  std::vector<net::LinkId> plinks;
  for (std::size_t h = 1; h < c.hosts.size(); ++h) {
    auto r = c.topo.shortest_route(c.hosts[0], c.hosts[h]);
    if (!r.has_value()) continue;
    auto links = corrupt_route_links(c, 0, *r);
    if (links.size() >= 4) {
      dsti = h;
      plinks = std::move(links);
      break;
    }
  }
  if (dsti == 0) {
    out.violations.emplace_back("no multi-trunk destination in topology");
    return out;
  }
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.02 * knobs.uniform_double();
    lf.dup_prob = 0.02 * knobs.uniform_double();
  }

  const bool dst_side = cls == 1 || (cls == 2 && seed % 2 == 1);
  const std::uint32_t chost = dst_side ? c.hosts[dsti].v : c.hosts[0].v;
  const std::uint32_t cpeer = dst_side ? c.hosts[0].v : c.hosts[dsti].v;
  const bool pin_peer = cls == 4;  // see property_test: flips must land live
  const char* modes[] = {"flip", "zero", "rand"};
  std::ostringstream sc;
  sc << "scenario soak-" << cls_name << "-" << seed << "\nseed " << seed
     << "\n"
     << "at 2ms corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[seed % 3]
     << (pin_peer ? " peer=" + std::to_string(cpeer) : "") << "\n"
     << "at 2600us corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[(seed + 1) % 3] << " peer=" << cpeer << "\n"
     << "at 3200us corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[(seed + 2) % 3]
     << (pin_peer ? " peer=" + std::to_string(cpeer) : "") << "\n"
     << "at " << (cls == 3 ? "1500us" : "4ms")
     << " link_down link=" << plinks[1].v << "\n";
  out.dsl = sc.str();

  chaos::ChaosEngine eng(c.sched, c.fabric(),
                         chaos::Scenario::parse(out.dsl));
  chaos::StateCorruptor corr(c.sched, seed ^ 0xC0DE5EEDull);
  for (std::size_t i = 0; i < c.size(); ++i) {
    corr.bind(c.hosts[i], &c.rel(i), &c.mapper(i));
  }
  eng.set_corruptor(&corr);
  eng.arm();

  std::uint64_t witness_events = 0;
  const auto witness_hook = [&](const firmware::FwEvent& ev) {
    const bool counts = ev.kind == firmware::FwEvent::Kind::kScrubRepair ||
                        ev.kind == firmware::FwEvent::Kind::kGenRestart ||
                        ev.kind == firmware::FwEvent::Kind::kNicReset;
    if (counts && c.sched.now() >= sim::milliseconds(2)) ++witness_events;
  };
  c.rel(0).set_event_hook(witness_hook);
  c.rel(dsti).set_event_hook(witness_hook);

  constexpr std::uint64_t kPhaseA = 40;
  constexpr std::uint64_t kPhaseB = 20;
  constexpr std::uint64_t kBTag = 100;
  std::vector<std::uint64_t> tags;
  c.nic(dsti).set_host_rx([&](net::UserHeader u, net::PayloadRef,
                              net::HostId) { tags.push_back(u.w0); });
  for (std::uint64_t i = 0; i < kPhaseA; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * sim::microseconds(300),
                  [&c, dsti, i] {
                    net::UserHeader u;
                    u.w0 = i;
                    c.send(0, dsti,
                           std::vector<std::uint8_t>(
                               96, static_cast<std::uint8_t>(i)),
                           u);
                  });
  }
  const auto drained = [&] {
    if (c.sched.now() < sim::milliseconds(13)) return false;
    const firmware::TxChannel* ch = c.rel(0).chaos_tx_channel(c.hosts[dsti]);
    return ch != nullptr && ch->retrans_queue.empty() &&
           !ch->remap_in_flight && !ch->unreachable;
  };
  while (!drained() && c.sched.now() < sim::seconds(120) && c.sched.step()) {
  }
  c.sched.run_until(c.sched.now() + sim::milliseconds(20));

  out.applied = corr.applied();
  out.witness = witness_events;
  if (out.applied == 0) {
    out.violations.emplace_back("no corruption rewrote live state");
  }
  if (witness_events == 0) {
    out.violations.emplace_back(
        "corruption repaired with no scrub/restart witness");
  }

  // Phase A accounting (see the battery for why `ack` is exempt from the
  // ordering check and gets a loss allowance instead).
  std::vector<char> seen_a(kPhaseA, 0);
  std::uint64_t prev_first = 0;
  bool have_first = false;
  std::size_t distinct_a = 0;
  for (std::uint64_t t : tags) {
    if (t >= kPhaseA || seen_a[t] != 0) continue;
    seen_a[t] = 1;
    ++distinct_a;
    if (have_first && cls != 1 && t <= prev_first) {
      out.violations.push_back("phase A first deliveries reordered: " +
                               std::to_string(t) + " after " +
                               std::to_string(prev_first));
    }
    prev_first = t;
    have_first = true;
  }
  if (cls == 1 ? distinct_a < kPhaseA - 12 : distinct_a != kPhaseA) {
    out.violations.push_back("phase A silent loss: " +
                             std::to_string(distinct_a) + "/" +
                             std::to_string(kPhaseA) + " delivered");
  }

  // Phase B: past the scrub horizon, exactly-once in order again.
  const std::size_t b_start = tags.size();
  for (std::uint64_t i = 0; i < kPhaseB; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * sim::microseconds(300),
                  [&c, dsti, i] {
                    net::UserHeader u;
                    u.w0 = kBTag + i;
                    c.send(0, dsti,
                           std::vector<std::uint8_t>(
                               96, static_cast<std::uint8_t>(i)),
                           u);
                  });
  }
  std::vector<char> seen_b(kPhaseB, 0);
  const auto b_done = [&] {
    std::size_t d = 0;
    for (std::size_t i = b_start; i < tags.size(); ++i) {
      const std::uint64_t t = tags[i];
      if (t >= kBTag && t < kBTag + kPhaseB) seen_b[t - kBTag] = 1;
    }
    for (char s : seen_b) d += (s != 0) ? 1 : 0;
    return d >= kPhaseB;
  };
  const sim::Time b_deadline = c.sched.now() + sim::seconds(60);
  while (!b_done() && c.sched.now() < b_deadline && c.sched.step()) {
  }
  c.sched.run_until(c.sched.now() + sim::milliseconds(20));

  std::vector<std::uint64_t> b_tags;
  for (std::size_t i = b_start; i < tags.size(); ++i) {
    if (tags[i] >= kBTag && tags[i] < kBTag + kPhaseB) {
      b_tags.push_back(tags[i]);
    }
  }
  if (b_tags.size() != kPhaseB) {
    out.violations.push_back("phase B not exactly-once: " +
                             std::to_string(b_tags.size()) + "/" +
                             std::to_string(kPhaseB) + " deliveries");
  } else {
    for (std::uint64_t i = 0; i < kPhaseB; ++i) {
      if (b_tags[i] != kBTag + i) {
        out.violations.push_back("phase B out of order at index " +
                                 std::to_string(i));
        break;
      }
    }
  }

  const auto& s0 = c.rel(0).stats();
  const auto& sd = c.rel(dsti).stats();
  out.fw_stats =
      "scrub_passes=" + std::to_string(s0.scrub_passes + sd.scrub_passes) +
      " tx_repairs=" +
      std::to_string(s0.scrub_tx_repairs + sd.scrub_tx_repairs) +
      " rx_repairs=" +
      std::to_string(s0.scrub_rx_repairs + sd.scrub_rx_repairs) +
      " gen_adoptions=" +
      std::to_string(s0.scrub_gen_adoptions + sd.scrub_gen_adoptions) +
      " bogus_acks=" +
      std::to_string(s0.scrub_bogus_acks + sd.scrub_bogus_acks) +
      " misroute_drops=" +
      std::to_string(s0.misroute_drops + sd.misroute_drops) +
      " gen_restarts=" +
      std::to_string(s0.generation_restarts + sd.generation_restarts);
  out.chaos_log = eng.log_text();
  if (want_metrics) {
    out.metrics_json = obs::Registry::of(c.sched).to_json();
  }
  return out;
}

/// --corrupt-smoke: one fixed-seed cell per corruption class on fig2-16.
/// The artifact (written to --log) is fully deterministic — verify.sh runs
/// the smoke twice and byte-compares, proving corruption injection, the
/// scrubber, and the recovery path all replay identically.
int run_corrupt_smoke(const char* log_path, const char* metrics_path) {
  constexpr std::uint64_t kSmokeSeed = 9003;  // inside the battery's range
  std::string artifact =
      "=== corruption smoke: fig2-16, 6 classes, seed " +
      std::to_string(kSmokeSeed) + " ===\n";
  std::string metrics = "[\n";
  bool all_ok = true;
  for (int cls = 0; cls < 6; ++cls) {
    const CorruptCaseResult r =
        run_corrupt_case(harness::TopoKind::kFigure2, 16, cls, kSmokeSeed,
                         metrics_path != nullptr);
    artifact += "--- class=" + std::string(kCorruptClasses[cls]) + " ---\n" +
                r.dsl + r.chaos_log + "fw: " + r.fw_stats + "\nresult: ";
    if (r.converged()) {
      artifact += "converged (applied=" + std::to_string(r.applied) +
                  " witness=" + std::to_string(r.witness) + ")\n";
    } else {
      all_ok = false;
      artifact += "FAILED\n";
      for (const std::string& v : r.violations) {
        artifact += "  violation: " + v + "\n";
      }
    }
    if (metrics_path != nullptr) {
      metrics += "{\"cell\": {\"scenario\": \"corrupt-" +
                 std::string(kCorruptClasses[cls]) +
                 "\", \"hosts\": 16},\n\"metrics\": " + r.metrics_json + "}" +
                 (cls + 1 < 6 ? "," : "") + "\n";
    }
    std::printf("corrupt-smoke class=%-11s %s\n", kCorruptClasses[cls],
                r.converged() ? "converged" : "FAILED");
  }
  metrics += "]\n";
  if (log_path != nullptr) {
    std::FILE* f = std::fopen(log_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path);
      return 1;
    }
    std::fwrite(artifact.data(), 1, artifact.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", log_path, artifact.size());
  } else {
    std::fwrite(artifact.data(), 1, artifact.size(), stdout);
  }
  if (metrics_path != nullptr) {
    std::FILE* f = std::fopen(metrics_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      return 1;
    }
    std::fwrite(metrics.data(), 1, metrics.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path);
  }
  std::printf("corruption smoke: %s\n",
              all_ok ? "all classes converged" : "CONVERGENCE FAILURES");
  return all_ok ? 0 : 1;
}

/// --soak <seed>: randomized corruption cases derived from one master seed
/// (the nightly workflow passes its run id). Every case's class, seed and
/// fabric come from the master RNG, so re-running with the seed printed in
/// a red run's artifact replays the exact failing schedule byte-for-byte.
int run_soak(std::uint64_t master_seed, std::uint64_t cases,
             const char* log_path) {
  sim::Rng master(master_seed ^ 0x50AF5EEDull);
  std::string artifact = "=== corruption soak: master_seed=" +
                         std::to_string(master_seed) + " cases=" +
                         std::to_string(cases) + " ===\n";
  std::printf("corruption soak: master_seed=%llu cases=%llu\n",
              static_cast<unsigned long long>(master_seed),
              static_cast<unsigned long long>(cases));
  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < cases; ++i) {
    const int cls = static_cast<int>(master.uniform(6));
    const std::uint64_t case_seed = master.next();
    // Every fifth case runs on the 64-host fat-tree; the rest on fig2-16.
    const bool clos = i % 5 == 4;
    const harness::TopoKind topo =
        clos ? harness::TopoKind::kClos : harness::TopoKind::kFigure2;
    const std::size_t hosts = clos ? 64 : 16;
    const CorruptCaseResult r =
        run_corrupt_case(topo, hosts, cls, case_seed, /*want_metrics=*/false);
    artifact += "--- case " + std::to_string(i) + ": class=" +
                kCorruptClasses[cls] + " seed=" + std::to_string(case_seed) +
                " topo=" + (clos ? "clos-64" : "fig2-16") + " ---\n" + r.dsl;
    if (r.converged()) {
      artifact += "result: converged (applied=" + std::to_string(r.applied) +
                  " witness=" + std::to_string(r.witness) + ")\n";
    } else {
      ++failures;
      artifact += r.chaos_log + "fw: " + r.fw_stats + "\nresult: FAILED\n";
      for (const std::string& v : r.violations) {
        artifact += "  violation: " + v + "\n";
      }
      std::printf("soak case %llu FAILED: class=%s seed=%llu topo=%s\n",
                  static_cast<unsigned long long>(i), kCorruptClasses[cls],
                  static_cast<unsigned long long>(case_seed),
                  clos ? "clos-64" : "fig2-16");
      for (const std::string& v : r.violations) {
        std::printf("  violation: %s\n", v.c_str());
      }
    }
  }
  artifact += "=== soak verdict: " +
              std::to_string(cases - failures) + "/" + std::to_string(cases) +
              " converged ===\n";
  if (log_path != nullptr) {
    std::FILE* f = std::fopen(log_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path);
      return 1;
    }
    std::fwrite(artifact.data(), 1, artifact.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", log_path, artifact.size());
  }
  std::printf("corruption soak: %llu/%llu converged%s\n",
              static_cast<unsigned long long>(cases - failures),
              static_cast<unsigned long long>(cases),
              failures == 0 ? "" : " — replay with --soak <master_seed>");
  return failures == 0 ? 0 : 1;
}

int run_sim_threads_mode(unsigned threads, const char* log_path) {
  std::printf(
      "sim-threads determinism smoke: fig2-16 reliable ring, chaos scenario, "
      "%s\n",
      threads == 0 ? "serial oracle"
                   : ("parallel engine (4 partitions, " +
                      std::to_string(threads) + " threads)")
                         .c_str());
  const std::string artifact = run_sim_threads_smoke(threads);
  if (log_path != nullptr) {
    std::FILE* f = std::fopen(log_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", log_path);
      return 1;
    }
    std::fwrite(artifact.data(), 1, artifact.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", log_path, artifact.size());
  } else {
    std::fwrite(artifact.data(), 1, artifact.size(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool scale = false;
  bool compare = false;
  bool corrupt_smoke = false;
  bool soak = false;
  std::uint64_t soak_seed = 0;
  std::uint64_t soak_cases = 30;
  unsigned jobs = 1;
  int sim_threads = -1;  // <0: campaign mode; >=0: determinism smoke
  const char* json_path = nullptr;
  const char* metrics_path = nullptr;
  const char* log_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--corrupt-smoke") == 0) {
      corrupt_smoke = true;
    } else if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = true;
      soak_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--soak-cases") == 0 && i + 1 < argc) {
      soak_cases = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      sim_threads = std::atoi(argv[++i]);
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--scale] [--compare] [--json <file>] "
                   "[--metrics-json <file>] [--log <file>] [--jobs <N>] "
                   "[--sim-threads <N>] [--corrupt-smoke] "
                   "[--soak <seed>] [--soak-cases <N>]\n",
                   argv[0]);
      return 2;
    }
  }

  if (sim_threads >= 0) {
    return run_sim_threads_mode(static_cast<unsigned>(sim_threads), log_path);
  }
  if (corrupt_smoke) return run_corrupt_smoke(log_path, metrics_path);
  if (soak) return run_soak(soak_seed, soak_cases, log_path);

  const std::uint64_t total_requests = (quick || scale || compare) ? 1500 : 6000;
  const double rate_rps = (quick || scale || compare) ? 50000 : 100000;
  const std::size_t num_clients = (quick || scale || compare) ? 64 : 250;

  // The 64-host k=8 fat-tree cells: kill one spine crossbar, and partition a
  // server, at scale. Both outlive the permanent-failure threshold, so clean
  // invariants here certify remap + redelivery on the large fabric.
  const std::vector<CellSpec> scale_specs = {
      {"spine-death", 64, true, true, harness::TopoKind::kClos},
      {"partition-heal", 64, true, true, harness::TopoKind::kClos},
      {"spine-death-placement", 64, false, false, harness::TopoKind::kClos,
       /*placement_cell=*/true, /*pod_aware=*/true},
      {"spine-death-random", 64, false, false, harness::TopoKind::kClos,
       /*placement_cell=*/true, /*pod_aware=*/false},
  };

  // Quick: one cell per scenario class across all three fabric sizes (the
  // CI smoke + determinism gate). Scale: just the 64-host Clos cells, at
  // quick workload intensity. Full: every scenario on every Figure-2 size,
  // plus the scale cells.
  // --compare: each scenario twice — the on-demand baseline and the
  // proactive-backup mapper — on the Figure-2 16-host and Clos 64-host
  // fabrics (docs/EXPERIMENTS.md "TTFR comparison sweep"). Gated below:
  // on link-kill cells the proactive median per-destination TTFR must be
  // strictly lower, and retransmission amplification must be no worse
  // anywhere. partition-heal is the deliberate non-win control: the victim's
  // access link is its only attachment, every backup is stale at promote
  // time, and recovery must correctly fall back to probing.
  const std::vector<CellSpec> compare_specs = {
      {"link-kill", 16, true, true},
      {"partition-heal", 16, true, true},
      {"link-kill", 64, true, true, harness::TopoKind::kClos},
      {"spine-death", 64, true, true, harness::TopoKind::kClos},
  };

  std::vector<CellSpec> specs;
  if (compare) {
    for (const CellSpec& base : compare_specs) {
      CellSpec od = base;
      od.proactive = false;
      specs.push_back(od);
      CellSpec pro = base;
      pro.proactive = true;
      specs.push_back(pro);
    }
  } else if (quick) {
    specs = {
        {"link-kill", 8, true, true},
        {"flap-train", 8, true, false},
        {"partition-heal", 8, true, true},
        {"error-ramp", 4, false, false},
        {"compound", 16, true, false},
        {"spine-death-placement", 16, false, false, harness::TopoKind::kClos,
         /*placement_cell=*/true, /*pod_aware=*/true},
        {"spine-death-random", 16, false, false, harness::TopoKind::kClos,
         /*placement_cell=*/true, /*pod_aware=*/false},
    };
  } else if (scale) {
    specs = scale_specs;
  } else {
    for (const std::size_t n : {std::size_t{4}, std::size_t{8},
                                std::size_t{16}}) {
      specs.push_back({"link-kill", n, true, true});
      specs.push_back({"flap-train", n, true, false});
      specs.push_back({"switch-death", n, true, false});
      specs.push_back({"partition-heal", n, true, true});
      specs.push_back({"error-ramp", n, false, false});
      specs.push_back({"compound", n, true, false});
    }
    specs.insert(specs.end(), scale_specs.begin(), scale_specs.end());
  }

  std::printf(
      "Chaos campaign: KV service + open-loop traffic on Figure-2 fabrics, "
      "%llu requests @ %.0fk rps per cell, %zu cells\n\n",
      static_cast<unsigned long long>(total_requests), rate_rps / 1e3,
      specs.size());

  std::vector<std::function<CellResult()>> cells;
  cells.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    cells.emplace_back(
        [spec, total_requests, rate_rps, num_clients, metrics_path] {
          return run_cell(spec, total_requests, rate_rps, num_clients,
                          metrics_path != nullptr);
        });
  }
  const std::vector<CellResult> rows =
      bench::run_cells<CellResult>(jobs, cells);

  bool all_ok = true;
  if (compare) {
    // Pairwise view: rows alternate on-demand / proactive per scenario.
    harness::Table t({"Scenario", "Hosts", "Mapper", "TTFRmed(us)",
                      "TTFRdest", "Promoted", "Probed", "StaleRej", "RetxAmp",
                      "Audit", "Invariants"});
    for (const CellResult& r : rows) {
      const auto& rec = r.recovery;
      t.add_row({r.spec.scenario, std::to_string(r.spec.hosts),
                 r.spec.proactive ? "proactive" : "on-demand",
                 rec.ttfr_dest_samples > 0
                     ? harness::fmt(sim::to_micros(median_ttfr(rec)), 1)
                     : "-",
                 std::to_string(rec.ttfr_dest_samples),
                 std::to_string(rec.remap_conv_promoted),
                 std::to_string(rec.remap_conv_probed),
                 std::to_string(r.backup_stale_rejections),
                 harness::fmt(rec.retrans_amplification(), 3),
                 r.audit.ok() ? "OK" : "FAIL",
                 r.violations.empty() ? "OK" : "FAIL"});
    }
    t.print();

    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
      const CellResult& od = rows[i];
      const CellResult& pro = rows[i + 1];
      const sim::Duration m_od = median_ttfr(od.recovery);
      const sim::Duration m_pro = median_ttfr(pro.recovery);
      const bool is_link_kill =
          std::strcmp(od.spec.scenario, "link-kill") == 0;
      if (is_link_kill) {
        // The headline gate: promotion moves the probe storm off the
        // failover critical path, so the median per-destination TTFR must
        // strictly beat the probing baseline on every link-kill cell.
        if (m_od == 0 || m_pro == 0 || m_pro >= m_od) {
          std::printf(
              "COMPARE GATE FAILED [%s/%zu]: proactive median TTFR %.1f us "
              "not strictly below on-demand %.1f us\n",
              od.spec.scenario, od.spec.hosts, sim::to_micros(m_pro),
              sim::to_micros(m_od));
          all_ok = false;
        }
        if (pro.recovery.remap_conv_promoted == 0) {
          std::printf(
              "COMPARE GATE FAILED [%s/%zu]: no promoted remap convergence "
              "(backups never used)\n",
              od.spec.scenario, od.spec.hosts);
          all_ok = false;
        }
      }
      // Promotion must not pay for speed with duplicate traffic: the
      // retransmission amplification may not regress (small slack for
      // timing-shift noise between the two runs).
      const double amp_od = od.recovery.retrans_amplification();
      const double amp_pro = pro.recovery.retrans_amplification();
      if (amp_pro > amp_od * 1.05 + 0.005) {
        std::printf(
            "COMPARE GATE FAILED [%s/%zu]: retransmission amplification "
            "regressed (%.4f -> %.4f)\n",
            od.spec.scenario, od.spec.hosts, amp_od, amp_pro);
        all_ok = false;
      }
    }
  } else {
    harness::Table t({"Scenario", "Hosts", "Goodput(rps)", "Avail", "TTFR(us)",
                      "RemapConv(us)", "GenRestarts", "RetxAmp", "DipArea",
                      "Quorum", "Audit", "Invariants"});
    for (const CellResult& r : rows) {
      const auto& rec = r.recovery;
      t.add_row({r.spec.scenario, std::to_string(r.spec.hosts),
                 harness::fmt(r.goodput_rps, 0),
                 harness::fmt(r.availability, 4),
                 rec.ttfr_samples > 0
                     ? harness::fmt(sim::to_micros(rec.ttfr_first), 1)
                     : "-",
                 rec.remap_convergences > 0
                     ? harness::fmt(sim::to_micros(rec.remap_conv_max), 1)
                     : "-",
                 std::to_string(rec.gen_restarts),
                 harness::fmt(rec.retrans_amplification(), 3),
                 harness::fmt(rec.goodput_dip_area, 0),
                 !r.spec.placement_cell ? "-"
                 : r.quorum_held        ? "held"
                                        : "lost",
                 r.audit.ok() ? "OK" : "FAIL",
                 r.violations.empty() ? "OK" : "FAIL"});
    }
    t.print();
  }
  for (const CellResult& r : rows) {
    for (const std::string& v : r.violations) {
      std::printf("INVARIANT VIOLATION [%s/%zu hosts]: %s\n", r.spec.scenario,
                  r.spec.hosts, v.c_str());
      all_ok = false;
    }
    if (!r.audit.ok()) all_ok = false;
  }
  std::printf("\nchaos invariants: %s\n",
              all_ok ? "all cells OK" : "VIOLATIONS");

  if (json_path != nullptr) all_ok = write_json(json_path, rows) && all_ok;
  if (metrics_path != nullptr) {
    all_ok = write_metrics_json(metrics_path, rows) && all_ok;
  }
  if (log_path != nullptr) all_ok = write_log(log_path, rows) && all_ok;
  return all_ok ? 0 : 1;
}
