// Table 3: on-demand dynamic mapping performance — probe-message counts
// (host vs switch probes) and mapping time as a function of the number of
// switches between the two nodes, on the Figure-2 evaluation fabric (two
// 16-port and two 8-port full crossbars in a redundant tree).
//
// Methodology follows the paper: the mapper is warm (it knows its own attach
// port from previous operation), the target's route has just been
// invalidated, and the first packet exchange triggers the re-mapping. Probe
// counts grow roughly linearly with distance because of the breadth-first
// search; absolute values differ from the paper's (different crossbar
// population), but the shape — host probes dominating, switch probes
// appearing only past the first switch, millisecond-scale times growing with
// depth — is the reproduction target.
#include <cstdio>
#include <optional>

#include "harness/cluster.hpp"
#include "harness/table.hpp"

namespace {

using namespace sanfault;
using harness::Cluster;
using harness::ClusterConfig;

struct Row {
  int hops;
  std::uint64_t host_probes;
  std::uint64_t switch_probes;
  double time_ms;
};

Row measure(std::size_t target) {
  ClusterConfig cfg;
  // Fully populate the fabric (6+12+12+6 hosts), as the paper's testbed
  // was: empty crossbar ports are what make switch-detection expensive.
  cfg.num_hosts = 36;
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.preload_routes = false;
  Cluster c(cfg);

  // Warm-up: a first mapping to the target discovers the mapper's own attach
  // port and exercises the cold path; then invalidate and re-map — the
  // steady-state "node re-connected, first packet triggers mapping" cost.
  bool done = false;
  c.mapper(4).request_route(c.hosts[target],
                            [&](std::optional<net::Route>) { done = true; });
  while (!done && c.sched.step()) {
  }

  done = false;
  c.rel(4).routes().invalidate(c.hosts[target]);
  c.mapper(4).invalidate_path(c.hosts[target]);  // measure a real re-probe
  c.mapper(4).request_route(c.hosts[target],
                            [&](std::optional<net::Route>) { done = true; });
  while (!done && c.sched.step()) {
  }

  const auto& st = c.mapper(4).stats();
  return Row{0, st.last_host_probes, st.last_switch_probes,
             sim::to_millis(st.last_mapping_time)};
}

}  // namespace

int main() {
  std::printf("=== Table 3: dynamic (on-demand) mapping performance ===\n\n");

  // Host 4 sits on sw8_a; hosts 0..3 sit on sw8_a, sw16_a, sw16_b, sw8_b:
  // 1, 2, 3, 4 switches away respectively.
  const std::size_t targets[] = {0, 1, 2, 3};
  // The paper's measured values for its fabric, for side-by-side comparison.
  const int paper_host[] = {28, 53, 83, 113};
  const int paper_switch[] = {0, 20, 41, 73};
  const double paper_ms[] = {3.054, 25.855, 48.488, 83.567};

  harness::Table t({"Hops", "Host", "Switch", "Total", "Time(ms)",
                    "paper:Host", "paper:Switch", "paper:Time(ms)"});
  for (int i = 0; i < 4; ++i) {
    Row r = measure(targets[static_cast<std::size_t>(i)]);
    t.add_row({std::to_string(i + 1), std::to_string(r.host_probes),
               std::to_string(r.switch_probes),
               std::to_string(r.host_probes + r.switch_probes),
               harness::fmt(r.time_ms, 3), std::to_string(paper_host[i]),
               std::to_string(paper_switch[i]), harness::fmt(paper_ms[i], 3)});
  }
  t.print();
  std::printf(
      "\nShape targets: probe counts linear in depth (BFS), switch probes 0\n"
      "at one hop (the own attach port is already known), ms-scale times\n"
      "growing with distance.\n");
  return 0;
}
