// Shared sweep machinery for the Figure 5-8 benchmarks: measure ping-pong
// ("bidirectional") and unidirectional bandwidth for one protocol
// configuration (retransmission interval, send-queue size, injected error
// rate) at one message size.
//
// Stream lengths follow the paper's methodology — "generate enough packets
// to allow at least ten packets to be dropped at the lower error rate" in
// --full mode; quick mode scales that down to a few drops so the whole
// bench suite stays interactive.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "harness/cluster.hpp"
#include "harness/microbench.hpp"

namespace sanfault::benchsweep {

struct PointConfig {
  sim::Duration retrans_interval = sim::milliseconds(1);
  std::size_t queue = 32;
  std::uint64_t drop_interval = 0;  // 0 = clean; else 1/error-rate
  std::size_t msg_bytes = 65536;
  bool full = false;
  bool with_ft = true;
};

struct PointResult {
  double bidi_mbps = 0;
  double uni_mbps = 0;
};

inline harness::Cluster make_cluster(const PointConfig& pc) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = pc.with_ft ? harness::FirmwareKind::kReliable
                      : harness::FirmwareKind::kRaw;
  cfg.nic.send_buffers = pc.queue;
  cfg.rel.retrans_interval = pc.retrans_interval;
  cfg.rel.drop_interval = pc.drop_interval;
  // Parameter sweeps visit pathological corners (10 us timers, 1 s stalls);
  // keep the permanent-failure detector out of the way — the paper's sweeps
  // had no permanent failures.
  cfg.rel.fail_threshold = sim::seconds(30);
  cfg.rel.fail_min_rounds = 1000;
  return harness::Cluster(cfg);
}

/// How many messages to stream for one measurement.
inline int messages_for(const PointConfig& pc) {
  const std::size_t pkts_per_msg =
      std::max<std::size_t>(1, (pc.msg_bytes + 4095) / 4096);
  // Packet budget: enough for >= ~10 (full) / ~2 (quick) drops at this rate.
  const std::uint64_t want_drops = pc.full ? 10 : 2;
  std::uint64_t target_packets =
      std::max<std::uint64_t>(pc.full ? 4000 : 1200,
                              pc.drop_interval * want_drops + 200);
  target_packets = std::min<std::uint64_t>(target_packets, pc.full ? 200000 : 25000);
  const auto msgs = static_cast<int>(
      std::max<std::uint64_t>(8, target_packets / pkts_per_msg));
  return std::min(msgs, pc.full ? 40000 : 8000);
}

inline PointResult run_point(const PointConfig& pc) {
  PointResult r;
  {
    harness::Cluster c = make_cluster(pc);
    r.bidi_mbps = harness::run_pingpong_bw(c, pc.msg_bytes, messages_for(pc))
                      .mbytes_per_sec();
  }
  {
    harness::Cluster c = make_cluster(pc);
    r.uni_mbps =
        harness::run_unidirectional_bw(c, pc.msg_bytes, messages_for(pc))
            .mbytes_per_sec();
  }
  return r;
}

}  // namespace sanfault::benchsweep
