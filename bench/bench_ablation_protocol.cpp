// Ablations beyond the paper's evaluation (DESIGN.md §7):
//
//  A. Bursty errors — the paper skipped them, arguing uniform rates are the
//     more stressful test. Same long-run rate, bursts of 1/4/16 consecutive
//     drops: go-back-N recovers a whole burst in one round, so bursts should
//     cost LESS than uniform drops at equal rate (validating the paper's
//     "uniform is worse" assumption).
//
//  B. Retransmission window — the paper attributes Figure 8's q128 collapse
//     to the absence of selective retransmission. Capping the go-back-N
//     round (window 1/8 vs whole queue) quantifies how much of the collapse
//     deeper rollbacks cause.
//
//  C. Sender-based ACK-feedback policy — the paper's adaptive scheme vs
//     always-request (max ACK traffic, min buffer hold) vs sparse fixed
//     requests (min ACK traffic, deep rollbacks under loss).
#include <cstdio>
#include <cstring>

#include "harness/table.hpp"
#include "sweep_common.hpp"

using namespace sanfault;

namespace {

double uni_bw(benchsweep::PointConfig pc,
              const std::function<void(harness::ClusterConfig&)>& tweak) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.nic.send_buffers = pc.queue;
  cfg.rel.retrans_interval = pc.retrans_interval;
  cfg.rel.drop_interval = pc.drop_interval;
  cfg.rel.fail_threshold = sim::seconds(30);
  cfg.rel.fail_min_rounds = 1000;
  tweak(cfg);
  harness::Cluster c(cfg);
  return harness::run_unidirectional_bw(c, pc.msg_bytes,
                                        benchsweep::messages_for(pc))
      .mbytes_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  benchsweep::PointConfig base;
  base.msg_bytes = 65536;
  base.queue = 32;
  base.full = full;

  std::printf("=== Ablation A: bursty vs uniform errors (64K uni BW, MB/s) ===\n\n");
  {
    harness::Table t({"Rate", "uniform", "burst x4", "burst x16"});
    for (std::uint64_t rate : {100ull, 1000ull}) {
      std::vector<std::string> row{rate == 100 ? "1e-2" : "1e-3"};
      for (std::uint32_t burst : {1u, 4u, 16u}) {
        auto pc = base;
        pc.drop_interval = rate * burst;  // keep the long-run rate equal
        const double bw = uni_bw(pc, [burst](harness::ClusterConfig& c) {
          c.rel.drop_burst = burst;
        });
        row.push_back(harness::fmt(bw, 1));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf(
        "Expectation: bursts recover in one go-back-N round, so at equal\n"
        "long-run rate they cost less than uniform drops — the paper's\n"
        "rationale for testing uniform rates only.\n\n");
  }

  std::printf("=== Ablation B: go-back-N rollback depth (q128, error 1e-2) ===\n\n");
  {
    harness::Table t({"Retransmit window", "uni MB/s"});
    for (std::uint32_t window : {0u, 1u, 8u, 32u}) {
      auto pc = base;
      pc.queue = 128;
      pc.drop_interval = 100;
      const double bw = uni_bw(pc, [window](harness::ClusterConfig& c) {
        c.rel.retransmit_window = window;
      });
      t.add_row({window == 0 ? "whole queue (paper)" : std::to_string(window),
                 harness::fmt(bw, 1)});
    }
    t.print();
    std::printf(
        "A bounded window approximates selective retransmission's benefit\n"
        "on the q128 collapse of Figure 8.\n\n");
  }

  std::printf("=== Ablation C: ACK-request policy (q32, error 1e-2) ===\n\n");
  {
    harness::Table t({"Policy", "uni MB/s clean", "uni MB/s 1e-2"});
    struct Policy {
      const char* name;
      double low, high;
    };
    // low>=1: every packet requests an ACK; high<=0: always the sparse q/2
    // interval; defaults: the paper's adaptive scheme.
    const Policy policies[] = {
        {"adaptive (paper)", 0.25, 0.75},
        {"always request", 1.1, 1.2},
        {"sparse fixed", -0.1, -0.05},
    };
    for (const auto& p : policies) {
      auto clean = base;
      auto faulty = base;
      faulty.drop_interval = 100;
      auto tweak = [&p](harness::ClusterConfig& c) {
        c.rel.ack.low_watermark = p.low;
        c.rel.ack.high_watermark = p.high;
      };
      t.add_row({p.name, harness::fmt(uni_bw(clean, tweak), 1),
                 harness::fmt(uni_bw(faulty, tweak), 1)});
    }
    t.print();
    std::printf(
        "Always-request minimizes rollback depth at the cost of ACK\n"
        "processing; sparse requests defer ACKs and roll back deeper —\n"
        "the trade-off the sender-based feedback navigates (§4.1.2).\n");
  }
  return 0;
}
