// Figure 5: effect of the retransmission timer interval on bandwidth with no
// injected errors (NIC send queue fixed at 32).
//
// Paper: intervals of 100 us or less cost > 17% bandwidth across message
// sizes (timer scans + false retransmissions when the timer is shorter than
// the ack latency); 1 ms or longer is near-free.
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "harness/table.hpp"
#include "parallel_sweep.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace sanfault;
  bool full = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr, "usage: %s [--full] [--jobs <N>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<sim::Duration> intervals = {
      sim::microseconds(10), sim::microseconds(100), sim::milliseconds(1),
      sim::milliseconds(10), sim::seconds(1)};
  const std::vector<std::size_t> sizes = {4,     64,    1024,   4096,
                                          16384, 65536, 262144, 1048576};

  std::printf("=== Figure 5: retransmission interval, no errors, q=32 ===\n\n");

  // Measure every point once (each yields bidi + uni). Cells are declared in
  // report order and may run on any worker thread; see parallel_sweep.hpp.
  std::vector<std::function<benchsweep::PointResult()>> cells;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    benchsweep::PointConfig base;
    base.msg_bytes = sizes[si];
    base.full = full;
    base.with_ft = false;
    cells.emplace_back([base] { return benchsweep::run_point(base); });
    for (auto iv : intervals) {
      benchsweep::PointConfig pc = base;
      pc.with_ft = true;
      pc.retrans_interval = iv;
      cells.emplace_back([pc] { return benchsweep::run_point(pc); });
    }
  }
  const auto res = bench::run_cells<benchsweep::PointResult>(jobs, cells);

  const std::size_t stride = 1 + intervals.size();
  std::vector<std::vector<benchsweep::PointResult>> grid(sizes.size());
  std::vector<benchsweep::PointResult> baseline(sizes.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    baseline[si] = res[si * stride];
    grid[si].assign(res.begin() + static_cast<std::ptrdiff_t>(si * stride + 1),
                    res.begin() + static_cast<std::ptrdiff_t>((si + 1) * stride));
  }

  for (const bool uni : {false, true}) {
    harness::Table t({"Size", "No FT", "10us", "100us", "1ms", "10ms", "1s"});
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      std::vector<std::string> row{harness::fmt_bytes(sizes[si])};
      row.push_back(harness::fmt(
          uni ? baseline[si].uni_mbps : baseline[si].bidi_mbps, 1));
      for (const auto& r : grid[si]) {
        row.push_back(harness::fmt(uni ? r.uni_mbps : r.bidi_mbps, 1));
      }
      t.add_row(std::move(row));
    }
    std::printf("--- %s bandwidth (MB/s) ---\n",
                uni ? "Unidirectional" : "Bidirectional");
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference: <=100us drops bandwidth by >17%%; >=1ms is within a "
      "few %% of No FT.\n");
  return 0;
}
