// Mapping-scheme ablation (DESIGN.md §7): on-demand (§4.2) vs full-map
// UP*/DOWN* baseline, on the fully-populated Figure-2 fabric.
//
//  * recovery after a permanent trunk failure: time from failure detection
//    to restored delivery, and probes spent;
//  * route quality: hop counts of on-demand shortest routes vs legal
//    UP*/DOWN* routes (the paper notes its scheme "has the potential of
//    improving on the quality of routes");
//  * mapping-cache effect: cold vs warm mapping cost (§4.2 mentions caching
//    as an unexplored improvement).
#include <cstdio>
#include <optional>

#include "firmware/updown.hpp"
#include "harness/cluster.hpp"
#include "harness/table.hpp"

using namespace sanfault;

namespace {

harness::ClusterConfig base_cfg(harness::MapperKind mk) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 36;
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = mk;
  cfg.rel.fail_threshold = sim::milliseconds(20);
  return cfg;
}

struct Recovery {
  double detect_ms = 0;   // failure -> path declared dead
  double restore_ms = 0;  // failure -> next successful delivery
  std::uint64_t probes = 0;
};

Recovery measure_recovery(harness::MapperKind mk) {
  harness::Cluster c(base_cfg(mk));
  // Steady traffic host0 (sw8_a) -> host3 (sw8_b).
  int delivered = 0;
  sim::Time last_delivery = 0;
  c.nic(3).set_host_rx([&](net::UserHeader, net::PayloadRef,
                           net::HostId) {
    ++delivered;
    last_delivery = c.sched.now();
  });
  c.send(0, 3, std::vector<std::uint8_t>(512, 1));
  c.sched.run_until(sim::milliseconds(1));

  // Kill the primary trunks.
  const sim::Time t_fail = c.sched.now();
  c.topo.set_link_up(net::LinkId{0}, false);
  c.topo.set_link_up(net::LinkId{2}, false);
  c.topo.set_link_up(net::LinkId{4}, false);
  for (int i = 0; i < 4; ++i) {
    c.send(0, 3, std::vector<std::uint8_t>(512, 2));
  }
  const int before = delivered;
  const sim::Time cap = c.sched.now() + sim::seconds(120);
  while (delivered < before + 4 && c.sched.now() < cap && c.sched.step()) {
  }

  Recovery r;
  r.restore_ms = sim::to_millis(last_delivery - t_fail);
  if (mk == harness::MapperKind::kOnDemand) {
    r.probes = c.mapper(0).stats().host_probes_tx +
               c.mapper(0).stats().switch_probes_tx;
  } else {
    r.probes = c.full_mapper(0).stats().modeled_probes;
  }
  r.detect_ms = sim::to_millis(sim::Duration{
      c.rel(0).config().fail_threshold});  // detection threshold component
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: on-demand mapping vs full-map UP*/DOWN* ===\n\n");

  std::printf("--- permanent trunk failure recovery (host0 -> host3) ---\n");
  {
    harness::Table t({"Scheme", "Probes spent", "Failure->restored (ms)"});
    auto od = measure_recovery(harness::MapperKind::kOnDemand);
    auto fm = measure_recovery(harness::MapperKind::kFull);
    t.add_row({"on-demand (paper)", std::to_string(od.probes),
               harness::fmt(od.restore_ms, 2)});
    t.add_row({"full map + UP*/DOWN*", std::to_string(fm.probes),
               harness::fmt(fm.restore_ms, 2)});
    t.print();
    std::printf(
        "(both include the ~20 ms transient/permanent detection threshold;\n"
        "the full map re-probes every switch port: %u modeled probes per remap)\n\n",
        2u * (8 + 16 + 16 + 8) + 36u);
  }

  std::printf("--- route quality: hops of shortest vs UP*/DOWN* routes ---\n");
  {
    harness::Cluster c(base_cfg(harness::MapperKind::kNone));
    firmware::UpDownRouting ud(c.topo);
    std::uint64_t sp_hops = 0;
    std::uint64_t ud_hops = 0;
    std::uint64_t worse = 0;
    std::uint64_t pairs = 0;
    for (std::size_t a = 0; a < c.size(); ++a) {
      for (std::size_t b = 0; b < c.size(); ++b) {
        if (a == b) continue;
        auto s = c.topo.shortest_route(c.hosts[a], c.hosts[b]);
        auto u = ud.route(c.hosts[a], c.hosts[b]);
        if (!s || !u) continue;
        sp_hops += s->hops();
        ud_hops += u->hops();
        worse += (u->hops() > s->hops());
        ++pairs;
      }
    }
    std::printf(
        "  %llu pairs: shortest %.3f switches/route, UP*/DOWN* %.3f; "
        "UP*/DOWN* longer on %llu pairs (%.1f%%)\n",
        static_cast<unsigned long long>(pairs),
        static_cast<double>(sp_hops) / static_cast<double>(pairs),
        static_cast<double>(ud_hops) / static_cast<double>(pairs),
        static_cast<unsigned long long>(worse),
        100.0 * static_cast<double>(worse) / static_cast<double>(pairs));
    std::printf(
        "  (on-demand routes need no deadlock-freedom, so they can always\n"
        "   take the shortest path — the paper's unexplored quality benefit)\n\n");
  }

  std::printf("--- mapping cache: cold vs warm on-demand mapping ---\n");
  {
    harness::Cluster c(base_cfg(harness::MapperKind::kOnDemand));
    auto run_one = [&](std::size_t dst) {
      bool done = false;
      c.mapper(4).request_route(c.hosts[dst],
                                [&](std::optional<net::Route>) { done = true; });
      while (!done && c.sched.step()) {
      }
      return sim::to_millis(c.mapper(4).stats().last_mapping_time);
    };
    const double cold = run_one(3);  // cold: attach-port discovery + BFS
    const double warm = run_one(2);  // warm: attach port (and any hosts seen
                                     // during the first BFS) already known
    std::printf("  cold mapping to host 3: %.3f ms\n", cold);
    std::printf("  mapping to host 2 after: %.3f ms (attach port already known)\n",
                warm);
  }
  return 0;
}
