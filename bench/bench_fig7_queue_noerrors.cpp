// Figure 7: effect of the NIC send queue size on bandwidth with no errors
// (retransmission interval fixed at 1 ms).
//
// Paper: only very small queues hurt; any queue size above 8 reaches
// close-to-maximum bandwidth.
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "harness/table.hpp"
#include "parallel_sweep.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace sanfault;
  bool full = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr, "usage: %s [--full] [--jobs <N>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> queues = {2, 8, 32, 128};
  const std::vector<std::size_t> sizes = {4,     64,    1024,   4096,
                                          16384, 65536, 262144, 1048576};

  std::printf("=== Figure 7: NIC send queue size, no errors, r=1ms ===\n\n");

  std::vector<std::function<benchsweep::PointResult()>> cells;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    benchsweep::PointConfig base;
    base.msg_bytes = sizes[si];
    base.full = full;
    base.with_ft = false;
    base.queue = 32;
    cells.emplace_back([base] { return benchsweep::run_point(base); });
    for (std::size_t q : queues) {
      benchsweep::PointConfig pc = base;
      pc.with_ft = true;
      pc.queue = q;
      cells.emplace_back([pc] { return benchsweep::run_point(pc); });
    }
  }
  const auto res = bench::run_cells<benchsweep::PointResult>(jobs, cells);

  const std::size_t stride = 1 + queues.size();
  std::vector<benchsweep::PointResult> baseline(sizes.size());
  std::vector<std::vector<benchsweep::PointResult>> grid(sizes.size());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    baseline[si] = res[si * stride];
    grid[si].assign(res.begin() + static_cast<std::ptrdiff_t>(si * stride + 1),
                    res.begin() + static_cast<std::ptrdiff_t>((si + 1) * stride));
  }

  for (const bool uni : {false, true}) {
    harness::Table t({"Size", "No FT(q32)", "q2", "q8", "q32", "q128"});
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      std::vector<std::string> row{harness::fmt_bytes(sizes[si])};
      row.push_back(harness::fmt(
          uni ? baseline[si].uni_mbps : baseline[si].bidi_mbps, 1));
      for (const auto& r : grid[si]) {
        row.push_back(harness::fmt(uni ? r.uni_mbps : r.bidi_mbps, 1));
      }
      t.add_row(std::move(row));
    }
    std::printf("--- %s bandwidth (MB/s) ---\n",
                uni ? "Unidirectional" : "Bidirectional");
    t.print();
    std::printf("\n");
  }
  std::printf("Paper reference: any queue size above 8 is close to maximum.\n");
  return 0;
}
