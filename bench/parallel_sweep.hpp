// Parallel cell runner for sweep benchmarks.
//
// A sweep is a grid of independent simulation cells; each cell builds its own
// sim::Scheduler (and with it its own fabric, NICs and metrics registry) from
// fixed seeds, so cells share no mutable state and their results do not
// depend on when or where they execute. run_cells() exploits that: cells are
// claimed by a small thread pool, but results land in a vector indexed by
// declaration order and all printing happens afterwards on the caller's
// thread — the output of `--jobs N` is byte-identical to the serial run for
// every N. (The one piece of process-global state, the obs registry map, is
// mutex-guarded; see src/obs/metrics.cpp.)
//
// Usage: build the cell list in the order the report will consume it, then
//   auto results = bench::run_cells<Result>(jobs, cells);
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace sanfault::bench {

/// Consume a `--jobs <N>` argument pair at argv[i] (mutating i past the
/// value). Returns false if argv[i] is some other flag. N < 1 clamps to 1.
inline bool parse_jobs_flag(int& i, int argc, char** argv, unsigned& jobs) {
  if (std::strcmp(argv[i], "--jobs") != 0 || i + 1 >= argc) return false;
  const long n = std::atol(argv[++i]);
  jobs = n > 0 ? static_cast<unsigned>(n) : 1u;
  return true;
}

template <class Result>
std::vector<Result> run_cells(
    unsigned jobs, const std::vector<std::function<Result()>>& cells) {
  std::vector<Result> results(cells.size());
  if (jobs <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) results[i] = cells[i]();
    return results;
  }

  std::vector<std::exception_ptr> errors(cells.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      try {
        results[i] = cells[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const std::size_t n_workers =
      std::min<std::size_t>(jobs, cells.size());
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  // Rethrow the first failure in declaration order (deterministic too).
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace sanfault::bench
