// Figure 8: effect of the NIC send queue size on bandwidth with injected
// errors at rates 1e-2, 1e-3, 1e-4 (retransmission interval fixed at 1 ms).
//
// Paper: q >= 8 stays near-best for error rates <= 1e-4, but at 1e-2 the
// q128 unidirectional bandwidth collapses by > 30%: sender-based feedback
// defers ACK requests when buffers are plentiful, so each drop rolls back a
// much deeper go-back-N window (no selective retransmission).
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "harness/table.hpp"
#include "parallel_sweep.hpp"
#include "sweep_common.hpp"

int main(int argc, char** argv) {
  using namespace sanfault;
  bool full = false;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr, "usage: %s [--full] [--jobs <N>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> queues = {2, 8, 32, 128};
  const std::vector<std::uint64_t> rates = {100, 1000, 10000};
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{4096, 16384, 65536, 262144, 1048576}
           : std::vector<std::size_t>{4096, 65536, 1048576};

  std::printf("=== Figure 8: NIC send queue size with errors, r=1ms ===\n\n");

  // Cell list in report order: rate -> size -> [No-FT baseline, queues...].
  std::vector<std::function<benchsweep::PointResult()>> cells;
  for (std::uint64_t rate : rates) {
    for (std::size_t bytes : sizes) {
      benchsweep::PointConfig base;
      base.msg_bytes = bytes;
      base.full = full;
      base.with_ft = false;
      cells.emplace_back([base] { return benchsweep::run_point(base); });
      for (std::size_t q : queues) {
        benchsweep::PointConfig pc = base;
        pc.with_ft = true;
        pc.queue = q;
        pc.drop_interval = rate;
        cells.emplace_back([pc] { return benchsweep::run_point(pc); });
      }
    }
  }
  const auto res = bench::run_cells<benchsweep::PointResult>(jobs, cells);

  const std::size_t stride = 1 + queues.size();
  std::size_t cell = 0;
  for (std::uint64_t rate : rates) {
    std::printf("--- error rate 1e-%d ---\n", rate == 100 ? 2 : rate == 1000 ? 3 : 4);
    harness::Table t({"Size", "Dir", "No FT(q32)", "q2", "q8", "q32", "q128"});
    for (std::size_t bytes : sizes) {
      const benchsweep::PointResult& raw = res[cell];
      for (const bool uni : {false, true}) {
        std::vector<std::string> row{harness::fmt_bytes(bytes),
                                     uni ? "uni" : "bidi"};
        row.push_back(harness::fmt(uni ? raw.uni_mbps : raw.bidi_mbps, 1));
        for (std::size_t k = 1; k < stride; ++k) {
          const benchsweep::PointResult& r = res[cell + k];
          row.push_back(harness::fmt(uni ? r.uni_mbps : r.bidi_mbps, 1));
        }
        t.add_row(std::move(row));
      }
      cell += stride;
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference: q>=8 near-best at <=1e-4; at 1e-2 the q128\n"
      "unidirectional case degrades by >30%% (deep go-back-N rollbacks).\n");
  return 0;
}
