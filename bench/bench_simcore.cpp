// Wall-clock self-benchmark for the simulator core (not a paper figure).
//
// Three measurements, each reported as real time on the machine running the
// simulation — the quantity every sweep's run time is made of:
//
//  * scheduler  — events/sec through sim::Scheduler for the two hot shapes:
//                 pure schedule/execute churn, and the retransmission-timer
//                 shape (cancel + re-arm on every delivery);
//  * CRC        — MB/s through net::crc32 at packet-ish buffer sizes;
//  * end-to-end — simulated packets/sec for a 4-node reliable-firmware
//                 cluster streaming 4 KB messages ring-wise under §5.1.3
//                 error injection (drop_interval=1000), the workload shape of
//                 the Fig 5-8 and KV sweeps;
//  * parallel   — the conservative PDES engine (sim/parallel_scheduler) on a
//                 clos-256 reliable-firmware ring, swept over worker thread
//                 counts {1, 2, 4, 8} at a fixed 8-way pod partitioning. The
//                 speedup curve (wall_t1 / wall_tN) and a cross-thread wire
//                 determinism check land in the JSON alongside the serial
//                 numbers. `--sim-threads N` restricts the sweep to {1, N}.
//
// Numbers land in BENCH_simcore.json (override with --json <file>); the
// committed floor bench/golden/simcore_floor.json is the regression gate for
// `scripts/verify.sh --perf-smoke` (see docs/PERFORMANCE.md).
//
//   ./build/bench/bench_simcore [--quick] [--json <file>] [--sim-threads N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdint>
#include <numeric>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/parallel_cluster.hpp"
#include "net/crc.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace sanfault;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wall-clock microbenchmarks on a shared box are noisy (scheduler quanta,
// frequency ramp); best-of-N is the usual estimator of the true cost.
template <class F>
auto best_of(int reps, F&& f) {
  auto best = f();
  for (int r = 1; r < reps; ++r) {
    auto cur = f();
    if (cur.eps > best.eps) best = cur;
  }
  return best;
}

// --- scheduler: pure churn -------------------------------------------------
// Batches of events at jittered future times, drained batch by batch: the
// steady-state push/pop mix of a busy fabric. The pending population is kept
// at the scale real runs exhibit — instrumenting the 4-node reliable e2e
// workload below shows 4 pending events on average and 20 at peak, so 64 is
// a generous ceiling. (At thousands of pending events the measurement stops
// being about per-event cost and starts being about heap cache footprint, a
// regime no sweep in this repo enters.)
struct SchedResult {
  double eps = 0;       // events (+ cancel/re-arm ops) per wall second
  double seconds = 0;   // wall time of the best rep
  std::uint64_t ops = 0;
};

SchedResult bench_sched_churn(std::uint64_t total_events) {
  sim::Scheduler s;
  sim::Rng rng(123);
  const std::size_t batch = 64;
  // Jitter is precomputed so the timed loop measures the scheduler, not the
  // RNG (uniform() costs two 64-bit divisions — comparable to a push+pop).
  std::vector<sim::Duration> jitter(8192);
  for (auto& j : jitter) j = 1 + rng.uniform(1000);
  std::size_t cursor = 0;
  std::uint64_t sink = 0;
  const double t0 = now_sec();
  while (s.events_executed() < total_events) {
    for (std::size_t i = 0; i < batch; ++i) {
      s.after(jitter[cursor++ & (jitter.size() - 1)], [&sink] { ++sink; });
    }
    s.run();
  }
  const double dt = now_sec() - t0;
  return {static_cast<double>(s.events_executed()) / dt, dt,
          s.events_executed()};
}

// --- scheduler: cancel/re-arm shape ---------------------------------------
// 64 "channels", each delivery cancels its pending retransmission timer and
// arms a fresh one — the per-packet pattern of the reliability firmware.
SchedResult bench_sched_cancel(std::uint64_t deliveries) {
  sim::Scheduler s;
  struct Chan {
    sim::EventHandle timer;
    std::uint64_t remaining = 0;
  };
  std::vector<Chan> chans(64);
  std::uint64_t cancels = 0;

  // Self-perpetuating delivery chain per channel.
  struct Driver {
    sim::Scheduler& s;
    std::vector<Chan>& chans;
    std::uint64_t& cancels;
    void deliver(std::size_t i) {
      Chan& c = chans[i];
      if (c.timer.valid() && s.cancel(c.timer)) ++cancels;
      c.timer = s.after(100000, [] { /* timer fires only if not re-armed */ });
      if (--c.remaining > 0) {
        s.after(100, [this, i] { deliver(i); });
      }
    }
  } drv{s, chans, cancels};

  for (std::size_t i = 0; i < chans.size(); ++i) {
    chans[i].remaining = deliveries / chans.size();
    s.after(1 + i, [&drv, i] { drv.deliver(i); });
  }
  const double t0 = now_sec();
  s.run();
  const double dt = now_sec() - t0;
  // Count both the executed events and the cancel+re-arm pair work.
  const std::uint64_t ops = s.events_executed() + 2 * cancels;
  return {static_cast<double>(ops) / dt, dt, ops};
}

// --- CRC -------------------------------------------------------------------
double bench_crc(std::size_t len, std::uint64_t target_bytes) {
  std::vector<std::uint8_t> buf(len);
  for (std::size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  std::uint32_t sink = 0;
  std::uint64_t done = 0;
  const double t0 = now_sec();
  while (done < target_bytes) {
    sink ^= net::crc32(std::span<const std::uint8_t>(buf));
    done += len;
  }
  const double dt = now_sec() - t0;
  // Defeat dead-code elimination.
  if (sink == 0xDEADBEEF) std::printf("\r");
  return static_cast<double>(done) / dt / 1e6;
}

// --- end-to-end ------------------------------------------------------------
struct E2eResult {
  double sim_pkts_per_sec = 0;
  std::uint64_t wire_tx = 0;
  double wall_ms = 0;
};

E2eResult bench_e2e(int msgs_per_host) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.nic.send_buffers = 32;
  cfg.rel.drop_interval = 1000;  // §5.1.3 injection, 1e-3 error rate
  cfg.rel.retrans_interval = sim::milliseconds(1);
  // Keep the permanent-failure detector out of a transient-error workload.
  cfg.rel.fail_threshold = sim::seconds(30);
  cfg.rel.fail_min_rounds = 100000;
  harness::Cluster c(cfg);

  const std::size_t n = c.size();
  const std::size_t msg_bytes = 4096;
  std::vector<int> received(n, 0);
  std::vector<int> submitted(n, 0);
  bool all_done = false;

  // Count deliveries directly; the generic lambda keeps this source
  // compatible with any payload representation the NIC hands up.
  for (std::size_t i = 0; i < n; ++i) {
    c.nic(i).set_host_rx(
        [&received, &all_done, &received_i = received[i], n, msgs_per_host,
         &received_all = received](net::UserHeader, auto&&, net::HostId) {
          ++received_i;
          bool done = true;
          for (std::size_t k = 0; k < n; ++k) {
            done = done && received_all[k] >= msgs_per_host;
          }
          all_done = done;
          (void)received;
        });
  }

  // Ring traffic: host i streams to host (i+1) % n, self-clocked by the
  // "send accepted" callback (data reached NIC SRAM).
  struct Submitter {
    harness::Cluster& c;
    std::vector<int>& submitted;
    int limit;
    std::size_t msg_bytes;
    void pump(std::size_t i) {
      if (submitted[i] >= limit) return;
      ++submitted[i];
      c.send(i, (i + 1) % c.size(),
             std::vector<std::uint8_t>(msg_bytes,
                                       static_cast<std::uint8_t>(i + 1)),
             net::UserHeader{}, [this, i] { pump(i); });
    }
  } sub{c, submitted, msgs_per_host, msg_bytes};

  for (std::size_t i = 0; i < n; ++i) {
    c.sched.after(1 + i, [&sub, i] { sub.pump(i); });
  }

  const double t0 = now_sec();
  const sim::Time cap = sim::seconds(600);
  while (!all_done && c.sched.now() < cap && c.sched.step()) {
  }
  const double dt = now_sec() - t0;

  E2eResult r;
  for (std::size_t i = 0; i < n; ++i) r.wire_tx += c.nic(i).stats().wire_tx;
  r.wall_ms = dt * 1e3;
  r.sim_pkts_per_sec = static_cast<double>(r.wire_tx) / dt;
  return r;
}

// --- parallel PDES sweep ----------------------------------------------------
// A clos-256 reliable-firmware ring (pod-major, self-clocked) run to a fixed
// simulated horizon on the conservative parallel engine. The partition count
// is pinned at 8 — the determinism key — while the worker thread count
// sweeps, so every run must produce identical wire totals; the bench fails
// if any thread count disagrees.
struct ParResult {
  double wall_ms = 0;
  std::uint64_t events = 0;
  std::uint64_t wire_injected = 0;
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;  // cross-partition channel handoffs
};

ParResult bench_parallel(std::uint32_t threads, int msgs_per_host,
                         sim::Time horizon) {
  harness::ClusterConfig cc;
  cc.topo = harness::TopoKind::kClos;
  cc.clos = *net::clos_named_shape("clos-256");
  cc.num_hosts = cc.clos.num_hosts;
  cc.fw = harness::FirmwareKind::kReliable;
  cc.nic.send_buffers = 32;
  // The ring only exercises successor pairs; a full 256x255 route preload
  // is minutes of BFS that the timed region never touches. Seed exactly the
  // forward (data) and reverse (ack) routes instead.
  cc.preload_routes = false;
  harness::ParallelCluster pc(
      harness::ParallelClusterConfig{cc, /*partitions=*/8, threads});

  const std::size_t n = pc.size();
  // Pod-major ring: sort hosts by (pod, index); successors mostly share a
  // partition, the pod seams cross it.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return pc.host_pods[a] < pc.host_pods[b];
  });
  std::vector<std::size_t> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[order[i]] = order[(i + 1) % n];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (auto r = pc.topo.shortest_route(pc.hosts[i], pc.hosts[next[i]])) {
      pc.rel(i).routes().set(pc.hosts[next[i]], *r);
    }
    if (auto r = pc.topo.shortest_route(pc.hosts[next[i]], pc.hosts[i])) {
      pc.rel(next[i]).routes().set(pc.hosts[i], *r);
    }
  }

  struct Pump {
    harness::ParallelCluster& pc;
    std::vector<std::size_t>& next;
    std::vector<int> sent;
    int limit;
    void pump(std::size_t i) {
      if (sent[i] >= limit) return;
      ++sent[i];
      pc.send(i, next[i],
              std::vector<std::uint8_t>(1024, static_cast<std::uint8_t>(i)),
              net::UserHeader{}, [this, i] { pump(i); });
    }
  } pump{pc, next, std::vector<int>(n, 0), msgs_per_host};

  for (std::size_t i = 0; i < n; ++i) {
    pc.sched_of(i).at(1 + i, [&pump, i] { pump.pump(i); });
  }

  const double t0 = now_sec();
  pc.engine->run_until(horizon);
  const double dt = now_sec() - t0;

  ParResult r;
  r.wall_ms = dt * 1e3;
  r.events = pc.engine->stats().events_executed;
  r.wire_injected = pc.fabric_stats().injected;
  r.windows = pc.engine->stats().windows;
  r.messages = pc.engine->stats().messages;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = "BENCH_simcore.json";
  unsigned long sim_threads = 0;  // 0 = full {1,2,4,8} sweep
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      sim_threads = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <file>] [--sim-threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::uint64_t churn_events = quick ? 2'000'000 : 8'000'000;
  const std::uint64_t cancel_deliveries = quick ? 640'000 : 2'560'000;
  const std::uint64_t crc_bytes = quick ? 256'000'000 : 1'000'000'000;
  const int e2e_msgs = quick ? 1000 : 4000;

  std::printf("=== simulator-core self-benchmark (%s) ===\n\n",
              quick ? "quick" : "full");

  const SchedResult churn =
      best_of(3, [&] { return bench_sched_churn(churn_events); });
  std::printf("scheduler churn        : %12.0f events/sec\n", churn.eps);
  const SchedResult cancel =
      best_of(3, [&] { return bench_sched_cancel(cancel_deliveries); });
  std::printf("scheduler cancel/re-arm: %12.0f events/sec\n", cancel.eps);
  // Headline scheduler number: aggregate events/sec across both shapes (the
  // reliability firmware exercises both — every data packet is a schedule +
  // a timer cancel/re-arm).
  const double churn_eps = churn.eps;
  const double cancel_eps = cancel.eps;
  const double sched_eps = static_cast<double>(churn.ops + cancel.ops) /
                           (churn.seconds + cancel.seconds);
  std::printf("scheduler combined     : %12.0f events/sec\n", sched_eps);

  const double crc4k = bench_crc(4096, crc_bytes);
  std::printf("crc32 4 KB buffers     : %12.1f MB/s\n", crc4k);
  const double crc64k = bench_crc(65536, crc_bytes);
  std::printf("crc32 64 KB buffers    : %12.1f MB/s\n", crc64k);

  const E2eResult e2e = bench_e2e(e2e_msgs);
  std::printf(
      "end-to-end 4-node ring : %12.0f simulated packets/sec "
      "(%llu wire tx in %.0f ms)\n",
      e2e.sim_pkts_per_sec, static_cast<unsigned long long>(e2e.wire_tx),
      e2e.wall_ms);

  // Parallel PDES sweep. Fixed sim horizon => every thread count simulates
  // the same work; speedup is pure wall-clock ratio.
  const int par_msgs = quick ? 20 : 60;
  const sim::Time par_horizon = sim::milliseconds(quick ? 3 : 8);
  std::vector<unsigned> sweep = {1, 2, 4, 8};
  if (sim_threads > 1) {
    sweep = {1, static_cast<unsigned>(sim_threads)};
  } else if (sim_threads == 1) {
    sweep = {1};
  }
  std::printf("\nparallel clos-256 ring (8 partitions, %d msgs/host, %llu ms "
              "sim):\n",
              par_msgs,
              static_cast<unsigned long long>(par_horizon / 1'000'000));
  std::vector<ParResult> par(sweep.size());
  bool par_deterministic = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    par[i] = bench_parallel(sweep[i], par_msgs, par_horizon);
    std::printf(
        "  threads=%u: %8.1f ms wall, %9llu events (%11.0f ev/s), "
        "%llu wire tx, %llu windows, %llu channel msgs\n",
        sweep[i], par[i].wall_ms,
        static_cast<unsigned long long>(par[i].events),
        par[i].wall_ms > 0 ? static_cast<double>(par[i].events) /
                                 (par[i].wall_ms / 1e3)
                           : 0.0,
        static_cast<unsigned long long>(par[i].wire_injected),
        static_cast<unsigned long long>(par[i].windows),
        static_cast<unsigned long long>(par[i].messages));
    if (par[i].wire_injected != par[0].wire_injected ||
        par[i].events != par[0].events) {
      par_deterministic = false;
    }
  }
  if (!par_deterministic) {
    std::fprintf(stderr,
                 "PARALLEL DETERMINISM FAILED: wire/event totals differ "
                 "across thread counts (partitions fixed at 8)\n");
    return 1;
  }
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    std::printf("  speedup t%u/t1: %.2fx\n", sweep[i],
                par[i].wall_ms > 0 ? par[0].wall_ms / par[i].wall_ms : 0.0);
  }

  std::FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"quick\": %s,\n"
               "  \"sched_churn_eps\": %.0f,\n"
               "  \"sched_cancel_eps\": %.0f,\n"
               "  \"sched_combined_eps\": %.0f,\n"
               "  \"crc_4k_mbps\": %.1f,\n"
               "  \"crc_64k_mbps\": %.1f,\n"
               "  \"e2e_sim_pkts_per_sec\": %.0f,\n"
               "  \"e2e_wire_tx\": %llu,\n"
               "  \"e2e_wall_ms\": %.1f,\n"
               "  \"par_partitions\": 8,\n"
               "  \"par_events\": %llu,\n"
               "  \"par_wire_tx\": %llu,\n"
               "  \"par_channel_msgs\": %llu,\n"
               "  \"par_windows\": %llu",
               quick ? "true" : "false", churn_eps, cancel_eps, sched_eps,
               crc4k, crc64k,
               e2e.sim_pkts_per_sec,
               static_cast<unsigned long long>(e2e.wire_tx), e2e.wall_ms,
               static_cast<unsigned long long>(par[0].events),
               static_cast<unsigned long long>(par[0].wire_injected),
               static_cast<unsigned long long>(par[0].messages),
               static_cast<unsigned long long>(par[0].windows));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f, ",\n  \"par_wall_ms_t%u\": %.1f", sweep[i],
                 par[i].wall_ms);
    std::fprintf(f, ",\n  \"par_events_per_sec_t%u\": %.0f", sweep[i],
                 par[i].wall_ms > 0 ? static_cast<double>(par[i].events) /
                                          (par[i].wall_ms / 1e3)
                                    : 0.0);
    if (i > 0) {
      std::fprintf(f, ",\n  \"par_speedup_t%u\": %.3f", sweep[i],
                   par[i].wall_ms > 0 ? par[0].wall_ms / par[i].wall_ms : 0.0);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
