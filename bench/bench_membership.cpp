// Membership sweep: SWIM failure detection measured as real gossip traffic
// on the simulated fabrics — gossip period x indirect-probe fan-out x
// cluster size (16-host Figure-2 up to the 128-host k=8 fat-tree).
//
// Per cell, on a SwimRig (one agent per host, full gossip mesh, confirm
// hooks wired to firmware exclusion):
//
//  * steady state  — warm the protocol, then measure gossip overhead over a
//    50-period window (packets/s and bytes/s per host from SwimStats
//    deltas);
//  * host kill     — cut one host's access link, run to global confirmation,
//    and record every survivor's detection latency (median / p99 / max),
//    gated against SwimAgent::detection_bound;
//  * the race      — the per-NIC no-progress detector (chaos-calibrated
//    10 ms threshold) runs concurrently; the cell records any survivor
//    whose local kPathFail beat its SWIM confirm. The membership claim is
//    that exclusion preempts the local threshold at every survivor.
//
// All numbers are sim-time and seeded-Rng derived: two runs produce
// byte-identical tables and JSON regardless of --jobs (scripts/verify.sh
// and CI diff the --quick JSON across runs).
//
//   ./build/bench/bench_membership [--quick] [--json <file>] [--jobs <N>]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "firmware/reliability.hpp"
#include "harness/table.hpp"
#include "membership/rig.hpp"
#include "membership/swim.hpp"
#include "parallel_sweep.hpp"

namespace {

using namespace sanfault;

struct CellSpec {
  const char* fabric;  // display name: fig2-16 / clos-64 / clos-128
  harness::TopoKind topo;
  std::size_t hosts;
  std::size_t clos_k;  // ignored for Figure-2 fabrics
  sim::Duration period;
  std::size_t k_indirect;
};

struct CellResult {
  CellSpec spec;
  double pkts_per_host_s = 0;   // steady-state gossip packets/s per host
  double bytes_per_host_s = 0;  // steady-state gossip bytes/s per host
  sim::Duration det_median = 0;
  sim::Duration det_p99 = 0;
  sim::Duration det_max = 0;
  sim::Duration bound = 0;
  std::uint64_t exclusions = 0;      // firmware peer-exclusions at survivors
  std::uint64_t local_pathfails = 0; // survivors' kPathFail(victim) events
  bool all_confirmed = false;
  /// Survivors whose local no-progress declaration fired before their SWIM
  /// confirm — the acceptance gate wants this to be zero everywhere.
  std::uint64_t pathfail_races_lost = 0;
  std::vector<std::string> violations;
};

CellResult run_cell(const CellSpec& spec) {
  membership::SwimRigConfig rc;
  rc.cluster.num_hosts = spec.hosts;
  rc.cluster.topo = spec.topo;
  rc.cluster.clos.k = spec.clos_k;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  // The chaos-campaign local detector calibration: the race SWIM has to win.
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  rc.swim.protocol_period = spec.period;
  rc.swim.probe_timeout = spec.period / 5;
  // Suspicion ages with the protocol clock, so the sweep shows the real
  // latency/overhead trade instead of a fixed floor.
  rc.swim.suspect_timeout = 3 * spec.period;
  rc.swim.k_indirect = spec.k_indirect;
  membership::SwimRig rig(rc);

  const std::size_t n = spec.hosts;
  const std::size_t victim = (n * 5) / 8;
  const net::HostId victim_id = rig.c.hosts[victim];

  // First local permanent-failure declaration against the victim, per host.
  std::vector<sim::Time> first_pathfail(n, sim::kNever);
  for (std::size_t i = 0; i < n; ++i) {
    firmware::ReliableFirmware& fw = rig.c.rel(i);
    sim::Time& slot = first_pathfail[i];
    sim::Scheduler& sched = rig.c.sched;
    fw.set_event_hook([&slot, &sched, victim_id](const firmware::FwEvent& ev) {
      if (ev.kind == firmware::FwEvent::Kind::kPathFail &&
          ev.peer == victim_id && slot == sim::kNever) {
        slot = sched.now();
      }
    });
  }

  // Warm up, then measure steady-state gossip overhead over 50 periods.
  rig.c.sched.run_for(30 * spec.period);
  std::uint64_t msgs0 = 0;
  std::uint64_t bytes0 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    msgs0 += rig.agent(i).stats().gossip_msgs_tx;
    bytes0 += rig.agent(i).stats().gossip_bytes_tx;
  }
  const int window_periods = 50;
  rig.c.sched.run_for(window_periods * spec.period);
  std::uint64_t msgs1 = 0;
  std::uint64_t bytes1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    msgs1 += rig.agent(i).stats().gossip_msgs_tx;
    bytes1 += rig.agent(i).stats().gossip_bytes_tx;
  }
  const double window_s =
      sim::to_seconds(window_periods * spec.period) * static_cast<double>(n);
  CellResult r;
  r.spec = spec;
  r.pkts_per_host_s = static_cast<double>(msgs1 - msgs0) / window_s;
  r.bytes_per_host_s = static_cast<double>(bytes1 - bytes0) / window_s;

  // Kill the victim and run to global confirmation (bounded).
  rig.c.fabric().cut_host(victim_id);
  const sim::Time t0 = rig.c.sched.now();
  r.bound = membership::SwimAgent::detection_bound(rc.swim, n);
  const sim::Time cap = t0 + r.bound + 20 * spec.period;
  while (!rig.all_confirmed(victim) && rig.c.sched.now() < cap &&
         rig.c.sched.step()) {
  }
  r.all_confirmed = rig.all_confirmed(victim);
  if (!r.all_confirmed) {
    r.violations.push_back("not every survivor confirmed the dead host");
  }

  std::vector<sim::Duration> lat;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == victim) continue;
    const sim::Time at = rig.agent(i).confirm_time(victim_id);
    if (at == sim::kNever) continue;
    lat.push_back(at - t0);
    r.exclusions += rig.c.rel(i).stats().peer_exclusions;
    r.local_pathfails += first_pathfail[i] != sim::kNever ? 1 : 0;
    if (first_pathfail[i] != sim::kNever && first_pathfail[i] < at) {
      ++r.pathfail_races_lost;
    }
  }
  std::sort(lat.begin(), lat.end());
  if (!lat.empty()) {
    r.det_median = lat[lat.size() / 2];
    r.det_p99 = lat[std::min(lat.size() - 1, (lat.size() * 99) / 100)];
    r.det_max = lat.back();
  }
  if (r.det_max > r.bound) {
    r.violations.push_back("detection latency exceeds the analytic bound");
  }
  if (r.pathfail_races_lost > 0) {
    r.violations.push_back(
        "a local no-progress declaration preceded the SWIM confirm");
  }
  return r;
}

bool write_json(const char* path, const std::vector<CellResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellResult& r = rows[i];
    std::fprintf(
        f,
        "  {\"fabric\": \"%s\", \"hosts\": %zu, \"period_us\": %.1f, "
        "\"k_indirect\": %zu, \"gossip_pkts_per_host_s\": %.1f, "
        "\"gossip_bytes_per_host_s\": %.1f, \"detect_median_us\": %.1f, "
        "\"detect_p99_us\": %.1f, \"detect_max_us\": %.1f, "
        "\"bound_us\": %.1f, \"peer_exclusions\": %llu, "
        "\"local_pathfails\": %llu, \"pathfail_races_lost\": %llu, "
        "\"all_confirmed\": %s, \"violations\": %zu}%s\n",
        r.spec.fabric, r.spec.hosts, sim::to_micros(r.spec.period),
        r.spec.k_indirect, r.pkts_per_host_s, r.bytes_per_host_s,
        sim::to_micros(r.det_median), sim::to_micros(r.det_p99),
        sim::to_micros(r.det_max), sim::to_micros(r.bound),
        static_cast<unsigned long long>(r.exclusions),
        static_cast<unsigned long long>(r.local_pathfails),
        static_cast<unsigned long long>(r.pathfail_races_lost),
        r.all_confirmed ? "true" : "false", r.violations.size(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned jobs = 1;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!bench::parse_jobs_flag(i, argc, argv, jobs)) {
      std::fprintf(stderr, "usage: %s [--quick] [--json <file>] [--jobs <N>]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<sim::Duration> periods = {
      sim::microseconds(500), sim::milliseconds(1), sim::milliseconds(2)};

  // Quick: the clos-64 period sweep at the production fan-out — the CI
  // determinism smoke. Full: every fabric x period x fan-out.
  std::vector<CellSpec> specs;
  if (quick) {
    for (const sim::Duration p : periods) {
      specs.push_back({"clos-64", harness::TopoKind::kClos, 64, 8, p, 3});
    }
  } else {
    struct Fabric {
      const char* name;
      harness::TopoKind topo;
      std::size_t hosts;
      std::size_t clos_k;
    };
    const std::vector<Fabric> fabrics = {
        {"fig2-16", harness::TopoKind::kFigure2, 16, 8},
        {"clos-64", harness::TopoKind::kClos, 64, 8},
        {"clos-128", harness::TopoKind::kClos, 128, 8},
    };
    for (const Fabric& f : fabrics) {
      for (const sim::Duration p : periods) {
        for (const std::size_t k : {std::size_t{1}, std::size_t{3}}) {
          specs.push_back({f.name, f.topo, f.hosts, f.clos_k, p, k});
        }
      }
    }
  }

  std::printf(
      "Membership sweep: SWIM gossip period x k-indirect x fabric, "
      "%zu cells (steady-state overhead + host-kill detection latency)\n\n",
      specs.size());

  std::vector<std::function<CellResult()>> cells;
  cells.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    cells.emplace_back([spec] { return run_cell(spec); });
  }
  const std::vector<CellResult> rows =
      bench::run_cells<CellResult>(jobs, cells);

  harness::Table t({"Fabric", "Hosts", "Period(us)", "K", "Gossip(pkt/s/h)",
                    "Gossip(B/s/h)", "DetMed(us)", "DetP99(us)", "DetMax(us)",
                    "Bound(us)", "Excl", "LocalPF", "OK"});
  for (const CellResult& r : rows) {
    t.add_row({r.spec.fabric, std::to_string(r.spec.hosts),
               harness::fmt(sim::to_micros(r.spec.period), 0),
               std::to_string(r.spec.k_indirect),
               harness::fmt(r.pkts_per_host_s, 1),
               harness::fmt(r.bytes_per_host_s, 1),
               harness::fmt(sim::to_micros(r.det_median), 1),
               harness::fmt(sim::to_micros(r.det_p99), 1),
               harness::fmt(sim::to_micros(r.det_max), 1),
               harness::fmt(sim::to_micros(r.bound), 1),
               std::to_string(r.exclusions), std::to_string(r.local_pathfails),
               r.violations.empty() ? "OK" : "FAIL"});
  }
  t.print();

  bool all_ok = true;
  for (const CellResult& r : rows) {
    for (const std::string& v : r.violations) {
      std::printf("MEMBERSHIP VIOLATION [%s period=%.0fus k=%zu]: %s\n",
                  r.spec.fabric, sim::to_micros(r.spec.period),
                  r.spec.k_indirect, v.c_str());
      all_ok = false;
    }
  }
  std::printf("\nmembership sweep: %s\n", all_ok ? "all cells OK" : "FAIL");

  if (json_path != nullptr) all_ok = write_json(json_path, rows) && all_ok;
  return all_ok ? 0 : 1;
}
