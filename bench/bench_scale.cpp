// Scale-out mapping sweep: Table 3's probe-count-vs-distance series extended
// from the 4-switch Figure-2 testbed to k-ary Clos fabrics: 64/128 hosts on
// the k=8 tree, 256 on the 320-switch k=16 tree (clos-1024 behind --full).
//
// The paper's claim under test: on-demand mapping cost is a function of the
// *distance* between the two nodes (the BFS stops at the destination's
// level), while the conventional full-map baseline pays for the *size of the
// network* on every remap. Each cell below measures warm re-mapping cost at
// increasing switch distance on one fabric, next to what a full BFS map of
// that same fabric would cost (FullMapper::probes_for_full_map). On the
// 128-host fat-tree the two quantities separate by orders of magnitude at
// distance 1.
//
// Cells are independent simulations (own scheduler / fabric / RNG streams),
// so `--jobs N` output is byte-identical to the serial run for every N.
// Self-checks at the bottom turn the claims into exit codes: probe counts
// must be monotone in distance on clean fabrics, the full-map cost must grow
// with network size, and deterministic multipath must pick the same
// equal-cost route on repeated remaps.
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/table.hpp"
#include "parallel_sweep.hpp"

namespace {

using namespace sanfault;
using harness::Cluster;
using harness::ClusterConfig;

struct CellSpec {
  const char* name;
  harness::TopoKind topo;
  std::size_t hosts;
  double loss;     // per-link transient loss probability
  bool multipath;  // deterministic equal-cost selection on
  std::size_t src;
  std::vector<std::size_t> targets;  // in increasing switch distance
  std::vector<int> dists;            // switch distance of each target
  /// Named Clos geometry (net::clos_named_shape); nullptr = default k=8.
  const char* shape = nullptr;
};

struct DistRow {
  int dist = 0;
  std::uint64_t host_probes = 0;
  std::uint64_t switch_probes = 0;
  double time_ms = 0.0;
};

struct CellResult {
  std::vector<DistRow> rows;
  std::uint64_t full_map_probes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t multipath_candidates = 0;
  bool multipath_stable = true;  // same route picked on repeated remaps
  bool all_mapped = true;
  /// Proactive failover (third point on the curve): a declared path failure
  /// answered by backup promotion, and the probes the re-map then cost.
  bool promote_served = false;
  std::uint64_t promote_probes = 0;
  bool promote_route_is_backup = false;
};

ClusterConfig cell_cluster_cfg(const CellSpec& spec) {
  ClusterConfig cfg;
  cfg.num_hosts = spec.hosts;
  cfg.topo = spec.topo;
  if (spec.shape != nullptr) {
    cfg.clos = *net::clos_named_shape(spec.shape);
    // The k=16 fabrics (320 switches, radix 16) make the Table-3 default
    // methodology impractical: a cross-pod BFS is dominated by
    // duplicate-detection probes, each a timeout. Like bench_chaos, the big
    // cells run the mapper in configured-deployment mode — the fabric
    // database answers duplicate verdicts and the probe timeout is sized to
    // the Clos RTT instead of the conservative Figure-2 default.
    cfg.ondemand.configured_identity = true;
    cfg.ondemand.probe_timeout = sim::microseconds(30);
  }
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.preload_routes = false;
  // Cross-pod BFS on the 128-host fat-tree explores most of the 80-switch
  // fabric including duplicate-detection probes; the default 4096 budget is
  // a Figure-2-sized guard, not a fat-tree-sized one. (The k=16 shapes need
  // the headroom even with duplicate probes resolved by the database.)
  cfg.ondemand.max_probes = std::size_t{1} << 17;
  if (spec.loss > 0.0) cfg.ondemand.probe_retries = 3;
  cfg.ondemand.multipath = spec.multipath;
  return cfg;
}

/// Run one route request to completion on a quiescent cluster.
std::optional<net::Route> map_now(Cluster& c, std::size_t src,
                                  std::size_t dst) {
  bool done = false;
  std::optional<net::Route> got;
  c.mapper(src).request_route(c.hosts[dst],
                              [&](std::optional<net::Route> r) {
                                got = std::move(r);
                                done = true;
                              });
  while (!done && c.sched.step()) {
  }
  return got;
}

CellResult run_cell(const CellSpec& spec) {
  CellResult res;
  Cluster c(cell_cluster_cfg(spec));
  if (spec.loss > 0.0) {
    c.fabric().set_link_fault_rates(std::nullopt, spec.loss, 0.0);
  }

  // Warm-up to the farthest target: discovers the mapper's own attach port,
  // the Table-3 "warm" precondition. Measured runs then invalidate both the
  // route table entry and the mapper's path-cache entry, so each row is a
  // genuine re-probe at that distance.
  res.all_mapped &= map_now(c, spec.src, spec.targets.back()).has_value();

  for (std::size_t i = 0; i < spec.targets.size(); ++i) {
    const std::size_t t = spec.targets[i];
    c.rel(spec.src).routes().invalidate(c.hosts[t]);
    c.mapper(spec.src).invalidate_path(c.hosts[t]);
    const auto route = map_now(c, spec.src, t);
    res.all_mapped &= route.has_value();
    const auto& st = c.mapper(spec.src).stats();
    res.rows.push_back(DistRow{spec.dists[i], st.last_host_probes,
                               st.last_switch_probes,
                               sim::to_millis(st.last_mapping_time)});
    if (spec.multipath && route.has_value()) {
      // Deterministic multipath: a second remap of the same pair must pick
      // the same equal-cost route (selection is seeded by (salt, src, dst),
      // not by probe arrival order).
      c.rel(spec.src).routes().invalidate(c.hosts[t]);
      c.mapper(spec.src).invalidate_path(c.hosts[t]);
      const auto again = map_now(c, spec.src, t);
      res.multipath_stable &= again.has_value() && *again == *route;
    }
  }

  // A repeat request without invalidation must be served from the LRU path
  // cache (zero probes); the hit shows up in mapper.path_cache_hits.
  res.all_mapped &= map_now(c, spec.src, spec.targets.front()).has_value();
  res.cache_hits = c.mapper(spec.src).stats().path_cache_hits;
  res.budget_exhausted = c.mapper(spec.src).stats().probe_budget_exhausted;
  res.multipath_candidates = c.mapper(spec.src).stats().multipath_candidates;

  // The conventional baseline on the *same* fabric: probes for one full
  // BFS map (every port of every switch), which any remap must pay.
  ClusterConfig fcfg = cell_cluster_cfg(spec);
  fcfg.mapper = harness::MapperKind::kFull;
  Cluster fc(fcfg);
  res.full_map_probes = fc.full_mapper(0).probes_for_full_map();

  // Proactive backup paths, the third point on the failover-cost curve: one
  // mapping pays the discovery probes and provisions a disjoint backup; a
  // declared path failure is then answered by promotion, and the re-map that
  // follows is a cache hit — zero probes on the critical path.
  ClusterConfig pcfg = cell_cluster_cfg(spec);
  pcfg.ondemand.proactive_backup = true;
  Cluster pc(pcfg);
  const std::size_t far = spec.targets.back();
  res.all_mapped &= map_now(pc, spec.src, far).has_value();
  net::Route backup_route;
  if (const auto* b = pc.mapper(spec.src).cached_backup(pc.hosts[far]);
      b != nullptr && b->has_value()) {
    backup_route = (*b)->route;
  }
  res.promote_served = pc.mapper(spec.src).on_path_failure(pc.hosts[far]);
  const auto promoted_route = map_now(pc, spec.src, far);
  const auto& pst = pc.mapper(spec.src).stats();
  res.promote_probes = pst.last_host_probes + pst.last_switch_probes;
  res.promote_route_is_backup =
      promoted_route.has_value() && *promoted_route == backup_route;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 1;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (sanfault::bench::parse_jobs_flag(i, argc, argv, jobs)) continue;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  // Figure-2 (16 hosts): host 4 sits on sw8_a; targets 0..3 round-robin over
  // sw8_a, sw16_a, sw16_b, sw8_b => 1..4 switches away. Clos (k=8, 32 edge
  // switches): from host 0, host 32 shares its edge (distance 1), host 1 is
  // same-pod (edge-agg-edge, 3), host 4 is cross-pod (edge-agg-core-agg-edge,
  // 5) — identical indices at 64 and 128 hosts since both round-robin over
  // the same 32 edges.
  const std::vector<std::size_t> fig2_targets = {0, 1, 2, 3};
  const std::vector<int> fig2_dists = {1, 2, 3, 4};
  const std::vector<std::size_t> clos_targets = {32, 1, 4};
  const std::vector<int> clos_dists = {1, 3, 5};
  // k=16 shapes round-robin hosts over 128 edges (8 per pod): host 128
  // shares edge 0 (distance 1), host 1 is same-pod (3), host 8 is the first
  // host of pod 1 (cross-spine, 5).
  const std::vector<std::size_t> clos16_targets = {128, 1, 8};
  const std::vector<int> clos16_dists = {1, 3, 5};

  std::vector<CellSpec> specs = {
      {"fig2-16", harness::TopoKind::kFigure2, 16, 0.0, false, 4,
       fig2_targets, fig2_dists},
      {"clos-64", harness::TopoKind::kClos, 64, 0.0, false, 0, clos_targets,
       clos_dists},
      {"clos-128", harness::TopoKind::kClos, 128, 0.0, false, 0, clos_targets,
       clos_dists},
      {"clos-256", harness::TopoKind::kClos, 256, 0.0, false, 0,
       clos16_targets, clos16_dists, "clos-256"},
      {"clos-64/mp", harness::TopoKind::kClos, 64, 0.0, true, 0, clos_targets,
       clos_dists},
  };
  std::size_t idx_c1024 = 0;  // 0 = not present
  if (full) {
    idx_c1024 = specs.size();
    specs.push_back({"clos-1024", harness::TopoKind::kClos, 1024, 0.0, false,
                     0, clos16_targets, clos16_dists, "clos-1024"});
    specs.push_back({"fig2-16/e1e-3", harness::TopoKind::kFigure2, 16, 1e-3,
                     false, 4, fig2_targets, fig2_dists});
    specs.push_back({"clos-64/e1e-3", harness::TopoKind::kClos, 64, 1e-3,
                     false, 0, clos_targets, clos_dists});
    specs.push_back({"clos-128/e1e-3", harness::TopoKind::kClos, 128, 1e-3,
                     false, 0, clos_targets, clos_dists});
  }

  std::vector<std::function<CellResult()>> cells;
  cells.reserve(specs.size());
  for (const auto& s : specs) {
    cells.push_back([&s] { return run_cell(s); });
  }
  const auto results = sanfault::bench::run_cells<CellResult>(jobs, cells);

  std::printf("=== Scale-out on-demand mapping: probe cost vs distance ===\n");
  std::printf("(Table 3 extended to 64/128-host k=8 fat-trees)\n\n");
  sanfault::harness::Table t({"Fabric", "Dist", "Host", "Switch", "Total",
                              "Time(ms)", "FullMap"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const auto& r : results[i].rows) {
      t.add_row({specs[i].name, std::to_string(r.dist),
                 std::to_string(r.host_probes),
                 std::to_string(r.switch_probes),
                 std::to_string(r.host_probes + r.switch_probes),
                 sanfault::harness::fmt(r.time_ms, 3),
                 std::to_string(results[i].full_map_probes)});
    }
  }
  t.print();
  std::printf(
      "\nOn-demand cost tracks the distance column; the FullMap column (one\n"
      "full BFS map of the same fabric) tracks network size.\n");

  std::printf(
      "\n=== Failover cost: probes on the critical path after a path "
      "failure ===\n\n");
  sanfault::harness::Table ft({"Fabric", "FullMap", "OnDemand@far",
                               "Proactive", "Promoted", "ServedBackup"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& res = results[i];
    const auto& farrow = res.rows.back();
    ft.add_row({specs[i].name, std::to_string(res.full_map_probes),
                std::to_string(farrow.host_probes + farrow.switch_probes),
                std::to_string(res.promote_probes),
                res.promote_served ? "yes" : "no",
                res.promote_route_is_backup ? "yes" : "no"});
  }
  ft.print();
  std::printf(
      "\nFull-map re-probes the fabric, on-demand re-probes to the failed\n"
      "destination's distance, proactive promotes the precomputed backup —\n"
      "zero probes between failure declaration and a usable route.\n");

  // --- self-checks (exit nonzero on violation) -----------------------------
  int rc = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "[ok]" : "[FAIL]", what);
    if (!ok) rc = 1;
  };

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& res = results[i];
    check(res.all_mapped,
          (std::string(specs[i].name) + ": every mapping succeeded").c_str());
    check(res.budget_exhausted == 0,
          (std::string(specs[i].name) + ": probe budget never exhausted")
              .c_str());
    check(res.cache_hits >= 1,
          (std::string(specs[i].name) + ": repeat request hit the path cache")
              .c_str());
    if (specs[i].loss == 0.0) {
      bool mono = true;
      for (std::size_t j = 1; j < res.rows.size(); ++j) {
        const auto total = [](const DistRow& r) {
          return r.host_probes + r.switch_probes;
        };
        mono &= total(res.rows[j]) >= total(res.rows[j - 1]);
      }
      check(mono, (std::string(specs[i].name) +
                   ": probe count monotone in distance")
                      .c_str());
    }
    check(res.promote_served,
          (std::string(specs[i].name) +
           ": declared path failure served by backup promotion")
              .c_str());
    check(res.promote_probes == 0,
          (std::string(specs[i].name) + ": promoted failover cost 0 probes")
              .c_str());
    check(res.promote_route_is_backup,
          (std::string(specs[i].name) +
           ": promoted route is the precomputed backup")
              .c_str());
    check(res.rows.back().host_probes + res.rows.back().switch_probes > 0,
          (std::string(specs[i].name) +
           ": on-demand re-probe pays probes the promotion avoids")
              .c_str());
    if (specs[i].multipath) {
      check(res.multipath_stable,
            (std::string(specs[i].name) +
             ": multipath picks a stable route across remaps")
                .c_str());
      check(res.multipath_candidates > 0,
            (std::string(specs[i].name) +
             ": multipath considered equal-cost candidates")
                .c_str());
    }
  }
  // Full-map cost grows with network size (clos-64 and clos-128 share the
  // same 80-switch fabric; host ports still make 128 >= 64).
  check(results[0].full_map_probes < results[1].full_map_probes,
        "full-map cost: fig2-16 < clos-64");
  check(results[1].full_map_probes <= results[2].full_map_probes,
        "full-map cost: clos-64 <= clos-128");
  check(results[2].full_map_probes < results[3].full_map_probes,
        "full-map cost: clos-128 < clos-256");
  // The headline separation: a distance-1 remap on the 128-host fabric costs
  // a small fraction of what a full map of that fabric costs.
  check(results[2].rows[0].host_probes + results[2].rows[0].switch_probes <
            results[2].full_map_probes / 4,
        "clos-128 distance-1 remap ≪ full-map cost");
  // Same claim one size up: the 320-switch k=16 fabric widens the gap.
  check(results[3].rows[0].host_probes + results[3].rows[0].switch_probes <
            results[3].full_map_probes / 4,
        "clos-256 distance-1 remap ≪ full-map cost");
  if (idx_c1024 != 0) {
    check(results[3].full_map_probes < results[idx_c1024].full_map_probes,
          "full-map cost: clos-256 < clos-1024");
    check(results[idx_c1024].rows[0].host_probes +
                  results[idx_c1024].rows[0].switch_probes <
              results[idx_c1024].full_map_probes / 4,
          "clos-1024 distance-1 remap ≪ full-map cost");
  }
  return rc;
}
