// Tests for the VMMC layer: export/import protection, direct deposit,
// segmentation, notifications, and behavior over the reliable firmware with
// injected faults. Also validates the micro-benchmark harness against the
// paper's §6.1.1 calibration numbers.
#include <gtest/gtest.h>

#include <numeric>

#include "harness/cluster.hpp"
#include "harness/microbench.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

struct VmmcRig {
  Cluster c;
  vmmc::Endpoint a;
  vmmc::Endpoint b;

  explicit VmmcRig(ClusterConfig cfg = make_default())
      : c(cfg), a(c.sched, c.nic(0)), b(c.sched, c.nic(1)) {}

  static ClusterConfig make_default() {
    ClusterConfig cfg;
    cfg.num_hosts = 2;
    cfg.fw = FirmwareKind::kReliable;
    return cfg;
  }

  /// Run the scheduler until `flag` is set (firmware timers never drain).
  void drive(const bool& flag, sim::Duration cap = sim::seconds(300)) {
    const sim::Time deadline = c.sched.now() + cap;
    while (!flag && c.sched.now() < deadline && c.sched.step()) {
    }
    ASSERT_TRUE(flag) << "drive() hit the safety cap";
  }
};

TEST(Vmmc, ImportGrantReportsSize) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(8192);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    EXPECT_TRUE(imp.has_value());
    EXPECT_EQ(imp->size, 8192u);
    EXPECT_EQ(imp->remote, r.c.hosts[1]);
    done = true;
  }(r, done);
  r.drive(done);
  EXPECT_EQ(r.a.stats().imports_ok, 1u);
}

TEST(Vmmc, ImportOfUnknownExportDenied) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto imp = co_await r.a.import(r.c.hosts[1], vmmc::ExportId{999});
    EXPECT_FALSE(imp.has_value());
    done = true;
  }(r, done);
  r.drive(done);
  EXPECT_EQ(r.a.stats().imports_denied, 1u);
}

TEST(Vmmc, DepositWritesExactBytesAtOffset) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(256);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    EXPECT_TRUE(imp.has_value());
    std::vector<std::uint8_t> data(32);
    std::iota(data.begin(), data.end(), std::uint8_t{1});
    co_await r.a.send(*imp, 100, data, /*tag=*/42);
    auto ev = co_await r.b.notifications(exp).pop(r.c.sched);
    EXPECT_EQ(ev.offset, 100u);
    EXPECT_EQ(ev.length, 32u);
    EXPECT_EQ(ev.tag, 42u);
    EXPECT_EQ(ev.src, r.c.hosts[0]);
    auto buf = r.b.buffer(exp);
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(buf[100 + i], i + 1);
    }
    EXPECT_EQ(buf[99], 0);   // bytes around the deposit untouched
    EXPECT_EQ(buf[132], 0);
    done = true;
  }(r, done);
  r.drive(done);
}

TEST(Vmmc, LargeMessageSegmentsAt4K) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(64 * 1024);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    std::vector<std::uint8_t> data(20000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 7);
    }
    co_await r.a.send(*imp, 0, data);
    auto ev = co_await r.b.notifications(exp).pop(r.c.sched);
    EXPECT_EQ(ev.length, 20000u);
    EXPECT_EQ(ev.offset, 0u);
    auto buf = r.b.buffer(exp);
    const std::vector<std::uint8_t> got(buf.begin(), buf.begin() + data.size());
    EXPECT_EQ(got, data);
    done = true;
  }(r, done);
  r.drive(done);
  // 20000 bytes => 5 segments (4x4096 + 3616); the import handshake does not
  // count as data segments.
  EXPECT_EQ(r.a.stats().segments_tx, 5u);
}

TEST(Vmmc, OutOfBoundsDepositRejected) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(64);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    // Lie about the offset: deposit would overflow the export.
    co_await r.a.send(*imp, 60, std::vector<std::uint8_t>(16, 0xFF));
    co_await sim::DelayFor{r.c.sched, sim::milliseconds(1)};
    done = true;
  }(r, done);
  r.drive(done);
  EXPECT_EQ(r.b.stats().rejected_rx, 1u);
  EXPECT_EQ(r.b.stats().deposits_rx, 0u);
}

TEST(Vmmc, UnknownExportDepositRejected) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    vmmc::Endpoint::Import forged{r.c.hosts[1], vmmc::ExportId{777}, 1024};
    co_await r.a.send(forged, 0, std::vector<std::uint8_t>(16, 1));
    co_await sim::DelayFor{r.c.sched, sim::milliseconds(1)};
    done = true;
  }(r, done);
  r.drive(done);
  EXPECT_EQ(r.b.stats().rejected_rx, 1u);
}

TEST(Vmmc, ZeroByteMessageNotifies) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(16);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    co_await r.a.send(*imp, 0, {}, /*tag=*/5);
    auto ev = co_await r.b.notifications(exp).pop(r.c.sched);
    EXPECT_EQ(ev.length, 0u);
    EXPECT_EQ(ev.tag, 5u);
    done = true;
  }(r, done);
  r.drive(done);
}

TEST(Vmmc, ManyMessagesInterleavedTagsOrdered) {
  VmmcRig r;
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(4096);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    for (std::uint64_t i = 0; i < 40; ++i) {
      co_await r.a.send(*imp, 0, std::vector<std::uint8_t>(64, 1), i);
    }
    for (std::uint64_t i = 0; i < 40; ++i) {
      auto ev = co_await r.b.notifications(exp).pop(r.c.sched);
      EXPECT_EQ(ev.tag, i);  // VMMC preserves point-to-point order
    }
    done = true;
  }(r, done);
  r.drive(done);
}

TEST(Vmmc, SegmentedTransferSurvivesInjectedDrops) {
  auto cfg = VmmcRig::make_default();
  cfg.rel.drop_interval = 4;  // brutal
  VmmcRig r(cfg);
  bool done = false;
  [](VmmcRig& r, bool& done) -> sim::Process {
    auto exp = r.b.export_buffer(64 * 1024);
    auto imp = co_await r.a.import(r.c.hosts[1], exp);
    std::vector<std::uint8_t> data(50000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
    }
    co_await r.a.send(*imp, 0, data);
    (void)co_await r.b.notifications(exp).pop(r.c.sched);
    auto buf = r.b.buffer(exp);
    const std::vector<std::uint8_t> got(buf.begin(), buf.begin() + data.size());
    EXPECT_EQ(got, data);
    done = true;
  }(r, done);
  r.drive(done);
  EXPECT_GT(r.c.rel(0).stats().injected_drops, 0u);
}

// --- micro-benchmark calibration against §6.1.1 ----------------------------

TEST(Microbench, LatencyWithFtNear10us) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  Cluster c(cfg);
  auto r = harness::run_latency(c, 4, 30);
  EXPECT_GT(r.one_way_us(), 8.5);
  EXPECT_LT(r.one_way_us(), 11.5);
}

TEST(Microbench, LatencyWithoutFtNear8us) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kRaw;
  Cluster c(cfg);
  auto r = harness::run_latency(c, 4, 30);
  EXPECT_GT(r.one_way_us(), 7.0);
  EXPECT_LT(r.one_way_us(), 9.0);
}

TEST(Microbench, FtLatencyOverheadUnder2p1usUpTo64B) {
  for (std::size_t bytes : {4u, 8u, 16u, 32u, 64u}) {
    ClusterConfig raw_cfg;
    raw_cfg.num_hosts = 2;
    raw_cfg.fw = FirmwareKind::kRaw;
    Cluster craw(raw_cfg);
    auto raw = harness::run_latency(craw, bytes, 20);

    ClusterConfig ft_cfg;
    ft_cfg.num_hosts = 2;
    ft_cfg.fw = FirmwareKind::kReliable;
    Cluster cft(ft_cfg);
    auto ft = harness::run_latency(cft, bytes, 20);

    EXPECT_LE(ft.one_way_us() - raw.one_way_us(), 2.1)
        << "message size " << bytes;
  }
}

TEST(Microbench, UnidirectionalBandwidthNear120MBs) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  Cluster c(cfg);
  auto r = harness::run_unidirectional_bw(c, 64 * 1024, 40);
  EXPECT_GT(r.mbytes_per_sec(), 100.0);
  EXPECT_LT(r.mbytes_per_sec(), 135.0);
}

TEST(Microbench, FtBandwidthOverheadUnder4PercentAbove4K) {
  for (std::size_t bytes : {4096u, 16384u, 65536u}) {
    ClusterConfig raw_cfg;
    raw_cfg.num_hosts = 2;
    raw_cfg.fw = FirmwareKind::kRaw;
    Cluster craw(raw_cfg);
    auto raw = harness::run_unidirectional_bw(craw, bytes, 30);

    ClusterConfig ft_cfg;
    ft_cfg.num_hosts = 2;
    ft_cfg.fw = FirmwareKind::kReliable;
    Cluster cft(ft_cfg);
    auto ft = harness::run_unidirectional_bw(cft, bytes, 30);

    const double loss =
        (raw.mbytes_per_sec() - ft.mbytes_per_sec()) / raw.mbytes_per_sec();
    EXPECT_LT(loss, 0.04) << "message size " << bytes;
  }
}

TEST(Microbench, PingPongBandwidthRampsWithMessageSize) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  double prev = 0;
  for (std::size_t bytes : {256u, 4096u, 65536u}) {
    Cluster c(cfg);
    auto r = harness::run_pingpong_bw(c, bytes, 20);
    EXPECT_GT(r.mbytes_per_sec(), prev);
    prev = r.mbytes_per_sec();
  }
  EXPECT_GT(prev, 80.0);  // large ping-pong approaches the PCI plateau
}

}  // namespace
}  // namespace sanfault
