// Unit tests for sim::Process coroutines and the awaitable primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::sim {
namespace {

Process sleeper(Scheduler& s, Duration d, Time& woke) {
  co_await DelayFor{s, d};
  woke = s.now();
}

TEST(Coroutine, DelayResumesAtRightTime) {
  Scheduler s;
  Time woke = kNever;
  sleeper(s, microseconds(5), woke);
  s.run();
  EXPECT_EQ(woke, microseconds(5));
}

Process chained_sleeper(Scheduler& s, std::vector<Time>& marks) {
  marks.push_back(s.now());
  co_await DelayFor{s, 10};
  marks.push_back(s.now());
  co_await DelayFor{s, 20};
  marks.push_back(s.now());
}

TEST(Coroutine, SequentialDelaysAccumulate) {
  Scheduler s;
  std::vector<Time> marks;
  chained_sleeper(s, marks);
  s.run();
  EXPECT_EQ(marks, (std::vector<Time>{0, 10, 30}));
}

TEST(Coroutine, ZeroDelayStillYields) {
  Scheduler s;
  std::vector<int> order;
  [](Scheduler& sc, std::vector<int>& o) -> Process {
    o.push_back(1);
    co_await DelayFor{sc, 0};
    o.push_back(3);
  }(s, order);
  order.push_back(2);  // runs before the coroutine's post-yield half
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

Process wait_on(Scheduler& s, Trigger& t, Time& woke) {
  co_await t.wait(s);
  woke = s.now();
}

TEST(Trigger, WakesAllWaiters) {
  Scheduler s;
  Trigger t;
  Time w1 = kNever;
  Time w2 = kNever;
  wait_on(s, t, w1);
  wait_on(s, t, w2);
  s.at(100, [&] { t.fire(s); });
  s.run();
  EXPECT_EQ(w1, 100u);
  EXPECT_EQ(w2, 100u);
}

TEST(Trigger, LatchedFireWakesLateWaiters) {
  Scheduler s;
  Trigger t;
  Time woke = kNever;
  s.at(10, [&] { t.fire(s); });
  s.at(50, [&] { wait_on(s, t, woke); });
  s.run();
  EXPECT_EQ(woke, 50u);  // already fired: no extra wait
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Scheduler s;
  Trigger t;
  Time woke = kNever;
  wait_on(s, t, woke);
  s.at(10, [&] { t.fire(s); });
  s.at(20, [&] { t.fire(s); });
  s.run();
  EXPECT_EQ(woke, 10u);
}

TEST(Trigger, ResetReArms) {
  Scheduler s;
  Trigger t;
  Time w1 = kNever;
  Time w2 = kNever;
  wait_on(s, t, w1);
  s.at(10, [&] { t.fire(s); });
  s.at(20, [&] {
    t.reset();
    wait_on(s, t, w2);
  });
  s.at(30, [&] { t.fire(s); });
  s.run();
  EXPECT_EQ(w1, 10u);
  EXPECT_EQ(w2, 30u);
}

Process worker(Scheduler& s, WaitGroup& wg, Duration d) {
  co_await DelayFor{s, d};
  wg.done(s);
}

Process joiner(Scheduler& s, WaitGroup& wg, Time& joined) {
  co_await wg.wait(s);
  joined = s.now();
}

TEST(WaitGroup, JoinsSlowestWorker) {
  Scheduler s;
  WaitGroup wg;
  wg.add(3);
  worker(s, wg, 10);
  worker(s, wg, 50);
  worker(s, wg, 30);
  Time joined = kNever;
  joiner(s, wg, joined);
  s.run();
  EXPECT_EQ(joined, 50u);
}

TEST(WaitGroup, EmptyGroupJoinsImmediately) {
  Scheduler s;
  WaitGroup wg;
  Time joined = kNever;
  joiner(s, wg, joined);
  s.run();
  EXPECT_EQ(joined, 0u);
}

TEST(WaitGroup, ReusableAfterDrain) {
  Scheduler s;
  WaitGroup wg;
  Time j1 = kNever;
  Time j2 = kNever;
  wg.add(1);
  worker(s, wg, 10);
  joiner(s, wg, j1);
  s.at(20, [&] {
    wg.add(1);
    worker(s, wg, 10);
    joiner(s, wg, j2);
  });
  s.run();
  EXPECT_EQ(j1, 10u);
  EXPECT_EQ(j2, 30u);
}

Process acquirer(Scheduler& s, Semaphore& sem, Duration hold,
                 std::vector<Time>& got) {
  co_await sem.acquire(s);
  got.push_back(s.now());
  co_await DelayFor{s, hold};
  sem.release(s);
}

TEST(Semaphore, SerializesWhenCountIsOne) {
  Scheduler s;
  Semaphore sem(1);
  std::vector<Time> got;
  acquirer(s, sem, 10, got);
  acquirer(s, sem, 10, got);
  acquirer(s, sem, 10, got);
  s.run();
  EXPECT_EQ(got, (std::vector<Time>{0, 10, 20}));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, AllowsConcurrencyUpToCount) {
  Scheduler s;
  Semaphore sem(2);
  std::vector<Time> got;
  acquirer(s, sem, 10, got);
  acquirer(s, sem, 10, got);
  acquirer(s, sem, 10, got);
  s.run();
  EXPECT_EQ(got, (std::vector<Time>{0, 0, 10}));
}

TEST(Semaphore, FifoWakeupOrder) {
  Scheduler s;
  Semaphore sem(0);
  std::vector<Time> got;
  acquirer(s, sem, 5, got);
  acquirer(s, sem, 5, got);
  EXPECT_EQ(sem.waiting(), 2u);
  s.at(100, [&] { sem.release(s); });
  s.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 100u);
  EXPECT_EQ(got[1], 105u);
}

Process consumer(Scheduler& s, Channel<int>& c, std::vector<std::pair<Time, int>>& seen,
                 int n) {
  for (int i = 0; i < n; ++i) {
    int v = co_await c.pop(s);
    seen.emplace_back(s.now(), v);
  }
}

TEST(Channel, DeliversInFifoOrder) {
  Scheduler s;
  Channel<int> c;
  std::vector<std::pair<Time, int>> seen;
  consumer(s, c, seen, 3);
  s.at(10, [&] {
    c.push(s, 1);
    c.push(s, 2);
  });
  s.at(20, [&] { c.push(s, 3); });
  s.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<Time, int>{10, 1}));
  EXPECT_EQ(seen[1], (std::pair<Time, int>{10, 2}));
  EXPECT_EQ(seen[2], (std::pair<Time, int>{20, 3}));
}

TEST(Channel, PopBeforePushSuspends) {
  Scheduler s;
  Channel<std::string> c;
  std::vector<std::pair<Time, std::string>> seen;
  [](Scheduler& sc, Channel<std::string>& ch,
     std::vector<std::pair<Time, std::string>>& out) -> Process {
    std::string v = co_await ch.pop(sc);
    out.emplace_back(sc.now(), v);
  }(s, c, seen);
  s.at(42, [&] { c.push(s, "hello"); });
  s.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 42u);
  EXPECT_EQ(seen[0].second, "hello");
}

TEST(Channel, MultipleConsumersEachGetOneValue) {
  Scheduler s;
  Channel<int> c;
  std::vector<std::pair<Time, int>> seen;
  consumer(s, c, seen, 1);
  consumer(s, c, seen, 1);
  s.at(10, [&] {
    c.push(s, 7);
    c.push(s, 8);
  });
  s.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, 7);
  EXPECT_EQ(seen[1].second, 8);
}

TEST(Channel, BufferedValuesSurviveUntilPopped) {
  Scheduler s;
  Channel<int> c;
  s.at(0, [&] {
    c.push(s, 1);
    c.push(s, 2);
  });
  s.run();
  EXPECT_EQ(c.size(), 2u);
  std::vector<std::pair<Time, int>> seen;
  consumer(s, c, seen, 2);
  s.run();
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(c.empty());
}

}  // namespace
}  // namespace sanfault::sim
