// Tests for the on-demand mapper (§4.2) and the full-map baseline:
// cold-start discovery, permanent-failure recovery with generation restart,
// dynamic reconfiguration (node moves), unreachable nodes, and probe
// accounting.
#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.hpp"
#include "sim/process.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;
using harness::MapperKind;
using harness::TopoKind;

struct Drainer {
  std::vector<harness::HostMsg> msgs;
};

sim::Process drain(Cluster& c, std::size_t host, Drainer& d) {
  for (;;) {
    harness::HostMsg m = co_await c.inbox(host).pop(c.sched);
    d.msgs.push_back(std::move(m));
  }
}

ClusterConfig ondemand_cfg(std::size_t hosts, TopoKind topo) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.topo = topo;
  cfg.fw = FirmwareKind::kReliable;
  cfg.mapper = MapperKind::kOnDemand;
  cfg.preload_routes = false;  // cold start: no routes anywhere
  cfg.rel.fail_threshold = sim::milliseconds(20);
  return cfg;
}

TEST(OnDemandMapper, ColdStartDiscoversRouteAndDelivers) {
  Cluster c(ondemand_cfg(2, TopoKind::kSingleSwitch));
  Drainer d;
  drain(c, 1, d);
  c.send(0, 1, std::vector<std::uint8_t>(32, 7));
  c.sched.run_until(sim::seconds(2));
  ASSERT_EQ(d.msgs.size(), 1u);
  EXPECT_EQ(c.mapper(0).stats().mappings_succeeded, 1u);
  EXPECT_GT(c.mapper(0).stats().host_probes_tx, 0u);
  // Route cached in the table now.
  EXPECT_TRUE(c.rel(0).routes().contains(c.hosts[1]));
}

TEST(OnDemandMapper, DiscoveredRouteMatchesTopologyTruth) {
  Cluster c(ondemand_cfg(2, TopoKind::kSingleSwitch));
  Drainer d;
  drain(c, 1, d);
  c.send(0, 1, std::vector<std::uint8_t>(8, 1));
  c.sched.run_until(sim::seconds(2));
  auto r = c.rel(0).routes().get(c.hosts[1]);
  ASSERT_TRUE(r.has_value());
  auto end = c.topo.trace_route(c.hosts[0], *r);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, net::Device::host(c.hosts[1]));
}

TEST(OnDemandMapper, MapsAcrossFigure2AtAllDistances) {
  Cluster c(ondemand_cfg(8, TopoKind::kFigure2));
  // hosts 0..3 sit on sw8_a, sw16_a, sw16_b, sw8_b respectively: distances
  // of 1..4 switches from host 4 (also on sw8_a).
  Drainer drains[4];
  for (int t = 0; t < 4; ++t) drain(c, static_cast<std::size_t>(t), drains[t]);
  for (int t = 0; t < 4; ++t) {
    c.send(4, static_cast<std::size_t>(t), std::vector<std::uint8_t>(16, 1));
    c.sched.run_until(c.sched.now() + sim::seconds(5));
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(drains[t].msgs.size(), 1u) << "target " << t;
  }
  EXPECT_EQ(c.mapper(4).stats().mappings_failed, 0u);
}

TEST(OnDemandMapper, SameSwitchMappingNeedsNoSwitchProbesWhenWarm) {
  Cluster c(ondemand_cfg(8, TopoKind::kFigure2));
  Drainer d0, d4;
  drain(c, 0, d0);
  drain(c, 4, d4);
  // Warm-up: host 0 maps to host 4 (same switch) — this discovers the attach
  // port with bounce probes.
  c.send(0, 4, std::vector<std::uint8_t>(8, 1));
  c.sched.run_until(sim::seconds(5));
  ASSERT_EQ(d4.msgs.size(), 1u);
  // Invalidate and re-map while warm: attach port is cached, destination is
  // re-probed => host probes only (Table 3, row 1: 0 switch probes).
  c.rel(0).routes().invalidate(c.hosts[4]);
  c.mapper(0).invalidate_path(c.hosts[4]);  // drop the LRU path-cache entry
  const auto sw_before = c.mapper(0).stats().switch_probes_tx;
  c.mapper(0).request_route(c.hosts[4], [](std::optional<net::Route> r) {
    EXPECT_TRUE(r.has_value());
  });
  c.sched.run_until(c.sched.now() + sim::seconds(5));
  EXPECT_EQ(c.mapper(0).stats().switch_probes_tx, sw_before);
  EXPECT_GT(c.mapper(0).stats().last_host_probes, 0u);
}

TEST(OnDemandMapper, ProbeCountsGrowWithDistance) {
  // Map from host 4 (sw8_a) to targets at increasing switch distance and
  // check the Table-3 shape: probes grow roughly linearly with depth.
  std::vector<std::uint64_t> probes;
  for (std::size_t target = 0; target < 4; ++target) {
    Cluster c(ondemand_cfg(8, TopoKind::kFigure2));
    Drainer d;
    drain(c, target, d);
    c.send(4, target, std::vector<std::uint8_t>(8, 1));
    c.sched.run_until(sim::seconds(30));
    ASSERT_EQ(d.msgs.size(), 1u) << "target " << target;
    probes.push_back(c.mapper(4).stats().host_probes_tx +
                     c.mapper(4).stats().switch_probes_tx);
  }
  // Monotone growth with distance (hosts 0,1,2,3 are 1,2,3,4 switches away).
  EXPECT_LT(probes[0], probes[1]);
  EXPECT_LT(probes[1], probes[2]);
  EXPECT_LT(probes[2], probes[3]);
}

TEST(OnDemandMapper, PermanentTrunkFailureRecoversViaRedundantLink) {
  auto cfg = ondemand_cfg(8, TopoKind::kFigure2);
  cfg.preload_routes = true;  // steady state first
  Cluster c(cfg);
  Drainer d;
  drain(c, 3, d);

  // Steady-state traffic host0 (sw8_a) -> host3 (sw8_b).
  c.send(0, 3, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::seconds(1));
  ASSERT_EQ(d.msgs.size(), 1u);

  // Kill the first trunk on every segment the preloaded (BFS-shortest) route
  // uses; the redundant second trunks remain.
  c.topo.set_link_up(net::LinkId{0}, false);
  c.topo.set_link_up(net::LinkId{2}, false);
  c.topo.set_link_up(net::LinkId{4}, false);

  const auto gen_before = c.rel(0).tx_channel(c.hosts[3])->generation;
  for (int i = 0; i < 5; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(100 + i);
    c.send(0, 3, std::vector<std::uint8_t>(16, 2), u);
  }
  c.sched.run_until(sim::seconds(60));

  // All five messages delivered exactly once, in order, on the new route.
  ASSERT_EQ(d.msgs.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(d.msgs[static_cast<std::size_t>(i + 1)].user.w0,
              static_cast<std::uint64_t>(100 + i));
  }
  EXPECT_GE(c.rel(0).stats().path_failures, 1u);
  EXPECT_GE(c.mapper(0).stats().mappings_succeeded, 1u);
  // New generation started (§4.2 sequence-number reset).
  EXPECT_GT(c.rel(0).tx_channel(c.hosts[3])->generation, gen_before);
  // Buffers all recovered.
  EXPECT_EQ(c.nic(0).send_pool().free_count(), c.nic(0).send_pool().capacity());
}

TEST(OnDemandMapper, NodeDeathEndsInUnreachableAndDropsPending) {
  auto cfg = ondemand_cfg(4, TopoKind::kSingleSwitch);
  cfg.preload_routes = true;
  cfg.ondemand.max_ports = 8;  // keep the fruitless search short
  Cluster c(cfg);
  // Unplug host 1 completely.
  auto att = c.topo.peer_of({net::Device::host(c.hosts[1]), 0});
  ASSERT_TRUE(att.has_value());
  c.topo.set_link_up(att->link, false);

  for (int i = 0; i < 3; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(16, 1));
  }
  c.sched.run_until(sim::seconds(120));
  EXPECT_GE(c.mapper(0).stats().mappings_failed, 1u);
  const auto* tx = c.rel(0).tx_channel(c.hosts[1]);
  ASSERT_NE(tx, nullptr);
  EXPECT_TRUE(tx->unreachable);
  EXPECT_EQ(c.rel(0).stats().unreachable_drops, 3u);
  EXPECT_EQ(c.nic(0).send_pool().free_count(), c.nic(0).send_pool().capacity());
}

TEST(OnDemandMapper, DynamicReconfigurationNodeMovesToNewSwitch) {
  // The paper's Table-3 scenario: a node is re-connected at a different
  // location and the first packet exchange triggers re-mapping.
  auto cfg = ondemand_cfg(8, TopoKind::kFigure2);
  cfg.preload_routes = true;
  Cluster c(cfg);
  Drainer d;
  drain(c, 3, d);

  c.send(0, 3, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::seconds(1));
  ASSERT_EQ(d.msgs.size(), 1u);

  // Move host 3 from sw8_b to a free port on sw16_a.
  auto att = c.topo.peer_of({net::Device::host(c.hosts[3]), 0});
  ASSERT_TRUE(att.has_value());
  c.topo.disconnect(att->link);
  c.topo.connect({net::Device::host(c.hosts[3]), 0},
                 {net::Device::sw(c.switches[1]), 12});

  // Note: host 3's own mapper must rediscover its attach port; flush its
  // cached level-0 knowledge as a real NIC reset on re-cabling would.
  c.mapper(3).flush_cache();

  c.send(0, 3, std::vector<std::uint8_t>(16, 2));
  c.sched.run_until(sim::seconds(60));
  ASSERT_EQ(d.msgs.size(), 2u);
  EXPECT_GE(c.rel(0).stats().path_failures, 1u);
  EXPECT_GE(c.mapper(0).stats().mappings_succeeded, 1u);
}

TEST(OnDemandMapper, ConcurrentRequestsForSameDestinationMerge) {
  Cluster c(ondemand_cfg(2, TopoKind::kSingleSwitch));
  int called = 0;
  for (int i = 0; i < 3; ++i) {
    c.mapper(0).request_route(c.hosts[1],
                              [&called](std::optional<net::Route> r) {
                                EXPECT_TRUE(r.has_value());
                                ++called;
                              });
  }
  c.sched.run_until(sim::seconds(5));
  EXPECT_EQ(called, 3);
  EXPECT_EQ(c.mapper(0).stats().mappings_started, 1u);
}

TEST(OnDemandMapper, MappingSurvivesLossyFabric) {
  auto cfg = ondemand_cfg(2, TopoKind::kSingleSwitch);
  cfg.ondemand.probe_retries = 3;
  Cluster c(cfg);
  c.fabric().link_faults(net::LinkId{0}).loss_prob = 0.2;
  c.fabric().link_faults(net::LinkId{1}).loss_prob = 0.2;
  Drainer d;
  drain(c, 1, d);
  c.send(0, 1, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::seconds(30));
  EXPECT_EQ(d.msgs.size(), 1u);
  EXPECT_EQ(c.mapper(0).stats().mappings_succeeded, 1u);
}

/// Drive one route request to completion on a quiescent cluster.
std::optional<net::Route> map_now(Cluster& c, std::size_t src,
                                  std::size_t dst) {
  bool done = false;
  std::optional<net::Route> got;
  c.mapper(src).request_route(c.hosts[dst],
                              [&](std::optional<net::Route> r) {
                                got = std::move(r);
                                done = true;
                              });
  while (!done && c.sched.step()) {
  }
  return got;
}

TEST(OnDemandMapper, ProbeBudgetExhaustionFailsTheMapping) {
  auto cfg = ondemand_cfg(8, TopoKind::kFigure2);
  cfg.ondemand.max_probes = 10;  // far below a distance-4 discovery
  Cluster c(cfg);
  const auto r = map_now(c, 4, 3);  // host 3 is 4 switches away
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(c.mapper(4).stats().probe_budget_exhausted, 1u);
  EXPECT_EQ(c.mapper(4).stats().mappings_failed, 1u);
  // stats count wire transmissions (timed-out probes retransmit once), so
  // the budget of 10 logical probes bounds them at 10 * (1 + retries).
  EXPECT_LE(c.mapper(4).stats().host_probes_tx +
                c.mapper(4).stats().switch_probes_tx,
            10u * 2);
  // The budget is per mapping: a nearby destination still fits inside it.
  const auto near = map_now(c, 4, 0);  // same switch
  EXPECT_TRUE(near.has_value());
}

TEST(OnDemandMapper, MultipathSelectionIsDeterministic) {
  // Two independent clusters with the same seed must discover the same
  // equal-cost route, and a remap inside one cluster must re-pick it: the
  // choice is a function of (salt, src, dst), not probe arrival order.
  auto cfg = ondemand_cfg(64, TopoKind::kClos);
  cfg.ondemand.multipath = true;
  cfg.ondemand.max_probes = std::size_t{1} << 17;
  std::optional<net::Route> first;
  for (int run = 0; run < 2; ++run) {
    Cluster c(cfg);
    const auto r = map_now(c, 0, 1);  // same pod: agg-layer choice exists
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(c.mapper(0).stats().multipath_candidates, 0u);
    if (!first) {
      first = r;
      // Same-cluster remap re-picks the identical route.
      c.rel(0).routes().invalidate(c.hosts[1]);
      c.mapper(0).invalidate_path(c.hosts[1]);
      const auto again = map_now(c, 0, 1);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->ports, r->ports);
    } else {
      EXPECT_EQ(r->ports, first->ports);
    }
  }
}

TEST(OnDemandMapper, MultipathSaltSteersEqualCostChoice) {
  // Different salts may pick different members of the equal-cost set, but
  // every pick must be a valid shortest route to the destination.
  std::vector<net::Route> picks;
  for (std::uint64_t salt : {0x5ca1ab1eull, 0x0ddba11ull, 0xf00dull}) {
    auto cfg = ondemand_cfg(64, TopoKind::kClos);
    cfg.ondemand.multipath = true;
    cfg.ondemand.multipath_salt = salt;
    cfg.ondemand.max_probes = std::size_t{1} << 17;
    Cluster c(cfg);
    const auto r = map_now(c, 0, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->hops(), 3u);  // same-pod shortest distance
    auto end = c.topo.trace_route(c.hosts[0], *r);
    ASSERT_TRUE(end.has_value());
    EXPECT_EQ(*end, net::Device::host(c.hosts[1]));
    picks.push_back(*r);
  }
}

TEST(OnDemandMapper, PathCacheHitsInvalidationAndLruEviction) {
  auto cfg = ondemand_cfg(8, TopoKind::kFigure2);
  cfg.ondemand.path_cache_capacity = 2;
  cfg.ondemand.cache_discovered_hosts = false;  // only requested dsts cached
  Cluster c(cfg);

  ASSERT_TRUE(map_now(c, 0, 1).has_value());
  ASSERT_TRUE(map_now(c, 0, 2).has_value());  // cache = {2, 1}
  const auto& st = c.mapper(0).stats();
  EXPECT_EQ(st.path_cache_evictions, 0u);
  ASSERT_TRUE(map_now(c, 0, 3).has_value());  // evicts 1 => {3, 2}
  EXPECT_EQ(st.path_cache_evictions, 1u);

  // Cached destinations are served without probing.
  const auto probes_before = st.host_probes_tx + st.switch_probes_tx;
  ASSERT_TRUE(map_now(c, 0, 2).has_value());
  EXPECT_EQ(st.path_cache_hits, 1u);
  EXPECT_EQ(st.host_probes_tx + st.switch_probes_tx, probes_before);

  // The evicted destination must re-probe.
  ASSERT_TRUE(map_now(c, 0, 1).has_value());
  EXPECT_GT(st.host_probes_tx + st.switch_probes_tx, probes_before);

  // Invalidation drops exactly one entry and counts it.
  c.mapper(0).invalidate_path(c.hosts[1]);
  EXPECT_EQ(st.path_cache_invalidations, 1u);
  const auto probes_mid = st.host_probes_tx + st.switch_probes_tx;
  ASSERT_TRUE(map_now(c, 0, 1).has_value());
  EXPECT_GT(st.host_probes_tx + st.switch_probes_tx, probes_mid);

  // flush_cache loses the attach-port knowledge too: the next mapping pays
  // switch probes again, as after a NIC reset.
  c.mapper(0).flush_cache();
  const auto sw_before = st.switch_probes_tx;
  ASSERT_TRUE(map_now(c, 0, 2).has_value());
  EXPECT_GT(st.switch_probes_tx, sw_before);
}

// --- proactive backup paths (docs/ROUTING.md) -------------------------------

ClusterConfig proactive_cfg(std::size_t hosts, TopoKind topo) {
  auto cfg = ondemand_cfg(hosts, topo);
  cfg.preload_routes = true;  // Cluster seeds the cache + backups
  cfg.ondemand.proactive_backup = true;
  return cfg;
}

/// Links a route traverses, in path order (access links included).
std::vector<net::LinkId> route_links(const Cluster& c, std::size_t src,
                                     const net::Route& r) {
  std::vector<net::LinkId> links;
  auto att = c.topo.peer_of({net::Device::host(c.hosts[src]), 0});
  EXPECT_TRUE(att.has_value());
  links.push_back(att->link);
  net::Device cur = att->peer.dev;
  for (const std::uint8_t p : r.ports) {
    auto hop = c.topo.peer_of({cur, p});
    EXPECT_TRUE(hop.has_value());
    links.push_back(hop->link);
    cur = hop->peer.dev;
  }
  return links;
}

TEST(ProactiveBackup, PromotionServesFailoverWithZeroProbes) {
  Cluster c(proactive_cfg(8, TopoKind::kFigure2));
  const auto& st = c.mapper(0).stats();
  // Seeding filled both slots: a primary and a disjoint backup (Figure 2's
  // redundant trunk pairs guarantee at least link-disjointness).
  ASSERT_NE(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  const auto* slot = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(slot->has_value());
  const net::Route backup = (*slot)->route;
  EXPECT_NE(backup, *c.mapper(0).cached_route(c.hosts[3]));
  EXPECT_GT(st.backup_computed, 0u);

  // A path failure promotes in one step: the backup becomes the primary and
  // the next request is a cache hit — no probe leaves the NIC.
  const auto probes_before = st.host_probes_tx + st.switch_probes_tx;
  EXPECT_TRUE(c.mapper(0).on_path_failure(c.hosts[3]));
  EXPECT_EQ(st.backup_promotions, 1u);
  ASSERT_NE(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  EXPECT_EQ(*c.mapper(0).cached_route(c.hosts[3]), backup);
  const auto r = map_now(c, 0, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, backup);
  EXPECT_EQ(st.path_cache_hits, 1u);
  EXPECT_EQ(st.host_probes_tx + st.switch_probes_tx, probes_before);

  // The emptied backup slot is replenished in the background, verified by
  // one host probe — off the failover critical path.
  c.sched.run_until(c.sched.now() + sim::seconds(1));
  EXPECT_EQ(st.backup_replenish_probes, 1u);
  const auto* refilled = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(refilled, nullptr);
  ASSERT_TRUE(refilled->has_value());
  EXPECT_NE((*refilled)->route, backup);  // disjoint from the new primary
}

TEST(ProactiveBackup, StaleBackupIsRejectedAndFallsBackToProbing) {
  Cluster c(proactive_cfg(8, TopoKind::kFigure2));
  const auto& st = c.mapper(0).stats();
  const auto* slot = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(slot->has_value());

  // Kill an interior link of the *backup* route: the backup is now as dead
  // as the primary will be. Promotion must refuse it — never deliver over a
  // wrong route — and drop the whole entry instead.
  const auto links = route_links(c, 0, (*slot)->route);
  ASSERT_GT(links.size(), 2u);  // host3 is 4 switches away: has interior
  c.topo.set_link_up(links[1], false);

  EXPECT_FALSE(c.mapper(0).on_path_failure(c.hosts[3]));
  EXPECT_EQ(st.backup_stale_rejections, 1u);
  EXPECT_EQ(st.backup_promotions, 0u);
  EXPECT_EQ(c.mapper(0).cached_route(c.hosts[3]), nullptr);

  // The fallback is the ordinary probe path, which routes around the dead
  // link (redundant trunks remain).
  const auto probes_before = st.host_probes_tx + st.switch_probes_tx;
  const auto r = map_now(c, 0, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(st.host_probes_tx + st.switch_probes_tx, probes_before);
  auto end = c.topo.trace_route_up(c.hosts[0], *r);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, net::Device::host(c.hosts[3]));
}

TEST(ProactiveBackup, DisjointnessImpossibleDegradesGracefully) {
  // Single crossbar: the only route between any pair IS the primary, so no
  // backup can exist. The entry stays backup-less and failures fall back to
  // probing — proactive mode must not make the degenerate fabric worse.
  Cluster c(proactive_cfg(4, TopoKind::kSingleSwitch));
  const auto& st = c.mapper(0).stats();
  ASSERT_NE(c.mapper(0).cached_route(c.hosts[1]), nullptr);
  const auto* slot = c.mapper(0).cached_backup(c.hosts[1]);
  ASSERT_NE(slot, nullptr);
  EXPECT_FALSE(slot->has_value());
  EXPECT_EQ(st.backup_computed, 0u);

  EXPECT_FALSE(c.mapper(0).on_path_failure(c.hosts[1]));
  EXPECT_EQ(st.backup_promotions, 0u);
  EXPECT_EQ(st.backup_stale_rejections, 0u);  // absent, not stale
  EXPECT_EQ(c.mapper(0).cached_route(c.hosts[1]), nullptr);
  EXPECT_TRUE(map_now(c, 0, 1).has_value());
}

TEST(ProactiveBackup, PromotionDuringInFlightProbeDoesNotDoubleCache) {
  // A BFS for dst is mid-probe when a path failure is served by promotion
  // (the entry appeared concurrently — an operator seed here; a
  // discovered-in-passing fill in general). The stale BFS result must not
  // overwrite the promoted entry, and the waiting callbacks must get the
  // promoted route, not the poisoned one.
  auto cfg = proactive_cfg(8, TopoKind::kFigure2);
  cfg.preload_routes = false;  // cold: request_route actually probes
  Cluster c(cfg);
  const auto& st = c.mapper(0).stats();

  bool done = false;
  std::optional<net::Route> got;
  c.mapper(0).request_route(c.hosts[3], [&](std::optional<net::Route> r) {
    got = std::move(r);
    done = true;
  });
  // Let the BFS start probing, then install an entry + backup behind its
  // back and declare the path failed.
  c.sched.run_until(c.sched.now() + sim::microseconds(500));
  ASSERT_FALSE(done);
  const auto primary = c.topo.shortest_route(c.hosts[0], c.hosts[3]);
  ASSERT_TRUE(primary.has_value());
  c.mapper(0).seed_cache(c.hosts[3], *primary);
  const auto* slot = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(slot->has_value());
  const net::Route backup = (*slot)->route;
  EXPECT_TRUE(c.mapper(0).on_path_failure(c.hosts[3]));

  while (!done && c.sched.step()) {
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, backup);  // promoted route answered the callbacks
  ASSERT_NE(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  EXPECT_EQ(*c.mapper(0).cached_route(c.hosts[3]), backup);
  EXPECT_EQ(st.backup_promotions, 1u);
}

TEST(ProactiveBackup, NicResetFlushesBothSlots) {
  Cluster c(proactive_cfg(8, TopoKind::kFigure2));
  ASSERT_NE(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  const auto* slot = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(slot->has_value());
  c.mapper(0).on_nic_reset();
  EXPECT_EQ(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  EXPECT_EQ(c.mapper(0).cached_backup(c.hosts[3]), nullptr);
}

TEST(ProactiveBackup, PeerDeathNeverPromotes) {
  // Membership declared the node itself dead: a backup route to a corpse is
  // no failover target. Both slots drop; nothing is promoted.
  Cluster c(proactive_cfg(8, TopoKind::kFigure2));
  const auto& st = c.mapper(0).stats();
  ASSERT_TRUE(c.mapper(0).cached_backup(c.hosts[3]) != nullptr);
  c.mapper(0).on_peer_dead(c.hosts[3]);
  EXPECT_EQ(st.backup_promotions, 0u);
  EXPECT_EQ(c.mapper(0).cached_route(c.hosts[3]), nullptr);
  EXPECT_EQ(c.mapper(0).cached_backup(c.hosts[3]), nullptr);
}

TEST(FullMapper, ServesRoutesAfterModeledRemap) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.topo = TopoKind::kFigure2;
  cfg.mapper = MapperKind::kFull;
  cfg.preload_routes = false;
  Cluster c(cfg);
  Drainer d;
  drain(c, 3, d);
  c.send(0, 3, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::seconds(5));
  ASSERT_EQ(d.msgs.size(), 1u);
  EXPECT_EQ(c.full_mapper(0).stats().full_maps, 1u);
  EXPECT_GT(c.full_mapper(0).stats().modeled_probes, 0u);
  // The modeled full map probes every port of all four switches.
  EXPECT_EQ(c.full_mapper(0).probes_for_full_map(), 2u * (8 + 16 + 16 + 8) + 8u);
}

TEST(FullMapper, OnDemandMapsOnePairWithFarFewerProbes) {
  // The paper's core argument: on-demand mapping localizes work.
  Cluster od(ondemand_cfg(8, TopoKind::kFigure2));
  Drainer d;
  drain(od, 4, d);
  // host 0 -> host 4: same switch.
  od.send(0, 4, std::vector<std::uint8_t>(8, 1));
  od.sched.run_until(sim::seconds(5));
  ASSERT_EQ(d.msgs.size(), 1u);
  const auto od_probes = od.mapper(0).stats().host_probes_tx +
                         od.mapper(0).stats().switch_probes_tx;

  ClusterConfig fcfg;
  fcfg.num_hosts = 8;
  fcfg.topo = TopoKind::kFigure2;
  fcfg.mapper = MapperKind::kFull;
  fcfg.preload_routes = false;
  Cluster fm(fcfg);
  EXPECT_LT(od_probes, fm.full_mapper(0).probes_for_full_map());
}

}  // namespace
}  // namespace sanfault
