// Tests for the observability subsystem (src/obs): registry semantics
// (counter monotonicity, gauge watermarks, histogram percentiles, collector
// lifecycle), trace-ring wraparound, JSON export shape — and integration
// tests proving that fault-injection runs produce the counters and trace
// events documented in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/process.hpp"
#include "sim/scheduler.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;
using harness::MapperKind;
using harness::TopoKind;

// --- registry unit tests ----------------------------------------------------

TEST(Registry, CounterIsMonotonic) {
  obs::Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(3);  // collectors may only move counters forward
  EXPECT_EQ(c.value(), 5u);
  c.set(9);
  EXPECT_EQ(c.value(), 9u);
}

TEST(Registry, GaugeTracksHighWatermark) {
  obs::Gauge g;
  g.set(7);
  g.set(2);
  g.add(-2);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 7);
}

TEST(Registry, HistogramPercentilesOrdered) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);
  const auto& hist = h.hist();
  EXPECT_EQ(hist.count(), 1000u);
  const auto p50 = hist.quantile(0.50);
  const auto p99 = hist.quantile(0.99);
  EXPECT_LE(p50, p99);
  // HdrHistogram buckets have ~3% relative error.
  EXPECT_NEAR(static_cast<double>(p50), 500e3, 500e3 * 0.05);
  EXPECT_NEAR(static_cast<double>(p99), 990e3, 990e3 * 0.05);
}

TEST(Registry, GetOrCreateReturnsStableRefs) {
  sim::Scheduler sched;
  obs::Registry& reg = obs::Registry::of(sched);
  obs::Counter& a = reg.counter("x.a", "u");
  a.inc(5);
  // Creating more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    reg.counter("x.fill" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("x.a"), &a);
  EXPECT_EQ(reg.counter_value("x.a"), 5u);
}

TEST(Registry, OnePerSchedulerAndFoundWhileAlive) {
  sim::Scheduler s1;
  sim::Scheduler s2;
  obs::Registry& r1 = obs::Registry::of(s1);
  obs::Registry& r2 = obs::Registry::of(s2);
  EXPECT_NE(&r1, &r2);
  EXPECT_EQ(obs::Registry::find(s1), &r1);
  EXPECT_EQ(&obs::Registry::of(s1), &r1);
}

TEST(Registry, CollectorSyncsOnCollectAndOnRemoval) {
  sim::Scheduler sched;
  obs::Registry& reg = obs::Registry::of(sched);
  std::uint64_t source = 0;
  int owner = 0;
  reg.add_collector(&owner, [&reg, &source] {
    reg.counter("x.pulled").set(source);
  });
  source = 11;
  EXPECT_EQ(reg.counter_value("x.pulled"), 0u);  // pull model: not yet synced
  reg.collect();
  EXPECT_EQ(reg.counter_value("x.pulled"), 11u);
  source = 42;
  reg.remove_collectors(&owner);  // final sync happens here
  EXPECT_EQ(reg.counter_value("x.pulled"), 42u);
  source = 99;
  reg.collect();  // collector is gone; value frozen
  EXPECT_EQ(reg.counter_value("x.pulled"), 42u);
}

TEST(Registry, TeardownExportWritesJson) {
  const std::string path = ::testing::TempDir() + "obs_teardown.json";
  std::remove(path.c_str());
  {
    sim::Scheduler sched;
    obs::Registry& reg = obs::Registry::of(sched);
    reg.set_export_path(path);
    reg.counter("x.events", "events").inc(3);
  }  // scheduler teardown runs the export hook
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "teardown export did not write " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"x.events\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Registry, JsonExportContainsAllNames) {
  sim::Scheduler sched;
  obs::Registry& reg = obs::Registry::of(sched);
  reg.counter("a.count", "events").inc(7);
  reg.gauge("a.level", "items").set(-2);
  reg.histogram("a.dist", "ns").record(123);
  const std::string js = reg.to_json();
  for (const auto& name : reg.names()) {
    EXPECT_NE(js.find("\"" + name + "\""), std::string::npos) << name;
  }
  EXPECT_NE(js.find("\"value\":7"), std::string::npos);
  EXPECT_NE(js.find("\"value\":-2"), std::string::npos);
}

// --- trace ring -------------------------------------------------------------

TEST(TraceRing, DisabledByDefaultAndEmitIsANoop) {
  obs::TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.emit(obs::TraceEvent{0, 0, 1, 0, 0, 0, 0, obs::TraceKind::kDeliver});
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, WrapsKeepingNewestAndCountsDropped) {
  obs::TraceRing ring;
  ring.enable(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.emit(obs::TraceEvent{static_cast<sim::Time>(i), i, 0, i, 0, 0, 0,
                              obs::TraceKind::kHopTraverse});
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first, holding exactly the newest 8 events (12..19).
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, 12u + i);
  }
}

TEST(TraceRing, EveryKindHasAStableName) {
  for (int k = 0; k <= static_cast<int>(obs::TraceKind::kGenRestart); ++k) {
    const auto name = obs::trace_kind_name(static_cast<obs::TraceKind>(k));
    EXPECT_FALSE(name.empty()) << "kind " << k;
    EXPECT_NE(name, "unknown") << "kind " << k;
  }
}

// --- integration: fault-injection runs feed the documented counters ---------

sim::Process drain_forever(Cluster& c, std::size_t host, std::size_t& got) {
  for (;;) {
    co_await c.inbox(host).pop(c.sched);
    ++got;
  }
}

TEST(ObsIntegration, InjectedDropsShowUpInFirmwareCounters) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.rel.drop_interval = 5;  // drop every 5th data packet at the sender
  Cluster c(cfg);
  obs::Registry& reg = obs::Registry::of(c.sched);
  reg.trace().enable(1 << 12);

  std::size_t got = 0;
  drain_forever(c, 1, got);
  for (int i = 0; i < 50; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(64, 1));
  }
  c.sched.run_until(sim::seconds(10));
  ASSERT_EQ(got, 50u);

  reg.collect();
  EXPECT_GT(reg.counter_value("firmware.injected_drops{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("firmware.retransmissions{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("firmware.ooo_drops{node=1}"), 0u);
  EXPECT_GT(reg.counter_value("firmware.ack_advances{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("nic.wire_tx{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("fabric.injected"), 0u);

  // The trace ring saw the injected drops and the recoveries.
  std::size_t inj = 0, rtx = 0, ooo = 0;
  for (const auto& ev : reg.trace().snapshot()) {
    if (ev.kind == obs::TraceKind::kInjectedDrop) ++inj;
    if (ev.kind == obs::TraceKind::kRetransmit) ++rtx;
    if (ev.kind == obs::TraceKind::kOooDrop) ++ooo;
  }
  EXPECT_GT(inj, 0u);
  EXPECT_GT(rtx, 0u);
  EXPECT_GT(ooo, 0u);
}

TEST(ObsIntegration, LinkKillShowsUpInFailureAndRemapCounters) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.topo = TopoKind::kFigure2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.mapper = MapperKind::kOnDemand;
  cfg.rel.fail_threshold = sim::milliseconds(20);
  Cluster c(cfg);
  obs::Registry& reg = obs::Registry::of(c.sched);
  // A remap episode is a few thousand events (probe storms, go-back-N
  // retries); the default capacity holds a whole one.
  reg.trace().enable();

  std::size_t got = 0;
  drain_forever(c, 3, got);
  c.send(0, 3, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::seconds(1));
  ASSERT_EQ(got, 1u);

  // Kill the first trunk of every segment the preloaded route crosses; the
  // redundant twins remain, so the mapper can heal the path.
  c.topo.set_link_up(net::LinkId{0}, false);
  c.topo.set_link_up(net::LinkId{2}, false);
  c.topo.set_link_up(net::LinkId{4}, false);
  for (int i = 0; i < 5; ++i) {
    c.send(0, 3, std::vector<std::uint8_t>(16, 2));
  }
  c.sched.run_until(sim::seconds(60));
  ASSERT_EQ(got, 6u);

  reg.collect();
  EXPECT_GT(reg.counter_value("firmware.path_failures{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("firmware.remap_requests{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("firmware.generation_restarts{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("mapper.mappings_started{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("mapper.mappings_succeeded{node=0}"), 0u);
  EXPECT_GT(reg.counter_value("fabric.dropped_link_down"), 0u);

  // The remap episode is visible in the trace: failure declared, remap
  // started and finished, generation restarted.
  bool fail = false, start = false, done = false, restart = false;
  for (const auto& ev : reg.trace().snapshot()) {
    if (ev.kind == obs::TraceKind::kPathFail) fail = true;
    if (ev.kind == obs::TraceKind::kRemapStart) start = true;
    if (ev.kind == obs::TraceKind::kRemapDone) done = true;
    if (ev.kind == obs::TraceKind::kGenRestart) restart = true;
  }
  EXPECT_TRUE(fail);
  EXPECT_TRUE(start);
  EXPECT_TRUE(done);
  EXPECT_TRUE(restart);
}

TEST(ObsIntegration, CleanRunKeepsFaultCountersAtZero) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  Cluster c(cfg);
  std::size_t got = 0;
  drain_forever(c, 1, got);
  for (int i = 0; i < 20; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(64, 1));
  }
  c.sched.run_until(sim::seconds(10));
  ASSERT_EQ(got, 20u);

  obs::Registry& reg = obs::Registry::of(c.sched);
  reg.collect();
  EXPECT_EQ(reg.counter_value("firmware.injected_drops{node=0}"), 0u);
  EXPECT_EQ(reg.counter_value("firmware.ooo_drops{node=1}"), 0u);
  EXPECT_EQ(reg.counter_value("firmware.path_failures{node=0}"), 0u);
  EXPECT_EQ(reg.counter_value("firmware.corrupt_drops{node=1}"), 0u);
  EXPECT_EQ(reg.counter_value("nic.crc_failures{node=1}"), 0u);
  EXPECT_EQ(reg.counter_value("fabric.corruptions_injected"), 0u);
}

}  // namespace
}  // namespace sanfault
