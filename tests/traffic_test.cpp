// Tests for the open-loop traffic engine and the HDR histogram behind its
// latency reporting: percentile accuracy bounds, merge/equality semantics,
// Zipfian skew, and bit-for-bit deterministic replay of a full service run.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "kv/rig.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "traffic/engine.hpp"

namespace sanfault {
namespace {

// --- HdrHistogram ----------------------------------------------------------

TEST(HdrHistogram, BucketBoundsAreConsistent) {
  // Every value must land in a bucket whose upper bound is >= the value and
  // within the advertised 1/32 relative error of it.
  for (const std::uint64_t v :
       {0ull, 1ull, 31ull, 32ull, 33ull, 63ull, 64ull, 100ull, 1023ull,
        1024ull, 4097ull, 123456789ull, 1ull << 40, (1ull << 40) + 12345,
        ~0ull >> 1}) {
    const std::size_t b = sim::HdrHistogram::bucket_of(v);
    const std::uint64_t ub = sim::HdrHistogram::upper_bound(b);
    ASSERT_GE(ub, v);
    if (b > 0) {
      ASSERT_LT(sim::HdrHistogram::upper_bound(b - 1), v)
          << "v=" << v << " fits an earlier bucket";
    }
    EXPECT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / 32.0 + 1.0)
        << "bucket too coarse for v=" << v;
  }
}

TEST(HdrHistogram, SmallValuesAreExact) {
  sim::HdrHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.add(v);
  for (double q : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto exact = static_cast<std::uint64_t>(
        std::max(0.0, q * 32.0 + 0.5 - 1.0));
    EXPECT_EQ(h.quantile(q), std::min<std::uint64_t>(exact, 31));
  }
}

TEST(HdrHistogram, PercentilesWithinRelativeErrorBound) {
  // 1..100000 inserted in shuffled order; quantiles must bracket the exact
  // answer from above within one sub-bucket (~3.2% relative).
  std::vector<std::uint64_t> vals(100000);
  for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = i + 1;
  sim::Rng rng(99);
  for (std::size_t i = vals.size(); i > 1; --i) {
    std::swap(vals[i - 1], vals[rng.uniform(i)]);
  }
  sim::HdrHistogram h;
  for (const auto v : vals) h.add(v);

  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.max(), 100000u);
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const double exact = q * 100000.0;
    const auto got = static_cast<double>(h.quantile(q));
    EXPECT_GE(got, exact - 1.0) << "q=" << q;
    EXPECT_LE(got, exact * (1.0 + 1.0 / 32.0) + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), 100000u);
  EXPECT_NEAR(h.mean(), 50000.5, 1e-6);
}

TEST(HdrHistogram, MergeMatchesCombinedStream) {
  sim::HdrHistogram a, b, all;
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform(1u << 20);
    if (i % 2 == 0) {
      a.add(v);
    } else {
      b.add(v);
    }
    all.add(v);
  }
  a.merge(b);
  EXPECT_TRUE(a == all);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.quantile(0.99), all.quantile(0.99));
}

// --- samplers --------------------------------------------------------------

TEST(ZipfSampler, UniformWhenThetaZero) {
  traffic::ZipfSampler z(100, 0.0);
  sim::Rng rng(3);
  std::vector<std::uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*lo, 700u);   // expect ~1000 each
  EXPECT_LT(*hi, 1300u);
}

TEST(ZipfSampler, SkewConcentratesOnLowRanks) {
  traffic::ZipfSampler z(1000, 0.99);
  sim::Rng rng(3);
  std::uint64_t top10 = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.sample(rng) < 10) ++top10;
  }
  // Under uniform the top-10 ranks would see ~1% of draws; Zipf(0.99) over
  // 1000 keys gives them roughly a third.
  EXPECT_GT(top10, kDraws / 10);
}

// --- deterministic replay --------------------------------------------------

traffic::TrafficStats run_once(std::uint64_t seed) {
  kv::KvRigConfig rc;
  rc.num_servers = 2;
  rc.num_client_hosts = 2;
  rc.cluster.rel.drop_interval = 5000;  // some retransmission activity
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = 20;
  tc.total_requests = 500;
  tc.rate_rps = 100000;
  tc.zipf_theta = 0.8;
  tc.seed = seed;
  tc.record_trace = true;
  traffic::TrafficEngine engine(rig.c.sched, rig.client_view(), tc);
  engine.start();
  const sim::Time cap = sim::seconds(60);
  while (!engine.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  EXPECT_TRUE(engine.done());
  return engine.stats();
}

TEST(TrafficEngine, SameSeedReplaysIdentically) {
  const auto a = run_once(1234);
  const auto b = run_once(1234);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);           // same arrivals, clients, ops, keys
  EXPECT_TRUE(a.latency == b.latency);   // same latencies, bucket for bucket
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.retries, b.retries);
}

TEST(TrafficEngine, DifferentSeedsDiverge) {
  const auto a = run_once(1);
  const auto b = run_once(2);
  EXPECT_NE(a.trace, b.trace);
}

TEST(TrafficEngine, OpMixAndArrivalsFollowConfig) {
  kv::KvRigConfig rc;
  rc.num_servers = 2;
  rc.num_client_hosts = 1;
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = 10;
  tc.total_requests = 1000;
  tc.rate_rps = 200000;
  tc.get_ratio = 0.6;
  tc.del_ratio = 0.1;
  tc.poisson = false;  // fixed-rate: arrivals span exactly total/rate seconds
  tc.seed = 5;
  traffic::TrafficEngine engine(rig.c.sched, rig.client_view(), tc);
  const sim::Time start = rig.c.sched.now();
  engine.start();
  const sim::Time cap = sim::seconds(60);
  while (!engine.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  ASSERT_TRUE(engine.done());

  const auto& s = engine.stats();
  EXPECT_EQ(s.issued, 1000u);
  EXPECT_EQ(s.gets + s.puts + s.dels, 1000u);
  EXPECT_NEAR(static_cast<double>(s.gets), 600.0, 60.0);
  EXPECT_NEAR(static_cast<double>(s.dels), 100.0, 40.0);
  // 1000 arrivals at 200k/s = 5 ms of generation; completion trails by only
  // the last RPCs' latency.
  const double gen_ms = sim::to_millis(rig.c.sched.now() - start);
  EXPECT_GT(gen_ms, 4.9);
  EXPECT_LT(gen_ms, 50.0);
  EXPECT_GE(s.windows.size(), 1u);
  std::uint64_t windowed = 0;
  for (const auto& w : s.windows) windowed += w.issued;
  EXPECT_EQ(windowed, s.issued);
}

}  // namespace
}  // namespace sanfault
