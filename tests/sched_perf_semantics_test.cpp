// Semantics tests for the performance-oriented scheduler internals: lazy
// cancellation, slot/generation reuse, heap compaction, and the determinism
// contract the parallel sweep runner (bench/parallel_sweep.hpp) relies on.
// The basics (ordering, FIFO ties, cancel visibility) live in
// sim_scheduler_test.cpp; these tests drive the edges the lazy
// representation introduces.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/cluster.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace sanfault {
namespace {

// --- lazy cancellation -----------------------------------------------------

TEST(SchedLazyCancel, CancelledEventNeverFiresEvenAmongLiveTies) {
  sim::Scheduler s;
  std::vector<int> fired;
  // Three events at the same timestamp; cancel the middle one. FIFO order of
  // the survivors must hold and the cancelled one must be skipped silently.
  s.at(10, [&] { fired.push_back(0); });
  auto h = s.at(10, [&] { fired.push_back(1); });
  s.at(10, [&] { fired.push_back(2); });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

TEST(SchedLazyCancel, PendingReflectsCancelImmediately) {
  sim::Scheduler s;
  auto h = s.at(5, [] {});
  EXPECT_TRUE(s.pending(h));
  EXPECT_TRUE(s.cancel(h));
  // Lazy cancellation leaves the heap entry in place; pending() must still
  // report dead instantly, and pending_events() must not count it.
  EXPECT_FALSE(s.pending(h));
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.cancel(h));
  s.run();
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(SchedLazyCancel, CancelReleasesCallableResourcesImmediately) {
  sim::Scheduler s;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  auto h = s.at(5, [token = std::move(token)] { (void)*token; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(s.cancel(h));
  // The callable (and anything it captured) must be destroyed at cancel
  // time, not when the dead heap entry is eventually skimmed.
  EXPECT_TRUE(watch.expired());
  s.run();
}

TEST(SchedLazyCancel, RunUntilIgnoresCancelledTopEntry) {
  sim::Scheduler s;
  bool late_fired = false;
  auto h = s.at(10, [] {});
  s.at(100, [&] { late_fired = true; });
  EXPECT_TRUE(s.cancel(h));
  // A cancelled entry at t=10 sits on top of the heap. run_until(50) must
  // neither fire the live t=100 event nor let the dead entry's timestamp
  // decide the horizon.
  s.run_until(50);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(s.now(), 50u);
  s.run();
  EXPECT_TRUE(late_fired);
}

// --- slot/generation reuse -------------------------------------------------

TEST(SchedGeneration, StaleHandleCannotTouchRecycledSlot) {
  sim::Scheduler s;
  int first = 0;
  int second = 0;
  auto h1 = s.at(1, [&] { ++first; });
  s.run();
  EXPECT_EQ(first, 1);
  // h1's slot is now free. Schedule a new event — with one live slot the
  // pool will reuse it — and check the stale handle cannot cancel it.
  auto h2 = s.at(2, [&] { ++second; });
  EXPECT_FALSE(s.pending(h1));
  EXPECT_FALSE(s.cancel(h1));
  EXPECT_TRUE(s.pending(h2));
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(SchedGeneration, HeavyReuseKeepsHandlesUnambiguous) {
  sim::Scheduler s;
  sim::Rng rng(7);
  // Stress slot recycling: many rounds of schedule/cancel/execute. Track
  // what must fire and what must not; any generation aliasing shows up as a
  // cancelled event firing or a live one getting killed by a stale handle.
  std::uint64_t expected = 0;
  std::vector<sim::EventHandle> stale;
  for (int round = 0; round < 200; ++round) {
    std::vector<sim::EventHandle> mine;
    for (int i = 0; i < 8; ++i) {
      mine.push_back(s.after(1 + rng.uniform(5), [] {}));
    }
    // Cancel a random half; stale handles from prior rounds must all miss.
    for (int i = 0; i < 4; ++i) {
      const auto& h = mine[rng.uniform(mine.size())];
      if (s.pending(h)) {
        EXPECT_TRUE(s.cancel(h));
      }
    }
    for (const auto& h : stale) {
      EXPECT_FALSE(s.cancel(h)) << "stale handle cancelled a recycled slot";
    }
    for (const auto& h : mine) {
      if (s.pending(h)) ++expected;
    }
    stale = std::move(mine);
    s.run();
  }
  EXPECT_EQ(s.events_executed(), expected);
}

// --- compaction ------------------------------------------------------------

TEST(SchedCompaction, MassCancelStillRunsSurvivorsInOrder) {
  sim::Scheduler s;
  // Push well past the compaction threshold (64 cancelled, > half the heap),
  // cancel all but every 10th event, and check the survivors execute in
  // exact time order. Compaction rebuilds the heap; a bug there shows up as
  // misordered or lost events.
  std::vector<sim::EventHandle> handles;
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    handles.push_back(s.at(1000 + i, [&fired, i] { fired.push_back(i); }));
  }
  std::vector<std::uint64_t> survivors;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (i % 10 == 0) {
      survivors.push_back(i);
    } else {
      EXPECT_TRUE(s.cancel(handles[i]));
    }
  }
  EXPECT_EQ(s.pending_events(), survivors.size());
  // pending() must stay truthful across compaction's slot shuffling.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(s.pending(handles[i]), i % 10 == 0);
  }
  s.run();
  EXPECT_EQ(fired, survivors);
  EXPECT_EQ(s.events_executed(), survivors.size());
}

TEST(SchedCompaction, CancelDuringExecutionWindow) {
  sim::Scheduler s;
  // Cancelling from inside a running event, targeting both earlier-armed and
  // later-armed events at the same and later times.
  std::vector<int> fired;
  sim::EventHandle victim_same_t;
  sim::EventHandle victim_later;
  s.at(10, [&] {
    fired.push_back(0);
    EXPECT_TRUE(s.cancel(victim_same_t));
    EXPECT_TRUE(s.cancel(victim_later));
  });
  victim_same_t = s.at(10, [&] { fired.push_back(1); });
  victim_later = s.at(20, [&] { fired.push_back(2); });
  s.at(30, [&] { fired.push_back(3); });
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 3}));
}

// --- re-arm pattern (the reliability firmware's per-delivery shape) --------

TEST(SchedReArm, CancelThenReArmKeepsOneLiveTimer) {
  sim::Scheduler s;
  int timer_fired = 0;
  sim::EventHandle timer;
  // 100 deliveries, each cancels the pending timer and arms a fresh one.
  // Only the last armed timer may fire.
  for (int d = 0; d < 100; ++d) {
    s.at(static_cast<sim::Time>(d), [&s, &timer, &timer_fired] {
      if (timer.valid() && s.pending(timer)) {
        EXPECT_TRUE(s.cancel(timer));
      }
      timer = s.after(1000, [&timer_fired] { ++timer_fired; });
    });
  }
  s.run();
  EXPECT_EQ(timer_fired, 1);
}

// --- determinism under the parallel sweep runner ---------------------------

// One simulation cell: a 2-host reliable cluster streaming messages with
// injected drops, returning the full metrics registry dump. Equal JSON
// across serial and concurrent executions is the byte-identical-output
// contract bench/parallel_sweep.hpp promises for --jobs N.
std::string run_reference_cell() {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.rel.drop_interval = 50;
  cfg.rel.fail_threshold = sim::seconds(30);
  cfg.rel.fail_min_rounds = 100000;
  harness::Cluster c(cfg);
  int received = 0;
  c.nic(1).set_host_rx(
      [&received](net::UserHeader, net::PayloadRef, net::HostId) {
        ++received;
      });
  for (int i = 0; i < 200; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(512, static_cast<std::uint8_t>(i)));
  }
  c.sched.run_until(sim::seconds(10));
  EXPECT_EQ(received, 200);
  return obs::Registry::of(c.sched).to_json();
}

TEST(SchedDeterminism, SerialAndParallelCellsProduceIdenticalMetrics) {
  const std::string serial = run_reference_cell();
  ASSERT_FALSE(serial.empty());

  // Same cell on 4 threads at once (the --jobs 4 shape): every run must
  // reproduce the serial registry dump byte for byte.
  std::vector<std::string> parallel(4);
  {
    std::vector<std::thread> pool;
    pool.reserve(parallel.size());
    for (auto& out : parallel) {
      pool.emplace_back([&out] { out = run_reference_cell(); });
    }
    for (auto& t : pool) t.join();
  }
  for (const auto& json : parallel) {
    EXPECT_EQ(json, serial);
  }
}

}  // namespace
}  // namespace sanfault
