// Cross-layer end-to-end scenarios: behaviors that only emerge when fabric,
// NIC, firmware, mapper, and VMMC interact — deadlock recovery via path
// reset + retransmission (§4.2's key design bet), dynamic reconfiguration
// under live load, multiple concurrent failures, and combined fault types.
#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;
using harness::MapperKind;
using harness::TopoKind;

struct Drainer {
  std::vector<harness::HostMsg> msgs;
};

sim::Process drain(Cluster& c, std::size_t host, Drainer& d) {
  for (;;) {
    harness::HostMsg m = co_await c.inbox(host).pop(c.sched);
    d.msgs.push_back(std::move(m));
  }
}

// --- deadlock recovery -------------------------------------------------------

TEST(E2eDeadlock, BlockedPathRecoversViaHardwareResetAndRetransmission) {
  // §4.2: on-demand routes are not deadlock-free; a wormhole-blocked path is
  // resolved by the Myrinet deadlock timer (drop) + the retransmission
  // protocol. Model: block the victim's link for a while — packets entering
  // it are dropped after the hardware timeout; the firmware retransmits.
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.fabric.deadlock_timeout = sim::milliseconds(62);
  cfg.rel.fail_threshold = sim::seconds(10);  // stay in "transient" land
  Cluster c(cfg);
  Drainer d;
  drain(c, 1, d);

  c.fabric().link_faults(net::LinkId{1}).blocked = true;
  for (int i = 0; i < 5; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(i);
    c.send(0, 1, std::vector<std::uint8_t>(64, 1), u);
  }
  // Unblock after 150 ms: two deadlock-timeout generations have flushed.
  c.sched.after(sim::milliseconds(150), [&] {
    c.fabric().link_faults(net::LinkId{1}).blocked = false;
  });
  c.sched.run_until(sim::seconds(5));

  ASSERT_EQ(d.msgs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(d.msgs[static_cast<std::size_t>(i)].user.w0,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(c.fabric().stats().dropped_path_reset, 0u);
  EXPECT_GT(c.rel(0).stats().retransmissions, 0u);
  EXPECT_EQ(c.rel(0).stats().path_failures, 0u);  // transient, not permanent
}

// --- reconfiguration under live load ----------------------------------------

TEST(E2eReconfig, NodeMovesWhileTrafficFlows) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.topo = TopoKind::kFigure2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.mapper = MapperKind::kOnDemand;
  cfg.rel.fail_threshold = sim::milliseconds(20);
  cfg.rel.fail_min_rounds = 3;
  Cluster c(cfg);
  Drainer d;
  drain(c, 3, d);

  // A steady stream host0 -> host3, one message per millisecond.
  for (int i = 0; i < 40; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(i);
    c.sched.at(sim::milliseconds(static_cast<std::uint64_t>(i)), [&c, u] {
      c.send(0, 3, std::vector<std::uint8_t>(128, 1), u);
    });
  }
  // Mid-stream, host 3 is unplugged and re-appears on another switch.
  c.sched.at(sim::milliseconds(15), [&c] {
    auto att = c.topo.peer_of({net::Device::host(c.hosts[3]), 0});
    c.topo.disconnect(att->link);
    c.topo.connect({net::Device::host(c.hosts[3]), 0},
                   {net::Device::sw(c.switches[1]), 12});
    c.mapper(3).flush_cache();
  });
  c.sched.run_until(sim::seconds(120));

  // Every distinct message arrives (generation restarts may re-deposit a
  // delivered-but-unacked suffix; deposits are idempotent, §4.2).
  std::vector<bool> seen(40, false);
  for (const auto& m : d.msgs) {
    ASSERT_LT(m.user.w0, 40u);
    seen[static_cast<std::size_t>(m.user.w0)] = true;
  }
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]) << i;
  EXPECT_GE(c.rel(0).stats().path_failures, 1u);
  EXPECT_GE(c.mapper(0).stats().mappings_succeeded, 1u);
}

// --- combined fault soup -----------------------------------------------------

TEST(E2eFaultSoup, CorruptionLossAndInjectedDropsTogether) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.rel.drop_interval = 20;
  Cluster c(cfg);
  c.fabric().link_faults(net::LinkId{0}).corrupt_prob = 0.05;
  c.fabric().link_faults(net::LinkId{0}).loss_prob = 0.05;
  c.fabric().link_faults(net::LinkId{1}).corrupt_prob = 0.05;
  c.fabric().link_faults(net::LinkId{1}).loss_prob = 0.05;

  Drainer d;
  drain(c, 1, d);
  for (int i = 0; i < 100; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(i);
    c.send(0, 1, std::vector<std::uint8_t>(512, static_cast<std::uint8_t>(i)),
           u);
  }
  c.sched.run_until(sim::seconds(120));
  ASSERT_EQ(d.msgs.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.msgs[static_cast<std::size_t>(i)].user.w0,
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(d.msgs[static_cast<std::size_t>(i)].payload,
              std::vector<std::uint8_t>(512, static_cast<std::uint8_t>(i)));
  }
  EXPECT_GT(c.rel(1).stats().corrupt_drops, 0u);
  EXPECT_GT(c.fabric().stats().dropped_random, 0u);
  EXPECT_GT(c.rel(0).stats().injected_drops, 0u);
}

// --- many-to-one incast ------------------------------------------------------

TEST(E2eIncast, SevenSendersOneReceiverUnderErrors) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.fw = FirmwareKind::kReliable;
  cfg.rel.drop_interval = 100;
  cfg.nic.send_buffers = 8;
  Cluster c(cfg);
  Drainer d;
  drain(c, 0, d);
  for (std::size_t s = 1; s < 8; ++s) {
    for (int i = 0; i < 20; ++i) {
      net::UserHeader u;
      u.w0 = (s << 16) | static_cast<std::uint64_t>(i);
      c.send(s, 0, std::vector<std::uint8_t>(1024, 1), u);
    }
  }
  c.sched.run_until(sim::seconds(60));
  ASSERT_EQ(d.msgs.size(), 140u);
  // Per-sender order must hold even though arrivals interleave.
  std::vector<std::uint64_t> next(8, 0);
  for (const auto& m : d.msgs) {
    const auto s = static_cast<std::size_t>(m.user.w0 >> 16);
    const auto i = m.user.w0 & 0xFFFF;
    EXPECT_EQ(i, next[s]) << "sender " << s;
    ++next[s];
  }
}

// --- vmmc over a re-mapped path ---------------------------------------------

TEST(E2eVmmc, DepositStreamSurvivesPermanentFailure) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.topo = TopoKind::kFigure2;
  cfg.fw = FirmwareKind::kReliable;
  cfg.mapper = MapperKind::kOnDemand;
  cfg.rel.fail_threshold = sim::milliseconds(20);
  cfg.rel.fail_min_rounds = 3;
  Cluster c(cfg);
  vmmc::Endpoint tx(c.sched, c.nic(0));
  vmmc::Endpoint rx(c.sched, c.nic(3));
  auto exp = rx.export_buffer(8 * 1024);

  bool done = false;
  [](Cluster& c, vmmc::Endpoint& tx, vmmc::Endpoint& rx, vmmc::ExportId exp,
     bool& done) -> sim::Process {
    auto imp = co_await tx.import(c.hosts[3], exp);
    for (int i = 0; i < 24; ++i) {
      co_await tx.send(*imp, 0,
                       std::vector<std::uint8_t>(2048, static_cast<std::uint8_t>(i)),
                       static_cast<std::uint64_t>(i));
      co_await sim::DelayFor{c.sched, sim::milliseconds(1)};
    }
    // Wait for the last tag (idempotent duplicates may precede it).
    for (;;) {
      auto ev = co_await rx.notifications(exp).pop(c.sched);
      if (ev.tag == 23) break;
    }
    done = true;
  }(c, tx, rx, exp, done);

  c.sched.after(sim::milliseconds(8), [&] {
    c.topo.set_link_up(net::LinkId{0}, false);
    c.topo.set_link_up(net::LinkId{2}, false);
    c.topo.set_link_up(net::LinkId{4}, false);
  });
  const sim::Time deadline = sim::seconds(120);
  while (!done && c.sched.now() < deadline && c.sched.step()) {
  }
  EXPECT_TRUE(done);
  EXPECT_GE(c.rel(0).stats().path_failures, 1u);
  // The final deposit's bytes are intact in the export.
  EXPECT_EQ(rx.buffer(exp)[0], 23);
}

// --- determinism across the whole stack --------------------------------------

TEST(E2eDeterminism, IdenticalRunsProduceIdenticalEventCounts) {
  auto run_once = [] {
    ClusterConfig cfg;
    cfg.num_hosts = 4;
    cfg.fw = FirmwareKind::kReliable;
    cfg.rel.drop_interval = 17;
    Cluster c(cfg);
    Drainer d;
    drain(c, 2, d);
    for (int i = 0; i < 60; ++i) {
      c.send(static_cast<std::size_t>(i % 2), 2,
             std::vector<std::uint8_t>(333, 1));
    }
    c.sched.run_until(sim::seconds(30));
    return std::tuple{d.msgs.size(), c.sched.events_executed(),
                      c.rel(0).stats().retransmissions,
                      c.fabric().stats().delivered};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sanfault
