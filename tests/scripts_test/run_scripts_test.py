#!/usr/bin/env python3
"""Exit-code contract tests for the repo's CI gate scripts.

The gate scripts distinguish "regression" (exit 1) from "shape error —
your inputs or goldens are stale" (exit 2), and CI wiring depends on that
distinction (a shape error demands a golden regen, not a revert). This
runner drives each script against the fixtures/ files and asserts the
documented exit code and a recognizable stderr/stdout marker for every
path. Registered in ctest as `scripts_test` (see tests/CMakeLists.txt).

Usage: run_scripts_test.py [repo_root]
"""

import os
import subprocess
import sys

ROOT = os.path.realpath(
    sys.argv[1] if len(sys.argv) > 1
    else os.path.join(os.path.dirname(__file__), "..", ".."))
SCRIPTS = os.path.join(ROOT, "scripts")
FIXTURES = os.path.join(ROOT, "tests", "scripts_test", "fixtures")

failures = []


def fx(name):
    return os.path.join(FIXTURES, name)


def check(label, argv, want_exit, want_text=None):
    res = subprocess.run([sys.executable] + argv, capture_output=True,
                         text=True, cwd=ROOT)
    blob = res.stdout + res.stderr
    if res.returncode != want_exit:
        failures.append(
            f"{label}: exit {res.returncode}, wanted {want_exit}\n{blob}")
    elif want_text is not None and want_text not in blob:
        failures.append(
            f"{label}: output lacks marker {want_text!r}\n{blob}")
    else:
        print(f"ok: {label}")


def main():
    md = os.path.join(SCRIPTS, "metrics_diff.py")
    check("metrics_diff identical", [md, fx("metrics_golden.json"),
                                     fx("metrics_golden.json")], 0)
    check("metrics_diff within tolerance", [md, fx("metrics_golden.json"),
                                            fx("metrics_ok.json")], 0)
    check("metrics_diff cost regression",
          [md, fx("metrics_golden.json"), fx("metrics_regressed.json")], 1,
          "firmware.retransmissions")
    check("metrics_diff missing value key -> shape error",
          [md, fx("metrics_golden.json"), fx("metrics_missing_value.json")],
          2, "no 'value' key")
    check("metrics_diff stale golden -> shape error",
          [md, fx("metrics_golden.json"), fx("metrics_stale_golden.json")],
          2, "re-generate")

    pf = os.path.join(SCRIPTS, "perf_floor.py")
    check("perf_floor holds",
          [pf, fx("simcore_run_ok.json"), fx("simcore_floor.json")], 0,
          "perf smoke OK")
    check("perf_floor regression",
          [pf, fx("simcore_run_regressed.json"), fx("simcore_floor.json")],
          1, "events_per_sec")
    check("perf_floor unknown run key -> shape error",
          [pf, fx("simcore_run_unknown_key.json"), fx("simcore_floor.json")],
          2, "surprise_metric")

    vc = os.path.join(SCRIPTS, "validate_ci.py")
    check("validate_ci accepts clean workflow",
          [vc, fx("workflow_ok.yml")], 0, "OK")
    check("validate_ci rejects unpinned uses",
          [vc, fx("workflow_bad.yml")], 1, "unpinned action")
    check("validate_ci rejects moving-branch pin",
          [vc, fx("workflow_bad.yml")], 1, "moving branch")
    check("validate_ci rejects duplicate artifact names",
          [vc, fx("workflow_bad.yml")], 1, "duplicate artifact name")
    check("validate_ci validates the repo's real workflows", [vc], 0)

    # Coverage ratchet logic, unit-level: check_floor() against synthetic
    # per-file stats (running gcov here would need an instrumented build).
    sys.path.insert(0, SCRIPTS)
    import coverage_summary  # noqa: E402
    import json
    import tempfile
    stats = {"src/chaos/corruptor.cpp": (50, 100),
             "src/firmware/reliability.cpp": (90, 100)}
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump({"tolerance_pts": 1.0,
                   "dirs": {"src/chaos": 80.0, "src/firmware": 85.0}}, f)
        floor_path = f.name
    try:
        fails = coverage_summary.check_floor(stats, floor_path)
        if any("src/chaos" in v for v in fails):
            print("ok: coverage check_floor flags regression")
        else:
            failures.append(f"coverage check_floor missed the regression: "
                            f"{fails}")
        if any("src/firmware" in v for v in fails):
            failures.append("coverage check_floor flagged a held floor: "
                            f"{fails}")
        else:
            print("ok: coverage check_floor holds passing dir")
        missing = coverage_summary.check_floor(
            {"src/chaos/corruptor.cpp": (90, 100)}, floor_path)
        if any("no coverage data" in v for v in missing):
            print("ok: coverage check_floor flags missing dir")
        else:
            failures.append(f"coverage check_floor ignored a floored dir "
                            f"with no data: {missing}")
    finally:
        os.unlink(floor_path)

    if failures:
        print(f"\nscripts_test: {len(failures)} FAILURE(S)", file=sys.stderr)
        for msg in failures:
            print(f"--- {msg}", file=sys.stderr)
        return 1
    print("\nscripts_test: all exit-code contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
