// Tests for the replicated KV service: the message layer underneath it, the
// consistent-hash shard map, basic GET/PUT/DEL semantics, idempotency of
// retries under injected transient errors, and the headline guarantee — a
// permanent link failure mid-workload loses and duplicates nothing that was
// committed.
#include <gtest/gtest.h>

#include <set>

#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "sim/process.hpp"
#include "traffic/engine.hpp"
#include "vmmc/rpc.hpp"

namespace sanfault {
namespace {

void drive(sim::Scheduler& sched, const bool& flag,
           sim::Duration cap = sim::seconds(300)) {
  const sim::Time deadline = sched.now() + cap;
  while (!flag && sched.now() < deadline && sched.step()) {
  }
  ASSERT_TRUE(flag) << "drive() hit the safety cap";
}

// --- shard map -------------------------------------------------------------

TEST(ShardMap, PrimaryAndBackupDistinctAndDeterministic) {
  std::vector<net::HostId> servers{{0}, {1}, {2}, {3}};
  kv::ShardMap a(servers, 32);
  kv::ShardMap b(servers, 32);
  for (std::size_t sh = 0; sh < a.num_shards(); ++sh) {
    EXPECT_NE(a.primary(sh), a.backup(sh));
    EXPECT_EQ(a.primary(sh), b.primary(sh));
    EXPECT_EQ(a.backup(sh), b.backup(sh));
  }
}

TEST(ShardMap, AllServersOwnShards) {
  std::vector<net::HostId> servers{{0}, {1}, {2}, {3}};
  kv::ShardMap m(servers, 64);
  for (const auto h : servers) {
    EXPECT_FALSE(m.shards_owned_by(h).empty())
        << "server " << h.v << " owns nothing";
  }
}

TEST(ShardMap, KeyRoutingConsistent) {
  std::vector<net::HostId> servers{{0}, {1}, {2}};
  kv::ShardMap m(servers, 16);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::size_t sh = m.shard_of(k);
    EXPECT_EQ(m.primary_of_key(k), m.primary(sh));
    EXPECT_EQ(m.backup_of_key(k), m.backup(sh));
  }
}

// --- message layer ---------------------------------------------------------

TEST(MsgEndpoint, PostDeliversInOrderWithTags) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  harness::Cluster c(cfg);
  vmmc::Endpoint ea(c.sched, c.nic(0));
  vmmc::Endpoint eb(c.sched, c.nic(1));
  vmmc::MsgEndpoint ma(c.sched, ea, 4096, 4);
  vmmc::MsgEndpoint mb(c.sched, eb, 4096, 4);

  bool done = false;
  [](harness::Cluster& c, vmmc::MsgEndpoint& ma, vmmc::MsgEndpoint& mb,
     bool& done) -> sim::Process {
    const bool ok = co_await ma.connect(c.hosts[1]);
    EXPECT_TRUE(ok);
    for (std::uint64_t i = 0; i < 20; ++i) {
      co_await ma.post(c.hosts[1],
                       std::vector<std::uint8_t>(100 + i,
                                                 static_cast<std::uint8_t>(i)),
                       /*tag=*/i);
    }
    for (std::uint64_t i = 0; i < 20; ++i) {
      vmmc::Msg m = co_await mb.inbox().pop(c.sched);
      EXPECT_EQ(m.tag, i);
      EXPECT_EQ(m.src, c.hosts[0]);
      EXPECT_EQ(m.bytes.size(), 100 + i);
      EXPECT_EQ(m.bytes[0], static_cast<std::uint8_t>(i));
    }
    done = true;
  }(c, ma, mb, done);
  drive(c.sched, done);
  EXPECT_EQ(ma.stats().msgs_tx, 20u);
  EXPECT_EQ(mb.stats().msgs_rx, 20u);
}

TEST(MsgEndpoint, RingWrapsKeepMessagesIntact) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  harness::Cluster c(cfg);
  vmmc::Endpoint ea(c.sched, c.nic(0));
  vmmc::Endpoint eb(c.sched, c.nic(1));
  // Tiny partition: 300-byte messages wrap every few posts.
  vmmc::MsgEndpoint ma(c.sched, ea, 1024, 4);
  vmmc::MsgEndpoint mb(c.sched, eb, 1024, 4);

  bool done = false;
  [](harness::Cluster& c, vmmc::MsgEndpoint& ma, vmmc::MsgEndpoint& mb,
     bool& done) -> sim::Process {
    (void)co_await ma.connect(c.hosts[1]);
    for (std::uint64_t i = 0; i < 30; ++i) {
      std::vector<std::uint8_t> payload(300);
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<std::uint8_t>(i * 31 + j);
      }
      co_await ma.post(c.hosts[1], payload, i);
      vmmc::Msg m = co_await mb.inbox().pop(c.sched);
      EXPECT_EQ(m.tag, i);
      EXPECT_EQ(m.bytes, payload);
    }
    done = true;
  }(c, ma, mb, done);
  drive(c.sched, done);
}

// --- wire format -----------------------------------------------------------

TEST(KvWire, RequestRoundTrip) {
  kv::Request q;
  q.op = kv::Op::kPut;
  q.id = {7, 99};
  q.key = 0xdeadbeefull;
  q.reply_to = 5;
  q.value = {1, 2, 3, 4};
  const auto b = kv::encode(q);
  EXPECT_EQ(kv::peek_type(b), kv::MsgType::kRequest);
  const auto d = kv::decode_request(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, q.op);
  EXPECT_EQ(d->id, q.id);
  EXPECT_EQ(d->key, q.key);
  EXPECT_EQ(d->reply_to, q.reply_to);
  EXPECT_EQ(d->value, q.value);
}

TEST(KvWire, TruncatedMessageRejected) {
  kv::Reply r;
  r.id = {1, 2};
  r.status = kv::Status::kOk;
  r.value = {9, 9, 9};
  auto b = kv::encode(r);
  b.resize(b.size() - 2);
  EXPECT_FALSE(kv::decode_reply(b).has_value());
  EXPECT_FALSE(kv::decode_request(b).has_value());
}

// --- service semantics -----------------------------------------------------

kv::KvRigConfig small_rig_config() {
  kv::KvRigConfig rc;
  rc.num_servers = 2;
  rc.num_client_hosts = 1;
  rc.num_shards = 8;
  return rc;
}

TEST(KvService, PutGetDelBasics) {
  kv::KvRig rig(small_rig_config());
  bool done = false;
  [](kv::KvRig& rig, bool& done) -> sim::Process {
    kv::KvRetryPolicy policy;
    auto& ch = rig.client(0);
    const auto v = kv::make_value({1, 1}, 64);

    auto put = co_await ch.call({1, 1}, kv::Op::kPut, 42, v, policy);
    EXPECT_EQ(put.status, kv::Status::kOk);

    auto get = co_await ch.call({1, 2}, kv::Op::kGet, 42, {}, policy);
    EXPECT_EQ(get.status, kv::Status::kOk);
    EXPECT_EQ(get.value, v);

    auto miss = co_await ch.call({1, 3}, kv::Op::kGet, 43, {}, policy);
    EXPECT_EQ(miss.status, kv::Status::kNotFound);

    auto del = co_await ch.call({1, 4}, kv::Op::kDel, 42, {}, policy);
    EXPECT_EQ(del.status, kv::Status::kOk);

    auto gone = co_await ch.call({1, 5}, kv::Op::kGet, 42, {}, policy);
    EXPECT_EQ(gone.status, kv::Status::kNotFound);

    auto del2 = co_await ch.call({1, 6}, kv::Op::kDel, 42, {}, policy);
    EXPECT_EQ(del2.status, kv::Status::kNotFound);
    done = true;
  }(rig, done);
  drive(rig.c.sched, done);
}

TEST(KvService, WritesReplicateToBackup) {
  kv::KvRig rig(small_rig_config());
  bool done = false;
  [](kv::KvRig& rig, bool& done) -> sim::Process {
    kv::KvRetryPolicy policy;
    for (std::uint64_t k = 0; k < 32; ++k) {
      auto o = co_await rig.client(0).call({2, k + 1}, kv::Op::kPut, k,
                                           kv::make_value({2, k + 1}, 48),
                                           policy);
      EXPECT_EQ(o.status, kv::Status::kOk);
    }
    done = true;
  }(rig, done);
  drive(rig.c.sched, done);
  rig.c.sched.run_for(sim::milliseconds(50));

  // Every key must live on both nodes (each is primary for some shards and
  // backup for the rest).
  std::size_t total0 = rig.server(0).store().size();
  std::size_t total1 = rig.server(1).store().size();
  EXPECT_EQ(total0, 32u);
  EXPECT_EQ(total1, 32u);
  EXPECT_GT(rig.server(0).stats().replicates_rx +
                rig.server(1).stats().replicates_rx,
            0u);
}

TEST(KvService, RetriesUnderInjectedErrorsStayExactlyOnce) {
  kv::KvRigConfig rc = small_rig_config();
  rc.cluster.rel.drop_interval = 20;  // brutal 5% transient loss
  // Keep the permanent-failure detector out of the way; this test is about
  // transient recovery + dedup.
  rc.cluster.rel.fail_threshold = sim::seconds(30);
  rc.cluster.rel.fail_min_rounds = 1000;
  kv::KvRig rig(rc);

  kv::ShadowMap shadow;
  bool done = false;
  [](kv::KvRig& rig, kv::ShadowMap& shadow, bool& done) -> sim::Process {
    kv::KvRetryPolicy policy;
    policy.base_timeout = sim::milliseconds(2);  // eager client retries
    for (std::uint64_t k = 0; k < 200; ++k) {
      const kv::RequestId id{3, k + 1};
      shadow.record_issued_write(id, k % 50);
      auto o = co_await rig.client(0).call(id, kv::Op::kPut, k % 50,
                                           kv::make_value(id, 80), policy);
      EXPECT_TRUE(o.ok());
      if (o.ok()) shadow.record_committed(id);
    }
    done = true;
  }(rig, shadow, done);
  drive(rig.c.sched, done);
  rig.c.sched.run_for(sim::milliseconds(100));

  EXPECT_GT(rig.c.rel(0).stats().injected_drops +
                rig.c.rel(1).stats().injected_drops +
                rig.c.rel(2).stats().injected_drops,
            0u);
  const auto audit = kv::audit(*rig.map, rig.server_view(), shadow);
  EXPECT_EQ(audit.lost, 0u);
  EXPECT_EQ(audit.duplicated, 0u);
  EXPECT_EQ(audit.replica_mismatches, 0u);
  EXPECT_EQ(audit.alien_values, 0u);
}

// The headline test: a primary's link dies permanently mid-workload. The
// firmware declares the path dead, the mapper finds the redundant trunk and
// a new generation restarts; clients ride over it with retry + failover. No
// committed write may be lost or duplicated.
TEST(KvService, LinkKillMidWorkloadLosesNothing) {
  kv::KvRigConfig rc;
  rc.num_servers = 4;
  rc.num_client_hosts = 2;
  rc.cluster.topo = harness::TopoKind::kFigure2;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = 50;
  tc.total_requests = 1500;
  tc.rate_rps = 50000;
  tc.get_ratio = 0.3;  // write-heavy: stress replication across the failure
  tc.seed = 11;
  traffic::TrafficEngine engine(rig.c.sched, rig.client_view(), tc);
  engine.start();

  rig.c.sched.after(sim::milliseconds(10), [&rig] {
    rig.c.topo.set_link_up(net::LinkId{0}, false);
  });

  const sim::Time cap = sim::seconds(300);
  while (!engine.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  ASSERT_TRUE(engine.done()) << "workload did not complete";
  rig.c.sched.run_for(sim::milliseconds(100));
  const sim::Time qcap = rig.c.sched.now() + sim::seconds(10);
  while (!rig.servers_idle() && rig.c.sched.now() < qcap && rig.c.sched.step()) {
  }
  rig.c.sched.run_for(sim::milliseconds(100));

  std::uint64_t path_failures = 0;
  for (std::size_t i = 0; i < rig.c.size(); ++i) {
    path_failures += rig.c.rel(i).stats().path_failures;
  }
  EXPECT_GT(path_failures, 0u) << "the kill never bit a used route";

  const auto audit = kv::audit(*rig.map, rig.server_view(), engine.shadow());
  EXPECT_GT(audit.committed, 0u);
  EXPECT_EQ(audit.lost, 0u);
  EXPECT_EQ(audit.duplicated, 0u);
  EXPECT_EQ(audit.replica_mismatches, 0u);
  EXPECT_EQ(audit.alien_values, 0u);
}

// --- erasure-coded striped object class ------------------------------------

kv::KvRigConfig striped_rig_config() {
  kv::KvRigConfig rc;
  rc.num_servers = 8;  // k+m = 6 units need 6+ distinct holders
  rc.num_client_hosts = 2;
  rc.striped = true;
  return rc;
}

TEST(KvStriped, PutGetRoundTripAndUnitSpread) {
  kv::KvRig rig(striped_rig_config());
  bool done = false;
  [](kv::KvRig& rig, bool& done) -> sim::Process {
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < 12; ++key) {
      const kv::RequestId id{7, key + 1};
      const auto v = kv::make_value(id, 48 + key * 17);
      auto put = co_await sc.put(id, key, v);
      EXPECT_EQ(put.status, kv::Status::kOk) << "key " << key;
      auto get = co_await sc.get({8, key + 1}, key);
      EXPECT_EQ(get.status, kv::Status::kOk) << "key " << key;
      EXPECT_FALSE(get.degraded);
      EXPECT_EQ(get.value, v) << "key " << key;
    }
    auto miss = co_await sc.get({8, 1000}, 999);
    EXPECT_EQ(miss.status, kv::Status::kNotFound);
    done = true;
  }(rig, done);
  drive(rig.c.sched, done);

  // Every stripe's k+m units must sit on k+m distinct servers, and each
  // server must hold exactly the units the StripeMap assigns it.
  for (std::uint64_t key = 0; key < 12; ++key) {
    const auto holders = rig.stripe_map->base(rig.stripe_map->group_of(key));
    std::set<std::uint32_t> distinct;
    for (std::size_t u = 0; u < holders.size(); ++u) {
      distinct.insert(holders[u].v);
      const auto& store = rig.stores[holders[u].v]->store();
      const auto kit = store.find(key);
      ASSERT_NE(kit, store.end()) << "key " << key << " unit " << u;
      EXPECT_TRUE(kit->second.contains(static_cast<std::uint8_t>(u)));
    }
    EXPECT_EQ(distinct.size(), holders.size()) << "key " << key;
  }
}

// A holder dies; until the repair machine has re-materialised its units,
// reads must come back correct anyway — reconstructed from parity. The
// repair throttle is squeezed hard so the degraded window is wide open when
// the reads land.
TEST(KvStriped, DegradedReadsServeExactBytesMidRepair) {
  kv::KvRigConfig rc = striped_rig_config();
  rc.membership = true;
  rc.ring_per_peer = 16 * 1024;
  rc.repair.bandwidth_bytes_per_sec = 20'000;  // ~0.8 ms per 16-byte unit
  rc.repair.burst_bytes = 64;
  kv::KvRig rig(rc);

  kv::StripedShadow shadow;
  const std::size_t kKeys = 40;
  bool wrote = false;
  [](kv::KvRig& rig, kv::StripedShadow& shadow, std::size_t keys,
     bool& done) -> sim::Process {
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < keys; ++key) {
      const kv::RequestId id{7, key + 1};
      const auto v = kv::make_value(id, 64);
      shadow.record_issued(id, key, static_cast<std::uint32_t>(v.size()));
      auto put = co_await sc.put(id, key, v);
      EXPECT_EQ(put.status, kv::Status::kOk) << "key " << key;
      shadow.record_committed(id);
    }
    done = true;
  }(rig, shadow, kKeys, wrote);
  drive(rig.c.sched, wrote);

  const net::HostId victim = rig.c.hosts[3];
  rig.c.fabric().cut_host(victim);
  rig.c.sched.run_for(membership::SwimAgent::detection_bound(
                          rig.config().swim, rig.c.size()) +
                      sim::milliseconds(5));
  ASSERT_TRUE(rig.agents[0]->confirmed_dead(victim));

  bool read = false;
  [](kv::KvRig& rig, std::size_t keys, bool& done) -> sim::Process {
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < keys; ++key) {
      const kv::RequestId id{7, key + 1};
      auto get = co_await sc.get({8, key + 1}, key);
      EXPECT_EQ(get.status, kv::Status::kOk) << "key " << key;
      EXPECT_EQ(get.value, kv::make_value(id, 64)) << "key " << key;
    }
    done = true;
  }(rig, kKeys, read);
  drive(rig.c.sched, read);
  EXPECT_GT(rig.striped_client(0).stats().degraded_reads, 0u)
      << "the kill never forced a reconstruction; test proves nothing";

  // Let repair drain, then the extended audit must find every committed
  // stripe complete on live holders and exactly-once everywhere.
  rig.quiesce();
  // Live nodes must repair everything they lead without giving up. The cut
  // host's own machine is excluded: isolated, its agent confirms every peer
  // dead and it futilely queues repairs that all abandon into the void.
  std::uint64_t repaired = 0;
  for (const auto& rm : rig.repairs) {
    if (rm->host() == victim) continue;
    repaired += rm->stats().stripes_repaired;
    EXPECT_EQ(rm->stats().stripes_abandoned, 0u);
  }
  EXPECT_GT(repaired, 0u);

  const auto dead = [&rig](net::HostId h) {
    return rig.agents[0]->confirmed_dead(h);
  };
  const auto audit = kv::audit_striped(*rig.stripe_map, *rig.codec,
                                       rig.store_view(), shadow, dead);
  EXPECT_EQ(audit.committed, kKeys);
  EXPECT_EQ(audit.lost, 0u);
  EXPECT_EQ(audit.mismatched, 0u);
  EXPECT_EQ(audit.duplicated, 0u);
  EXPECT_EQ(audit.incomplete, 0u);
  EXPECT_EQ(audit.alien_units, 0u);
}

}  // namespace
}  // namespace sanfault
