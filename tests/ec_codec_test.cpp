// Property battery for the GF(256) Reed-Solomon codec and stripe placement
// (src/ec). The codec half byte-compares the table-driven fast path against
// the bitwise reference oracle on every case: field axioms, round-trip over a
// (k,m) grid, exhaustive <=m erasure patterns for small stripes, a seeded
// random battery (>=100 cases) for large ones, and mislabeled-survivor
// detection. The placement half checks distinct holders, pod spread,
// placement stability under host death (only the dead holder's unit moves),
// and cross-instance determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ec/gf256.hpp"
#include "ec/placement.hpp"
#include "ec/rs.hpp"
#include "sim/rng.hpp"

namespace sanfault {
namespace {

using ec::RsCodec;
using ec::StripeMap;
using ec::StripeMapConfig;

std::vector<std::uint8_t> random_object(sim::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

// --- GF(256) field axioms ---------------------------------------------------

TEST(Gf256, FastMultiplyMatchesSlowExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(ec::gf_mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                ec::gf_mul_slow(static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256, InverseIsExactAndMatchesSlow) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(ec::gf_mul(x, ec::gf_inv(x)), 1) << a;
    EXPECT_EQ(ec::gf_inv(x), ec::gf_inv_slow(x)) << a;
  }
}

TEST(Gf256, FieldAxiomsOnSampledTriples) {
  sim::Rng rng(0xf1e1d);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(ec::gf_mul(a, b), ec::gf_mul(b, a));
    EXPECT_EQ(ec::gf_mul(a, ec::gf_mul(b, c)), ec::gf_mul(ec::gf_mul(a, b), c));
    // Distributivity over the field's addition (xor).
    EXPECT_EQ(ec::gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              ec::gf_mul(a, b) ^ ec::gf_mul(a, c));
    EXPECT_EQ(ec::gf_mul(a, 1), a);
    EXPECT_EQ(ec::gf_mul(a, 0), 0);
  }
}

// --- codec round-trip grid --------------------------------------------------

// Every (k,m) in the grid: encode, erase a deterministic-but-varied set of
// <=m units, reconstruct, byte-compare against the original object AND
// against the reference oracle's encoding of the same stripe.
TEST(RsCodec, RoundTripGridAgainstReferenceOracle) {
  sim::Rng rng(0x9dc0de);
  for (std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    for (std::size_t m : {1u, 2u, 3u, 4u}) {
      RsCodec codec(k, m);
      const std::size_t len = 16 + rng.uniform(48);
      const auto object = random_object(rng, len);
      auto units = codec.split(object);
      auto ref_units = units;
      codec.encode(units);
      codec.encode_reference(ref_units);
      ASSERT_EQ(units, ref_units) << "k=" << k << " m=" << m;
      EXPECT_TRUE(codec.verify(units));

      // Erase m units (the worst case), biased to include parity and data.
      std::vector<bool> present(codec.n(), true);
      std::size_t erased = 0;
      while (erased < m) {
        const std::size_t victim = rng.uniform(codec.n());
        if (!present[victim]) continue;
        present[victim] = false;
        units[victim].clear();
        ++erased;
      }
      auto ref_damaged = units;
      ASSERT_TRUE(codec.reconstruct(units, present));
      ASSERT_TRUE(codec.reconstruct_reference(ref_damaged, present));
      EXPECT_EQ(units, ref_damaged);
      EXPECT_EQ(codec.join(units, object.size()), object);
    }
  }
}

TEST(RsCodec, ExhaustiveErasurePatternsSmallStripes) {
  // For k+m <= 8, walk EVERY subset of <=m erased units.
  for (const auto& [k, m] : {std::pair<std::size_t, std::size_t>{2, 2},
                            {3, 2},
                            {4, 2},
                            {4, 3},
                            {5, 3}}) {
    RsCodec codec(k, m);
    sim::Rng rng(0xe8a5e ^ (k << 8) ^ m);
    const auto object = random_object(rng, 37);
    auto clean = codec.split(object);
    codec.encode(clean);
    const std::size_t n = codec.n();
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      const auto bits = static_cast<std::size_t>(__builtin_popcount(mask));
      if (bits == 0 || bits > m) continue;
      auto units = clean;
      std::vector<bool> present(n, true);
      for (std::size_t u = 0; u < n; ++u) {
        if ((mask >> u) & 1) {
          present[u] = false;
          units[u].clear();
        }
      }
      ASSERT_TRUE(codec.reconstruct(units, present))
          << "k=" << k << " m=" << m << " mask=" << mask;
      ASSERT_EQ(units, clean) << "k=" << k << " m=" << m << " mask=" << mask;
    }
    // One erasure too many must be refused, not silently mis-decoded.
    std::vector<bool> present(n, true);
    auto units = clean;
    for (std::size_t u = 0; u <= m; ++u) {
      present[u] = false;
      units[u].clear();
    }
    EXPECT_FALSE(codec.reconstruct(units, present));
  }
}

// The ISSUE.md battery: >=100 seeded random cases across geometries, every
// one cross-checked against the reference oracle.
TEST(RsCodec, SeededRandomBattery) {
  sim::Rng rng(0xba77e51);
  int cases = 0;
  for (int i = 0; i < 120; ++i) {
    const std::size_t k = 1 + rng.uniform(12);
    const std::size_t m = 1 + rng.uniform(4);
    RsCodec codec(k, m);
    const auto object = random_object(rng, 1 + rng.uniform(300));
    auto units = codec.split(object);
    codec.encode(units);
    {
      auto ref = codec.split(object);
      codec.encode_reference(ref);
      ASSERT_EQ(units, ref) << "case " << i;
    }
    const std::size_t losses = 1 + rng.uniform(m);
    std::vector<bool> present(codec.n(), true);
    auto damaged = units;
    std::size_t erased = 0;
    while (erased < losses) {
      const std::size_t victim = rng.uniform(codec.n());
      if (!present[victim]) continue;
      present[victim] = false;
      damaged[victim].clear();
      ++erased;
    }
    auto ref_damaged = damaged;
    ASSERT_TRUE(codec.reconstruct(damaged, present)) << "case " << i;
    ASSERT_TRUE(codec.reconstruct_reference(ref_damaged, present))
        << "case " << i;
    ASSERT_EQ(damaged, units) << "case " << i;
    ASSERT_EQ(ref_damaged, units) << "case " << i;
    ASSERT_EQ(codec.join(damaged, object.size()), object) << "case " << i;
    ++cases;
  }
  EXPECT_GE(cases, 100);
}

// A stripe reassembled under the wrong unit labels (survivor bytes fed into
// the wrong rows) must not verify: recomputed parity diverges.
TEST(RsCodec, MislabeledSurvivorsDetected) {
  RsCodec codec(4, 2);
  sim::Rng rng(0x50ab);
  const auto object = random_object(rng, 64);
  auto units = codec.split(object);
  codec.encode(units);
  ASSERT_TRUE(codec.verify(units));
  auto swapped = units;
  std::swap(swapped[0], swapped[1]);
  EXPECT_FALSE(codec.verify(swapped));
  // Same through the reconstruct path: erase a parity unit, feed the decoder
  // data units under swapped labels, and check the rebuilt stripe fails
  // verify against what honest units would give.
  auto damaged = swapped;
  std::vector<bool> present(codec.n(), true);
  present[4] = false;
  damaged[4].clear();
  ASSERT_TRUE(codec.reconstruct(damaged, present));
  EXPECT_FALSE(codec.verify(damaged));
}

TEST(RsCodec, SplitJoinPaddingAndEmptyObjects) {
  RsCodec codec(4, 2);
  for (std::size_t len : {0u, 1u, 3u, 4u, 5u, 17u, 64u}) {
    sim::Rng rng(0x9add ^ len);
    const auto object = random_object(rng, len);
    auto units = codec.split(object);
    ASSERT_EQ(units.size(), codec.n());
    ASSERT_EQ(units[0].size(), codec.unit_len(len));
    for (const auto& u : units) EXPECT_EQ(u.size(), codec.unit_len(len));
    EXPECT_EQ(codec.join(units, len), object) << "len=" << len;
  }
}

// --- stripe placement -------------------------------------------------------

std::vector<net::HostId> make_servers(std::size_t n) {
  std::vector<net::HostId> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(net::HostId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

// 16 servers across 4 pods, 4 hosts each (pod-major like clos pods).
std::vector<std::uint32_t> make_pods(std::size_t n, std::size_t pods) {
  std::vector<std::uint32_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(i % pods);
  }
  return out;
}

TEST(StripeMap, BasePlacementDistinctHostsAndPodSpread) {
  StripeMapConfig cfg;  // k=4 m=2
  StripeMap map(make_servers(16), make_pods(16, 4), cfg);
  for (std::size_t g = 0; g < map.num_groups(); ++g) {
    const auto& holders = map.base(g);
    ASSERT_EQ(holders.size(), 6u);
    std::set<net::HostId> distinct(holders.begin(), holders.end());
    EXPECT_EQ(distinct.size(), holders.size()) << "group " << g;
    // 6 units over 4 pods: every pod carries at most ceil(6/4) = 2 units.
    std::map<std::uint32_t, int> per_pod;
    for (const auto h : holders) ++per_pod[static_cast<std::uint32_t>(h.v % 4)];
    for (const auto& [pod, count] : per_pod) {
      EXPECT_LE(count, 2) << "group " << g << " pod " << pod;
    }
  }
}

TEST(StripeMap, ResolveMovesOnlyTheDeadHoldersUnit) {
  StripeMap map(make_servers(16), make_pods(16, 4), StripeMapConfig{});
  for (std::size_t g = 0; g < map.num_groups(); ++g) {
    const auto base = map.base(g);
    const net::HostId victim = base[2];
    const auto dead = [victim](net::HostId h) { return h == victim; };
    const auto resolved = map.resolve(g, dead);
    ASSERT_EQ(resolved.size(), base.size());
    for (std::size_t u = 0; u < base.size(); ++u) {
      if (base[u] == victim) {
        EXPECT_NE(resolved[u], victim) << "group " << g;
        EXPECT_FALSE(dead(resolved[u]));
      } else {
        EXPECT_EQ(resolved[u], base[u]) << "group " << g << " unit " << u;
      }
    }
    std::set<net::HostId> distinct(resolved.begin(), resolved.end());
    EXPECT_EQ(distinct.size(), resolved.size());
  }
}

TEST(StripeMap, SpareLandsInUnoccupiedPodWhenPossible) {
  // 4 pods x 4 hosts, k+m = 5: the base stripe occupies 4 pods but only one
  // pod twice; killing a holder in a singly-occupied pod must pull the spare
  // from... well, all pods are occupied, so drop to k+m = 4 with 5 pods.
  StripeMapConfig cfg;
  cfg.k = 3;
  cfg.m = 1;
  StripeMap map(make_servers(20), make_pods(20, 5), cfg);
  for (std::size_t g = 0; g < map.num_groups(); ++g) {
    const auto base = map.base(g);
    std::set<std::uint32_t> base_pods;
    for (const auto h : base) {
      base_pods.insert(static_cast<std::uint32_t>(h.v % 5));
    }
    ASSERT_EQ(base_pods.size(), 4u) << "group " << g;  // 4 units, 4 pods
    const net::HostId victim = base[0];
    const auto resolved =
        map.resolve(g, [victim](net::HostId h) { return h == victim; });
    std::set<std::uint32_t> pods_after;
    for (const auto h : resolved) {
      pods_after.insert(static_cast<std::uint32_t>(h.v % 5));
    }
    // The spare must come from the one pod the surviving 3 units don't use;
    // victim's pod has no live holder, so 4 distinct pods again.
    EXPECT_EQ(pods_after.size(), 4u) << "group " << g;
  }
}

TEST(StripeMap, DeterministicAcrossInstances) {
  const StripeMap a(make_servers(16), make_pods(16, 4), StripeMapConfig{});
  const StripeMap b(make_servers(16), make_pods(16, 4), StripeMapConfig{});
  const net::HostId victim{3};
  const auto dead = [victim](net::HostId h) { return h == victim; };
  for (std::size_t g = 0; g < a.num_groups(); ++g) {
    EXPECT_EQ(a.base(g), b.base(g)) << "group " << g;
    EXPECT_EQ(a.resolve(g, dead), b.resolve(g, dead)) << "group " << g;
  }
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(a.group_of(key), b.group_of(key));
  }
}

TEST(StripeMap, GroupsCoverAllServers) {
  StripeMap map(make_servers(16), make_pods(16, 4), StripeMapConfig{});
  std::set<net::HostId> used;
  for (std::size_t g = 0; g < map.num_groups(); ++g) {
    for (const auto h : map.base(g)) used.insert(h);
  }
  // 16 groups x 6 units over 16 servers: the seeded permutations should
  // leave no server idle (load balance, not just fault tolerance).
  EXPECT_EQ(used.size(), 16u);
}

}  // namespace
}  // namespace sanfault
