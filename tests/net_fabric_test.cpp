// Tests for the dynamic fabric: timing, contention, CRC, and fault injection.
#include <gtest/gtest.h>

#include <vector>

#include "net/crc.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::net {
namespace {

struct Rx {
  std::vector<std::pair<sim::Time, Packet>> got;
  Fabric::RxHandler handler(sim::Scheduler& s) {
    return [this, &s](Packet&& p) { got.emplace_back(s.now(), std::move(p)); };
  }
};

struct FabricFixture : ::testing::Test {
  sim::Scheduler sched;
  Topology topo;
  HostId h0, h1;
  SwitchId sw;
  LinkId l0, l1;
  Rx rx0, rx1;

  FabricFixture() {
    sw = topo.add_switch(8);
    h0 = topo.add_host();
    h1 = topo.add_host();
    l0 = topo.connect({Device::host(h0), 0}, {Device::sw(sw), 0});
    l1 = topo.connect({Device::host(h1), 0}, {Device::sw(sw), 1});
  }

  Fabric make_fabric(FabricConfig cfg = {}) {
    Fabric f(sched, topo, cfg);
    f.attach(h0, rx0.handler(sched));
    f.attach(h1, rx1.handler(sched));
    return f;
  }

  static Packet data_packet(HostId src, HostId dst, Route r,
                            std::size_t payload = 0) {
    Packet p;
    p.hdr.src = src;
    p.hdr.dst = dst;
    p.hdr.type = PacketType::kData;
    p.hdr.route = std::move(r);
    p.payload.assign(payload, 0xAB);
    return p;
  }
};

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, DetectsSingleByteFlip) {
  std::vector<std::uint8_t> a(100, 7);
  auto b = a;
  b[42] ^= 0x5A;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> d(257);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<std::uint8_t>(i);
  std::uint32_t st = 0xFFFFFFFFu;
  st = crc32_update(st, std::span(d).subspan(0, 100));
  st = crc32_update(st, std::span(d).subspan(100));
  EXPECT_EQ(st ^ 0xFFFFFFFFu, crc32(d));
}

TEST_F(FabricFixture, DeliversAcrossOneSwitch) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  ASSERT_EQ(rx1.got.size(), 1u);
  EXPECT_EQ(f.stats().delivered, 1u);
  EXPECT_EQ(f.stats().delivered_corrupt, 0u);
  EXPECT_EQ(rx1.got[0].second.payload.size(), 4u);
}

TEST_F(FabricFixture, UncontendedTimingMatchesWormholeFormula) {
  Fabric f = make_fabric();
  Packet p = data_packet(h0, h1, Route{{1}}, 4);
  const std::size_t wire_bytes = p.wire_bytes();
  f.inject(h0, p);
  sched.run();
  ASSERT_EQ(rx1.got.size(), 1u);
  // link0: ser + latency to switch head... full formula:
  // start0=0; head at sw = 250+300 = 550; starts link1 at 550;
  // tail leaves link1 at 550+ser; arrives 250 later.
  const sim::Duration ser = sim::transfer_time(wire_bytes, 160.0e6);
  EXPECT_EQ(rx1.got[0].first, 550u + ser + 250u);
}

TEST_F(FabricFixture, PayloadContentSurvivesTransit) {
  Fabric f = make_fabric();
  Packet p = data_packet(h0, h1, Route{{1}});
  p.payload = {1, 2, 3, 4, 5};
  p.hdr.user.w0 = 0xDEADBEEF;
  f.inject(h0, p);
  sched.run();
  ASSERT_EQ(rx1.got.size(), 1u);
  EXPECT_EQ(rx1.got[0].second.payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(rx1.got[0].second.hdr.user.w0, 0xDEADBEEFu);
}

TEST_F(FabricFixture, SharedLinkSerializes) {
  Fabric f = make_fabric();
  // Two large packets back-to-back on the same path: second's delivery is
  // one serialization later than the first's.
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4096));
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4096));
  sched.run();
  ASSERT_EQ(rx1.got.size(), 2u);
  const sim::Duration gap = rx1.got[1].first - rx1.got[0].first;
  const sim::Duration ser =
      sim::transfer_time(data_packet(h0, h1, Route{{1}}, 4096).wire_bytes(),
                         160.0e6);
  EXPECT_EQ(gap, ser);
}

TEST_F(FabricFixture, MisrouteToUnconnectedPortDrops) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{{7}}, 4));  // port 7 unwired
  sched.run();
  EXPECT_EQ(f.stats().dropped_misroute, 1u);
  EXPECT_TRUE(rx1.got.empty());
}

TEST_F(FabricFixture, RouteExhaustedMidFabricDrops) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_misroute, 1u);
}

TEST_F(FabricFixture, LeftoverRouteBytesAtHostDrops) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{{1, 1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_misroute, 1u);
  EXPECT_TRUE(rx1.got.empty());
}

TEST_F(FabricFixture, DownLinkDropsPackets) {
  Fabric f = make_fabric();
  topo.set_link_up(l1, false);
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_link_down, 1u);
}

TEST_F(FabricFixture, DeadSwitchDropsPackets) {
  Fabric f = make_fabric();
  topo.set_switch_up(sw, false);
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_switch_dead, 1u);
}

TEST_F(FabricFixture, MidFlightLinkDeathAffectsOnlyLaterPackets) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  topo.set_link_up(l1, false);
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().delivered, 1u);
  EXPECT_EQ(f.stats().dropped_link_down, 1u);
}

TEST_F(FabricFixture, CorruptionIsDetectedByCrc) {
  Fabric f = make_fabric();
  f.link_faults(l0).corrupt_prob = 1.0;
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 64));
  sched.run();
  ASSERT_EQ(rx1.got.size(), 1u);
  EXPECT_EQ(f.stats().delivered_corrupt, 1u);
  const Packet& p = rx1.got[0].second;
  EXPECT_NE(crc32(std::span<const std::uint8_t>(p.payload)), p.crc);
}

TEST_F(FabricFixture, EmptyPayloadCorruptionUsesMarker) {
  Fabric f = make_fabric();
  f.link_faults(l0).corrupt_prob = 1.0;
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 0));
  sched.run();
  ASSERT_EQ(rx1.got.size(), 1u);
  EXPECT_TRUE(rx1.got[0].second.corrupt_marker);
  EXPECT_EQ(f.stats().delivered_corrupt, 1u);
}

TEST_F(FabricFixture, RandomLossDrops) {
  Fabric f = make_fabric();
  f.link_faults(l0).loss_prob = 1.0;
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_random, 1u);
}

TEST_F(FabricFixture, PartialLossRateIsStatistical) {
  Fabric f = make_fabric();
  f.link_faults(l0).loss_prob = 0.3;
  for (int i = 0; i < 1000; ++i) {
    f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
    sched.run();
  }
  EXPECT_NEAR(static_cast<double>(f.stats().dropped_random), 300.0, 60.0);
  EXPECT_EQ(f.stats().delivered + f.stats().dropped_random, 1000u);
}

TEST_F(FabricFixture, BlockedLinkTriggersPathResetDrop) {
  FabricConfig cfg;
  cfg.deadlock_timeout = sim::milliseconds(62);
  Fabric f = make_fabric(cfg);
  f.link_faults(l1).blocked = true;
  sim::Time dropped_at = 0;
  f.set_drop_hook([&](const Packet&, DropReason r) {
    EXPECT_EQ(r, DropReason::kPathReset);
    dropped_at = sched.now();
  });
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_path_reset, 1u);
  // Head reaches the switch at 550ns, then sits for the deadlock timeout.
  EXPECT_EQ(dropped_at, 550u + sim::milliseconds(62));
}

TEST_F(FabricFixture, UnattachedHostCountsDrop) {
  Fabric f(sched, topo, {});
  f.attach(h0, rx0.handler(sched));
  // h1 never attached.
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  EXPECT_EQ(f.stats().dropped_unattached, 1u);
}

TEST_F(FabricFixture, DropHookSeesReason) {
  Fabric f = make_fabric();
  std::vector<DropReason> reasons;
  f.set_drop_hook([&](const Packet&, DropReason r) { reasons.push_back(r); });
  topo.set_link_up(l1, false);
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], DropReason::kLinkDown);
}

TEST_F(FabricFixture, WireIdsAreUnique) {
  Fabric f = make_fabric();
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  f.inject(h0, data_packet(h0, h1, Route{{1}}, 4));
  sched.run();
  ASSERT_EQ(rx1.got.size(), 2u);
  EXPECT_NE(rx1.got[0].second.wire_id, rx1.got[1].second.wire_id);
}

TEST_F(FabricFixture, MultiHopTimingAddsPerHopLatency) {
  // h0 - sw - sw2 - h2: two switches.
  SwitchId sw2 = topo.add_switch(4);
  HostId h2 = topo.add_host();
  topo.connect({Device::sw(sw), 2}, {Device::sw(sw2), 0});
  topo.connect({Device::host(h2), 0}, {Device::sw(sw2), 1});
  Rx rx2;
  Fabric f = make_fabric();
  f.attach(h2, rx2.handler(sched));

  Packet p = data_packet(h0, h2, Route{{2, 1}}, 4);
  const sim::Duration ser = sim::transfer_time(p.wire_bytes() + 1, 160.0e6);
  (void)ser;
  f.inject(h0, p);
  sched.run();
  ASSERT_EQ(rx2.got.size(), 1u);
  // Head: 2 switch hops of (250 + 300); tail: ser of the 2-byte-route packet
  // plus final 250 propagation.
  const sim::Duration ser2 = sim::transfer_time(p.wire_bytes(), 160.0e6);
  EXPECT_EQ(rx2.got[0].first, 2 * (250u + 300u) + ser2 + 250u);
}

}  // namespace
}  // namespace sanfault::net
