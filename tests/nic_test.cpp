// Tests for the NIC model: buffer pool accounting, PIO/DMA selection, host
// DMA contention, and end-to-end transit with the raw (unreliable) firmware.
#include <gtest/gtest.h>

#include <vector>

#include "firmware/raw.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "nic/buffers.hpp"
#include "nic/nic.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::nic {
namespace {

using net::Device;
using net::HostId;
using net::Port;

TEST(BufferPool, GrantsImmediatelyWhenFree) {
  BufferPool p(2, 4096);
  int grants = 0;
  p.acquire([&] { ++grants; });
  p.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(p.free_count(), 0u);
  EXPECT_EQ(p.in_use(), 2u);
}

TEST(BufferPool, QueuesWhenExhausted) {
  BufferPool p(1, 4096);
  int grants = 0;
  p.acquire([&] { ++grants; });
  p.acquire([&] { ++grants; });
  p.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 1);
  EXPECT_EQ(p.waiting(), 2u);
  p.release();
  EXPECT_EQ(grants, 2);
  p.release();
  EXPECT_EQ(grants, 3);
  EXPECT_EQ(p.waiting(), 0u);
  EXPECT_EQ(p.free_count(), 0u);  // all buffers handed to waiters
}

TEST(BufferPool, BulkReleaseUnblocksMultiple) {
  BufferPool p(2, 4096);
  int grants = 0;
  for (int i = 0; i < 5; ++i) p.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 2);
  p.release(2);
  EXPECT_EQ(grants, 4);
  p.release(2);
  EXPECT_EQ(grants, 5);
  EXPECT_EQ(p.free_count(), 1u);
}

// Two hosts, one switch, raw firmware on both ends. Plain struct so tests
// can instantiate extra rigs with custom configs.
struct NicFixture {
  sim::Scheduler sched;
  HostId h0, h1;  // must precede topo: make_topo assigns them
  net::Topology topo;
  net::Fabric fabric;
  Nic nic0, nic1;
  firmware::RawFirmware fw0, fw1;

  struct Delivery {
    sim::Time at;
    net::UserHeader user;
    net::PayloadRef payload;
    HostId src;
  };
  std::vector<Delivery> rx0, rx1;

  static net::Topology make_topo(HostId& h0, HostId& h1) {
    net::Topology t;
    auto sw = t.add_switch(8);
    h0 = t.add_host();
    h1 = t.add_host();
    t.connect({Device::host(h0), 0}, {Device::sw(sw), 0});
    t.connect({Device::host(h1), 0}, {Device::sw(sw), 1});
    return t;
  }

  explicit NicFixture(NicConfig cfg = {})
      : topo(make_topo(h0, h1)),
        fabric(sched, topo, {}),
        nic0(sched, fabric, h0, cfg),
        nic1(sched, fabric, h1, cfg),
        fw0(nic0),
        fw1(nic1) {
    fw0.routes().populate_all(topo, h0);
    fw1.routes().populate_all(topo, h1);
    nic0.set_host_rx([this](net::UserHeader u, net::PayloadRef p,
                            HostId src) {
      rx0.push_back({sched.now(), u, std::move(p), src});
    });
    nic1.set_host_rx([this](net::UserHeader u, net::PayloadRef p,
                            HostId src) {
      rx1.push_back({sched.now(), u, std::move(p), src});
    });
  }

  SendRequest make_req(HostId dst, std::size_t bytes, std::uint64_t tag = 0) {
    SendRequest r;
    r.dst = dst;
    r.user.w0 = tag;
    r.payload.assign(bytes, static_cast<std::uint8_t>(tag));
    return r;
  }
};

struct NicBasic : ::testing::Test, NicFixture {};

TEST_F(NicBasic, SmallMessageGoesPio) {
  nic0.host_submit(make_req(h1, 4));
  sched.run();
  EXPECT_EQ(nic0.stats().pio_sends, 1u);
  EXPECT_EQ(nic0.stats().dma_sends, 0u);
  ASSERT_EQ(rx1.size(), 1u);
}

TEST_F(NicBasic, LargeMessageGoesDma) {
  nic0.host_submit(make_req(h1, 2048));
  sched.run();
  EXPECT_EQ(nic0.stats().pio_sends, 0u);
  EXPECT_EQ(nic0.stats().dma_sends, 1u);
  ASSERT_EQ(rx1.size(), 1u);
  EXPECT_EQ(rx1[0].payload.size(), 2048u);
}

TEST_F(NicBasic, PioThresholdBoundary) {
  nic0.host_submit(make_req(h1, 32));
  nic0.host_submit(make_req(h1, 33));
  sched.run();
  EXPECT_EQ(nic0.stats().pio_sends, 1u);
  EXPECT_EQ(nic0.stats().dma_sends, 1u);
}

TEST_F(NicBasic, FourByteLatencyMatchesNoFtCalibration) {
  nic0.host_submit(make_req(h1, 4));
  sched.run();
  ASSERT_EQ(rx1.size(), 1u);
  const double us = sim::to_micros(rx1[0].at);
  // Paper: highly-optimized base latency is about 8 us for 4-byte messages.
  EXPECT_GT(us, 7.0);
  EXPECT_LT(us, 9.0);
}

TEST_F(NicBasic, PayloadAndHeaderArriveIntact) {
  SendRequest r = make_req(h1, 16, 0x42);
  r.user.w1 = 0x1234;
  nic0.host_submit(std::move(r));
  sched.run();
  ASSERT_EQ(rx1.size(), 1u);
  EXPECT_EQ(rx1[0].user.w0, 0x42u);
  EXPECT_EQ(rx1[0].user.w1, 0x1234u);
  EXPECT_EQ(rx1[0].src, h0);
  EXPECT_EQ(rx1[0].payload, std::vector<std::uint8_t>(16, 0x42));
}

TEST_F(NicBasic, ManyMessagesAllArriveInOrder) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    nic0.host_submit(make_req(h1, 64, i));
  }
  sched.run();
  ASSERT_EQ(rx1.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(rx1[i].user.w0, i);
  }
}

TEST_F(NicBasic, BidirectionalTrafficWorks) {
  nic0.host_submit(make_req(h1, 128, 1));
  nic1.host_submit(make_req(h0, 128, 2));
  sched.run();
  ASSERT_EQ(rx1.size(), 1u);
  ASSERT_EQ(rx0.size(), 1u);
  EXPECT_EQ(rx1[0].user.w0, 1u);
  EXPECT_EQ(rx0[0].user.w0, 2u);
}

TEST_F(NicBasic, NoRouteDropsAndRecyclesBuffer) {
  fw0.routes().invalidate(h1);
  nic0.host_submit(make_req(h1, 4));
  sched.run();
  EXPECT_EQ(fw0.stats().no_route_dropped, 1u);
  EXPECT_EQ(nic0.send_pool().free_count(), nic0.send_pool().capacity());
  EXPECT_TRUE(rx1.empty());
}

TEST_F(NicBasic, RawFirmwareDropsCorruptPackets) {
  auto [pa, pb] = topo.link_ends(net::LinkId{0});
  (void)pa;
  (void)pb;
  fabric.link_faults(net::LinkId{0}).corrupt_prob = 1.0;
  nic0.host_submit(make_req(h1, 256));
  sched.run();
  EXPECT_EQ(fw1.stats().corrupt_dropped, 1u);
  EXPECT_EQ(nic1.stats().crc_failures, 1u);
  EXPECT_TRUE(rx1.empty());
}

TEST_F(NicBasic, SendBuffersRecycleUnderLoad) {
  // Raw firmware frees buffers at injection, so even a tiny pool of 2 must
  // drain an arbitrarily long stream.
  NicConfig small;
  small.send_buffers = 2;
  // Build a fresh rig with the small pool.
  struct SmallRig : NicFixture {
    SmallRig() : NicFixture(make_cfg()) {}
    static NicConfig make_cfg() {
      NicConfig c;
      c.send_buffers = 2;
      return c;
    }
  } rig;
  for (int i = 0; i < 40; ++i) rig.nic0.host_submit(rig.make_req(rig.h1, 512));
  rig.sched.run();
  EXPECT_EQ(rig.rx1.size(), 40u);
  EXPECT_EQ(rig.nic0.send_pool().free_count(), 2u);
}

TEST_F(NicBasic, LargeStreamApproachesPciBandwidth) {
  // 256 x 4 KB segments, unidirectional. Delivered bandwidth should be
  // PCI-bound near 120 MB/s (paper's large-message plateau).
  const int n = 256;
  for (int i = 0; i < n; ++i) nic0.host_submit(make_req(h1, 4096));
  sched.run();
  ASSERT_EQ(rx1.size(), static_cast<std::size_t>(n));
  const double secs = sim::to_seconds(rx1.back().at);
  const double mbps = (static_cast<double>(n) * 4096.0 / secs) / 1e6;
  EXPECT_GT(mbps, 105.0);
  EXPECT_LT(mbps, 135.0);
}

TEST_F(NicBasic, NicCpuIsASharedSerialResource) {
  // Submitting two packets at once: the second's firmware handling waits for
  // the first's CPU occupancy. We can't observe handler times directly, but
  // the CPU's busy_time must equal 2 x mcp_tx (+ rx side on nic1).
  nic0.host_submit(make_req(h1, 4));
  nic0.host_submit(make_req(h1, 4));
  sched.run();
  EXPECT_EQ(nic0.cpu().busy_time(), 2 * nic0.costs().mcp_tx);
  EXPECT_EQ(nic1.cpu().busy_time(), 2 * nic1.costs().mcp_rx);
}

}  // namespace
}  // namespace sanfault::nic
