// Unit tests for the RNG and statistics utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace sanfault::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng root(99);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
  EXPECT_EQ(r.uniform(0), 0u);
  EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.001);
  EXPECT_NEAR(hits, 100, 60);  // ~6 sigma
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(42);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0.0);
}

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(1ull << 63), 64u);
}

TEST(Log2Histogram, QuantileIsMonotone) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_LE(h.approx_quantile(0.5), h.approx_quantile(0.99));
  EXPECT_GE(h.approx_quantile(0.99), 512u);
}

TEST(Log2Histogram, CountsSamples) {
  Log2Histogram h;
  h.add(5);
  h.add(6);
  h.add(7);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(3), 3u);  // 4..7 land in bucket 3
}

}  // namespace
}  // namespace sanfault::sim
