// Unit tests for the sender-based ACK-frequency policy (§4.1.2, third
// optimization), pinned at the free-buffer boundaries: {0, 1, threshold-1,
// threshold, max} for both watermarks, plus the degenerate capacities where
// the derived intervals collapse to 1.
#include <gtest/gtest.h>

#include "firmware/ack_policy.hpp"

namespace sanfault::firmware {
namespace {

// Default config, capacity 16: low watermark 0.25 => free < 4 is "scarce"
// (interval 1), high watermark 0.75 => free < 12 is "moderate" (interval
// 16/8 = 2), free >= 12 is "plentiful" (interval 16/2 = 8).
constexpr std::size_t kCap = 16;

TEST(AckPolicy, ScarceBuffersRequestOnEveryPacket) {
  AckPolicy p;
  for (std::size_t free : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    EXPECT_TRUE(p.should_request(free, kCap, 0)) << "free=" << free;
  }
}

TEST(AckPolicy, LowWatermarkBoundaryFlipsToModerateInterval) {
  AckPolicy p;
  // free = 3 (threshold - 1): frac 0.1875 < 0.25 => every packet.
  EXPECT_TRUE(p.should_request(3, kCap, 0));
  // free = 4 (threshold): frac 0.25 is NOT below the watermark => interval 2.
  EXPECT_FALSE(p.should_request(4, kCap, 0));
  EXPECT_TRUE(p.should_request(4, kCap, 1));
}

TEST(AckPolicy, HighWatermarkBoundaryFlipsToPlentifulInterval) {
  AckPolicy p;
  // free = 11 (threshold - 1): frac 0.6875 < 0.75 => interval q/8 = 2.
  EXPECT_FALSE(p.should_request(11, kCap, 0));
  EXPECT_TRUE(p.should_request(11, kCap, 1));
  // free = 12 (threshold): frac 0.75 => interval q/2 = 8.
  for (std::uint32_t since = 0; since < 7; ++since) {
    EXPECT_FALSE(p.should_request(12, kCap, since)) << "since=" << since;
  }
  EXPECT_TRUE(p.should_request(12, kCap, 7));
}

TEST(AckPolicy, MaxFreeBuffersUseTheLongestInterval) {
  AckPolicy p;
  EXPECT_FALSE(p.should_request(kCap, kCap, 6));
  EXPECT_TRUE(p.should_request(kCap, kCap, 7));
  // The interval never exceeds q/2 no matter how long the history.
  EXPECT_TRUE(p.should_request(kCap, kCap, 100));
}

TEST(AckPolicy, ZeroCapacityDegeneratesToAlwaysRequest) {
  // capacity == 0 means no buffer feedback signal at all; the policy must
  // fail safe (every packet requests an ACK) rather than divide by zero.
  AckPolicy p;
  EXPECT_TRUE(p.should_request(0, 0, 0));
}

TEST(AckPolicy, TinyCapacitiesClampIntervalsToOne) {
  AckPolicy p;
  // capacity 1, free 1: frac 1.0 is plentiful, but q/2 = 0 clamps to 1.
  EXPECT_TRUE(p.should_request(1, 1, 0));
  // capacity 4, free 2: frac 0.5 is moderate, q/8 = 0 clamps to 1.
  EXPECT_TRUE(p.should_request(2, 4, 0));
  // capacity 4, free 4: plentiful, q/2 = 2.
  EXPECT_FALSE(p.should_request(4, 4, 0));
  EXPECT_TRUE(p.should_request(4, 4, 1));
}

TEST(AckPolicy, CustomWatermarksMoveTheBoundaries) {
  AckPolicyConfig cfg;
  cfg.low_watermark = 0.5;
  cfg.high_watermark = 0.875;
  AckPolicy p(cfg);
  // free = 7 (< 8 = 0.5 * 16): scarce.
  EXPECT_TRUE(p.should_request(7, kCap, 0));
  // free = 8: moderate (interval 2).
  EXPECT_FALSE(p.should_request(8, kCap, 0));
  EXPECT_TRUE(p.should_request(8, kCap, 1));
  // free = 14 (0.875 * 16): plentiful (interval 8).
  EXPECT_FALSE(p.should_request(14, kCap, 6));
  EXPECT_TRUE(p.should_request(14, kCap, 7));
}

TEST(AckPolicy, MonotoneInSinceLastRequest) {
  // Once the policy requests at `since`, it requests for every larger value
  // too — the feedback bit can be delayed but never un-asked.
  AckPolicy p;
  for (std::size_t free = 0; free <= kCap; ++free) {
    bool requested = false;
    for (std::uint32_t since = 0; since < 2 * kCap; ++since) {
      const bool now = p.should_request(free, kCap, since);
      EXPECT_TRUE(now || !requested) << "free=" << free << " since=" << since;
      requested |= now;
    }
    EXPECT_TRUE(requested);
  }
}

}  // namespace
}  // namespace sanfault::firmware
