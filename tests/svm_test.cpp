// Tests for the home-based SVM runtime: page fetch/write-back correctness,
// barrier and lock semantics, time-category accounting, and survival under
// injected network errors.
#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.hpp"
#include "svm/runtime.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

ClusterConfig cluster_cfg(std::size_t nodes = 4) {
  ClusterConfig cfg;
  cfg.num_hosts = nodes;
  cfg.fw = FirmwareKind::kReliable;
  return cfg;
}

TEST(Svm, SetupCreatesProcsAcrossNodes) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  EXPECT_EQ(rt.num_procs(), 8);
  EXPECT_EQ(rt.proc(0).node(), 0u);
  EXPECT_EQ(rt.proc(1).node(), 0u);
  EXPECT_EQ(rt.proc(2).node(), 1u);
  EXPECT_EQ(rt.proc(7).node(), 3u);
}

TEST(Svm, HomeDistributionCoversAllNodes) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  auto r = rt.create_region(16 * 4096);
  std::vector<int> counts(4, 0);
  for (std::uint32_t p = 0; p < 16; ++p) {
    ++counts[rt.home_of_page(r, p)];
  }
  for (int n = 0; n < 4; ++n) EXPECT_EQ(counts[n], 4) << "node " << n;
}

TEST(Svm, RemoteWriteThenReadSeesData) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  auto r = rt.create_region(16 * 4096);
  // Proc 0 (node 0) writes a pattern into pages homed on node 3, then all
  // barrier; proc 6 (node 3) verifies.
  bool verified = false;
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    if (p.id() == 0) {
      auto span = co_await p.acquire(r, 12 * 4096, 4096);
      for (std::size_t i = 0; i < 4096; ++i) {
        span[i] = static_cast<std::uint8_t>(i * 3);
      }
      p.mark_dirty(r, 12 * 4096, 4096);
    }
    co_await p.barrier();
    if (p.id() == 6) {
      auto span = co_await p.acquire(r, 12 * 4096, 4096);
      bool ok = true;
      for (std::size_t i = 0; i < 4096; ++i) {
        ok = ok && span[i] == static_cast<std::uint8_t>(i * 3);
      }
      verified = ok;
    }
    co_await p.barrier();
  });
  EXPECT_TRUE(verified);
  EXPECT_GT(rt.stats().page_fetches, 0u);
  EXPECT_GT(rt.stats().write_backs, 0u);
}

TEST(Svm, BarrierIsABarrier) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  std::vector<sim::Time> before(8), after(8);
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    // Stagger arrivals.
    co_await p.compute(sim::microseconds(static_cast<std::uint64_t>(
        10 * (p.id() + 1))));
    before[static_cast<std::size_t>(p.id())] = c.sched.now();
    co_await p.barrier();
    after[static_cast<std::size_t>(p.id())] = c.sched.now();
  });
  const sim::Time max_before = *std::max_element(before.begin(), before.end());
  const sim::Time min_after = *std::min_element(after.begin(), after.end());
  EXPECT_GE(min_after, max_before);
}

TEST(Svm, BarriersAreReusable) {
  Cluster c(cluster_cfg(2));
  svm::Runtime rt(c, {}, 2);
  int rounds_done = 0;
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await p.barrier();
      if (p.id() == 0) ++rounds_done;
    }
  });
  EXPECT_EQ(rounds_done, 5);
  EXPECT_EQ(rt.stats().barriers, 5u);
}

TEST(Svm, LocksProvideMutualExclusion) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  bool in_cs = false;
  bool violation = false;
  int entries = 0;
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await p.lock(7);
      if (in_cs) violation = true;
      in_cs = true;
      ++entries;
      co_await p.compute(sim::microseconds(5));
      in_cs = false;
      co_await p.unlock(7);
    }
  });
  EXPECT_FALSE(violation);
  EXPECT_EQ(entries, 32);
}

TEST(Svm, ManyLocksAreIndependent) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  // Each proc uses its own lock: no contention, all complete quickly.
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await p.lock(static_cast<std::uint32_t>(100 + p.id()));
      co_await p.unlock(static_cast<std::uint32_t>(100 + p.id()));
    }
  });
  EXPECT_EQ(rt.stats().lock_requests, 64u);
}

TEST(Svm, PageCachingAvoidsRefetchUntilBarrier) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  auto r = rt.create_region(16 * 4096);
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    if (p.id() == 0) {
      (void)co_await p.acquire(r, 12 * 4096, 4096);  // remote: fetch
      (void)co_await p.acquire(r, 12 * 4096, 4096);  // cached: no fetch
    }
    co_await p.barrier();
    if (p.id() == 0) {
      (void)co_await p.acquire(r, 12 * 4096, 4096);  // invalidated: fetch
    }
    co_await p.barrier();
  });
  EXPECT_EQ(rt.stats().page_fetches, 2u);
  EXPECT_GE(rt.stats().local_page_hits, 1u);
}

TEST(Svm, TimeCategoriesAccumulateWhereExpected) {
  Cluster c(cluster_cfg());
  svm::Runtime rt(c, {}, 2);
  auto r = rt.create_region(16 * 4096);
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    co_await p.compute(sim::microseconds(50));
    if (p.node() != 3) {
      (void)co_await p.acquire(r, 13 * 4096, 4096);  // homed on node 3
    }
    co_await p.lock(1);
    co_await p.unlock(1);
    co_await p.barrier();
  });
  for (int i = 0; i < 8; ++i) {
    auto& t = rt.proc(i).times();
    EXPECT_GE(t.compute, sim::microseconds(50)) << "proc " << i;
    EXPECT_GT(t.barrier, 0u) << "proc " << i;
    EXPECT_GT(t.lock, 0u) << "proc " << i;
    if (rt.proc(i).node() != 3) EXPECT_GT(t.data, 0u) << "proc " << i;
  }
}

TEST(Svm, SurvivesInjectedDropsWithCorrectData) {
  auto cfg = cluster_cfg();
  cfg.rel.drop_interval = 10;
  Cluster c(cfg);
  svm::Runtime rt(c, {}, 2);
  auto r = rt.create_region(32 * 4096);
  bool all_ok = true;
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    // Each proc fills its slice (4 pages), everyone barriers, then each
    // proc verifies the next proc's slice.
    const std::size_t slice = 4 * 4096;
    const std::size_t mine = static_cast<std::size_t>(p.id()) * slice;
    auto span = co_await p.acquire(r, mine, slice);
    for (std::size_t i = 0; i < slice; ++i) {
      span[i] = static_cast<std::uint8_t>(i + static_cast<std::size_t>(p.id()));
    }
    p.mark_dirty(r, mine, slice);
    co_await p.barrier();
    const auto nxt = static_cast<std::size_t>((p.id() + 1) % 8);
    auto peer = co_await p.acquire(r, nxt * slice, slice);
    for (std::size_t i = 0; i < slice; ++i) {
      if (peer[i] != static_cast<std::uint8_t>(i + nxt)) {
        all_ok = false;
        break;
      }
    }
    co_await p.barrier();
  });
  EXPECT_TRUE(all_ok);
  EXPECT_GT(c.rel(0).stats().injected_drops +
                c.rel(1).stats().injected_drops +
                c.rel(2).stats().injected_drops +
                c.rel(3).stats().injected_drops,
            0u);
}

TEST(Svm, ContendedRemoteLockQueuesFairly) {
  Cluster c(cluster_cfg(2));
  svm::Runtime rt(c, {}, 1);
  std::vector<int> order;
  rt.run([&](svm::Proc& p) -> sim::Task<void> {
    // Lock 1 homed on node 1; both procs contend 3 times each.
    for (int i = 0; i < 3; ++i) {
      co_await p.lock(1);
      order.push_back(p.id());
      co_await p.compute(sim::microseconds(20));
      co_await p.unlock(1);
      co_await p.compute(sim::microseconds(1));
    }
  });
  EXPECT_EQ(order.size(), 6u);
  EXPECT_GT(rt.stats().remote_lock_requests, 0u);
}

}  // namespace
}  // namespace sanfault
