// Unit tests for the conservative parallel scheduler (sim/parallel_scheduler)
// and its SPSC event channel: safe-window causality, canonical merge order,
// control-queue global sync, and the determinism contract across worker
// thread counts. Whole-stack serial-vs-parallel equivalence lives in
// parallel_equiv_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/parallel_scheduler.hpp"
#include "sim/spsc.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {
namespace {

TEST(SpscQueue, FifoAndEmpty) {
  SpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(ParallelScheduler, SinglePartitionRunsLikeSerial) {
  ParallelScheduler eng({/*partitions=*/1});
  std::vector<int> order;
  eng.local(0).at(30, [&] { order.push_back(3); });
  eng.local(0).at(10, [&] { order.push_back(1); });
  eng.local(0).at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.local(0).now(), 30u);
  EXPECT_EQ(eng.stats().events_executed, 3u);
}

TEST(ParallelScheduler, RunUntilAdvancesEveryClockToCap) {
  ParallelScheduler eng({/*partitions=*/3});
  eng.local(1).at(100, [] {});
  eng.run_until(5000);
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(eng.local(p).now(), 5000u) << "partition " << p;
  }
  EXPECT_EQ(eng.control().now(), 5000u);
}

TEST(ParallelScheduler, CrossPartitionPostArrivesAtRequestedTime) {
  ParallelScheduler eng({/*partitions=*/2});
  Time seen = kNever;
  eng.local(0).at(10, [&] {
    eng.post(0, 1, 10 + 7, [&] { seen = eng.local(1).now(); });
  });
  eng.run();
  EXPECT_EQ(seen, 17u);
  EXPECT_EQ(eng.stats().messages, 1u);
}

TEST(ParallelScheduler, LookaheadViolationThrows) {
  // Worker exceptions are captured at the next barrier and rethrown by
  // run(), regardless of which worker thread hit them.
  ParallelScheduler eng({/*partitions=*/2, /*threads=*/0, /*min_lookahead=*/5});
  eng.local(0).at(10, [&] {
    eng.post(0, 1, 12, [] {});  // needs t >= 15
  });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(ParallelScheduler, UncoupledPairRejectsPosts) {
  ParallelScheduler eng({/*partitions=*/2, /*threads=*/1});
  eng.set_lookahead(0, 1, kNever);
  eng.local(0).at(10, [&] { eng.post(0, 1, 10'000'000, [] {}); });
  EXPECT_THROW(eng.run(), std::logic_error);
}

// A relay ring: each hop records (partition, time) and forwards to the next
// partition. Exercises chained cross-partition causality over many windows.
struct Relay {
  ParallelScheduler* eng;
  std::vector<std::vector<std::pair<Time, int>>> log;  // per partition

  explicit Relay(ParallelScheduler* e) : eng(e), log(e->partitions()) {}

  void hop(std::uint32_t p, int ttl, int id) {
    log[p].emplace_back(eng->local(p).now(), id);
    if (ttl == 0) return;
    const std::uint32_t q = (p + 1) % eng->partitions();
    eng->post(p, q, eng->local(p).now() + 7,
              [this, q, ttl, id] { hop(q, ttl - 1, id); });
  }
};

TEST(ParallelScheduler, RelayRingCompletesInCausalOrder) {
  ParallelScheduler eng({/*partitions=*/4});
  Relay relay(&eng);
  for (int id = 0; id < 8; ++id) {
    const auto p = static_cast<std::uint32_t>(id) % 4;
    eng.post(ParallelScheduler::kControl, p, static_cast<Time>(1 + id),
             [&relay, p, id] { relay.hop(p, 40, id); });
  }
  eng.run();
  // 8 tokens x 41 hops, each recorded exactly once.
  std::size_t hops = 0;
  for (const auto& part_log : relay.log) {
    Time prev = 0;
    for (const auto& [t, id] : part_log) {
      EXPECT_GE(t, prev);  // per-partition execution is time-ordered
      prev = t;
    }
    hops += part_log.size();
  }
  EXPECT_EQ(hops, 8u * 41u);
  EXPECT_GT(eng.stats().windows, 1u);
}

std::vector<std::vector<std::pair<Time, int>>> run_relay(
    std::uint32_t threads) {
  ParallelScheduler eng({/*partitions=*/4, threads});
  Relay relay(&eng);
  for (int id = 0; id < 8; ++id) {
    const auto p = static_cast<std::uint32_t>(id) % 4;
    eng.post(ParallelScheduler::kControl, p, static_cast<Time>(1 + id),
             [&relay, p, id] { relay.hop(p, 40, id); });
  }
  eng.run();
  return std::move(relay.log);
}

TEST(ParallelScheduler, BitIdenticalAcrossWorkerThreadCounts) {
  const auto base = run_relay(1);
  EXPECT_EQ(run_relay(2), base);
  EXPECT_EQ(run_relay(4), base);
  EXPECT_EQ(run_relay(8), base);  // more threads than partitions: clamped
}

TEST(ParallelScheduler, ControlEventsRunAtGlobalSyncPoints) {
  ParallelScheduler eng({/*partitions=*/2});
  int shared = 0;  // mutated ONLY by the control event
  std::vector<int> seen_p0, seen_p1;
  for (Time t : {10u, 20u, 30u, 40u}) {
    eng.local(0).at(t, [&] { seen_p0.push_back(shared); });
    eng.local(1).at(t + 1, [&] { seen_p1.push_back(shared); });
  }
  eng.control().at(25, [&] {
    // Every partition is parked with its clock synchronized below us.
    EXPECT_LE(eng.local(0).now(), 25u);
    EXPECT_LE(eng.local(1).now(), 25u);
    shared = 1;
  });
  eng.run();
  EXPECT_EQ(seen_p0, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(seen_p1, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(eng.stats().control_events, 1u);
}

TEST(ParallelScheduler, ControlEventCanPostIntoPartitions) {
  ParallelScheduler eng({/*partitions=*/2});
  Time seen = kNever;
  eng.local(0).at(100, [] {});  // keeps partition 0 alive past the post
  eng.control().at(50, [&] {
    eng.post(ParallelScheduler::kControl, 0, 60,
             [&] { seen = eng.local(0).now(); });
  });
  eng.run();
  EXPECT_EQ(seen, 60u);
}

TEST(ParallelScheduler, StopPredicateEndsRunAtWindowBoundary) {
  ParallelScheduler eng({/*partitions=*/2});
  // Both partitions hold events, so the 1-ns pair lookahead keeps windows
  // narrow and the predicate (checked at each sync point) fires early.
  int executed0 = 0;
  int executed1 = 0;
  for (Time t = 1; t <= 1000; ++t) {
    eng.local(0).at(t, [&] { ++executed0; });
    eng.local(1).at(t, [&] { ++executed1; });
  }
  eng.set_stop_predicate([&] { return executed0 >= 10; });
  eng.run();
  EXPECT_GE(executed0, 10);
  EXPECT_LT(executed0, 1000);
  EXPECT_LT(executed1, 1000);
}

TEST(ParallelScheduler, SequentialRunUntilCallsCompose) {
  ParallelScheduler eng({/*partitions=*/2});
  std::vector<Time> fired;
  eng.local(0).at(100, [&] { fired.push_back(100); });
  eng.local(1).at(900, [&] { fired.push_back(900); });
  eng.run_until(500);
  EXPECT_EQ(fired, (std::vector<Time>{100}));
  EXPECT_EQ(eng.local(1).now(), 500u);
  eng.run_until(1000);
  EXPECT_EQ(fired, (std::vector<Time>{100, 900}));
}

}  // namespace
}  // namespace sanfault::sim
