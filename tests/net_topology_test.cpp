// Unit tests for the static network graph: wiring, routes, failure state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/partition.hpp"
#include "net/topology.hpp"

namespace sanfault::net {
namespace {

// Two hosts on one 8-port crossbar.
struct PairFixture {
  Topology topo;
  HostId h0, h1;
  SwitchId sw;
  LinkId l0, l1;

  PairFixture() {
    sw = topo.add_switch(8);
    h0 = topo.add_host();
    h1 = topo.add_host();
    l0 = topo.connect({Device::host(h0), 0}, {Device::sw(sw), 0});
    l1 = topo.connect({Device::host(h1), 0}, {Device::sw(sw), 1});
  }
};

TEST(Topology, CountsEntities) {
  PairFixture f;
  EXPECT_EQ(f.topo.num_hosts(), 2u);
  EXPECT_EQ(f.topo.num_switches(), 1u);
  EXPECT_EQ(f.topo.num_links(), 2u);
  EXPECT_EQ(f.topo.switch_ports(f.sw), 8);
}

TEST(Topology, PeerOfFollowsLinks) {
  PairFixture f;
  auto att = f.topo.peer_of({Device::host(f.h0), 0});
  ASSERT_TRUE(att.has_value());
  EXPECT_EQ(att->peer.dev, Device::sw(f.sw));
  EXPECT_EQ(att->peer.port, 0);
  EXPECT_EQ(att->link, f.l0);

  auto back = f.topo.peer_of(att->peer);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->peer.dev, Device::host(f.h0));
}

TEST(Topology, UnwiredPortHasNoPeer) {
  PairFixture f;
  EXPECT_FALSE(f.topo.peer_of({Device::sw(f.sw), 7}).has_value());
}

TEST(Topology, DoubleConnectThrows) {
  PairFixture f;
  HostId h2 = f.topo.add_host();
  EXPECT_THROW(
      f.topo.connect({Device::host(h2), 0}, {Device::sw(f.sw), 0}),
      std::logic_error);
}

TEST(Topology, HostSecondPortThrows) {
  Topology t;
  HostId h = t.add_host();
  SwitchId s = t.add_switch(4);
  EXPECT_THROW(t.connect({Device::host(h), 1}, {Device::sw(s), 0}),
               std::out_of_range);
}

TEST(Topology, ShortestRouteOneSwitch) {
  PairFixture f;
  auto r = f.topo.shortest_route(f.h0, f.h1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ports, (std::vector<std::uint8_t>{1}));  // out port toward h1
}

TEST(Topology, ShortestRouteToSelfIsEmpty) {
  PairFixture f;
  auto r = f.topo.shortest_route(f.h0, f.h0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(Topology, RouteAcrossTwoSwitches) {
  Topology t;
  SwitchId s0 = t.add_switch(4);
  SwitchId s1 = t.add_switch(4);
  HostId a = t.add_host();
  HostId b = t.add_host();
  t.connect({Device::host(a), 0}, {Device::sw(s0), 0});
  t.connect({Device::sw(s0), 3}, {Device::sw(s1), 2});
  t.connect({Device::host(b), 0}, {Device::sw(s1), 1});
  auto r = t.shortest_route(a, b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ports, (std::vector<std::uint8_t>{3, 1}));
}

TEST(Topology, RouteAvoidsDownLink) {
  // Two disjoint switch paths between a and b; kill the short one.
  Topology t;
  SwitchId s0 = t.add_switch(4);   // direct switch
  SwitchId s1 = t.add_switch(4);   // detour
  SwitchId s2 = t.add_switch(4);
  HostId a = t.add_host();
  HostId b = t.add_host();
  t.connect({Device::host(a), 0}, {Device::sw(s0), 0});
  t.connect({Device::host(b), 0}, {Device::sw(s0), 1});
  LinkId direct = t.connect({Device::sw(s0), 2}, {Device::sw(s1), 0});
  t.connect({Device::sw(s1), 1}, {Device::sw(s2), 0});

  auto r1 = t.shortest_route(a, b);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->hops(), 1u);  // same switch

  // Unused here, but exercise link-down observation:
  t.set_link_up(direct, false);
  EXPECT_FALSE(t.link_up(direct));
}

TEST(Topology, RouteAvoidsDeadSwitch) {
  // a - s0 - b and a parallel path a - s0 - s1 - s2 - s0'? Build a square:
  // h0 - sA - sB - h1 and h0 - sA - sC - sB (redundant).
  Topology t;
  SwitchId sA = t.add_switch(4);
  SwitchId sB = t.add_switch(4);
  SwitchId sC = t.add_switch(4);
  HostId h0 = t.add_host();
  HostId h1 = t.add_host();
  t.connect({Device::host(h0), 0}, {Device::sw(sA), 0});
  t.connect({Device::host(h1), 0}, {Device::sw(sB), 0});
  t.connect({Device::sw(sA), 1}, {Device::sw(sB), 1});   // direct
  t.connect({Device::sw(sA), 2}, {Device::sw(sC), 0});   // detour
  t.connect({Device::sw(sC), 1}, {Device::sw(sB), 2});

  auto direct = t.shortest_route(h0, h1);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->hops(), 2u);

  // Kill nothing on the direct path — dead sC must not matter.
  t.set_switch_up(sC, false);
  EXPECT_EQ(t.shortest_route(h0, h1)->hops(), 2u);
  t.set_switch_up(sC, true);

  // Now force the detour by downing the direct link.
  auto att = t.peer_of({Device::sw(sA), 1});
  ASSERT_TRUE(att.has_value());
  t.set_link_up(att->link, false);
  auto detour = t.shortest_route(h0, h1);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->hops(), 3u);
  EXPECT_EQ(detour->ports, (std::vector<std::uint8_t>{2, 1, 0}));

  // Kill the detour switch too: unreachable.
  t.set_switch_up(sC, false);
  EXPECT_FALSE(t.shortest_route(h0, h1).has_value());
}

TEST(Topology, DisconnectUnplugsBothEnds) {
  PairFixture f;
  f.topo.disconnect(f.l1);
  EXPECT_FALSE(f.topo.peer_of({Device::host(f.h1), 0}).has_value());
  EXPECT_FALSE(f.topo.shortest_route(f.h0, f.h1).has_value());
  // Port 1 is free again: reconnect elsewhere.
  LinkId nl = f.topo.connect({Device::host(f.h1), 0}, {Device::sw(f.sw), 5});
  EXPECT_TRUE(f.topo.link_up(nl));
  auto r = f.topo.shortest_route(f.h0, f.h1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ports, (std::vector<std::uint8_t>{5}));
}

TEST(Topology, TraceRouteFollowsPorts) {
  PairFixture f;
  auto dev = f.topo.trace_route(f.h0, Route{{1}});
  ASSERT_TRUE(dev.has_value());
  EXPECT_EQ(*dev, Device::host(f.h1));
}

TEST(Topology, TraceRouteDetectsMisroutes) {
  PairFixture f;
  // Leftover route bytes after reaching a host.
  EXPECT_FALSE(f.topo.trace_route(f.h0, Route{{1, 3}}).has_value());
  // Route exhausted at the switch.
  EXPECT_FALSE(f.topo.trace_route(f.h0, Route{}).has_value());
  // Unconnected output port.
  EXPECT_FALSE(f.topo.trace_route(f.h0, Route{{6}}).has_value());
  // Port number beyond the crossbar radix.
  EXPECT_FALSE(f.topo.trace_route(f.h0, Route{{200}}).has_value());
}

// --- up-state-aware tracing and disjoint backup routes ----------------------

TEST(Topology, TraceRouteUpRequiresLiveElements) {
  // h0 - sA - sB - h1 direct, plus a detour through sC.
  Topology t;
  SwitchId sA = t.add_switch(4);
  SwitchId sB = t.add_switch(4);
  SwitchId sC = t.add_switch(4);
  HostId h0 = t.add_host();
  HostId h1 = t.add_host();
  t.connect({Device::host(h0), 0}, {Device::sw(sA), 0});
  t.connect({Device::host(h1), 0}, {Device::sw(sB), 0});
  LinkId direct = t.connect({Device::sw(sA), 1}, {Device::sw(sB), 1});
  t.connect({Device::sw(sA), 2}, {Device::sw(sC), 0});
  t.connect({Device::sw(sC), 1}, {Device::sw(sB), 2});

  const Route r{{1, 0}};  // h0 -> sA -> sB -> h1 over the direct trunk
  auto end = t.trace_route_up(h0, r);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, Device::host(h1));

  // A dead link anywhere on the walk voids it (trace_route still follows
  // the wiring — up-state is this variant's whole point).
  t.set_link_up(direct, false);
  EXPECT_FALSE(t.trace_route_up(h0, r).has_value());
  EXPECT_TRUE(t.trace_route(h0, r).has_value());
  t.set_link_up(direct, true);

  // A dead switch voids it too.
  t.set_switch_up(sB, false);
  EXPECT_FALSE(t.trace_route_up(h0, r).has_value());
}

TEST(Topology, DisjointRouteFindsNodeDisjointDetour) {
  Topology t;
  SwitchId sA = t.add_switch(4);
  SwitchId sB = t.add_switch(4);
  SwitchId sC = t.add_switch(4);
  HostId h0 = t.add_host();
  HostId h1 = t.add_host();
  t.connect({Device::host(h0), 0}, {Device::sw(sA), 0});
  t.connect({Device::host(h1), 0}, {Device::sw(sB), 0});
  t.connect({Device::sw(sA), 1}, {Device::sw(sB), 1});  // direct
  t.connect({Device::sw(sA), 2}, {Device::sw(sC), 0});  // detour
  t.connect({Device::sw(sC), 1}, {Device::sw(sB), 2});

  const auto primary = t.shortest_route(h0, h1);
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->hops(), 2u);  // via the direct trunk
  const auto alt = t.disjoint_route(h0, h1, *primary, 1);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->cls, DisjointClass::kNodeDisjoint);
  EXPECT_NE(alt->route, *primary);
  auto end = t.trace_route(h0, alt->route);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, Device::host(h1));
}

TEST(Topology, DisjointRouteDegradesToLinkDisjointThroughSharedSwitch) {
  // Chain h0 - sA == sM == sB - h1 with doubled trunks on both segments:
  // every route crosses sM, but the second trunk pair avoids every primary
  // *link*.
  Topology t;
  SwitchId sA = t.add_switch(4);
  SwitchId sM = t.add_switch(4);
  SwitchId sB = t.add_switch(4);
  HostId h0 = t.add_host();
  HostId h1 = t.add_host();
  t.connect({Device::host(h0), 0}, {Device::sw(sA), 0});
  t.connect({Device::host(h1), 0}, {Device::sw(sB), 2});
  t.connect({Device::sw(sA), 1}, {Device::sw(sM), 0});
  t.connect({Device::sw(sA), 2}, {Device::sw(sM), 1});
  t.connect({Device::sw(sM), 2}, {Device::sw(sB), 0});
  t.connect({Device::sw(sM), 3}, {Device::sw(sB), 1});

  const auto primary = t.shortest_route(h0, h1);
  ASSERT_TRUE(primary.has_value());
  const auto alt = t.disjoint_route(h0, h1, *primary, 1);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->cls, DisjointClass::kLinkDisjoint);
  EXPECT_NE(alt->route, *primary);
  auto end = t.trace_route(h0, alt->route);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, Device::host(h1));
}

TEST(Topology, DisjointRouteDegradesToOverlappingWhenOneLinkIsShared) {
  // Doubled first segment, single second segment: any alternate must reuse
  // the sM - sB link, but avoiding the primary's sA - sM link still
  // survives that link's death.
  Topology t;
  SwitchId sA = t.add_switch(4);
  SwitchId sM = t.add_switch(4);
  SwitchId sB = t.add_switch(4);
  HostId h0 = t.add_host();
  HostId h1 = t.add_host();
  t.connect({Device::host(h0), 0}, {Device::sw(sA), 0});
  t.connect({Device::host(h1), 0}, {Device::sw(sB), 1});
  t.connect({Device::sw(sA), 1}, {Device::sw(sM), 0});
  t.connect({Device::sw(sA), 2}, {Device::sw(sM), 1});
  t.connect({Device::sw(sM), 2}, {Device::sw(sB), 0});

  const auto primary = t.shortest_route(h0, h1);
  ASSERT_TRUE(primary.has_value());
  const auto alt = t.disjoint_route(h0, h1, *primary, 1);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->cls, DisjointClass::kOverlapping);
  EXPECT_NE(alt->route, *primary);
  auto end = t.trace_route(h0, alt->route);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, Device::host(h1));
}

TEST(Topology, DisjointRouteImpossibleOnSharedCrossbar) {
  // Same-crossbar pair: the primary's interior is empty — the only route IS
  // the primary, and the caller degrades to a backup-less entry.
  PairFixture f;
  const auto primary = f.topo.shortest_route(f.h0, f.h1);
  ASSERT_TRUE(primary.has_value());
  EXPECT_FALSE(f.topo.disjoint_route(f.h0, f.h1, *primary, 1).has_value());
}

TEST(Topology, DisjointRouteIsDeterministicPerSalt) {
  auto f = make_figure2_fabric(8);
  const auto primary = f.topo.shortest_route(f.hosts[0], f.hosts[3]);
  ASSERT_TRUE(primary.has_value());
  const auto a = f.topo.disjoint_route(f.hosts[0], f.hosts[3], *primary, 42);
  const auto b = f.topo.disjoint_route(f.hosts[0], f.hosts[3], *primary, 42);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->route, b->route);
  EXPECT_EQ(a->cls, b->cls);
}

TEST(Figure2Fabric, CrossFabricBackupIsLinkDisjoint) {
  // sw8_a - sw16_a - sw16_b - sw8_b is a chain: the interior switches cannot
  // be avoided, but every trunk is doubled — the best achievable backup for
  // a cross-fabric pair is exactly link-disjoint, and it survives the death
  // of any single primary trunk.
  auto f = make_figure2_fabric(8);
  const auto primary = f.topo.shortest_route(f.hosts[0], f.hosts[3]);
  ASSERT_TRUE(primary.has_value());
  const auto alt = f.topo.disjoint_route(f.hosts[0], f.hosts[3], *primary, 7);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->cls, DisjointClass::kLinkDisjoint);
  auto end = f.topo.trace_route_up(f.hosts[0], alt->route);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, Device::host(f.hosts[3]));
}

TEST(Figure2Fabric, BuildsAndConnectsAllHosts) {
  auto f = make_figure2_fabric(8);
  EXPECT_EQ(f.topo.num_hosts(), 8u);
  EXPECT_EQ(f.topo.num_switches(), 4u);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      auto r = f.topo.shortest_route(f.hosts[i], f.hosts[j]);
      ASSERT_TRUE(r.has_value()) << i << "->" << j;
      auto dev = f.topo.trace_route(f.hosts[i], *r);
      ASSERT_TRUE(dev.has_value());
      EXPECT_EQ(*dev, Device::host(f.hosts[j]));
    }
  }
}

TEST(Figure2Fabric, SurvivesSingleTrunkLinkDeath) {
  auto f = make_figure2_fabric(8);
  // Kill one of the two sw8_a - sw16_a trunks (link id 0 by construction).
  f.topo.set_link_up(LinkId{0}, false);
  for (std::size_t j = 1; j < 8; ++j) {
    EXPECT_TRUE(f.topo.shortest_route(f.hosts[0], f.hosts[j]).has_value());
  }
}

TEST(Figure2Fabric, HostCapacityIsEnforced) {
  EXPECT_THROW(make_figure2_fabric(64), std::logic_error);
}

// --- k-ary Clos / fat-tree builder (the 64/128-host scale-out fabrics) -----

TEST(ClosFabric, CanonicalShapeCounts) {
  // k = 8 fully populated: 128 hosts, 32 edge + 32 agg + 16 core switches.
  auto f = make_clos_fabric({});
  EXPECT_EQ(f.cfg.k, 8u);
  EXPECT_EQ(f.cfg.num_hosts, 128u);
  EXPECT_EQ(f.cfg.core_group_size, 4u);
  EXPECT_EQ(f.topo.num_hosts(), 128u);
  EXPECT_EQ(f.cores.size(), 16u);
  EXPECT_EQ(f.aggs.size(), 32u);
  EXPECT_EQ(f.edges.size(), 32u);
  EXPECT_EQ(f.topo.num_switches(), 80u);
  // Links: 128 host access + 8 pods * 16 edge-agg + 32 aggs * 4 core uplinks.
  EXPECT_EQ(f.topo.num_links(), 128u + 8 * 16 + 32 * 4);
  // Core switches are created first so chaos scenarios can address the spine
  // as switch 0.
  EXPECT_EQ(f.cores[0].v, 0u);
}

TEST(ClosFabric, PartialPopulationKeepsSwitchShape) {
  auto f = make_clos_fabric({.k = 8, .num_hosts = 64});
  EXPECT_EQ(f.topo.num_hosts(), 64u);
  EXPECT_EQ(f.topo.num_switches(), 80u);  // fabric shape independent of hosts
  EXPECT_EQ(f.topo.num_links(), 64u + 8 * 16 + 32 * 4);
}

TEST(ClosFabric, SpineRedundancyIsConfigurable) {
  // core_group_size 2 halves the spine: k/2 * 2 = 8 cores, 2 uplinks per agg.
  auto f = make_clos_fabric({.k = 8, .num_hosts = 32, .core_group_size = 2});
  EXPECT_EQ(f.cores.size(), 8u);
  EXPECT_EQ(f.topo.num_switches(), 8u + 32u + 32u);
  EXPECT_EQ(f.topo.num_links(), 32u + 8 * 16 + 32 * 2);
}

TEST(ClosFabric, EveryHostHasAValidAccessLink) {
  auto f = make_clos_fabric({.k = 8, .num_hosts = 64});
  for (auto h : f.hosts) {
    auto l = f.topo.host_access_link(h);
    ASSERT_TRUE(l.has_value()) << "host " << h.v;
    EXPECT_TRUE(f.topo.link_up(*l));
    auto [a, b] = f.topo.link_ends(*l);
    const bool host_end = a.dev == Device::host(h) || b.dev == Device::host(h);
    EXPECT_TRUE(host_end) << "host " << h.v;
    const Port sw_end = a.dev == Device::host(h) ? b : a;
    EXPECT_TRUE(sw_end.dev.is_switch());
    // Hosts sit on edge downlink ports (k/2 and up, below the edge radix).
    EXPECT_GE(sw_end.port, f.cfg.k / 2);
    EXPECT_LT(sw_end.port, f.cfg.k);
  }
}

TEST(ClosFabric, AllPairsReachableAtClosDistances) {
  auto f = make_clos_fabric({.k = 8, .num_hosts = 64});
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = f.topo.shortest_route(a, b);
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v;
      auto end = f.topo.trace_route(a, *r);
      ASSERT_TRUE(end.has_value()) << a.v << "->" << b.v;
      EXPECT_EQ(*end, Device::host(b));
      // Fat-tree distances are exactly 1 (same edge), 3 (same pod) or
      // 5 (cross-pod) switches.
      EXPECT_TRUE(r->hops() == 1 || r->hops() == 3 || r->hops() == 5)
          << a.v << "->" << b.v << " hops=" << r->hops();
    }
  }
}

TEST(ClosFabric, RoundRobinPlacementSetsExpectedDistances) {
  // Hosts round-robin across the 32 pod-major edges: host 0 and host 32
  // share edge 0 (distance 1); host 1 lands on edge 1, still pod 0
  // (edges 0-3), so 0->1 is the same-pod edge-agg-edge path (distance 3);
  // host 4 lands on edge 4 in pod 1, the cross-pod path through the spine
  // (distance 5). bench_scale relies on exactly these three pairs.
  auto f = make_clos_fabric({.k = 8, .num_hosts = 64});
  EXPECT_EQ(f.topo.shortest_route(f.hosts[0], f.hosts[32])->hops(), 1u);
  EXPECT_EQ(f.topo.shortest_route(f.hosts[0], f.hosts[1])->hops(), 3u);
  EXPECT_EQ(f.topo.shortest_route(f.hosts[0], f.hosts[4])->hops(), 5u);
}

TEST(ClosFabric, SurvivesSingleCoreSwitchDeath) {
  auto f = make_clos_fabric({.k = 8, .num_hosts = 64});
  f.topo.set_switch_up(f.cores[0], false);
  // Cross-pod pairs re-route through the redundant spine.
  for (std::size_t j = 1; j < 8; ++j) {
    auto r = f.topo.shortest_route(f.hosts[0], f.hosts[j]);
    ASSERT_TRUE(r.has_value()) << "0->" << j;
    EXPECT_EQ(*f.topo.trace_route(f.hosts[0], *r), Device::host(f.hosts[j]));
  }
}

TEST(ClosFabric, RejectsBadShapes) {
  EXPECT_THROW(make_clos_fabric({.k = 5}), std::invalid_argument);
  EXPECT_THROW(make_clos_fabric({.k = 8, .core_group_size = 5}),
               std::invalid_argument);
}

TEST(ClosFabric, NamedShapesResolveCanonically) {
  // The named shapes are the contract between tests, benches and scripts:
  // exactly one geometry per label.
  const auto c64 = clos_named_shape("clos-64");
  ASSERT_TRUE(c64.has_value());
  EXPECT_EQ(c64->k, 8u);
  EXPECT_EQ(c64->num_hosts, 64u);
  const auto c128 = clos_named_shape("clos-128");
  ASSERT_TRUE(c128.has_value());
  EXPECT_EQ(c128->k, 8u);
  EXPECT_EQ(c128->num_hosts, 128u);
  const auto c256 = clos_named_shape("clos-256");
  ASSERT_TRUE(c256.has_value());
  EXPECT_EQ(c256->k, 16u);
  EXPECT_EQ(c256->num_hosts, 256u);
  const auto c1024 = clos_named_shape("clos-1024");
  ASSERT_TRUE(c1024.has_value());
  EXPECT_EQ(c1024->k, 16u);
  EXPECT_EQ(c1024->num_hosts, 1024u);
  EXPECT_FALSE(clos_named_shape("clos-42").has_value());
  EXPECT_FALSE(clos_named_shape("").has_value());
}

TEST(ClosFabric, Clos256RadixAndPodShape) {
  // k = 16 quarter-populated: 16 pods of 8 edges + 8 aggs, 64-core spine.
  auto f = make_clos_fabric(*clos_named_shape("clos-256"));
  EXPECT_EQ(f.cfg.core_group_size, 8u);
  EXPECT_EQ(f.topo.num_hosts(), 256u);
  EXPECT_EQ(f.cores.size(), 64u);
  EXPECT_EQ(f.aggs.size(), 128u);
  EXPECT_EQ(f.edges.size(), 128u);
  EXPECT_EQ(f.topo.num_switches(), 320u);
  // 256 access + 16 pods * 64 edge-agg + 128 aggs * 8 core uplinks.
  EXPECT_EQ(f.topo.num_links(), 256u + 16 * 64 + 128 * 8);
  // Cores and aggs run at full radix k = 16; the quarter-populated edges
  // carry 2 hosts + 8 agg uplinks (the spare ports are the headroom
  // clos-1024 fills on the identical switch core).
  for (auto s : f.cores) EXPECT_EQ(f.topo.switch_ports(s), 16u);
  for (auto s : f.aggs) EXPECT_EQ(f.topo.switch_ports(s), 16u);
  for (auto s : f.edges) EXPECT_EQ(f.topo.switch_ports(s), 10u);
  // Round-robin population: host 0 (edge 0, pod 0) to host 8 (edge 8,
  // pod 1) is a cross-pod 5-hop path; host 0 to host 1 stays in pod 0.
  EXPECT_EQ(f.topo.shortest_route(f.hosts[0], f.hosts[8])->hops(), 5u);
  EXPECT_EQ(f.topo.shortest_route(f.hosts[0], f.hosts[1])->hops(), 3u);
}

TEST(ClosFabric, Clos1024RadixAndPodShape) {
  // k = 16 fully populated: k^3/4 = 1024 hosts on the same 320-switch core.
  auto f = make_clos_fabric(*clos_named_shape("clos-1024"));
  EXPECT_EQ(f.topo.num_hosts(), 1024u);
  EXPECT_EQ(f.topo.num_switches(), 320u);
  EXPECT_EQ(f.topo.num_links(), 1024u + 16 * 64 + 128 * 8);
  // Full population saturates every edge downlink: 8 hosts per edge. Edge
  // switch ids are pod-interleaved with the aggs, so count by id.
  std::vector<std::size_t> per_switch(f.topo.num_switches(), 0);
  for (auto h : f.hosts) {
    auto l = f.topo.host_access_link(h);
    ASSERT_TRUE(l.has_value());
    auto [a, b] = f.topo.link_ends(*l);
    const Port sw_end = a.dev.is_switch() ? a : b;
    ++per_switch[sw_end.dev.as_switch().v];
  }
  for (auto e : f.edges) EXPECT_EQ(per_switch[e.v], 8u) << "edge " << e.v;
  for (auto s : f.cores) EXPECT_EQ(per_switch[s.v], 0u);
  for (auto s : f.aggs) EXPECT_EQ(per_switch[s.v], 0u);
}

TEST(FabricPartition, Clos64PodPartitioningIsBalancedAndCoupled) {
  auto f = make_clos_fabric(*clos_named_shape("clos-64"));
  std::vector<std::uint32_t> host_pods;
  for (std::size_t i = 0; i < f.hosts.size(); ++i) {
    host_pods.push_back(static_cast<std::uint32_t>((i % f.edges.size()) /
                                                   (f.cfg.k / 2)));
  }
  auto part = partition_clos_pods(f.topo, 8, host_pods, 8);
  EXPECT_EQ(part.count, 8u);
  // Hosts follow their pods exactly; pod switches follow their hosts.
  for (std::size_t i = 0; i < f.hosts.size(); ++i) {
    EXPECT_EQ(part.host_owner[i], host_pods[i]) << "host " << i;
  }
  for (std::size_t pod = 0; pod < 8; ++pod) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(part.switch_owner[f.edges[pod * 4 + j].v], pod);
      EXPECT_EQ(part.switch_owner[f.aggs[pod * 4 + j].v], pod);
    }
  }
  // The shared spine spreads across partitions instead of piling onto 0.
  std::vector<std::size_t> core_count(8, 0);
  for (auto c : f.cores) ++core_count[part.switch_owner[c.v]];
  for (std::size_t p = 0; p < 8; ++p) EXPECT_EQ(core_count[p], 2u);
  EXPECT_GT(part.cut_links, 0u);
  // Every ordered pair is coupled at exactly one cut-link latency: the
  // agg->core trunks keep every pod one hop from the shared spine.
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = 0; b < 8; ++b) {
      if (a == b) continue;
      EXPECT_EQ(part.pair_lookahead(a, b), 250u) << a << "->" << b;
    }
  }
}

TEST(FabricPartition, LookaheadIsTransitivelyClosed) {
  // Regression: figure-2's partition graph is a path, not a clique. The
  // direct-cut matrix leaves some ordered pairs uncoupled (kNever), which
  // let the conservative horizon run past in-flight transitive traffic.
  // The min-plus closure must couple every pair that any cut path joins.
  auto f = make_figure2_fabric(16);
  std::vector<std::uint32_t> owner;
  const std::vector<SwitchId> leaves = {f.sw8_a, f.sw16_a, f.sw16_b, f.sw8_b};
  for (auto h : f.hosts) {
    auto att = f.topo.peer_of({Device::host(h), 0});
    ASSERT_TRUE(att.has_value());
    const auto it = std::find(leaves.begin(), leaves.end(),
                              att->peer.dev.as_switch());
    owner.push_back(static_cast<std::uint32_t>(it - leaves.begin()));
  }
  auto part = make_partition(f.topo, 4, owner);
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      const auto la = part.pair_lookahead(a, b);
      EXPECT_NE(la, sim::kNever) << a << "->" << b;
      // Closure over equal-latency cuts: a multiple of one link latency.
      EXPECT_EQ(la % 250u, 0u) << a << "->" << b;
    }
  }
}

TEST(FabricPartition, RejectsBadHostAssignments) {
  auto f = make_figure2_fabric(8);
  EXPECT_THROW(make_partition(f.topo, 2, {0, 1}), std::invalid_argument);
  std::vector<std::uint32_t> owner(f.hosts.size(), 0);
  owner[3] = 7;
  EXPECT_THROW(make_partition(f.topo, 2, owner), std::invalid_argument);
}

TEST(FabricPartition, SinglePartitionOwnsEverything) {
  auto f = make_clos_fabric(*clos_named_shape("clos-64"));
  auto part = partition_by_host_blocks(f.topo, 1);
  EXPECT_EQ(part.count, 1u);
  EXPECT_EQ(part.cut_links, 0u);
  for (auto o : part.host_owner) EXPECT_EQ(o, 0u);
  for (auto o : part.switch_owner) EXPECT_EQ(o, 0u);
}

}  // namespace
}  // namespace sanfault::net
