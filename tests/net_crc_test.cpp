// Cross-checks the slice-by-8 CRC32 against the one-table reference
// implementation: random lengths, unaligned starts (the sliced path has an
// alignment prologue whose every phase must agree), and the streaming split
// property crc(ab) == crc over a then b for arbitrary splits.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "net/crc.hpp"
#include "sim/rng.hpp"

namespace sanfault::net {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform(256));
  return v;
}

TEST(Crc32, KnownAnswer) {
  // "123456789" -> 0xCBF43926 is the standard CRC-32/IEEE check value.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data, 9)), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0u);
  EXPECT_EQ(crc32_update(0xFFFFFFFFu, {}), 0xFFFFFFFFu);
  EXPECT_EQ(crc32_update_reference(0xFFFFFFFFu, {}), 0xFFFFFFFFu);
}

TEST(Crc32, SlicedMatchesReferenceOverRandomLengths) {
  sim::Rng rng(0xC5C5);
  // Sweep every length 0..64 (all prologue/epilogue phase combinations at
  // small n), then random larger lengths through the 8-byte inner loop.
  for (std::size_t n = 0; n <= 64; ++n) {
    const auto buf = random_bytes(rng, n);
    const std::span<const std::uint8_t> s(buf);
    EXPECT_EQ(crc32_update(0xFFFFFFFFu, s),
              crc32_update_reference(0xFFFFFFFFu, s))
        << "length " << n;
  }
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 65 + rng.uniform(8192);
    const auto buf = random_bytes(rng, n);
    const std::span<const std::uint8_t> s(buf);
    EXPECT_EQ(crc32_update(0xFFFFFFFFu, s),
              crc32_update_reference(0xFFFFFFFFu, s))
        << "length " << n;
  }
}

TEST(Crc32, SlicedMatchesReferenceAtEveryAlignment) {
  sim::Rng rng(0xA11A);
  const auto buf = random_bytes(rng, 4096 + 16);
  // Same bytes viewed from every start offset 0..15: the alignment prologue
  // must hand off to the 8-byte loop correctly from any phase.
  for (std::size_t off = 0; off < 16; ++off) {
    const std::span<const std::uint8_t> s(buf.data() + off, 4096);
    EXPECT_EQ(crc32_update(0xFFFFFFFFu, s),
              crc32_update_reference(0xFFFFFFFFu, s))
        << "offset " << off;
  }
}

TEST(Crc32, StreamingSplitsComposeToWholeBufferCrc) {
  sim::Rng rng(0x5EED);
  const auto buf = random_bytes(rng, 2048);
  const std::span<const std::uint8_t> whole(buf);
  const std::uint32_t expect = crc32(whole);
  // crc32_update must be split-invariant: any cut point — including 0, the
  // full length, and random interior points — composes to the same CRC.
  std::vector<std::size_t> cuts = {0, 1, 7, 8, 9, 2047, 2048};
  for (int i = 0; i < 20; ++i) cuts.push_back(rng.uniform(2049));
  for (const std::size_t cut : cuts) {
    std::uint32_t state = 0xFFFFFFFFu;
    state = crc32_update(state, whole.subspan(0, cut));
    state = crc32_update(state, whole.subspan(cut));
    EXPECT_EQ(state ^ 0xFFFFFFFFu, expect) << "cut " << cut;
  }
  // Many-way split: byte-at-a-time through the streaming API.
  std::uint32_t state = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    state = crc32_update(state, whole.subspan(i, 1));
  }
  EXPECT_EQ(state ^ 0xFFFFFFFFu, expect);
}

TEST(Crc32, DetectsSingleBitFlips) {
  sim::Rng rng(0xB17);
  auto buf = random_bytes(rng, 1024);
  const std::uint32_t clean = crc32(std::span<const std::uint8_t>(buf));
  for (int rep = 0; rep < 64; ++rep) {
    const std::size_t byte = rng.uniform(buf.size());
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.uniform(8));
    buf[byte] ^= bit;
    EXPECT_NE(crc32(std::span<const std::uint8_t>(buf)), clean);
    buf[byte] ^= bit;
  }
}

}  // namespace
}  // namespace sanfault::net
