// Tests for UP*/DOWN* routing: legality, coverage, failure adaptation.
#include <gtest/gtest.h>

#include "firmware/updown.hpp"
#include "net/topology.hpp"

namespace sanfault::firmware {
namespace {

using net::Device;
using net::HostId;
using net::Port;

// Verify a route is legal UP*/DOWN*: once it takes a down-link it never goes
// up again, and it actually arrives.
void expect_legal_and_delivers(const net::Topology& topo,
                               const UpDownRouting& ud, HostId from,
                               HostId to, const net::Route& r) {
  auto end = topo.trace_route(from, r);
  ASSERT_TRUE(end.has_value()) << "route falls off the fabric";
  EXPECT_EQ(*end, Device::host(to));

  // Re-walk the route checking link directions.
  auto att = topo.peer_of(Port{Device::host(from), 0});
  ASSERT_TRUE(att.has_value());
  Device cur = att->peer.dev;
  bool gone_down = false;
  for (std::uint8_t p : r.ports) {
    ASSERT_TRUE(cur.is_switch());
    const bool up = ud.is_up(topo.peer_of(Port{cur, p})->link, cur);
    if (up) {
      EXPECT_FALSE(gone_down) << "illegal down->up transition";
    } else {
      gone_down = true;
    }
    cur = topo.peer_of(Port{cur, p})->peer.dev;
  }
}

TEST(UpDown, SingleSwitchRoutesAllPairs) {
  net::Topology t;
  auto sw = t.add_switch(8);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) {
    auto h = t.add_host();
    t.connect({Device::host(h), 0}, {Device::sw(sw), static_cast<std::uint8_t>(i)});
    hosts.push_back(h);
  }
  UpDownRouting ud(t);
  for (auto a : hosts) {
    for (auto b : hosts) {
      if (a == b) continue;
      auto r = ud.route(a, b);
      ASSERT_TRUE(r.has_value());
      expect_legal_and_delivers(t, ud, a, b, *r);
      EXPECT_EQ(r->hops(), 1u);
    }
  }
}

TEST(UpDown, Figure2AllPairsLegal) {
  auto f = net::make_figure2_fabric(8);
  UpDownRouting ud(f.topo);
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = ud.route(a, b);
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v;
      expect_legal_and_delivers(f.topo, ud, a, b, *r);
    }
  }
}

TEST(UpDown, LevelsDescendFromRoot) {
  auto f = net::make_figure2_fabric(4);
  UpDownRouting ud(f.topo);
  // Root is switch 0 (sw8_a).
  EXPECT_EQ(ud.level(Device::sw(f.sw8_a)), 0);
  EXPECT_EQ(ud.level(Device::sw(f.sw16_a)), 1);
  EXPECT_EQ(ud.level(Device::sw(f.sw16_b)), 2);
  EXPECT_EQ(ud.level(Device::sw(f.sw8_b)), 3);
  // Hosts sit one below their switch.
  EXPECT_EQ(ud.level(Device::host(f.hosts[0])), 1);  // on sw8_a
}

TEST(UpDown, RecomputeAfterLinkFailureFindsDetour) {
  auto f = net::make_figure2_fabric(8);
  // hosts[0] on sw8_a, hosts[3] on sw8_b: path uses the trunks.
  {
    UpDownRouting ud(f.topo);
    auto r = ud.route(f.hosts[0], f.hosts[3]);
    ASSERT_TRUE(r.has_value());
    expect_legal_and_delivers(f.topo, ud, f.hosts[0], f.hosts[3], *r);
  }
  // Kill one trunk of each redundant pair; routes must still exist.
  f.topo.set_link_up(net::LinkId{0}, false);  // sw8_a-sw16_a first trunk
  f.topo.set_link_up(net::LinkId{2}, false);  // sw16_a-sw16_b first trunk
  f.topo.set_link_up(net::LinkId{4}, false);  // sw16_b-sw8_b first trunk
  UpDownRouting ud2(f.topo);
  auto r2 = ud2.route(f.hosts[0], f.hosts[3]);
  ASSERT_TRUE(r2.has_value());
  expect_legal_and_delivers(f.topo, ud2, f.hosts[0], f.hosts[3], *r2);
}

TEST(UpDown, UnreachableAfterPartition) {
  auto f = net::make_figure2_fabric(8);
  // Sever sw16_a - sw16_b entirely: left and right halves split.
  f.topo.set_link_up(net::LinkId{2}, false);
  f.topo.set_link_up(net::LinkId{3}, false);
  UpDownRouting ud(f.topo);
  // hosts[0] (sw8_a, left) cannot reach hosts[2] (sw16_b, right).
  EXPECT_FALSE(ud.route(f.hosts[0], f.hosts[2]).has_value());
  // But left-side pairs still work.
  auto r = ud.route(f.hosts[0], f.hosts[1]);  // hosts[1] on sw16_a
  ASSERT_TRUE(r.has_value());
  expect_legal_and_delivers(f.topo, ud, f.hosts[0], f.hosts[1], *r);
}

TEST(UpDown, RouteToSelfIsEmpty) {
  auto f = net::make_figure2_fabric(4);
  UpDownRouting ud(f.topo);
  auto r = ud.route(f.hosts[0], f.hosts[0]);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(UpDown, Clos64AllPairsLegalAndDeadlockFree) {
  // The scale-out ablation baseline: UP*/DOWN* on the 64-host fat-tree.
  // Legality of every route (no down->up transition anywhere) is the
  // classical deadlock-freedom argument — the channel dependency graph of
  // up-then-down paths is acyclic — so checking all 64*63 pairs is a
  // whole-fabric deadlock-freedom proof for this routing function.
  auto f = net::make_clos_fabric({.k = 8, .num_hosts = 64});
  UpDownRouting ud(f.topo);
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = ud.route(a, b);
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v;
      expect_legal_and_delivers(f.topo, ud, a, b, *r);
      // Up/down routes never exceed the fat-tree diameter.
      EXPECT_LE(r->hops(), 5u) << a.v << "->" << b.v;
    }
  }
}

TEST(UpDown, Clos64SpineDeathKeepsLegalRoutes) {
  // Kill the root-candidate spine switch: the recomputed tree picks the next
  // live root and every pair stays connected via the redundant spine groups.
  auto f = net::make_clos_fabric({.k = 8, .num_hosts = 64});
  f.topo.set_switch_up(f.cores[0], false);
  UpDownRouting ud(f.topo);
  EXPECT_EQ(ud.level(net::Device::sw(f.cores[1])), 0);  // new root
  // Hosts 0..7 cover pod 0 and pod 1 edge-by-edge: same-edge, same-pod and
  // cross-pod pairs are all exercised.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      auto r = ud.route(f.hosts[i], f.hosts[j]);
      ASSERT_TRUE(r.has_value()) << i << "->" << j;
      expect_legal_and_delivers(f.topo, ud, f.hosts[i], f.hosts[j], *r);
    }
  }
}

TEST(UpDown, DeadSwitchExcluded) {
  auto f = net::make_figure2_fabric(8);
  f.topo.set_switch_up(f.sw16_b, false);
  UpDownRouting ud(f.topo);
  // hosts[2] hangs off the dead switch: unreachable.
  EXPECT_FALSE(ud.route(f.hosts[0], f.hosts[2]).has_value());
  // Left-half pairs fine.
  EXPECT_TRUE(ud.route(f.hosts[0], f.hosts[1]).has_value());
}

}  // namespace
}  // namespace sanfault::firmware
