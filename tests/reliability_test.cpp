// Tests for the core contribution: the firmware-level go-back-N
// retransmission protocol (§4.1), including exactly-once in-order delivery
// under injected drops, wire loss, corruption, ACK policy behavior, timer
// behavior, and permanent-failure handling without a mapper.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "harness/cluster.hpp"
#include "sim/process.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

ClusterConfig base_cfg() {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kReliable;
  return cfg;
}

/// Drain an inbox into a vector of messages via a forever-looping coroutine.
struct Drainer {
  std::vector<harness::HostMsg> msgs;
};

sim::Process drain(Cluster& c, std::size_t host, Drainer& d) {
  for (;;) {
    harness::HostMsg m = co_await c.inbox(host).pop(c.sched);
    d.msgs.push_back(std::move(m));
  }
}

/// Helper: send n messages, drain, settle. Asserts nothing by itself.
struct StreamResult {
  std::vector<harness::HostMsg> msgs;
};

StreamResult stream(Cluster& c, int n, std::size_t bytes = 64,
                    sim::Duration settle = sim::seconds(10)) {
  Drainer d;
  drain(c, 1, d);
  for (int i = 0; i < n; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(i);
    c.send(0, 1, std::vector<std::uint8_t>(bytes, static_cast<std::uint8_t>(i)),
           u);
  }
  c.sched.run_until(c.sched.now() + settle);
  return StreamResult{std::move(d.msgs)};
}

void expect_exactly_once_in_order(const StreamResult& r, int n) {
  ASSERT_EQ(r.msgs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(r.msgs[static_cast<std::size_t>(i)].user.w0,
              static_cast<std::uint64_t>(i))
        << "at position " << i;
  }
}

TEST(Reliability, InOrderDeliveryNoErrors) {
  Cluster c(base_cfg());
  auto r = stream(c, 50);
  expect_exactly_once_in_order(r, 50);
  EXPECT_EQ(c.rel(1).stats().ooo_drops, 0u);
  EXPECT_EQ(c.rel(1).stats().corrupt_drops, 0u);
  // Trailing packets of a one-way burst are retransmitted once by the timer
  // (their ACK-request bit was never set); the resulting duplicates are the
  // protocol's documented idle-tail behavior, bounded by the queue size.
  EXPECT_LE(c.rel(1).stats().dup_drops, c.nic(0).send_pool().capacity());
}

TEST(Reliability, PayloadIntegrityPreserved) {
  Cluster c(base_cfg());
  Drainer d;
  drain(c, 1, d);
  std::vector<std::uint8_t> payload(777);
  std::iota(payload.begin(), payload.end(), std::uint8_t{0});
  // 777 > 4096? no. single segment.
  c.send(0, 1, payload);
  c.sched.run_until(sim::seconds(1));
  ASSERT_EQ(d.msgs.size(), 1u);
  EXPECT_EQ(d.msgs[0].payload, payload);
}

TEST(Reliability, BuffersAllFreedAfterQuiescence) {
  auto cfg = base_cfg();
  cfg.nic.send_buffers = 8;
  Cluster c(cfg);
  auto r = stream(c, 100);
  expect_exactly_once_in_order(r, 100);
  EXPECT_EQ(c.nic(0).send_pool().free_count(), 8u);
  EXPECT_EQ(c.rel(0).tx_channel(c.hosts[1])->retrans_queue.size(), 0u);
}

TEST(Reliability, SequenceNumbersAdvanceMonotonically) {
  Cluster c(base_cfg());
  auto r = stream(c, 10);
  expect_exactly_once_in_order(r, 10);
  const auto* tx = c.rel(0).tx_channel(c.hosts[1]);
  ASSERT_NE(tx, nullptr);
  EXPECT_EQ(tx->next_seq, 11u);
  const auto* rx = c.rel(1).rx_channel(c.hosts[0]);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->expected_seq, 11u);
}

TEST(Reliability, PiggybackSuppressesExplicitAcksOnTwoWayTraffic) {
  Cluster c(base_cfg());
  Drainer d0;
  Drainer d1;
  drain(c, 0, d0);
  drain(c, 1, d1);
  // Ping-pong: interleave sends so each direction's data carries the ACK.
  struct Pinger {
    static sim::Process run(Cluster& c, int rounds) {
      for (int i = 0; i < rounds; ++i) {
        sim::Trigger acc;
        c.send(0, 1, std::vector<std::uint8_t>(8, 1), {},
               [&c, &acc] { acc.fire(c.sched); });
        co_await acc.wait(c.sched);
        sim::Trigger acc2;
        c.send(1, 0, std::vector<std::uint8_t>(8, 2), {},
               [&c, &acc2] { acc2.fire(c.sched); });
        co_await acc2.wait(c.sched);
        co_await sim::DelayFor{c.sched, sim::microseconds(30)};
      }
    }
  };
  Pinger::run(c, 50);
  c.sched.run_until(sim::seconds(5));
  EXPECT_EQ(d0.msgs.size(), 50u);
  EXPECT_EQ(d1.msgs.size(), 50u);
  // Piggy-backing should carry nearly all ACK traffic; a handful of
  // timer-driven explicit ACKs at the end of the run are acceptable.
  EXPECT_LE(c.rel(0).stats().acks_explicit_tx + c.rel(1).stats().acks_explicit_tx,
            8u);
}

TEST(Reliability, BufferPressureForcesAckRequests) {
  auto cfg = base_cfg();
  cfg.nic.send_buffers = 2;  // scarce: every packet requests an ACK
  Cluster c(cfg);
  auto r = stream(c, 60);
  expect_exactly_once_in_order(r, 60);
  EXPECT_GE(c.rel(1).stats().acks_explicit_tx, 25u);
}

TEST(Reliability, InjectedDropRecoveredByTimer) {
  auto cfg = base_cfg();
  cfg.rel.drop_interval = 5;  // drop every 5th injected data packet
  Cluster c(cfg);
  auto r = stream(c, 20);
  expect_exactly_once_in_order(r, 20);
  EXPECT_GE(c.rel(0).stats().injected_drops, 4u);
  EXPECT_GE(c.rel(0).stats().retransmissions, 1u);
  EXPECT_GE(c.rel(0).stats().retrans_rounds, 1u);
}

TEST(Reliability, ExactlyOnceUnderHeavyInjectedDrops) {
  auto cfg = base_cfg();
  cfg.rel.drop_interval = 3;  // brutal: every 3rd injection vanishes
  cfg.nic.send_buffers = 8;
  Cluster c(cfg);
  auto r = stream(c, 200, 64, sim::seconds(60));
  expect_exactly_once_in_order(r, 200);
  EXPECT_EQ(c.nic(0).send_pool().free_count(), 8u);
}

TEST(Reliability, RandomWireLossRecovered) {
  Cluster c(base_cfg());
  c.fabric().link_faults(net::LinkId{0}).loss_prob = 0.15;
  auto r = stream(c, 150, 64, sim::seconds(60));
  expect_exactly_once_in_order(r, 150);
  EXPECT_GT(c.fabric().stats().dropped_random, 0u);
}

TEST(Reliability, CorruptionDetectedAndRecovered) {
  Cluster c(base_cfg());
  c.fabric().link_faults(net::LinkId{1}).corrupt_prob = 0.2;
  auto r = stream(c, 150, 256, sim::seconds(60));
  expect_exactly_once_in_order(r, 150);
  EXPECT_GT(c.rel(1).stats().corrupt_drops, 0u);
  // Every delivered payload must be intact despite wire corruption.
  for (const auto& m : r.msgs) {
    const auto tag = static_cast<std::uint8_t>(m.user.w0);
    EXPECT_EQ(m.payload, std::vector<std::uint8_t>(256, tag));
  }
}

TEST(Reliability, AckLossIsToleratedViaDuplicateReAck) {
  // Lose 30% in BOTH directions: data drops AND ack drops. Duplicates with
  // the ack-request bit must re-ACK, or senders would retransmit forever.
  Cluster c(base_cfg());
  c.fabric().link_faults(net::LinkId{0}).loss_prob = 0.3;
  c.fabric().link_faults(net::LinkId{1}).loss_prob = 0.3;
  auto r = stream(c, 100, 64, sim::seconds(120));
  expect_exactly_once_in_order(r, 100);
  EXPECT_GT(c.rel(0).stats().retransmissions, 0u);
  EXPECT_EQ(c.nic(0).send_pool().free_count(), c.nic(0).send_pool().capacity());
}

TEST(Reliability, GoBackNDropsSuccessorsOfAGap) {
  auto cfg = base_cfg();
  cfg.rel.drop_interval = 10;
  Cluster c(cfg);
  auto r = stream(c, 40);
  expect_exactly_once_in_order(r, 40);
  // A dropped packet means its pipelined successors arrive out of order and
  // are discarded by the receiver (no receiver buffering).
  EXPECT_GT(c.rel(1).stats().ooo_drops, 0u);
}

TEST(Reliability, TimerIntervalBoundsRecoveryLatency) {
  for (const sim::Duration interval :
       {sim::microseconds(100), sim::milliseconds(1), sim::milliseconds(10)}) {
    auto cfg = base_cfg();
    cfg.rel.retrans_interval = interval;
    cfg.rel.drop_interval = 2;  // the 2nd injected data packet is dropped
    Cluster c(cfg);
    Drainer d;
    drain(c, 1, d);
    for (int i = 0; i < 3; ++i) {
      net::UserHeader u;
      u.w0 = static_cast<std::uint64_t>(i);
      c.send(0, 1, std::vector<std::uint8_t>(16, 1), u);
    }
    c.sched.run_until(sim::seconds(5));
    ASSERT_EQ(d.msgs.size(), 3u) << "interval=" << interval;
    // Last delivery happens within a few timer periods (the effective
    // period is interval + scan/service time on the control processor).
    EXPECT_LT(d.msgs.back().at, 5 * interval + sim::milliseconds(1))
        << "interval=" << interval;
  }
}

TEST(Reliability, TinyTimerCausesFalseRetransmissions) {
  auto cfg = base_cfg();
  cfg.rel.retrans_interval = sim::microseconds(10);
  cfg.nic.send_buffers = 32;
  Cluster c(cfg);
  auto r = stream(c, 50, 1024, sim::seconds(5));
  expect_exactly_once_in_order(r, 50);
  // No errors were injected, yet the 10 us timer (< RTT) retransmitted.
  EXPECT_GT(c.rel(0).stats().retransmissions, 10u);
  EXPECT_GT(c.rel(1).stats().dup_drops, 10u);
}

TEST(Reliability, DefaultTimerQuietOnCleanBidirectionalRun) {
  Cluster c(base_cfg());
  Drainer d0, d1;
  drain(c, 0, d0);
  drain(c, 1, d1);
  // Two-way traffic so piggyback ACKs keep queues drained.
  for (int i = 0; i < 30; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(64, 1));
    c.send(1, 0, std::vector<std::uint8_t>(64, 2));
  }
  c.sched.run_until(sim::milliseconds(900));  // < fail thresholds
  EXPECT_EQ(d0.msgs.size(), 30u);
  EXPECT_EQ(d1.msgs.size(), 30u);
}

TEST(Reliability, ReceiverCoalesceValveAcksLongOneWayStreams) {
  auto cfg = base_cfg();
  cfg.nic.send_buffers = 128;  // plentiful: requests every 64th packet
  cfg.rel.ack.receiver_coalesce_max = 16;
  Cluster c(cfg);
  auto r = stream(c, 100);
  expect_exactly_once_in_order(r, 100);
  // The valve must have fired several times (100 msgs / 16).
  EXPECT_GE(c.rel(1).stats().acks_explicit_tx, 4u);
}

TEST(Reliability, PermanentLinkFailureWithoutMapperMarksUnreachable) {
  auto cfg = base_cfg();
  cfg.rel.fail_threshold = sim::milliseconds(20);
  cfg.rel.fail_min_rounds = 3;
  Cluster c(cfg);
  Drainer d;
  drain(c, 1, d);
  // Kill the receiver's link permanently before any traffic.
  c.topo.set_link_up(net::LinkId{1}, false);
  for (int i = 0; i < 5; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(32, 1));
  }
  c.sched.run_until(sim::seconds(2));
  EXPECT_TRUE(d.msgs.empty());
  EXPECT_EQ(c.rel(0).stats().path_failures, 1u);
  EXPECT_EQ(c.rel(0).stats().unreachable_drops, 5u);
  const auto* tx = c.rel(0).tx_channel(c.hosts[1]);
  ASSERT_NE(tx, nullptr);
  EXPECT_TRUE(tx->unreachable);
  // All send buffers recycled after the drop.
  EXPECT_EQ(c.nic(0).send_pool().free_count(), c.nic(0).send_pool().capacity());
}

TEST(Reliability, SendsToUnreachableNodeAreDroppedCheaply) {
  auto cfg = base_cfg();
  cfg.rel.fail_threshold = sim::milliseconds(20);
  Cluster c(cfg);
  c.topo.set_link_up(net::LinkId{1}, false);
  c.send(0, 1, std::vector<std::uint8_t>(32, 1));
  c.sched.run_until(sim::seconds(2));
  ASSERT_TRUE(c.rel(0).tx_channel(c.hosts[1])->unreachable);
  const auto drops_before = c.rel(0).stats().unreachable_drops;
  c.send(0, 1, std::vector<std::uint8_t>(32, 1));
  c.sched.run_until(c.sched.now() + sim::milliseconds(100));
  EXPECT_EQ(c.rel(0).stats().unreachable_drops, drops_before + 1);
  EXPECT_EQ(c.rel(0).stats().path_failures, 1u);  // no second detection cycle
}

TEST(Reliability, TransientBlackoutHealsWithoutPermanentDeclaration) {
  auto cfg = base_cfg();
  cfg.rel.fail_threshold = sim::milliseconds(500);
  Cluster c(cfg);
  Drainer d;
  drain(c, 1, d);
  c.topo.set_link_up(net::LinkId{1}, false);
  for (int i = 0; i < 5; ++i) {
    net::UserHeader u;
    u.w0 = static_cast<std::uint64_t>(i);
    c.send(0, 1, std::vector<std::uint8_t>(32, 1), u);
  }
  // Heal the link after 10 ms — well inside the 500 ms threshold.
  c.sched.after(sim::milliseconds(10),
                [&] { c.topo.set_link_up(net::LinkId{1}, true); });
  c.sched.run_until(sim::seconds(2));
  ASSERT_EQ(d.msgs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(d.msgs[static_cast<std::size_t>(i)].user.w0,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(c.rel(0).stats().path_failures, 0u);
}

TEST(Reliability, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    auto cfg = base_cfg();
    cfg.rel.drop_interval = 7;
    Cluster c(cfg);
    auto r = stream(c, 64);
    return std::tuple{r.msgs.size(), c.rel(0).stats().retransmissions,
                      c.rel(0).stats().injected_drops, c.sched.events_executed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Reliability, BurstyDropsRecovered) {
  // Ablation knob: 8-packet drop bursts at the same long-run rate. The
  // go-back-N recovery must still deliver exactly once, in order.
  auto cfg = base_cfg();
  cfg.rel.drop_interval = 80;
  cfg.rel.drop_burst = 8;
  Cluster c(cfg);
  auto r = stream(c, 150, 256, sim::seconds(60));
  expect_exactly_once_in_order(r, 150);
  EXPECT_GE(c.rel(0).stats().injected_drops, 8u);
}

TEST(Reliability, BoundedRetransmitWindowStillCorrect) {
  // Ablation knob: go-back-1 (stop-and-wait recovery) instead of
  // whole-queue rounds. Slower, but correctness must be untouched.
  auto cfg = base_cfg();
  cfg.rel.drop_interval = 10;
  cfg.rel.retransmit_window = 1;
  Cluster c(cfg);
  auto r = stream(c, 80, 64, sim::seconds(120));
  expect_exactly_once_in_order(r, 80);
}

// --- property sweep: exactly-once in-order delivery must hold across the
// paper's whole Table-1 parameter space ------------------------------------
struct SweepParam {
  std::uint64_t drop_interval;  // 0 = clean
  std::size_t queue;
  sim::Duration timer;
};

class ReliabilitySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ReliabilitySweep, ExactlyOnceInOrderDelivery) {
  const auto p = GetParam();
  auto cfg = base_cfg();
  cfg.rel.drop_interval = p.drop_interval;
  cfg.nic.send_buffers = p.queue;
  cfg.rel.retrans_interval = p.timer;
  Cluster c(cfg);
  auto r = stream(c, 120, 64, sim::seconds(80));
  expect_exactly_once_in_order(r, 120);
  EXPECT_EQ(c.nic(0).send_pool().free_count(), p.queue);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ReliabilitySweep,
    ::testing::Values(
        SweepParam{0, 2, sim::milliseconds(1)},
        SweepParam{0, 128, sim::microseconds(10)},
        SweepParam{100, 2, sim::milliseconds(1)},
        SweepParam{100, 32, sim::microseconds(100)},
        SweepParam{10, 8, sim::milliseconds(1)},
        SweepParam{10, 128, sim::milliseconds(1)},
        SweepParam{3, 32, sim::milliseconds(10)},
        SweepParam{1000, 32, sim::seconds(1)},
        SweepParam{5, 2, sim::microseconds(100)},
        SweepParam{7, 64, sim::milliseconds(100)}),
    [](const auto& info) {
      const auto& p = info.param;
      return "drop" + std::to_string(p.drop_interval) + "_q" +
             std::to_string(p.queue) + "_t" + std::to_string(p.timer);
    });

}  // namespace
}  // namespace sanfault
