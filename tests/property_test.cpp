// Randomized property tests (seed-parameterized, deterministic per seed):
//  * random connected fabrics: BFS shortest routes always deliver, and
//    UP*/DOWN* routes are legal and complete wherever BFS reaches;
//  * random loss patterns: the reliable firmware delivers exactly-once
//    in-order on a random fabric;
//  * random VMMC deposit patterns equal a golden memory model, with the
//    error-injection drop plan active.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "firmware/raw.hpp"
#include "firmware/reliability.hpp"
#include "firmware/updown.hpp"
#include "harness/cluster.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault {
namespace {

/// A random connected fabric: 16-port switches in a random tree plus a few
/// redundant cross links, hosts on the free ports.
struct RandomFabric {
  net::Topology topo;
  std::vector<net::HostId> hosts;
};

RandomFabric make_random_fabric(std::uint64_t seed) {
  sim::Rng rng(seed);
  RandomFabric f;
  const std::size_t ns = 3 + rng.uniform(5);   // 3..7 switches
  const std::size_t nh = 4 + rng.uniform(9);   // 4..12 hosts

  std::vector<net::SwitchId> sws;
  std::vector<std::uint8_t> next_port(ns, 0);
  for (std::size_t i = 0; i < ns; ++i) sws.push_back(f.topo.add_switch(16));
  auto take_port = [&](std::size_t s) {
    return net::Port{net::Device::sw(sws[s]), next_port[s]++};
  };
  for (std::size_t i = 1; i < ns; ++i) {
    f.topo.connect(take_port(rng.uniform(i)), take_port(i));
  }
  for (std::size_t e = 0; e + 1 < ns; ++e) {  // redundancy => cycles
    const std::size_t x = rng.uniform(ns);
    const std::size_t y = rng.uniform(ns);
    if (x != y) f.topo.connect(take_port(x), take_port(y));
  }
  for (std::size_t h = 0; h < nh; ++h) {
    const std::size_t s = rng.uniform(ns);
    auto host = f.topo.add_host();
    f.topo.connect(net::Port{net::Device::host(host), 0}, take_port(s));
    f.hosts.push_back(host);
  }
  return f;
}

class RandomFabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFabricProperty, ShortestRoutesAlwaysDeliver) {
  RandomFabric f = make_random_fabric(GetParam());
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = f.topo.shortest_route(a, b);
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v << " (connected fabric)";
      auto end = f.topo.trace_route(a, *r);
      ASSERT_TRUE(end.has_value());
      EXPECT_EQ(*end, net::Device::host(b));
    }
  }
}

TEST_P(RandomFabricProperty, UpDownRoutesLegalAndComplete) {
  RandomFabric f = make_random_fabric(GetParam());
  firmware::UpDownRouting ud(f.topo);
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = ud.route(a, b);
      // Complete: every BFS-reachable pair has a legal UP*/DOWN* route on a
      // connected fabric.
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v;
      auto end = f.topo.trace_route(a, *r);
      ASSERT_TRUE(end.has_value());
      EXPECT_EQ(*end, net::Device::host(b));
      // Legal: no up-link after the first down-link.
      auto att = f.topo.peer_of({net::Device::host(a), 0});
      net::Device cur = att->peer.dev;
      bool gone_down = false;
      for (std::uint8_t p : r->ports) {
        auto hop = f.topo.peer_of({cur, p});
        ASSERT_TRUE(hop.has_value());
        const bool up = ud.is_up(hop->link, cur);
        if (up) {
          EXPECT_FALSE(gone_down) << "down->up transition " << a.v << "->" << b.v;
        } else {
          gone_down = true;
        }
        cur = hop->peer.dev;
      }
    }
  }
}

TEST_P(RandomFabricProperty, RawFabricDeliversAlongComputedRoutes) {
  RandomFabric f = make_random_fabric(GetParam());
  sim::Rng rng(GetParam() ^ 0xFAB);
  sim::Scheduler sched;
  net::Fabric fabric(sched, f.topo, {});
  std::vector<int> got(f.topo.num_hosts(), 0);
  for (auto h : f.hosts) {
    fabric.attach(h, [&got, h](net::Packet&&) { ++got[h.v]; });
  }
  int sent = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = f.hosts[rng.uniform(f.hosts.size())];
    const auto b = f.hosts[rng.uniform(f.hosts.size())];
    if (a == b) continue;
    net::Packet p;
    p.hdr.src = a;
    p.hdr.dst = b;
    p.hdr.route = *f.topo.shortest_route(a, b);
    p.payload.assign(rng.uniform(2048), 0x77);
    fabric.inject(a, std::move(p));
    ++sent;
  }
  sched.run();
  EXPECT_EQ(fabric.stats().delivered, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(fabric.stats().dropped_total(), 0u);
}

TEST_P(RandomFabricProperty, ReliableExactlyOnceOnRandomFabricWithLoss) {
  RandomFabric f = make_random_fabric(GetParam());
  sim::Rng rng(GetParam() ^ 0x10);
  sim::Scheduler sched;
  net::FabricConfig fc;
  fc.seed = GetParam();
  net::Fabric fabric(sched, f.topo, fc);
  // Lossy wires everywhere.
  for (std::uint32_t l = 0; l < f.topo.num_links(); ++l) {
    fabric.link_faults(net::LinkId{l}).loss_prob = 0.05;
    fabric.link_faults(net::LinkId{l}).corrupt_prob = 0.02;
  }
  const auto src = f.hosts[rng.uniform(f.hosts.size())];
  auto dst = src;
  while (dst == src) dst = f.hosts[rng.uniform(f.hosts.size())];

  nic::Nic nic_a(sched, fabric, src, {});
  nic::Nic nic_b(sched, fabric, dst, {});
  firmware::ReliableFirmware fw_a(nic_a, {});
  firmware::ReliableFirmware fw_b(nic_b, {});
  fw_a.routes().populate_all(f.topo, src);
  fw_b.routes().populate_all(f.topo, dst);

  std::vector<std::uint64_t> tags;
  nic_b.set_host_rx([&tags](net::UserHeader u, net::PayloadRef,
                            net::HostId) { tags.push_back(u.w0); });
  for (std::uint64_t i = 0; i < 60; ++i) {
    nic::SendRequest req;
    req.dst = dst;
    req.user.w0 = i;
    req.payload.assign(200, static_cast<std::uint8_t>(i));
    nic_a.host_submit(std::move(req));
  }
  sched.run_until(sim::seconds(60));
  ASSERT_EQ(tags.size(), 60u);
  for (std::uint64_t i = 0; i < 60; ++i) EXPECT_EQ(tags[i], i);
}

TEST_P(RandomFabricProperty, VmmcDepositsMatchGoldenMemoryModel) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.rel.drop_interval = 25;
  cfg.rel.drop_seed = GetParam();
  harness::Cluster c(cfg);
  vmmc::Endpoint tx(c.sched, c.nic(0));
  vmmc::Endpoint rx(c.sched, c.nic(1));
  constexpr std::size_t kExportBytes = 32 * 1024;
  auto exp = rx.export_buffer(kExportBytes);

  std::vector<std::uint8_t> golden(kExportBytes, 0);
  bool done = false;
  [](harness::Cluster& c, vmmc::Endpoint& tx, vmmc::ExportId exp,
     std::vector<std::uint8_t>& golden, std::uint64_t seed,
     bool& done) -> sim::Process {
    sim::Rng rng(seed ^ 0xDE90517);
    auto imp = co_await tx.import(c.hosts[1], exp);
    for (int i = 0; i < 40; ++i) {
      const std::size_t len = 1 + rng.uniform(9000);
      const std::size_t off = rng.uniform(golden.size() - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      // Deposits from one sender are ordered, so the golden model can apply
      // them immediately in submission order.
      for (std::size_t k = 0; k < len; ++k) golden[off + k] = data[k];
      co_await tx.send(*imp, off, std::move(data));
    }
    done = true;
  }(c, tx, exp, golden, GetParam(), done);

  const sim::Time deadline = sim::seconds(120);
  while (!done && c.sched.now() < deadline && c.sched.step()) {
  }
  ASSERT_TRUE(done);
  // Let trailing segments land.
  c.sched.run_until(c.sched.now() + sim::seconds(5));
  const auto buf = rx.buffer(exp);
  const std::vector<std::uint8_t> got(buf.begin(), buf.end());
  EXPECT_EQ(got, golden);
  EXPECT_GT(c.rel(0).stats().injected_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFabricProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sanfault
