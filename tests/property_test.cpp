// Randomized property tests (seed-parameterized, deterministic per seed):
//  * random connected fabrics: BFS shortest routes always deliver, and
//    UP*/DOWN* routes are legal and complete wherever BFS reaches;
//  * random loss patterns: the reliable firmware delivers exactly-once
//    in-order on a random fabric;
//  * random VMMC deposit patterns equal a golden memory model, with the
//    error-injection drop plan active.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <tuple>
#include <vector>

#include "chaos/corruptor.hpp"
#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"
#include "firmware/raw.hpp"
#include "firmware/reliability.hpp"
#include "firmware/updown.hpp"
#include "harness/cluster.hpp"
#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "membership/swim.hpp"
#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault {
namespace {

/// A random connected fabric: 16-port switches in a random tree plus a few
/// redundant cross links, hosts on the free ports.
struct RandomFabric {
  net::Topology topo;
  std::vector<net::HostId> hosts;
};

RandomFabric make_random_fabric(std::uint64_t seed) {
  sim::Rng rng(seed);
  RandomFabric f;
  const std::size_t ns = 3 + rng.uniform(5);   // 3..7 switches
  const std::size_t nh = 4 + rng.uniform(9);   // 4..12 hosts

  std::vector<net::SwitchId> sws;
  std::vector<std::uint8_t> next_port(ns, 0);
  for (std::size_t i = 0; i < ns; ++i) sws.push_back(f.topo.add_switch(16));
  auto take_port = [&](std::size_t s) {
    return net::Port{net::Device::sw(sws[s]), next_port[s]++};
  };
  for (std::size_t i = 1; i < ns; ++i) {
    f.topo.connect(take_port(rng.uniform(i)), take_port(i));
  }
  for (std::size_t e = 0; e + 1 < ns; ++e) {  // redundancy => cycles
    const std::size_t x = rng.uniform(ns);
    const std::size_t y = rng.uniform(ns);
    if (x != y) f.topo.connect(take_port(x), take_port(y));
  }
  for (std::size_t h = 0; h < nh; ++h) {
    const std::size_t s = rng.uniform(ns);
    auto host = f.topo.add_host();
    f.topo.connect(net::Port{net::Device::host(host), 0}, take_port(s));
    f.hosts.push_back(host);
  }
  return f;
}

class RandomFabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFabricProperty, ShortestRoutesAlwaysDeliver) {
  RandomFabric f = make_random_fabric(GetParam());
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = f.topo.shortest_route(a, b);
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v << " (connected fabric)";
      auto end = f.topo.trace_route(a, *r);
      ASSERT_TRUE(end.has_value());
      EXPECT_EQ(*end, net::Device::host(b));
    }
  }
}

TEST_P(RandomFabricProperty, UpDownRoutesLegalAndComplete) {
  RandomFabric f = make_random_fabric(GetParam());
  firmware::UpDownRouting ud(f.topo);
  for (auto a : f.hosts) {
    for (auto b : f.hosts) {
      if (a == b) continue;
      auto r = ud.route(a, b);
      // Complete: every BFS-reachable pair has a legal UP*/DOWN* route on a
      // connected fabric.
      ASSERT_TRUE(r.has_value()) << a.v << "->" << b.v;
      auto end = f.topo.trace_route(a, *r);
      ASSERT_TRUE(end.has_value());
      EXPECT_EQ(*end, net::Device::host(b));
      // Legal: no up-link after the first down-link.
      auto att = f.topo.peer_of({net::Device::host(a), 0});
      net::Device cur = att->peer.dev;
      bool gone_down = false;
      for (std::uint8_t p : r->ports) {
        auto hop = f.topo.peer_of({cur, p});
        ASSERT_TRUE(hop.has_value());
        const bool up = ud.is_up(hop->link, cur);
        if (up) {
          EXPECT_FALSE(gone_down) << "down->up transition " << a.v << "->" << b.v;
        } else {
          gone_down = true;
        }
        cur = hop->peer.dev;
      }
    }
  }
}

TEST_P(RandomFabricProperty, RawFabricDeliversAlongComputedRoutes) {
  RandomFabric f = make_random_fabric(GetParam());
  sim::Rng rng(GetParam() ^ 0xFAB);
  sim::Scheduler sched;
  net::Fabric fabric(sched, f.topo, {});
  std::vector<int> got(f.topo.num_hosts(), 0);
  for (auto h : f.hosts) {
    fabric.attach(h, [&got, h](net::Packet&&) { ++got[h.v]; });
  }
  int sent = 0;
  for (int i = 0; i < 64; ++i) {
    const auto a = f.hosts[rng.uniform(f.hosts.size())];
    const auto b = f.hosts[rng.uniform(f.hosts.size())];
    if (a == b) continue;
    net::Packet p;
    p.hdr.src = a;
    p.hdr.dst = b;
    p.hdr.route = *f.topo.shortest_route(a, b);
    p.payload.assign(rng.uniform(2048), 0x77);
    fabric.inject(a, std::move(p));
    ++sent;
  }
  sched.run();
  EXPECT_EQ(fabric.stats().delivered, static_cast<std::uint64_t>(sent));
  EXPECT_EQ(fabric.stats().dropped_total(), 0u);
}

TEST_P(RandomFabricProperty, ReliableExactlyOnceOnRandomFabricWithLoss) {
  RandomFabric f = make_random_fabric(GetParam());
  sim::Rng rng(GetParam() ^ 0x10);
  sim::Scheduler sched;
  net::FabricConfig fc;
  fc.seed = GetParam();
  net::Fabric fabric(sched, f.topo, fc);
  // Lossy wires everywhere.
  for (std::uint32_t l = 0; l < f.topo.num_links(); ++l) {
    fabric.link_faults(net::LinkId{l}).loss_prob = 0.05;
    fabric.link_faults(net::LinkId{l}).corrupt_prob = 0.02;
  }
  const auto src = f.hosts[rng.uniform(f.hosts.size())];
  auto dst = src;
  while (dst == src) dst = f.hosts[rng.uniform(f.hosts.size())];

  nic::Nic nic_a(sched, fabric, src, {});
  nic::Nic nic_b(sched, fabric, dst, {});
  firmware::ReliableFirmware fw_a(nic_a, {});
  firmware::ReliableFirmware fw_b(nic_b, {});
  fw_a.routes().populate_all(f.topo, src);
  fw_b.routes().populate_all(f.topo, dst);

  std::vector<std::uint64_t> tags;
  nic_b.set_host_rx([&tags](net::UserHeader u, net::PayloadRef,
                            net::HostId) { tags.push_back(u.w0); });
  for (std::uint64_t i = 0; i < 60; ++i) {
    nic::SendRequest req;
    req.dst = dst;
    req.user.w0 = i;
    req.payload.assign(200, static_cast<std::uint8_t>(i));
    nic_a.host_submit(std::move(req));
  }
  sched.run_until(sim::seconds(60));
  ASSERT_EQ(tags.size(), 60u);
  for (std::uint64_t i = 0; i < 60; ++i) EXPECT_EQ(tags[i], i);
}

TEST_P(RandomFabricProperty, VmmcDepositsMatchGoldenMemoryModel) {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.rel.drop_interval = 25;
  cfg.rel.drop_seed = GetParam();
  harness::Cluster c(cfg);
  vmmc::Endpoint tx(c.sched, c.nic(0));
  vmmc::Endpoint rx(c.sched, c.nic(1));
  constexpr std::size_t kExportBytes = 32 * 1024;
  auto exp = rx.export_buffer(kExportBytes);

  std::vector<std::uint8_t> golden(kExportBytes, 0);
  bool done = false;
  [](harness::Cluster& c, vmmc::Endpoint& tx, vmmc::ExportId exp,
     std::vector<std::uint8_t>& golden, std::uint64_t seed,
     bool& done) -> sim::Process {
    sim::Rng rng(seed ^ 0xDE90517);
    auto imp = co_await tx.import(c.hosts[1], exp);
    for (int i = 0; i < 40; ++i) {
      const std::size_t len = 1 + rng.uniform(9000);
      const std::size_t off = rng.uniform(golden.size() - len);
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      // Deposits from one sender are ordered, so the golden model can apply
      // them immediately in submission order.
      for (std::size_t k = 0; k < len; ++k) golden[off + k] = data[k];
      co_await tx.send(*imp, off, std::move(data));
    }
    done = true;
  }(c, tx, exp, golden, GetParam(), done);

  const sim::Time deadline = sim::seconds(120);
  while (!done && c.sched.now() < deadline && c.sched.step()) {
  }
  ASSERT_TRUE(done);
  // Let trailing segments land.
  c.sched.run_until(c.sched.now() + sim::seconds(5));
  const auto buf = rx.buffer(exp);
  const std::vector<std::uint8_t> got(buf.begin(), buf.end());
  EXPECT_EQ(got, golden);
  EXPECT_GT(c.rel(0).stats().injected_drops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFabricProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Reliability battery: 3 properties x 70 seeds = 210 deterministic cases.
// Each seed draws its own per-link drop/duplicate/reorder schedule (the
// LinkFaults transient-fault knobs), so the battery sweeps a grid of fault
// mixes on a two-host Figure-2 rig while every case stays reproducible.

harness::ClusterConfig battery_cfg() {
  harness::ClusterConfig cfg;
  cfg.num_hosts = 2;  // host 0 on sw8_a, host 1 on sw16_a: a 2-switch path
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  return cfg;
}

void run_until_done(harness::Cluster& c, sim::Time deadline,
                    const std::function<bool()>& done) {
  while (!done() && c.sched.now() < deadline && c.sched.step()) {
  }
}

class ReliabilityBattery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliabilityBattery, ExactlyOnceInOrderUnderDropDupReorder) {
  const std::uint64_t seed = GetParam();
  sim::Rng knobs(seed ^ 0xBA77E51);
  auto cfg = battery_cfg();
  cfg.fabric.seed = seed;
  harness::Cluster c(cfg);
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.02 + 0.05 * knobs.uniform_double();
    lf.dup_prob = 0.02 + 0.06 * knobs.uniform_double();
    lf.reorder_prob = 0.02 + 0.08 * knobs.uniform_double();
    lf.reorder_delay = sim::microseconds(5 + knobs.uniform(60));
    lf.corrupt_prob = 0.01;
  }

  std::vector<std::uint64_t> tags;
  c.nic(1).set_host_rx(
      [&tags](net::UserHeader u, net::PayloadRef, net::HostId) {
        tags.push_back(u.w0);
      });
  constexpr std::uint64_t kMsgs = 60;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    net::UserHeader u;
    u.w0 = i;
    c.send(0, 1, std::vector<std::uint8_t>(160, static_cast<std::uint8_t>(i)),
           u);
  }
  run_until_done(c, sim::seconds(120), [&] { return tags.size() >= kMsgs; });
  // No generation restarts happen here, so delivery is strictly exactly-once
  // in order: duplicates and reordered arrivals are receiver-side drops.
  ASSERT_EQ(tags.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(tags[i], i);
  // The schedule actually exercised the fault paths.
  const auto& fs = c.fabric().stats();
  EXPECT_GT(fs.duplicates_injected + fs.reorders_injected + fs.dropped_random +
                fs.corruptions_injected,
            0u);
  // Every send buffer returns to the pool once the stream is acknowledged.
  c.sched.run_until(c.sched.now() + sim::seconds(2));
  EXPECT_EQ(c.nic(0).send_pool().free_count(),
            c.nic(0).send_pool().capacity());
  EXPECT_EQ(c.rel(0).stats().path_failures, 0u);
}

TEST_P(ReliabilityBattery, CumulativeAcksNeverRegressWithinGeneration) {
  const std::uint64_t seed = GetParam();
  sim::Rng knobs(seed ^ 0xACCACC);
  auto cfg = battery_cfg();
  cfg.fabric.seed = seed;
  harness::Cluster c(cfg);
  // Loss + duplication + corruption, but no reordering: links are FIFO, so
  // the wire-observed cumulative-ACK stream of each (sender, ack_gen) pair
  // must be non-decreasing — a lost ACK skips values, a duplicated ACK
  // repeats one, but cumulative acknowledgment can never move backwards.
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.02 + 0.05 * knobs.uniform_double();
    lf.dup_prob = 0.02 + 0.08 * knobs.uniform_double();
    lf.corrupt_prob = 0.01;
  }

  std::map<std::uint64_t, std::uint32_t> high;  // (src,dst,ack_gen) -> max ack
  std::uint64_t observed = 0;
  std::uint64_t violations = 0;
  c.fabric().set_delivery_hook([&](const net::Packet& p, net::HostId to) {
    const bool carries_ack = p.hdr.type == net::PacketType::kAck ||
                             (p.hdr.flags & net::kFlagPiggyAck) != 0;
    if (!carries_ack) return;
    const std::uint64_t key = (static_cast<std::uint64_t>(p.hdr.src.v) << 32) |
                              (static_cast<std::uint64_t>(to.v) << 16) |
                              p.hdr.ack_gen;
    auto [it, fresh] = high.try_emplace(key, p.hdr.ack);
    if (!fresh) {
      if (p.hdr.ack < it->second) {
        ++violations;
      } else {
        it->second = p.hdr.ack;
      }
    }
    ++observed;
  });

  // Bidirectional traffic so both piggy-backed and explicit ACKs flow both
  // ways.
  std::vector<std::uint64_t> fwd, rev;
  c.nic(1).set_host_rx([&fwd](net::UserHeader u, net::PayloadRef,
                              net::HostId) { fwd.push_back(u.w0); });
  c.nic(0).set_host_rx([&rev](net::UserHeader u, net::PayloadRef,
                              net::HostId) { rev.push_back(u.w0); });
  constexpr std::uint64_t kMsgs = 40;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    net::UserHeader u;
    u.w0 = i;
    c.send(0, 1, std::vector<std::uint8_t>(120, 1), u);
    c.send(1, 0, std::vector<std::uint8_t>(120, 2), u);
  }
  run_until_done(c, sim::seconds(120), [&] {
    return fwd.size() >= kMsgs && rev.size() >= kMsgs;
  });
  ASSERT_EQ(fwd.size(), kMsgs);
  ASSERT_EQ(rev.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(fwd[i], i);
    EXPECT_EQ(rev[i], i);
  }
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(violations, 0u);
  EXPECT_GT(c.rel(0).stats().ack_advances, 0u);
  EXPECT_GT(c.rel(1).stats().ack_advances, 0u);
}

/// Paced one-way stream that resets the sender NIC right after submitting
/// selected messages. 100 us later the fresh packet is still unacknowledged
/// (single-packet ACKs wait for a retransmission round), so every reset finds
/// pending work and must recover it via remap + generation restart.
sim::Process stream_with_resets(harness::Cluster& c, std::uint64_t n,
                                std::vector<std::uint64_t> reset_after) {
  for (std::uint64_t i = 0; i < n; ++i) {
    net::UserHeader u;
    u.w0 = i;
    c.send(0, 1, std::vector<std::uint8_t>(96, static_cast<std::uint8_t>(i)),
           u);
    bool reset_here = false;
    for (std::uint64_t r : reset_after) reset_here |= (r == i);
    if (reset_here) {
      co_await sim::DelayFor{c.sched, sim::microseconds(100)};
      c.rel(0).nic_reset();
      co_await sim::DelayFor{c.sched, sim::microseconds(200)};
    } else {
      co_await sim::DelayFor{c.sched, sim::microseconds(300)};
    }
  }
}

TEST_P(ReliabilityBattery, StaleGenerationDropsOnlyAfterGenerationRestart) {
  const std::uint64_t seed = GetParam();
  sim::Rng knobs(seed ^ 0x57A1E);
  auto cfg = battery_cfg();
  cfg.fabric.seed = seed;
  cfg.mapper = harness::MapperKind::kOnDemand;  // resets re-map on demand
  cfg.ondemand.probe_retries = 6;  // probes must survive the lossy wires
  // The reorder schedule below delays individual traversals by up to 220 us,
  // and a probe RTT crosses several links each way — the 300 us default
  // timeout would count a merely-delayed reply as a dead port, and an
  // unlucky streak of those can fail the whole remap (marking the peer
  // unreachable, which this test's delivery assertion forbids). Give probes
  // a timeout that cumulative reorder delay cannot starve.
  cfg.ondemand.probe_timeout = sim::milliseconds(2);
  harness::Cluster c(cfg);
  // Heavy reordering: packets from the pre-reset generation get delayed past
  // the renumbered post-restart stream and arrive recognizably stale.
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.01;
    lf.dup_prob = 0.05 * knobs.uniform_double();
    lf.reorder_prob = 0.15 + 0.25 * knobs.uniform_double();
    lf.reorder_delay = sim::microseconds(20 + knobs.uniform(200));
  }

  constexpr std::uint64_t kMsgs = 60;
  std::vector<std::uint64_t> tags;
  std::vector<char> seen(kMsgs, 0);
  std::size_t distinct = 0;
  c.nic(1).set_host_rx([&](net::UserHeader u, net::PayloadRef, net::HostId) {
    tags.push_back(u.w0);
    if (u.w0 < kMsgs && !seen[u.w0]) {
      seen[u.w0] = 1;
      ++distinct;
    }
  });
  // Temporal witness: at the instant of the sender's first generation
  // restart the receiver must not have dropped anything as stale yet —
  // stale-generation drops require a preceding restart, never the reverse.
  bool restart_seen = false;
  std::uint64_t stale_at_first_restart = 0;
  c.rel(0).set_event_hook([&](const firmware::FwEvent& ev) {
    if (ev.kind == firmware::FwEvent::Kind::kGenRestart && !restart_seen) {
      restart_seen = true;
      stale_at_first_restart = c.rel(1).stats().stale_gen_drops;
    }
  });

  stream_with_resets(c, kMsgs, {20, 40});
  run_until_done(c, sim::seconds(120), [&] { return distinct >= kMsgs; });
  c.sched.run_until(c.sched.now() + sim::milliseconds(50));  // trailing copies
  ASSERT_EQ(distinct, kMsgs);

  // First deliveries arrive in submission order, across generation restarts;
  // a restart may replay the unacknowledged suffix (host-level duplicates),
  // but can never deliver a later message before an earlier one.
  std::vector<std::uint64_t> firsts;
  std::vector<char> mark(kMsgs, 0);
  for (std::uint64_t t : tags) {
    if (t < kMsgs && !mark[t]) {
      mark[t] = 1;
      firsts.push_back(t);
    }
  }
  ASSERT_EQ(firsts.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(firsts[i], i);

  const auto& tx = c.rel(0).stats();
  const auto& rx = c.rel(1).stats();
  EXPECT_EQ(tx.nic_resets, 2u);
  EXPECT_GT(tx.generation_restarts, 0u);
  ASSERT_TRUE(restart_seen);
  EXPECT_EQ(stale_at_first_restart, 0u);
  // Duplicate host deliveries only ever come from a restart's suffix replay.
  if (tags.size() > kMsgs) {
    EXPECT_GT(tx.generation_restarts, 0u);
  }
  // Every in-order acceptance reached the host and vice versa — data is
  // never silently consumed between the protocol and the host library.
  EXPECT_EQ(rx.data_rx_in_order, static_cast<std::uint64_t>(tags.size()));
}

/// Links a route traverses, in path order (access links included).
std::vector<net::LinkId> route_links(const harness::Cluster& c,
                                     std::size_t src, const net::Route& r) {
  std::vector<net::LinkId> links;
  auto att = c.topo.peer_of({net::Device::host(c.hosts[src]), 0});
  EXPECT_TRUE(att.has_value());
  links.push_back(att->link);
  net::Device cur = att->peer.dev;
  for (const std::uint8_t p : r.ports) {
    auto hop = c.topo.peer_of({cur, p});
    EXPECT_TRUE(hop.has_value());
    links.push_back(hop->link);
    cur = hop->peer.dev;
  }
  return links;
}

TEST_P(ReliabilityBattery, ExactlyOnceWhenPromotedBackupIsItselfDead) {
  // Proactive backups with a poisoned failover: the fault pattern kills the
  // primary's first trunk AND the backup's middle trunk, so the promotion
  // candidate is as dead as the primary. The mapper must reject it
  // (trace_route_up) and fall back to probing — never deliver over a wrong
  // route — and the stream must stay lossless with first deliveries in
  // order. A live mixed path (primary's surviving trunks + the backup's)
  // always exists, so the fallback mapping is guaranteed to succeed.
  const std::uint64_t seed = GetParam();
  sim::Rng knobs(seed ^ 0xBAC0FF);
  harness::ClusterConfig cfg;
  cfg.num_hosts = 8;  // host 0 on sw8_a, host 3 on sw8_b: distance 4
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.ondemand.proactive_backup = true;
  cfg.ondemand.probe_retries = 6;  // probes must survive the lossy wires
  cfg.rel.fail_threshold = sim::milliseconds(10);
  cfg.rel.fail_min_rounds = 8;
  cfg.nic.send_buffers = 64;
  cfg.fabric.seed = seed;
  harness::Cluster c(cfg);
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.03 * knobs.uniform_double();
    lf.dup_prob = 0.03 * knobs.uniform_double();
  }

  const net::Route* primary = c.mapper(0).cached_route(c.hosts[3]);
  ASSERT_NE(primary, nullptr);
  const auto* slot = c.mapper(0).cached_backup(c.hosts[3]);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(slot->has_value());
  const auto plinks = route_links(c, 0, *primary);
  const auto blinks = route_links(c, 0, (*slot)->route);
  ASSERT_EQ(plinks.size(), 5u);  // access + 3 trunks + access
  ASSERT_EQ(blinks.size(), 5u);
  c.topo.set_link_up(plinks[1], false);  // primary's sw8_a - sw16_a trunk
  c.topo.set_link_up(blinks[2], false);  // backup's sw16_a - sw16_b trunk

  constexpr std::uint64_t kMsgs = 60;
  std::vector<std::uint64_t> tags;
  std::vector<char> seen(kMsgs, 0);
  std::size_t distinct = 0;
  c.nic(3).set_host_rx([&](net::UserHeader u, net::PayloadRef, net::HostId) {
    tags.push_back(u.w0);
    if (u.w0 < kMsgs && !seen[u.w0]) {
      seen[u.w0] = 1;
      ++distinct;
    }
  });
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * sim::microseconds(300),
                  [&c, i] {
                    net::UserHeader u;
                    u.w0 = i;
                    c.send(0, 3,
                           std::vector<std::uint8_t>(
                               96, static_cast<std::uint8_t>(i)),
                           u);
                  });
  }
  run_until_done(c, sim::seconds(120), [&] { return distinct >= kMsgs; });
  c.sched.run_until(c.sched.now() + sim::milliseconds(50));  // trailing copies
  ASSERT_EQ(distinct, kMsgs);

  // First deliveries in submission order (a restart may replay the
  // unacknowledged suffix; it can never reorder or lose).
  std::vector<char> mark(kMsgs, 0);
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t t : tags) {
    if (t < kMsgs && !mark[t]) {
      mark[t] = 1;
      firsts.push_back(t);
    }
  }
  ASSERT_EQ(firsts.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(firsts[i], i);

  const auto& st = c.mapper(0).stats();
  EXPECT_GE(st.backup_stale_rejections, 1u);  // the dead backup was refused
  EXPECT_GE(st.mappings_succeeded, 1u);       // probing found the mixed path
  EXPECT_GE(c.rel(0).stats().generation_restarts, 1u);
}

INSTANTIATE_TEST_SUITE_P(FaultSchedules, ReliabilityBattery,
                         ::testing::Range<std::uint64_t>(1000, 1070));

// ---------------------------------------------------------------------------
// Self-stabilization battery (ROADMAP item 4, docs/CHAOS.md "State
// corruption"): 6 corruption classes x (25 seeds on fig2-16 + 10 seeds on
// clos-64) = 210 deterministic cases. Each case garbles live protocol state
// three times mid-stream through the chaos scenario DSL (all three rewrite
// modes, seed-rotated), kills a trunk on the primary route for good measure,
// and then demands:
//  * Phase A (under corruption): first deliveries in submission order, no
//    silent loss except from receiver-cursor (`ack`) corruption, which can
//    forfeit at most the in-flight window;
//  * a witness: at least one scrub repair, generation restart or NIC reset
//    at/after the first corruption — corrupted state is repaired, never
//    silently tolerated;
//  * Phase B (after the scrub horizon): a fresh message burst delivered
//    exactly-once, in order — the Dolev-style convergence property.

constexpr const char* kCorruptClasses[] = {"seq",        "ack",
                                           "gen",        "retx_queue",
                                           "path_cache", "backup_slot"};

void run_self_stab_case(harness::TopoKind topo, std::size_t num_hosts,
                        int cls, std::uint64_t seed) {
  const char* cls_name = kCorruptClasses[cls];
  sim::Rng knobs(seed ^ 0x5E1F57ABull);
  harness::ClusterConfig cfg;
  cfg.num_hosts = num_hosts;
  cfg.topo = topo;
  cfg.fw = harness::FirmwareKind::kReliable;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.ondemand.proactive_backup = true;  // backup_slot needs a live slot
  cfg.ondemand.probe_retries = 6;
  cfg.ondemand.probe_timeout = sim::milliseconds(2);
  cfg.rel.fail_threshold = sim::milliseconds(10);
  cfg.rel.fail_min_rounds = 8;
  cfg.nic.send_buffers = 64;
  cfg.fabric.seed = seed;
  harness::Cluster c(cfg);

  // Pick the first destination whose route crosses >= 2 trunks, so killing
  // the first trunk leaves the redundant rest of the fabric to remap over.
  std::size_t dsti = 0;
  std::vector<net::LinkId> plinks;
  for (std::size_t h = 1; h < c.hosts.size(); ++h) {
    auto r = c.topo.shortest_route(c.hosts[0], c.hosts[h]);
    ASSERT_TRUE(r.has_value());
    auto links = route_links(c, 0, *r);
    if (links.size() >= 4) {
      dsti = h;
      plinks = std::move(links);
      break;
    }
  }
  ASSERT_NE(dsti, 0u) << "no multi-trunk destination in this topology";

  // Background link noise: light loss and duplication everywhere.
  for (std::uint32_t l = 0; l < c.topo.num_links(); ++l) {
    auto& lf = c.fabric().link_faults(net::LinkId{l});
    lf.loss_prob = 0.02 * knobs.uniform_double();
    lf.dup_prob = 0.02 * knobs.uniform_double();
  }

  // Three corruptions mid-Phase-A cycling all rewrite modes, then a trunk
  // kill. `ack` garbles the receiver cursor, so it targets dst; `gen` hits
  // either end by seed; everything else is sender-side state. retx_queue
  // kills the trunk FIRST so the queue is guaranteed non-empty (no acks
  // drain it) when the corruptions land. `path_cache` pins every event to
  // the traffic peer: a flip on an idle entry (or onto a parallel trunk
  // that still reaches dst) is semantically harmless and would leave no
  // repair to witness, so the final rewrite must land on the live route.
  const bool dst_side = cls == 1 || (cls == 2 && seed % 2 == 1);
  const std::uint32_t chost = dst_side ? c.hosts[dsti].v : c.hosts[0].v;
  const std::uint32_t cpeer = dst_side ? c.hosts[0].v : c.hosts[dsti].v;
  const bool pin_peer = cls == 4;
  const char* modes[] = {"flip", "zero", "rand"};
  std::ostringstream sc;
  sc << "scenario selfstab-" << cls_name << "\nseed " << seed << "\n"
     << "at 2ms corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[seed % 3]
     << (pin_peer ? " peer=" + std::to_string(cpeer) : "") << "\n"
     << "at 2600us corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[(seed + 1) % 3] << " peer=" << cpeer << "\n"
     << "at 3200us corrupt host=" << chost << " state=" << cls_name
     << " mode=" << modes[(seed + 2) % 3]
     << (pin_peer ? " peer=" + std::to_string(cpeer) : "") << "\n"
     << "at " << (cls == 3 ? "1500us" : "4ms")
     << " link_down link=" << plinks[1].v << "\n";

  chaos::ChaosEngine eng(c.sched, c.fabric(),
                         chaos::Scenario::parse(sc.str()));
  chaos::StateCorruptor corr(c.sched, seed ^ 0xC0DE5EEDull);
  for (std::size_t i = 0; i < c.size(); ++i) {
    corr.bind(c.hosts[i], &c.rel(i), &c.mapper(i));
  }
  eng.set_corruptor(&corr);
  eng.arm();

  // Witness: recovery machinery demonstrably fired at/after the first
  // corruption (the trunk kill guarantees a generation restart even when a
  // corruption lands benignly, e.g. on an entry acked before any scrub).
  std::uint64_t witness_events = 0;
  const auto witness_hook = [&](const firmware::FwEvent& ev) {
    const bool counts = ev.kind == firmware::FwEvent::Kind::kScrubRepair ||
                        ev.kind == firmware::FwEvent::Kind::kGenRestart ||
                        ev.kind == firmware::FwEvent::Kind::kNicReset;
    if (counts && c.sched.now() >= sim::milliseconds(2)) ++witness_events;
  };
  c.rel(0).set_event_hook(witness_hook);
  c.rel(dsti).set_event_hook(witness_hook);

  constexpr std::uint64_t kPhaseA = 40;
  constexpr std::uint64_t kPhaseB = 20;
  constexpr std::uint64_t kBTag = 100;  // Phase B tags: 100..119
  std::vector<std::uint64_t> tags;
  c.nic(dsti).set_host_rx([&](net::UserHeader u, net::PayloadRef,
                              net::HostId) { tags.push_back(u.w0); });
  for (std::uint64_t i = 0; i < kPhaseA; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * sim::microseconds(300),
                  [&c, dsti, i] {
                    net::UserHeader u;
                    u.w0 = i;
                    c.send(0, dsti,
                           std::vector<std::uint8_t>(
                               96, static_cast<std::uint8_t>(i)),
                           u);
                  });
  }

  // Phase A horizon: converged when the sender's channel has drained and no
  // remap is in flight (receiver-cursor corruption can forfeit deliveries,
  // so "all 40 arrived" is not the convergence signal).
  run_until_done(c, sim::seconds(120), [&] {
    if (c.sched.now() < sim::milliseconds(13)) return false;
    const firmware::TxChannel* ch =
        c.rel(0).chaos_tx_channel(c.hosts[dsti]);
    return ch != nullptr && ch->retrans_queue.empty() &&
           !ch->remap_in_flight && !ch->unreachable;
  });
  c.sched.run_until(c.sched.now() + sim::milliseconds(20));  // settle dups

  ASSERT_GE(corr.applied(), 1u)
      << cls_name << ": no corruption rewrote live state\n"
      << eng.log_text();
  EXPECT_GE(witness_events, 1u)
      << cls_name << ": corruption repaired with no scrub/restart witness\n"
      << eng.log_text() << "tx0: gen_restarts="
      << c.rel(0).stats().generation_restarts
      << " path_failures=" << c.rel(0).stats().path_failures
      << " scrub_tx=" << c.rel(0).stats().scrub_tx_repairs
      << " bogus=" << c.rel(0).stats().scrub_bogus_acks;

  // Phase A: first deliveries in submission order; silent loss only from
  // the receiver-cursor class, bounded by the in-flight window. That class
  // is also exempt from the ordering check: a forward-jumped expected_seq
  // dup-drops in-flight messages whose replay (after the generation restart)
  // then lands *after* tags the jumped cursor already admitted.
  std::vector<char> seen_a(kPhaseA, 0);
  std::uint64_t prev_first = 0;
  bool have_first = false;
  std::size_t distinct_a = 0;
  for (std::uint64_t t : tags) {
    if (t >= kPhaseA || seen_a[t]) continue;
    seen_a[t] = 1;
    ++distinct_a;
    if (have_first && cls != 1) {
      EXPECT_GT(t, prev_first) << cls_name << ": first deliveries reordered";
    }
    prev_first = t;
    have_first = true;
  }
  if (cls == 1) {
    EXPECT_GE(distinct_a, kPhaseA - 12)
        << cls_name << ": lost more than the in-flight window";
  } else {
    EXPECT_EQ(distinct_a, kPhaseA) << cls_name << ": silent message loss";
  }

  // Phase B: past the scrub horizon the protocol must be exactly-once
  // in-order again.
  const std::size_t b_start = tags.size();
  for (std::uint64_t i = 0; i < kPhaseB; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * sim::microseconds(300),
                  [&c, dsti, i] {
                    net::UserHeader u;
                    u.w0 = kBTag + i;
                    c.send(0, dsti,
                           std::vector<std::uint8_t>(
                               96, static_cast<std::uint8_t>(i)),
                           u);
                  });
  }
  std::size_t distinct_b = 0;
  std::vector<char> seen_b(kPhaseB, 0);
  run_until_done(c, c.sched.now() + sim::seconds(60), [&] {
    distinct_b = 0;
    for (std::size_t i = b_start; i < tags.size(); ++i) {
      const std::uint64_t t = tags[i];
      if (t >= kBTag && t < kBTag + kPhaseB && !seen_b[t - kBTag]) {
        seen_b[t - kBTag] = 1;
      }
    }
    for (char s : seen_b) distinct_b += (s != 0);
    return distinct_b >= kPhaseB;
  });
  c.sched.run_until(c.sched.now() + sim::milliseconds(20));  // trailing dups

  std::vector<std::uint64_t> b_tags;
  for (std::size_t i = b_start; i < tags.size(); ++i) {
    if (tags[i] >= kBTag && tags[i] < kBTag + kPhaseB) {
      b_tags.push_back(tags[i]);
    }
  }
  ASSERT_EQ(b_tags.size(), kPhaseB)
      << cls_name << ": post-horizon burst was not exactly-once";
  for (std::uint64_t i = 0; i < kPhaseB; ++i) {
    EXPECT_EQ(b_tags[i], kBTag + i)
        << cls_name << ": post-horizon burst out of order";
  }
}

using SelfStabParam = std::tuple<int, std::uint64_t>;

class SelfStabilization : public ::testing::TestWithParam<SelfStabParam> {};
class SelfStabilizationClos : public ::testing::TestWithParam<SelfStabParam> {
};

TEST_P(SelfStabilization, ConvergesOnFigure2) {
  run_self_stab_case(harness::TopoKind::kFigure2, 16,
                     std::get<0>(GetParam()), std::get<1>(GetParam()));
}

TEST_P(SelfStabilizationClos, ConvergesOnClos64) {
  run_self_stab_case(harness::TopoKind::kClos, 64, std::get<0>(GetParam()),
                     std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, SelfStabilization,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Range<std::uint64_t>(9000, 9025)));

INSTANTIATE_TEST_SUITE_P(
    AllClasses, SelfStabilizationClos,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Range<std::uint64_t>(9100, 9110)));

// ---------------------------------------------------------------------------
// Striped host-kill-during-write battery: per seed, a paced stream of striped
// PUTs is in flight when a seed-chosen server host is cut. Every PUT must
// still commit (per-unit retries chase the re-homed holders once SWIM
// confirms), every object must read back byte-exact afterwards, the live
// repair machines must converge without abandoning a stripe, and the
// extended exactly-once audit must come back clean under the survivors' view.

class StripedKillDuringWrite : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StripedKillDuringWrite, AllWritesCommitAndAuditClean) {
  const std::uint64_t seed = GetParam();
  sim::Rng knobs(seed ^ 0x57C1BEDull);

  kv::KvRigConfig rc;
  rc.num_servers = 8;  // k+m = 6 units need 6+ distinct holders
  rc.num_client_hosts = 2;
  rc.striped = true;
  rc.membership = true;
  rc.ring_per_peer = 16 * 1024;
  rc.cluster.fabric.seed = seed;
  kv::KvRig rig(rc);

  const std::size_t victim_idx = knobs.uniform(rc.num_servers);
  const net::HostId victim = rig.c.hosts[victim_idx];
  // Live witness for the post-mortem membership view (the victim's own agent
  // ends up believing everyone else is dead).
  membership::SwimAgent& witness =
      *rig.agents[victim_idx == 0 ? 1 : 0];

  // The kill lands mid-stream: writes are paced 100 us apart (~3 ms total),
  // the cut fires at a seed-chosen instant inside that window.
  constexpr std::uint64_t kKeys = 30;
  const sim::Duration kill_at =
      sim::microseconds(300 + knobs.uniform(2200));
  rig.c.sched.after(kill_at,
                    [&rig, victim] { rig.c.fabric().cut_host(victim); });

  kv::StripedShadow shadow;
  bool wrote = false;
  [](kv::KvRig& rig, kv::StripedShadow& shadow, std::uint64_t seed,
     bool& done) -> sim::Process {
    sim::Rng lens(seed ^ 0x1E4);
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      const kv::RequestId id{11, key + 1};
      const std::uint32_t len =
          static_cast<std::uint32_t>(24 + lens.uniform(127));
      shadow.record_issued(id, key, len);
      auto put = co_await sc.put(id, key, kv::make_value(id, len));
      EXPECT_EQ(put.status, kv::Status::kOk) << "key " << key;
      if (put.status == kv::Status::kOk) shadow.record_committed(id);
      co_await sim::DelayFor{rig.c.sched, sim::microseconds(100)};
    }
    done = true;
  }(rig, shadow, seed, wrote);
  run_until_done(rig.c, sim::seconds(30), [&] { return wrote; });
  ASSERT_TRUE(wrote);

  rig.c.sched.run_for(membership::SwimAgent::detection_bound(
                          rig.config().swim, rig.c.size()) +
                      sim::milliseconds(5));
  ASSERT_TRUE(witness.confirmed_dead(victim));

  // Every committed object reads back byte-exact from the other client host,
  // degraded or not (repair may still be running).
  bool read = false;
  [](kv::KvRig& rig, const kv::StripedShadow& shadow,
     bool& done) -> sim::Process {
    auto& sc = rig.striped_client(1);
    for (const auto& [packed, w] : shadow.issued()) {
      auto get = co_await sc.get({12, w.id.seq}, w.key);
      EXPECT_EQ(get.status, kv::Status::kOk) << "key " << w.key;
      EXPECT_EQ(get.value, kv::make_value(w.id, w.object_len))
          << "key " << w.key;
    }
    done = true;
  }(rig, shadow, read);
  run_until_done(rig.c, rig.c.sched.now() + sim::seconds(30),
                 [&] { return read; });
  ASSERT_TRUE(read);

  rig.quiesce();
  for (const auto& rm : rig.repairs) {
    if (rm->host() == victim) continue;  // the corpse repairs into the void
    EXPECT_EQ(rm->stats().stripes_abandoned, 0u)
        << "node " << rm->host().v << " gave up on a stripe";
  }

  const auto dead = [&witness](net::HostId h) {
    return witness.confirmed_dead(h);
  };
  const auto audit = kv::audit_striped(*rig.stripe_map, *rig.codec,
                                       rig.store_view(), shadow, dead);
  EXPECT_EQ(audit.committed, kKeys);
  EXPECT_EQ(audit.lost, 0u);
  EXPECT_EQ(audit.mismatched, 0u);
  EXPECT_EQ(audit.duplicated, 0u);
  EXPECT_EQ(audit.incomplete, 0u);
  EXPECT_EQ(audit.alien_units, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripedKillDuringWrite,
                         ::testing::Range<std::uint64_t>(4200, 4208));

}  // namespace
}  // namespace sanfault
