// Serial-vs-parallel equivalence battery (the PDES engine's oracle check).
//
// The conservative parallel engine must be an *exact* drop-in for the serial
// scheduler: for the same ClusterConfig, seed, workload and horizon, a
// ParallelCluster run — at any worker thread count — must reproduce the
// serial Cluster's wire-level fabric stats, the full metrics JSON byte for
// byte, and (when a chaos scenario is armed) the chaos event log byte for
// byte. Determinism is keyed to the partition count, not the thread count,
// so one partitioned run is compared across threads {2, 4, 8} and against a
// fixed-thread rerun (bit-reproducibility of the parallel engine itself).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/scenario.hpp"
#include "harness/cluster.hpp"
#include "harness/parallel_cluster.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::ParallelCluster;
using harness::ParallelClusterConfig;

std::string stats_text(const net::FabricStats& s) {
  std::ostringstream os;
  os << "injected=" << s.injected << " delivered=" << s.delivered
     << " delivered_corrupt=" << s.delivered_corrupt
     << " corruptions=" << s.corruptions_injected
     << " duplicates=" << s.duplicates_injected
     << " reorders=" << s.reorders_injected
     << " drop_link=" << s.dropped_link_down
     << " drop_switch=" << s.dropped_switch_dead
     << " drop_misroute=" << s.dropped_misroute
     << " drop_random=" << s.dropped_random
     << " drop_path_reset=" << s.dropped_path_reset
     << " drop_unattached=" << s.dropped_unattached;
  return os.str();
}

/// Everything a run produces that the battery byte-compares.
struct RunOut {
  std::string stats;
  std::string metrics;
  std::string chaos_log;
};

/// Pod-major ring: sort hosts by (pod, index) and have each send to its
/// successor — most traffic stays inside a partition, the pod seams cross
/// it, so both the local fast path and the channel path are exercised.
std::vector<std::size_t> ring_next(const std::vector<std::uint32_t>& pods) {
  std::vector<std::size_t> order(pods.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pods[a] < pods[b];
                   });
  std::vector<std::size_t> next(pods.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    next[order[i]] = order[(i + 1) % order.size()];
  }
  return next;
}

/// Self-clocked sender: each accepted submission triggers the next, so the
/// whole workload is causally driven by per-host local events.
template <class Rig>
struct RingPump {
  Rig& rig;
  std::vector<std::size_t> next;
  std::vector<int> remaining;

  RingPump(Rig& r, const std::vector<std::uint32_t>& pods, int msgs)
      : rig(r), next(ring_next(pods)), remaining(pods.size(), msgs) {}

  void send_next(std::size_t i) {
    if (remaining[i] <= 0) return;
    --remaining[i];
    std::vector<std::uint8_t> payload(256,
                                      static_cast<std::uint8_t>(0x40 + i));
    rig.send(i, next[i], std::move(payload), {},
             [this, i] { send_next(i); });
  }
};

RunOut run_serial(const ClusterConfig& cc, const char* scenario,
                  sim::Time horizon, int msgs) {
  Cluster c(cc);
  std::optional<chaos::ChaosEngine> chaos_eng;
  if (scenario != nullptr) {
    chaos_eng.emplace(c.sched, c.fabric(), chaos::Scenario::parse(scenario));
    chaos_eng->arm();
  }
  RingPump<Cluster> pump(c, c.host_pods, msgs);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.sched.at(1000 + i, [&pump, i] { pump.send_next(i); });
  }
  c.sched.run_until(horizon);
  return RunOut{stats_text(c.fabric().stats()),
                obs::Registry::of(c.sched).to_json(),
                chaos_eng ? chaos_eng->log_text() : std::string{}};
}

RunOut run_parallel(const ClusterConfig& cc, std::uint32_t partitions,
                    std::uint32_t threads, const char* scenario,
                    sim::Time horizon, int msgs) {
  ParallelCluster pc(ParallelClusterConfig{cc, partitions, threads});
  std::optional<chaos::ChaosEngine> chaos_eng;
  if (scenario != nullptr) {
    chaos_eng.emplace(pc.engine->control(), pc.injector(),
                      chaos::Scenario::parse(scenario));
    chaos_eng->arm();
  }
  RingPump<ParallelCluster> pump(pc, pc.host_pods, msgs);
  for (std::size_t i = 0; i < pc.size(); ++i) {
    pc.sched_of(i).at(1000 + i, [&pump, i] { pump.send_next(i); });
  }
  pc.engine->run_until(horizon);
  return RunOut{stats_text(pc.fabric_stats()), pc.merged_metrics_json(),
                chaos_eng ? chaos_eng->log_text() : std::string{}};
}

void expect_equal(const RunOut& serial, const RunOut& parallel,
                  const std::string& label) {
  EXPECT_EQ(serial.stats, parallel.stats) << label << ": fabric stats";
  EXPECT_EQ(serial.metrics, parallel.metrics) << label << ": metrics JSON";
  EXPECT_EQ(serial.chaos_log, parallel.chaos_log) << label << ": chaos log";
  EXPECT_NE(serial.stats.find("injected="), std::string::npos);
  EXPECT_EQ(serial.stats.find("injected=0 "), std::string::npos)
      << label << ": workload produced no traffic — vacuous comparison";
}

ClusterConfig fig2_config() {
  ClusterConfig cc;
  cc.num_hosts = 16;
  cc.topo = harness::TopoKind::kFigure2;
  cc.fw = harness::FirmwareKind::kReliable;
  cc.mapper = harness::MapperKind::kOnDemand;
  cc.fabric.seed = 2002;
  return cc;
}

ClusterConfig clos64_config() {
  ClusterConfig cc;
  cc.num_hosts = 64;
  cc.topo = harness::TopoKind::kClos;
  cc.clos = *net::clos_named_shape("clos-64");
  cc.fw = harness::FirmwareKind::kReliable;
  cc.fabric.seed = 64064;
  return cc;
}

constexpr sim::Time kHorizon = 3'000'000;  // 3 ms simulated
constexpr int kMsgs = 30;

// Fault-free first: isolates event-ordering equivalence from RNG-stream
// equivalence (the chaos variants below add the fault draws).
TEST(ParallelEquiv, Fig2FaultFreeMatchesSerial) {
  const RunOut serial = run_serial(fig2_config(), nullptr, kHorizon, kMsgs);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const RunOut par =
        run_parallel(fig2_config(), 4, threads, nullptr, kHorizon, kMsgs);
    expect_equal(serial, par, "fig2-16 threads=" + std::to_string(threads));
  }
}

TEST(ParallelEquiv, Clos64FaultFreeMatchesSerial) {
  const RunOut serial = run_serial(clos64_config(), nullptr, kHorizon, kMsgs);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const RunOut par =
        run_parallel(clos64_config(), 8, threads, nullptr, kHorizon, kMsgs);
    expect_equal(serial, par, "clos-64 threads=" + std::to_string(threads));
  }
}

// Chaos scenario: loss/corrupt ramps draw from the per-(link,direction)
// fault RNG streams on every traversal, a link dies and recovers, another
// flaps with campaign-RNG jitter. Byte-equal logs prove fault actions land
// at identical instants; byte-equal metrics prove every RNG draw happened
// in the same per-stream order.
const char* fig2_scenario() {
  return
      "scenario equiv-fig2\n"
      "seed 11\n"
      "at 400us error_ramp loss=0.002 corrupt=0.001 steps=3 over=600us\n"
      "at 700us link_down link=2\n"
      "at 1500us link_up link=2\n"
      "at 1800us flap link=5 count=3 period=120us duty=0.5 jitter=0.25\n";
}

const char* clos_scenario() {
  return
      "scenario equiv-clos\n"
      "seed 7\n"
      "at 500us error_ramp loss=0.001 corrupt=0.0005 steps=2 over=400us\n"
      "at 900us switch_down switch=0\n"
      "at 1700us switch_up switch=0\n";
}

TEST(ParallelEquiv, Fig2ChaosMatchesSerial) {
  const RunOut serial =
      run_serial(fig2_config(), fig2_scenario(), kHorizon, kMsgs);
  EXPECT_FALSE(serial.chaos_log.empty());
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const RunOut par = run_parallel(fig2_config(), 4, threads,
                                    fig2_scenario(), kHorizon, kMsgs);
    expect_equal(serial, par,
                 "fig2-16 chaos threads=" + std::to_string(threads));
  }
}

TEST(ParallelEquiv, Clos64ChaosMatchesSerial) {
  const RunOut serial =
      run_serial(clos64_config(), clos_scenario(), kHorizon, kMsgs);
  EXPECT_FALSE(serial.chaos_log.empty());
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const RunOut par = run_parallel(clos64_config(), 8, threads,
                                    clos_scenario(), kHorizon, kMsgs);
    expect_equal(serial, par,
                 "clos-64 chaos threads=" + std::to_string(threads));
  }
}

// Bit-reproducibility of the parallel engine itself: same partition count,
// same thread count, run twice — identical output.
TEST(ParallelEquiv, FixedThreadRerunIsBitIdentical) {
  const RunOut a =
      run_parallel(fig2_config(), 4, 4, fig2_scenario(), kHorizon, kMsgs);
  const RunOut b =
      run_parallel(fig2_config(), 4, 4, fig2_scenario(), kHorizon, kMsgs);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.chaos_log, b.chaos_log);
}

// Partition count is the determinism key: 2-way and 4-way partitionings of
// the same workload still agree on wire totals and the chaos log (metrics
// JSON may differ only in nothing — it must match too, since the merge is
// over the same per-host/per-link series regardless of which shard owns
// them).
TEST(ParallelEquiv, PartitionCountDoesNotChangeResults) {
  const RunOut p2 =
      run_parallel(fig2_config(), 2, 2, fig2_scenario(), kHorizon, kMsgs);
  const RunOut p4 =
      run_parallel(fig2_config(), 4, 2, fig2_scenario(), kHorizon, kMsgs);
  EXPECT_EQ(p2.stats, p4.stats);
  EXPECT_EQ(p2.metrics, p4.metrics);
  EXPECT_EQ(p2.chaos_log, p4.chaos_log);
}

}  // namespace
}  // namespace sanfault
