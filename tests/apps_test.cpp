// Tests for the SPLASH-2 application reproductions: numerical correctness of
// each kernel through the full SVM/VMMC/firmware/fabric stack, clean and
// under injected errors, plus the per-category timing signatures Figure 9
// relies on (FFT data-bound, Radix latency-sensitive, Water compute-bound).
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "apps/radix.hpp"
#include "apps/water.hpp"
#include "harness/cluster.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;

ClusterConfig paper_cluster(std::uint64_t drop_interval = 0) {
  ClusterConfig cfg;
  cfg.num_hosts = 4;  // the paper's 4-node / 8-processor sub-cluster
  cfg.fw = FirmwareKind::kReliable;
  cfg.rel.drop_interval = drop_interval;
  return cfg;
}

TEST(AppFft, RoundTripVerifiesClean) {
  Cluster c(paper_cluster());
  apps::FftConfig cfg;
  cfg.log2_points = 10;  // 1K points: quick but multi-page
  cfg.iterations = 2;
  auto r = apps::run_fft(c, cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.elapsed, 0u);
  ASSERT_EQ(r.per_proc.size(), 8u);
}

TEST(AppFft, RoundTripVerifiesUnderInjectedErrors) {
  Cluster c(paper_cluster(/*drop_interval=*/50));
  apps::FftConfig cfg;
  cfg.log2_points = 10;
  cfg.iterations = 2;
  auto r = apps::run_fft(c, cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(c.rel(0).stats().injected_drops + c.rel(1).stats().injected_drops +
                c.rel(2).stats().injected_drops +
                c.rel(3).stats().injected_drops,
            0u);
}

TEST(AppFft, OddIterationsVerifyEnergy) {
  Cluster c(paper_cluster());
  apps::FftConfig cfg;
  cfg.log2_points = 10;
  cfg.iterations = 1;
  auto r = apps::run_fft(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppFft, IsDataDominated) {
  Cluster c(paper_cluster());
  apps::FftConfig cfg;
  cfg.log2_points = 12;
  cfg.iterations = 2;
  auto r = apps::run_fft(c, cfg);
  ASSERT_TRUE(r.verified);
  const auto agg = r.aggregate();
  // The paper calls FFT bandwidth-limited: data wait dominates compute.
  EXPECT_GT(agg.data, agg.compute);
}

TEST(AppRadix, FullSortCleanRun) {
  Cluster c(paper_cluster());
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 13;
  cfg.iterations = 4;  // 4 x 8 bits: fully sorted
  auto r = apps::run_radix(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppRadix, FullSortUnderInjectedErrors) {
  Cluster c(paper_cluster(/*drop_interval=*/200));
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 13;
  cfg.iterations = 4;
  auto r = apps::run_radix(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppRadix, PartialPassesSortLowDigits) {
  Cluster c(paper_cluster());
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 12;
  cfg.iterations = 2;
  auto r = apps::run_radix(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppRadix, PaperFivePassesKeepPermutation) {
  Cluster c(paper_cluster());
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 12;
  cfg.iterations = 5;  // Table 2's configuration wraps to digit 0
  auto r = apps::run_radix(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppWater, MomentumConservedCleanRun) {
  Cluster c(paper_cluster());
  apps::WaterConfig cfg;
  cfg.num_molecules = 128;
  cfg.steps = 2;
  auto r = apps::run_water(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppWater, MomentumConservedUnderInjectedErrors) {
  Cluster c(paper_cluster(/*drop_interval=*/150));
  apps::WaterConfig cfg;
  cfg.num_molecules = 128;
  cfg.steps = 2;
  auto r = apps::run_water(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST(AppWater, IsComputeDominated) {
  Cluster c(paper_cluster());
  apps::WaterConfig cfg;
  cfg.num_molecules = 512;  // O(n^2) compute must dwarf the O(n) data
  cfg.steps = 2;
  auto r = apps::run_water(c, cfg);
  ASSERT_TRUE(r.verified);
  const auto agg = r.aggregate();
  // "High computation to communication ratio": compute dwarfs data waits.
  EXPECT_GT(agg.compute, agg.data);
  EXPECT_GT(agg.lock, 0u);
}

TEST(AppWater, LockGranularityTradesMessagesForContention) {
  // One big lock: 8 serialized critical sections, few lock messages.
  // Eight small locks: more lock round trips, less serialization. Both must
  // verify; the runtime's lock accounting must match the configuration.
  apps::WaterConfig coarse;
  coarse.num_molecules = 256;
  coarse.steps = 1;
  coarse.lock_block = 256;  // one big lock

  apps::WaterConfig fine = coarse;
  fine.lock_block = 32;  // eight locks

  Cluster c1(paper_cluster());
  auto r_coarse = apps::run_water(c1, coarse);
  Cluster c2(paper_cluster());
  auto r_fine = apps::run_water(c2, fine);
  ASSERT_TRUE(r_coarse.verified);
  ASSERT_TRUE(r_fine.verified);
  // 8 procs x nblocks x steps lock acquisitions in each configuration.
  EXPECT_GT(r_coarse.aggregate().lock, 0u);
  EXPECT_GT(r_fine.aggregate().lock, 0u);
}

// The decomposition must be correct for any processor count, not just the
// paper's 8 (4 nodes x 2): run each kernel at 1 and 4 processors per node.
class AppsProcSweep : public ::testing::TestWithParam<int> {};

TEST_P(AppsProcSweep, FftVerifiesAtAnyProcCount) {
  Cluster c(paper_cluster());
  apps::FftConfig cfg;
  cfg.log2_points = 10;
  cfg.iterations = 2;
  cfg.procs_per_node = GetParam();
  auto r = apps::run_fft(c, cfg);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.per_proc.size(), static_cast<std::size_t>(4 * GetParam()));
}

TEST_P(AppsProcSweep, RadixVerifiesAtAnyProcCount) {
  Cluster c(paper_cluster());
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 12;
  cfg.iterations = 4;
  cfg.procs_per_node = GetParam();
  auto r = apps::run_radix(c, cfg);
  EXPECT_TRUE(r.verified);
}

TEST_P(AppsProcSweep, WaterVerifiesAtAnyProcCount) {
  Cluster c(paper_cluster());
  apps::WaterConfig cfg;
  cfg.num_molecules = 128;
  cfg.steps = 1;
  cfg.procs_per_node = GetParam();
  auto r = apps::run_water(c, cfg);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(ProcsPerNode, AppsProcSweep, ::testing::Values(1, 2, 4));

TEST(Apps, ErrorInjectionSlowsApplicationsDown) {
  // The qualitative Figure-9 effect: high error rates inflate run time.
  apps::RadixConfig cfg;
  cfg.num_keys = 1 << 12;
  cfg.iterations = 2;

  Cluster clean(paper_cluster());
  auto r_clean = apps::run_radix(clean, cfg);
  Cluster faulty(paper_cluster(/*drop_interval=*/50));
  auto r_faulty = apps::run_radix(faulty, cfg);
  ASSERT_TRUE(r_clean.verified);
  ASSERT_TRUE(r_faulty.verified);
  EXPECT_GT(r_faulty.elapsed, r_clean.elapsed);
}

}  // namespace
}  // namespace sanfault
