// Tests for the experiment harness itself: Cluster wiring across firmware
// and topology kinds, the micro-benchmark drivers' internal consistency, and
// the table/format helpers — these are public API for downstream users, so
// they get the same coverage as the protocol code.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/microbench.hpp"
#include "harness/table.hpp"
#include "harness/trace.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;
using harness::MapperKind;
using harness::TopoKind;

TEST(Cluster, SingleSwitchWiresEveryHost) {
  ClusterConfig cfg;
  cfg.num_hosts = 6;
  Cluster c(cfg);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.topo.num_switches(), 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(c.topo.shortest_route(c.hosts[i], c.hosts[j]).has_value());
    }
  }
}

TEST(Cluster, Figure2KindBuildsFourSwitches) {
  ClusterConfig cfg;
  cfg.num_hosts = 8;
  cfg.topo = TopoKind::kFigure2;
  Cluster c(cfg);
  EXPECT_EQ(c.topo.num_switches(), 4u);
  EXPECT_EQ(c.switches.size(), 4u);
}

TEST(Cluster, PreloadedRoutesReachEveryPeer) {
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.topo = TopoKind::kFigure2;
  Cluster c(cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(c.routes(i).contains(c.hosts[j])) << i << "->" << j;
    }
  }
}

TEST(Cluster, ColdStartHasEmptyRouteTables) {
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.preload_routes = false;
  cfg.mapper = MapperKind::kOnDemand;
  Cluster c(cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.routes(i).size(), 0u);
  }
}

TEST(Cluster, RawFirmwareKindUsesRawAccessor) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.fw = FirmwareKind::kRaw;
  Cluster c(cfg);
  EXPECT_EQ(c.raw(0).stats().data_tx, 0u);
  c.send(0, 1, std::vector<std::uint8_t>(8, 1));
  c.sched.run_until(sim::milliseconds(1));
  EXPECT_EQ(c.raw(0).stats().data_tx, 1u);
}

TEST(Cluster, InboxReceivesDefaultDeliveries) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c(cfg);
  c.send(0, 1, std::vector<std::uint8_t>(8, 1));
  c.sched.run_until(sim::milliseconds(5));
  EXPECT_EQ(c.inbox(1).size(), 1u);
}

TEST(Microbench, LatencyScalesWithMessageSize) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c1(cfg);
  Cluster c2(cfg);
  const double small = harness::run_latency(c1, 4, 10).one_way_us();
  const double large = harness::run_latency(c2, 4096, 10).one_way_us();
  EXPECT_GT(large, small);
}

TEST(Microbench, UnidirectionalBeatsPingPongAtSmallSizes) {
  // Streaming pipelines; ping-pong pays a round trip per message.
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c1(cfg);
  Cluster c2(cfg);
  const double uni =
      harness::run_unidirectional_bw(c1, 1024, 30).mbytes_per_sec();
  const double pp = harness::run_pingpong_bw(c2, 1024, 30).mbytes_per_sec();
  EXPECT_GT(uni, pp);
}

TEST(Microbench, ResultAccessorsAreConsistent) {
  harness::MicrobenchResult r;
  r.seconds = 2.0;
  r.bytes = 100 * 1000 * 1000;
  r.iterations = 1000;
  EXPECT_DOUBLE_EQ(r.mbytes_per_sec(), 50.0);
  EXPECT_DOUBLE_EQ(r.one_way_us(), 1000.0);
  harness::MicrobenchResult zero;
  EXPECT_EQ(zero.mbytes_per_sec(), 0.0);
  EXPECT_EQ(zero.one_way_us(), 0.0);
}

TEST(Microbench, RepeatedRunsOnFreshClustersAgree) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c1(cfg);
  Cluster c2(cfg);
  const double a = harness::run_latency(c1, 16, 20).one_way_us();
  const double b = harness::run_latency(c2, 16, 20).one_way_us();
  EXPECT_DOUBLE_EQ(a, b);  // determinism across identical rigs
}

TEST(TableFmt, FormatsBytesHumanReadably) {
  EXPECT_EQ(harness::fmt_bytes(4), "4");
  EXPECT_EQ(harness::fmt_bytes(1024), "1K");
  EXPECT_EQ(harness::fmt_bytes(65536), "64K");
  EXPECT_EQ(harness::fmt_bytes(1048576), "1M");
  EXPECT_EQ(harness::fmt_bytes(1500), "1500");  // non-multiples stay exact
}

TEST(TableFmt, FormatsIntervals) {
  EXPECT_EQ(harness::fmt_interval(sim::microseconds(10)), "10us");
  EXPECT_EQ(harness::fmt_interval(sim::milliseconds(1)), "1ms");
  EXPECT_EQ(harness::fmt_interval(sim::seconds(1)), "1s");
}

TEST(TableFmt, FmtRoundsToRequestedDecimals) {
  EXPECT_EQ(harness::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(harness::fmt(3.14159, 0), "3");
  EXPECT_EQ(harness::fmt(119.96, 1), "120.0");
}

TEST(PacketTrace, RecordsDeliveriesWithProtocolFields) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c(cfg);
  harness::PacketTrace trace(c.fabric(), c.sched);
  c.send(0, 1, std::vector<std::uint8_t>(64, 1));
  c.sched.run_until(sim::milliseconds(5));
  ASSERT_GE(trace.total_recorded(), 1u);
  EXPECT_GE(trace.count(net::PacketType::kData), 1u);
  const auto& first = trace.events().front();
  EXPECT_FALSE(first.dropped);
  EXPECT_EQ(first.src, c.hosts[0]);
  EXPECT_EQ(first.dst, c.hosts[1]);
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.payload_bytes, 64u);
}

TEST(PacketTrace, RecordsDropsWithReason) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c(cfg);
  harness::PacketTrace trace(c.fabric(), c.sched);
  c.topo.set_link_up(net::LinkId{1}, false);
  c.send(0, 1, std::vector<std::uint8_t>(16, 1));
  c.sched.run_until(sim::milliseconds(5));
  ASSERT_GE(trace.drops(), 1u);
  bool saw_link_down = false;
  for (const auto& e : trace.events()) {
    saw_link_down = saw_link_down ||
                    (e.dropped && e.reason == net::DropReason::kLinkDown);
  }
  EXPECT_TRUE(saw_link_down);
}

TEST(PacketTrace, CapacityBoundsRetainedWindow) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c(cfg);
  harness::PacketTrace trace(c.fabric(), c.sched, /*capacity=*/8);
  for (int i = 0; i < 30; ++i) {
    c.send(0, 1, std::vector<std::uint8_t>(8, 1));
  }
  c.sched.run_until(sim::milliseconds(50));
  EXPECT_LE(trace.events().size(), 8u);
  EXPECT_GE(trace.total_recorded(), 30u);  // counted even when evicted
}

TEST(PacketTrace, DumpRendersTimeline) {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  Cluster c(cfg);
  harness::PacketTrace trace(c.fabric(), c.sched);
  c.send(0, 1, std::vector<std::uint8_t>(8, 1));
  c.sched.run_until(sim::milliseconds(5));
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  trace.dump(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  EXPECT_NE(out.find("DATA"), std::string::npos);
  EXPECT_NE(out.find("0->1"), std::string::npos);
}

TEST(Table, PrintsAlignedColumns) {
  harness::Table t({"A", "LongHeader"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  // Smoke: printing to a memstream must not crash and must contain rows.
  char* buf = nullptr;
  std::size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  t.print(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

}  // namespace
}  // namespace sanfault
