// Unit tests for the discrete-event scheduler and FifoServer.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/server.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(5, [&, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, AfterSchedulesRelativeToNow) {
  Scheduler s;
  Time seen = kNever;
  s.at(100, [&] { s.after(50, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 150u);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.at(100, [&] {
    EXPECT_THROW(s.at(99, [] {}), std::logic_error);
  });
  s.run();
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.at(10, [&] { ran = true; });
  EXPECT_TRUE(s.pending(h));
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.pending(h));
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  EventHandle h = s.at(10, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, DoubleCancelIsNoop) {
  Scheduler s;
  EventHandle h = s.at(10, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler s;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(s.cancel(h));
  EXPECT_FALSE(s.pending(h));
}

TEST(Scheduler, RunUntilAdvancesClockEvenWithoutEvents) {
  Scheduler s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  bool late = false;
  bool early = false;
  s.at(10, [&] { early = true; });
  s.at(20, [&] { late = true; });
  s.run_until(15);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), 15u);
  s.run();
  EXPECT_TRUE(late);
}

TEST(Scheduler, RunForIsRelative) {
  Scheduler s;
  s.run_until(100);
  s.run_for(50);
  EXPECT_EQ(s.now(), 150u);
}

TEST(Scheduler, EventsExecutedCounts) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.at(static_cast<Time>(i), [] {});
  EventHandle h = s.at(100, [] {});
  s.cancel(h);
  s.run();
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Scheduler, CascadingEventsKeepDeterministicOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(3); });
  });
  s.at(10, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimeHelpers, UnitsCompose) {
  EXPECT_EQ(microseconds(1), 1000u);
  EXPECT_EQ(milliseconds(1), 1'000'000u);
  EXPECT_EQ(seconds(1), 1'000'000'000u);
  EXPECT_EQ(time_add(kNever, 5), kNever);
  EXPECT_EQ(time_add(10, 5), 15u);
}

TEST(TimeHelpers, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s = 1 ns exactly.
  EXPECT_EQ(transfer_time(1, 1e9), 1u);
  // 100 bytes at 160 MB/s = 625 ns.
  EXPECT_EQ(transfer_time(100, 160e6), 625u);
  EXPECT_EQ(transfer_time(0, 160e6), 0u);
}

TEST(FifoServer, IdleServerServesImmediately) {
  Scheduler s;
  FifoServer srv(s);
  Time done = 0;
  s.at(100, [&] { srv.submit(50, [&] { done = s.now(); }); });
  s.run();
  EXPECT_EQ(done, 150u);
}

TEST(FifoServer, BackToBackJobsQueue) {
  Scheduler s;
  FifoServer srv(s);
  std::vector<Time> done;
  s.at(0, [&] {
    srv.submit(10, [&] { done.push_back(s.now()); });
    srv.submit(10, [&] { done.push_back(s.now()); });
    srv.submit(10, [&] { done.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(done, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(srv.busy_time(), 30u);
  EXPECT_EQ(srv.jobs_served(), 3u);
}

TEST(FifoServer, GapsLeaveServerIdle) {
  Scheduler s;
  FifoServer srv(s);
  Time d1 = 0;
  Time d2 = 0;
  s.at(0, [&] { srv.submit(10, [&] { d1 = s.now(); }); });
  s.at(100, [&] { srv.submit(10, [&] { d2 = s.now(); }); });
  s.run();
  EXPECT_EQ(d1, 10u);
  EXPECT_EQ(d2, 110u);
  EXPECT_DOUBLE_EQ(srv.utilization(200), 0.1);
}

TEST(FifoServer, BusyNowReflectsOccupancy) {
  Scheduler s;
  FifoServer srv(s);
  s.at(0, [&] {
    srv.submit(10);
    EXPECT_TRUE(srv.busy_now());
  });
  s.run();
  s.run_until(10);  // advance the clock past the job's completion
  EXPECT_FALSE(srv.busy_now());
}

}  // namespace
}  // namespace sanfault::sim
