// Tests for the chaos fault-campaign layer (src/chaos): scenario DSL
// round-tripping and error reporting, bit-deterministic campaign event logs,
// recovery through a mid-retransmission link kill, exactly-once KV service
// behavior across a partition-and-heal, flap trains not regressing sequence
// generations, and the traffic engine's phase announcements.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/recovery.hpp"
#include "chaos/scenario.hpp"
#include "harness/cluster.hpp"
#include "kv/audit.hpp"
#include "kv/rig.hpp"
#include "sim/process.hpp"
#include "traffic/engine.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

// --- scenario DSL ----------------------------------------------------------

TEST(ChaosScenario, ParseRoundTrip) {
  const std::string text =
      "scenario trunk-kill\n"
      "seed 7\n"
      "# comment lines and blanks are ignored\n"
      "\n"
      "at 2ms error_ramp loss=0.001 corrupt=0.0002 steps=4 over=8ms\n"
      "phase p25 link_down link=0\n"
      "phase p50+3ms link_up link=0\n"
      "at 5ms flap link=1 count=6 period=2ms duty=0.5 jitter=0.25\n"
      "phase p25 partition hosts=1,5\n"
      "phase p50+2ms heal hosts=1,5\n"
      "at 1500us nic_reset host=3\n"
      "at 4ms switch_down switch=1\n"
      "at 22ms switch_up switch=1\n";
  const chaos::Scenario sc = chaos::Scenario::parse(text);
  EXPECT_EQ(sc.name, "trunk-kill");
  EXPECT_EQ(sc.seed, 7u);
  ASSERT_EQ(sc.events.size(), 9u);
  EXPECT_EQ(sc.events[0].op, chaos::ChaosOp::kErrorRamp);
  EXPECT_EQ(sc.events[0].at, sim::milliseconds(2));
  EXPECT_EQ(sc.events[1].phase, "p25");
  EXPECT_EQ(sc.events[2].at, sim::milliseconds(3));  // phase offset
  EXPECT_EQ(sc.events[4].hosts, (std::vector<std::uint32_t>{1, 5}));

  // Canonical form round-trips byte-for-byte.
  const std::string canon = sc.to_string();
  EXPECT_EQ(chaos::Scenario::parse(canon).to_string(), canon);
}

TEST(ChaosScenario, ParseErrorsNameTheLine) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      chaos::Scenario::parse(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  expect_error("at 2ms explode link=0\n", "unknown op");
  expect_error("scenario x\nat 2ms link_down\n", "line 2");
  expect_error("at 2 link_down link=0\n", "time unit");
  expect_error("at 2ms flap link=0 count=3 period=1ms duty=1.5\n", "duty");
  expect_error("at 2ms partition\n", "hosts=");
  expect_error("bogus line here\n", "line 1");
  expect_error("at 2ms error_ramp loss=0.1 steps=4\n", "over=");
}

// --- engine determinism ----------------------------------------------------

/// Run a jittered campaign (no workload) and return its event log.
std::string run_campaign_log() {
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.topo = harness::TopoKind::kFigure2;
  Cluster c(cfg);
  chaos::ChaosEngine eng(
      c.sched, c.fabric(),
      chaos::Scenario::parse(
          "scenario det\nseed 9\n"
          "at 1ms flap link=0 count=6 period=2ms duty=0.4 jitter=0.3\n"
          "at 2ms error_ramp loss=0.01 corrupt=0.001 steps=5 over=9ms\n"
          "at 4ms switch_down switch=1\nat 9ms switch_up switch=1\n"));
  eng.arm();
  c.sched.run_for(sim::milliseconds(40));
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_GT(eng.applied(), 0u);
  return eng.log_text();
}

TEST(ChaosEngine, DeterministicEventLog) {
  const std::string a = run_campaign_log();
  const std::string b = run_campaign_log();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // same seed -> byte-identical event log
}

// --- recovery through faults ----------------------------------------------

struct Drainer {
  std::vector<harness::HostMsg> msgs;
};

sim::Process drain(Cluster& c, std::size_t host, Drainer& d) {
  for (;;) {
    harness::HostMsg m = co_await c.inbox(host).pop(c.sched);
    d.msgs.push_back(std::move(m));
  }
}

/// Paced one-way stream 0 -> 1 with a chaos scenario running underneath.
/// Returns the monitor's report; `msgs` receives the delivered stream.
chaos::RecoveryReport stream_under_chaos(ClusterConfig cfg,
                                         const std::string& scenario,
                                         int n, sim::Duration gap,
                                         Drainer& d) {
  Cluster c(cfg);
  chaos::RecoveryMonitor monitor(c.sched);
  c.fabric().set_fault_hook(
      [&monitor](const net::FaultEvent& ev) { monitor.on_fault(ev); });
  c.fabric().set_delivery_hook(
      [&monitor](const net::Packet& pkt, net::HostId dst) {
        monitor.on_delivery(pkt, dst);
      });
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.rel(i).set_event_hook(
        [&monitor](const firmware::FwEvent& ev) { monitor.on_fw_event(ev); });
  }
  chaos::ChaosEngine eng(c.sched, c.fabric(),
                         chaos::Scenario::parse(scenario));
  eng.arm();

  drain(c, 1, d);
  for (int i = 0; i < n; ++i) {
    c.sched.after(static_cast<sim::Duration>(i) * gap, [&c, i] {
      net::UserHeader u;
      u.w0 = static_cast<std::uint64_t>(i);
      c.send(0, 1, std::vector<std::uint8_t>(64, 1), u);
    });
  }
  c.sched.run_for(sim::seconds(2));
  monitor.finalize();
  return monitor.report();
}

TEST(ChaosRecovery, KillDuringRetransmission) {
  // host 0 (sw8_a) -> host 1 (sw16_a) crosses trunk link 0. The kill lands
  // mid-stream: queued packets are being retransmitted into a dead link
  // until the 10 ms threshold declares the path failed and the on-demand
  // mapper reroutes over the twin trunk with a generation restart.
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.rel.fail_threshold = sim::milliseconds(10);
  cfg.rel.fail_min_rounds = 8;
  cfg.nic.send_buffers = 64;
  Drainer d;
  const int n = 200;
  const auto r = stream_under_chaos(
      cfg, "scenario kill\nseed 3\nat 1ms link_down link=0\n", n,
      sim::microseconds(10), d);

  // Across a generation restart the sender resends every un-ACKed packet,
  // including ones delivered just before the kill whose ACKs died with the
  // link — so the raw stream is at-least-once over a remap (bounded by the
  // send-buffer pool), with first deliveries still in order. The layers
  // above dedupe by request id; PartitionAndHealIsExactlyOnce proves that.
  ASSERT_GE(d.msgs.size(), static_cast<std::size_t>(n));
  EXPECT_LE(d.msgs.size(), static_cast<std::size_t>(n) + cfg.nic.send_buffers);
  std::uint64_t next_first = 0;
  for (const harness::HostMsg& m : d.msgs) {
    if (m.user.w0 == next_first) ++next_first;
    EXPECT_LT(m.user.w0, next_first) << "gap before first delivery";
  }
  EXPECT_EQ(next_first, static_cast<std::uint64_t>(n));  // none lost
  EXPECT_EQ(r.disruptive_faults, 1u);
  EXPECT_GE(r.gen_restarts, 1u);         // remap restarted the channel
  EXPECT_GE(r.remap_convergences, 1u);   // ...and traffic flowed on it
  EXPECT_GE(r.ttfr_samples, 1u);         // redelivery observed post-kill
  EXPECT_GT(r.retrans_deliveries, 0u);
  EXPECT_FALSE(r.gen_regressed);
}

TEST(ChaosRecovery, FlapTrainDoesNotRegressGenerations) {
  // Flap cycles (1.2 ms down / 0.8 ms up) are each far below the default
  // 200 ms permanent-failure threshold: go-back-N must ride the train with
  // plain retransmissions — no path failure, no generation movement.
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.nic.send_buffers = 64;
  Drainer d;
  const int n = 400;
  const auto r = stream_under_chaos(
      cfg,
      "scenario flap\nseed 4\n"
      "at 1ms flap link=0 count=4 period=2ms duty=0.6 jitter=0.2\n",
      n, sim::microseconds(25), d);

  ASSERT_EQ(d.msgs.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(r.disruptive_faults, 4u);
  EXPECT_EQ(r.heals, 4u);
  EXPECT_EQ(r.gen_restarts, 0u);
  EXPECT_FALSE(r.gen_regressed);
  EXPECT_GE(r.ttfr_samples, 1u);
  EXPECT_GT(r.retrans_deliveries, 0u);
  EXPECT_GT(r.last_delivery_at, r.last_heal_at);  // progress after heal
}

TEST(ChaosRecovery, PartitionAndHealIsExactlyOnce) {
  // The full service stack: a server host partitioned for 18 ms (beyond the
  // 10 ms fail threshold, so its peers declare path failure and must remap
  // after the heal) under live open-loop load. The shadow-map audit proves
  // exactly-once application semantics end to end.
  kv::KvRigConfig rc;
  rc.num_servers = 4;
  rc.num_client_hosts = 4;
  rc.cluster.topo = harness::TopoKind::kFigure2;
  rc.cluster.mapper = harness::MapperKind::kOnDemand;
  rc.cluster.nic.send_buffers = 64;
  rc.cluster.rel.fail_threshold = sim::milliseconds(10);
  rc.cluster.rel.fail_min_rounds = 8;
  kv::KvRig rig(rc);

  chaos::RecoveryMonitor monitor(rig.c.sched);
  rig.c.fabric().set_fault_hook(
      [&monitor](const net::FaultEvent& ev) { monitor.on_fault(ev); });
  rig.c.fabric().set_delivery_hook(
      [&monitor](const net::Packet& pkt, net::HostId dst) {
        monitor.on_delivery(pkt, dst);
      });
  for (firmware::ReliableFirmware* fw : rig.rel_view()) {
    fw->set_event_hook(
        [&monitor](const firmware::FwEvent& ev) { monitor.on_fw_event(ev); });
  }
  chaos::ChaosEngine eng(rig.c.sched, rig.c.fabric(),
                         chaos::Scenario::parse(
                             "scenario part\nseed 5\n"
                             "phase p25 partition hosts=1\n"
                             "phase p25+18ms heal hosts=1\n"));
  eng.arm();

  traffic::TrafficConfig tc;
  tc.num_clients = 32;
  tc.total_requests = 800;
  tc.rate_rps = 50000;
  tc.zipf_theta = 0.99;
  tc.seed = 42;
  traffic::TrafficEngine traffic(rig.c.sched, rig.client_view(), tc);
  traffic.set_phase_hook(
      [&eng](std::string_view phase) { eng.fire_phase(phase); });
  traffic.start();

  const sim::Time cap = sim::seconds(600);
  while (!traffic.done() && rig.c.sched.now() < cap && rig.c.sched.step()) {
  }
  rig.quiesce();
  monitor.finalize();

  const kv::AuditResult audit =
      kv::audit(*rig.map, rig.server_view(), traffic.shadow());
  EXPECT_TRUE(audit.ok()) << "lost=" << audit.lost
                          << " dup=" << audit.duplicated;

  chaos::InvariantInput in;
  in.audit_clean = audit.ok();
  in.ops_expected = tc.total_requests;
  in.ops_completed = traffic.stats().completed;
  in.require_redelivery = true;
  in.require_remap = true;
  const auto violations = chaos::check_invariants(monitor.report(), in);
  for (const auto& v : violations) ADD_FAILURE() << v;

  const auto& r = monitor.report();
  EXPECT_GE(r.ttfr_samples, 1u);
  EXPECT_GE(r.remap_convergences, 1u);
  EXPECT_LT(r.remap_conv_max, sim::seconds(600));  // finite, by construction
}

// --- per-destination recovery attribution ----------------------------------

TEST(ChaosRecovery, PerDestinationTtfrIsNotMaskedByFastChannels) {
  // Regression: the single burst-global TTFR sample stops at whichever
  // channel recovers first, so a channel whose remap was served from the
  // path cache (recovering in microseconds) used to absorb the measurement
  // and hide a channel that took 7 ms. Synthetic event feed: one fault, two
  // channels redelivering at different times.
  sim::Scheduler sched;
  chaos::RecoveryMonitor monitor(sched);

  auto retrans = [](std::uint32_t src, std::uint32_t dst) {
    net::Packet p;
    p.hdr.src = net::HostId{src};
    p.hdr.dst = net::HostId{dst};
    p.hdr.type = net::PacketType::kData;
    p.hdr.flags = net::kFlagRetransmit;
    return p;
  };
  sched.after(sim::milliseconds(1), [&] {
    monitor.on_fault({net::FaultKind::kLinkDown, 0});
  });
  sched.after(sim::milliseconds(3), [&] {  // fast channel 0->1: 2 ms
    monitor.on_delivery(retrans(0, 1), net::HostId{1});
  });
  sched.after(sim::milliseconds(8), [&] {  // slow channel 0->2: 7 ms
    monitor.on_delivery(retrans(0, 2), net::HostId{2});
  });
  sched.after(sim::milliseconds(10), [&] {  // same pair again: no new sample
    monitor.on_delivery(retrans(0, 1), net::HostId{1});
  });
  sched.run_until(sim::milliseconds(20));
  monitor.finalize();

  const auto& r = monitor.report();
  EXPECT_EQ(r.ttfr_samples, 1u);  // the global clock still stops at 2 ms
  EXPECT_EQ(r.ttfr_max, sim::milliseconds(2));
  ASSERT_EQ(r.ttfr_dest_samples, 2u);  // ...but both channels sampled
  EXPECT_EQ(r.ttfr_dest_max, sim::milliseconds(7));
  ASSERT_EQ(r.ttfr_dest.size(), 2u);
  EXPECT_EQ(r.ttfr_dest[0], sim::milliseconds(2));
  EXPECT_EQ(r.ttfr_dest[1], sim::milliseconds(7));
  // A retransmission of the same pair later in the burst is not a second
  // sample — first redelivery only.
}

TEST(ChaosRecovery, RemapConvergenceAnchorsAtFaultNotRestart) {
  // A restart answered from the path cache converges almost instantly by
  // the restart-relative clock; the fault-relative clock still charges the
  // full detection delay. Both are reported, attributed promoted/probed.
  sim::Scheduler sched;
  chaos::RecoveryMonitor monitor(sched);

  sched.after(sim::milliseconds(1), [&] {
    monitor.on_fault({net::FaultKind::kLinkDown, 0});
  });
  sched.after(sim::milliseconds(5), [&] {
    firmware::FwEvent ev;
    ev.kind = firmware::FwEvent::Kind::kGenRestart;
    ev.self = net::HostId{0};
    ev.peer = net::HostId{1};
    ev.gen = 2;
    ev.promoted = true;
    monitor.on_fw_event(ev);
  });
  sched.after(sim::milliseconds(9), [&] {
    net::Packet p;
    p.hdr.src = net::HostId{0};
    p.hdr.dst = net::HostId{1};
    p.hdr.type = net::PacketType::kData;
    p.hdr.generation = 2;
    monitor.on_delivery(p, net::HostId{1});
  });
  sched.run_until(sim::milliseconds(20));
  monitor.finalize();

  const auto& r = monitor.report();
  EXPECT_EQ(r.remap_convergences, 1u);
  EXPECT_EQ(r.remap_conv_max, sim::milliseconds(4));             // restart-relative
  EXPECT_EQ(r.remap_conv_from_fault_max, sim::milliseconds(8));  // fault-relative
  EXPECT_EQ(r.remap_conv_promoted, 1u);
  EXPECT_EQ(r.remap_conv_probed, 0u);
}

TEST(ChaosRecovery, ProactiveBackupServesKillWithPromotedRemap) {
  // The KillDuringRetransmission cell with proactive backups on: the path
  // failure is answered by a promotion (no probe run on the critical path)
  // and the stream stays lossless and in first-delivery order.
  ClusterConfig cfg;
  cfg.num_hosts = 4;
  cfg.topo = harness::TopoKind::kFigure2;
  cfg.mapper = harness::MapperKind::kOnDemand;
  cfg.ondemand.proactive_backup = true;
  cfg.rel.fail_threshold = sim::milliseconds(10);
  cfg.rel.fail_min_rounds = 8;
  cfg.nic.send_buffers = 64;
  Drainer d;
  const int n = 200;
  const auto r = stream_under_chaos(
      cfg, "scenario kill\nseed 3\nat 1ms link_down link=0\n", n,
      sim::microseconds(10), d);

  ASSERT_GE(d.msgs.size(), static_cast<std::size_t>(n));
  std::uint64_t next_first = 0;
  for (const harness::HostMsg& m : d.msgs) {
    if (m.user.w0 == next_first) ++next_first;
    EXPECT_LT(m.user.w0, next_first) << "gap before first delivery";
  }
  EXPECT_EQ(next_first, static_cast<std::uint64_t>(n));  // none lost
  EXPECT_GE(r.gen_restarts, 1u);
  EXPECT_GE(r.remap_convergences, 1u);
  EXPECT_GE(r.remap_conv_promoted, 1u);  // the remap came from the backup
  EXPECT_EQ(r.remap_failures, 0u);
  EXPECT_GE(r.ttfr_dest_samples, 1u);
  EXPECT_FALSE(r.gen_regressed);
}

// --- workload phase hooks --------------------------------------------------

TEST(TrafficPhases, AnnouncedOnceInOrder) {
  kv::KvRigConfig rc;
  rc.num_servers = 2;
  rc.num_client_hosts = 2;
  kv::KvRig rig(rc);

  traffic::TrafficConfig tc;
  tc.num_clients = 8;
  tc.total_requests = 200;
  tc.rate_rps = 100000;
  tc.seed = 7;
  traffic::TrafficEngine traffic(rig.c.sched, rig.client_view(), tc);
  std::vector<std::string> phases;
  traffic.set_phase_hook(
      [&phases](std::string_view p) { phases.emplace_back(p); });
  traffic.start();
  while (!traffic.done() && rig.c.sched.step()) {
  }
  rig.quiesce();

  EXPECT_EQ(phases, (std::vector<std::string>{"p25", "p50", "p75",
                                              "drained"}));
}

// --- erasure-coded repair under a clos-64 host kill ------------------------

/// One full clos-64 striped repair campaign, serialized to a transcript for
/// byte-compare determinism: write a keyspace, cut a unit-holding server,
/// wait for SWIM confirmation, let the throttled repair machines drain, then
/// audit. Returns the transcript plus the numbers the assertions need.
struct ClosRepairRun {
  std::string transcript;
  std::uint64_t repaired = 0;
  std::uint64_t abandoned = 0;   // live machines only
  std::uint64_t throttle_waits = 0;
  bool throttle_bound_ok = true;
  kv::StripedAuditResult audit;
};

ClosRepairRun run_clos_repair_case(std::uint64_t seed) {
  constexpr std::uint64_t kKeys = 40;
  kv::KvRigConfig rc;
  rc.num_servers = 16;
  rc.num_client_hosts = 48;  // 64 hosts total on the clos-64 fabric
  rc.cluster.topo = harness::TopoKind::kClos;
  rc.cluster.clos.k = 8;
  rc.cluster.fw = harness::FirmwareKind::kReliable;
  rc.cluster.fabric.seed = seed;
  rc.ring_per_peer = 16 * 1024;
  rc.striped = true;
  rc.membership = true;
  // Squeeze the token bucket so the drain demonstrably trickles: ~1 KiB of
  // repair traffic at 20 kB/s stretches over tens of simulated milliseconds.
  rc.repair.bandwidth_bytes_per_sec = 20'000;
  rc.repair.burst_bytes = 64;
  rc.repair.log_events = true;
  kv::KvRig rig(rc);

  kv::StripedShadow shadow;
  bool wrote = false;
  [](kv::KvRig& rig, kv::StripedShadow& shadow, bool& done) -> sim::Process {
    auto& sc = rig.striped_client(0);
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      const kv::RequestId id{21, key + 1};
      const auto v = kv::make_value(id, 64);
      shadow.record_issued(id, key, static_cast<std::uint32_t>(v.size()));
      auto put = co_await sc.put(id, key, v);
      EXPECT_EQ(put.status, kv::Status::kOk) << "key " << key;
      if (put.status == kv::Status::kOk) shadow.record_committed(id);
    }
    done = true;
  }(rig, shadow, wrote);
  while (!wrote && rig.c.sched.step()) {
  }
  EXPECT_TRUE(wrote);

  const net::HostId victim = rig.c.hosts[5];
  const sim::Time t_kill = rig.c.sched.now();
  rig.c.fabric().cut_host(victim);
  rig.c.sched.run_for(membership::SwimAgent::detection_bound(
                          rig.config().swim, rig.c.size()) +
                      sim::milliseconds(5));
  EXPECT_TRUE(rig.agents[0]->confirmed_dead(victim));

  rig.quiesce();
  const sim::Time t_end = rig.c.sched.now();

  ClosRepairRun out;
  std::ostringstream ts;
  for (const auto& rm : rig.repairs) {
    if (rm->host() == victim) continue;
    const auto& st = rm->stats();
    out.repaired += st.stripes_repaired;
    out.abandoned += st.stripes_abandoned;
    out.throttle_waits += st.throttle_waits;
    // Token-bucket invariant: a machine can never move more repair bytes
    // than one full bucket, one burst-capped overdraft, and the refill since
    // the kill allow.
    const std::uint64_t moved = st.bytes_fetched + st.bytes_written;
    const std::uint64_t budget =
        2 * rc.repair.burst_bytes +
        rc.repair.bandwidth_bytes_per_sec * (t_end - t_kill) / 1'000'000'000ull;
    if (moved > budget) out.throttle_bound_ok = false;
    ts << "node " << rm->host().v << " enq=" << st.stripes_enqueued
       << " rep=" << st.stripes_repaired << " aband=" << st.stripes_abandoned
       << " units=" << st.units_rebuilt << " fetched=" << st.bytes_fetched
       << " written=" << st.bytes_written << " waits=" << st.throttle_waits
       << " wait_ns=" << st.throttle_wait_ns << "\n";
    for (const auto& line : rm->log()) ts << "  " << line << "\n";
  }
  const auto dead = [&rig](net::HostId h) {
    return rig.agents[0]->confirmed_dead(h);
  };
  out.audit = kv::audit_striped(*rig.stripe_map, *rig.codec, rig.store_view(),
                                shadow, dead);
  ts << "t_end=" << t_end << " committed=" << out.audit.committed
     << " incomplete=" << out.audit.incomplete << " lost=" << out.audit.lost
     << "\n";
  out.transcript = ts.str();
  return out;
}

TEST(ChaosRepair, Clos64HostKillRepairsThrottledAndDeterministic) {
  const auto run = run_clos_repair_case(77);

  // Convergence: every committed stripe is whole again on live holders, no
  // live machine gave up, and the kill actually cost units to rebuild.
  EXPECT_GT(run.repaired, 0u);
  EXPECT_EQ(run.abandoned, 0u);
  EXPECT_EQ(run.audit.committed, 40u);
  EXPECT_EQ(run.audit.incomplete, 0u);
  EXPECT_EQ(run.audit.lost, 0u);
  EXPECT_EQ(run.audit.mismatched, 0u);
  EXPECT_EQ(run.audit.duplicated, 0u);
  EXPECT_EQ(run.audit.alien_units, 0u);

  // The squeezed bucket engaged and was never overdrawn.
  EXPECT_GT(run.throttle_waits, 0u);
  EXPECT_TRUE(run.throttle_bound_ok);

  // Same seed, fresh rig: stats, event logs and audit are byte-identical.
  // (KV rigs run the serial scheduler; bench_repair covers the --sim-threads
  // angle on the firmware layers below.)
  const auto again = run_clos_repair_case(77);
  EXPECT_EQ(run.transcript, again.transcript);
}

}  // namespace
}  // namespace sanfault
