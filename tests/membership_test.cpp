// Tests for the membership subsystem: fault-domain derivation, pod-aware
// shard placement, the SWIM failure detector's state machine (suspect
// timeout, incarnation refutation, indirect-probe rescue), determinism of
// the gossip schedule, the detection-latency bound on clos-64, and the
// idempotency of mapper path-cache invalidation under concurrent failure
// reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/cluster.hpp"
#include "kv/shard_map.hpp"
#include "membership/fault_domains.hpp"
#include "membership/rig.hpp"
#include "membership/swim.hpp"

namespace sanfault {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::FirmwareKind;
using harness::MapperKind;
using harness::TopoKind;
using membership::FaultDomainTree;
using membership::MemberState;
using membership::SwimAgent;
using membership::SwimConfig;
using membership::SwimRig;
using membership::SwimRigConfig;

ClusterConfig cluster_cfg(std::size_t hosts, TopoKind topo) {
  ClusterConfig cfg;
  cfg.num_hosts = hosts;
  cfg.topo = topo;
  cfg.fw = FirmwareKind::kReliable;
  if (topo == TopoKind::kClos) cfg.clos.k = 8;
  return cfg;
}

// --- fault domains ---------------------------------------------------------

TEST(FaultDomains, ClosPodsAreBalancedAndMatchTopology) {
  Cluster c(cluster_cfg(64, TopoKind::kClos));
  ASSERT_EQ(c.host_pods.size(), 64u);
  EXPECT_EQ(c.num_pods, 8u);
  auto tree = FaultDomainTree::from_pods(c.host_pods);
  EXPECT_EQ(tree.num_pods(), 8u);
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(tree.hosts_in_pod(p).size(), 8u) << "pod " << p;
  }
  // Hosts stripe pod-major across edges: host i and host i + num_edges hang
  // off the same edge, hence the same pod.
  EXPECT_EQ(tree.pod_of(net::HostId{0}), tree.pod_of(net::HostId{32}));
}

TEST(FaultDomains, Figure2DomainsFollowLeafSwitches) {
  Cluster c(cluster_cfg(16, TopoKind::kFigure2));
  ASSERT_EQ(c.host_pods.size(), 16u);
  auto tree = FaultDomainTree::from_pods(c.host_pods);
  EXPECT_GT(tree.num_pods(), 1u);
  // Every domain is non-empty and the domain sizes sum to the host count.
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < tree.num_pods(); ++p) {
    total += tree.hosts_in_pod(p).size();
  }
  EXPECT_EQ(total, 16u);
}

TEST(FaultDomains, ViewReportsDeadPods) {
  auto tree = FaultDomainTree::from_pods({0, 0, 1, 1, 2, 2});
  std::set<std::uint32_t> dead{2, 3};  // pod 1 entirely dead
  membership::FaultDomainView view(
      tree, [&](net::HostId h) { return dead.contains(h.v); });
  EXPECT_EQ(view.live_in_pod(0), 2u);
  EXPECT_EQ(view.live_in_pod(1), 0u);
  ASSERT_EQ(view.dead_pods().size(), 1u);
  EXPECT_EQ(view.dead_pods()[0], 1u);
}

// --- pod-aware placement ---------------------------------------------------

TEST(ShardMapPods, BackupAlwaysInDistinctPod) {
  Cluster c(cluster_cfg(64, TopoKind::kClos));
  const std::size_t num_servers = 32;
  std::vector<net::HostId> servers(c.hosts.begin(),
                                   c.hosts.begin() + num_servers);
  std::vector<std::uint32_t> pods(c.host_pods.begin(),
                                  c.host_pods.begin() + num_servers);
  kv::ShardMap pod_aware(servers, 64, 16, 0x5a4dull, pods);
  kv::ShardMap blind(servers, 64, 16, 0x5a4dull);

  std::size_t colocated_blind = 0;
  for (std::size_t sh = 0; sh < 64; ++sh) {
    EXPECT_NE(pod_aware.primary(sh), pod_aware.backup(sh));
    // Clos hosts are created in id order, so HostId::v == server index here.
    EXPECT_NE(pods[pod_aware.primary(sh).v], pods[pod_aware.backup(sh).v])
        << "shard " << sh << " has both replicas in one pod";
    if (pods[blind.primary(sh).v] == pods[blind.backup(sh).v]) {
      ++colocated_blind;
    }
    // Pod-awareness only redirects the backup; primaries are untouched.
    EXPECT_EQ(pod_aware.primary(sh), blind.primary(sh));
  }
  // The control must actually have co-located replicas, or the chaos
  // experiment comparing the two placements would show nothing.
  EXPECT_GT(colocated_blind, 0u);
}

// --- SWIM state machine ----------------------------------------------------

SwimRigConfig swim_rig_cfg(std::size_t hosts, TopoKind topo = TopoKind::kSingleSwitch) {
  SwimRigConfig cfg;
  cfg.cluster = cluster_cfg(hosts, topo);
  cfg.swim.protocol_period = sim::milliseconds(1);
  cfg.swim.probe_timeout = sim::microseconds(200);
  cfg.swim.suspect_timeout = sim::milliseconds(3);
  return cfg;
}

TEST(Swim, SteadyStateRaisesNoSuspicion) {
  SwimRig r(swim_rig_cfg(8));
  r.c.sched.run_for(sim::milliseconds(50));
  for (auto& a : r.agents) {
    EXPECT_EQ(a->stats().suspects, 0u);
    EXPECT_EQ(a->stats().confirms, 0u);
    EXPECT_GT(a->stats().probe_rounds, 0u);
    EXPECT_GT(a->stats().acks_rx, 0u);
  }
}

TEST(Swim, DeadMemberConfirmedWithinBoundAndHookFiresOnce) {
  SwimRig r(swim_rig_cfg(8));
  const std::size_t victim = 3;
  std::vector<int> hook_fires(r.agents.size(), 0);
  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    r.agents[i]->set_confirm_hook(
        [&, i](net::HostId dead, sim::Time) {
          // The cut victim's own agent legitimately confirms everyone ELSE
          // (from behind the partition the whole world went dark); survivors
          // must only ever confirm the victim.
          if (i != victim) EXPECT_EQ(dead, r.c.hosts[victim]);
          if (dead == r.c.hosts[victim]) ++hook_fires[i];
        });
  }
  r.c.sched.run_for(sim::milliseconds(10));  // warm
  const sim::Time t_kill = r.c.sched.now();
  r.c.fabric().cut_host(r.c.hosts[victim]);

  const sim::Duration bound =
      SwimAgent::detection_bound(r.cfg_.swim, r.c.size());
  r.c.sched.run_for(bound + sim::milliseconds(5));

  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    if (i == victim) continue;
    ASSERT_TRUE(r.agents[i]->confirmed_dead(r.c.hosts[victim]))
        << "agent " << i << " never confirmed";
    EXPECT_EQ(hook_fires[i], 1) << "agent " << i;
    const sim::Time at = r.agents[i]->confirm_time(r.c.hosts[victim]);
    EXPECT_LE(at - t_kill, bound) << "agent " << i << " exceeded the bound";
    // Live members were never harmed in the making of this confirmation.
    for (std::size_t j = 0; j < r.agents.size(); ++j) {
      if (j == victim || j == i) continue;
      EXPECT_EQ(r.agents[i]->state_of(r.c.hosts[j]), MemberState::kAlive);
    }
  }
}

TEST(Swim, TransientPartitionRefutedByIncarnationBump) {
  auto cfg = swim_rig_cfg(6);
  cfg.swim.suspect_timeout = sim::milliseconds(8);
  SwimRig r(cfg);
  const std::size_t victim = 2;
  r.c.sched.run_for(sim::milliseconds(5));
  r.c.fabric().cut_host(r.c.hosts[victim]);
  r.c.sched.run_for(sim::milliseconds(2));  // long enough to be suspected
  r.c.fabric().heal_host(r.c.hosts[victim]);
  r.c.sched.run_for(sim::milliseconds(40));

  std::uint64_t suspects = 0;
  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    suspects += r.agents[i]->stats().suspects;
    EXPECT_EQ(r.agents[i]->stats().confirms, 0u) << "agent " << i;
    if (i != victim) {
      EXPECT_EQ(r.agents[i]->state_of(r.c.hosts[victim]), MemberState::kAlive);
    }
  }
  ASSERT_GT(suspects, 0u) << "partition was never noticed; test proves nothing";
  EXPECT_GE(r.agents[victim]->stats().refutations, 1u);
  EXPECT_GE(r.agents[victim]->incarnation(), 1u);
}

TEST(Swim, IndirectProbesRescueSlowMember) {
  // One member acks only after 800 us — far beyond the 200 us direct window
  // but within the period. With k=3 the relayed ack clears it every round;
  // with k=0 the direct timeout escalates straight to suspicion.
  const std::size_t slow = 5;
  auto make = [&](std::size_t k) {
    auto cfg = swim_rig_cfg(8);
    cfg.swim.protocol_period = sim::milliseconds(5);
    cfg.swim.suspect_timeout = sim::milliseconds(20);
    cfg.swim.k_indirect = k;
    cfg.tweak = [&](std::size_t i, SwimConfig& s) {
      if (i == slow) s.ack_delay = sim::microseconds(800);
    };
    return cfg;
  };

  SwimRig rescued(make(3));
  rescued.c.sched.run_for(sim::milliseconds(120));
  std::uint64_t relayed = 0;
  for (std::size_t i = 0; i < rescued.agents.size(); ++i) {
    EXPECT_EQ(rescued.agents[i]->stats().suspects, 0u) << "agent " << i;
    EXPECT_EQ(rescued.agents[i]->stats().confirms, 0u) << "agent " << i;
    relayed += rescued.agents[i]->stats().indirect_acks_relayed;
  }
  EXPECT_GT(relayed, 0u) << "no indirect ack was ever relayed";

  SwimRig control(make(0));
  control.c.sched.run_for(sim::milliseconds(120));
  std::uint64_t suspects = 0;
  for (auto& a : control.agents) suspects += a->stats().suspects;
  EXPECT_GT(suspects, 0u)
      << "k=0 control never suspected the slow member; ack_delay inert";
}

TEST(Swim, SameSeedRunsAreByteIdentical) {
  auto make = [] {
    auto cfg = swim_rig_cfg(8);
    cfg.swim.log_events = true;
    return SwimRigConfig(cfg);
  };
  auto run = [](SwimRig& r) {
    r.c.sched.run_for(sim::milliseconds(15));
    r.c.fabric().cut_host(r.c.hosts[1]);
    r.c.sched.run_for(sim::milliseconds(40));
  };
  SwimRig a(make());
  SwimRig b(make());
  run(a);
  run(b);
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i]->log(), b.agents[i]->log()) << "agent " << i;
    EXPECT_EQ(a.agents[i]->stats().gossip_msgs_tx,
              b.agents[i]->stats().gossip_msgs_tx);
    EXPECT_EQ(a.agents[i]->stats().gossip_bytes_tx,
              b.agents[i]->stats().gossip_bytes_tx);
    EXPECT_EQ(a.agents[i]->stats().updates_rx, b.agents[i]->stats().updates_rx);
  }
}

// Property: on clos-64, every survivor confirms a killed host within
// suspect_timeout + protocol_period * dissemination_rounds(n) of the kill.
TEST(SwimProperty, DetectionLatencyBoundedOnClos64) {
  auto cfg = swim_rig_cfg(64, TopoKind::kClos);
  SwimRig r(cfg);
  const std::size_t victim = 21;
  r.c.sched.run_for(sim::milliseconds(10));
  const sim::Time t_kill = r.c.sched.now();
  r.c.fabric().cut_host(r.c.hosts[victim]);

  const sim::Duration bound =
      SwimAgent::detection_bound(r.cfg_.swim, r.c.size());
  r.c.sched.run_for(bound + sim::milliseconds(2));

  sim::Duration worst = 0;
  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    if (i == victim) continue;
    ASSERT_TRUE(r.agents[i]->confirmed_dead(r.c.hosts[victim]))
        << "agent " << i << " never confirmed within the bound";
    worst = std::max(worst,
                     r.agents[i]->confirm_time(r.c.hosts[victim]) - t_kill);
    // Proactive exclusion reached the firmware (SwimRig wires the hook).
    EXPECT_GE(r.c.rel(i).stats().peer_exclusions, 1u) << "agent " << i;
  }
  EXPECT_LE(worst, bound);
}

// --- mapper invalidation idempotency (regression) --------------------------

ClusterConfig mapper_cfg() {
  ClusterConfig cfg;
  cfg.num_hosts = 2;
  cfg.topo = TopoKind::kSingleSwitch;
  cfg.fw = FirmwareKind::kReliable;
  cfg.mapper = MapperKind::kOnDemand;
  cfg.preload_routes = false;
  return cfg;
}

TEST(MapperInvalidation, DoubleReportCountsOnce) {
  Cluster c(mapper_cfg());
  bool done = false;
  c.mapper(0).request_route(c.hosts[1],
                            [&](std::optional<net::Route> r) {
                              ASSERT_TRUE(r.has_value());
                              done = true;
                            });
  while (!done && c.sched.step()) {
  }
  // Two reporters (membership exclusion + local no-progress detector)
  // converge on the same dead destination: one invalidation, not two.
  c.mapper(0).on_path_failure(c.hosts[1]);
  c.mapper(0).on_path_failure(c.hosts[1]);
  EXPECT_EQ(c.mapper(0).stats().path_cache_invalidations, 1u);
}

TEST(MapperInvalidation, InFlightMappingResultIsNotRecached) {
  Cluster c(mapper_cfg());
  bool done = false;
  c.mapper(0).request_route(c.hosts[1],
                            [&](std::optional<net::Route> r) {
                              EXPECT_TRUE(r.has_value());
                              done = true;
                            });
  // Let the mapping start probing, then report the failure mid-flight.
  c.sched.run_for(sim::microseconds(1));
  ASSERT_FALSE(done) << "mapping finished before the race could be staged";
  c.mapper(0).on_path_failure(c.hosts[1]);
  while (!done && c.sched.step()) {
  }
  const auto& s = c.mapper(0).stats();
  EXPECT_EQ(s.mappings_succeeded, 1u);
  // The poisoned result must not have been cached: a repeat report finds
  // nothing to invalidate (no double count), and a repeat request maps anew
  // instead of hitting the cache.
  c.mapper(0).on_path_failure(c.hosts[1]);
  EXPECT_EQ(s.path_cache_invalidations, 0u);
  bool again = false;
  c.mapper(0).request_route(c.hosts[1],
                            [&](std::optional<net::Route> r) {
                              EXPECT_TRUE(r.has_value());
                              again = true;
                            });
  while (!again && c.sched.step()) {
  }
  EXPECT_EQ(s.mappings_started, 2u);
  EXPECT_EQ(s.path_cache_hits, 0u);
}

}  // namespace
}  // namespace sanfault
