// Stripe placement: parity groups -> ordered unit holders, spread across
// fault domains, with deterministic spare selection after a host death.
//
// Objects hash to one of `num_groups` parity groups; a group's k+m units
// live on k+m DISTINCT servers chosen from a per-group seeded preference
// permutation, greedily round-robining across pods (the PR 6 fault-domain
// tree) so a single pod-level fault costs a stripe at most as many units as
// the pod holds — with enough pods, exactly one.
//
// Liveness is layered on top exactly as ShardMap layers pod-awareness:
// resolve(group, dead) starts from the static base placement and, for each
// unit whose base holder the local membership view has confirmed dead, walks
// the same preference permutation for the first live server that (a) holds
// no other unit of this stripe and (b) sits in a pod no current holder of
// the stripe occupies (dropping (b) when impossible). Surviving units never
// move — only the dead holder's unit is re-homed, which is what makes
// repair O(lost units) instead of O(stripe). Every node computes resolve()
// from its own SWIM view with no coordination; once views agree (confirm
// gossip converges), clients, servers and the repair machine all name the
// same spare.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "net/ids.hpp"
#include "sim/rng.hpp"

namespace sanfault::ec {

struct StripeMapConfig {
  std::size_t k = 4;  // data units per stripe
  std::size_t m = 2;  // parity units per stripe
  std::size_t num_groups = 16;
  std::uint64_t seed = 0xec9d5eedull;
};

class StripeMap {
 public:
  /// True when the local membership view has confirmed `h` dead; a null
  /// oracle means everyone is live (placement-time queries).
  using DeadFn = std::function<bool(net::HostId)>;

  /// `server_pods` parallels `servers` (empty = pod-blind placement).
  StripeMap(std::vector<net::HostId> servers,
            std::vector<std::uint32_t> server_pods, StripeMapConfig cfg)
      : servers_(std::move(servers)),
        pods_(std::move(server_pods)),
        cfg_(cfg) {
    assert(servers_.size() >= cfg_.k + cfg_.m &&
           "stripe needs k+m distinct servers");
    assert((pods_.empty() || pods_.size() == servers_.size()) &&
           "server_pods must parallel servers");
    if (pods_.empty()) pods_.assign(servers_.size(), 0);
    perm_.resize(cfg_.num_groups);
    base_.resize(cfg_.num_groups);
    for (std::size_t g = 0; g < cfg_.num_groups; ++g) {
      perm_[g].resize(servers_.size());
      std::iota(perm_[g].begin(), perm_[g].end(), std::size_t{0});
      sim::Rng rng(cfg_.seed ^ mix(g + 1));
      for (std::size_t i = perm_[g].size(); i > 1; --i) {
        std::swap(perm_[g][i - 1], perm_[g][rng.uniform(i)]);
      }
      base_[g] = pick_base(g);
    }
  }

  [[nodiscard]] std::size_t k() const { return cfg_.k; }
  [[nodiscard]] std::size_t m() const { return cfg_.m; }
  [[nodiscard]] std::size_t n() const { return cfg_.k + cfg_.m; }
  [[nodiscard]] std::size_t num_groups() const { return cfg_.num_groups; }
  [[nodiscard]] const std::vector<net::HostId>& servers() const {
    return servers_;
  }

  [[nodiscard]] std::size_t group_of(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key ^ cfg_.seed)) % cfg_.num_groups;
  }

  /// Static unit->holder assignment (everyone live), unit order.
  [[nodiscard]] const std::vector<net::HostId>& base(std::size_t group) const {
    return base_[group];
  }

  /// Current holders under the caller's membership view. A unit whose base
  /// holder is live keeps it; a dead holder's unit re-homes to the first
  /// live spare in the group's preference permutation (pod-distinct when
  /// possible). If no live spare exists the dead holder is returned
  /// unchanged — callers must check the oracle before trusting a holder.
  [[nodiscard]] std::vector<net::HostId> resolve(std::size_t group,
                                                 const DeadFn& dead) const {
    std::vector<net::HostId> holders = base_[group];
    if (!dead) return holders;
    std::vector<bool> taken(servers_.size(), false);
    for (const net::HostId h : holders) {
      if (!dead(h)) taken[index_of(h)] = true;
    }
    for (std::size_t u = 0; u < holders.size(); ++u) {
      if (!dead(holders[u])) continue;
      std::size_t found = servers_.size();
      // Pass 1 wants a pod no live holder occupies; pass 2 takes any spare.
      for (int pass = 0; pass < 2 && found == servers_.size(); ++pass) {
        for (const std::size_t cand : perm_[group]) {
          if (taken[cand] || dead(servers_[cand])) continue;
          if (pass == 0 && pod_in_use(holders, dead, pods_[cand])) continue;
          found = cand;
          break;
        }
      }
      if (found == servers_.size()) continue;  // no live spare left
      holders[u] = servers_[found];
      taken[found] = true;
    }
    return holders;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t index_of(net::HostId h) const {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (servers_[i] == h) return i;
    }
    assert(false && "holder is not a stripe server");
    return 0;
  }

  [[nodiscard]] bool pod_in_use(const std::vector<net::HostId>& holders,
                                const DeadFn& dead, std::uint32_t pod) const {
    for (const net::HostId h : holders) {
      if (!dead(h) && pods_[index_of(h)] == pod) return true;
    }
    return false;
  }

  /// First n servers of the group's permutation, round-robining pods: take
  /// an unused-pod candidate while one exists, then clear the used set and
  /// go again (so groups larger than the pod count stay maximally spread).
  [[nodiscard]] std::vector<net::HostId> pick_base(std::size_t group) const {
    std::vector<net::HostId> out;
    std::vector<bool> taken(servers_.size(), false);
    std::vector<bool> pod_used(256, false);
    while (out.size() < n()) {
      std::size_t found = servers_.size();
      for (const std::size_t cand : perm_[group]) {
        if (taken[cand] || pod_used[pods_[cand] % 256]) continue;
        found = cand;
        break;
      }
      if (found == servers_.size()) {
        pod_used.assign(256, false);
        for (const std::size_t cand : perm_[group]) {
          if (!taken[cand]) {
            found = cand;
            break;
          }
        }
        if (found == servers_.size()) break;  // fewer servers than n()
      }
      taken[found] = true;
      pod_used[pods_[found] % 256] = true;
      out.push_back(servers_[found]);
    }
    return out;
  }

  std::vector<net::HostId> servers_;
  std::vector<std::uint32_t> pods_;
  StripeMapConfig cfg_;
  std::vector<std::vector<std::size_t>> perm_;  // per-group preference order
  std::vector<std::vector<net::HostId>> base_;  // per-group unit holders
};

}  // namespace sanfault::ec
