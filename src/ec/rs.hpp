// Systematic Reed-Solomon erasure codec over GF(256).
//
// A stripe holds n = k + m units: the first k are verbatim slices of the
// object ("data units"), the last m are parity. The generator matrix is the
// classic systematic Vandermonde construction: build the (k+m) x k
// Vandermonde matrix V with evaluation points 0..k+m-1, then right-multiply
// by the inverse of its top k x k block. The top k rows become the identity
// (systematic: data units are plain object bytes) and any k rows of the
// result stay linearly independent, so the stripe survives the loss of ANY
// m units — reconstruct() inverts the k rows that did survive and re-derives
// everything else. This is exactly the striping-pattern contract cortx-motr's
// SNS repair assumes of its parity groups (SNIPPETS.md §2).
//
// Every public operation exists twice: the production path on the log/exp
// tables (gf_mul) and a *_reference oracle built only on the bitwise slow
// field ops (gf_mul_slow), with its own independently derived generator.
// tests/ec_codec_test.cpp byte-compares the two on every battery case, so a
// table bug cannot hide behind a matching decode bug.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sanfault::ec {

class RsCodec {
 public:
  /// Requires 1 <= k, 1 <= m, k + m <= 255.
  RsCodec(std::size_t k, std::size_t m);

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return k_ + m_; }

  /// Bytes per unit for an object of `object_len` bytes (ceil(len/k), at
  /// least 1 so empty objects still stripe).
  [[nodiscard]] std::size_t unit_len(std::size_t object_len) const;

  /// Slice an object into n equally sized units: k data slices (the last one
  /// zero-padded) plus m zeroed parity units ready for encode().
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> split(
      const std::vector<std::uint8_t>& object) const;

  /// Reassemble the object from the k data units, trimming the padding.
  [[nodiscard]] std::vector<std::uint8_t> join(
      const std::vector<std::vector<std::uint8_t>>& units,
      std::size_t object_len) const;

  /// Fill units[k..n) (parity) from units[0..k) (data). All n units must be
  /// present and equally sized.
  void encode(std::vector<std::vector<std::uint8_t>>& units) const;

  /// Rebuild every unit whose `present` flag is false from the survivors.
  /// Present units are untouched (missing slots may be empty vectors on
  /// entry). False when fewer than k units are present.
  bool reconstruct(std::vector<std::vector<std::uint8_t>>& units,
                   const std::vector<bool>& present) const;

  /// With all n units present: recompute parity from data and compare.
  /// False on any mismatch — catches corrupt units and units assembled
  /// under the wrong index labels (a stripe decoded from mislabeled
  /// survivors re-encodes to different parity).
  [[nodiscard]] bool verify(
      const std::vector<std::vector<std::uint8_t>>& units) const;

  // --- slow reference oracle (tests only) ---------------------------------
  void encode_reference(std::vector<std::vector<std::uint8_t>>& units) const;
  bool reconstruct_reference(std::vector<std::vector<std::uint8_t>>& units,
                             const std::vector<bool>& present) const;

  /// The systematic generator, n rows by k columns (row r holds unit r's
  /// coefficients over the data units).
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& generator()
      const {
    return g_;
  }

 private:
  std::size_t k_;
  std::size_t m_;
  std::vector<std::vector<std::uint8_t>> g_;      // fast path (tables)
  std::vector<std::vector<std::uint8_t>> g_ref_;  // reference (slow ops)
};

}  // namespace sanfault::ec
