#include "ec/rs.hpp"

#include <cassert>

#include "ec/gf256.hpp"

namespace sanfault::ec {

namespace {

using Matrix = std::vector<std::vector<std::uint8_t>>;
using MulFn = std::uint8_t (*)(std::uint8_t, std::uint8_t);
using InvFn = std::uint8_t (*)(std::uint8_t);

/// In-place Gauss-Jordan inverse over GF(256). False when singular (never
/// for the matrices this codec builds; reconstruct() still checks).
bool invert(Matrix& a, MulFn mul, InvFn inv) {
  const std::size_t n = a.size();
  Matrix id(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) id[i][i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return false;
    std::swap(a[pivot], a[col]);
    std::swap(id[pivot], id[col]);
    const std::uint8_t scale = inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = mul(a[col][j], scale);
      id[col][j] = mul(id[col][j], scale);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint8_t f = a[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] = static_cast<std::uint8_t>(a[row][j] ^ mul(f, a[col][j]));
        id[row][j] = static_cast<std::uint8_t>(id[row][j] ^ mul(f, id[col][j]));
      }
    }
  }
  a = std::move(id);
  return true;
}

/// Systematic generator: V * inverse(top k rows of V), with V the
/// (k+m) x k Vandermonde matrix on evaluation points 0..k+m-1. Any k rows
/// of V are a Vandermonde square on distinct points, hence invertible, and
/// right-multiplying by an invertible matrix preserves that — the MDS
/// property reconstruct() relies on.
Matrix make_generator(std::size_t k, std::size_t m, MulFn mul, InvFn inv) {
  const std::size_t n = k + m;
  Matrix v(n, std::vector<std::uint8_t>(k, 0));
  for (std::size_t r = 0; r < n; ++r) {
    std::uint8_t p = 1;  // r^0 (0^0 == 1 by the Vandermonde convention)
    for (std::size_t c = 0; c < k; ++c) {
      v[r][c] = p;
      p = mul(p, static_cast<std::uint8_t>(r));
    }
  }
  Matrix top(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k));
  const bool ok = invert(top, mul, inv);
  assert(ok && "Vandermonde top block is always invertible");
  (void)ok;
  Matrix g(n, std::vector<std::uint8_t>(k, 0));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      std::uint8_t acc = 0;
      for (std::size_t j = 0; j < k; ++j) {
        acc = static_cast<std::uint8_t>(acc ^ mul(v[r][j], top[j][c]));
      }
      g[r][c] = acc;
    }
  }
  return g;
}

void encode_with(const Matrix& g, std::size_t k, MulFn mul,
                 std::vector<std::vector<std::uint8_t>>& units) {
  const std::size_t n = g.size();
  assert(units.size() == n && "encode needs all n unit slots");
  const std::size_t len = units[0].size();
  for (std::size_t r = k; r < n; ++r) {
    units[r].assign(len, 0);
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t coef = g[r][j];
      if (coef == 0) continue;
      assert(units[j].size() == len && "unit sizes must match");
      for (std::size_t t = 0; t < len; ++t) {
        units[r][t] = static_cast<std::uint8_t>(units[r][t] ^
                                                mul(coef, units[j][t]));
      }
    }
  }
}

bool reconstruct_with(const Matrix& g, std::size_t k, MulFn mul, InvFn inv,
                      std::vector<std::vector<std::uint8_t>>& units,
                      const std::vector<bool>& present) {
  const std::size_t n = g.size();
  assert(units.size() == n && present.size() == n);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < n && rows.size() < k; ++i) {
    if (present[i]) rows.push_back(i);
  }
  if (rows.size() < k) return false;
  const std::size_t len = units[rows[0]].size();

  Matrix a(k, std::vector<std::uint8_t>(k, 0));
  for (std::size_t i = 0; i < k; ++i) a[i] = g[rows[i]];
  if (!invert(a, mul, inv)) return false;

  // D = A^-1 * survivors: the original data units.
  Matrix data(k, std::vector<std::uint8_t>(len, 0));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t coef = a[i][j];
      if (coef == 0) continue;
      const auto& src = units[rows[j]];
      assert(src.size() == len && "survivor sizes must match");
      for (std::size_t t = 0; t < len; ++t) {
        data[i][t] = static_cast<std::uint8_t>(data[i][t] ^ mul(coef, src[t]));
      }
    }
  }

  for (std::size_t r = 0; r < n; ++r) {
    if (present[r]) continue;
    units[r].assign(len, 0);
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint8_t coef = g[r][j];
      if (coef == 0) continue;
      for (std::size_t t = 0; t < len; ++t) {
        units[r][t] = static_cast<std::uint8_t>(units[r][t] ^
                                                mul(coef, data[j][t]));
      }
    }
  }
  return true;
}

}  // namespace

RsCodec::RsCodec(std::size_t k, std::size_t m) : k_(k), m_(m) {
  assert(k >= 1 && m >= 1 && k + m <= 255 && "unsupported stripe geometry");
  g_ = make_generator(k, m, &gf_mul, &gf_inv);
  g_ref_ = make_generator(k, m, &gf_mul_slow, &gf_inv_slow);
}

std::size_t RsCodec::unit_len(std::size_t object_len) const {
  return object_len == 0 ? 1 : (object_len + k_ - 1) / k_;
}

std::vector<std::vector<std::uint8_t>> RsCodec::split(
    const std::vector<std::uint8_t>& object) const {
  const std::size_t len = unit_len(object.size());
  std::vector<std::vector<std::uint8_t>> units(
      n(), std::vector<std::uint8_t>(len, 0));
  for (std::size_t i = 0; i < object.size(); ++i) {
    units[i / len][i % len] = object[i];
  }
  return units;
}

std::vector<std::uint8_t> RsCodec::join(
    const std::vector<std::vector<std::uint8_t>>& units,
    std::size_t object_len) const {
  assert(units.size() >= k_);
  std::vector<std::uint8_t> out(object_len);
  const std::size_t len = units[0].size();
  for (std::size_t i = 0; i < object_len; ++i) {
    out[i] = units[i / len][i % len];
  }
  return out;
}

void RsCodec::encode(std::vector<std::vector<std::uint8_t>>& units) const {
  encode_with(g_, k_, &gf_mul, units);
}

bool RsCodec::reconstruct(std::vector<std::vector<std::uint8_t>>& units,
                          const std::vector<bool>& present) const {
  return reconstruct_with(g_, k_, &gf_mul, &gf_inv, units, present);
}

bool RsCodec::verify(
    const std::vector<std::vector<std::uint8_t>>& units) const {
  assert(units.size() == n());
  std::vector<std::vector<std::uint8_t>> check(
      units.begin(), units.begin() + static_cast<std::ptrdiff_t>(k_));
  check.resize(n());
  encode_with(g_, k_, &gf_mul, check);
  for (std::size_t r = k_; r < n(); ++r) {
    if (check[r] != units[r]) return false;
  }
  return true;
}

void RsCodec::encode_reference(
    std::vector<std::vector<std::uint8_t>>& units) const {
  encode_with(g_ref_, k_, &gf_mul_slow, units);
}

bool RsCodec::reconstruct_reference(
    std::vector<std::vector<std::uint8_t>>& units,
    const std::vector<bool>& present) const {
  return reconstruct_with(g_ref_, k_, &gf_mul_slow, &gf_inv_slow, units,
                          present);
}

}  // namespace sanfault::ec
