// GF(2^8) arithmetic for the Reed-Solomon codec (src/ec/rs.hpp).
//
// The field is GF(256) under the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d) with generator alpha = 2 — the conventional choice of erasure
// coding libraries, so unit bytes on the wire match what an off-simulator
// decoder would compute. Two independent multiply paths exist on purpose:
//
//  * gf_mul / gf_inv      — log/exp table lookups, built once at compile
//                           time; the production path (one add + one lookup
//                           per byte);
//  * gf_mul_slow / gf_inv_slow — bitwise carry-less multiply with explicit
//                           polynomial reduction, and inverse by exhaustive
//                           search. Never used in production: the codec's
//                           reference oracle is built entirely on these so
//                           tests can byte-compare the fast path against
//                           arithmetic that shares none of its tables.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

namespace sanfault::ec {

/// Carry-less multiply of two field elements reduced mod 0x11d. Pure
/// bit-twiddling, no tables — the reference oracle's multiplier.
constexpr std::uint8_t gf_mul_slow(std::uint8_t a, std::uint8_t b) {
  std::uint32_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    if ((b >> i) & 1) acc ^= static_cast<std::uint32_t>(a) << i;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if ((acc >> bit) & 1) acc ^= 0x11du << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

/// Multiplicative inverse by exhaustive search (reference oracle only).
constexpr std::uint8_t gf_inv_slow(std::uint8_t a) {
  assert(a != 0 && "zero has no inverse");
  for (int x = 1; x < 256; ++x) {
    if (gf_mul_slow(a, static_cast<std::uint8_t>(x)) == 1) {
      return static_cast<std::uint8_t>(x);
    }
  }
  return 0;  // unreachable: GF(256) is a field
}

namespace detail {

struct Gf256Tables {
  // exp[i] = alpha^(i mod 255); doubled so gf_mul can skip the mod for the
  // sum of two logs (max 254 + 254 = 508 < 510).
  std::array<std::uint8_t, 510> exp{};
  std::array<std::uint8_t, 256> log{};
};

constexpr Gf256Tables make_tables() {
  Gf256Tables t;
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = x;
    t.exp[static_cast<std::size_t>(i) + 255] = x;
    t.log[x] = static_cast<std::uint8_t>(i);
    x = gf_mul_slow(x, 2);
  }
  return t;
}

inline constexpr Gf256Tables kGf = make_tables();

}  // namespace detail

inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kGf.exp[static_cast<std::size_t>(detail::kGf.log[a]) +
                         detail::kGf.log[b]];
}

inline std::uint8_t gf_inv(std::uint8_t a) {
  assert(a != 0 && "zero has no inverse");
  return detail::kGf.exp[255 - detail::kGf.log[a]];
}

inline std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return gf_mul(a, gf_inv(b));
}

}  // namespace sanfault::ec
