#include "apps/radix.hpp"

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace sanfault::apps {

namespace {

struct RadixCtx {
  svm::Runtime& rt;
  const RadixConfig& cfg;
  svm::RegionId keys[2];  // ping-pong source/destination
  svm::RegionId hist;
  std::size_t radix = 0;
};

sim::Task<void> radix_proc_body(RadixCtx& ctx, svm::Proc& p) {
  auto& rt = ctx.rt;
  const auto P = static_cast<std::size_t>(rt.num_procs());
  const auto pid = static_cast<std::size_t>(p.id());
  const std::size_t nk = ctx.cfg.num_keys;
  const std::size_t k0 = pid * (nk / P);
  const std::size_t k1 = (pid + 1 == P) ? nk : k0 + nk / P;
  const std::size_t radix = ctx.radix;
  auto hist = as_typed<std::uint32_t>(rt.region_data(ctx.hist));

  for (int pass = 0; pass < ctx.cfg.iterations; ++pass) {
    const unsigned shift =
        (static_cast<unsigned>(pass) * ctx.cfg.radix_bits) % 32u;
    const std::uint32_t mask = static_cast<std::uint32_t>(radix - 1);
    const svm::RegionId src = ctx.keys[pass % 2];
    const svm::RegionId dst = ctx.keys[(pass + 1) % 2];
    auto src_keys = as_typed<std::uint32_t>(rt.region_data(src));
    auto dst_keys = as_typed<std::uint32_t>(rt.region_data(dst));

    // 1. Local histogram over my block (my block's pages are homed here).
    (void)co_await p.acquire(src, k0 * 4, (k1 - k0) * 4);
    std::vector<std::uint32_t> count(radix, 0);
    for (std::size_t k = k0; k < k1; ++k) {
      ++count[(src_keys[k] >> shift) & mask];
    }
    co_await p.compute(op_cost(2.0 * static_cast<double>(k1 - k0)));

    // 2. Publish my histogram row.
    const std::size_t hrow = pid * radix;
    (void)co_await p.acquire(ctx.hist, hrow * 4, radix * 4);
    std::copy(count.begin(), count.end(), hist.begin() + static_cast<std::ptrdiff_t>(hrow));
    p.mark_dirty(ctx.hist, hrow * 4, radix * 4);
    co_await p.barrier();

    // 3. Read everyone's histograms; compute my start rank per digit value.
    (void)co_await p.acquire(ctx.hist, 0, P * radix * 4);
    std::vector<std::size_t> rank(radix, 0);
    std::size_t running = 0;
    for (std::size_t v = 0; v < radix; ++v) {
      for (std::size_t q = 0; q < P; ++q) {
        if (q == pid) rank[v] = running;
        running += hist[q * radix + v];
      }
    }
    co_await p.compute(op_cost(2.0 * static_cast<double>(P) *
                               static_cast<double>(radix)));
    co_await p.barrier();

    // 4. Permute: the RadixLocal restructuring emits one contiguous run per
    // digit value (stable within the block), so remote writes are batched
    // runs instead of single keys.
    std::vector<std::vector<std::uint32_t>> buckets(radix);
    for (std::size_t k = k0; k < k1; ++k) {
      buckets[(src_keys[k] >> shift) & mask].push_back(src_keys[k]);
    }
    co_await p.compute(op_cost(4.0 * static_cast<double>(k1 - k0)));
    for (std::size_t v = 0; v < radix; ++v) {
      if (buckets[v].empty()) continue;
      const std::size_t start = rank[v];
      (void)co_await p.acquire(dst, start * 4, buckets[v].size() * 4);
      std::copy(buckets[v].begin(), buckets[v].end(),
                dst_keys.begin() + static_cast<std::ptrdiff_t>(start));
      p.mark_dirty(dst, start * 4, buckets[v].size() * 4);
    }
    co_await p.compute(op_cost(4.0 * static_cast<double>(k1 - k0)));
    co_await p.barrier();
  }
}

}  // namespace

AppResult run_radix(harness::Cluster& cluster, const RadixConfig& cfg) {
  AppResult result;
  const std::size_t nk = cfg.num_keys;

  svm::Runtime rt(cluster, cfg.svm, cfg.procs_per_node);
  RadixCtx ctx{rt, cfg, {0, 0}, 0, 1ull << cfg.radix_bits};
  ctx.keys[0] = rt.create_region(nk * 4);
  ctx.keys[1] = rt.create_region(nk * 4);
  ctx.hist = rt.create_region(static_cast<std::size_t>(rt.num_procs()) *
                              ctx.radix * 4);

  auto keys = as_typed<std::uint32_t>(rt.region_data(ctx.keys[0]));
  sim::Rng rng(cfg.seed);
  std::uint64_t sum_in = 0;
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng.next());
    sum_in += k;
  }

  result.elapsed = rt.run([&](svm::Proc& p) -> sim::Task<void> {
    return radix_proc_body(ctx, p);
  });
  collect_times(rt, result);

  // Verify: permutation preserved, and fully sorted if enough passes ran.
  auto out = as_typed<std::uint32_t>(
      rt.region_data(ctx.keys[static_cast<std::size_t>(cfg.iterations) % 2]));
  std::uint64_t sum_out = 0;
  for (auto k : out) sum_out += k;
  bool ok = (sum_out == sum_in);
  const unsigned bits_done =
      static_cast<unsigned>(cfg.iterations) * cfg.radix_bits;
  if (bits_done == 32) {
    ok = ok && std::is_sorted(out.begin(), out.end());
  } else if (bits_done < 32) {
    // Partial passes stably sort by the low digits processed so far.
    const std::uint32_t mask = (1u << bits_done) - 1;
    ok = ok && std::is_sorted(out.begin(), out.end(),
                              [mask](std::uint32_t a, std::uint32_t b) {
                                return (a & mask) < (b & mask);
                              });
  }
  // bits_done > 32 (the paper's 5 passes wrap to digit 0): the final pass
  // stably re-sorts by a low digit, so only the permutation check applies.
  result.verified = ok;
  return result;
}

}  // namespace sanfault::apps
