#include "apps/fft.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "sim/rng.hpp"

namespace sanfault::apps {

namespace {

using Cplx = std::complex<double>;

/// Iterative radix-2 Cooley-Tukey, unitary (1/sqrt(L)) normalization so that
/// forward+inverse passes round-trip exactly and energy is preserved.
void fft_1d(std::span<Cplx> a, bool inverse) {
  const std::size_t L = a.size();
  for (std::size_t i = 1, j = 0; i < L; ++i) {
    std::size_t bit = L >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= L; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < L; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  const double s = 1.0 / std::sqrt(static_cast<double>(L));
  for (auto& v : a) v *= s;
}

struct FftCtx {
  svm::Runtime& rt;
  const FftConfig& cfg;
  svm::RegionId A;
  svm::RegionId B;
  std::size_t R = 0;  // matrix dimension (rows == cols == sqrt(n))
  std::size_t n = 0;
};

/// Rows [i0, i1) of `dst` := transpose of `src` (dst[i][j] = src[j][i]).
/// Column slices of every remote row are fetched through the SVM — the
/// all-to-all exchange.
sim::Task<void> transpose(FftCtx& ctx, svm::Proc& p, svm::RegionId src,
                          svm::RegionId dst, std::size_t i0, std::size_t i1) {
  auto X = as_typed<Cplx>(ctx.rt.region_data(src));
  auto Y = as_typed<Cplx>(ctx.rt.region_data(dst));
  const std::size_t R = ctx.R;
  double ops = 0;
  for (std::size_t j = 0; j < R; ++j) {
    co_await p.acquire(src, (j * R + i0) * sizeof(Cplx),
                       (i1 - i0) * sizeof(Cplx));
    for (std::size_t i = i0; i < i1; ++i) {
      Y[i * R + j] = X[j * R + i];
    }
    ops += static_cast<double>(i1 - i0) * 2.0;  // load + store per element
  }
  p.mark_dirty(dst, i0 * R * sizeof(Cplx), (i1 - i0) * R * sizeof(Cplx));
  co_await p.compute(op_cost(ops));
}

/// 1D FFTs over rows [i0, i1) of `reg` (homed locally: no fetches).
sim::Task<void> fft_rows(FftCtx& ctx, svm::Proc& p, svm::RegionId reg,
                         std::size_t i0, std::size_t i1, bool inverse) {
  auto M = as_typed<Cplx>(ctx.rt.region_data(reg));
  const std::size_t R = ctx.R;
  for (std::size_t i = i0; i < i1; ++i) {
    fft_1d(M.subspan(i * R, R), inverse);
  }
  p.mark_dirty(reg, i0 * R * sizeof(Cplx), (i1 - i0) * R * sizeof(Cplx));
  const double log2r = std::log2(static_cast<double>(R));
  const double ops = static_cast<double>(i1 - i0) *
                     ctx.cfg.flops_per_butterfly *
                     (static_cast<double>(R) / 2.0) * log2r;
  co_await p.compute(op_cost(ops));
}

/// Twiddle rows [i0, i1) of `reg`: M[i][j] *= exp(sign*2*pi*I*i*j/n).
sim::Task<void> twiddle_rows(FftCtx& ctx, svm::Proc& p, svm::RegionId reg,
                             std::size_t i0, std::size_t i1, double sign) {
  auto M = as_typed<Cplx>(ctx.rt.region_data(reg));
  const std::size_t R = ctx.R;
  const double base = sign * 2.0 * std::numbers::pi / static_cast<double>(ctx.n);
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t j = 0; j < R; ++j) {
      const double ang = base * static_cast<double>(i) * static_cast<double>(j);
      M[i * R + j] *= Cplx(std::cos(ang), std::sin(ang));
    }
  }
  p.mark_dirty(reg, i0 * R * sizeof(Cplx), (i1 - i0) * R * sizeof(Cplx));
  const double ops = static_cast<double>(i1 - i0) * static_cast<double>(R) * 8.0;
  co_await p.compute(op_cost(ops));
}

// One full unitary pass. Forward (data A -> B):
//   T(A->B), U(B), D(B), T(B->A), U(A), T(A->B)
// Inverse (data B -> A) is the exact adjoint:
//   T(B->A), U~(A), T(A->B), D~(B), U~(B), T(B->A)
sim::Task<void> fft_pass(FftCtx& ctx, svm::Proc& p, bool inverse,
                         std::size_t i0, std::size_t i1) {
  const auto A = ctx.A;
  const auto B = ctx.B;
  if (!inverse) {
    co_await transpose(ctx, p, A, B, i0, i1);
    co_await p.barrier();
    co_await fft_rows(ctx, p, B, i0, i1, false);
    co_await twiddle_rows(ctx, p, B, i0, i1, -1.0);
    co_await p.barrier();
    co_await transpose(ctx, p, B, A, i0, i1);
    co_await p.barrier();
    co_await fft_rows(ctx, p, A, i0, i1, false);
    co_await p.barrier();
    co_await transpose(ctx, p, A, B, i0, i1);
    co_await p.barrier();
  } else {
    co_await transpose(ctx, p, B, A, i0, i1);
    co_await p.barrier();
    co_await fft_rows(ctx, p, A, i0, i1, true);
    co_await p.barrier();
    co_await transpose(ctx, p, A, B, i0, i1);
    co_await p.barrier();
    co_await twiddle_rows(ctx, p, B, i0, i1, +1.0);
    co_await fft_rows(ctx, p, B, i0, i1, true);
    co_await p.barrier();
    co_await transpose(ctx, p, B, A, i0, i1);
    co_await p.barrier();
  }
}

}  // namespace

AppResult run_fft(harness::Cluster& cluster, const FftConfig& cfg) {
  AppResult result;
  const std::size_t n = 1ull << cfg.log2_points;
  const std::size_t R = 1ull << (cfg.log2_points / 2);

  svm::Runtime rt(cluster, cfg.svm, cfg.procs_per_node);
  FftCtx ctx{rt, cfg, 0, 0, R, n};
  ctx.A = rt.create_region(n * sizeof(Cplx));
  ctx.B = rt.create_region(n * sizeof(Cplx));

  // Deterministic input.
  auto a = as_typed<Cplx>(rt.region_data(ctx.A));
  sim::Rng rng(0xFF7);
  for (auto& v : a) {
    v = Cplx(rng.uniform_double() * 2 - 1, rng.uniform_double() * 2 - 1);
  }
  const std::vector<Cplx> original(a.begin(), a.end());

  const auto P = static_cast<std::size_t>(rt.num_procs());
  const std::size_t rows_per_proc = R / P;

  result.elapsed = rt.run([&](svm::Proc& p) -> sim::Task<void> {
    const auto pid = static_cast<std::size_t>(p.id());
    const std::size_t i0 = pid * rows_per_proc;
    const std::size_t i1 = (pid + 1 == P) ? R : i0 + rows_per_proc;
    for (int it = 0; it < ctx.cfg.iterations; ++it) {
      co_await fft_pass(ctx, p, /*inverse=*/(it % 2) == 1, i0, i1);
    }
  });
  collect_times(rt, result);

  if (cfg.iterations % 2 == 0) {
    // Round trip: A must equal the original input.
    double max_err = 0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(a[i] - original[i]));
    }
    result.verified = max_err < 1e-6;
  } else {
    // Odd passes end in B: verify unitarity (energy preservation) instead.
    auto b = as_typed<Cplx>(rt.region_data(ctx.B));
    double e_in = 0;
    double e_out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e_in += std::norm(original[i]);
      e_out += std::norm(b[i]);
    }
    result.verified = std::abs(e_in - e_out) < 1e-6 * e_in;
  }
  return result;
}

}  // namespace sanfault::apps
