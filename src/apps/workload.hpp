// Common scaffolding for the SPLASH-2 application reproductions (§5.1.4).
//
// Each application runs its processors as SVM coroutines performing *real*
// computation on real shared data (so results are verifiable), while compute
// phases charge simulated time through a cycle model calibrated to the
// paper's 450 MHz Pentium II hosts. Communication (page fetches, write-backs,
// locks, barriers) is real traffic through the simulated SAN.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "svm/runtime.hpp"
#include "svm/timing.hpp"

namespace sanfault::apps {

/// ~2.2 ns per simple ALU/FP operation on a 450 MHz PII.
inline constexpr double kNsPerOp = 2.2;

inline sim::Duration op_cost(double ops) {
  return static_cast<sim::Duration>(ops * kNsPerOp);
}

struct AppResult {
  bool verified = false;
  sim::Duration elapsed = 0;
  std::vector<svm::TimeBreakdown> per_proc;

  [[nodiscard]] svm::TimeBreakdown aggregate() const {
    svm::TimeBreakdown t;
    for (const auto& p : per_proc) t += p;
    return t;
  }
};

/// Reinterpret a byte span as typed elements. Region buffers come from
/// std::vector<uint8_t> (allocator-aligned to max_align_t), which satisfies
/// the alignment of every element type used here.
template <typename T>
std::span<T> as_typed(std::span<std::uint8_t> bytes) {
  return {reinterpret_cast<T*>(bytes.data()), bytes.size() / sizeof(T)};
}

/// Collect per-proc timing after a run.
inline void collect_times(svm::Runtime& rt, AppResult& out) {
  out.per_proc.clear();
  for (int i = 0; i < rt.num_procs(); ++i) {
    out.per_proc.push_back(rt.proc(i).times());
  }
}

}  // namespace sanfault::apps
