// SPLASH-2 WaterNSquared: O(n^2) molecular dynamics — the paper's
// compute-dominated, lock-heavy application (small communication-to-
// computation ratio, heavy lock synchronization).
//
// Each step:
//   1. every processor reads all positions (one shared region fetch),
//   2. computes pair forces for its (cyclically distributed) molecules into
//      a private accumulation buffer                       (dominant compute)
//   3. merges its contributions into the shared force region under
//      per-block locks                                     (lock traffic)
//   4. barrier; block owners integrate velocities/positions and clear
//      forces; barrier.
//
// Pair forces are equal-and-opposite, so with zero initial velocities total
// momentum stays ~0 — the verification invariant (plus finiteness).
#pragma once

#include "apps/workload.hpp"
#include "harness/cluster.hpp"

namespace sanfault::apps {

struct WaterConfig {
  /// Number of molecules (Table 2 uses 4096; default is bench-sized).
  std::size_t num_molecules = 512;
  int steps = 3;
  /// Molecules per force-lock block (SPLASH locks fine-grained structures).
  std::size_t lock_block = 64;
  int procs_per_node = 2;
  svm::SvmConfig svm;
  /// Flops charged per pair interaction (distance, force, accumulate).
  double flops_per_pair = 50.0;
  double dt = 1e-3;
};

AppResult run_water(harness::Cluster& cluster, const WaterConfig& cfg);

}  // namespace sanfault::apps
