#include "apps/water.hpp"

#include <cmath>
#include <vector>

namespace sanfault::apps {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

struct WaterCtx {
  svm::Runtime& rt;
  const WaterConfig& cfg;
  svm::RegionId pos;
  svm::RegionId vel;
  svm::RegionId force;
};

sim::Task<void> water_proc_body(WaterCtx& ctx, svm::Proc& p) {
  auto& rt = ctx.rt;
  const auto P = static_cast<std::size_t>(rt.num_procs());
  const auto pid = static_cast<std::size_t>(p.id());
  const std::size_t n = ctx.cfg.num_molecules;
  const std::size_t m0 = pid * (n / P);
  const std::size_t m1 = (pid + 1 == P) ? n : m0 + n / P;
  const std::size_t nblocks =
      (n + ctx.cfg.lock_block - 1) / ctx.cfg.lock_block;

  auto pos = as_typed<Vec3>(rt.region_data(ctx.pos));
  auto vel = as_typed<Vec3>(rt.region_data(ctx.vel));
  auto force = as_typed<Vec3>(rt.region_data(ctx.force));

  std::vector<Vec3> local(n);  // private force accumulation

  for (int step = 0; step < ctx.cfg.steps; ++step) {
    // 1. Read all positions (cached copies were invalidated at the barrier).
    (void)co_await p.acquire(ctx.pos, 0, n * sizeof(Vec3));

    // 2. Pair forces for cyclically-assigned rows i (i % P == pid), j > i.
    std::fill(local.begin(), local.end(), Vec3{});
    std::size_t pairs = 0;
    for (std::size_t i = pid; i < n; i += P) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = pos[i].x - pos[j].x;
        const double dy = pos[i].y - pos[j].y;
        const double dz = pos[i].z - pos[j].z;
        const double r2 = dx * dx + dy * dy + dz * dz + 1e-3;
        const double inv = 1.0 / (r2 * std::sqrt(r2));
        local[i].x += dx * inv;
        local[i].y += dy * inv;
        local[i].z += dz * inv;
        local[j].x -= dx * inv;
        local[j].y -= dy * inv;
        local[j].z -= dz * inv;
        ++pairs;
      }
    }
    co_await p.compute(
        op_cost(ctx.cfg.flops_per_pair * static_cast<double>(pairs)));

    // 3. Merge contributions into the shared force region under per-block
    // locks — the lock-heavy phase the paper highlights.
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t lo = b * ctx.cfg.lock_block;
      const std::size_t hi = std::min(n, lo + ctx.cfg.lock_block);
      co_await p.lock(static_cast<std::uint32_t>(b));
      (void)co_await p.acquire(ctx.force, lo * sizeof(Vec3),
                               (hi - lo) * sizeof(Vec3));
      for (std::size_t m = lo; m < hi; ++m) {
        force[m].x += local[m].x;
        force[m].y += local[m].y;
        force[m].z += local[m].z;
      }
      p.mark_dirty(ctx.force, lo * sizeof(Vec3), (hi - lo) * sizeof(Vec3));
      co_await p.compute(op_cost(3.0 * static_cast<double>(hi - lo)));
      co_await p.unlock(static_cast<std::uint32_t>(b));
    }
    co_await p.barrier();

    // 4. Owners integrate their molecules (home-local pages) and reset
    // forces for the next step.
    (void)co_await p.acquire(ctx.force, m0 * sizeof(Vec3),
                             (m1 - m0) * sizeof(Vec3));
    (void)co_await p.acquire(ctx.vel, m0 * sizeof(Vec3),
                             (m1 - m0) * sizeof(Vec3));
    for (std::size_t m = m0; m < m1; ++m) {
      vel[m].x += ctx.cfg.dt * force[m].x;
      vel[m].y += ctx.cfg.dt * force[m].y;
      vel[m].z += ctx.cfg.dt * force[m].z;
      pos[m].x += ctx.cfg.dt * vel[m].x;
      pos[m].y += ctx.cfg.dt * vel[m].y;
      pos[m].z += ctx.cfg.dt * vel[m].z;
      force[m] = Vec3{};
    }
    p.mark_dirty(ctx.pos, m0 * sizeof(Vec3), (m1 - m0) * sizeof(Vec3));
    p.mark_dirty(ctx.vel, m0 * sizeof(Vec3), (m1 - m0) * sizeof(Vec3));
    p.mark_dirty(ctx.force, m0 * sizeof(Vec3), (m1 - m0) * sizeof(Vec3));
    co_await p.compute(op_cost(20.0 * static_cast<double>(m1 - m0)));
    co_await p.barrier();
  }
}

}  // namespace

AppResult run_water(harness::Cluster& cluster, const WaterConfig& cfg) {
  AppResult result;
  const std::size_t n = cfg.num_molecules;

  svm::Runtime rt(cluster, cfg.svm, cfg.procs_per_node);
  WaterCtx ctx{rt, cfg, 0, 0, 0};
  ctx.pos = rt.create_region(n * sizeof(Vec3));
  ctx.vel = rt.create_region(n * sizeof(Vec3));
  ctx.force = rt.create_region(n * sizeof(Vec3));

  // Initial positions: jittered cubic lattice in the unit box; velocities 0.
  auto pos = as_typed<Vec3>(rt.region_data(ctx.pos));
  const auto side = static_cast<std::size_t>(std::ceil(std::cbrt(
      static_cast<double>(n))));
  for (std::size_t m = 0; m < n; ++m) {
    const double s = static_cast<double>(side);
    pos[m].x = (0.5 + static_cast<double>(m % side)) / s;
    pos[m].y = (0.5 + static_cast<double>((m / side) % side)) / s;
    pos[m].z = (0.5 + static_cast<double>(m / (side * side))) / s +
               1e-4 * static_cast<double>(m % 7);
  }

  result.elapsed = rt.run([&](svm::Proc& p) -> sim::Task<void> {
    return water_proc_body(ctx, p);
  });
  collect_times(rt, result);

  // Momentum conservation: equal-and-opposite forces + zero initial
  // velocities => total velocity stays ~0. Also require finiteness.
  auto vel = as_typed<Vec3>(rt.region_data(ctx.vel));
  Vec3 total;
  bool finite = true;
  for (std::size_t m = 0; m < n; ++m) {
    total.x += vel[m].x;
    total.y += vel[m].y;
    total.z += vel[m].z;
    finite = finite && std::isfinite(pos[m].x) && std::isfinite(vel[m].x);
  }
  const double drift =
      std::sqrt(total.x * total.x + total.y * total.y + total.z * total.z);
  result.verified = finite && drift < 1e-6 * static_cast<double>(n);
  return result;
}

}  // namespace sanfault::apps
