// SPLASH-2 RadixLocal: parallel integer radix sort, the paper's
// latency-sensitive application (fine-grained accesses to shared data; the
// "Local" restructuring from Jiang et al. [19] makes each processor emit
// contiguous runs per digit value, reducing access irregularity).
//
// Per digit pass:
//   1. local histogram of the processor's key block        (compute)
//   2. publish histogram to the shared histogram region    (small writes)
//   3. barrier; read all histograms, prefix-sum to ranks   (small fetches)
//   4. permute keys into the destination region            (scattered pages)
//   5. barrier; swap source/destination regions
//
// Verification: after ceil(32 / log2(radix)) passes the array must be fully
// sorted and a permutation of the input (checksum match).
#pragma once

#include "apps/workload.hpp"
#include "harness/cluster.hpp"

namespace sanfault::apps {

struct RadixConfig {
  /// Number of 32-bit keys (Table 2 uses 4M; default is bench-sized).
  std::size_t num_keys = 1 << 16;
  /// Digit passes to run. 4 passes at radix 256 fully sort 32-bit keys.
  int iterations = 4;
  unsigned radix_bits = 8;
  int procs_per_node = 2;
  svm::SvmConfig svm;
  std::uint64_t seed = 0x5041D;
};

AppResult run_radix(harness::Cluster& cluster, const RadixConfig& cfg);

}  // namespace sanfault::apps
