// SPLASH-2 FFT (six-step, transpose-based), the paper's bandwidth-limited,
// single-writer application.
//
// n = 2^m complex points laid out as a sqrt(n) x sqrt(n) row-major matrix in
// one shared region; each processor owns a contiguous block of rows (whose
// pages are homed on its node). One "iteration" is a full unitary FFT pass:
//   transpose -> per-row 1D FFT -> twiddle -> transpose -> 1D FFT -> transpose
// Transposes move real complex data through the SVM (remote page fetches +
// write-backs): the all-to-all traffic that makes FFT bandwidth-bound.
// Alternating passes run forward/inverse, so after an even number of
// iterations the data must equal the input — that is the verification.
#pragma once

#include "apps/workload.hpp"
#include "harness/cluster.hpp"

namespace sanfault::apps {

struct FftConfig {
  /// log2 of the number of complex points; must be even. The paper's Table 2
  /// uses 1M points (log2_points = 20); the default here is bench-sized.
  unsigned log2_points = 14;
  /// Full FFT passes. Even counts enable round-trip verification.
  int iterations = 2;
  int procs_per_node = 2;
  svm::SvmConfig svm;
  /// Flops per radix-2 butterfly (SPLASH counts ~10).
  double flops_per_butterfly = 10.0;
};

AppResult run_fft(harness::Cluster& cluster, const FftConfig& cfg);

}  // namespace sanfault::apps
