// Declarative fault-campaign scenarios.
//
// A scenario is a timeline of fault events — link kills and repairs, flap
// trains, switch death, NIC resets, error-rate ramps, host partitions and
// heals — each fired either at an absolute simulated time or when the
// workload reaches a named phase ("p25", "p50", "p75", "drained"; see
// traffic::TrafficEngine::set_phase_hook), optionally plus an offset.
//
// Scenarios are written in a small line-oriented text form so campaigns can
// live in config files, CI matrices and test literals (docs/CHAOS.md has the
// full grammar):
//
//   scenario trunk-kill
//   seed 7
//   at 2ms error_ramp loss=0.001 corrupt=0.0002 steps=4 over=8ms
//   phase p25 link_down link=0
//   phase p50+3ms link_up link=0
//   at 5ms flap link=1 count=6 period=2ms duty=0.5 jitter=0.25
//   phase p25 partition hosts=1,5
//   phase p50+2ms heal hosts=1,5
//   at 4ms corrupt host=3 state=seq mode=rand peer=5
//
// parse() and to_string() round-trip: to_string() emits the canonical
// spelling (sorted key order, normalized times), which is what determinism
// tests byte-compare.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace sanfault::chaos {

enum class ChaosOp : std::uint8_t {
  kLinkDown,    // permanent (until link_up) single-link failure
  kLinkUp,
  kFlap,        // down/up train on one link: count cycles of `period`
  kSwitchDown,  // whole-crossbar death
  kSwitchUp,
  kNicReset,    // firmware restart on one host: route cache lost
  kErrorRamp,   // ramp per-link loss/corrupt rates to a target in steps
  kPartition,   // cut the listed hosts' access links
  kHeal,        // restore the listed hosts' access links
  kCorrupt,     // garble live protocol state on one host (StateCorruptor)
};

/// Which piece of live state a `corrupt` event garbles (docs/CHAOS.md
/// "State corruption" has the exact field each class maps to).
enum class CorruptState : std::uint8_t {
  kSeq,         // sender next_seq counter
  kAck,         // receiver expected_seq counter
  kGen,         // sender or receiver generation number (corruptor picks)
  kRetxQueue,   // a queued packet's seq/generation header words
  kPathCache,   // cached primary route + installed route-table entry
  kBackupSlot,  // proactive backup route (promote-time validation fodder)
};

/// How the corrupted word is rewritten.
enum class CorruptMode : std::uint8_t {
  kFlip,  // flip one seeded-random bit
  kZero,  // zero the field (routes: empty the port list)
  kRand,  // replace with a seeded-random value
};

[[nodiscard]] std::string_view chaos_op_name(ChaosOp op);
[[nodiscard]] std::string_view corrupt_state_name(CorruptState s);
[[nodiscard]] std::string_view corrupt_mode_name(CorruptMode m);

/// One scheduled fault. Exactly one trigger applies: `phase` empty means
/// absolute time `at`; otherwise the event fires `at` after the workload
/// announces `phase`.
struct ChaosEvent {
  sim::Time at = 0;
  std::string phase;
  ChaosOp op = ChaosOp::kLinkDown;
  /// Target element: link index (link ops / flap / error_ramp with link=),
  /// switch index, or host index (nic_reset). -1 on error_ramp = all links.
  std::int64_t target = -1;
  std::vector<std::uint32_t> hosts;  // partition / heal groups
  // Flap-train parameters.
  std::uint32_t count = 0;
  sim::Duration period = 0;
  double duty = 0.5;    // fraction of each period spent down
  double jitter = 0.0;  // +-fraction of period, drawn from the campaign RNG
  // Error-ramp parameters.
  double loss = 0.0;
  double corrupt = 0.0;
  std::uint32_t steps = 1;
  sim::Duration over = 0;
  // State-corruption parameters (op == kCorrupt; target is the host).
  CorruptState state = CorruptState::kSeq;
  CorruptMode mode = CorruptMode::kRand;
  /// Remote end of the channel to corrupt; -1 lets the corruptor pick a
  /// live peer from its seeded RNG (logged either way).
  std::int64_t peer = -1;

  [[nodiscard]] std::string to_string() const;  // canonical one-line form
};

struct Scenario {
  std::string name = "unnamed";
  std::uint64_t seed = 1;
  std::vector<ChaosEvent> events;

  /// Parse the text form. Throws std::runtime_error naming the offending
  /// line on any syntax or range error.
  static Scenario parse(std::string_view text);

  /// Canonical text form; parse(to_string()) reproduces the scenario.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sanfault::chaos
