// RecoveryMonitor: measures how the stack recovers from injected faults, and
// the invariant checker campaigns gate on.
//
// The monitor is a passive observer wired into three event streams:
//  * net::Fabric fault hook      — when each fault/heal transition happened;
//  * net::Fabric delivery hook   — every packet handed to a receiver;
//  * firmware::FwEvent hook      — path failures, remaps, generation
//                                  restarts, NIC resets (one hook per node).
//
// From those it derives the recovery metrics docs/CHAOS.md defines:
//  * time-to-first-redelivery  — disruptive fault -> first delivered packet
//    carrying kFlagRetransmit (the protocol demonstrably recovering);
//  * remap convergence         — generation restart -> first delivered data
//    packet of that (src, dst, generation) (the re-mapped path carrying
//    traffic again);
//  * retransmission amplification — retransmitted deliveries per delivered
//    data packet;
//  * goodput dip area          — delivered-packet deficit vs the pre-fault
//    per-window baseline, summed over all post-fault windows.
//
// Everything is keyed off simulated time, so two same-seed runs produce
// identical reports. finalize() publishes the report as chaos.* metrics
// (docs/OBSERVABILITY.md) for the golden-file gate in scripts/verify.sh.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "firmware/reliability.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace sanfault::chaos {

struct RecoveryReport {
  // Fault-surface accounting.
  std::uint64_t disruptive_faults = 0;  // link/switch kills, host cuts
  std::uint64_t heals = 0;
  sim::Time first_disruption_at = sim::kNever;
  sim::Time last_heal_at = sim::kNever;

  // Time-to-first-redelivery (one sample per disruption burst).
  std::uint64_t ttfr_samples = 0;
  sim::Duration ttfr_first = 0;  // the first burst's recovery time
  sim::Duration ttfr_max = 0;

  // Per-destination time-to-first-redelivery: within a burst, every (src,
  // dst) pair samples its *own* first retransmitted delivery against the
  // burst start. The single global sample above stops at whichever channel
  // recovers first — typically one served from the mapper's path cache —
  // which masked slow destinations entirely (see docs/CHAOS.md).
  std::uint64_t ttfr_dest_samples = 0;
  sim::Duration ttfr_dest_max = 0;
  std::vector<sim::Duration> ttfr_dest;  // all samples (bench medians)

  // Remap convergence (one sample per observed generation restart).
  std::uint64_t gen_restarts = 0;
  std::uint64_t remap_convergences = 0;
  std::uint64_t remap_unconverged = 0;  // restarts with no later delivery
  sim::Duration remap_conv_max = 0;
  /// Convergence measured from the fault transition that caused the restart
  /// (not from the restart itself): a restart pre-answered from the path
  /// cache converges "instantly" by the restart-relative clock while the
  /// application still waited out the whole detection threshold.
  sim::Duration remap_conv_from_fault_max = 0;
  /// Convergences split by how the remap was answered (FwEvent::promoted):
  /// backup-path promotion vs a fresh probe run.
  std::uint64_t remap_conv_promoted = 0;
  std::uint64_t remap_conv_probed = 0;
  bool gen_regressed = false;  // a generation number moved backwards

  // Firmware recovery machinery totals (summed over nodes).
  std::uint64_t path_failures = 0;
  std::uint64_t remap_starts = 0;
  std::uint64_t remap_failures = 0;  // remap finished with no route
  std::uint64_t nic_resets = 0;
  std::uint64_t peer_exclusions = 0;  // membership-driven channel shutdowns

  // Scrub-to-recovery: a kScrubRepair event opens a clock on its channel
  // pair; the next data delivery on that pair (either direction) closes it.
  // Measures how long a scrubber intervention takes to restore real traffic.
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_recovery_samples = 0;
  sim::Duration scrub_recovery_max = 0;

  // Delivery accounting.
  std::uint64_t data_deliveries = 0;
  std::uint64_t retrans_deliveries = 0;
  sim::Time last_delivery_at = sim::kNever;

  // Goodput dip: baseline = mean data deliveries per window before the
  // first disruption; dip area = sum over later windows of the deficit.
  double goodput_baseline = 0.0;  // deliveries per window
  double goodput_dip_area = 0.0;  // total delivered-packet deficit

  /// retrans_deliveries / data_deliveries (0 when idle).
  [[nodiscard]] double retrans_amplification() const {
    return data_deliveries == 0
               ? 0.0
               : static_cast<double>(retrans_deliveries) /
                     static_cast<double>(data_deliveries);
  }
};

class RecoveryMonitor {
 public:
  explicit RecoveryMonitor(sim::Scheduler& sched,
                           sim::Duration window = sim::milliseconds(1));

  // --- event sinks (bind these to the hooks) -------------------------------
  void on_fault(const net::FaultEvent& ev);
  void on_delivery(const net::Packet& pkt, net::HostId dst);
  void on_fw_event(const firmware::FwEvent& ev);

  /// Compute the derived metrics (goodput dip, unconverged remaps) and
  /// publish the whole report as chaos.* metrics. Call once, after the
  /// workload has quiesced; report() is valid afterwards.
  void finalize();

  [[nodiscard]] const RecoveryReport& report() const { return report_; }

 private:
  sim::Scheduler& sched_;
  sim::Duration window_;
  RecoveryReport report_;
  bool finalized_ = false;
  bool awaiting_redelivery_ = false;
  bool any_burst_ = false;     // a disruption burst has ever started
  sim::Time disruption_at_ = 0;
  sim::Time last_fault_at_ = 0;  // most recent disruptive transition
  /// (src, dst) pairs that already produced their per-destination TTFR
  /// sample for the current burst; reset when a new burst starts.
  std::set<std::pair<std::uint32_t, std::uint32_t>> dest_recovered_;
  std::vector<std::uint64_t> window_counts_;  // data deliveries per window
  struct PendingGen {
    sim::Time restarted_at;
    sim::Time fault_at = 0;  // the disruption this restart recovers from
    bool promoted = false;   // answered by backup promotion, not probing
  };
  // (src, dst) channel -> generation restarts awaiting their first delivery.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::map<std::uint16_t, PendingGen>>
      pending_gens_;
  /// (self, peer) scrub repairs awaiting the next delivery on the pair; the
  /// earliest open repair's clock wins (repair bursts measure end-to-end).
  std::map<std::pair<std::uint32_t, std::uint32_t>, sim::Time>
      pending_scrubs_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint16_t> last_gen_;
};

/// What the workload knows at the end of a campaign cell; feeds the
/// invariant checker. The chaos layer stays ignorant of KV/traffic types —
/// the campaign runner distills them to these counts.
struct InvariantInput {
  bool audit_clean = true;          // exactly-once application audit passed
  std::uint64_t ops_expected = 0;   // operations issued by the workload
  std::uint64_t ops_completed = 0;  // operations that finished
  bool require_redelivery = false;  // scenario kills a loaded path
  bool require_remap = false;       // scenario forces a generation restart

  /// Replica-quorum verdict for placement-policy cells (-1 = not evaluated).
  /// 1: every shard must have kept a live replica (pod-aware placement under
  /// a whole-domain kill); 0: the cell is a control expected to LOSE quorum
  /// (seeded-random placement under the same kill) — the checker flags the
  /// control surviving, since that would mean the experiment shows nothing.
  int quorum_expected = -1;
  bool quorum_held = true;            // measured by the campaign runner
  std::uint64_t shards_no_live_replica = 0;
};

/// Check the campaign invariants; returns one human-readable line per
/// violation (empty = all invariants hold):
///  * exactly-once: the application audit is clean;
///  * no sequence-generation regression on any channel;
///  * eventual progress: every issued op completed, and traffic flowed
///    after the last heal whenever anything was healed;
///  * finite recovery: redelivery / remap convergence observed when the
///    scenario demands them.
[[nodiscard]] std::vector<std::string> check_invariants(
    const RecoveryReport& r, const InvariantInput& in);

}  // namespace sanfault::chaos
