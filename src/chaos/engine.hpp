// ChaosEngine: compiles a declarative Scenario into scheduler-driven fault
// actions against a live net::Fabric.
//
// Absolute-time events (`at ...`) are scheduled when arm() is called; phase
// events (`phase p50 ...`) wait until the workload announces the phase via
// fire_phase() (wire traffic::TrafficEngine::set_phase_hook straight into
// it) and then fire after their optional offset. Compound primitives expand
// into plain scheduler actions at arm/fire time:
//  * flap      -> `count` down/up cycles on one link; cycle boundaries are
//                 jittered from the campaign RNG (seeded by Scenario::seed),
//                 so flap timing is bit-reproducible per seed;
//  * error_ramp-> `steps` rate changes climbing linearly to the target
//                 loss/corrupt probabilities across `over`;
//  * partition/heal -> per-host access-link cut/heal for each listed host.
//
// Every applied action appends one line to a deterministic event log
// ("t=<ns> <action>"); two same-seed runs of the same scenario over the same
// workload produce byte-identical logs — the determinism contract
// tests/chaos_test.cpp and scripts/verify.sh enforce.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/scenario.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::chaos {

class StateCorruptor;

class ChaosEngine {
 public:
  /// `sched` is where actions are scheduled and `injector` is what they act
  /// on. Serial harnesses pass the Fabric itself; the parallel harness
  /// passes the ParallelScheduler's control queue plus a fan-out injector,
  /// so fault mutations of the shared topology land only at global sync
  /// points (see harness/parallel_cluster.hpp).
  ChaosEngine(sim::Scheduler& sched, net::FaultInjector& injector,
              Scenario scenario);

  /// Hook for nic_reset events: called with the host index. The harness
  /// binds this to firmware::ReliableFirmware::nic_reset for that host; the
  /// indirection keeps the engine ignorant of the firmware layer.
  void set_nic_reset_fn(std::function<void(std::uint32_t)> fn) {
    nic_reset_fn_ = std::move(fn);
  }

  /// Hook for corrupt events: the harness binds the StateCorruptor holding
  /// the per-host firmware/mapper bindings (corruptor.hpp). Unset, corrupt
  /// events are audited no-ops — same indirection as set_nic_reset_fn.
  void set_corruptor(StateCorruptor* corruptor) { corruptor_ = corruptor; }

  /// Schedule every absolute-time event. Call once, before running.
  void arm();

  /// Announce a workload phase; fires the scenario's events for that phase
  /// (each after its offset). Repeat announcements of the same phase are
  /// ignored, so per-window hooks can call this unconditionally.
  void fire_phase(std::string_view phase);

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  /// Actions scheduled but not yet applied (flap cycles count individually).
  [[nodiscard]] std::uint64_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

  /// The deterministic event log: one "t=<ns> <action>" line per applied
  /// action, in application order.
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }
  [[nodiscard]] std::string log_text() const;

 private:
  void schedule_event(const ChaosEvent& ev, sim::Duration delay);
  void apply(const ChaosEvent& ev);
  void expand_flap(const ChaosEvent& ev);
  void expand_ramp(const ChaosEvent& ev);
  void note(std::string action);

  sim::Scheduler& sched_;
  net::FaultInjector& fabric_;
  Scenario scenario_;
  sim::Rng rng_;
  std::function<void(std::uint32_t)> nic_reset_fn_;
  StateCorruptor* corruptor_ = nullptr;
  std::vector<std::string> fired_phases_;
  std::vector<std::string> log_;
  std::uint64_t pending_ = 0;
  std::uint64_t applied_ = 0;
  bool armed_ = false;
  obs::Counter* ops_applied_ = nullptr;
};

}  // namespace sanfault::chaos
