#include "chaos/corruptor.hpp"

#include <sstream>
#include <vector>

#include "firmware/mapper_ondemand.hpp"
#include "firmware/reliability.hpp"

namespace sanfault::chaos {

namespace {

std::string route_str(const net::Route& r) {
  std::string out = "[";
  for (std::size_t i = 0; i < r.ports.size(); ++i) {
    if (i) out += ".";
    out += std::to_string(static_cast<unsigned>(r.ports[i]));
  }
  out += "]";
  return out;
}

}  // namespace

StateCorruptor::StateCorruptor(sim::Scheduler& sched, std::uint64_t seed)
    : rng_(seed) {
  auto& reg = obs::Registry::of(sched);
  applied_ctr_ = &reg.counter(
      "chaos.corruptions_applied", "events",
      "state corruptions that rewrote a live protocol field");
  noop_ctr_ = &reg.counter(
      "chaos.corruptions_noop", "events",
      "corrupt events that found nothing live to garble");
}

void StateCorruptor::bind(net::HostId host, firmware::ReliableFirmware* fw,
                          firmware::OnDemandMapper* mapper) {
  bound_[host.v] = Binding{fw, mapper};
}

std::uint32_t StateCorruptor::mutate_u32(CorruptMode mode, std::uint32_t v) {
  switch (mode) {
    case CorruptMode::kFlip:
      return v ^ (std::uint32_t{1} << rng_.uniform(32));
    case CorruptMode::kZero:
      return 0;
    case CorruptMode::kRand:
      return static_cast<std::uint32_t>(rng_.next());
  }
  return v;
}

std::uint16_t StateCorruptor::mutate_u16(CorruptMode mode, std::uint16_t v) {
  switch (mode) {
    case CorruptMode::kFlip:
      return static_cast<std::uint16_t>(v ^
                                        (std::uint16_t{1} << rng_.uniform(16)));
    case CorruptMode::kZero:
      return 0;
    case CorruptMode::kRand:
      return static_cast<std::uint16_t>(rng_.next());
  }
  return v;
}

bool StateCorruptor::mutate_route(CorruptMode mode, net::Route& route) {
  switch (mode) {
    case CorruptMode::kZero:
      if (route.ports.empty()) return false;
      route.ports.clear();
      return true;
    case CorruptMode::kFlip: {
      if (route.ports.empty()) return false;
      auto& byte = route.ports[rng_.uniform(route.ports.size())];
      byte = static_cast<std::uint8_t>(byte ^ (1u << rng_.uniform(8)));
      return true;
    }
    case CorruptMode::kRand: {
      if (route.ports.empty()) return false;
      for (auto& byte : route.ports) {
        byte = static_cast<std::uint8_t>(rng_.next());
      }
      return true;
    }
  }
  return false;
}

std::string StateCorruptor::apply(const ChaosEvent& ev) {
  std::ostringstream os;
  os << "corrupt host=" << ev.target
     << " state=" << corrupt_state_name(ev.state)
     << " mode=" << corrupt_mode_name(ev.mode);
  const auto noop = [&](std::string_view why) {
    ++noops_;
    noop_ctr_->inc();
    os << " noop=" << why;
    return os.str();
  };
  const auto done = [&]() {
    ++applied_;
    applied_ctr_->inc();
    return os.str();
  };

  const auto it = bound_.find(static_cast<std::uint32_t>(ev.target));
  if (it == bound_.end()) return noop("unbound_host");
  firmware::ReliableFirmware* fw = it->second.fw;
  firmware::OnDemandMapper* mapper = it->second.mapper;

  // Resolve peer=-1 to a live peer from the seeded stream; the draw happens
  // in event application order so it is schedule-independent.
  const auto pick_peer =
      [&](const std::vector<net::HostId>& live) -> std::int64_t {
    if (ev.peer >= 0) return ev.peer;
    if (live.empty()) return -1;
    return live[rng_.uniform(live.size())].v;
  };

  switch (ev.state) {
    case CorruptState::kSeq: {
      const std::int64_t p = pick_peer(fw->chaos_tx_peers());
      if (p < 0) return noop("no_tx_channels");
      auto* ch = fw->chaos_tx_channel(net::HostId{
          static_cast<std::uint32_t>(p)});
      if (ch == nullptr) return noop("no_tx_channel");
      const std::uint32_t before = ch->next_seq;
      ch->next_seq = mutate_u32(ev.mode, before);
      if (ch->next_seq == before) return noop("unchanged");
      os << " peer=" << p << " field=next_seq before=" << before
         << " after=" << ch->next_seq;
      return done();
    }
    case CorruptState::kAck: {
      const std::int64_t p = pick_peer(fw->chaos_rx_peers());
      if (p < 0) return noop("no_rx_channels");
      auto* ch = fw->chaos_rx_channel(net::HostId{
          static_cast<std::uint32_t>(p)});
      if (ch == nullptr) return noop("no_rx_channel");
      const std::uint32_t before = ch->expected_seq;
      ch->expected_seq = mutate_u32(ev.mode, before);
      if (ch->expected_seq == before) return noop("unchanged");
      os << " peer=" << p << " field=expected_seq before=" << before
         << " after=" << ch->expected_seq;
      return done();
    }
    case CorruptState::kGen: {
      // A generation lives on both sides of a pair; collect every live one
      // and draw which to garble (logged as tx_/rx_generation).
      struct Cand {
        bool tx;
        net::HostId h;
      };
      std::vector<Cand> cands;
      if (ev.peer >= 0) {
        const net::HostId p{static_cast<std::uint32_t>(ev.peer)};
        if (fw->chaos_tx_channel(p) != nullptr) cands.push_back({true, p});
        if (fw->chaos_rx_channel(p) != nullptr) cands.push_back({false, p});
      } else {
        for (net::HostId h : fw->chaos_tx_peers()) cands.push_back({true, h});
        for (net::HostId h : fw->chaos_rx_peers()) cands.push_back({false, h});
      }
      if (cands.empty()) return noop("no_channels");
      const Cand c = cands[rng_.uniform(cands.size())];
      std::uint16_t before = 0;
      std::uint16_t after = 0;
      if (c.tx) {
        auto* ch = fw->chaos_tx_channel(c.h);
        before = ch->generation;
        ch->generation = mutate_u16(ev.mode, before);
        after = ch->generation;
      } else {
        auto* ch = fw->chaos_rx_channel(c.h);
        before = ch->generation;
        ch->generation = mutate_u16(ev.mode, before);
        after = ch->generation;
      }
      if (after == before) return noop("unchanged");
      os << " peer=" << c.h.v
         << " field=" << (c.tx ? "tx_generation" : "rx_generation")
         << " before=" << before << " after=" << after;
      return done();
    }
    case CorruptState::kRetxQueue: {
      const std::int64_t p = pick_peer(fw->chaos_tx_peers());
      if (p < 0) return noop("no_tx_channels");
      auto* ch = fw->chaos_tx_channel(net::HostId{
          static_cast<std::uint32_t>(p)});
      if (ch == nullptr) return noop("no_tx_channel");
      if (ch->retrans_queue.empty()) return noop("empty_retx_queue");
      // Value corruption only: garble a queued header word, never delete the
      // entry — buffers are owned by the send pool and freed on ack.
      const std::size_t idx = rng_.uniform(ch->retrans_queue.size());
      auto& hdr = ch->retrans_queue[idx].pkt.hdr;
      if (rng_.uniform(2) == 0) {
        const std::uint32_t before = hdr.seq;
        hdr.seq = mutate_u32(ev.mode, before);
        if (hdr.seq == before) return noop("unchanged");
        os << " peer=" << p << " field=retx[" << idx
           << "].seq before=" << before << " after=" << hdr.seq;
      } else {
        const std::uint16_t before = hdr.generation;
        hdr.generation = mutate_u16(ev.mode, before);
        if (hdr.generation == before) return noop("unchanged");
        os << " peer=" << p << " field=retx[" << idx
           << "].gen before=" << before << " after=" << hdr.generation;
      }
      return done();
    }
    case CorruptState::kPathCache: {
      if (mapper == nullptr) return noop("no_mapper");
      std::int64_t p = ev.peer;
      if (p < 0) {
        const auto hosts = mapper->chaos_cached_hosts();
        if (hosts.empty()) return noop("empty_path_cache");
        p = hosts[rng_.uniform(hosts.size())].v;
      }
      const net::HostId dst{static_cast<std::uint32_t>(p)};
      net::Route* route = mapper->chaos_cached_route(dst);
      if (route == nullptr) return noop("not_cached");
      const std::string before = route_str(*route);
      if (!mutate_route(ev.mode, *route)) return noop("empty_route");
      // Keep the installed route-table entry consistent with the cache —
      // otherwise the cached copy is invalidated before it is ever served
      // again and the corruption is unobservable.
      if (fw->routes().contains(dst)) fw->routes().set(dst, *route);
      os << " peer=" << p << " field=path_cache before=" << before
         << " after=" << route_str(*route);
      return done();
    }
    case CorruptState::kBackupSlot: {
      if (mapper == nullptr) return noop("no_mapper");
      std::int64_t p = ev.peer;
      if (p < 0) {
        const auto hosts = mapper->chaos_cached_hosts();
        if (hosts.empty()) return noop("empty_path_cache");
        p = hosts[rng_.uniform(hosts.size())].v;
      }
      const net::HostId dst{static_cast<std::uint32_t>(p)};
      auto* slot = mapper->chaos_cached_backup(dst);
      if (slot == nullptr) return noop("not_cached");
      if (!slot->has_value()) return noop("no_backup");
      net::Route& route = (*slot)->route;
      const std::string before = route_str(route);
      if (!mutate_route(ev.mode, route)) return noop("empty_route");
      os << " peer=" << p << " field=backup_slot before=" << before
         << " after=" << route_str(route);
      return done();
    }
  }
  return noop("unknown_state");
}

}  // namespace sanfault::chaos
