#include "chaos/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "chaos/corruptor.hpp"

namespace sanfault::chaos {

namespace {

std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

ChaosEngine::ChaosEngine(sim::Scheduler& sched, net::FaultInjector& injector,
                         Scenario scenario)
    : sched_(sched),
      fabric_(injector),
      scenario_(std::move(scenario)),
      rng_(scenario_.seed) {
  ops_applied_ = &obs::Registry::of(sched).counter(
      "chaos.ops_applied", "events",
      "fault actions applied by the chaos campaign engine");
}

void ChaosEngine::note(std::string action) {
  ++applied_;
  ops_applied_->inc();
  log_.push_back("t=" + std::to_string(sched_.now()) + " " +
                 std::move(action));
}

std::string ChaosEngine::log_text() const {
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  return out;
}

void ChaosEngine::arm() {
  if (armed_) return;
  armed_ = true;
  const sim::Time now = sched_.now();
  for (const ChaosEvent& ev : scenario_.events) {
    if (!ev.phase.empty()) continue;
    schedule_event(ev, ev.at > now ? ev.at - now : 0);
  }
}

void ChaosEngine::fire_phase(std::string_view phase) {
  if (std::find(fired_phases_.begin(), fired_phases_.end(), phase) !=
      fired_phases_.end()) {
    return;
  }
  fired_phases_.emplace_back(phase);
  for (const ChaosEvent& ev : scenario_.events) {
    if (ev.phase != phase) continue;
    schedule_event(ev, ev.at);
  }
}

void ChaosEngine::schedule_event(const ChaosEvent& ev, sim::Duration delay) {
  // `ev` lives in scenario_.events, which is immutable after construction,
  // so the pointer stays valid for the engine's lifetime.
  const ChaosEvent* evp = &ev;
  ++pending_;
  sched_.after(delay, [this, evp] {
    --pending_;
    apply(*evp);
  });
}

void ChaosEngine::apply(const ChaosEvent& ev) {
  switch (ev.op) {
    case ChaosOp::kLinkDown:
      fabric_.fail_link(net::LinkId{static_cast<std::uint32_t>(ev.target)});
      note("link_down link=" + std::to_string(ev.target));
      break;
    case ChaosOp::kLinkUp:
      fabric_.restore_link(net::LinkId{static_cast<std::uint32_t>(ev.target)});
      note("link_up link=" + std::to_string(ev.target));
      break;
    case ChaosOp::kSwitchDown:
      fabric_.fail_switch(
          net::SwitchId{static_cast<std::uint32_t>(ev.target)});
      note("switch_down switch=" + std::to_string(ev.target));
      break;
    case ChaosOp::kSwitchUp:
      fabric_.restore_switch(
          net::SwitchId{static_cast<std::uint32_t>(ev.target)});
      note("switch_up switch=" + std::to_string(ev.target));
      break;
    case ChaosOp::kNicReset:
      if (nic_reset_fn_) {
        nic_reset_fn_(static_cast<std::uint32_t>(ev.target));
      }
      note("nic_reset host=" + std::to_string(ev.target));
      break;
    case ChaosOp::kFlap:
      note("flap link=" + std::to_string(ev.target) +
           " count=" + std::to_string(ev.count));
      expand_flap(ev);
      break;
    case ChaosOp::kErrorRamp:
      expand_ramp(ev);
      break;
    case ChaosOp::kPartition: {
      std::string who;
      for (std::uint32_t h : ev.hosts) {
        fabric_.cut_host(net::HostId{h});
        if (!who.empty()) who += ",";
        who += std::to_string(h);
      }
      note("partition hosts=" + who);
      break;
    }
    case ChaosOp::kHeal: {
      std::string who;
      for (std::uint32_t h : ev.hosts) {
        fabric_.heal_host(net::HostId{h});
        if (!who.empty()) who += ",";
        who += std::to_string(h);
      }
      note("heal hosts=" + who);
      break;
    }
    case ChaosOp::kCorrupt:
      if (corruptor_ != nullptr) {
        note(corruptor_->apply(ev));
      } else {
        note("corrupt host=" + std::to_string(ev.target) +
             " noop=no_corruptor");
      }
      break;
  }
}

void ChaosEngine::expand_flap(const ChaosEvent& ev) {
  const net::LinkId link{static_cast<std::uint32_t>(ev.target)};
  // Draw all jitter up front, in cycle order, so RNG consumption does not
  // depend on how the scheduled down/up actions interleave with anything
  // else — the flap timing is a pure function of (seed, scenario).
  sim::Duration start = 0;
  for (std::uint32_t i = 0; i < ev.count; ++i) {
    double scale = 1.0;
    if (ev.jitter > 0.0) {
      scale += ev.jitter * (2.0 * rng_.uniform_double() - 1.0);
    }
    const auto period =
        static_cast<sim::Duration>(static_cast<double>(ev.period) * scale);
    const auto down_len =
        static_cast<sim::Duration>(static_cast<double>(period) * ev.duty);
    const std::uint32_t cycle = i;
    ++pending_;
    sched_.after(start, [this, link, cycle] {
      --pending_;
      fabric_.fail_link(link);
      note("flap_down link=" + std::to_string(link.v) +
           " cycle=" + std::to_string(cycle));
    });
    ++pending_;
    sched_.after(start + down_len, [this, link, cycle] {
      --pending_;
      fabric_.restore_link(link);
      note("flap_up link=" + std::to_string(link.v) +
           " cycle=" + std::to_string(cycle));
    });
    start += period;
  }
}

void ChaosEngine::expand_ramp(const ChaosEvent& ev) {
  std::optional<net::LinkId> link;
  if (ev.target >= 0) {
    link = net::LinkId{static_cast<std::uint32_t>(ev.target)};
  }
  for (std::uint32_t k = 1; k <= ev.steps; ++k) {
    const double frac = static_cast<double>(k) / ev.steps;
    const double loss = ev.loss * frac;
    const double corrupt = ev.corrupt * frac;
    const sim::Duration delay =
        ev.steps == 1 ? 0 : ev.over * (k - 1) / (ev.steps - 1);
    ++pending_;
    sched_.after(delay, [this, link, loss, corrupt, k] {
      --pending_;
      fabric_.set_link_fault_rates(link, loss, corrupt);
      note("error_ramp step=" + std::to_string(k) + " loss=" + num_str(loss) +
           " corrupt=" + num_str(corrupt) +
           (link ? " link=" + std::to_string(link->v) : std::string()));
    });
  }
}

}  // namespace sanfault::chaos
