#include "chaos/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sanfault::chaos {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error("scenario parse error, line " +
                           std::to_string(line_no) + ": " + msg);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

/// "2ms" / "1500ns" / "3s" -> nanoseconds.
sim::Duration parse_time(std::string_view tok, std::size_t line_no) {
  std::size_t i = 0;
  while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9') ++i;
  if (i == 0) fail(line_no, "expected a time like 2ms, got '" +
                               std::string(tok) + "'");
  const std::uint64_t v = std::strtoull(std::string(tok.substr(0, i)).c_str(),
                                        nullptr, 10);
  const std::string_view unit = tok.substr(i);
  if (unit == "ns") return sim::nanoseconds(v);
  if (unit == "us") return sim::microseconds(v);
  if (unit == "ms") return sim::milliseconds(v);
  if (unit == "s") return sim::seconds(v);
  fail(line_no, "unknown time unit '" + std::string(unit) +
                    "' (want ns/us/ms/s)");
}

std::string time_str(sim::Duration d) {
  const char* unit = "ns";
  std::uint64_t v = d;
  if (v != 0) {
    if (v % sim::seconds(1) == 0) {
      v /= sim::seconds(1);
      unit = "s";
    } else if (v % sim::milliseconds(1) == 0) {
      v /= sim::milliseconds(1);
      unit = "ms";
    } else if (v % sim::microseconds(1) == 0) {
      v /= sim::microseconds(1);
      unit = "us";
    }
  }
  return std::to_string(v) + unit;
}

std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

ChaosOp parse_op(std::string_view tok, std::size_t line_no) {
  if (tok == "link_down") return ChaosOp::kLinkDown;
  if (tok == "link_up") return ChaosOp::kLinkUp;
  if (tok == "flap") return ChaosOp::kFlap;
  if (tok == "switch_down") return ChaosOp::kSwitchDown;
  if (tok == "switch_up") return ChaosOp::kSwitchUp;
  if (tok == "nic_reset") return ChaosOp::kNicReset;
  if (tok == "error_ramp") return ChaosOp::kErrorRamp;
  if (tok == "partition") return ChaosOp::kPartition;
  if (tok == "heal") return ChaosOp::kHeal;
  if (tok == "corrupt") return ChaosOp::kCorrupt;
  fail(line_no, "unknown op '" + std::string(tok) + "'");
}

CorruptState parse_corrupt_state(std::string_view tok, std::size_t line_no) {
  if (tok == "seq") return CorruptState::kSeq;
  if (tok == "ack") return CorruptState::kAck;
  if (tok == "gen") return CorruptState::kGen;
  if (tok == "retx_queue") return CorruptState::kRetxQueue;
  if (tok == "path_cache") return CorruptState::kPathCache;
  if (tok == "backup_slot") return CorruptState::kBackupSlot;
  fail(line_no, "unknown state '" + std::string(tok) +
                    "' (want seq/ack/gen/retx_queue/path_cache/backup_slot)");
}

CorruptMode parse_corrupt_mode(std::string_view tok, std::size_t line_no) {
  if (tok == "flip") return CorruptMode::kFlip;
  if (tok == "zero") return CorruptMode::kZero;
  if (tok == "rand") return CorruptMode::kRand;
  fail(line_no, "unknown mode '" + std::string(tok) +
                    "' (want flip/zero/rand)");
}

struct KeyVal {
  std::string_view key;
  std::string_view val;
};

KeyVal parse_kv(std::string_view tok, std::size_t line_no) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == tok.size()) {
    fail(line_no, "expected key=value, got '" + std::string(tok) + "'");
  }
  return KeyVal{tok.substr(0, eq), tok.substr(eq + 1)};
}

}  // namespace

std::string_view chaos_op_name(ChaosOp op) {
  switch (op) {
    case ChaosOp::kLinkDown: return "link_down";
    case ChaosOp::kLinkUp: return "link_up";
    case ChaosOp::kFlap: return "flap";
    case ChaosOp::kSwitchDown: return "switch_down";
    case ChaosOp::kSwitchUp: return "switch_up";
    case ChaosOp::kNicReset: return "nic_reset";
    case ChaosOp::kErrorRamp: return "error_ramp";
    case ChaosOp::kPartition: return "partition";
    case ChaosOp::kHeal: return "heal";
    case ChaosOp::kCorrupt: return "corrupt";
  }
  return "?";
}

std::string_view corrupt_state_name(CorruptState s) {
  switch (s) {
    case CorruptState::kSeq: return "seq";
    case CorruptState::kAck: return "ack";
    case CorruptState::kGen: return "gen";
    case CorruptState::kRetxQueue: return "retx_queue";
    case CorruptState::kPathCache: return "path_cache";
    case CorruptState::kBackupSlot: return "backup_slot";
  }
  return "?";
}

std::string_view corrupt_mode_name(CorruptMode m) {
  switch (m) {
    case CorruptMode::kFlip: return "flip";
    case CorruptMode::kZero: return "zero";
    case CorruptMode::kRand: return "rand";
  }
  return "?";
}

std::string ChaosEvent::to_string() const {
  std::ostringstream os;
  if (phase.empty()) {
    os << "at " << time_str(at);
  } else {
    os << "phase " << phase;
    if (at != 0) os << "+" << time_str(at);
  }
  os << " " << chaos_op_name(op);
  switch (op) {
    case ChaosOp::kLinkDown:
    case ChaosOp::kLinkUp:
      os << " link=" << target;
      break;
    case ChaosOp::kFlap:
      os << " link=" << target << " count=" << count
         << " period=" << time_str(period) << " duty=" << num_str(duty)
         << " jitter=" << num_str(jitter);
      break;
    case ChaosOp::kSwitchDown:
    case ChaosOp::kSwitchUp:
      os << " switch=" << target;
      break;
    case ChaosOp::kNicReset:
      os << " host=" << target;
      break;
    case ChaosOp::kErrorRamp:
      os << " loss=" << num_str(loss) << " corrupt=" << num_str(corrupt)
         << " steps=" << steps << " over=" << time_str(over);
      if (target >= 0) os << " link=" << target;
      break;
    case ChaosOp::kPartition:
    case ChaosOp::kHeal:
      os << " hosts=";
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (i) os << ",";
        os << hosts[i];
      }
      break;
    case ChaosOp::kCorrupt:
      os << " host=" << target << " state=" << corrupt_state_name(state)
         << " mode=" << corrupt_mode_name(mode);
      if (peer >= 0) os << " peer=" << peer;
      break;
  }
  return os.str();
}

Scenario Scenario::parse(std::string_view text) {
  Scenario sc;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const auto toks = split_ws(line);
    const std::string_view head = toks[0];
    if (head == "scenario") {
      if (toks.size() != 2) fail(line_no, "usage: scenario <name>");
      sc.name = std::string(toks[1]);
      continue;
    }
    if (head == "seed") {
      if (toks.size() != 2) fail(line_no, "usage: seed <uint64>");
      sc.seed = std::strtoull(std::string(toks[1]).c_str(), nullptr, 10);
      continue;
    }
    if (head != "at" && head != "phase") {
      fail(line_no, "expected at/phase/scenario/seed, got '" +
                        std::string(head) + "'");
    }
    if (toks.size() < 3) fail(line_no, "truncated event line");

    ChaosEvent ev;
    if (head == "at") {
      ev.at = parse_time(toks[1], line_no);
    } else {
      std::string_view ph = toks[1];
      if (const std::size_t plus = ph.find('+'); plus != std::string_view::npos) {
        ev.at = parse_time(ph.substr(plus + 1), line_no);
        ph = ph.substr(0, plus);
      }
      if (ph.empty()) fail(line_no, "empty phase name");
      ev.phase = std::string(ph);
    }
    ev.op = parse_op(toks[2], line_no);

    bool saw_target = false;
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const KeyVal kv = parse_kv(toks[i], line_no);
      const std::string val(kv.val);
      if (kv.key == "link" || kv.key == "switch" || kv.key == "host") {
        ev.target = std::strtoll(val.c_str(), nullptr, 10);
        saw_target = true;
      } else if (kv.key == "hosts") {
        std::size_t p = 0;
        while (p < val.size()) {
          std::size_t comma = val.find(',', p);
          if (comma == std::string::npos) comma = val.size();
          ev.hosts.push_back(static_cast<std::uint32_t>(
              std::strtoul(val.substr(p, comma - p).c_str(), nullptr, 10)));
          p = comma + 1;
        }
      } else if (kv.key == "count") {
        ev.count = static_cast<std::uint32_t>(
            std::strtoul(val.c_str(), nullptr, 10));
      } else if (kv.key == "period") {
        ev.period = parse_time(kv.val, line_no);
      } else if (kv.key == "over") {
        ev.over = parse_time(kv.val, line_no);
      } else if (kv.key == "steps") {
        ev.steps = static_cast<std::uint32_t>(
            std::strtoul(val.c_str(), nullptr, 10));
      } else if (kv.key == "duty") {
        ev.duty = std::strtod(val.c_str(), nullptr);
      } else if (kv.key == "jitter") {
        ev.jitter = std::strtod(val.c_str(), nullptr);
      } else if (kv.key == "loss") {
        ev.loss = std::strtod(val.c_str(), nullptr);
      } else if (kv.key == "corrupt") {
        ev.corrupt = std::strtod(val.c_str(), nullptr);
      } else if (kv.key == "state") {
        ev.state = parse_corrupt_state(kv.val, line_no);
      } else if (kv.key == "mode") {
        ev.mode = parse_corrupt_mode(kv.val, line_no);
      } else if (kv.key == "peer") {
        ev.peer = std::strtoll(val.c_str(), nullptr, 10);
      } else {
        fail(line_no, "unknown key '" + std::string(kv.key) + "'");
      }
    }

    // Per-op requirements: catch malformed campaigns at load, not mid-run.
    switch (ev.op) {
      case ChaosOp::kLinkDown:
      case ChaosOp::kLinkUp:
      case ChaosOp::kSwitchDown:
      case ChaosOp::kSwitchUp:
      case ChaosOp::kNicReset:
        if (!saw_target || ev.target < 0) {
          fail(line_no, std::string(chaos_op_name(ev.op)) +
                            " needs its target (link=/switch=/host=)");
        }
        break;
      case ChaosOp::kFlap:
        if (!saw_target || ev.target < 0) fail(line_no, "flap needs link=");
        if (ev.count == 0 || ev.period == 0) {
          fail(line_no, "flap needs count>=1 and period>0");
        }
        if (ev.duty <= 0.0 || ev.duty >= 1.0) {
          fail(line_no, "flap duty must be in (0,1)");
        }
        if (ev.jitter < 0.0 || ev.jitter >= 1.0) {
          fail(line_no, "flap jitter must be in [0,1)");
        }
        break;
      case ChaosOp::kErrorRamp:
        if (ev.steps == 0) fail(line_no, "error_ramp needs steps>=1");
        if (ev.steps > 1 && ev.over == 0) {
          fail(line_no, "error_ramp with steps>1 needs over=<duration>");
        }
        if (ev.loss < 0.0 || ev.loss > 1.0 || ev.corrupt < 0.0 ||
            ev.corrupt > 1.0) {
          fail(line_no, "error_ramp rates must be probabilities");
        }
        break;
      case ChaosOp::kPartition:
      case ChaosOp::kHeal:
        if (ev.hosts.empty()) {
          fail(line_no, std::string(chaos_op_name(ev.op)) + " needs hosts=");
        }
        break;
      case ChaosOp::kCorrupt:
        if (!saw_target || ev.target < 0) fail(line_no, "corrupt needs host=");
        break;
    }
    sc.events.push_back(std::move(ev));
  }
  return sc;
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << "scenario " << name << "\n";
  os << "seed " << seed << "\n";
  for (const ChaosEvent& ev : events) os << ev.to_string() << "\n";
  return os.str();
}

}  // namespace sanfault::chaos
