// StateCorruptor: seeded, audited mutation of live protocol state.
//
// A chaos `corrupt` event (scenario.hpp) names a host, a state class and a
// rewrite mode; the corruptor resolves it against the bound firmware/mapper
// instances and garbles exactly one live value through the narrow chaos
// mutation APIs (firmware::ReliableFirmware / firmware::OnDemandMapper).
// It never allocates, frees or structurally edits protocol state — a
// corruption can only rewrite words that already exist (a queued packet's
// header, a counter, a cached route's port bytes), so the reachable-state
// space the scrubber must stabilize from is exactly "any value in any live
// field", not "any heap shape".
//
// Every application returns a one-line audit record (the ChaosEngine stamps
// it into the deterministic event log): what was targeted, the value before
// and after, or the reason the event was a no-op (e.g. the channel did not
// exist yet). All randomness — peer selection, bit choice, replacement
// values — comes from the corruptor's own seeded RNG stream, drawn in event
// application order, so two same-seed runs corrupt bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "chaos/scenario.hpp"
#include "net/ids.hpp"
#include "net/route.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::firmware {
class ReliableFirmware;
class OnDemandMapper;
}  // namespace sanfault::firmware

namespace sanfault::chaos {

class StateCorruptor {
 public:
  StateCorruptor(sim::Scheduler& sched, std::uint64_t seed);

  /// Register a host's firmware (and optionally its on-demand mapper) as a
  /// corruption target. Events naming an unbound host are audited no-ops.
  void bind(net::HostId host, firmware::ReliableFirmware* fw,
            firmware::OnDemandMapper* mapper = nullptr);

  /// Apply one kCorrupt event; returns the audit line for the chaos log.
  [[nodiscard]] std::string apply(const ChaosEvent& ev);

  /// Corruptions that actually rewrote live state vs. audited no-ops.
  [[nodiscard]] std::uint64_t applied() const { return applied_; }
  [[nodiscard]] std::uint64_t noops() const { return noops_; }

 private:
  struct Binding {
    firmware::ReliableFirmware* fw = nullptr;
    firmware::OnDemandMapper* mapper = nullptr;
  };

  [[nodiscard]] std::uint32_t mutate_u32(CorruptMode mode, std::uint32_t v);
  [[nodiscard]] std::uint16_t mutate_u16(CorruptMode mode, std::uint16_t v);
  /// Garble a route's port bytes in place; false if nothing could change
  /// (flip/rand on an already-empty port list).
  bool mutate_route(CorruptMode mode, net::Route& route);

  std::map<std::uint32_t, Binding> bound_;  // host.v -> targets (ordered)
  sim::Rng rng_;
  std::uint64_t applied_ = 0;
  std::uint64_t noops_ = 0;
  obs::Counter* applied_ctr_ = nullptr;
  obs::Counter* noop_ctr_ = nullptr;
};

}  // namespace sanfault::chaos
