#include "chaos/recovery.hpp"

#include <algorithm>
#include <cmath>

namespace sanfault::chaos {

namespace {

bool is_disruptive(net::FaultKind k) {
  return k == net::FaultKind::kLinkDown || k == net::FaultKind::kSwitchDown ||
         k == net::FaultKind::kHostCut;
}

bool is_heal(net::FaultKind k) {
  return k == net::FaultKind::kLinkUp || k == net::FaultKind::kSwitchUp ||
         k == net::FaultKind::kHostHeal;
}

}  // namespace

RecoveryMonitor::RecoveryMonitor(sim::Scheduler& sched, sim::Duration window)
    : sched_(sched), window_(window == 0 ? sim::milliseconds(1) : window) {}

void RecoveryMonitor::on_fault(const net::FaultEvent& ev) {
  const sim::Time now = sched_.now();
  if (is_disruptive(ev.kind)) {
    ++report_.disruptive_faults;
    if (report_.first_disruption_at == sim::kNever) {
      report_.first_disruption_at = now;
    }
    last_fault_at_ = now;
    // One time-to-first-redelivery sample per disruption burst: the clock
    // starts at the first kill and stops at the first retransmitted
    // delivery; further kills before that delivery extend the same burst.
    // Per-destination sampling is burst-relative too: a new burst opens a
    // fresh recovery ledger for every channel.
    if (!awaiting_redelivery_) {
      awaiting_redelivery_ = true;
      any_burst_ = true;
      disruption_at_ = now;
      dest_recovered_.clear();
    }
  } else if (is_heal(ev.kind)) {
    ++report_.heals;
    report_.last_heal_at = now;
  }
}

void RecoveryMonitor::on_delivery(const net::Packet& pkt, net::HostId) {
  const sim::Time now = sched_.now();
  if (pkt.hdr.type == net::PacketType::kData) {
    ++report_.data_deliveries;
    report_.last_delivery_at = now;
    const auto idx = static_cast<std::size_t>(now / window_);
    if (window_counts_.size() <= idx) window_counts_.resize(idx + 1, 0);
    ++window_counts_[idx];

    // A data delivery on a scrub-repaired pair (the repair may sit on
    // either end, so both orientations close the clock) is the channel
    // demonstrably carrying traffic again.
    for (const auto skey : {std::make_pair(pkt.hdr.src.v, pkt.hdr.dst.v),
                            std::make_pair(pkt.hdr.dst.v, pkt.hdr.src.v)}) {
      if (auto s = pending_scrubs_.find(skey); s != pending_scrubs_.end()) {
        ++report_.scrub_recovery_samples;
        report_.scrub_recovery_max =
            std::max(report_.scrub_recovery_max, now - s->second);
        pending_scrubs_.erase(s);
      }
    }

    const auto key = std::make_pair(pkt.hdr.src.v, pkt.hdr.dst.v);
    if (auto ch = pending_gens_.find(key); ch != pending_gens_.end()) {
      if (auto g = ch->second.find(pkt.hdr.generation);
          g != ch->second.end()) {
        const sim::Duration conv = now - g->second.restarted_at;
        ++report_.remap_convergences;
        report_.remap_conv_max = std::max(report_.remap_conv_max, conv);
        report_.remap_conv_from_fault_max = std::max(
            report_.remap_conv_from_fault_max, now - g->second.fault_at);
        if (g->second.promoted) {
          ++report_.remap_conv_promoted;
        } else {
          ++report_.remap_conv_probed;
        }
        ch->second.erase(g);
        if (ch->second.empty()) pending_gens_.erase(ch);
      }
    }
  }
  if ((pkt.hdr.flags & net::kFlagRetransmit) != 0) {
    ++report_.retrans_deliveries;
    if (awaiting_redelivery_) {
      awaiting_redelivery_ = false;
      const sim::Duration ttfr = now - disruption_at_;
      if (report_.ttfr_samples == 0) report_.ttfr_first = ttfr;
      report_.ttfr_max = std::max(report_.ttfr_max, ttfr);
      ++report_.ttfr_samples;
    }
    // Per-destination: each (src, dst) pair's first retransmitted delivery
    // since the burst start is its own sample, so one fast channel (e.g.
    // one whose remap was served from the path cache) cannot absorb the
    // whole burst's measurement and hide slower destinations.
    if (any_burst_ && now >= disruption_at_) {
      const auto key = std::make_pair(pkt.hdr.src.v, pkt.hdr.dst.v);
      if (dest_recovered_.insert(key).second) {
        const sim::Duration ttfr = now - disruption_at_;
        ++report_.ttfr_dest_samples;
        report_.ttfr_dest_max = std::max(report_.ttfr_dest_max, ttfr);
        report_.ttfr_dest.push_back(ttfr);
      }
    }
  }
}

void RecoveryMonitor::on_fw_event(const firmware::FwEvent& ev) {
  switch (ev.kind) {
    case firmware::FwEvent::Kind::kPathFail:
      ++report_.path_failures;
      break;
    case firmware::FwEvent::Kind::kRemapStart:
      ++report_.remap_starts;
      break;
    case firmware::FwEvent::Kind::kRemapDone:
      if (!ev.ok) ++report_.remap_failures;
      break;
    case firmware::FwEvent::Kind::kGenRestart: {
      ++report_.gen_restarts;
      const auto key = std::make_pair(ev.self.v, ev.peer.v);
      if (auto it = last_gen_.find(key); it != last_gen_.end()) {
        if (ev.gen <= it->second) report_.gen_regressed = true;
      }
      last_gen_[key] = ev.gen;
      // Anchor the fault-relative convergence clock at the most recent
      // disruptive transition (a restart with no fault observed — e.g. a
      // pure drop-plan run — anchors at the restart itself).
      const sim::Time fault_at =
          last_fault_at_ == 0 ? sched_.now() : last_fault_at_;
      pending_gens_[key][ev.gen] = PendingGen{sched_.now(), fault_at,
                                              ev.promoted};
      break;
    }
    case firmware::FwEvent::Kind::kNicReset:
      ++report_.nic_resets;
      break;
    case firmware::FwEvent::Kind::kPeerExcluded:
      ++report_.peer_exclusions;
      break;
    case firmware::FwEvent::Kind::kScrubRepair: {
      ++report_.scrub_repairs;
      const auto key = std::make_pair(ev.self.v, ev.peer.v);
      pending_scrubs_.try_emplace(key, sched_.now());
      break;
    }
  }
}

void RecoveryMonitor::finalize() {
  if (finalized_) return;
  finalized_ = true;

  for (const auto& [key, gens] : pending_gens_) {
    report_.remap_unconverged += gens.size();
  }

  // Goodput dip: mean deliveries/window before the first disruption is the
  // baseline; every later window up to the last delivery contributes its
  // deficit. Windows after traffic drained are not charged.
  if (report_.first_disruption_at != sim::kNever && !window_counts_.empty()) {
    const auto fault_idx =
        static_cast<std::size_t>(report_.first_disruption_at / window_);
    std::uint64_t pre = 0;
    for (std::size_t i = 0; i < fault_idx && i < window_counts_.size(); ++i) {
      pre += window_counts_[i];
    }
    if (fault_idx > 0) {
      report_.goodput_baseline =
          static_cast<double>(pre) / static_cast<double>(fault_idx);
    }
    const auto last_idx = report_.last_delivery_at == sim::kNever
                              ? 0
                              : static_cast<std::size_t>(
                                    report_.last_delivery_at / window_);
    for (std::size_t i = fault_idx;
         i < window_counts_.size() && i <= last_idx; ++i) {
      const double deficit =
          report_.goodput_baseline - static_cast<double>(window_counts_[i]);
      if (deficit > 0.0) report_.goodput_dip_area += deficit;
    }
  }

  auto& reg = obs::Registry::of(sched_);
  const auto c = [&reg](const char* name, const char* unit,
                        std::uint64_t v) { reg.counter(name, unit).set(v); };
  c("chaos.disruptive_faults", "events", report_.disruptive_faults);
  c("chaos.heals", "events", report_.heals);
  c("chaos.ttfr_samples", "events", report_.ttfr_samples);
  c("chaos.ttfr_first_ns", "ns", report_.ttfr_first);
  c("chaos.ttfr_max_ns", "ns", report_.ttfr_max);
  c("chaos.ttfr_dest_samples", "events", report_.ttfr_dest_samples);
  c("chaos.ttfr_dest_max_ns", "ns", report_.ttfr_dest_max);
  c("chaos.remap_conv_from_fault_max_ns", "ns",
    report_.remap_conv_from_fault_max);
  c("chaos.remap_conv_promoted", "events", report_.remap_conv_promoted);
  c("chaos.remap_conv_probed", "events", report_.remap_conv_probed);
  c("chaos.gen_restarts", "events", report_.gen_restarts);
  c("chaos.remap_convergences", "events", report_.remap_convergences);
  c("chaos.remap_unconverged", "events", report_.remap_unconverged);
  c("chaos.remap_conv_max_ns", "ns", report_.remap_conv_max);
  c("chaos.gen_regressions", "events", report_.gen_regressed ? 1 : 0);
  c("chaos.path_failures", "events", report_.path_failures);
  c("chaos.remap_starts", "events", report_.remap_starts);
  c("chaos.remap_failures", "events", report_.remap_failures);
  c("chaos.nic_resets", "events", report_.nic_resets);
  c("chaos.peer_exclusions", "events", report_.peer_exclusions);
  c("chaos.scrub_repairs", "events", report_.scrub_repairs);
  c("chaos.scrub_recovery_samples", "events",
    report_.scrub_recovery_samples);
  c("chaos.scrub_recovery_max_ns", "ns", report_.scrub_recovery_max);
  c("chaos.data_deliveries", "packets", report_.data_deliveries);
  c("chaos.retrans_deliveries", "packets", report_.retrans_deliveries);
  c("chaos.retrans_amplification_milli", "milli",
    static_cast<std::uint64_t>(
        std::llround(report_.retrans_amplification() * 1000.0)));
  c("chaos.goodput_baseline_milli", "milli",
    static_cast<std::uint64_t>(
        std::llround(report_.goodput_baseline * 1000.0)));
  c("chaos.goodput_dip_area_milli", "milli",
    static_cast<std::uint64_t>(
        std::llround(report_.goodput_dip_area * 1000.0)));
}

std::vector<std::string> check_invariants(const RecoveryReport& r,
                                          const InvariantInput& in) {
  std::vector<std::string> fails;
  if (!in.audit_clean) {
    fails.emplace_back("exactly-once audit failed");
  }
  if (r.gen_regressed) {
    fails.emplace_back("sequence generation regressed on some channel");
  }
  if (in.ops_completed < in.ops_expected) {
    fails.push_back("eventual progress violated: " +
                    std::to_string(in.ops_completed) + "/" +
                    std::to_string(in.ops_expected) + " ops completed");
  }
  if (r.heals > 0 && r.last_heal_at != sim::kNever &&
      (r.last_delivery_at == sim::kNever ||
       r.last_delivery_at <= r.last_heal_at)) {
    fails.emplace_back("no delivery observed after the last heal");
  }
  if (in.require_redelivery && r.ttfr_samples == 0) {
    fails.emplace_back(
        "no time-to-first-redelivery sample (expected a recovery)");
  }
  if (in.require_remap &&
      (r.gen_restarts == 0 || r.remap_convergences == 0)) {
    fails.emplace_back(
        "no converged generation restart (expected a remap)");
  }
  if (in.quorum_expected == 1 && !in.quorum_held) {
    fails.push_back("replica quorum lost: " +
                    std::to_string(in.shards_no_live_replica) +
                    " shard(s) with no live replica");
  }
  if (in.quorum_expected == 0 && in.quorum_held) {
    fails.emplace_back(
        "control placement unexpectedly kept quorum (experiment shows "
        "nothing)");
  }
  return fails;
}

}  // namespace sanfault::chaos
