// Virtual Memory-Mapped Communication (VMMC) endpoint — the user-level
// communication layer of the paper's platform (§3.2).
//
// Programming model:
//  * the receiver *exports* regions of its address space it is willing to
//    accept data into;
//  * a sender *imports* a remote exported buffer (a control-message round
//    trip validating id and size);
//  * send() deposits bytes directly into the imported remote buffer at a
//    given offset — no receiver-side software on the data path. The MCP
//    segments messages larger than the 4 KB NIC buffer;
//  * an optional notification fires at the receiver when the last segment of
//    a message lands.
//
// The endpoint is protection-checked the way VMMC is: deposits to unknown
// export ids or out-of-bounds offsets are rejected (counted, not delivered).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "nic/nic.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace sanfault::vmmc {

using ExportId = std::uint32_t;

/// Receiver-side notification: a complete message landed in an export.
struct DepositEvent {
  sim::Time at = 0;
  net::HostId src;
  ExportId exp = 0;
  std::uint64_t offset = 0;  // where the message starts in the export
  std::uint64_t length = 0;  // total message length (all segments)
  std::uint64_t tag = 0;     // sender-chosen tag
};

struct EndpointStats {
  std::uint64_t sends = 0;
  std::uint64_t segments_tx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t deposits_rx = 0;   // complete messages
  std::uint64_t segments_rx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t rejected_rx = 0;   // bad export id / out of bounds
  std::uint64_t imports_ok = 0;
  std::uint64_t imports_denied = 0;
};

class Endpoint {
 public:
  Endpoint(sim::Scheduler& sched, nic::Nic& nic);
  ~Endpoint();

  /// Export `bytes` of receive space. Returns the id importers use.
  ExportId export_buffer(std::size_t bytes);

  [[nodiscard]] std::span<const std::uint8_t> buffer(ExportId id) const;
  [[nodiscard]] std::span<std::uint8_t> buffer_mut(ExportId id);

  /// Awaitable stream of complete-message notifications for one export.
  [[nodiscard]] sim::Channel<DepositEvent>& notifications(ExportId id);

  /// A remote buffer this endpoint may deposit into.
  struct Import {
    net::HostId remote;
    ExportId exp = 0;
    std::size_t size = 0;
  };

  /// Import a remote export (control-message round trip). nullopt if the
  /// exporter denies (no such export).
  sim::Task<std::optional<Import>> import(net::HostId remote, ExportId exp);

  /// Deposit `data` into the imported buffer at `offset`. Segments at the
  /// NIC buffer size; resumes when the last segment has been accepted by the
  /// NIC (the blocking library call returns, the source buffer is reusable).
  /// `tag` rides along and is visible in the receiver's DepositEvent.
  sim::Task<void> send(Import imp, std::size_t offset,
                       std::vector<std::uint8_t> data, std::uint64_t tag = 0);

  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  [[nodiscard]] net::HostId host() const { return nic_.self(); }
  [[nodiscard]] nic::Nic& nic() { return nic_; }

 private:
  enum class Kind : std::uint8_t {
    kDeposit = 1,
    kImportReq = 2,
    kImportResp = 3,
  };

  struct ExportRec {
    std::vector<std::uint8_t> data;
    std::unique_ptr<sim::Channel<DepositEvent>> notify;
  };

  struct PendingImport {
    sim::Trigger done;
    std::uint64_t size = 0;
    bool granted = false;
  };

  static net::UserHeader encode(Kind kind, ExportId exp, bool last,
                                std::uint64_t offset, std::uint64_t tag,
                                std::uint64_t total);

  void on_host_rx(net::UserHeader u, net::PayloadRef payload,
                  net::HostId src);
  void handle_deposit(net::UserHeader u, const net::PayloadRef& payload,
                      net::HostId src);

  sim::Scheduler& sched_;
  nic::Nic& nic_;
  std::unordered_map<ExportId, ExportRec> exports_;
  std::unordered_map<std::uint64_t, PendingImport*> pending_imports_;
  ExportId next_export_ = 1;
  std::uint64_t next_nonce_ = 1;
  EndpointStats stats_;
};

}  // namespace sanfault::vmmc
