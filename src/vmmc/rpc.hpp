// Message-oriented request/reply convenience layer over VMMC deposits.
//
// Raw VMMC is a remote-write primitive: the sender picks the offset, the
// receiver sees a deposit notification. Services want discrete messages with
// an inbox. MsgEndpoint provides that while staying honest to VMMC
// semantics:
//
//  * each MsgEndpoint exports ONE well-known ring buffer (export id 1 — it
//    must be the first export created on its Endpoint), statically
//    partitioned per sender host. Senders own their partition, so concurrent
//    peers never collide and no receiver-side allocation protocol is needed;
//  * post() writes the message sequentially into the sender's partition
//    (wrapping at the end) and rides the user tag through unchanged;
//  * a pump coroutine copies each complete deposit out of the ring into an
//    owned Msg *at notification time*, so later traffic reusing ring space
//    cannot alienate a message already notified.
//
// Delivery contract: messages from one peer arrive in order (VMMC
// point-to-point ordering over the reliable firmware). Across a
// permanent-path failover the firmware re-sends delivered-but-unacked
// packets under a new generation, so a message can be delivered MORE THAN
// ONCE — receivers needing exactly-once must dedup by tag/request id
// (src/kv does). This is the paper's at-least-once contract surfaced one
// layer up.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "vmmc/endpoint.hpp"

namespace sanfault::vmmc {

/// A complete message copied out of the ring.
struct Msg {
  sim::Time at = 0;       // notification time at the receiver
  net::HostId src;
  std::uint64_t tag = 0;  // sender-chosen, rides the deposit tag
  std::vector<std::uint8_t> bytes;
};

struct MsgEndpointStats {
  std::uint64_t msgs_tx = 0;
  std::uint64_t msgs_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t connects = 0;
};

class MsgEndpoint {
 public:
  /// The ring is always the first export of the endpoint, so peers can
  /// import it without an out-of-band id exchange.
  static constexpr ExportId kRingExport = 1;

  /// `per_peer_bytes` is one sender's ring partition; a message must fit in
  /// it. `max_peers` bounds the partition count (indexed by sender HostId).
  MsgEndpoint(sim::Scheduler& sched, Endpoint& ep,
              std::size_t per_peer_bytes = 64 * 1024,
              std::size_t max_peers = 16);
  ~MsgEndpoint();

  /// Import `remote`'s ring (one control round trip). Must complete before
  /// the first post() to that host. Returns false if the remote has no
  /// MsgEndpoint ring.
  sim::Task<bool> connect(net::HostId remote);
  [[nodiscard]] bool connected(net::HostId remote) const {
    return peers_.contains(remote);
  }

  /// Post one message to a connected remote; resumes when the local NIC has
  /// accepted every segment (source buffer reusable), not when delivered.
  sim::Task<void> post(net::HostId remote, std::vector<std::uint8_t> bytes,
                       std::uint64_t tag = 0);

  /// Inbound messages from all peers, in per-peer order.
  [[nodiscard]] sim::Channel<Msg>& inbox() { return inbox_; }

  /// Optional pre-inbox intercept. The pump offers every complete message to
  /// the tap first; returning true consumes it (it never reaches the inbox).
  /// Lets a sideband protocol (membership gossip) share a service's ring
  /// without the service's dispatch loop having to know its message types.
  using Tap = std::function<bool(const Msg&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }
  /// Current tap, for chaining: a second sideband protocol captures the
  /// installed tap and installs a composite that tries it first.
  [[nodiscard]] const Tap& tap() const { return tap_; }

  [[nodiscard]] net::HostId host() const { return ep_.host(); }
  [[nodiscard]] const MsgEndpointStats& stats() const { return stats_; }

 private:
  struct Peer {
    Endpoint::Import imp;
    std::size_t next_off = 0;  // within this sender's partition
  };

  sim::Process pump();

  sim::Scheduler& sched_;
  Endpoint& ep_;
  std::size_t per_peer_;
  std::unordered_map<net::HostId, Peer> peers_;
  sim::Channel<Msg> inbox_;
  Tap tap_;
  MsgEndpointStats stats_;
};

}  // namespace sanfault::vmmc
