#include "vmmc/endpoint.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace sanfault::vmmc {

namespace {
// UserHeader word layout (the firmware/fabric never look inside):
//   w0: [63..56] kind | [55] last-segment flag | [31..0] export id
//   w1: byte offset of this segment in the export
//   w2: sender tag (import protocol: nonce)
//   w3: total message length (import protocol: granted size)
constexpr std::uint64_t kKindShift = 56;
constexpr std::uint64_t kLastBit = 1ull << 55;
}  // namespace

Endpoint::Endpoint(sim::Scheduler& sched, nic::Nic& nic)
    : sched_(sched), nic_(nic) {
  nic_.set_host_rx(
      [this](net::UserHeader u, net::PayloadRef p, net::HostId src) {
        on_host_rx(u, std::move(p), src);
      });

  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(nic_.self().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const EndpointStats& s = stats_;
    reg.counter("vmmc.sends" + node, "messages").set(s.sends);
    reg.counter("vmmc.segments_tx" + node, "segments").set(s.segments_tx);
    reg.counter("vmmc.bytes_tx" + node, "bytes").set(s.bytes_tx);
    reg.counter("vmmc.deposits_rx" + node, "messages").set(s.deposits_rx);
    reg.counter("vmmc.segments_rx" + node, "segments").set(s.segments_rx);
    reg.counter("vmmc.bytes_rx" + node, "bytes").set(s.bytes_rx);
    reg.counter("vmmc.rejected_rx" + node, "segments").set(s.rejected_rx);
    reg.counter("vmmc.imports_ok" + node, "imports").set(s.imports_ok);
    reg.counter("vmmc.imports_denied" + node, "imports")
        .set(s.imports_denied);
  });
}

Endpoint::~Endpoint() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

net::UserHeader Endpoint::encode(Kind kind, ExportId exp, bool last,
                                 std::uint64_t offset, std::uint64_t tag,
                                 std::uint64_t total) {
  net::UserHeader u;
  u.w0 = (static_cast<std::uint64_t>(kind) << kKindShift) |
         (last ? kLastBit : 0) | exp;
  u.w1 = offset;
  u.w2 = tag;
  u.w3 = total;
  return u;
}

ExportId Endpoint::export_buffer(std::size_t bytes) {
  const ExportId id = next_export_++;
  ExportRec rec;
  rec.data.assign(bytes, 0);
  rec.notify = std::make_unique<sim::Channel<DepositEvent>>();
  exports_.emplace(id, std::move(rec));
  return id;
}

std::span<const std::uint8_t> Endpoint::buffer(ExportId id) const {
  return exports_.at(id).data;
}

std::span<std::uint8_t> Endpoint::buffer_mut(ExportId id) {
  return exports_.at(id).data;
}

sim::Channel<DepositEvent>& Endpoint::notifications(ExportId id) {
  return *exports_.at(id).notify;
}

sim::Task<std::optional<Endpoint::Import>> Endpoint::import(net::HostId remote,
                                                            ExportId exp) {
  PendingImport pend;
  const std::uint64_t nonce = next_nonce_++;
  pending_imports_[nonce] = &pend;

  nic::SendRequest req;
  req.dst = remote;
  req.user = encode(Kind::kImportReq, exp, true, 0, nonce, 0);
  nic_.host_submit(std::move(req));

  co_await pend.done.wait(sched_);
  pending_imports_.erase(nonce);
  if (!pend.granted) {
    ++stats_.imports_denied;
    co_return std::nullopt;
  }
  ++stats_.imports_ok;
  co_return Import{remote, exp, static_cast<std::size_t>(pend.size)};
}

sim::Task<void> Endpoint::send(Import imp, std::size_t offset,
                               std::vector<std::uint8_t> data,
                               std::uint64_t tag) {
  ++stats_.sends;
  const std::size_t seg = nic_.costs().buffer_bytes;
  const std::size_t total = data.size();
  std::size_t pos = 0;
  do {
    const std::size_t n = std::min(seg, total - pos);
    const bool last = (pos + n >= total);
    nic::SendRequest req;
    req.dst = imp.remote;
    req.user = encode(Kind::kDeposit, imp.exp, last, offset + pos, tag, total);
    req.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                       data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    ++stats_.segments_tx;
    stats_.bytes_tx += n;

    sim::Trigger accepted;
    nic_.host_submit(std::move(req),
                     [this, &accepted] { accepted.fire(sched_); });
    co_await accepted.wait(sched_);
    pos += n;
  } while (pos < total);
}

void Endpoint::on_host_rx(net::UserHeader u, net::PayloadRef payload,
                          net::HostId src) {
  const auto kind = static_cast<Kind>(u.w0 >> kKindShift);
  switch (kind) {
    case Kind::kDeposit:
      handle_deposit(u, std::move(payload), src);
      return;
    case Kind::kImportReq: {
      const auto exp = static_cast<ExportId>(u.w0 & 0xFFFFFFFFull);
      const auto it = exports_.find(exp);
      nic::SendRequest resp;
      resp.dst = src;
      resp.user = encode(Kind::kImportResp, exp, true, 0, /*tag=*/u.w2,
                         it == exports_.end()
                             ? 0
                             : static_cast<std::uint64_t>(it->second.data.size()));
      // Grant iff the export exists; size 0 doubles as the denial marker
      // (VMMC exports are always non-empty).
      resp.user.w1 = (it != exports_.end()) ? 1 : 0;
      nic_.host_submit(std::move(resp));
      return;
    }
    case Kind::kImportResp: {
      const auto it = pending_imports_.find(u.w2);
      if (it == pending_imports_.end()) return;  // duplicate/stale response
      it->second->granted = (u.w1 != 0);
      it->second->size = u.w3;
      it->second->done.fire(sched_);
      return;
    }
    default:
      ++stats_.rejected_rx;
      return;
  }
}

void Endpoint::handle_deposit(net::UserHeader u,
                              const net::PayloadRef& payload,
                              net::HostId src) {
  const auto exp = static_cast<ExportId>(u.w0 & 0xFFFFFFFFull);
  const auto it = exports_.find(exp);
  if (it == exports_.end()) {
    ++stats_.rejected_rx;
    return;
  }
  auto& buf = it->second.data;
  const std::uint64_t offset = u.w1;
  if (offset + payload.size() > buf.size()) {
    ++stats_.rejected_rx;  // protection violation: out of exported bounds
    return;
  }
  std::copy(payload.begin(), payload.end(),
            buf.begin() + static_cast<std::ptrdiff_t>(offset));
  ++stats_.segments_rx;
  stats_.bytes_rx += payload.size();

  if (u.w0 & kLastBit) {
    ++stats_.deposits_rx;
    DepositEvent ev;
    ev.at = sched_.now();
    ev.src = src;
    ev.exp = exp;
    ev.length = u.w3;
    ev.offset = offset + payload.size() - u.w3;
    ev.tag = u.w2;
    it->second.notify->push(sched_, ev);
  }
}

}  // namespace sanfault::vmmc
