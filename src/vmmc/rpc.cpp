#include "vmmc/rpc.hpp"

#include <cassert>
#include <string>

namespace sanfault::vmmc {

MsgEndpoint::MsgEndpoint(sim::Scheduler& sched, Endpoint& ep,
                         std::size_t per_peer_bytes, std::size_t max_peers)
    : sched_(sched), ep_(ep), per_peer_(per_peer_bytes) {
  const ExportId ring = ep_.export_buffer(per_peer_bytes * max_peers);
  assert(ring == kRingExport &&
         "MsgEndpoint must own the first export of its Endpoint");
  (void)ring;
  pump();

  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(ep_.host().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const MsgEndpointStats& s = stats_;
    reg.counter("vmmc.msg_tx" + node, "messages").set(s.msgs_tx);
    reg.counter("vmmc.msg_rx" + node, "messages").set(s.msgs_rx);
    reg.counter("vmmc.msg_bytes_tx" + node, "bytes").set(s.bytes_tx);
    reg.counter("vmmc.msg_bytes_rx" + node, "bytes").set(s.bytes_rx);
    reg.counter("vmmc.msg_connects" + node, "imports").set(s.connects);
  });
}

MsgEndpoint::~MsgEndpoint() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

sim::Task<bool> MsgEndpoint::connect(net::HostId remote) {
  auto imp = co_await ep_.import(remote, kRingExport);
  if (!imp.has_value()) co_return false;
  peers_[remote] = Peer{*imp, 0};
  ++stats_.connects;
  co_return true;
}

sim::Task<void> MsgEndpoint::post(net::HostId remote,
                                  std::vector<std::uint8_t> bytes,
                                  std::uint64_t tag) {
  auto it = peers_.find(remote);
  assert(it != peers_.end() && "post() before connect()");
  Peer& p = it->second;
  assert(bytes.size() <= per_peer_ && "message exceeds ring partition");

  // Our partition of the remote ring starts at self * per_peer. Messages are
  // laid out sequentially; one that would cross the partition end wraps to
  // its start instead (messages are never split across the wrap).
  const std::size_t base = static_cast<std::size_t>(ep_.host().v) * per_peer_;
  if (p.next_off + bytes.size() > per_peer_) p.next_off = 0;
  const std::size_t off = base + p.next_off;
  p.next_off += bytes.size();

  ++stats_.msgs_tx;
  stats_.bytes_tx += bytes.size();
  co_await ep_.send(p.imp, off, std::move(bytes), tag);
}

sim::Process MsgEndpoint::pump() {
  for (;;) {
    DepositEvent ev = co_await ep_.notifications(kRingExport).pop(sched_);
    auto ring = ep_.buffer(kRingExport);
    Msg m;
    m.at = ev.at;
    m.src = ev.src;
    m.tag = ev.tag;
    m.bytes.assign(ring.begin() + static_cast<std::ptrdiff_t>(ev.offset),
                   ring.begin() + static_cast<std::ptrdiff_t>(ev.offset +
                                                              ev.length));
    ++stats_.msgs_rx;
    stats_.bytes_rx += m.bytes.size();
    if (tap_ && tap_(m)) continue;  // consumed by the sideband protocol
    inbox_.push(sched_, std::move(m));
  }
}

}  // namespace sanfault::vmmc
