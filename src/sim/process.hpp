// Coroutine "process" type for host-side simulated programs.
//
// Firmware in this codebase is event-driven (as real NIC firmware is), but
// host programs — benchmark drivers, SVM applications — read much better as
// sequential code. A Process is an eagerly-started, detached coroutine whose
// frame frees itself on completion; synchronization with other processes goes
// through sim::Trigger / sim::WaitGroup (awaitables.hpp).
//
// Lifetime rules: a Process must only suspend on simulator awaitables, and
// the Scheduler must outlive every suspended Process. Processes are never
// destroyed externally.
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>

namespace sanfault::sim {

class Process {
 public:
  struct promise_type {
    Process get_return_object() noexcept { return Process{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    // suspend_never at the final point lets the frame destroy itself; the
    // handle held by callers is never used after spawn.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // An escaping exception inside simulated firmware/apps is a bug in the
      // simulation itself; fail fast rather than corrupt the event queue.
      std::fputs("sanfault: unhandled exception escaped a sim::Process\n",
                 stderr);
      std::terminate();
    }
  };
};

}  // namespace sanfault::sim
