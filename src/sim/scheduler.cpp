#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace sanfault::sim {

Scheduler::~Scheduler() {
  // LIFO, and robust to a hook registering nothing further (hooks must not
  // schedule events — the queue is no longer run).
  while (!teardown_.empty()) {
    auto fn = std::move(teardown_.back());
    teardown_.pop_back();
    fn();
  }
}

EventHandle Scheduler::at(Time t, std::function<void()> fn) {
  if (t < now_) throw std::logic_error("Scheduler::at: time is in the past");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return EventHandle{id};
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return pending_ids_.erase(h.id()) > 0;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (pending_ids_.erase(ev.id) == 0) continue;  // was cancelled
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    if (!step()) break;
  }
  now_ = std::max(now_, t);
}

}  // namespace sanfault::sim
