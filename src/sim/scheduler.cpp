#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace sanfault::sim {

Scheduler::~Scheduler() {
  // LIFO, and robust to a hook registering nothing further (hooks must not
  // schedule events — the queue is no longer run).
  while (!teardown_.empty()) {
    auto fn = std::move(teardown_.back());
    teardown_.pop_back();
    fn();
  }
}

void Scheduler::throw_past_time(Time t) const {
  throw std::logic_error("Scheduler::at: time " + std::to_string(t) +
                         " is in the past (now=" + std::to_string(now_) + ")");
}

void Scheduler::run() {
  while (step()) {
  }
}

void Scheduler::run_before(Time t) {
  for (;;) {
    skim_cancelled();
    if (heap_.empty() || key_time(heap_.front().key) >= t) return;
    if (!step()) return;
  }
}

void Scheduler::run_until(Time t) {
  for (;;) {
    // Skim first so a cancelled entry's timestamp cannot decide the loop:
    // with the old priority_queue a cancelled event at u <= t sitting on top
    // of a live event at v > t would let step() overshoot the horizon.
    skim_cancelled();
    if (heap_.empty() || key_time(heap_.front().key) > t) break;
    if (!step()) break;
  }
  now_ = std::max(now_, t);
}

}  // namespace sanfault::sim
