// FifoServer: a serially-reusable resource with FIFO service order.
//
// Models every "one thing at a time" device in the system — the slow NIC
// control processor, each DMA engine, the PCI bus, a network link. Because
// service is FIFO and service times are known at submission, the queue is
// implicit: a job submitted at time t with service s completes at
// max(t, free_at) + s. Queueing delay therefore emerges without storing a
// queue, and utilization accounting is exact.
#pragma once

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {

class FifoServer {
 public:
  explicit FifoServer(Scheduler& sched) : sched_(sched) {}

  /// Enqueue a job needing `service` time; `on_done` (optional) fires at
  /// completion. Returns the completion time.
  Time submit(Duration service, Scheduler::EventFn on_done = {}) {
    const Time start = free_at_ > sched_.now() ? free_at_ : sched_.now();
    free_at_ = time_add(start, service);
    busy_ += service;
    ++jobs_;
    if (on_done) sched_.at(free_at_, std::move(on_done));
    return free_at_;
  }

  /// Time at which the server next becomes idle (may be in the past).
  [[nodiscard]] Time free_at() const { return free_at_; }

  [[nodiscard]] bool busy_now() const { return free_at_ > sched_.now(); }

  /// Total service time dispensed so far.
  [[nodiscard]] Duration busy_time() const { return busy_; }

  [[nodiscard]] std::uint64_t jobs_served() const { return jobs_; }

  /// Fraction of [0, horizon] the server was busy.
  [[nodiscard]] double utilization(Time horizon) const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(busy_) / static_cast<double>(horizon);
  }

 private:
  Scheduler& sched_;
  Time free_at_ = 0;
  Duration busy_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace sanfault::sim
