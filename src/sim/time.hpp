// Simulated-time primitives.
//
// All simulation time is kept as unsigned 64-bit nanoseconds. 2^64 ns is
// ~584 years of simulated time, so overflow is not a practical concern; the
// arithmetic helpers below still saturate on addition to keep "never"
// (Time::max) stable as a sentinel.
#pragma once

#include <cstdint>
#include <limits>

namespace sanfault::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;
/// Relative simulated duration in nanoseconds.
using Duration = std::uint64_t;

/// Sentinel meaning "never" / "not scheduled".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

constexpr Duration nanoseconds(std::uint64_t v) { return v; }
constexpr Duration microseconds(std::uint64_t v) { return v * 1'000ull; }
constexpr Duration milliseconds(std::uint64_t v) { return v * 1'000'000ull; }
constexpr Duration seconds(std::uint64_t v) { return v * 1'000'000'000ull; }

/// Saturating add so that kNever + anything stays kNever.
constexpr Time time_add(Time t, Duration d) {
  return (t > kNever - d) ? kNever : t + d;
}

constexpr double to_seconds(Duration d) { return static_cast<double>(d) * 1e-9; }
constexpr double to_micros(Duration d) { return static_cast<double>(d) * 1e-3; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) * 1e-6; }

/// Duration needed to serialize `bytes` at `bytes_per_sec`, rounded up.
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
  return static_cast<Duration>(ns + 0.999999);
}

}  // namespace sanfault::sim
