// Awaitable synchronization primitives for sim::Process coroutines.
//
//   co_await DelayFor{sched, microseconds(5)};   // sleep in simulated time
//   co_await trigger.wait(sched);                // wait for a one-shot event
//   co_await wg.wait(sched);                     // join N processes
//   T v = co_await chan.pop(sched);              // blocking queue pop
//
// All resumptions are funneled through the Scheduler (after(0)) instead of
// resuming inline, so firing a trigger from inside an event handler cannot
// recurse and ordering stays deterministic.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {

/// co_await DelayFor{sched, d}: resume after d nanoseconds of simulated time.
struct DelayFor {
  Scheduler& sched;
  Duration d;

  // Even a zero-length delay suspends and resumes through the scheduler so
  // that co_await DelayFor{s, 0} is a deterministic yield point.
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sched.after(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// One-shot latched broadcast event. Once fired, waiters (current and future)
/// resume immediately. reset() re-arms it.
class Trigger {
 public:
  void fire(Scheduler& sched) {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sched.after(0, [h] { h.resume(); });
    }
  }

  void reset() { fired_ = false; }

  [[nodiscard]] bool fired() const { return fired_; }

  struct Awaiter {
    Trigger& t;
    Scheduler& sched;
    bool await_ready() const noexcept { return t.fired_; }
    void await_suspend(std::coroutine_handle<> h) const {
      t.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait(Scheduler& sched) { return Awaiter{*this, sched}; }

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Go-style wait group: add() before spawning, done() when a process
/// finishes, co_await wait() to join. Reusable after the count returns to 0.
class WaitGroup {
 public:
  void add(std::size_t n = 1) { count_ += n; }

  void done(Scheduler& sched) {
    if (count_ == 0) return;  // defensive; done() without add() is a bug
    if (--count_ == 0) {
      auto waiters = std::move(waiters_);
      waiters_.clear();
      for (auto h : waiters) {
        sched.after(0, [h] { h.resume(); });
      }
    }
  }

  [[nodiscard]] std::size_t count() const { return count_; }

  struct Awaiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) const {
      wg.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait(Scheduler&) { return Awaiter{*this}; }

 private:
  std::size_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup. Used by host code to bound
/// outstanding operations (e.g. send-window credit at the VMMC level).
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial) : count_(initial) {}

  struct Awaiter {
    Semaphore& s;
    Scheduler& sched;
    bool await_ready() const noexcept {
      if (s.count_ > 0) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) const {
      s.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter acquire(Scheduler& sched) {
    return Awaiter{*this, sched};
  }

  void release(Scheduler& sched) {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The permit is handed directly to the woken waiter.
      sched.after(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded awaitable FIFO channel. push() never blocks; pop() suspends
/// until a value is available. Multi-consumer safe: a pushed value is handed
/// directly to the oldest waiter (FIFO), so a concurrently-resumed consumer
/// can never observe an empty queue.
template <typename T>
class Channel {
 public:
  void push(Scheduler& sched, T value) {
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      sched.after(0, [h = w->handle] { h.resume(); });
    } else {
      items_.push_back(std::move(value));
    }
  }

  struct PopAwaiter {
    Channel& c;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() noexcept {
      if (!c.items_.empty()) {
        slot.emplace(std::move(c.items_.front()));
        c.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      c.waiters_.push_back(this);
    }
    T await_resume() { return std::move(*slot); }
  };

  [[nodiscard]] PopAwaiter pop(Scheduler&) { return PopAwaiter{*this, {}, {}}; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  std::deque<T> items_;
  std::deque<PopAwaiter*> waiters_;
};

}  // namespace sanfault::sim
