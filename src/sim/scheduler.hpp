// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, sequence) ordered callbacks. Sequence numbers break ties
// FIFO so that same-timestamp events run in scheduling order, which keeps
// every run deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sanfault::sim {

/// Handle to a scheduled event; allows cancellation (e.g. retransmission
/// timers that are re-armed). Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a hook to run when the scheduler is destroyed, LIFO. This is
  /// the attachment point for per-simulation finalization that outlives any
  /// single component — e.g. the observability registry exports its metrics
  /// JSON from here (src/obs), after every NIC/firmware has already synced
  /// its final counter values.
  void at_teardown(std::function<void()> fn) {
    teardown_.push_back(std::move(fn));
  }

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle at(Time t, std::function<void()> fn);

  /// Schedule `fn` after `d` nanoseconds of simulated time.
  EventHandle after(Duration d, std::function<void()> fn) {
    return at(time_add(now_, d), std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a harmless no-op. Returns true if the event was
  /// still pending and is now cancelled.
  bool cancel(EventHandle h);

  /// True if the event behind `h` has neither fired nor been cancelled.
  [[nodiscard]] bool pending(EventHandle h) const {
    return h.valid() && pending_ids_.contains(h.id());
  }

  /// Run the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then advance the clock to t.
  void run_until(Time t);

  /// Run for `d` more nanoseconds of simulated time.
  void run_for(Duration d) { run_until(time_add(now_, d)); }

  [[nodiscard]] std::size_t pending_events() const { return pending_ids_.size(); }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::vector<std::function<void()>> teardown_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace sanfault::sim
