// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, sequence) ordered callbacks. Sequence numbers break ties
// FIFO so that same-timestamp events run in scheduling order, which keeps
// every run deterministic.
//
// Hot-path design (see docs/PERFORMANCE.md for measurements):
//  * the ready queue is an indexed binary heap of 24-byte PODs
//    (time, seq, slot) — sift operations never move callables;
//  * callables live in a pool of slot-indexed nodes, inline up to
//    kEventInlineBytes via InlineFn, so the common timer/delivery/hop
//    lambdas never touch the allocator after the pool warms up;
//  * cancellation is lazy — cancel() flips a flag in the node (O(1), no
//    hash lookup, destroys the capture immediately) — but bounded: when
//    cancelled entries outnumber live ones the heap is compacted in O(n),
//    so a workload that cancels almost every timer it arms (the
//    retransmission pattern) never drags dead entries through its sifts.
//    EventHandle carries (slot, generation); generation bumps on slot reuse
//    make stale handles inert.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {

/// Handle to a scheduled event; allows cancellation (e.g. retransmission
/// timers that are re-armed). Default-constructed handles are inert, and a
/// handle whose event has fired or been cancelled stays safe to use —
/// generation checks make it a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  /// Opaque nonzero identifier ((slot+1, generation) packed); 0 = invalid.
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Scheduler;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : id_((static_cast<std::uint64_t>(slot) + 1) << 32 | gen) {}
  [[nodiscard]] std::uint32_t slot() const {
    return static_cast<std::uint32_t>((id_ >> 32) - 1);
  }
  [[nodiscard]] std::uint32_t gen() const {
    return static_cast<std::uint32_t>(id_);
  }
  std::uint64_t id_ = 0;
};

class Scheduler {
 public:
  /// Inline capture budget for event callables. Sized for the common
  /// timer/delivery/completion lambdas (a this-pointer plus a few words);
  /// oversized captures (e.g. closures carrying a whole net::Packet) take
  /// InlineFn's heap fallback, which is what std::function did for *every*
  /// capture beyond two words. Kept modest on purpose: the node pool's cache
  /// footprint scales with this at high pending-event counts.
  static constexpr std::size_t kEventInlineBytes = 48;
  using EventFn = InlineFn<void(), kEventInlineBytes>;

  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a hook to run when the scheduler is destroyed, LIFO. This is
  /// the attachment point for per-simulation finalization that outlives any
  /// single component — e.g. the observability registry exports its metrics
  /// JSON from here (src/obs), after every NIC/firmware has already synced
  /// its final counter values.
  void at_teardown(std::function<void()> fn) {
    teardown_.push_back(std::move(fn));
  }

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t`.
  ///
  /// Contract: `t` must be >= now(). Scheduling into the past throws
  /// std::logic_error — a past-time event would either run "late" (breaking
  /// causality silently) or reorder already-fired work, so it is always a
  /// caller bug. Callers that want "as soon as possible" schedule at now()
  /// (or after(0, ...)), which runs after already-queued same-time events.
  EventHandle at(Time t, EventFn fn) {
    if (t < now_) throw_past_time(t);
    const std::uint32_t slot = acquire_slot();
    nodes_[slot].fn = std::move(fn);
    return push_entry(t, slot);
  }

  /// Overload constructing the callable in place in the pooled node — the
  /// hot path for lambdas at call sites (no intermediate EventFn move).
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventHandle at(Time t, F&& fn) {
    if (t < now_) throw_past_time(t);
    const std::uint32_t slot = acquire_slot();
    nodes_[slot].fn.emplace(std::forward<F>(fn));
    return push_entry(t, slot);
  }

  /// Schedule `fn` after `d` nanoseconds of simulated time.
  template <class F>
  EventHandle after(Duration d, F&& fn) {
    return at(time_add(now_, d), std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a harmless no-op. Returns true if the event was
  /// still pending and is now cancelled. The captured state is destroyed
  /// immediately; the heap entry is reclaimed when it surfaces, or by the
  /// next compaction, whichever comes first.
  bool cancel(EventHandle h) {
    if (!h.valid()) return false;
    const std::uint32_t slot = h.slot();
    if (slot >= nodes_.size()) return false;
    Node& n = nodes_[slot];
    if (n.gen != h.gen() || n.cancelled) return false;
    n.cancelled = true;
    n.fn.reset();  // release captured resources now, not at heap surfacing
    --live_;
    if (++cancelled_in_heap_ >= kCompactMin &&
        cancelled_in_heap_ * 2 > heap_.size()) {
      compact();
    }
    return true;
  }

  /// True if the event behind `h` has neither fired nor been cancelled.
  [[nodiscard]] bool pending(EventHandle h) const {
    if (!h.valid()) return false;
    const std::uint32_t slot = h.slot();
    return slot < nodes_.size() && nodes_[slot].gen == h.gen() &&
           !nodes_[slot].cancelled;
  }

  /// Run the next event. Returns false when the queue is empty.
  bool step() {
    skim_cancelled();
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    pop_top();
    // Move the callable out before freeing: the event may (re)schedule into
    // its own slot, and pool growth may reallocate nodes_.
    EventFn fn = std::move(nodes_[top.slot].fn);
    free_slot(top.slot);
    now_ = key_time(top.key);
    ++executed_;
    --live_;
    fn();
    return true;
  }

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then advance the clock to t.
  void run_until(Time t);

  /// Run events with time strictly < t, leaving the clock at the last
  /// executed event (never advanced to t). This is the safe-window primitive
  /// of the conservative parallel engine (sim/parallel_scheduler.hpp): a
  /// partition executes everything below its horizon, then may still accept
  /// cross-partition events at any time >= the horizon.
  void run_before(Time t);

  /// Timestamp of the next live event, or kNever when the queue is empty.
  /// Skims cancelled entries as a side effect (owner-thread only, like every
  /// other member).
  [[nodiscard]] Time peek_next_time() {
    skim_cancelled();
    return heap_.empty() ? kNever : key_time(heap_.front().key);
  }

  /// Run for `d` more nanoseconds of simulated time.
  void run_for(Duration d) { run_until(time_add(now_, d)); }

  /// Events scheduled and neither fired nor cancelled.
  [[nodiscard]] std::size_t pending_events() const { return live_; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  /// Heap element: ordering key plus the index of the node holding the
  /// callable. POD — sift operations move 32 bytes, never a closure. The
  /// (time, seq) pair is packed into one 128-bit key so ordering is a single
  /// branch-free compare (the lexicographic two-field compare cost a
  /// data-dependent branch per sift level, which mispredicts ~50% of the
  /// time on jittered timestamps).
  struct HeapEntry {
    unsigned __int128 key;  // (t << 64) | seq
    std::uint32_t slot;
  };

  static unsigned __int128 make_key(Time t, std::uint64_t seq) {
    return static_cast<unsigned __int128>(t) << 64 | seq;
  }

  static Time key_time(unsigned __int128 key) {
    return static_cast<Time>(key >> 64);
  }

  /// Pooled event node. `gen` identifies the current tenancy of the slot;
  /// it is bumped when the slot is freed so stale EventHandles miss.
  struct Node {
    EventFn fn;
    std::uint32_t gen = 1;
    bool cancelled = false;
  };

  /// Compaction threshold: never compact below this many cancelled entries
  /// (the O(n) rebuild must amortize against the cancels that earned it).
  static constexpr std::size_t kCompactMin = 64;

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    return slot;
  }

  EventHandle push_entry(Time t, std::uint32_t slot) {
    heap_.push_back(HeapEntry{make_key(t, next_seq_++), slot});
    sift_up(heap_.size() - 1);
    ++live_;
    return EventHandle{slot, nodes_[slot].gen};
  }

  void sift_up(std::size_t i) {
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Bottom-up variant: the displaced entry `e` comes from the heap's back (a
  // leaf), so instead of comparing it at every level (two compares per
  // level), sink the hole straight to a leaf (one compare per level) and
  // sift `e` up from there — it rarely moves more than a step. The
  // smaller-child selection is arithmetic, not a branch.
  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[i];
    std::size_t child;
    while ((child = 2 * i + 1) + 1 < n) {
      child += static_cast<std::size_t>(heap_[child + 1].key < heap_[child].key);
      heap_[i] = heap_[child];
      i = child;
    }
    if (child < n) {  // lone last child (even heap size)
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
    sift_up(i);
  }

  void pop_top() {
    const HeapEntry back = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = back;
      sift_down(0);
    }
  }

  void free_slot(std::uint32_t slot) {
    Node& n = nodes_[slot];
    n.fn.reset();
    n.cancelled = false;
    if (++n.gen == 0) n.gen = 1;  // generation 0 is reserved, never valid
    free_slots_.push_back(slot);
  }

  /// Discard cancelled entries sitting on top of the heap.
  void skim_cancelled() {
    while (!heap_.empty()) {
      const std::uint32_t slot = heap_.front().slot;
      if (!nodes_[slot].cancelled) return;
      pop_top();
      free_slot(slot);
      --cancelled_in_heap_;
    }
  }

  /// Drop every cancelled entry and rebuild the heap in O(n) (Floyd). Pop
  /// order is unchanged: the heap property is rebuilt under the same total
  /// (time, seq) order, so the sequence of surfaced minima is identical.
  void compact() {
    std::size_t w = 0;
    for (const HeapEntry& e : heap_) {
      if (nodes_[e.slot].cancelled) {
        free_slot(e.slot);
      } else {
        heap_[w++] = e;
      }
    }
    heap_.resize(w);
    for (std::size_t i = w / 2; i-- > 0;) {
      sift_down_classic(i);
    }
    cancelled_in_heap_ = 0;
  }

  /// Textbook sift (compare `e` at each level) — used by compact(), where
  /// the displaced entry is not biased toward the leaves.
  void sift_down_classic(std::size_t i) {
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[i];
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
      if (heap_[child].key >= e.key) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
  }

  [[noreturn]] void throw_past_time(Time t) const;

  std::vector<HeapEntry> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::function<void()>> teardown_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t cancelled_in_heap_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sanfault::sim
