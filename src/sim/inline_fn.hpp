// InlineFn: a move-only callable wrapper with small-buffer storage.
//
// std::function's inline buffer (16 bytes on libstdc++) is too small for the
// simulator's event lambdas — a fabric hop closure carries a whole
// net::Packet — so nearly every scheduled event used to pay a heap
// allocation. InlineFn stores callables up to `InlineBytes` directly in the
// wrapper (and the wrapper itself lives in the scheduler's pooled event
// nodes), falling back to the heap only for oversized captures. Two raw
// function pointers replace the vtable, keeping invocation a single indirect
// call. Trivially-copyable inline callables (most event lambdas: a few
// pointers/ints) skip the manage pointer entirely — moves are a plain
// buffer copy and destruction is a no-op, with no indirect call.
//
// Requirements on the wrapped callable: move-constructible; invoked
// non-const. Copying InlineFn is deliberately not supported — events fire
// once.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sanfault::sim {

template <class Sig, std::size_t InlineBytes = 48>
class InlineFn;  // primary template intentionally undefined

template <class R, class... Args, std::size_t InlineBytes>
class InlineFn<R(Args...), InlineBytes> {
  static_assert(InlineBytes >= sizeof(void*),
                "inline buffer must at least hold the heap-fallback pointer");

 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` directly in the
  /// buffer — the zero-move path for hot call sites (Scheduler::at builds
  /// event closures straight into pooled nodes with this).
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() {
    if (manage_ != nullptr) manage_(buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  // manage(src, dst): dst == nullptr => destroy the callable in src;
  // otherwise move it from src into dst (and destroy the src copy).
  using InvokePtr = R (*)(void*, Args&&...);
  using ManagePtr = void (*)(void* src, void* dst);

  template <class D, class F>
  void construct(F&& f) {
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &invoke_inline<D>;
      // Trivially-copyable callables need no manage function: moving is a
      // buffer copy, destroying is a no-op (manage_ stays null as the tag).
      manage_ = std::is_trivially_copyable_v<D> ? nullptr : &manage_inline<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = &invoke_heap<D>;
      manage_ = &manage_heap<D>;
    }
  }

  template <class D>
  static R invoke_inline(void* buf, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(buf)))(
        std::forward<Args>(args)...);
  }
  template <class D>
  static void manage_inline(void* src, void* dst) {
    D* f = std::launder(reinterpret_cast<D*>(src));
    if (dst != nullptr) ::new (dst) D(std::move(*f));
    f->~D();
  }
  template <class D>
  static R invoke_heap(void* buf, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(buf)))(
        std::forward<Args>(args)...);
  }
  template <class D>
  static void manage_heap(void* src, void* dst) {
    D** p = std::launder(reinterpret_cast<D**>(src));
    if (dst != nullptr) {
      ::new (dst) D*(*p);  // pointer moves; the heap object stays put
    } else {
      delete *p;
    }
  }

  void move_from(InlineFn& o) noexcept {
    if (o.invoke_ == nullptr) return;
    if (o.manage_ != nullptr) {
      o.manage_(o.buf_, buf_);
    } else {
      __builtin_memcpy(buf_, o.buf_, InlineBytes);
    }
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  InvokePtr invoke_ = nullptr;
  ManagePtr manage_ = nullptr;
};

}  // namespace sanfault::sim
