// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded via SplitMix64. Every stochastic component owns its own
// Rng stream derived from the experiment seed plus a component tag, so adding
// randomness to one component never perturbs another — a property the
// parameter-sweep benchmarks rely on.
#pragma once

#include <cstdint>

namespace sanfault::sim {

namespace detail {
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedf00dull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = detail::splitmix64(sm);
  }

  /// Derive an independent child stream, e.g. per NIC or per link.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    return Rng(next() ^ (tag * 0x9e3779b97f4a7c15ull));
  }

  std::uint64_t next() {
    const std::uint64_t result = detail::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = detail::rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform_double() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace sanfault::sim
