// sim::Task<T>: a lazily-started, awaitable coroutine.
//
// Process (process.hpp) is fire-and-forget; Task is the composable building
// block: a coroutine that returns a value to an awaiting parent via symmetric
// transfer. Layered protocol code (mapper BFS, VMMC sends, SVM barriers) is
// written as Tasks and driven from a top-level Process:
//
//   sim::Task<int> child();
//   sim::Process parent(...) { int v = co_await child(); ... }
//
// Ownership: the Task object owns the coroutine frame; co_awaiting it hands
// control to the child and destroys the frame when the Task goes out of
// scope after completion. A Task must be awaited exactly once (or never —
// then its frame is destroyed unstarted).
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

namespace sanfault::sim {

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto c = h.promise().continuation;
      return c ? c : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    std::fputs("sanfault: unhandled exception escaped a sim::Task\n", stderr);
    std::terminate();
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool done() const { return h_ && h_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer into the child
      }
      T await_resume() { return std::move(*h.promise().value); }
    };
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool done() const { return h_ && h_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace sanfault::sim
