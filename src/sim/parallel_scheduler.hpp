// Conservative parallel discrete-event engine (PDES).
//
// The serial sim::Scheduler executes one big simulation on one core — the
// binding constraint on fabric-scale (clos-256/1024) runs. This engine
// partitions a simulation into P *logical processes*, each wrapping an
// unchanged serial Scheduler, and executes them on worker threads under the
// classic barrier-synchronized safe-window protocol:
//
//   round:
//     drain    each partition merges its inbound cross-partition events
//              (canonical order, see below) into its local event queue and
//              publishes N_p, its next local event time;
//     sync     one barrier completion computes, per partition, the horizon
//                H_p = min over q != p of (N_q + lookahead(q, p))
//              capped by the control queue's next event and the run cap.
//              lookahead(q, p) is the minimum latency of any fabric link cut
//              by the partition boundary (net::FabricPartition): an event
//              executing in q at time t can only produce work for p at
//              t + lookahead or later, so everything below H_p is safe —
//              this is the null-message lower-bound-timestamp argument with
//              the exchange batched into one barrier;
//     execute  each partition runs its local events with time < H_p,
//              posting cross-partition work through lock-free SPSC channels
//              (sim/spsc.hpp, one per ordered partition pair).
//
// Control partition: a separate serial Scheduler whose events run *between*
// windows, on one thread, with every worker parked and every partition
// synchronized to the event's timestamp. Chaos fault campaigns live here —
// a fault mutates the shared net::Topology, which partitions read freely
// during windows, so mutations must happen at these global sync points.
//
// Determinism contract (tested by tests/parallel_sched_test.cpp and the
// serial-vs-parallel battery in tests/parallel_equiv_test.cpp):
//  * for a fixed partition count, results are bit-identical across reruns
//    AND across worker-thread counts: partitions execute serially inside a
//    window, windows are separated by barriers, and inbound events are
//    merged in the canonical order (time, send_time, sender, sender_seq) —
//    per-partition sequence namespaces never leak across the boundary;
//  * the (time, send_time, sender, sender_seq) merge key makes cross-
//    partition tie-breaking match the serial oracle whenever same-timestamp
//    events differ in their causes' execution times, which is what keeps
//    e2e_wire_tx and exported metrics byte-identical to a serial run of the
//    same seed on the workloads the battery pins down.
#pragma once

#include <condition_variable>
#include <exception>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/spsc.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {

class ParallelScheduler {
 public:
  struct Config {
    /// Logical processes. This — not the worker-thread count — is what the
    /// deterministic results are keyed to ("--sim-threads N" sets it).
    std::uint32_t partitions = 1;
    /// Worker threads executing the partitions (partition p is owned by
    /// worker p % threads). 0 = one per partition. Results are identical
    /// for any value; fewer threads just serialize more partitions per core.
    std::uint32_t threads = 0;
    /// Floor for every pair lookahead; must be >= 1 ns or the safe-window
    /// recursion cannot make progress past simultaneous events.
    Duration min_lookahead = 1;
  };

  struct Stats {
    std::uint64_t windows = 0;          // execute rounds run
    std::uint64_t barriers = 0;         // barrier crossings (2 per round)
    std::uint64_t messages = 0;         // cross-partition events delivered
    std::uint64_t control_events = 0;   // global-sync events executed
    std::uint64_t events_executed = 0;  // sum over partitions at last run end
  };

  explicit ParallelScheduler(Config cfg);
  ~ParallelScheduler();
  ParallelScheduler(const ParallelScheduler&) = delete;
  ParallelScheduler& operator=(const ParallelScheduler&) = delete;

  [[nodiscard]] std::uint32_t partitions() const {
    return static_cast<std::uint32_t>(parts_.size());
  }

  /// Partition p's local event queue. Components owned by partition p are
  /// built against this scheduler and must only be touched by events running
  /// on it (or before run() / between runs, from the coordinating thread).
  [[nodiscard]] Scheduler& local(std::uint32_t p) { return parts_[p]->sched; }

  /// The control queue. Its events execute at global sync points: every
  /// partition's clock is at the event's time and no worker is running, so
  /// a control event may mutate state the partitions share (topology fault
  /// flags, per-shard fault knobs) and may post() into any partition.
  [[nodiscard]] Scheduler& control() { return control_; }

  /// Lower-bound latency for events posted from partition `from` to `to`.
  /// Clamped up to Config::min_lookahead. kNever = the pair never exchanges
  /// events (no cut link), which exempts it from the horizon min.
  void set_lookahead(std::uint32_t from, std::uint32_t to, Duration d);
  [[nodiscard]] Duration lookahead(std::uint32_t from, std::uint32_t to) const {
    return lookahead_[from * parts_.size() + to];
  }

  /// Post an event into partition `to` at absolute time `t`. Callable from
  /// an event executing in partition `from` (the hot path: fabric packet
  /// handoff), or from a control event / outside a run with from == kControl.
  /// `t` must respect the pair's lookahead from the sender's current time —
  /// violating it throws std::logic_error (a partitioning bug, never a
  /// runtime condition).
  static constexpr std::uint32_t kControl = 0xffffffffu;
  void post(std::uint32_t from, std::uint32_t to, Time t,
            Scheduler::EventFn fn);

  /// Run until every partition queue, channel, and the control queue drain.
  void run() { run_until(kNever); }

  /// Run events with time <= t on every partition (control included), then
  /// advance all clocks to t. Matches serial Scheduler::run_until so the
  /// oracle and the parallel engine can be compared at one sim instant.
  void run_until(Time t);

  /// Evaluated at every sync point (workers parked). Returning true ends
  /// the run early — partitions stop at a window boundary, deterministic
  /// for a fixed partition count.
  void set_stop_predicate(std::function<bool()> fn) {
    stop_predicate_ = std::move(fn);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Message {
    Time t = 0;            // execute-at time in the receiving partition
    Time sent = 0;         // sender's clock at post() — canonical-merge key
    std::uint64_t seq = 0;       // per-sender sequence (sender order)
    std::uint32_t sender = 0;    // posting partition — canonical-merge key
    Scheduler::EventFn fn;
  };

  struct Partition {
    Scheduler sched;
    Time next = 0;                  // published next-event time (drain phase)
    Time horizon = 0;               // safe-execution bound (sync phase)
    std::uint64_t posted_seq = 0;   // per-sender running seq (all channels)
    std::uint64_t messages = 0;     // inbound cross-partition events merged
    std::vector<Message> drain_buf;  // reused merge scratch (drain phase)
    alignas(64) char pad[64]{};     // keep hot fields off shared lines
  };

  void drain(std::uint32_t p);
  void execute(std::uint32_t p);
  void worker_loop(std::uint32_t w);
  void sync_round();  // barrier completion: control events, horizons, stop
  [[nodiscard]] SpscQueue<Message>& channel(std::uint32_t from,
                                            std::uint32_t to) {
    return *channels_[from * parts_.size() + to];
  }

  Config cfg_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::unique_ptr<SpscQueue<Message>>> channels_;
  std::vector<Duration> lookahead_;  // [from * P + to], kNever = no coupling
  Scheduler control_;
  std::function<bool()> stop_predicate_;
  Stats stats_;

  // --- run-loop coordination (live only inside run_until) ------------------
  // Centralized sense-reversing barrier with a completion hook. std::barrier
  // would do, but the explicit version keeps the completion running on the
  // *last-arriving* thread with a plain mutex/condvar pair that TSAN models
  // exactly, and lets run_until reuse the calling thread as worker 0.
  void barrier_wait();
  std::uint32_t nthreads_ = 0;
  std::uint32_t arrived_ = 0;
  std::uint64_t barrier_phase_ = 0;
  bool in_drain_phase_ = false;  // toggled by the completion, under mu_
  Time cap_ = kNever;
  bool done_ = false;
  std::exception_ptr error_;  // first worker exception; rethrown by run_until
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace sanfault::sim
