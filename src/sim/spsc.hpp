// Lock-free single-producer/single-consumer event channel.
//
// The parallel scheduler (sim/parallel_scheduler.hpp) wires one SpscQueue per
// ordered partition pair: the owning worker of partition p is the only
// producer on the (p -> q) channel and the owner of q the only consumer, so
// the unbounded Vyukov node-queue shape applies — push links a new node with
// a release store, pop follows `next` with an acquire load, and neither side
// ever takes a lock or spins on the other.
//
// The barrier-synchronized safe-window protocol drains channels only while
// every producer is parked, so the queue's concurrency headroom is belt and
// braces today; it is what lets a future optimistic/streaming sync mode drain
// mid-window without touching this layer.
#pragma once

#include <atomic>
#include <utility>

namespace sanfault::sim {

template <class T>
class SpscQueue {
 public:
  SpscQueue() {
    Node* stub = new Node{};
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }
  ~SpscQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Allocates one node per element; the consumer frees it.
  void push(T value) {
    Node* n = new Node{std::move(value)};
    Node* prev = tail_.load(std::memory_order_relaxed);
    // Single producer: no CAS needed, tail_ is only advanced here.
    tail_.store(n, std::memory_order_relaxed);
    prev->next.store(n, std::memory_order_release);
  }

  /// Consumer side: pop the oldest element into `out`. False when empty (or
  /// when the producer's link store has not yet become visible — callers
  /// synchronize rounds externally, see header comment).
  bool pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    delete head_;
    head_ = next;
    return true;
  }

  /// Consumer-side emptiness probe (same visibility caveat as pop()).
  [[nodiscard]] bool empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  Node* head_;                // consumer-owned (stub node pattern)
  std::atomic<Node*> tail_;   // producer-owned
};

}  // namespace sanfault::sim
