// Lightweight statistics containers used across the simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sanfault::sim {

/// Streaming accumulator: count / sum / min / max / mean / population stddev
/// via Welford's algorithm (numerically stable for long runs).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for latency distributions.
class Log2Histogram {
 public:
  Log2Histogram() : buckets_(65, 0) {}

  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++n_;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Smallest v such that at least `q` fraction of samples are <= bucket(v)'s
  /// upper bound. Coarse (power-of-two) but allocation-free.
  [[nodiscard]] std::uint64_t approx_quantile(double q) const {
    if (n_ == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(n_) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return upper_bound(i);
    }
    return upper_bound(buckets_.size() - 1);
  }

  /// Bucket index: 0 holds v==0, bucket i holds values with bit-width i
  /// (i.e. 2^(i-1) <= v < 2^i), bucket 64 holds v >= 2^63.
  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  static std::uint64_t upper_bound(std::size_t i) {
    return i >= 64 ? std::numeric_limits<std::uint64_t>::max()
                   : (i == 0 ? 0 : (1ull << i) - 1);
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
};

/// HDR-style log-bucketed histogram: power-of-two octaves subdivided into
/// 2^kSubBits linear sub-buckets, so any recorded value is off by at most
/// 1/2^kSubBits (~3%) of its magnitude — precise enough for p50..p99.9 tail
/// reporting without storing samples. Values below 2^kSubBits are exact.
class HdrHistogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;  // 32 sub-buckets
  // Octave 0 is the exact region [0, kSub); octaves 1..(64-kSubBits-1) cover
  // the rest of the 64-bit range with kSub sub-buckets each.
  static constexpr std::size_t kBuckets = (64 - kSubBits) * kSub;

  HdrHistogram() : buckets_(kBuckets, 0) {}

  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++n_;
    sum_ += static_cast<double>(v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Upper bound of the bucket holding the q-th quantile sample, i.e. a value
  /// >= the true quantile and within one sub-bucket of it. The recorded max
  /// caps the answer so quantile(1.0) never exceeds an observed value.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (n_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        std::max(1.0, q * static_cast<double>(n_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) return std::min(upper_bound(i), max_);
    }
    return max_;
  }

  void merge(const HdrHistogram& o) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
    n_ += o.n_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
  }

  bool operator==(const HdrHistogram& o) const {
    return n_ == o.n_ && max_ == o.max_ && buckets_ == o.buckets_;
  }

  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned w = 64 - static_cast<unsigned>(__builtin_clzll(v));
    const unsigned shift = w - (kSubBits + 1);
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    return (static_cast<std::size_t>(shift) + 1) * kSub + sub;
  }

  /// Largest value mapping to bucket `i`.
  static std::uint64_t upper_bound(std::size_t i) {
    if (i < kSub) return i;
    const std::uint64_t shift = i / kSub - 1;
    const std::uint64_t sub = i % kSub;
    return ((kSub + sub + 1) << shift) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
};

}  // namespace sanfault::sim
