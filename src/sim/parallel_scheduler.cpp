#include "sim/parallel_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sanfault::sim {

ParallelScheduler::ParallelScheduler(Config cfg) : cfg_(cfg) {
  if (cfg_.partitions == 0) cfg_.partitions = 1;
  if (cfg_.min_lookahead == 0) cfg_.min_lookahead = 1;
  parts_.reserve(cfg_.partitions);
  for (std::uint32_t p = 0; p < cfg_.partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
  const std::size_t n = parts_.size();
  channels_.resize(n * n);
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from != to) {
        channels_[from * n + to] = std::make_unique<SpscQueue<Message>>();
      }
    }
  }
  // Default: every pair coupled at the minimum lookahead. Partition binders
  // (harness::ParallelCluster) overwrite this from the fabric's cut links.
  lookahead_.assign(n * n, cfg_.min_lookahead);
}

ParallelScheduler::~ParallelScheduler() = default;

void ParallelScheduler::set_lookahead(std::uint32_t from, std::uint32_t to,
                                      Duration d) {
  if (d != kNever && d < cfg_.min_lookahead) d = cfg_.min_lookahead;
  lookahead_[from * parts_.size() + to] = d;
}

void ParallelScheduler::post(std::uint32_t from, std::uint32_t to, Time t,
                             Scheduler::EventFn fn) {
  if (from == kControl || nthreads_ == 0) {
    // Control events run with every worker parked (and pre-run posting has
    // no workers at all), so scheduling straight into the target is safe —
    // and sync_round() re-reads next-event times right after control runs,
    // which keeps the horizon math aware of what was just posted.
    local(to).at(t, std::move(fn));
    return;
  }
  Partition& src = *parts_[from];
  if (to == from) {
    src.sched.at(t, std::move(fn));
    return;
  }
  const Duration la = lookahead(from, to);
  const Time lower =
      la == kNever ? kNever : time_add(src.sched.now(), la);
  if (t < lower) {
    throw std::logic_error(
        "ParallelScheduler::post: partition " + std::to_string(from) +
        " -> " + std::to_string(to) + " at t=" + std::to_string(t) +
        " violates lookahead (now=" + std::to_string(src.sched.now()) +
        ", lookahead=" +
        (la == kNever ? std::string("uncoupled") : std::to_string(la)) + ")");
  }
  channel(from, to).push(
      Message{t, src.sched.now(), src.posted_seq++, from, std::move(fn)});
}

void ParallelScheduler::drain(std::uint32_t p) {
  Partition& part = *parts_[p];
  auto& batch = part.drain_buf;
  batch.clear();
  const auto n = static_cast<std::uint32_t>(parts_.size());
  for (std::uint32_t q = 0; q < n; ++q) {
    if (q == p) continue;
    Message m;
    while (channel(q, p).pop(m)) batch.push_back(std::move(m));
  }
  // Canonical merge order: the receive time first, then the sender-side
  // execution time, then (sender, per-sender seq). The (sender, seq) tail
  // makes the key a strict total order — bit-identical scheduling for a
  // fixed partition count — while the send-time term reproduces the serial
  // oracle's FIFO tie-breaking whenever same-timestamp arrivals have
  // different causes (see file header of parallel_scheduler.hpp).
  std::sort(batch.begin(), batch.end(), [](const Message& a, const Message& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.sent != b.sent) return a.sent < b.sent;
    if (a.sender != b.sender) return a.sender < b.sender;
    return a.seq < b.seq;
  });
  part.messages += batch.size();
  for (Message& m : batch) {
    if (m.t < part.sched.now()) {
      throw std::logic_error(
          "ParallelScheduler::drain: partition " + std::to_string(p) +
          " (now=" + std::to_string(part.sched.now()) +
          ", horizon=" + std::to_string(part.horizon) +
          ") received past message t=" + std::to_string(m.t) + " from " +
          std::to_string(m.sender) + " (sent=" + std::to_string(m.sent) +
          ", seq=" + std::to_string(m.seq) + ")");
    }
    part.sched.at(m.t, std::move(m.fn));
  }
  batch.clear();
  part.next = part.sched.peek_next_time();
}

void ParallelScheduler::execute(std::uint32_t p) {
  parts_[p]->sched.run_before(parts_[p]->horizon);
}

// Runs on the last thread arriving at the drain barrier; every other worker
// is parked, so this is the one place shared simulation state may be touched.
void ParallelScheduler::sync_round() {
  ++stats_.windows;
  const std::size_t n = parts_.size();
  const Time cap_bound = cap_ == kNever ? kNever : cap_ + 1;

  if (stop_predicate_ && stop_predicate_()) {
    done_ = true;
    return;
  }

  Time m = kNever;
  for (const auto& part : parts_) m = std::min(m, part->next);

  // Global-sync (control) events: once no partition holds work below the
  // control queue's head, run it — fault campaigns mutate shared topology
  // here. Control events may post into partitions, so re-read next-event
  // times afterwards; the horizon math below must see that new work.
  for (;;) {
    const Time g = control_.peek_next_time();
    if (g == kNever || g > m || g > cap_) break;
    control_.run_until(g);
    m = kNever;
    for (auto& part : parts_) {
      part->next = part->sched.peek_next_time();
      m = std::min(m, part->next);
    }
  }
  stats_.control_events = control_.events_executed();

  const Time g = control_.peek_next_time();
  if (std::min(m, g) >= cap_bound) {
    // Nothing left at or below the cap: advance every clock to it and stop.
    if (cap_ != kNever) {
      for (auto& part : parts_) part->sched.run_until(cap_);
      control_.run_until(cap_);
    }
    done_ = true;
    return;
  }

  for (std::size_t p = 0; p < n; ++p) {
    Time h = std::min(g, cap_bound);
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p) continue;
      const Duration la = lookahead_[q * n + p];
      if (la == kNever) continue;
      h = std::min(h, time_add(parts_[q]->next, la));
    }
    parts_[p]->horizon = h;
  }
}

void ParallelScheduler::barrier_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.barriers;
  if (++arrived_ == nthreads_) {
    arrived_ = 0;
    if (in_drain_phase_) {
      // A worker exception poisons the run: skip the sync (its partition
      // state is mid-flight) and let every worker exit at this boundary.
      if (error_) {
        done_ = true;
      } else {
        sync_round();
      }
    }
    in_drain_phase_ = !in_drain_phase_;
    ++barrier_phase_;
    cv_.notify_all();
  } else {
    const std::uint64_t phase = barrier_phase_;
    cv_.wait(lk, [&] { return barrier_phase_ != phase; });
  }
}

void ParallelScheduler::worker_loop(std::uint32_t w) {
  // Exceptions from simulation events (or lookahead-violating posts) must
  // not escape a std::thread — record the first one and keep honoring the
  // barrier protocol with no-op phases, so every peer reaches the next
  // drain barrier and the completion can end the run. run_until rethrows.
  const auto record = [this] {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  };
  const auto n = static_cast<std::uint32_t>(parts_.size());
  for (;;) {
    try {
      for (std::uint32_t p = w; p < n; p += nthreads_) drain(p);
    } catch (...) {
      record();
    }
    barrier_wait();  // completion runs sync_round (in_drain_phase_ is true)
    if (done_) return;
    try {
      for (std::uint32_t p = w; p < n; p += nthreads_) execute(p);
    } catch (...) {
      record();
    }
    barrier_wait();  // phase separation only: channels quiesce before drains
  }
}

void ParallelScheduler::run_until(Time t) {
  cap_ = t;
  done_ = false;
  in_drain_phase_ = true;  // the first barrier every worker hits follows drain
  const auto n = static_cast<std::uint32_t>(parts_.size());
  std::uint32_t want = cfg_.threads == 0 ? n : cfg_.threads;
  nthreads_ = std::min(std::max<std::uint32_t>(want, 1), n);

  std::vector<std::thread> workers;
  workers.reserve(nthreads_ - 1);
  for (std::uint32_t w = 1; w < nthreads_; ++w) {
    workers.emplace_back([this, w] { worker_loop(w); });
  }
  worker_loop(0);
  for (auto& th : workers) th.join();
  nthreads_ = 0;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }

  stats_.events_executed = control_.events_executed();
  stats_.messages = 0;
  for (const auto& part : parts_) {
    stats_.events_executed += part->sched.events_executed();
    stats_.messages += part->messages;
  }
}

}  // namespace sanfault::sim
