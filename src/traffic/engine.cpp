#include "traffic/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sanfault::traffic {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : n_(n) {
  assert(n > 0);
  if (theta <= 0.0) return;  // uniform
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfSampler::sample(sim::Rng& rng) const {
  if (cdf_.empty()) return rng.uniform(n_);
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

TrafficEngine::TrafficEngine(sim::Scheduler& sched,
                             std::vector<kv::KvClientHost*> hosts,
                             TrafficConfig cfg)
    : sched_(sched),
      hosts_(std::move(hosts)),
      cfg_(cfg),
      rng_(cfg.seed),
      keys_(cfg.num_keys, cfg.zipf_theta),
      next_seq_(cfg.num_clients, 0) {
  assert(!hosts_.empty());

  obs::Registry& reg = obs::Registry::of(sched_);
  req_latency_ = &reg.histogram("traffic.request_latency_ns", "ns");
  reg.add_collector(this, [this, &reg] {
    const TrafficStats& s = stats_;
    reg.counter("traffic.issued", "requests").set(s.issued);
    reg.counter("traffic.completed", "requests").set(s.completed);
    reg.counter("traffic.ok", "requests").set(s.ok);
    reg.counter("traffic.failed", "requests").set(s.failed);
    reg.counter("traffic.retries", "attempts").set(s.retries);
    reg.counter("traffic.failovers", "calls").set(s.failovers);
    reg.counter("traffic.gets", "requests").set(s.gets);
    reg.counter("traffic.puts", "requests").set(s.puts);
    reg.counter("traffic.dels", "requests").set(s.dels);
  });
}

TrafficEngine::~TrafficEngine() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void TrafficEngine::start() { generate(); }

WindowCounters& TrafficEngine::window_at(sim::Time t) {
  const auto idx = static_cast<std::size_t>(t / cfg_.window);
  if (idx >= stats_.windows.size()) stats_.windows.resize(idx + 1);
  return stats_.windows[idx];
}

sim::Process TrafficEngine::generate() {
  const double mean_gap_ns = 1e9 / cfg_.rate_rps;
  for (std::uint64_t i = 0; i < cfg_.total_requests; ++i) {
    // Open loop: the next arrival is scheduled regardless of outstanding
    // work. Poisson gaps are -ln(U) * mean; fixed-rate gaps are the mean.
    double gap = mean_gap_ns;
    if (cfg_.poisson) {
      const double u = std::max(rng_.uniform_double(), 1e-12);
      gap = -std::log(u) * mean_gap_ns;
    }
    co_await sim::DelayFor{sched_, static_cast<sim::Duration>(gap)};

    const std::uint64_t client = rng_.uniform(cfg_.num_clients);
    const std::uint64_t key = keys_.sample(rng_);
    const double roll = rng_.uniform_double();
    kv::Op op = kv::Op::kPut;
    if (roll < cfg_.get_ratio) {
      op = kv::Op::kGet;
    } else if (roll < cfg_.get_ratio + cfg_.del_ratio) {
      op = kv::Op::kDel;
    }
    const kv::RequestId id{client, ++next_seq_[client]};
    std::vector<std::uint8_t> value;
    if (op == kv::Op::kPut) {
      const std::size_t size =
          cfg_.value_min +
          static_cast<std::size_t>(
              rng_.uniform(cfg_.value_max - cfg_.value_min + 1));
      value = kv::make_value(id, size);
    }
    if (cfg_.record_trace) {
      stats_.trace.push_back(TraceEntry{
          sched_.now(), client, op, key,
          static_cast<std::uint32_t>(value.size())});
    }
    run_op(client, id, op, key, std::move(value));

    // Quartile phase announcements, each exactly once, in issue order.
    const std::uint64_t issued = i + 1;
    const std::uint64_t total = cfg_.total_requests;
    if (issued == (total + 3) / 4) {
      announce_phase("p25");
    } else if (issued == (total + 1) / 2) {
      announce_phase("p50");
    } else if (issued == (total * 3 + 3) / 4) {
      announce_phase("p75");
    }
  }
}

sim::Process TrafficEngine::run_op(std::uint64_t client, kv::RequestId id,
                                   kv::Op op, std::uint64_t key,
                                   std::vector<std::uint8_t> value) {
  kv::KvClientHost& host = *hosts_[client % hosts_.size()];
  ++stats_.issued;
  ++window_at(sched_.now()).issued;
  switch (op) {
    case kv::Op::kGet: ++stats_.gets; break;
    case kv::Op::kPut: ++stats_.puts; break;
    case kv::Op::kDel: ++stats_.dels; break;
  }
  const bool is_write = op != kv::Op::kGet;
  if (is_write) shadow_.record_issued_write(id, key);

  kv::Outcome o = co_await host.call(id, op, key, std::move(value), cfg_.retry);

  ++stats_.completed;
  stats_.retries += static_cast<std::uint64_t>(std::max(o.attempts - 1, 0));
  stats_.failovers += static_cast<std::uint64_t>(o.failovers);
  WindowCounters& w = window_at(o.completed_at);
  w.retries += static_cast<std::uint64_t>(std::max(o.attempts - 1, 0));
  if (o.ok()) {
    ++stats_.ok;
    ++w.ok;
    stats_.latency.add(o.latency());
    req_latency_->record(static_cast<std::uint64_t>(o.latency()));
    if (is_write) shadow_.record_committed(id);
  } else {
    ++stats_.failed;
    ++w.failed;
  }
  if (done() && !drained_announced_) {
    drained_announced_ = true;
    announce_phase("drained");
  }
}

}  // namespace sanfault::traffic
