// Open-loop traffic engine for service workloads.
//
// Unlike the closed-loop micro-benchmarks (next request only after the
// previous reply), an open-loop population keeps issuing on its arrival
// process no matter how the system is doing — which is what makes tail
// latency and outage behavior visible: requests that arrive during a path
// failure pile up and their queueing shows in p99/p99.9, exactly the view a
// production service has of the paper's mechanisms.
//
//  * arrivals: Poisson (exponential gaps) or fixed-rate, aggregate across
//    `num_clients` logical clients multiplexed over the rig's client hosts;
//  * key popularity: uniform or Zipfian (theta > 0) over `num_keys`;
//  * op mix: GET / PUT / DEL by configured ratios; PUT values carry the
//    writer's RequestId (audit provenance) and a sampled size;
//  * recording: HDR-style latency histogram (p50..p99.9), per-window
//    issued/completed/retry counters, total retry/failover/timeout counts,
//    a ShadowMap of issued+committed writes for the post-run audit, and an
//    optional full request trace for determinism tests.
//
// Everything is driven by one seeded sim::Rng, so a (config, seed) pair
// replays to an identical trace and histogram.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "kv/audit.hpp"
#include "kv/client.hpp"
#include "kv/shard_map.hpp"
#include "obs/metrics.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace sanfault::traffic {

struct TrafficConfig {
  std::size_t num_clients = 1000;
  std::uint64_t total_requests = 10000;
  /// Aggregate arrival rate, requests per simulated second.
  double rate_rps = 100000.0;
  bool poisson = true;  // false = fixed-rate arrivals
  double get_ratio = 0.50;
  double del_ratio = 0.05;  // remainder is PUT
  std::size_t num_keys = 4096;
  /// 0 = uniform; > 0 = Zipfian with this exponent (1.0 ~ classic web skew).
  double zipf_theta = 0.0;
  std::size_t value_min = 64;
  std::size_t value_max = 512;
  std::uint64_t seed = 1;
  sim::Duration window = sim::milliseconds(10);
  kv::KvRetryPolicy retry;
  bool record_trace = false;
};

struct TraceEntry {
  sim::Time at = 0;
  std::uint64_t client = 0;
  kv::Op op = kv::Op::kGet;
  std::uint64_t key = 0;
  std::uint32_t value_bytes = 0;
  auto operator<=>(const TraceEntry&) const = default;
};

struct WindowCounters {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
};

struct TrafficStats {
  sim::HdrHistogram latency;  // ns, successful requests only
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;   // retries exhausted (unavailability)
  std::uint64_t retries = 0;  // re-posts beyond the first attempt
  std::uint64_t failovers = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::vector<WindowCounters> windows;
  std::vector<TraceEntry> trace;

  [[nodiscard]] double availability() const {
    return completed ? static_cast<double>(ok) / static_cast<double>(completed)
                     : 1.0;
  }
};

/// Zipfian rank sampler: P(rank r) proportional to 1/(r+1)^theta, via a
/// precomputed CDF + binary search. theta == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);
  std::uint64_t sample(sim::Rng& rng) const;

 private:
  std::size_t n_;
  std::vector<double> cdf_;  // empty for uniform
};

class TrafficEngine {
 public:
  TrafficEngine(sim::Scheduler& sched, std::vector<kv::KvClientHost*> hosts,
                TrafficConfig cfg);
  ~TrafficEngine();

  /// Spawn the arrival generator; requests fan out as their own processes.
  void start();

  /// All generated requests have completed (successfully or not).
  [[nodiscard]] bool done() const {
    return stats_.completed == cfg_.total_requests;
  }

  /// Workload phase announcements: "p25"/"p50"/"p75" as the generator
  /// crosses 25/50/75% of total_requests issued, and "drained" when the
  /// last request completes. Each phase fires exactly once; the chaos
  /// campaign engine (src/chaos) anchors phase-triggered fault events here.
  using PhaseHook = std::function<void(std::string_view)>;
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  [[nodiscard]] const TrafficStats& stats() const { return stats_; }
  [[nodiscard]] const kv::ShadowMap& shadow() const { return shadow_; }
  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

 private:
  sim::Process generate();
  sim::Process run_op(std::uint64_t client, kv::RequestId id, kv::Op op,
                      std::uint64_t key, std::vector<std::uint8_t> value);
  WindowCounters& window_at(sim::Time t);
  void announce_phase(std::string_view phase) {
    if (phase_hook_) phase_hook_(phase);
  }

  sim::Scheduler& sched_;
  std::vector<kv::KvClientHost*> hosts_;
  TrafficConfig cfg_;
  sim::Rng rng_;
  ZipfSampler keys_;
  std::vector<std::uint64_t> next_seq_;  // per logical client
  TrafficStats stats_;
  kv::ShadowMap shadow_;
  PhaseHook phase_hook_;
  bool drained_announced_ = false;
  obs::Histogram* req_latency_ = nullptr;  // successful requests only
};

}  // namespace sanfault::traffic
