// Structured packet-lifecycle trace ring.
//
// Every protocol-relevant transition of a data packet — host enqueue, wire
// injection, per-hop fabric traversal, delivery, the various drop classes,
// retransmission, ACK motion, timer fires and remap/generation events — is
// recorded as one fixed-size TraceEvent keyed by (src, dst, seq, generation).
// Grepping one key out of a dump therefore reconstructs the complete life of
// one packet across every layer, which is how retransmission episodes are
// debugged (see docs/OBSERVABILITY.md for a worked example).
//
// The ring is bounded and overwrites oldest-first, so tracing is safe to
// leave enabled on long runs; `dropped()` reports how many events were
// overwritten. Disabled (the default) the cost of an emit is one branch.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace sanfault::obs {

class JsonWriter;

/// What happened to the packet. Values are stable — they appear in trace
/// dumps and are documented in docs/OBSERVABILITY.md; append only.
enum class TraceKind : std::uint8_t {
  kHostEnqueue = 0,   // firmware accepted a host send; seq/gen assigned
  kWireInject = 1,    // packet handed to the fabric (first tx or retx)
  kInjectedDrop = 2,  // §5.1.3 error injection ate the injection
  kHopTraverse = 3,   // head crossed a crossbar (node = switch id)
  kDeliver = 4,       // received in order, handed to the host
  kDupDrop = 5,       // receiver: seq below expected (duplicate)
  kOooDrop = 6,       // receiver: gap — go-back-N drops it
  kStaleGenDrop = 7,  // receiver: packet from a superseded generation
  kCorruptDrop = 8,   // receiver: CRC failure
  kFabricDrop = 9,    // the fabric lost it (arg = net::DropReason)
  kRetransmit = 10,   // go-back-N re-injection
  kAckTx = 11,        // explicit ACK sent (seq = cumulative ack)
  kAckRx = 12,        // ACK processed (seq = cumulative ack, arg = freed)
  kTimerFire = 13,    // retransmission timer scan ran (per NIC)
  kPathFail = 14,     // path declared permanently failed
  kRemapStart = 15,   // on-demand mapping requested
  kRemapDone = 16,    // mapping finished (arg: 1 = route found, 0 = failed)
  kGenRestart = 17,   // sequence space restarted (gen = new generation)
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind k);

/// One fixed-size lifecycle record. `node` is the observing device: the NIC's
/// host id for firmware events, the switch id for hop traversals.
struct TraceEvent {
  sim::Time t = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t seq = 0;
  std::uint32_t arg = 0;
  std::uint16_t gen = 0;
  std::uint16_t node = 0;
  TraceKind kind = TraceKind::kHostEnqueue;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  /// Start recording. Re-enabling resizes and clears the ring.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void emit(TraceEvent ev) {
    if (!enabled_) return;
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    if (head_ == 0) wrapped_ = true;
    ++recorded_;
  }

  /// Events in emission order (oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten by ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Append the trace section (object) to `w`: config, counts, and the
  /// surviving events as an array of objects.
  void to_json(JsonWriter& w) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  bool wrapped_ = false;
  bool enabled_ = false;
  std::uint64_t recorded_ = 0;
};

}  // namespace sanfault::obs
