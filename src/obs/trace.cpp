#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace sanfault::obs {

std::string_view trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kHostEnqueue: return "host_enqueue";
    case TraceKind::kWireInject: return "wire_inject";
    case TraceKind::kInjectedDrop: return "injected_drop";
    case TraceKind::kHopTraverse: return "hop_traverse";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kDupDrop: return "dup_drop";
    case TraceKind::kOooDrop: return "ooo_drop";
    case TraceKind::kStaleGenDrop: return "stale_gen_drop";
    case TraceKind::kCorruptDrop: return "corrupt_drop";
    case TraceKind::kFabricDrop: return "fabric_drop";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kAckTx: return "ack_tx";
    case TraceKind::kAckRx: return "ack_rx";
    case TraceKind::kTimerFire: return "timer_fire";
    case TraceKind::kPathFail: return "path_fail";
    case TraceKind::kRemapStart: return "remap_start";
    case TraceKind::kRemapDone: return "remap_done";
    case TraceKind::kGenRestart: return "gen_restart";
  }
  return "unknown";
}

void TraceRing::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  wrapped_ = false;
  recorded_ = 0;
  enabled_ = true;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  if (ring_.empty()) return out;
  if (wrapped_) {
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
  } else {
    out.reserve(head_);
  }
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void TraceRing::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("enabled").value(enabled_);
  w.key("capacity").value(static_cast<std::uint64_t>(ring_.size()));
  w.key("recorded").value(recorded_);
  w.key("dropped").value(dropped());
  w.key("events").begin_array();
  for (const TraceEvent& e : snapshot()) {
    w.begin_object();
    w.key("t").value(static_cast<std::uint64_t>(e.t));
    w.key("kind").value(trace_kind_name(e.kind));
    w.key("node").value(static_cast<std::uint64_t>(e.node));
    w.key("src").value(static_cast<std::uint64_t>(e.src));
    w.key("dst").value(static_cast<std::uint64_t>(e.dst));
    w.key("seq").value(static_cast<std::uint64_t>(e.seq));
    w.key("gen").value(static_cast<std::uint64_t>(e.gen));
    w.key("arg").value(static_cast<std::uint64_t>(e.arg));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace sanfault::obs
