// Low-overhead metrics registry: the observability substrate every layer of
// the stack reports into (see docs/OBSERVABILITY.md for the full schema).
//
// Three metric kinds:
//  * Counter   — monotonic uint64 (events since simulation start);
//  * Gauge     — int64 level with a high-watermark (queue depths, free
//                buffer counts);
//  * Histogram — sim::HdrHistogram of uint64 samples (latencies, depths),
//                exported as count/mean/max + p50/p90/p99/p99.9.
//
// Instrumented name scheme: `<layer>.<metric>{label=value,...}` — e.g.
// `firmware.retransmissions{node=3}`. The part before `{` is the metric's
// schema name; labels distinguish instances. Export aggregates nothing: one
// entry per instance, consumers (scripts/metrics_diff.py) aggregate by
// stripping labels.
//
// Hot-path cost: an increment through a cached Counter* is one add; nothing
// allocates after registration. Components that already keep a cheap stats
// struct register a *collector* instead — a callback run just before every
// export that copies the struct into registry counters — so their fast paths
// stay untouched (pull model, as Prometheus collectors do it). Collectors
// are keyed by an owner pointer and MUST be removed in the owner's
// destructor (remove_collectors runs them one last time, so final values
// survive into the teardown export).
//
// One Registry exists per simulation: `Registry::of(sched)` creates it on
// first use and ties its lifetime to the scheduler via the teardown hook.
// If SANFAULT_METRICS_JSON names a file, the registry writes its full JSON
// there at scheduler teardown; SANFAULT_TRACE=<capacity> enables the
// packet-lifecycle trace ring (obs/trace.hpp) from the environment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/stats.hpp"

namespace sanfault::sim {
class Scheduler;
}

namespace sanfault::obs {

class JsonWriter;

/// Monotonic event counter. set() is for collectors mirroring an existing
/// stats struct and never moves the value backwards.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  void set(std::uint64_t v) {
    if (v > v_) v_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Instantaneous level plus the highest level ever seen.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t d) { set(v_ + d); }
  [[nodiscard]] std::int64_t value() const { return v_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  /// Fold another gauge in (registry merge): levels add, watermarks max.
  void merge(const Gauge& o) {
    v_ += o.v_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
};

/// Windowed distribution over the whole run (sim::HdrHistogram: ~3% relative
/// error, allocation-free recording).
class Histogram {
 public:
  void record(std::uint64_t v) { h_.add(v); }
  [[nodiscard]] const sim::HdrHistogram& hist() const { return h_; }
  void merge(const Histogram& o) { h_.merge(o.h_); }

 private:
  sim::HdrHistogram h_;
};

class Registry {
 public:
  using Collector = std::function<void()>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Per-simulation registry, created on first use and destroyed (after an
  /// optional final JSON export) when `sched` is destroyed.
  static Registry& of(sim::Scheduler& sched);

  /// The registry for `sched` if one exists, else nullptr. Component
  /// destructors use this so deregistration is safe regardless of whether
  /// the scheduler (and with it the registry) died first.
  static Registry* find(const sim::Scheduler& sched);

  // Lookup-or-create. `name` is the full instance name including labels;
  // `unit` and `help` are recorded on first creation (later calls may pass
  // empty strings). Returned references are stable for the registry's life.
  Counter& counter(const std::string& name, std::string unit = {},
                   std::string help = {});
  Gauge& gauge(const std::string& name, std::string unit = {},
               std::string help = {});
  Histogram& histogram(const std::string& name, std::string unit = {},
                       std::string help = {});

  /// Register a pull-collector owned by `owner`. Collectors run, in
  /// registration order, before every export/snapshot.
  void add_collector(const void* owner, Collector fn);

  /// Run `owner`'s collectors one final time, then drop them. Must be called
  /// from the owner's destructor (the registry outlives components).
  void remove_collectors(const void* owner);

  /// Run all collectors now (tests use this to observe live counters).
  void collect();

  /// collect() `other` and fold its metrics into this one: counters add,
  /// gauges add values and take the max watermark, histograms merge; units
  /// and help strings carry over on first sight of a name. The parallel
  /// harness folds every partition registry (and the control registry) into
  /// a fresh Registry for export — per-instance metrics live in exactly one
  /// shard, and the shared fabric counters sum to the serial run's totals.
  void merge_from(Registry& other);

  [[nodiscard]] TraceRing& trace() { return trace_; }

  /// All metric instance names, sorted (export order).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Read a counter's current value; 0 if absent. Does not collect.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// collect() + serialize the full registry (metrics + trace ring) as one
  /// JSON object.
  std::string to_json();

  /// to_json() into `path`; false on I/O failure.
  bool write_json(const std::string& path);

  /// Where the teardown export goes ("" = no automatic export).
  void set_export_path(std::string path) { export_path_ = std::move(path); }
  [[nodiscard]] const std::string& export_path() const { return export_path_; }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::string unit;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct CollectorRec {
    const void* owner;
    Collector fn;
  };

  Metric& get_or_create(const std::string& name, Kind kind, std::string unit,
                        std::string help);

  // std::map: export iterates it; sorted order keeps every JSON dump (and
  // thus golden-file comparisons) deterministic.
  std::map<std::string, Metric> metrics_;
  std::vector<CollectorRec> collectors_;
  TraceRing trace_;
  std::string export_path_;
};

}  // namespace sanfault::obs
