#include "obs/metrics.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "obs/json.hpp"
#include "sim/scheduler.hpp"

namespace sanfault::obs {

namespace {

/// Registries alive in this process, keyed by their scheduler. Entries are
/// erased by the scheduler's teardown hook, so address reuse across
/// consecutive simulations (tests, bench sweeps) cannot alias registries.
/// The map is the one piece of cross-scheduler shared state in the process,
/// so it is mutex-guarded: parallel sweep runners (bench::run_cells) create
/// and destroy schedulers concurrently. A Registry itself is still owned by
/// exactly one simulation thread and is not internally synchronized.
std::unordered_map<const sim::Scheduler*, std::unique_ptr<Registry>>&
registry_map() {
  static std::unordered_map<const sim::Scheduler*, std::unique_ptr<Registry>>
      map;
  return map;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Registry& Registry::of(sim::Scheduler& sched) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& map = registry_map();
  auto it = map.find(&sched);
  if (it == map.end()) {
    auto reg = std::make_unique<Registry>();
    if (const char* p = std::getenv("SANFAULT_METRICS_JSON")) {
      if (*p != '\0') reg->set_export_path(p);
    }
    if (const char* t = std::getenv("SANFAULT_TRACE")) {
      const long cap = std::atol(t);
      reg->trace().enable(cap > 0 ? static_cast<std::size_t>(cap)
                                  : TraceRing::kDefaultCapacity);
    }
    Registry* raw = reg.get();
    sched.at_teardown([&sched, raw] {
      // Export outside the lock: write_json only touches this registry.
      if (!raw->export_path().empty()) raw->write_json(raw->export_path());
      std::lock_guard<std::mutex> teardown_lock(registry_mutex());
      registry_map().erase(&sched);
    });
    it = map.emplace(&sched, std::move(reg)).first;
  }
  return *it->second;
}

Registry* Registry::find(const sim::Scheduler& sched) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& map = registry_map();
  auto it = map.find(&sched);
  return it == map.end() ? nullptr : it->second.get();
}

Registry::Metric& Registry::get_or_create(const std::string& name, Kind kind,
                                          std::string unit, std::string help) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric m;
    m.kind = kind;
    m.unit = std::move(unit);
    m.help = std::move(help);
    switch (kind) {
      case Kind::kCounter: m.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: m.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: m.histogram = std::make_unique<Histogram>(); break;
    }
    it = metrics_.emplace(name, std::move(m)).first;
  }
  assert(it->second.kind == kind && "metric re-registered with another kind");
  return it->second;
}

Counter& Registry::counter(const std::string& name, std::string unit,
                           std::string help) {
  return *get_or_create(name, Kind::kCounter, std::move(unit), std::move(help))
              .counter;
}

Gauge& Registry::gauge(const std::string& name, std::string unit,
                       std::string help) {
  return *get_or_create(name, Kind::kGauge, std::move(unit), std::move(help))
              .gauge;
}

Histogram& Registry::histogram(const std::string& name, std::string unit,
                               std::string help) {
  return *get_or_create(name, Kind::kHistogram, std::move(unit),
                        std::move(help))
              .histogram;
}

void Registry::add_collector(const void* owner, Collector fn) {
  collectors_.push_back(CollectorRec{owner, std::move(fn)});
}

void Registry::remove_collectors(const void* owner) {
  // Final sync: the owner is about to die; capture its last counter values.
  for (auto& c : collectors_) {
    if (c.owner == owner) c.fn();
  }
  std::erase_if(collectors_, [owner](const CollectorRec& c) {
    return c.owner == owner;
  });
}

void Registry::collect() {
  // Collectors may register metrics but must not add/remove collectors.
  for (auto& c : collectors_) c.fn();
}

void Registry::merge_from(Registry& other) {
  other.collect();
  for (auto& [name, m] : other.metrics_) {
    Metric& mine = get_or_create(name, m.kind, m.unit, m.help);
    switch (m.kind) {
      case Kind::kCounter: mine.counter->inc(m.counter->value()); break;
      case Kind::kGauge: mine.gauge->merge(*m.gauge); break;
      case Kind::kHistogram: mine.histogram->merge(*m.histogram); break;
    }
  }
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) out.push_back(name);
  return out;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kCounter) return 0;
  return it->second.counter->value();
}

std::string Registry::to_json() {
  collect();
  JsonWriter w;
  w.begin_object();
  w.key("metrics").begin_object();
  for (const auto& [name, m] : metrics_) {
    w.key(name).begin_object();
    switch (m.kind) {
      case Kind::kCounter:
        w.key("type").value("counter");
        if (!m.unit.empty()) w.key("unit").value(m.unit);
        w.key("value").value(m.counter->value());
        break;
      case Kind::kGauge:
        w.key("type").value("gauge");
        if (!m.unit.empty()) w.key("unit").value(m.unit);
        w.key("value").value(m.gauge->value());
        w.key("max").value(m.gauge->max());
        break;
      case Kind::kHistogram: {
        const sim::HdrHistogram& h = m.histogram->hist();
        w.key("type").value("histogram");
        if (!m.unit.empty()) w.key("unit").value(m.unit);
        w.key("count").value(h.count());
        w.key("mean").value(h.mean());
        w.key("max").value(h.max());
        w.key("p50").value(h.quantile(0.50));
        w.key("p90").value(h.quantile(0.90));
        w.key("p99").value(h.quantile(0.99));
        w.key("p999").value(h.quantile(0.999));
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
  w.key("trace");
  trace_.to_json(w);
  w.end_object();
  return w.take();
}

bool Registry::write_json(const std::string& path) {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace sanfault::obs
