// Minimal allocation-friendly JSON writer for metrics/trace export.
//
// The simulator has no third-party JSON dependency, and the export path only
// ever *writes* JSON, so a tiny append-only builder with automatic comma
// management is all that is needed. Nesting is tracked with a small stack so
// objects/arrays can be opened and closed without the caller counting commas.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sanfault::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    pre_value();
    out_ += '{';
    stack_.push_back(Frame::kObject);
    first_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    stack_.pop_back();
    first_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    pre_value();
    out_ += '[';
    stack_.push_back(Frame::kArray);
    first_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    stack_.pop_back();
    first_ = false;
    return *this;
  }

  /// Emit `"name":` inside the current object; the next value call supplies
  /// the value (pre_value() knows a key was just written).
  JsonWriter& key(std::string_view name) {
    comma();
    quote(name);
    out_ += ':';
    keyed_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    pre_value();
    quote(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    pre_value();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v) {
    pre_value();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& value(bool v) {
    pre_value();
    out_ += v ? "true" : "false";
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void comma() {
    if (!first_) out_ += ',';
    first_ = false;
  }
  void pre_value() {
    if (keyed_) {
      keyed_ = false;  // key() already placed the comma
    } else if (!stack_.empty()) {
      comma();
    }
  }
  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool first_ = true;
  bool keyed_ = false;
};

}  // namespace sanfault::obs
