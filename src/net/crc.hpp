// CRC-32 (IEEE 802.3 polynomial, reflected), as the Myrinet network DMA
// computes on the fly for every packet.
//
// The production path is slice-by-8: eight 256-entry tables let the inner
// loop fold 8 bytes per iteration with independent lookups (Intel's
// "Slicing-by-8" technique), roughly 5-6x the classic one-table byte loop.
// The one-table loop is kept as crc32_update_reference — the oracle the unit
// tests compare against over random lengths, alignments and splits.
#pragma once

#include <cstdint>
#include <span>

namespace sanfault::net {

/// CRC32 of `data` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form for streaming use: seed with 0xFFFFFFFF, finish by
/// XORing with 0xFFFFFFFF. crc32_update(crc32_update(s, a), b) equals
/// crc32_update(s, ab) for any split of ab into a and b.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);

/// Reference implementation (classic one-table, byte at a time). Same
/// contract as crc32_update; exists so tests can cross-check the sliced
/// path against an independently simple formulation.
[[nodiscard]] std::uint32_t crc32_update_reference(
    std::uint32_t state, std::span<const std::uint8_t> data);

}  // namespace sanfault::net
