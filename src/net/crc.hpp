// CRC-32 (IEEE 802.3 polynomial, reflected), as the Myrinet network DMA
// computes on the fly for every packet.
#pragma once

#include <cstdint>
#include <span>

namespace sanfault::net {

/// CRC32 of `data` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form for streaming use: seed with 0xFFFFFFFF, finish by
/// XORing with 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);

}  // namespace sanfault::net
