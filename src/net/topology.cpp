#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>

#include "sim/rng.hpp"

namespace sanfault::net {

HostId Topology::add_host() {
  hosts_.push_back(HostRec{});
  return HostId{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

SwitchId Topology::add_switch(std::uint8_t num_ports) {
  SwitchRec rec;
  rec.num_ports = num_ports;
  rec.port_link.resize(num_ports);
  switches_.push_back(std::move(rec));
  return SwitchId{static_cast<std::uint32_t>(switches_.size() - 1)};
}

std::optional<LinkId>& Topology::port_slot(Port p) {
  if (p.dev.is_host()) {
    if (p.port != 0) throw std::out_of_range("hosts have only port 0");
    return hosts_.at(p.dev.index).link;
  }
  auto& sw = switches_.at(p.dev.index);
  return sw.port_link.at(p.port);
}

const std::optional<LinkId>* Topology::port_slot_const(Port p) const {
  if (p.dev.is_host()) {
    if (p.port != 0) return nullptr;
    if (p.dev.index >= hosts_.size()) return nullptr;
    return &hosts_[p.dev.index].link;
  }
  if (p.dev.index >= switches_.size()) return nullptr;
  const auto& sw = switches_[p.dev.index];
  if (p.port >= sw.port_link.size()) return nullptr;
  return &sw.port_link[p.port];
}

LinkId Topology::connect(Port a, Port b, LinkModel model) {
  auto& sa = port_slot(a);
  auto& sb = port_slot(b);
  if (sa || sb) throw std::logic_error("Topology::connect: port already wired");
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(LinkRec{a, b, model, /*up=*/true, /*disconnected=*/false});
  sa = id;
  sb = id;
  return id;
}

void Topology::disconnect(LinkId l) {
  auto& rec = links_.at(l.v);
  if (rec.disconnected) return;
  rec.disconnected = true;
  port_slot(rec.a).reset();
  port_slot(rec.b).reset();
}

std::vector<LinkId> Topology::links_at(Device d) const {
  std::vector<LinkId> out;
  if (d.is_host()) {
    if (const auto& l = hosts_.at(d.index).link) out.push_back(*l);
    return out;
  }
  for (const auto& slot : switches_.at(d.index).port_link) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

std::optional<Topology::Attachment> Topology::peer_of(Port p) const {
  const auto* slot = port_slot_const(p);
  if (!slot || !*slot) return std::nullopt;
  const LinkRec& rec = links_[(*slot)->v];
  const Port peer = (rec.a == p) ? rec.b : rec.a;
  return Attachment{peer, **slot};
}

std::optional<Route> Topology::shortest_route(HostId from, HostId to) const {
  if (from == to) return Route{};  // loopback: no fabric traversal
  struct Crumb {
    Device prev;
    LinkId via;
  };
  std::map<Device, Crumb> visited;

  const Device start = Device::host(from);
  const Device goal = Device::host(to);
  std::deque<Device> frontier{start};
  visited[start] = Crumb{start, LinkId{}};

  auto expand = [&](Device d, Port p) -> std::optional<Device> {
    auto att = peer_of(p);
    if (!att || !link_up(att->link)) return std::nullopt;
    const Device nbr = att->peer.dev;
    if (nbr.is_switch() && !switch_up(nbr.as_switch())) return std::nullopt;
    if (visited.contains(nbr)) return std::nullopt;
    visited[nbr] = Crumb{d, att->link};
    return nbr;
  };

  bool found = false;
  while (!frontier.empty() && !found) {
    const Device d = frontier.front();
    frontier.pop_front();
    if (d.is_host()) {
      if (d != start) continue;  // other hosts do not forward
      if (auto n = expand(d, Port{d, 0})) {
        if (*n == goal) found = true;
        frontier.push_back(*n);
      }
    } else {
      const auto& sw = switches_[d.index];
      if (!sw.up) continue;
      for (std::uint8_t p = 0; p < sw.num_ports && !found; ++p) {
        if (auto n = expand(d, Port{d, p})) {
          if (*n == goal) found = true;
          frontier.push_back(*n);
        }
      }
    }
  }
  if (!visited.contains(goal)) return std::nullopt;

  // Walk back from the goal collecting, for every switch on the path, the
  // output port it must use (the port on its side of the link to the next
  // device toward the goal).
  Route route;
  Device cur = goal;
  while (cur != start) {
    const Crumb& c = visited[cur];
    const Device prev = c.prev;
    if (prev.is_switch()) {
      const LinkRec& rec = links_[c.via.v];
      const Port out = (rec.a.dev == prev) ? rec.a : rec.b;
      route.ports.push_back(out.port);
    }
    cur = prev;
  }
  std::reverse(route.ports.begin(), route.ports.end());
  return route;
}

std::optional<Device> Topology::device_after(HostId from,
                                             const Route& r) const {
  auto att = peer_of(Port{Device::host(from), 0});
  if (!att) return std::nullopt;
  Device cur = att->peer.dev;
  std::size_t next = 0;
  while (cur.is_switch() && next < r.ports.size()) {
    const std::uint8_t port = r.ports[next++];
    if (port >= switches_[cur.index].num_ports) return std::nullopt;
    auto hop = peer_of(Port{cur, port});
    if (!hop) return std::nullopt;
    cur = hop->peer.dev;
  }
  if (next != r.ports.size()) return std::nullopt;  // hit a host early
  return cur;
}

std::optional<Device> Topology::trace_route(HostId from, const Route& r) const {
  auto att = peer_of(Port{Device::host(from), 0});
  if (!att) return std::nullopt;
  Device cur = att->peer.dev;
  std::size_t next = 0;
  while (cur.is_switch()) {
    if (next >= r.ports.size()) return std::nullopt;  // route exhausted mid-fabric
    const std::uint8_t port = r.ports[next++];
    if (port >= switches_[cur.index].num_ports) return std::nullopt;
    auto hop = peer_of(Port{cur, port});
    if (!hop) return std::nullopt;  // unconnected port: packet falls off
    cur = hop->peer.dev;
  }
  if (next != r.ports.size()) return std::nullopt;  // leftover bytes corrupt
  return cur;
}

std::optional<Device> Topology::trace_route_up(HostId from,
                                               const Route& r) const {
  auto att = peer_of(Port{Device::host(from), 0});
  if (!att || !link_up(att->link)) return std::nullopt;
  Device cur = att->peer.dev;
  std::size_t next = 0;
  while (cur.is_switch()) {
    if (!switch_up(cur.as_switch())) return std::nullopt;
    if (next >= r.ports.size()) return std::nullopt;
    const std::uint8_t port = r.ports[next++];
    if (port >= switches_[cur.index].num_ports) return std::nullopt;
    auto hop = peer_of(Port{cur, port});
    if (!hop || !link_up(hop->link)) return std::nullopt;
    cur = hop->peer.dev;
  }
  if (next != r.ports.size()) return std::nullopt;
  return cur;
}

std::optional<Route> Topology::constrained_route(
    HostId from, HostId to, const std::vector<char>& link_banned,
    const std::vector<char>& switch_banned, std::uint64_t salt) const {
  if (from == to) return Route{};
  struct Crumb {
    Device prev;
    LinkId via;
  };
  std::map<Device, Crumb> visited;

  const Device start = Device::host(from);
  const Device goal = Device::host(to);
  std::deque<Device> frontier{start};
  visited[start] = Crumb{start, LinkId{}};

  auto link_ok = [&](LinkId l) {
    return link_up(l) && !(l.v < link_banned.size() && link_banned[l.v]);
  };
  auto switch_ok = [&](SwitchId s) {
    return switch_up(s) && !(s.v < switch_banned.size() && switch_banned[s.v]);
  };

  auto expand = [&](Device d, Port p) -> std::optional<Device> {
    auto att = peer_of(p);
    if (!att || !link_ok(att->link)) return std::nullopt;
    const Device nbr = att->peer.dev;
    if (nbr.is_switch() && !switch_ok(nbr.as_switch())) return std::nullopt;
    if (visited.contains(nbr)) return std::nullopt;
    visited[nbr] = Crumb{d, att->link};
    return nbr;
  };

  bool found = false;
  while (!frontier.empty() && !found) {
    const Device d = frontier.front();
    frontier.pop_front();
    if (d.is_host()) {
      if (d != start) continue;  // other hosts do not forward
      if (auto n = expand(d, Port{d, 0})) {
        if (*n == goal) found = true;
        frontier.push_back(*n);
      }
    } else {
      const auto& sw = switches_[d.index];
      if (!switch_ok(d.as_switch())) continue;
      // Salt-seeded per-switch port permutation: among equal-cost choices the
      // first-found shortest path depends on expansion order, so the salt
      // deterministically spreads backup picks across (source, destination)
      // pairs the same way the mapper's multipath selection does.
      std::vector<std::uint8_t> order(sw.num_ports);
      std::iota(order.begin(), order.end(), std::uint8_t{0});
      sim::Rng perm(salt ^ (0x9E3779B97F4A7C15ull * (d.index + 1)));
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[perm.uniform(i)]);
      }
      for (std::size_t i = 0; i < order.size() && !found; ++i) {
        if (auto n = expand(d, Port{d, order[i]})) {
          if (*n == goal) found = true;
          frontier.push_back(*n);
        }
      }
    }
  }
  if (!visited.contains(goal)) return std::nullopt;

  Route route;
  Device cur = goal;
  while (cur != start) {
    const Crumb& c = visited[cur];
    const Device prev = c.prev;
    if (prev.is_switch()) {
      const LinkRec& rec = links_[c.via.v];
      const Port out = (rec.a.dev == prev) ? rec.a : rec.b;
      route.ports.push_back(out.port);
    }
    cur = prev;
  }
  std::reverse(route.ports.begin(), route.ports.end());
  return route;
}

std::optional<AltRoute> Topology::disjoint_route(HostId from, HostId to,
                                                 const Route& primary,
                                                 std::uint64_t salt) const {
  // Walk the primary (ignoring up/down: it may have just failed) collecting
  // every link and switch it traverses, in path order.
  auto att = peer_of(Port{Device::host(from), 0});
  if (!att) return std::nullopt;
  std::vector<LinkId> path_links{att->link};
  std::vector<SwitchId> path_switches;
  Device cur = att->peer.dev;
  std::size_t next = 0;
  while (cur.is_switch()) {
    path_switches.push_back(cur.as_switch());
    if (next >= primary.ports.size()) return std::nullopt;
    const std::uint8_t port = primary.ports[next++];
    if (port >= switches_[cur.index].num_ports) return std::nullopt;
    auto hop = peer_of(Port{cur, port});
    if (!hop) return std::nullopt;
    path_links.push_back(hop->link);
    cur = hop->peer.dev;
  }
  if (next != primary.ports.size() || cur != Device::host(to)) {
    return std::nullopt;  // not a valid from->to walk
  }

  // Interior = everything strictly between the two access switches. Hosts
  // are single-homed: the access links and the first/last crossbar are
  // shared by construction, so they never enter a ban set.
  std::vector<LinkId> interior_links(
      path_links.size() > 2 ? path_links.begin() + 1 : path_links.end(),
      path_links.size() > 2 ? path_links.end() - 1 : path_links.end());
  std::vector<SwitchId> interior_switches(
      path_switches.size() > 2 ? path_switches.begin() + 1
                               : path_switches.end(),
      path_switches.size() > 2 ? path_switches.end() - 1
                               : path_switches.end());
  if (interior_links.empty()) {
    // Same-crossbar pair (or direct cable): the only route IS the primary.
    return std::nullopt;
  }

  auto attempt = [&](const std::vector<LinkId>& ban_links,
                     const std::vector<SwitchId>& ban_switches)
      -> std::optional<Route> {
    std::vector<char> lb(links_.size(), 0);
    std::vector<char> sb(switches_.size(), 0);
    for (const LinkId l : ban_links) lb[l.v] = 1;
    for (const SwitchId s : ban_switches) sb[s.v] = 1;
    auto r = constrained_route(from, to, lb, sb, salt);
    if (r && *r == primary) r.reset();  // replaying the primary is no backup
    return r;
  };

  if (auto r = attempt(interior_links, interior_switches)) {
    return AltRoute{std::move(*r), DisjointClass::kNodeDisjoint};
  }
  if (!interior_switches.empty()) {
    if (auto r = attempt(interior_links, {})) {
      return AltRoute{std::move(*r), DisjointClass::kLinkDisjoint};
    }
  }
  // Progressive relaxation: any route avoiding at least one primary link
  // still survives that link's death. Ban one interior link at a time, in
  // path order, and take the first alternate that appears.
  for (const LinkId l : interior_links) {
    if (auto r = attempt({l}, {})) {
      return AltRoute{std::move(*r), DisjointClass::kOverlapping};
    }
  }
  return std::nullopt;
}

Figure2Fabric make_figure2_fabric(std::size_t num_hosts) {
  Figure2Fabric f;
  f.sw8_a = f.topo.add_switch(8);
  f.sw16_a = f.topo.add_switch(16);
  f.sw16_b = f.topo.add_switch(16);
  f.sw8_b = f.topo.add_switch(8);

  // Chain sw8_a - sw16_a - sw16_b - sw8_b, with a redundant second link on
  // every switch-to-switch segment so a single link death never partitions.
  auto wire = [&](SwitchId x, std::uint8_t px, SwitchId y, std::uint8_t py) {
    f.topo.connect(Port{Device::sw(x), px}, Port{Device::sw(y), py});
  };
  wire(f.sw8_a, 0, f.sw16_a, 0);
  wire(f.sw8_a, 1, f.sw16_a, 1);
  wire(f.sw16_a, 2, f.sw16_b, 2);
  wire(f.sw16_a, 3, f.sw16_b, 3);
  wire(f.sw16_b, 0, f.sw8_b, 0);
  wire(f.sw16_b, 1, f.sw8_b, 1);

  // Hosts round-robin over the four switches, on their free ports; a full
  // switch is skipped (the 8-port crossbars fill before the 16-port ones).
  const SwitchId order[] = {f.sw8_a, f.sw16_a, f.sw16_b, f.sw8_b};
  std::uint8_t next_port[] = {2, 4, 4, 2};
  std::size_t s = 0;
  for (std::size_t i = 0; i < num_hosts; ++i) {
    std::size_t tried = 0;
    while (next_port[s] >= f.topo.switch_ports(order[s])) {
      s = (s + 1) % 4;
      if (++tried == 4) {
        throw std::logic_error("make_figure2_fabric: out of switch ports");
      }
    }
    const HostId h = f.topo.add_host();
    f.topo.connect(Port{Device::host(h), 0},
                   Port{Device::sw(order[s]), next_port[s]++});
    f.hosts.push_back(h);
    s = (s + 1) % 4;
  }
  return f;
}

ClosFabric make_clos_fabric(ClosConfig cfg) {
  if (cfg.k < 2 || cfg.k % 2 != 0) {
    throw std::invalid_argument("make_clos_fabric: k must be even and >= 2");
  }
  const std::size_t m = cfg.k / 2;  // edges/aggs per pod, down-ports per agg
  if (cfg.core_group_size == 0) cfg.core_group_size = m;
  if (cfg.core_group_size > m) {
    throw std::invalid_argument("make_clos_fabric: core_group_size > k/2");
  }
  const std::size_t g = cfg.core_group_size;
  const std::size_t num_edges = cfg.k * m;
  if (cfg.num_hosts == 0) cfg.num_hosts = num_edges * m;  // full: k^3/4
  // Hosts round-robin over edges; the busiest edge carries the ceiling.
  const std::size_t hosts_per_edge =
      (cfg.num_hosts + num_edges - 1) / num_edges;
  if (cfg.k > 250 || m + hosts_per_edge > 250) {
    throw std::invalid_argument("make_clos_fabric: crossbar radix overflow");
  }

  ClosFabric f;
  f.cfg = cfg;
  // Spine first: SwitchId 0 must be a core so chaos scenarios that say
  // "switch_down switch=0" kill a spine, and UP*/DOWN* roots at the top.
  for (std::size_t c = 0; c < m * g; ++c) {
    f.cores.push_back(f.topo.add_switch(static_cast<std::uint8_t>(cfg.k)));
  }
  for (std::size_t pod = 0; pod < cfg.k; ++pod) {
    for (std::size_t j = 0; j < m; ++j) {
      f.aggs.push_back(f.topo.add_switch(static_cast<std::uint8_t>(m + g)));
    }
    for (std::size_t e = 0; e < m; ++e) {
      f.edges.push_back(
          f.topo.add_switch(static_cast<std::uint8_t>(m + hosts_per_edge)));
    }
  }

  auto wire = [&](SwitchId x, std::size_t px, SwitchId y, std::size_t py) {
    f.topo.connect(Port{Device::sw(x), static_cast<std::uint8_t>(px)},
                   Port{Device::sw(y), static_cast<std::uint8_t>(py)},
                   cfg.link);
  };
  for (std::size_t pod = 0; pod < cfg.k; ++pod) {
    // Edge e port j <-> agg j port e: a full bipartite mesh inside the pod.
    for (std::size_t e = 0; e < m; ++e) {
      for (std::size_t j = 0; j < m; ++j) {
        wire(f.edges[pod * m + e], j, f.aggs[pod * m + j], e);
      }
    }
    // Agg j uplinks to its core group; core c's port `pod` serves this pod.
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t t = 0; t < g; ++t) {
        wire(f.aggs[pod * m + j], m + t, f.cores[j * g + t], pod);
      }
    }
  }

  for (std::size_t i = 0; i < cfg.num_hosts; ++i) {
    const HostId h = f.topo.add_host();
    const std::size_t e = i % num_edges;
    const std::size_t slot = i / num_edges;
    f.topo.connect(Port{Device::host(h), 0},
                   Port{Device::sw(f.edges[e]),
                        static_cast<std::uint8_t>(m + slot)},
                   cfg.link);
    f.hosts.push_back(h);
  }
  return f;
}

std::optional<ClosConfig> clos_named_shape(std::string_view name) {
  ClosConfig c;
  if (name == "clos-64") {
    c.k = 8;
    c.num_hosts = 64;
  } else if (name == "clos-128") {
    c.k = 8;
    c.num_hosts = 128;
  } else if (name == "clos-256") {
    c.k = 16;
    c.num_hosts = 256;
  } else if (name == "clos-1024") {
    c.k = 16;
    c.num_hosts = 1024;
  } else {
    return std::nullopt;
  }
  return c;
}

}  // namespace sanfault::net
