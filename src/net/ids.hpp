// Strongly-typed identifiers for network entities.
//
// Hosts and switches live in separate index spaces; Device unifies them for
// graph traversal. A "port" is an integer local to its device — Myrinet hosts
// have exactly one network port (port 0), crossbar switches have N.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace sanfault::net {

struct HostId {
  std::uint32_t v = 0;
  auto operator<=>(const HostId&) const = default;
};

struct SwitchId {
  std::uint32_t v = 0;
  auto operator<=>(const SwitchId&) const = default;
};

struct LinkId {
  std::uint32_t v = 0;
  auto operator<=>(const LinkId&) const = default;
};

enum class DeviceKind : std::uint8_t { kHost, kSwitch };

struct Device {
  DeviceKind kind = DeviceKind::kHost;
  std::uint32_t index = 0;
  auto operator<=>(const Device&) const = default;

  static Device host(HostId h) { return {DeviceKind::kHost, h.v}; }
  static Device sw(SwitchId s) { return {DeviceKind::kSwitch, s.v}; }
  [[nodiscard]] bool is_host() const { return kind == DeviceKind::kHost; }
  [[nodiscard]] bool is_switch() const { return kind == DeviceKind::kSwitch; }
  [[nodiscard]] HostId as_host() const { return HostId{index}; }
  [[nodiscard]] SwitchId as_switch() const { return SwitchId{index}; }
};

/// A specific port on a specific device.
struct Port {
  Device dev;
  std::uint8_t port = 0;
  auto operator<=>(const Port&) const = default;
};

}  // namespace sanfault::net

template <>
struct std::hash<sanfault::net::HostId> {
  std::size_t operator()(const sanfault::net::HostId& h) const noexcept {
    return std::hash<std::uint32_t>{}(h.v);
  }
};
