#include "net/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sanfault::net {

namespace {

constexpr std::uint32_t kUnowned = 0xffffffffu;

void finalize(const Topology& topo, FabricPartition& fp) {
  fp.lookahead.assign(static_cast<std::size_t>(fp.count) * fp.count,
                      sim::kNever);
  fp.cut_links = 0;
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const auto [a, b] = topo.link_ends(LinkId{l});
    const std::uint32_t oa = fp.owner_of(a.dev);
    const std::uint32_t ob = fp.owner_of(b.dev);
    if (oa == ob) continue;
    ++fp.cut_links;
    const sim::Duration lat = topo.link_model(LinkId{l}).latency;
    sim::Duration& ab = fp.lookahead[oa * fp.count + ob];
    sim::Duration& ba = fp.lookahead[ob * fp.count + oa];
    ab = std::min(ab, lat);
    ba = std::min(ba, lat);
  }
  // Min-plus transitive closure (Floyd–Warshall). The direct-cut matrix is
  // NOT a valid conservative lookahead on its own: two partitions with no
  // direct cut link still exchange causality through an intermediate one
  // (figure-2's redundant tree cuts into a path, not a clique), and a
  // horizon that ignores such a pair admits messages into its past. The
  // closure is the tightest latency bound any multi-hop cut path can beat,
  // so H_p = min_q(next_q + lookahead[q][p]) is safe for every reachable
  // pair.
  const std::size_t n = fp.count;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const sim::Duration ik = fp.lookahead[i * n + k];
      if (ik == sim::kNever) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const sim::Duration kj = fp.lookahead[k * n + j];
        if (kj == sim::kNever) continue;
        sim::Duration& ij = fp.lookahead[i * n + j];
        ij = std::min(ij, ik + kj);
      }
    }
  }
}

}  // namespace

FabricPartition make_partition(const Topology& topo, std::uint32_t parts,
                               std::vector<std::uint32_t> host_owner) {
  if (parts == 0) parts = 1;
  if (host_owner.size() != topo.num_hosts()) {
    throw std::invalid_argument(
        "make_partition: host_owner has " +
        std::to_string(host_owner.size()) + " entries for " +
        std::to_string(topo.num_hosts()) + " hosts");
  }
  for (std::uint32_t o : host_owner) {
    if (o >= parts) {
      throw std::invalid_argument("make_partition: host owner " +
                                  std::to_string(o) + " >= parts " +
                                  std::to_string(parts));
    }
  }

  FabricPartition fp;
  fp.count = parts;
  fp.host_owner = std::move(host_owner);
  fp.switch_owner.assign(topo.num_switches(), kUnowned);

  // Majority propagation from the hosts, in rounds: a switch adopts the most
  // common owner among already-assigned neighbors (tie: lowest partition id).
  // Scanning switches in index order with a fixed tie-break keeps the result
  // a pure function of (topology, assignment) — required for determinism.
  std::vector<std::uint32_t> votes(parts);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
      if (fp.switch_owner[s] != kUnowned) continue;
      std::fill(votes.begin(), votes.end(), 0);
      bool any = false;
      for (LinkId l : topo.links_at(Device::sw(SwitchId{s}))) {
        const auto [a, b] = topo.link_ends(l);
        const Device peer = (a.dev == Device::sw(SwitchId{s})) ? b.dev : a.dev;
        const std::uint32_t o = fp.owner_of(peer);
        if (o == kUnowned) continue;
        ++votes[o];
        any = true;
      }
      if (!any) continue;
      const auto best = std::max_element(votes.begin(), votes.end());
      // Only an unambiguous majority assigns; a tie means the switch is
      // equidistant (a spine/core between balanced groups) and is left for
      // the round-robin fallback so the shared layer spreads evenly instead
      // of piling onto partition 0.
      if (std::count(votes.begin(), votes.end(), *best) > 1) continue;
      fp.switch_owner[s] =
          static_cast<std::uint32_t>(best - votes.begin());
      progressed = true;
    }
  }
  // Anything still unowned is equidistant from every partition (Clos cores
  // between balanced pod groups, or fully disconnected). Round-robin by
  // index spreads that shared layer evenly.
  std::uint32_t rr = 0;
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (fp.switch_owner[s] == kUnowned) fp.switch_owner[s] = rr++ % parts;
  }

  finalize(topo, fp);
  return fp;
}

FabricPartition partition_by_host_blocks(const Topology& topo,
                                         std::uint32_t parts) {
  if (parts == 0) parts = 1;
  const auto n = static_cast<std::uint32_t>(topo.num_hosts());
  parts = std::min(parts, std::max<std::uint32_t>(n, 1));
  std::vector<std::uint32_t> owner(n);
  for (std::uint32_t h = 0; h < n; ++h) {
    // Contiguous blocks, remainder spread over the leading partitions.
    owner[h] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(h) * parts) / std::max(n, 1u));
  }
  return make_partition(topo, parts, std::move(owner));
}

FabricPartition partition_clos_pods(const Topology& topo, std::uint32_t parts,
                                    const std::vector<std::uint32_t>& host_pods,
                                    std::uint32_t num_pods) {
  if (parts == 0) parts = 1;
  if (num_pods == 0) num_pods = 1;
  parts = std::min(parts, num_pods);
  std::vector<std::uint32_t> owner(host_pods.size());
  for (std::size_t h = 0; h < host_pods.size(); ++h) {
    const std::uint32_t pod = std::min(host_pods[h], num_pods - 1);
    owner[h] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(pod) * parts) / num_pods);
  }
  return make_partition(topo, parts, std::move(owner));
}

}  // namespace sanfault::net
