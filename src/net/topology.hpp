// Static network structure: hosts, crossbar switches, full-duplex links.
//
// Topology is a pure graph — no simulated time — so it is unit-testable in
// isolation and shared by the fabric (dynamics), the mappers (discovery), and
// the benchmarks (scenario construction). Link and device up/down state lives
// here because both the fabric and the mappers must observe the same truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/ids.hpp"
#include "net/route.hpp"
#include "sim/time.hpp"

namespace sanfault::net {

/// Physical characteristics of one link. Defaults model Myrinet LAN cables:
/// 1.28 Gbit/s per direction, ~250 ns propagation (cable + SerDes).
struct LinkModel {
  double bandwidth_bps = 160.0e6;       // bytes/second, per direction
  sim::Duration latency = 250;          // ns, head propagation per traversal
};

/// Disjointness achieved by a precomputed backup route relative to its
/// primary. Hosts are single-homed, so the access links and the first/last
/// crossbar are shared by construction; the classes grade the *interior* of
/// the path (everything between the two access switches).
enum class DisjointClass : std::uint8_t {
  kNodeDisjoint,  // no interior switch and no interior link shared
  kLinkDisjoint,  // no interior link shared; interior switches may repeat
  kOverlapping,   // avoids at least one primary link, shares others
};

/// An alternate route plus the disjointness class it achieved.
struct AltRoute {
  Route route;
  DisjointClass cls = DisjointClass::kOverlapping;
};

class Topology {
 public:
  HostId add_host();
  SwitchId add_switch(std::uint8_t num_ports);

  /// Connect two ports with a full-duplex link. Each port can carry at most
  /// one link; reconnecting a used port throws.
  LinkId connect(Port a, Port b, LinkModel model = {});

  /// Remove the link from its ports (models physically unplugging a cable,
  /// used to "move" a node in the dynamic-reconfiguration experiments).
  void disconnect(LinkId l);

  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] std::uint8_t switch_ports(SwitchId s) const {
    return switches_[s.v].num_ports;
  }

  /// What is plugged into this device's port, if anything.
  struct Attachment {
    Port peer;
    LinkId link;
  };
  [[nodiscard]] std::optional<Attachment> peer_of(Port p) const;

  /// Every connected (non-disconnected) link touching this device, in port
  /// order. The fault-injection layer uses this to take a whole switch's
  /// cabling down or to find a host's access link.
  [[nodiscard]] std::vector<LinkId> links_at(Device d) const;

  /// The single link wiring a host into the fabric, if any. Downing it
  /// cleanly partitions the host (the chaos partition primitive).
  [[nodiscard]] std::optional<LinkId> host_access_link(HostId h) const {
    return hosts_.at(h.v).link;
  }

  [[nodiscard]] const LinkModel& link_model(LinkId l) const {
    return links_[l.v].model;
  }
  [[nodiscard]] std::pair<Port, Port> link_ends(LinkId l) const {
    return {links_[l.v].a, links_[l.v].b};
  }

  // --- failure state -------------------------------------------------------
  void set_link_up(LinkId l, bool up) { links_[l.v].up = up; }
  [[nodiscard]] bool link_up(LinkId l) const {
    return links_[l.v].up && !links_[l.v].disconnected;
  }
  /// A dead switch drops every packet that reaches it.
  void set_switch_up(SwitchId s, bool up) { switches_[s.v].up = up; }
  [[nodiscard]] bool switch_up(SwitchId s) const { return switches_[s.v].up; }

  // --- route helpers -------------------------------------------------------
  /// Shortest route (BFS over *currently up* links/switches) from one host to
  /// another, as the port bytes the packet must carry. nullopt if unreachable.
  [[nodiscard]] std::optional<Route> shortest_route(HostId from,
                                                    HostId to) const;

  /// Walk a route from a host; returns the device where the packet ends up
  /// (ignoring up/down state), or nullopt if it falls off the fabric
  /// (unconnected port / exhausted route at a switch / leftover route bytes).
  [[nodiscard]] std::optional<Device> trace_route(HostId from,
                                                  const Route& r) const;

  /// Device sitting at the end of a route *prefix* from `from` — unlike
  /// trace_route, running out of route bytes at a switch returns that
  /// switch. Used as the mapper's "radix oracle" (operators know their
  /// switch models; see OnDemandMapperConfig::radix_oracle).
  [[nodiscard]] std::optional<Device> device_after(HostId from,
                                                   const Route& r) const;

  /// trace_route that additionally requires every traversed link and switch
  /// to be *currently up* — nullopt when the route is broken anywhere along
  /// it. The proactive-backup layer uses this to reject stale backups before
  /// promoting them.
  [[nodiscard]] std::optional<Device> trace_route_up(HostId from,
                                                     const Route& r) const;

  /// Maximally disjoint alternate to `primary` (which must be a valid
  /// from->to route): prefer a route avoiding every interior link AND
  /// interior switch of the primary, then one avoiding only its interior
  /// links, then one avoiding at least one interior link. Ties among
  /// equal-cost choices are broken by a salt-seeded per-switch port-order
  /// permutation, so the pick is deterministic but spread across sources
  /// (the multipath trick). nullopt when the primary walk fails or every
  /// alternate would replay the primary exactly (e.g. both hosts on one
  /// crossbar).
  [[nodiscard]] std::optional<AltRoute> disjoint_route(
      HostId from, HostId to, const Route& primary, std::uint64_t salt) const;

 private:
  struct HostRec {
    std::optional<LinkId> link;  // hosts have exactly one port
  };
  struct SwitchRec {
    std::uint8_t num_ports = 0;
    bool up = true;
    std::vector<std::optional<LinkId>> port_link;
  };
  struct LinkRec {
    Port a, b;
    LinkModel model;
    bool up = true;
    bool disconnected = false;
  };

  std::optional<LinkId>& port_slot(Port p);
  [[nodiscard]] const std::optional<LinkId>* port_slot_const(Port p) const;
  [[nodiscard]] std::optional<Route> constrained_route(
      HostId from, HostId to, const std::vector<char>& link_banned,
      const std::vector<char>& switch_banned, std::uint64_t salt) const;

  std::vector<HostRec> hosts_;
  std::vector<SwitchRec> switches_;
  std::vector<LinkRec> links_;
};

/// Build the paper's Figure-2 evaluation fabric: two 16-port and two 8-port
/// full-crossbar switches in a redundant tree, with `num_hosts` hosts spread
/// across the leaf switches. Returns the switch ids in creation order
/// {sw16_a, sw16_b, sw8_a, sw8_b}.
struct Figure2Fabric {
  Topology topo;
  std::vector<HostId> hosts;
  SwitchId sw16_a, sw16_b, sw8_a, sw8_b;
};
Figure2Fabric make_figure2_fabric(std::size_t num_hosts);

/// k-ary folded-Clos (fat-tree) fabric: k pods of k/2 edge + k/2 aggregation
/// crossbars, with a configurable-size spine layer on top. This is the
/// scale-out fabric the 64/128-host experiments run on — path distances are
/// 1 switch (same edge), 3 (same pod), 5 (cross-pod), and every cross-pod
/// pair has `core_group_size` equal-cost paths per aggregation choice.
struct ClosConfig {
  /// Pod radix; must be even and >= 2. k = 8 yields the canonical 128-host
  /// fat-tree (32 edge + 32 agg + 16 core switches at full redundancy).
  std::size_t k = 8;
  /// Hosts to attach, round-robin across the edge switches (consecutive
  /// host ids land in different pods). 0 = fully populate (k^3 / 4).
  std::size_t num_hosts = 0;
  /// Spine redundancy: cores each aggregation switch uplinks to. Every agg
  /// at pod position j connects to its own group of this many cores, so the
  /// spine has k/2 * core_group_size switches. 0 = k/2 (full fat-tree).
  std::size_t core_group_size = 0;
  LinkModel link = {};
};

/// Switch creation order: all cores first (so SwitchId 0 is a spine switch —
/// chaos scenarios address switches by raw index), then per pod the k/2
/// aggs followed by the k/2 edges. Edge ports [0, k/2) are uplinks; hosts
/// sit on ports k/2 and up.
struct ClosFabric {
  Topology topo;
  std::vector<HostId> hosts;
  std::vector<SwitchId> cores;
  std::vector<SwitchId> aggs;   // pod-major: aggs[pod * k/2 + j]
  std::vector<SwitchId> edges;  // pod-major: edges[pod * k/2 + e]
  ClosConfig cfg;               // normalized (num_hosts/core_group_size set)
};
ClosFabric make_clos_fabric(ClosConfig cfg = {});

/// Canonical benchmark shapes, addressable by name so benches, tests and
/// scripts agree on exactly one geometry per label:
///   clos-64   k=8,  64 hosts   (partially-populated 8-ary tree)
///   clos-128  k=8,  128 hosts  (fully-populated:  k^3/4)
///   clos-256  k=16, 256 hosts  (quarter-populated 16-ary tree, 320 switches)
///   clos-1024 k=16, 1024 hosts (fully-populated 16-ary tree)
/// nullopt for unknown names.
[[nodiscard]] std::optional<ClosConfig> clos_named_shape(std::string_view name);

}  // namespace sanfault::net
