// Fabric: the dynamic transport over a Topology.
//
// Models Myrinet-style source-routed wormhole transport as virtual
// cut-through: a packet occupies each directed link for its serialization
// time (so contention on shared links is accounted exactly), while its head
// races ahead one hop per (link latency + switch fall-through). Total
// uncontended transfer time is therefore
//     sum_hops(latency + switch_delay) + serialization_once
// which is the wormhole pipeline formula.
//
// Failure surface (what §3.3 of the paper enumerates):
//  * hardware packet corruption  -> per-link corrupt probability; the CRC
//    computed at injection no longer matches at the receiver
//  * hardware packet loss        -> per-link loss probability
//  * blocked path / deadlock     -> a Blocked link holds the packet for the
//    hardware deadlock-timeout, then the path reset drops it
//  * permanent failures          -> downed links / dead switches drop packets
// Send-side deterministic dropping (the paper's §5.1.3 error-injection
// methodology) lives in the firmware layer, not here.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/server.hpp"
#include "sim/time.hpp"

namespace sanfault::sim {
class ParallelScheduler;  // sim/parallel_scheduler.hpp
}  // namespace sanfault::sim

namespace sanfault::net {

struct FabricConfig {
  /// Per-switch head fall-through latency (full crossbar).
  sim::Duration switch_delay = 300;
  /// Myrinet's user-configurable deadlock/blocked-path timer (62.5 ms - 4 s);
  /// a packet entering a Blocked link is dropped after this long.
  sim::Duration deadlock_timeout = sim::milliseconds(62);
  /// Seed for the fabric's fault RNG stream.
  std::uint64_t seed = 1;
};

/// Why a packet never reached its destination (for stats and tracing).
enum class DropReason : std::uint8_t {
  kLinkDown,
  kSwitchDead,
  kMisroute,       // fell off the fabric: bad port / route size mismatch
  kRandomLoss,     // transient hardware loss
  kPathReset,      // blocked path, dropped by the hardware deadlock timer
  kNotAttached,    // destination host has no receiver attached
};

struct FabricStats {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_corrupt = 0;  // delivered but failing CRC
  std::uint64_t corruptions_injected = 0;  // link fault flipped payload bits
  std::uint64_t duplicates_injected = 0;   // link fault cloned a traversal
  std::uint64_t reorders_injected = 0;     // link fault delayed a traversal
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_switch_dead = 0;
  std::uint64_t dropped_misroute = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_path_reset = 0;
  std::uint64_t dropped_unattached = 0;

  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_link_down + dropped_switch_dead + dropped_misroute +
           dropped_random + dropped_path_reset + dropped_unattached;
  }
};

/// Transient fault knobs, per link. Probabilities are evaluated once per
/// packet per link traversal — and only when nonzero, so enabling a knob on
/// one link never perturbs the RNG sequence other links observe.
struct LinkFaults {
  double corrupt_prob = 0.0;
  double loss_prob = 0.0;
  /// Duplication: a second identical copy follows the first down this link
  /// and the two traverse the rest of the fabric independently (models
  /// retry-capable link layers re-sending an already-delivered frame).
  double dup_prob = 0.0;
  /// Reordering: this traversal's arrival is delayed by reorder_delay, so
  /// packets serialized behind it overtake it.
  double reorder_prob = 0.0;
  sim::Duration reorder_delay = sim::microseconds(10);
  bool blocked = false;  // wormhole-blocked (e.g. deadlocked path)
};

/// A fault-state transition applied through the fabric's fault API below.
/// The chaos campaign engine (src/chaos) drives these; observers (recovery
/// monitors, tests) subscribe via Fabric::set_fault_hook.
enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
  kHostCut,    // host's access link downed (network partition of that host)
  kHostHeal,
  kFaultRates, // per-link loss/corrupt probabilities changed
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

/// FaultEvent::id value meaning "every link" for kFaultRates.
inline constexpr std::uint32_t kAllLinks = 0xffffffffu;

struct FaultEvent {
  FaultKind kind;
  std::uint32_t id = 0;    // link / switch / host index, per kind
  double loss = 0.0;       // kFaultRates only
  double corrupt = 0.0;    // kFaultRates only
};

/// The coordinated fault surface the chaos campaign engine drives. Fabric
/// implements it directly; the parallel harness implements it as a fan-out
/// over fabric shards (mutating shared topology once, mirroring per-shard
/// fault knobs) so a Scenario runs unchanged against either engine.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual void fail_link(LinkId l) = 0;
  virtual void restore_link(LinkId l) = 0;
  /// A dead switch drops every packet that reaches it (all its routes die).
  virtual void fail_switch(SwitchId s) = 0;
  virtual void restore_switch(SwitchId s) = 0;
  /// Partition a host: down its single access link. heal_host reverses it.
  virtual void cut_host(HostId h) = 0;
  virtual void heal_host(HostId h) = 0;
  /// Set transient loss/corruption rates on one link, or on every link when
  /// `l` is nullopt (the error-rate-ramp primitive).
  virtual void set_link_fault_rates(std::optional<LinkId> l, double loss,
                                    double corrupt) = 0;
};

struct FabricPartition;  // net/partition.hpp

class Fabric : public FaultInjector {
 public:
  using RxHandler = std::function<void(Packet&&)>;
  using DropHook = std::function<void(const Packet&, DropReason)>;

  Fabric(sim::Scheduler& sched, Topology& topo, FabricConfig cfg = {});
  ~Fabric();

  /// Register the receive handler for a host NIC. Called with fully-arrived
  /// packets (tail on the wire has arrived); CRC checking is the NIC's job.
  void attach(HostId h, RxHandler rx);

  /// Inject a packet from `src`'s NIC. The packet must carry its route; the
  /// CRC over the payload is computed here, as the network send-DMA does.
  /// Returns the time the packet's tail leaves the first link — i.e. when
  /// the send DMA finishes, including queueing behind earlier injections.
  /// Protocols use this as the send timestamp so that retransmission timers
  /// self-clock to actual wire drainage (real MCPs block on the send DMA).
  /// Packets dropped before reaching the wire return now().
  sim::Time inject(HostId src, Packet pkt);

  /// Optional observer for every drop (tracing / tests).
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Optional observer for every delivery, invoked just before the receive
  /// handler (tracing / tests).
  using DeliveryHook = std::function<void(const Packet&, HostId)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }

  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] Topology& topology() { return *topo_; }

  LinkFaults& link_faults(LinkId l) { return link_faults_[l.v]; }

  // --- fault surface -------------------------------------------------------
  // Coordinated fault-state mutations: each applies the change to the
  // topology (or the per-link fault knobs) and notifies the fault hook, so
  // every observer sees the same transition at the same simulated instant.
  // Packets already in flight are unaffected until they next touch the
  // failed element — exactly how a dying cable behaves.
  void set_fault_hook(std::function<void(const FaultEvent&)> hook) {
    fault_hook_ = std::move(hook);
  }
  void fail_link(LinkId l) override;
  void restore_link(LinkId l) override;
  void fail_switch(SwitchId s) override;
  void restore_switch(SwitchId s) override;
  void cut_host(HostId h) override;
  void heal_host(HostId h) override;
  void set_link_fault_rates(std::optional<LinkId> l, double loss,
                            double corrupt) override;
  /// Update this shard's per-link fault knobs without counting a transition
  /// or notifying hooks — the sharded fault fan-out applies the "real"
  /// set_link_fault_rates to one shard and mirrors the knobs to the rest, so
  /// the merged fabric.fault_transitions counter matches a serial run.
  void mirror_link_fault_rates(std::optional<LinkId> l, double loss,
                               double corrupt);
  /// Fault transitions applied through this API (not per-packet faults).
  [[nodiscard]] std::uint64_t fault_transitions() const {
    return fault_transitions_;
  }

  // --- parallel sharding ---------------------------------------------------
  /// Turn this fabric into shard `partition` of a partitioned simulation:
  /// `shards[p]` is the fabric built on engine partition p's scheduler (all
  /// over the one shared Topology). After binding, a packet hop whose next
  /// device is owned by another partition is handed off through
  /// engine.post() — arriving with its full wormhole pipeline timing — and
  /// executes on the owning shard, so every per-link server, fault knob and
  /// stats counter is touched only by its owner's worker thread. `map` and
  /// `shards` must outlive the fabric.
  void bind_shard(sim::ParallelScheduler& engine, std::uint32_t partition,
                  const FabricPartition& map,
                  const std::vector<Fabric*>& shards);

  /// Occupancy server for one direction of a link (exposed for tests and
  /// utilization reporting). dir 0: a->b, dir 1: b->a.
  [[nodiscard]] const sim::FifoServer& link_server(LinkId l, int dir) const {
    return dir == 0 ? link_srv_[l.v].ab : link_srv_[l.v].ba;
  }

 private:
  struct LinkServers {
    sim::FifoServer ab;
    sim::FifoServer ba;
    explicit LinkServers(sim::Scheduler& s) : ab(s), ba(s) {}
  };

  void ensure_link_state();
  void notify_fault(const FaultEvent& ev);
  void step(Packet pkt, Device at, std::size_t route_idx);
  void drop(const Packet& pkt, DropReason reason);
  void deliver(Packet&& pkt, HostId dst);
  /// Tail arrival at the destination host (shared by the local path and the
  /// cross-shard handoff): misroute check, then delivery.
  void arrive_host(Packet pkt, Device peer, std::size_t route_idx);
  /// Schedule `fn` at `t` — locally, or through the parallel engine when the
  /// continuation's device is owned by another shard.
  void schedule_hop(Device next_dev, sim::Time t, sim::Scheduler::EventFn fn);

  /// Returns the serialization duration of `pkt` on a link.
  [[nodiscard]] sim::Duration ser_time(const Packet& pkt, LinkId l) const;

  sim::Scheduler& sched_;
  Topology* topo_;
  FabricConfig cfg_;
  /// One fault-RNG stream per link *direction*, derived from (seed, link,
  /// dir). Draws on one link never perturb another's sequence — and because
  /// a direction's draw order is its FIFO traversal order, the streams are
  /// identical whether the simulation runs serial or partitioned.
  struct LinkRngs {
    sim::Rng ab;
    sim::Rng ba;
  };
  std::vector<LinkRngs> link_rng_;
  std::vector<RxHandler> rx_;
  std::vector<LinkServers> link_srv_;
  std::vector<LinkFaults> link_faults_;
  FabricStats stats_;
  DropHook drop_hook_;
  DeliveryHook delivery_hook_;
  std::function<void(const FaultEvent&)> fault_hook_;
  std::uint64_t fault_transitions_ = 0;
  obs::TraceRing* trace_ = nullptr;  // packet-lifecycle hop/drop events
  std::uint64_t next_wire_id_ = 1;
  // Shard binding (null when serial — the common case).
  sim::ParallelScheduler* engine_ = nullptr;
  std::uint32_t partition_ = 0;
  const FabricPartition* part_map_ = nullptr;
  const std::vector<Fabric*>* shards_ = nullptr;
  /// Set by step() on the injection hop (hosts do not forward, so the first
  /// synchronous step call is the only host-originated one).
  sim::Time last_departure_ = 0;
};

}  // namespace sanfault::net
