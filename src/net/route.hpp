// Source routes, Myrinet-style.
//
// A route is the sequence of output-port numbers the packet's header carries;
// each crossbar switch on the path consumes one byte and forwards the packet
// out that port. Hosts consume nothing — a packet arriving at a host with
// unconsumed route bytes was misrouted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sanfault::net {

struct Route {
  std::vector<std::uint8_t> ports;

  [[nodiscard]] std::size_t hops() const { return ports.size(); }
  [[nodiscard]] bool empty() const { return ports.empty(); }
  /// Bytes this route occupies in the packet header on the wire.
  [[nodiscard]] std::size_t wire_bytes() const { return ports.size(); }

  bool operator==(const Route&) const = default;

  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < ports.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(static_cast<int>(ports[i]));
    }
    return s + "]";
  }
};

}  // namespace sanfault::net
