// Topology partitioning for the parallel simulator.
//
// A FabricPartition splits one Topology's devices into P ownership classes
// (logical processes for sim::ParallelScheduler). Partitioning is a pure
// graph computation — no simulated time — and the result is consumed by two
// layers:
//  * the fabric shards (net::Fabric::bind_shard): a packet hop whose next
//    device belongs to another partition is posted through the parallel
//    engine instead of scheduled locally;
//  * the engine's lookahead matrix: for each ordered partition pair, the
//    minimum total latency over any (multi-hop) path of cut links bounds how
//    soon an event in one partition can affect the other, which is what makes
//    conservative safe-window execution possible (see
//    sim/parallel_scheduler.hpp). The matrix is the min-plus closure of the
//    direct-cut-link minima — direct minima alone are unsound when the
//    partition graph is not a clique.
//
// Both builders are deterministic functions of (topology, part count) — the
// parallel engine's bit-reproducibility contract starts here.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace sanfault::net {

struct FabricPartition {
  std::uint32_t count = 1;
  std::vector<std::uint32_t> host_owner;    // by HostId
  std::vector<std::uint32_t> switch_owner;  // by SwitchId
  /// Minimum cut-path latency (min-plus closure over cut links),
  /// [from * count + to]; sim::kNever when no cut path joins the pair.
  std::vector<sim::Duration> lookahead;
  std::uint32_t cut_links = 0;  // links whose ends differ in owner

  [[nodiscard]] std::uint32_t owner_of(Device d) const {
    return d.is_host() ? host_owner[d.as_host().v]
                       : switch_owner[d.as_switch().v];
  }
  [[nodiscard]] sim::Duration pair_lookahead(std::uint32_t from,
                                             std::uint32_t to) const {
    return lookahead[from * count + to];
  }
};

/// Partition from an explicit host assignment (values must be < parts).
/// Switch owners are derived by deterministic majority propagation: starting
/// from the hosts, every switch repeatedly takes the most common owner among
/// its already-assigned neighbors (ties to the lowest partition id); switches
/// equidistant from everything — e.g. Clos cores — fall back to round-robin
/// by switch index. This keeps each edge/aggregation switch with its hosts'
/// partition so that intra-partition traffic never crosses a cut link.
FabricPartition make_partition(const Topology& topo,
                               std::uint32_t parts,
                               std::vector<std::uint32_t> host_owner);

/// Hosts split into `parts` contiguous blocks by host id. The right default
/// for host-locality workloads on single-switch / figure-2 fabrics.
FabricPartition partition_by_host_blocks(const Topology& topo,
                                         std::uint32_t parts);

/// Pod-aligned Clos partitioning: pods are split into `parts` contiguous
/// groups and every host follows its pod (host_pods[i] = pod of host i, as
/// the harness computes it). Cut links are then exactly the agg<->core
/// trunks, whose latency is the engine's lookahead.
FabricPartition partition_clos_pods(const Topology& topo,
                                    std::uint32_t parts,
                                    const std::vector<std::uint32_t>& host_pods,
                                    std::uint32_t num_pods);

}  // namespace sanfault::net
