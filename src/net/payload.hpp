// Immutable, refcounted payload buffer.
//
// A packet's payload bytes used to live in a std::vector that was deep-copied
// at every fabric hop closure, every retransmission-queue entry and every
// delivery — for a 4 KB segment that is kilobytes of memcpy plus a heap
// allocation per copy. PayloadRef shares one immutable buffer instead: a copy
// is a refcount bump. The bytes are never mutated in place; the fabric's
// fault injection goes through corrupted(), which copies-on-write (corruption
// is rare, copies per transmission are not).
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

namespace sanfault::net {

class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : buf_(bytes.empty() ? nullptr
                           : std::make_shared<const std::vector<std::uint8_t>>(
                                 std::move(bytes))) {}
  PayloadRef(std::initializer_list<std::uint8_t> bytes)
      : PayloadRef(std::vector<std::uint8_t>(bytes)) {}

  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ ? buf_->data() : nullptr;
  }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + size(); }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[i]; }

  operator std::span<const std::uint8_t>() const {  // NOLINT(google-explicit-constructor)
    return {data(), size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const { return *this; }

  // Vector-flavored builders, so call sites composing payloads stay idiomatic.
  void assign(std::size_t n, std::uint8_t value) {
    *this = PayloadRef(std::vector<std::uint8_t>(n, value));
  }
  template <class It>
  void assign(It first, It last) {
    *this = PayloadRef(std::vector<std::uint8_t>(first, last));
  }
  void clear() { buf_.reset(); }

  /// Deep copy into a fresh mutable vector.
  [[nodiscard]] std::vector<std::uint8_t> to_vector() const {
    return {begin(), end()};
  }

  /// A new payload sharing nothing with this one, with byte `i` XORed by
  /// `mask` — the fault injector's copy-on-write path.
  [[nodiscard]] PayloadRef corrupted(std::size_t i, std::uint8_t mask) const {
    std::vector<std::uint8_t> copy(begin(), end());
    copy[i] ^= mask;
    return PayloadRef(std::move(copy));
  }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.buf_ == b.buf_ ||
           std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const PayloadRef& a,
                         const std::vector<std::uint8_t>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> buf_;
};

}  // namespace sanfault::net
