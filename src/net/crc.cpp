#include "net/crc.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace sanfault::net {

namespace {

// kTables[0] is the classic CRC table; kTables[k][b] extends a CRC by k zero
// bytes after byte b, which is what lets eight lookups process eight bytes
// independently of each other (no serial 8-step dependency chain per byte).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr auto kTables = make_tables();
constexpr const auto& kTable = kTables[0];

}  // namespace

std::uint32_t crc32_update_reference(std::uint32_t state,
                                     std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    state = kTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  // Scalar bytes up to 8-byte alignment, so the wide loads below are aligned.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    state = kTable[(state ^ *p++) & 0xFFu] ^ (state >> 8);
    --n;
  }

  // Slice-by-8: XOR the CRC into the low word of each 8-byte chunk, then
  // eight independent table lookups fold the whole chunk at once.
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    if constexpr (std::endian::native == std::endian::big) {
      chunk = __builtin_bswap64(chunk);
    }
    chunk ^= state;
    state = kTables[7][chunk & 0xFFu] ^
            kTables[6][(chunk >> 8) & 0xFFu] ^
            kTables[5][(chunk >> 16) & 0xFFu] ^
            kTables[4][(chunk >> 24) & 0xFFu] ^
            kTables[3][(chunk >> 32) & 0xFFu] ^
            kTables[2][(chunk >> 40) & 0xFFu] ^
            kTables[1][(chunk >> 48) & 0xFFu] ^
            kTables[0][(chunk >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }

  while (n > 0) {
    state = kTable[(state ^ *p++) & 0xFFu] ^ (state >> 8);
    --n;
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

}  // namespace sanfault::net
