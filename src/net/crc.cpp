#include "net/crc.hpp"

#include <array>

namespace sanfault::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    state = kTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_update(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

}  // namespace sanfault::net
