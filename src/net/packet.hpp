// Wire packet representation.
//
// One struct serves every layer: the fabric reads the route, the reliability
// firmware reads type/seq/ack/generation/flags, and VMMC reads the UserHeader
// words. Payload bytes are carried for real (applications move actual data
// through the simulated network); the CRC is computed over them at injection
// exactly as the Myrinet network DMA does.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <iterator>
#include <stdexcept>

#include "net/ids.hpp"
#include "net/payload.hpp"
#include "net/route.hpp"

namespace sanfault::net {

enum class PacketType : std::uint8_t {
  kData = 0,       // VMMC data segment
  kAck,            // explicit cumulative acknowledgment
  kProbeHost,      // mapper: "is there a host at the end of this route?"
  kProbeSwitch,    // mapper: loopback probe detecting a switch
  kProbeReply,     // reply to either probe
  kControl,        // SVM/app-level control message (lock, barrier, ...)
};

/// Flag bits in PacketHeader::flags.
enum PacketFlags : std::uint8_t {
  kFlagAckRequest = 1u << 0,  // sender-based feedback: receiver must ACK now
  kFlagPiggyAck = 1u << 1,    // header's ack field is meaningful
  kFlagRetransmit = 1u << 2,  // this is a retransmission (for tracing)
};

/// Four opaque 64-bit words for the layer above the firmware (VMMC puts
/// import id / offset / message id / total length here). The firmware and
/// fabric never interpret them.
struct UserHeader {
  std::uint64_t w0 = 0, w1 = 0, w2 = 0, w3 = 0;
  bool operator==(const UserHeader&) const = default;
};

struct PacketHeader {
  HostId src;
  HostId dst;
  PacketType type = PacketType::kData;
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;        // sender sequence number (per src->dst pair)
  std::uint32_t ack = 0;        // cumulative ack (all seq <= ack received)
  std::uint16_t generation = 0; // route generation of the src->dst direction
  std::uint16_t ack_gen = 0;    // generation the ack field refers to
                                // (the dst->src... i.e. acked direction)
  Route route;
  UserHeader user;
};

/// Fixed wire overhead besides route bytes and payload: type/flags/seq/ack/
/// generation/src (as in the VMMC packet format) plus the 32-bit CRC the
/// network DMA appends.
inline constexpr std::size_t kHeaderWireBytes = 20;
inline constexpr std::size_t kCrcWireBytes = 4;

/// Fixed-capacity inline port list: a packet crosses at most as many switches
/// as the network diameter (<= 5 in every topology this repo models), so the
/// per-hop entry-port record fits in one 16-byte word — copying a Packet then
/// never allocates for it. Overflow throws: a route longer than the capacity
/// is a modeling bug, not a degradation to tolerate silently.
class InPortList {
 public:
  using const_iterator = const std::uint8_t*;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  void push_back(std::uint8_t port) {
    if (size_ == kCapacity) {
      throw std::length_error("Packet in_ports overflow (route too deep)");
    }
    v_[size_++] = port;
  }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return v_[i]; }

  [[nodiscard]] const_iterator begin() const { return v_.data(); }
  [[nodiscard]] const_iterator end() const { return v_.data() + size_; }
  [[nodiscard]] const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  [[nodiscard]] const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  friend bool operator==(const InPortList& a, const InPortList& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  static constexpr std::size_t kCapacity = 15;
  std::uint8_t size_ = 0;
  std::array<std::uint8_t, kCapacity> v_{};
};

struct Packet {
  PacketHeader hdr;
  /// Refcounted immutable bytes: copying a Packet (hop closures, the
  /// retransmission queue) shares the buffer instead of duplicating it.
  PayloadRef payload;

  // --- set by the fabric / injection path ---
  std::uint32_t crc = 0;         // CRC32 over payload, computed at injection
  bool corrupt_marker = false;   // forces CRC mismatch for empty payloads
  std::uint64_t wire_id = 0;     // unique per injection, for tracing
  /// Ports through which the packet *entered* each switch, appended hop by
  /// hop. Reversing this gives the exact return route — the information the
  /// real Myrinet mapper reconstructs with loop-back probes; recording it on
  /// the packet is a modeling simplification that preserves probe counts and
  /// timing for host probes (switch detection still pays for its guesses).
  InPortList in_ports;

  [[nodiscard]] std::size_t payload_bytes() const { return payload.size(); }
  [[nodiscard]] std::size_t wire_bytes() const {
    return kHeaderWireBytes + hdr.route.wire_bytes() + payload.size() +
           kCrcWireBytes;
  }
};

}  // namespace sanfault::net
