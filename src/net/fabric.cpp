#include "net/fabric.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "net/crc.hpp"
#include "net/partition.hpp"
#include "sim/parallel_scheduler.hpp"

namespace sanfault::net {

Fabric::Fabric(sim::Scheduler& sched, Topology& topo, FabricConfig cfg)
    : sched_(sched), topo_(&topo), cfg_(cfg) {
  rx_.resize(topo.num_hosts());
  ensure_link_state();

  obs::Registry& reg = obs::Registry::of(sched_);
  trace_ = &reg.trace();
  reg.add_collector(this, [this, &reg] {
    const FabricStats& s = stats_;
    reg.counter("fabric.injected", "packets").set(s.injected);
    reg.counter("fabric.delivered", "packets").set(s.delivered);
    reg.counter("fabric.delivered_corrupt", "packets")
        .set(s.delivered_corrupt);
    reg.counter("fabric.corruptions_injected", "packets")
        .set(s.corruptions_injected);
    reg.counter("fabric.duplicates_injected", "packets")
        .set(s.duplicates_injected);
    reg.counter("fabric.reorders_injected", "packets")
        .set(s.reorders_injected);
    reg.counter("fabric.dropped_link_down", "packets")
        .set(s.dropped_link_down);
    reg.counter("fabric.dropped_switch_dead", "packets")
        .set(s.dropped_switch_dead);
    reg.counter("fabric.dropped_misroute", "packets")
        .set(s.dropped_misroute);
    reg.counter("fabric.dropped_random", "packets").set(s.dropped_random);
    reg.counter("fabric.dropped_path_reset", "packets")
        .set(s.dropped_path_reset);
    reg.counter("fabric.dropped_unattached", "packets")
        .set(s.dropped_unattached);
    reg.counter("fabric.fault_transitions", "events").set(fault_transitions_);
    // Per-link utilization: the FifoServer's exact busy-time accounting,
    // exported per direction so trunk asymmetries are visible.
    for (std::size_t l = 0; l < link_srv_.size(); ++l) {
      const std::string ab = "{link=" + std::to_string(l) + ",dir=ab}";
      const std::string ba = "{link=" + std::to_string(l) + ",dir=ba}";
      reg.counter("fabric.link_busy_ns" + ab, "ns")
          .set(static_cast<std::uint64_t>(link_srv_[l].ab.busy_time()));
      reg.counter("fabric.link_busy_ns" + ba, "ns")
          .set(static_cast<std::uint64_t>(link_srv_[l].ba.busy_time()));
      reg.counter("fabric.link_pkts" + ab, "packets")
          .set(link_srv_[l].ab.jobs_served());
      reg.counter("fabric.link_pkts" + ba, "packets")
          .set(link_srv_[l].ba.jobs_served());
    }
  });
}

Fabric::~Fabric() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kSwitchDown: return "switch_down";
    case FaultKind::kSwitchUp: return "switch_up";
    case FaultKind::kHostCut: return "host_cut";
    case FaultKind::kHostHeal: return "host_heal";
    case FaultKind::kFaultRates: return "fault_rates";
  }
  return "?";
}

void Fabric::notify_fault(const FaultEvent& ev) {
  ++fault_transitions_;
  if (fault_hook_) fault_hook_(ev);
}

void Fabric::fail_link(LinkId l) {
  topo_->set_link_up(l, false);
  notify_fault(FaultEvent{FaultKind::kLinkDown, l.v});
}

void Fabric::restore_link(LinkId l) {
  topo_->set_link_up(l, true);
  notify_fault(FaultEvent{FaultKind::kLinkUp, l.v});
}

void Fabric::fail_switch(SwitchId s) {
  topo_->set_switch_up(s, false);
  notify_fault(FaultEvent{FaultKind::kSwitchDown, s.v});
}

void Fabric::restore_switch(SwitchId s) {
  topo_->set_switch_up(s, true);
  notify_fault(FaultEvent{FaultKind::kSwitchUp, s.v});
}

void Fabric::cut_host(HostId h) {
  if (auto l = topo_->host_access_link(h)) topo_->set_link_up(*l, false);
  notify_fault(FaultEvent{FaultKind::kHostCut, h.v});
}

void Fabric::heal_host(HostId h) {
  if (auto l = topo_->host_access_link(h)) topo_->set_link_up(*l, true);
  notify_fault(FaultEvent{FaultKind::kHostHeal, h.v});
}

void Fabric::mirror_link_fault_rates(std::optional<LinkId> l, double loss,
                                     double corrupt) {
  ensure_link_state();
  const std::uint32_t first = l ? l->v : 0;
  const std::uint32_t last =
      l ? l->v + 1 : static_cast<std::uint32_t>(link_faults_.size());
  for (std::uint32_t i = first; i < last; ++i) {
    link_faults_[i].loss_prob = loss;
    link_faults_[i].corrupt_prob = corrupt;
  }
}

void Fabric::set_link_fault_rates(std::optional<LinkId> l, double loss,
                                  double corrupt) {
  mirror_link_fault_rates(l, loss, corrupt);
  notify_fault(
      FaultEvent{FaultKind::kFaultRates, l ? l->v : kAllLinks, loss, corrupt});
}

void Fabric::bind_shard(sim::ParallelScheduler& engine, std::uint32_t partition,
                        const FabricPartition& map,
                        const std::vector<Fabric*>& shards) {
  engine_ = &engine;
  partition_ = partition;
  part_map_ = &map;
  shards_ = &shards;
  ensure_link_state();
}

void Fabric::ensure_link_state() {
  while (link_srv_.size() < topo_->num_links()) {
    const auto l = static_cast<std::uint64_t>(link_srv_.size());
    link_srv_.emplace_back(sched_);
    link_faults_.emplace_back();
    // Stream seeds are a pure function of (experiment seed, link, direction),
    // so a shard and a serial fabric derive identical streams for any link.
    link_rng_.push_back(
        LinkRngs{sim::Rng(cfg_.seed ^ ((2 * l + 1) * 0x9e3779b97f4a7c15ull)),
                 sim::Rng(cfg_.seed ^ ((2 * l + 2) * 0x9e3779b97f4a7c15ull))});
  }
  if (rx_.size() < topo_->num_hosts()) rx_.resize(topo_->num_hosts());
}

void Fabric::attach(HostId h, RxHandler rx) {
  ensure_link_state();
  rx_.at(h.v) = std::move(rx);
}

sim::Duration Fabric::ser_time(const Packet& pkt, LinkId l) const {
  return sim::transfer_time(pkt.wire_bytes(),
                            topo_->link_model(l).bandwidth_bps);
}

void Fabric::drop(const Packet& pkt, DropReason reason) {
  switch (reason) {
    case DropReason::kLinkDown: ++stats_.dropped_link_down; break;
    case DropReason::kSwitchDead: ++stats_.dropped_switch_dead; break;
    case DropReason::kMisroute: ++stats_.dropped_misroute; break;
    case DropReason::kRandomLoss: ++stats_.dropped_random; break;
    case DropReason::kPathReset: ++stats_.dropped_path_reset; break;
    case DropReason::kNotAttached: ++stats_.dropped_unattached; break;
  }
  if (trace_->enabled()) {
    trace_->emit(obs::TraceEvent{
        sched_.now(), pkt.hdr.src.v, pkt.hdr.dst.v, pkt.hdr.seq,
        static_cast<std::uint32_t>(reason), pkt.hdr.generation, 0,
        obs::TraceKind::kFabricDrop});
  }
  if (drop_hook_) drop_hook_(pkt, reason);
}

void Fabric::deliver(Packet&& pkt, HostId dst) {
  if (dst.v >= rx_.size() || !rx_[dst.v]) {
    drop(pkt, DropReason::kNotAttached);
    return;
  }
  ++stats_.delivered;
  const bool ok =
      !pkt.corrupt_marker &&
      crc32(std::span<const std::uint8_t>(pkt.payload)) == pkt.crc;
  if (!ok) ++stats_.delivered_corrupt;
  if (delivery_hook_) delivery_hook_(pkt, dst);
  rx_[dst.v](std::move(pkt));
}

void Fabric::arrive_host(Packet pkt, Device peer, std::size_t route_idx) {
  if (route_idx != pkt.hdr.route.ports.size()) {
    drop(pkt, DropReason::kMisroute);
  } else {
    deliver(std::move(pkt), peer.as_host());
  }
}

void Fabric::schedule_hop(Device next_dev, sim::Time t,
                          sim::Scheduler::EventFn fn) {
  if (engine_ != nullptr) {
    const std::uint32_t owner = part_map_->owner_of(next_dev);
    if (owner != partition_) {
      engine_->post(partition_, owner, t, std::move(fn));
      return;
    }
  }
  sched_.at(t, std::move(fn));
}

sim::Time Fabric::inject(HostId src, Packet pkt) {
  ensure_link_state();
  if (engine_ != nullptr && part_map_->host_owner[src.v] != partition_) {
    throw std::logic_error("Fabric::inject: host " + std::to_string(src.v) +
                           " injected on shard " + std::to_string(partition_) +
                           " but is owned by partition " +
                           std::to_string(part_map_->host_owner[src.v]));
  }
  pkt.crc = crc32(std::span<const std::uint8_t>(pkt.payload));
  pkt.corrupt_marker = false;
  pkt.wire_id = next_wire_id_++;
  ++stats_.injected;
  last_departure_ = sched_.now();  // drops before the wire depart "now"
  step(std::move(pkt), Device::host(src), 0);
  return last_departure_;
}

// Precondition: the packet head is at `at` and ready to leave it now.
void Fabric::step(Packet pkt, Device at, std::size_t route_idx) {
  Port out;
  if (at.is_host()) {
    out = Port{at, 0};
  } else {
    if (!topo_->switch_up(at.as_switch())) {
      drop(pkt, DropReason::kSwitchDead);
      return;
    }
    if (route_idx >= pkt.hdr.route.ports.size()) {
      drop(pkt, DropReason::kMisroute);
      return;
    }
    const std::uint8_t p = pkt.hdr.route.ports[route_idx++];
    if (p >= topo_->switch_ports(at.as_switch())) {
      drop(pkt, DropReason::kMisroute);
      return;
    }
    out = Port{at, p};
  }

  const auto att = topo_->peer_of(out);
  if (!att) {
    drop(pkt, DropReason::kMisroute);
    return;
  }
  const LinkId l = att->link;
  if (!topo_->link_up(l)) {
    drop(pkt, DropReason::kLinkDown);
    return;
  }

  const LinkModel& model = topo_->link_model(l);
  auto [end_a, end_b] = topo_->link_ends(l);
  const bool fwd = (end_a == out);
  sim::FifoServer& srv = fwd ? link_srv_[l.v].ab : link_srv_[l.v].ba;
  // Fault draws come from this direction's own stream, in traversal order —
  // independent of how unrelated events interleave, and identical between a
  // serial run and the partition that owns this direction.
  sim::Rng& rng = fwd ? link_rng_[l.v].ab : link_rng_[l.v].ba;
  const Device peer = att->peer.dev;

  LinkFaults& lf = link_faults_[l.v];
  if (lf.blocked) {
    // Wormhole blocking: the packet head sits in the fabric until the
    // hardware deadlock timer fires and the path reset flushes it.
    sched_.after(cfg_.deadlock_timeout,
                 [this, pkt = std::move(pkt)] {
                   drop(pkt, DropReason::kPathReset);
                 });
    return;
  }
  if (lf.loss_prob > 0.0 && rng.bernoulli(lf.loss_prob)) {
    drop(pkt, DropReason::kRandomLoss);
    return;
  }
  if (lf.corrupt_prob > 0.0 && rng.bernoulli(lf.corrupt_prob)) {
    if (!pkt.payload.empty()) {
      // Copy-on-write: payload buffers are shared between the wire copy and
      // the sender's retransmission queue, so corrupt a private copy.
      pkt.payload =
          pkt.payload.corrupted(rng.uniform(pkt.payload.size()), 0x5A);
    }
    // Header/route corruption and empty payloads are caught by the marker:
    // the receiver's CRC check is forced to fail.
    pkt.corrupt_marker = true;
    ++stats_.corruptions_injected;
  }

  // Duplication / reordering injection (property-test fault knobs). Guarded
  // on the probabilities so zero-prob links draw nothing — existing seeded
  // runs stay byte-identical.
  int copies = 1;
  if (lf.dup_prob > 0.0 && rng.bernoulli(lf.dup_prob)) {
    copies = 2;
    ++stats_.duplicates_injected;
  }
  sim::Duration reorder_extra = 0;
  if (lf.reorder_prob > 0.0 && rng.bernoulli(lf.reorder_prob)) {
    reorder_extra = lf.reorder_delay;
    ++stats_.reorders_injected;
  }

  for (int ci = 0; ci < copies; ++ci) {
    // The duplicate occupies the link for its own serialization slot and
    // then traverses independently (re-drawing downstream faults).
    Packet p = (ci + 1 < copies) ? pkt : std::move(pkt);
    const sim::Duration ser = ser_time(p, l);
    const sim::Time completion = srv.submit(ser);  // tail leaves this link
    const sim::Time start = completion - ser;      // head entered the link
    if (at.is_host() && ci == 0) {
      last_departure_ = completion;  // send-DMA finish time
    }

    // The continuation executes on the shard owning the next device — which
    // is `this` unless the packet is crossing a partition cut. Cross-shard
    // arrival times carry at least one link latency beyond now(), which is
    // exactly the lookahead net::make_partition derived for the pair.
    Fabric* tgt = this;
    if (engine_ != nullptr) {
      const std::uint32_t owner = part_map_->owner_of(peer);
      if (owner != partition_) tgt = (*shards_)[owner];
    }

    if (peer.is_host()) {
      // Tail arrival: last byte propagates `latency` after leaving the link.
      const sim::Time tail_arrival =
          sim::time_add(sim::time_add(completion, model.latency),
                        reorder_extra);
      schedule_hop(peer, tail_arrival,
                   [tgt, pkt = std::move(p), peer, route_idx]() mutable {
                     tgt->arrive_host(std::move(pkt), peer, route_idx);
                   });
    } else {
      // Head arrival at the next crossbar, plus its fall-through delay. Record
      // the port the packet enters through (see Packet::in_ports). The
      // enabled() guard keeps the per-hop cost of disabled tracing to one
      // predictable branch — this is the hottest emit site in the simulator.
      if (trace_->enabled()) {
        trace_->emit(obs::TraceEvent{
            sched_.now(), p.hdr.src.v, p.hdr.dst.v, p.hdr.seq,
            att->peer.port, p.hdr.generation,
            static_cast<std::uint16_t>(peer.as_switch().v),
            obs::TraceKind::kHopTraverse});
      }
      p.in_ports.push_back(att->peer.port);
      const sim::Time head_arrival =
          sim::time_add(sim::time_add(sim::time_add(start, model.latency),
                                      cfg_.switch_delay),
                        reorder_extra);
      schedule_hop(peer, head_arrival,
                   [tgt, pkt = std::move(p), peer, route_idx]() mutable {
                     tgt->step(std::move(pkt), peer, route_idx);
                   });
    }
  }
}

}  // namespace sanfault::net
