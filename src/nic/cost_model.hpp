// Cost model for the NIC (LANai-class control processor, PCI host DMA) and
// the host-side library path.
//
// Every latency constant in the simulator lives here, calibrated in one place
// against the paper's §6.1.1 headline numbers for the M2M-PCI64A-2 /
// 450 MHz-PII platform:
//   * 4-byte one-way latency ~8 us without fault tolerance, ~10 us with
//     (~ +1 us on each of the send and receive paths),
//   * large-message bandwidth ~120 MB/s, limited by the 32-bit PCI bus,
//   * minimum round-trip ~16 us.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace sanfault::nic {

/// Host-side (library + CPU + PCI) costs.
struct HostCostModel {
  /// Library overhead per send call (argument checks, descriptor build).
  sim::Duration send_overhead = 800;
  /// Programmed-I/O: host CPU writes the message into NIC SRAM directly.
  sim::Duration pio_base = 400;
  double pio_per_byte_ns = 12.5;
  /// DMA setup by the host (descriptor post, doorbell).
  sim::Duration dma_setup = 500;
  /// PCI bus effective bandwidth, bytes/second (32-bit, 33 MHz, ~realistic
  /// sustained efficiency). Shared by send and receive DMA of one NIC.
  double pci_bandwidth_bps = 122.0e6;
  /// Receive-side: notification delivery / status-word polling on the host.
  sim::Duration rx_notify = 1000;
  /// Messages at or below this many bytes go by PIO instead of DMA.
  std::size_t pio_threshold = 32;
};

/// NIC-side (MCP firmware on the slow control processor) costs.
struct NicCostModel {
  /// Send path: address translation, header prep, send-DMA setup.
  sim::Duration mcp_tx = 2600;
  /// Receive path: buffer dequeue, header decode, receive-DMA setup.
  sim::Duration mcp_rx = 1600;
  /// Extra send-path work with reliability on: sequence assignment and
  /// moving the buffer to the per-node retransmission queue.
  sim::Duration mcp_tx_reliable = 1000;
  /// Extra receive-path work with reliability on: sequence check and
  /// acknowledgment scheduling.
  sim::Duration mcp_rx_reliable = 1000;
  /// Processing an incoming cumulative ACK (free all covered buffers:
  /// one queue splice, per the paper's "single operation").
  sim::Duration mcp_ack_process = 700;
  /// Building + injecting an explicit ACK packet.
  sim::Duration mcp_ack_build = 800;
  /// Dropping an out-of-order packet (a dequeue, per the paper).
  sim::Duration mcp_drop = 300;
  /// Retransmission timer: fixed scan cost per firing...
  sim::Duration timer_scan_base = 500;
  /// ...plus per non-empty retransmission queue visited...
  sim::Duration timer_scan_per_queue = 200;
  /// ...plus per packet actually retransmitted (queue motion + DMA setup).
  sim::Duration retransmit_per_packet = 1200;
  /// Mapper: processing one probe / probe reply.
  sim::Duration probe_process = 2000;
  /// NIC send-buffer size: messages larger than this are segmented by the
  /// MCP (paper: "each buffer has a fixed size of about 4 KBytes").
  std::size_t buffer_bytes = 4096;
};

}  // namespace sanfault::nic
