// Counting pool for NIC SRAM send buffers.
//
// The pool tracks occupancy only — payload bytes ride inside net::Packet —
// but the accounting is exactly the paper's: a buffer is taken when the host
// submits a packet and returned when the firmware moves it back to the global
// free queue (immediately after injection without reliability; on cumulative
// ACK with reliability). Waiters are granted FIFO, which models the host
// blocking "due to a lack of send buffers".
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

namespace sanfault::nic {

class BufferPool {
 public:
  BufferPool(std::size_t count, std::size_t buffer_bytes)
      : capacity_(count), free_(count), buffer_bytes_(buffer_bytes) {}

  /// Request one buffer; `granted` runs immediately (synchronously) if one is
  /// free, otherwise when a release reaches the front of the wait queue.
  void acquire(std::function<void()> granted) {
    if (free_ > 0) {
      --free_;
      granted();
    } else {
      waiters_.push_back(std::move(granted));
    }
  }

  /// Return `n` buffers to the pool, unblocking waiters FIFO.
  void release(std::size_t n = 1) {
    while (n > 0) {
      --n;
      if (!waiters_.empty()) {
        auto g = std::move(waiters_.front());
        waiters_.pop_front();
        g();  // buffer handed straight to the waiter
      } else {
        ++free_;
      }
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t free_count() const { return free_; }
  [[nodiscard]] std::size_t in_use() const {
    return capacity_ - free_;  // waiters hold nothing yet
  }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }
  [[nodiscard]] std::size_t buffer_bytes() const { return buffer_bytes_; }

 private:
  std::size_t capacity_;
  std::size_t free_;
  std::size_t buffer_bytes_;
  std::deque<std::function<void()>> waiters_;
};

}  // namespace sanfault::nic
