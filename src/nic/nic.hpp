// The NIC model: SRAM buffer pool, host DMA over PCI, the slow control
// processor, and the attachment point for loadable firmware.
//
// The Nic owns *resources and timing*; all protocol intelligence (sequence
// numbers, retransmission, mapping) lives in a FirmwareIface implementation
// (src/firmware). This split mirrors the real platform, where the LANai runs
// a loadable Myrinet control program.
//
// Send path:   host_submit -> [host overhead] -> acquire send buffer ->
//              [PIO or host-DMA] -> [NIC cpu: tx cost] -> fw->on_host_packet
// Receive path: fabric rx -> [NIC cpu: rx cost] -> fw->on_wire_packet
// Delivery:    fw calls deliver_to_host -> [host-DMA] -> host rx callback
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/packet.hpp"
#include "nic/buffers.hpp"
#include "nic/cost_model.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/server.hpp"
#include "sim/time.hpp"

namespace sanfault::nic {

/// A message (<= one segment) the host asks the NIC to transmit.
struct SendRequest {
  net::HostId dst;
  net::PacketType type = net::PacketType::kData;
  net::UserHeader user;
  net::PayloadRef payload;
};

class Nic;

/// Loadable firmware contract. The Nic charges tx_cpu_cost / rx_cpu_cost on
/// its control processor before invoking the corresponding handler, so each
/// firmware declares the cost of its own fast path.
class FirmwareIface {
 public:
  virtual ~FirmwareIface() = default;

  /// Packet data has reached NIC SRAM and holds one send buffer. The
  /// firmware must eventually release that buffer via Nic::release_send_buffers.
  virtual void on_host_packet(SendRequest req) = 0;

  /// A packet fully arrived from the wire. `crc_ok` is the hardware CRC
  /// verdict (computed over the payload by the receive DMA).
  virtual void on_wire_packet(net::Packet pkt, bool crc_ok) = 0;

  [[nodiscard]] virtual sim::Duration tx_cpu_cost(const SendRequest& req) const = 0;
  [[nodiscard]] virtual sim::Duration rx_cpu_cost(const net::Packet& pkt) const = 0;
};

struct NicConfig {
  std::size_t send_buffers = 32;
  HostCostModel host;
  NicCostModel costs;
};

struct NicStats {
  std::uint64_t host_submits = 0;
  std::uint64_t pio_sends = 0;
  std::uint64_t dma_sends = 0;
  std::uint64_t wire_tx = 0;
  std::uint64_t wire_rx = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t host_deliveries = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  /// Submissions that found the send-buffer pool empty and had to block
  /// (the paper's "lack of send buffers" stall).
  std::uint64_t injection_stalls = 0;
};

class Nic {
 public:
  /// Delivered-message callback into the host library (VMMC): user header,
  /// payload, and source node.
  using HostRx =
      std::function<void(net::UserHeader, net::PayloadRef, net::HostId)>;

  Nic(sim::Scheduler& sched, net::Fabric& fabric, net::HostId self,
      NicConfig cfg);
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Install the firmware. Must be called before any traffic.
  void load_firmware(FirmwareIface* fw) { fw_ = fw; }

  void set_host_rx(HostRx rx) { host_rx_ = std::move(rx); }

  // --- host-facing API (the VMMC library calls this) ----------------------
  /// Submit one segment for transmission. Applies host-side costs, acquires
  /// a send buffer (blocking FIFO if none free), moves the data into SRAM by
  /// PIO or DMA, charges the firmware's tx cost, then hands to firmware.
  /// `on_accepted` (optional) fires when the data has fully reached NIC SRAM —
  /// the moment the blocking library send call returns and the user buffer is
  /// reusable.
  void host_submit(SendRequest req, std::function<void()> on_accepted = {});

  // --- firmware-facing services -------------------------------------------
  [[nodiscard]] sim::Scheduler& sched() { return sched_; }
  [[nodiscard]] net::HostId self() const { return self_; }
  [[nodiscard]] const NicCostModel& costs() const { return cfg_.costs; }
  [[nodiscard]] const HostCostModel& host_costs() const { return cfg_.host; }
  [[nodiscard]] sim::FifoServer& cpu() { return cpu_; }

  /// Put a packet on the wire (the fabric models the network send DMA).
  /// Returns the send-DMA completion time (see net::Fabric::inject).
  sim::Time inject(net::Packet pkt);

  /// DMA a received packet's payload into host memory and notify the host.
  void deliver_to_host(net::Packet pkt);

  /// Return send buffers to the global free queue.
  void release_send_buffers(std::size_t n = 1) { pool_.release(n); }

  [[nodiscard]] BufferPool& send_pool() { return pool_; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }

 private:
  void on_fabric_rx(net::Packet&& pkt);

  sim::Scheduler& sched_;
  net::Fabric& fabric_;
  net::HostId self_;
  NicConfig cfg_;
  FirmwareIface* fw_ = nullptr;
  HostRx host_rx_;

  sim::FifoServer cpu_;       // LANai control processor
  sim::FifoServer host_dma_;  // SRAM <-> host memory over PCI (one engine)
  BufferPool pool_;
  NicStats stats_;

  // Observability (src/obs): queue-depth distribution sampled per submit.
  obs::Histogram* buf_in_use_ = nullptr;
};

}  // namespace sanfault::nic
