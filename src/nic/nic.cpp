#include "nic/nic.hpp"

#include <cassert>

#include "net/crc.hpp"

namespace sanfault::nic {

namespace {
/// Fixed cost to start the host DMA engine for one transfer.
constexpr sim::Duration kDmaEngineStart = 300;
}  // namespace

Nic::Nic(sim::Scheduler& sched, net::Fabric& fabric, net::HostId self,
         NicConfig cfg)
    : sched_(sched),
      fabric_(fabric),
      self_(self),
      cfg_(cfg),
      cpu_(sched),
      host_dma_(sched),
      pool_(cfg.send_buffers, cfg.costs.buffer_bytes) {
  fabric_.attach(self_, [this](net::Packet&& pkt) { on_fabric_rx(std::move(pkt)); });

  obs::Registry& reg = obs::Registry::of(sched_);
  const std::string node = "{node=" + std::to_string(self_.v) + "}";
  buf_in_use_ = &reg.histogram("nic.send_buffers_in_use" + node, "buffers");
  reg.add_collector(this, [this, &reg, node] {
    const NicStats& s = stats_;
    reg.counter("nic.host_submits" + node, "packets").set(s.host_submits);
    reg.counter("nic.pio_sends" + node, "packets").set(s.pio_sends);
    reg.counter("nic.dma_sends" + node, "packets").set(s.dma_sends);
    reg.counter("nic.wire_tx" + node, "packets").set(s.wire_tx);
    reg.counter("nic.wire_rx" + node, "packets").set(s.wire_rx);
    reg.counter("nic.bytes_tx" + node, "bytes").set(s.bytes_tx);
    reg.counter("nic.bytes_rx" + node, "bytes").set(s.bytes_rx);
    reg.counter("nic.crc_failures" + node, "packets").set(s.crc_failures);
    reg.counter("nic.host_deliveries" + node, "packets")
        .set(s.host_deliveries);
    reg.counter("nic.injection_stalls" + node, "stalls")
        .set(s.injection_stalls);
    reg.counter("nic.cpu_busy_ns" + node, "ns")
        .set(static_cast<std::uint64_t>(cpu_.busy_time()));
    reg.counter("nic.host_dma_busy_ns" + node, "ns")
        .set(static_cast<std::uint64_t>(host_dma_.busy_time()));
    reg.gauge("nic.send_buffers_free" + node, "buffers")
        .set(static_cast<std::int64_t>(pool_.free_count()));
    reg.gauge("nic.send_waiters" + node, "requests")
        .set(static_cast<std::int64_t>(pool_.waiting()));
  });
}

Nic::~Nic() {
  if (auto* r = obs::Registry::find(sched_)) r->remove_collectors(this);
}

void Nic::host_submit(SendRequest req, std::function<void()> on_accepted) {
  assert(fw_ != nullptr && "firmware must be loaded before traffic");
  assert(req.payload.size() <= cfg_.costs.buffer_bytes &&
         "segmentation is the caller's job (VMMC segments at 4 KB)");
  ++stats_.host_submits;

  // Host library overhead, then block until a send buffer is free.
  sched_.after(cfg_.host.send_overhead, [this, req = std::move(req),
                                         on_accepted = std::move(on_accepted)]() mutable {
    buf_in_use_->record(pool_.in_use());
    if (pool_.free_count() == 0) ++stats_.injection_stalls;
    pool_.acquire([this, req = std::move(req),
                   on_accepted = std::move(on_accepted)]() mutable {
      const std::size_t bytes = req.payload.size();
      auto to_cpu = [this, req = std::move(req),
                     on_accepted = std::move(on_accepted)]() mutable {
        if (on_accepted) on_accepted();
        const sim::Duration cost = fw_->tx_cpu_cost(req);
        cpu_.submit(cost, [this, req = std::move(req)]() mutable {
          fw_->on_host_packet(std::move(req));
        });
      };
      if (bytes <= cfg_.host.pio_threshold) {
        // Programmed I/O: the host CPU stores the message into NIC SRAM.
        ++stats_.pio_sends;
        const auto pio = cfg_.host.pio_base +
                         static_cast<sim::Duration>(
                             cfg_.host.pio_per_byte_ns * static_cast<double>(bytes));
        sched_.after(pio, std::move(to_cpu));
      } else {
        // DMA: host posts a descriptor; the PCI engine moves the data.
        ++stats_.dma_sends;
        sched_.after(cfg_.host.dma_setup, [this, bytes, to_cpu = std::move(to_cpu)]() mutable {
          host_dma_.submit(
              kDmaEngineStart +
                  sim::transfer_time(bytes, cfg_.host.pci_bandwidth_bps),
              std::move(to_cpu));
        });
      }
    });
  });
}

sim::Time Nic::inject(net::Packet pkt) {
  ++stats_.wire_tx;
  stats_.bytes_tx += pkt.payload.size();
  return fabric_.inject(self_, std::move(pkt));
}

void Nic::on_fabric_rx(net::Packet&& pkt) {
  ++stats_.wire_rx;
  stats_.bytes_rx += pkt.payload.size();
  // Hardware CRC check: the receive DMA recomputes the CRC on the fly, so
  // this costs no control-processor time.
  const bool crc_ok =
      !pkt.corrupt_marker &&
      net::crc32(std::span<const std::uint8_t>(pkt.payload)) == pkt.crc;
  if (!crc_ok) ++stats_.crc_failures;
  const sim::Duration cost = fw_->rx_cpu_cost(pkt);
  cpu_.submit(cost, [this, pkt = std::move(pkt), crc_ok]() mutable {
    fw_->on_wire_packet(std::move(pkt), crc_ok);
  });
}

void Nic::deliver_to_host(net::Packet pkt) {
  ++stats_.host_deliveries;
  const std::size_t bytes = pkt.payload.size();
  host_dma_.submit(
      kDmaEngineStart + sim::transfer_time(bytes, cfg_.host.pci_bandwidth_bps),
      [this, pkt = std::move(pkt)]() mutable {
        sched_.after(cfg_.host.rx_notify, [this, pkt = std::move(pkt)]() mutable {
          if (host_rx_) {
            host_rx_(pkt.hdr.user, std::move(pkt.payload), pkt.hdr.src);
          }
        });
      });
}

}  // namespace sanfault::nic
