#include "nic/nic.hpp"

#include <cassert>

#include "net/crc.hpp"

namespace sanfault::nic {

namespace {
/// Fixed cost to start the host DMA engine for one transfer.
constexpr sim::Duration kDmaEngineStart = 300;
}  // namespace

Nic::Nic(sim::Scheduler& sched, net::Fabric& fabric, net::HostId self,
         NicConfig cfg)
    : sched_(sched),
      fabric_(fabric),
      self_(self),
      cfg_(cfg),
      cpu_(sched),
      host_dma_(sched),
      pool_(cfg.send_buffers, cfg.costs.buffer_bytes) {
  fabric_.attach(self_, [this](net::Packet&& pkt) { on_fabric_rx(std::move(pkt)); });
}

void Nic::host_submit(SendRequest req, std::function<void()> on_accepted) {
  assert(fw_ != nullptr && "firmware must be loaded before traffic");
  assert(req.payload.size() <= cfg_.costs.buffer_bytes &&
         "segmentation is the caller's job (VMMC segments at 4 KB)");
  ++stats_.host_submits;

  // Host library overhead, then block until a send buffer is free.
  sched_.after(cfg_.host.send_overhead, [this, req = std::move(req),
                                         on_accepted = std::move(on_accepted)]() mutable {
    pool_.acquire([this, req = std::move(req),
                   on_accepted = std::move(on_accepted)]() mutable {
      const std::size_t bytes = req.payload.size();
      auto to_cpu = [this, req = std::move(req),
                     on_accepted = std::move(on_accepted)]() mutable {
        if (on_accepted) on_accepted();
        const sim::Duration cost = fw_->tx_cpu_cost(req);
        cpu_.submit(cost, [this, req = std::move(req)]() mutable {
          fw_->on_host_packet(std::move(req));
        });
      };
      if (bytes <= cfg_.host.pio_threshold) {
        // Programmed I/O: the host CPU stores the message into NIC SRAM.
        ++stats_.pio_sends;
        const auto pio = cfg_.host.pio_base +
                         static_cast<sim::Duration>(
                             cfg_.host.pio_per_byte_ns * static_cast<double>(bytes));
        sched_.after(pio, std::move(to_cpu));
      } else {
        // DMA: host posts a descriptor; the PCI engine moves the data.
        ++stats_.dma_sends;
        sched_.after(cfg_.host.dma_setup, [this, bytes, to_cpu = std::move(to_cpu)]() mutable {
          host_dma_.submit(
              kDmaEngineStart +
                  sim::transfer_time(bytes, cfg_.host.pci_bandwidth_bps),
              std::move(to_cpu));
        });
      }
    });
  });
}

sim::Time Nic::inject(net::Packet pkt) {
  ++stats_.wire_tx;
  stats_.bytes_tx += pkt.payload.size();
  return fabric_.inject(self_, std::move(pkt));
}

void Nic::on_fabric_rx(net::Packet&& pkt) {
  ++stats_.wire_rx;
  stats_.bytes_rx += pkt.payload.size();
  // Hardware CRC check: the receive DMA recomputes the CRC on the fly, so
  // this costs no control-processor time.
  const bool crc_ok =
      !pkt.corrupt_marker &&
      net::crc32(std::span<const std::uint8_t>(pkt.payload)) == pkt.crc;
  if (!crc_ok) ++stats_.crc_failures;
  const sim::Duration cost = fw_->rx_cpu_cost(pkt);
  cpu_.submit(cost, [this, pkt = std::move(pkt), crc_ok]() mutable {
    fw_->on_wire_packet(std::move(pkt), crc_ok);
  });
}

void Nic::deliver_to_host(net::Packet pkt) {
  ++stats_.host_deliveries;
  const std::size_t bytes = pkt.payload.size();
  host_dma_.submit(
      kDmaEngineStart + sim::transfer_time(bytes, cfg_.host.pci_bandwidth_bps),
      [this, pkt = std::move(pkt)]() mutable {
        sched_.after(cfg_.host.rx_notify, [this, pkt = std::move(pkt)]() mutable {
          if (host_rx_) {
            host_rx_(pkt.hdr.user, std::move(pkt.payload), pkt.hdr.src);
          }
        });
      });
}

}  // namespace sanfault::nic
