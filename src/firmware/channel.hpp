// Per-remote-node protocol state (§4.1.1: "sequence numbers and
// retransmission information are maintained on a per-node basis").
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace sanfault::firmware {

/// One entry of a per-node retransmission queue: the packet as last sent and
/// when it was last put on the wire (kNever-0 => queued but never sent, e.g.
/// while a re-mapping is in flight).
struct QueuedPacket {
  net::Packet pkt;
  sim::Time last_sent = 0;
  bool sent_once = false;
};

/// Sender side of a node pair.
struct TxChannel {
  std::uint32_t next_seq = 1;
  std::uint16_t generation = 0;
  std::deque<QueuedPacket> retrans_queue;
  /// Data packets sent since the last ACK-request bit (sender feedback).
  std::uint32_t since_ack_request = 0;
  /// Consecutive retransmission rounds with no cumulative-ACK progress.
  std::uint32_t rounds_without_progress = 0;
  /// Last time this path made progress (ack advanced, or the queue went from
  /// empty to non-empty). Drives the transient/permanent failure threshold.
  sim::Time last_progress = 0;
  bool remap_in_flight = false;
  /// When the in-flight remap was requested (remap-latency observability).
  sim::Time remap_started = 0;
  /// The in-flight remap was pre-answered by a backup-path promotion (the
  /// mapper's on_path_failure returned true); propagated into the FwEvents
  /// this remap publishes so observers can attribute recovery latency.
  bool remap_promoted = false;
  bool unreachable = false;
  /// Consecutive scrub passes that found this channel's invariants violated
  /// (self-stabilization hardening, docs/CHAOS.md). Reset on a clean pass;
  /// reaching ReliabilityConfig::scrub_strike_limit triggers nic_reset as the
  /// last-resort repair.
  std::uint32_t scrub_strikes = 0;
};

/// Receiver side of a node pair.
struct RxChannel {
  std::uint32_t expected_seq = 1;  // next in-order sequence number
  std::uint16_t generation = 0;
  /// In-order packets accepted since the last ACK we sent (explicit or
  /// piggy-backed); bounded by the receiver coalesce safety valve.
  std::uint32_t pending_unacked = 0;
  /// An explicit ACK was required but no route back existed; it is owed and
  /// will be sent as soon as on-demand mapping finds the way home.
  bool ack_owed = false;
  /// Consecutive stale-generation drops since the last accepted packet or
  /// generation adoption. A corrupted receiver generation that ran *ahead* of
  /// the sender would stale-drop everything for up to 2^15 sender restarts;
  /// after ReliabilityConfig::scrub_stale_adopt_threshold consecutive stale
  /// drops with zero acceptances the receiver adopts the incoming generation
  /// instead (wraparound-safe convergence, docs/CHAOS.md).
  std::uint32_t stale_run = 0;
};

/// Wrap-safe "is generation a newer than b".
[[nodiscard]] constexpr bool generation_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) > 0;
}

}  // namespace sanfault::firmware
