#include "firmware/mapper_ondemand.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace sanfault::firmware {

using net::HostId;
using net::Packet;
using net::PacketType;
using net::Route;

namespace {

/// Outcome of one probe (after retries).
struct ProbeResult {
  bool replied = false;
  HostId replier;
};

/// Alternates recorded per known switch are capped: candidate sets past this
/// add no measurable path diversity but do add per-mapping memory.
constexpr std::size_t kMaxAltForwards = 8;

/// Extra salt stirred into the backup-path tie-breaker so the backup pick is
/// a different deterministic stream than the primary multipath pick (a backup
/// that mirrors the multipath choice would not be an alternate at all).
constexpr std::uint64_t kBackupSaltTweak = 0xA17EB5A17Eull;

}  // namespace

// --- PathCache (LRU) --------------------------------------------------------

const Route* OnDemandMapper::PathCache::get(HostId h) {
  auto it = idx_.find(h);
  if (it == idx_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return &it->second->primary;
}

void OnDemandMapper::PathCache::put(HostId h, Route r,
                                    std::uint64_t* evictions) {
  if (cap_ == 0) return;
  auto it = idx_.find(h);
  if (it != idx_.end()) {
    Entry& e = *it->second;
    if (e.primary != r) e.backup.reset();  // backup was disjoint from the old
    e.primary = std::move(r);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= cap_) {
    idx_.erase(lru_.back().host);
    lru_.pop_back();
    if (evictions != nullptr) ++*evictions;
  }
  lru_.emplace_front(Entry{h, std::move(r), std::nullopt});
  idx_[h] = lru_.begin();
}

bool OnDemandMapper::PathCache::erase(HostId h) {
  auto it = idx_.find(h);
  if (it == idx_.end()) return false;
  lru_.erase(it->second);
  idx_.erase(it);
  return true;
}

void OnDemandMapper::PathCache::clear() {
  lru_.clear();
  idx_.clear();
}

void OnDemandMapper::PathCache::set_backup(HostId h, net::AltRoute alt) {
  auto it = idx_.find(h);
  if (it == idx_.end()) return;
  it->second->backup = std::move(alt);
}

const std::optional<net::AltRoute>* OnDemandMapper::PathCache::backup(
    HostId h) const {
  return peek_backup(h);
}

bool OnDemandMapper::PathCache::promote(HostId h) {
  auto it = idx_.find(h);
  if (it == idx_.end() || !it->second->backup) return false;
  Entry& e = *it->second;
  e.primary = std::move(e.backup->route);
  e.backup.reset();
  lru_.splice(lru_.begin(), lru_, it->second);  // a promotion is a use
  return true;
}

const Route* OnDemandMapper::PathCache::peek(HostId h) const {
  auto it = idx_.find(h);
  return it == idx_.end() ? nullptr : &it->second->primary;
}

const std::optional<net::AltRoute>* OnDemandMapper::PathCache::peek_backup(
    HostId h) const {
  auto it = idx_.find(h);
  return it == idx_.end() ? nullptr : &it->second->backup;
}

std::vector<HostId> OnDemandMapper::PathCache::hosts() const {
  std::vector<HostId> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e.host);
  return out;
}

Route* OnDemandMapper::PathCache::primary_mut(HostId h) {
  auto it = idx_.find(h);
  return it == idx_.end() ? nullptr : &it->second->primary;
}

std::optional<net::AltRoute>* OnDemandMapper::PathCache::backup_mut(HostId h) {
  auto it = idx_.find(h);
  return it == idx_.end() ? nullptr : &it->second->backup;
}

// --- OnDemandMapper ---------------------------------------------------------

OnDemandMapper::OnDemandMapper(nic::Nic& nic, OnDemandMapperConfig cfg)
    : nic_(nic), cfg_(cfg), path_cache_(cfg.path_cache_capacity) {
  // Mirror OnDemandMapperStats into the per-simulation metrics registry
  // (pull model — see docs/OBSERVABILITY.md).
  obs::Registry& reg = obs::Registry::of(nic_.sched());
  const std::string node = "{node=" + std::to_string(nic_.self().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const OnDemandMapperStats& s = stats_;
    reg.counter("mapper.mappings_started" + node, "mappings")
        .set(s.mappings_started);
    reg.counter("mapper.mappings_succeeded" + node, "mappings")
        .set(s.mappings_succeeded);
    reg.counter("mapper.mappings_failed" + node, "mappings")
        .set(s.mappings_failed);
    reg.counter("mapper.host_probes_tx" + node, "probes")
        .set(s.host_probes_tx);
    reg.counter("mapper.switch_probes_tx" + node, "probes")
        .set(s.switch_probes_tx);
    reg.counter("mapper.probe_replies_tx" + node, "probes")
        .set(s.probe_replies_tx);
    reg.counter("mapper.probe_replies_rx" + node, "probes")
        .set(s.probe_replies_rx);
    reg.counter("mapper.probe_timeouts" + node, "probes")
        .set(s.probe_timeouts);
    reg.counter("mapper.mapping_time_total_ns" + node, "ns")
        .set(static_cast<std::uint64_t>(s.mapping_time_total));
    reg.counter("mapper.path_cache_hits" + node, "hits")
        .set(s.path_cache_hits);
    reg.counter("mapper.path_cache_evictions" + node, "evictions")
        .set(s.path_cache_evictions);
    reg.counter("mapper.path_cache_invalidations" + node, "invalidations")
        .set(s.path_cache_invalidations);
    reg.counter("mapper.probe_budget_exhausted" + node, "mappings")
        .set(s.probe_budget_exhausted);
    reg.counter("mapper.multipath_candidates" + node, "routes")
        .set(s.multipath_candidates);
    reg.counter("mapper.backup_computed" + node, "backups")
        .set(s.backup_computed);
    reg.counter("mapper.backup_promotions" + node, "promotions")
        .set(s.backup_promotions);
    reg.counter("mapper.backup_stale_rejections" + node, "rejections")
        .set(s.backup_stale_rejections);
    reg.counter("mapper.backup_replenish_probes" + node, "probes")
        .set(s.backup_replenish_probes);
    reg.counter("mapper.backup_node_disjoint" + node, "backups")
        .set(s.backup_node_disjoint);
    reg.counter("mapper.backup_link_disjoint" + node, "backups")
        .set(s.backup_link_disjoint);
    reg.counter("mapper.backup_overlapping" + node, "backups")
        .set(s.backup_overlapping);
  });
}

OnDemandMapper::~OnDemandMapper() {
  if (auto* r = obs::Registry::find(nic_.sched())) r->remove_collectors(this);
}

std::uint8_t OnDemandMapper::radix_of(const Route& forward) const {
  if (cfg_.radix_oracle != nullptr) {
    auto dev = cfg_.radix_oracle->device_after(nic_.self(), forward);
    if (dev && dev->is_switch()) {
      return cfg_.radix_oracle->switch_ports(dev->as_switch());
    }
  }
  return cfg_.max_ports;
}

void OnDemandMapper::invalidate_path(HostId dst) {
  if (path_cache_.erase(dst)) ++stats_.path_cache_invalidations;
}

bool OnDemandMapper::on_path_failure(HostId dst) {
  // Proactive alternate paths: a live backup replaces the dead primary in
  // place, and the request_route that follows is a cache hit — the probe
  // storm moves off the failover critical path (docs/ROUTING.md).
  const bool promoted = promote_backup(dst);
  if (promoted) {
    ++stats_.path_cache_invalidations;  // the failed primary is gone either way
  } else {
    invalidate_path(dst);
  }
  // A mapping already running for dst raced the failure report. Let it
  // finish (its callbacks may still want the answer) but poison its result:
  // caching it would re-install a route discovered before — possibly over —
  // the path that just died, which a later report would then invalidate a
  // second time (double-counted invalidations for one failure). When the
  // failure was served by a promotion, the promoted entry must additionally
  // win over the stale BFS result (drive() serves it to the callbacks).
  if (active_dst_ && *active_dst_ == dst) {
    active_invalidated_ = true;
    active_promoted_ = promoted;
  }
  return promoted;
}

void OnDemandMapper::on_peer_dead(HostId dst) {
  // Membership declared the node itself dead: a backup route to a corpse is
  // as dead as the primary, so both slots drop unconditionally — never
  // promote here.
  invalidate_path(dst);
  if (active_dst_ && *active_dst_ == dst) active_invalidated_ = true;
}

void OnDemandMapper::flush_cache() {
  attach_port_.reset();
  path_cache_.clear();
}

void OnDemandMapper::seed_cache(HostId dst, const Route& r) {
  if (cfg_.path_cache_capacity == 0) return;
  path_cache_.put(dst, r, &stats_.path_cache_evictions);
  fill_backup(dst);
}

std::uint64_t OnDemandMapper::backup_salt(HostId dst) const {
  return cfg_.multipath_salt ^ kBackupSaltTweak ^
         (0x9E3779B97F4A7C15ull * (nic_.self().v + 1)) ^
         (0xC2B2AE3D27D4EB4Full * (dst.v + 1));
}

void OnDemandMapper::fill_backup(HostId dst) {
  if (!cfg_.proactive_backup || cfg_.radix_oracle == nullptr) return;
  const Route* primary = path_cache_.peek(dst);
  if (primary == nullptr) return;
  const std::optional<net::AltRoute>* slot = path_cache_.peek_backup(dst);
  if (slot != nullptr && slot->has_value()) return;  // already provisioned
  auto alt = cfg_.radix_oracle->disjoint_route(nic_.self(), dst, *primary,
                                               backup_salt(dst));
  // Disjointness can be impossible (both hosts on one crossbar, or a chain
  // fabric with no way around): degrade gracefully to a backup-less entry —
  // failures for this destination fall back to probing.
  if (!alt) return;
  switch (alt->cls) {
    case net::DisjointClass::kNodeDisjoint: ++stats_.backup_node_disjoint; break;
    case net::DisjointClass::kLinkDisjoint: ++stats_.backup_link_disjoint; break;
    case net::DisjointClass::kOverlapping: ++stats_.backup_overlapping; break;
  }
  ++stats_.backup_computed;
  path_cache_.set_backup(dst, std::move(*alt));
}

bool OnDemandMapper::promote_backup(HostId dst) {
  if (!cfg_.proactive_backup || cfg_.radix_oracle == nullptr) return false;
  const std::optional<net::AltRoute>* slot = path_cache_.backup(dst);
  if (slot == nullptr || !slot->has_value()) return false;
  const Route backup = (*slot)->route;
  // The fault that killed the primary may have hit the backup too (or the
  // backup aged past an unrelated fault). Validate it end-to-end against
  // current up-state before trusting it — never deliver over a wrong route.
  auto end = cfg_.radix_oracle->trace_route_up(nic_.self(), backup);
  if (!end || *end != net::Device::host(dst)) {
    ++stats_.backup_stale_rejections;
    return false;  // caller drops the whole entry; next request re-probes
  }
  path_cache_.promote(dst);
  ++stats_.backup_promotions;
  // Refill the emptied backup slot off the critical path.
  if (!replenishing_.contains(dst)) {
    replenishing_[dst] = true;
    replenish_backup(dst, backup);
  }
  return true;
}

sim::Process OnDemandMapper::replenish_backup(HostId dst, Route primary) {
  auto& sched = nic_.sched();
  // Deterministic yield: the promote that scheduled us unwinds first, so
  // replenish work never extends the failure-handling critical path.
  co_await sim::DelayFor{sched, 0};
  // The entry may have vanished (evicted, peer died, nic reset) or been
  // remapped while we were scheduled; a changed primary voids the premise
  // the disjoint candidate would be computed against.
  const Route* cur = path_cache_.peek(dst);
  if (cur == nullptr || *cur != primary) {
    replenishing_.erase(dst);
    co_return;
  }
  auto alt = cfg_.radix_oracle->disjoint_route(nic_.self(), dst, primary,
                                               backup_salt(dst));
  if (!alt) {
    replenishing_.erase(dst);
    co_return;
  }
  // One host probe verifies the candidate end-to-end before it is trusted
  // as a future promotion target (the oracle knows wiring, not transient
  // fault state at packet granularity).
  ++stats_.backup_replenish_probes;
  HostId replier;
  Route probe_route = alt->route;
  const bool ok = co_await probe_and_wait_impl(PacketType::kProbeHost,
                                               std::move(probe_route),
                                               &replier);
  const Route* cur2 = path_cache_.peek(dst);
  if (ok && replier == dst && cur2 != nullptr && *cur2 == primary) {
    switch (alt->cls) {
      case net::DisjointClass::kNodeDisjoint:
        ++stats_.backup_node_disjoint;
        break;
      case net::DisjointClass::kLinkDisjoint:
        ++stats_.backup_link_disjoint;
        break;
      case net::DisjointClass::kOverlapping:
        ++stats_.backup_overlapping;
        break;
    }
    ++stats_.backup_computed;
    path_cache_.set_backup(dst, std::move(*alt));
  }
  replenishing_.erase(dst);
}

void OnDemandMapper::request_route(HostId dst, RouteCallback cb) {
  // Merge into the mapping currently running for the same destination...
  if (active_dst_ && *active_dst_ == dst && active_cbs_ != nullptr) {
    active_cbs_->push_back(std::move(cb));
    return;
  }
  // ...or into a queued one.
  for (auto& pr : queue_) {
    if (pr.dst == dst) {
      pr.cbs.push_back(std::move(cb));
      return;
    }
  }
  queue_.push_back(PendingRequest{dst, {}});
  queue_.back().cbs.push_back(std::move(cb));
  if (!mapping_active_) {
    mapping_active_ = true;
    drive();
  }
}

void OnDemandMapper::inject_probe(Packet pkt) {
  // Probes use a small dedicated SRAM buffer (they never touch the send
  // pool) and one firmware dispatch on the control processor.
  nic_.cpu().submit(nic_.costs().probe_process,
                    [this, pkt = std::move(pkt)]() mutable {
                      nic_.inject(std::move(pkt));
                    });
}

void OnDemandMapper::on_probe_packet(Packet pkt) {
  auto& sched = nic_.sched();
  switch (pkt.hdr.type) {
    case PacketType::kProbeHost: {
      if (pkt.hdr.src == nic_.self()) return;  // our own probe looped home
      // Answer: "a host lives here" — routed back along the reverse of the
      // path the probe took.
      ++stats_.probe_replies_tx;
      Packet rep;
      rep.hdr.type = PacketType::kProbeReply;
      rep.hdr.src = nic_.self();
      rep.hdr.dst = pkt.hdr.src;
      rep.hdr.user.w0 = pkt.hdr.user.w0;  // nonce
      rep.hdr.user.w1 = nic_.self().v;
      rep.hdr.route.ports.assign(pkt.in_ports.rbegin(), pkt.in_ports.rend());
      inject_probe(std::move(rep));
      return;
    }
    case PacketType::kProbeSwitch: {
      // A bounce probe only means something to its own sender.
      if (pkt.hdr.src != nic_.self()) return;
      auto it = inflight_.find(pkt.hdr.user.w0);
      if (it == inflight_.end() || it->second->replied) return;
      it->second->replied = true;
      it->second->replier = nic_.self();
      it->second->done.fire(sched);
      return;
    }
    case PacketType::kProbeReply: {
      ++stats_.probe_replies_rx;
      auto it = inflight_.find(pkt.hdr.user.w0);
      if (it == inflight_.end() || it->second->replied) return;
      it->second->replied = true;
      it->second->replier = HostId{static_cast<std::uint32_t>(pkt.hdr.user.w1)};
      it->second->done.fire(sched);
      return;
    }
    default:
      return;
  }
}

/// Send one probe of `type` down `route`, wait for reply or timeout,
/// retrying per config.
sim::Task<bool> OnDemandMapper::probe_and_wait_impl(PacketType type,
                                                    Route route,
                                                    HostId* replier) {
  auto& sched = nic_.sched();
  for (int attempt = 0; attempt <= cfg_.probe_retries; ++attempt) {
    ProbeWait w;
    w.nonce = next_nonce_++;
    inflight_[w.nonce] = &w;

    Packet pkt;
    pkt.hdr.type = type;
    pkt.hdr.src = nic_.self();
    pkt.hdr.route = route;
    pkt.hdr.user.w0 = w.nonce;
    if (type == PacketType::kProbeHost) {
      ++stats_.host_probes_tx;
    } else {
      ++stats_.switch_probes_tx;
    }
    inject_probe(std::move(pkt));

    const std::uint64_t nonce = w.nonce;
    sched.after(cfg_.probe_timeout, [this, nonce, &sched] {
      auto it = inflight_.find(nonce);
      if (it != inflight_.end() && !it->second->replied) {
        it->second->done.fire(sched);
      }
    });
    co_await w.done.wait(sched);
    inflight_.erase(w.nonce);
    if (w.replied) {
      if (replier != nullptr) *replier = w.replier;
      co_return true;
    }
    ++stats_.probe_timeouts;
  }
  co_return false;
}

sim::Task<std::optional<Route>> OnDemandMapper::bfs(HostId dst,
                                                    std::uint64_t* probes_used) {
  auto over_budget = [&] { return *probes_used >= cfg_.max_probes; };
  auto count_probe = [&] { ++*probes_used; };
  // Budget exhaustion aborts the whole mapping; one stat bump per mapping.
  auto budget_fail = [&]() -> std::optional<Route> {
    ++stats_.probe_budget_exhausted;
    return std::nullopt;
  };
  // Hosts found in passing are cached only when configured to; the requested
  // destination is cached (and the cache consulted) whenever capacity > 0.
  const bool caching = cfg_.cache_discovered_hosts &&
                       cfg_.path_cache_capacity > 0;

  if (cfg_.path_cache_capacity > 0) {
    // A destination whose path failed was invalidated (on_path_failure)
    // before this request, so a surviving entry is trustworthy.
    const Route* cached = path_cache_.get(dst);
    if (cached != nullptr) {
      ++stats_.path_cache_hits;
      Route hit = *cached;
      co_return hit;
    }
  }

  // --- level -1: what hangs off our own cable? -----------------------------
  // NOTE: all probe routes below are built as named locals; GCC 12 miscompiles
  // braced aggregate temporaries inside co_await arguments ("array used as
  // initializer").
  if (!attach_port_) {
    // A direct host-to-host cable first.
    HostId replier;
    count_probe();
    Route empty_route;
    if (co_await probe_and_wait_impl(PacketType::kProbeHost, empty_route,
                                     &replier)) {
      if (caching) {
        path_cache_.put(replier, Route{}, &stats_.path_cache_evictions);
      }
      if (replier == dst) co_return Route{};
      co_return std::nullopt;  // point-to-point cable; nothing else out there
    }
    // Otherwise find which port of the first crossbar we hang off: bounce
    // probes until one comes straight back.
    for (std::uint8_t y = 0; y < cfg_.max_ports; ++y) {
      if (over_budget()) co_return budget_fail();
      count_probe();
      Route bounce;
      bounce.ports.push_back(y);
      if (co_await probe_and_wait_impl(PacketType::kProbeSwitch,
                                       std::move(bounce), nullptr)) {
        attach_port_ = y;
        break;
      }
    }
    if (!attach_port_) co_return std::nullopt;  // dead cable
  }

  // --- BFS over crossbars, level by level ----------------------------------
  // `known` is every switch discovered so far (crossbars have no identity;
  // it is what the duplicate-detection probes compare against). The frontier
  // is a set of indices into it — phase (b) grows `known`, so loop bodies
  // copy the fields they need instead of holding references across awaits.
  std::vector<KnownSwitch> known;
  {
    KnownSwitch root;
    root.forward = Route{};
    root.reverse = {*attach_port_};
    root.entry_port = *attach_port_;
    root.radix = radix_of(Route{});
    known.push_back(std::move(root));
  }
  std::vector<std::size_t> frontier{0};

  for (std::size_t depth = 0; depth < cfg_.max_depth && !frontier.empty();
       ++depth) {
    // (a) Host-probe every unexplored port of every frontier switch. The
    // search stops the moment the destination answers — which is what makes
    // same-switch mappings host-probe-only (Table 3, row 1) — unless
    // multipath is on, in which case the rest of this level is probed too so
    // the equal-cost candidate set is complete before selection.
    struct SilentPort {
      std::size_t sw;  // index into `known`
      std::uint8_t port;
    };
    std::vector<SilentPort> silent;
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t found_sw = kNone;
    std::uint8_t found_port = 0;
    for (const std::size_t fi : frontier) {
      const Route f_forward = known[fi].forward;
      const std::uint8_t f_entry = known[fi].entry_port;
      const std::uint8_t f_radix = known[fi].radix;
      for (std::uint8_t p = 0; p < f_radix; ++p) {
        if (p == f_entry) continue;
        if (over_budget()) co_return budget_fail();
        Route hr = f_forward;
        hr.ports.push_back(p);
        HostId replier;
        count_probe();
        if (co_await probe_and_wait_impl(PacketType::kProbeHost, hr,
                                         &replier)) {
          if (caching && !path_cache_.contains(replier)) {
            path_cache_.put(replier, hr, &stats_.path_cache_evictions);
          }
          if (replier == dst) {
            if (!cfg_.multipath) co_return hr;
            if (found_sw == kNone) {
              found_sw = fi;
              found_port = p;
            }
          }
        } else {
          silent.push_back({fi, p});
        }
      }
    }
    if (found_sw != kNone) {
      // Deterministic multipath: the destination's edge crossbar was reached
      // through one shortest path per discovery order, but every equal-length
      // alternative recorded by duplicate detection (alt_forwards) exits the
      // same crossbar through the same port. Pick among them with an Rng
      // keyed only on (salt, self, dst): independent of probe interleaving,
      // so parallel sweeps stay byte-identical for any --jobs N.
      std::vector<Route> candidates;
      Route primary = known[found_sw].forward;
      primary.ports.push_back(found_port);
      candidates.push_back(std::move(primary));
      for (const Route& alt : known[found_sw].alt_forwards) {
        Route r2 = alt;
        r2.ports.push_back(found_port);
        candidates.push_back(std::move(r2));
      }
      stats_.multipath_candidates += candidates.size();
      sim::Rng pick(cfg_.multipath_salt ^
                    (0x9E3779B97F4A7C15ull * (nic_.self().v + 1)) ^
                    (0xC2B2AE3D27D4EB4Full * (dst.v + 1)));
      const std::size_t sel = pick.uniform(candidates.size());
      Route chosen = candidates[sel];
      co_return chosen;
    }

    // (b) Identify what sits behind each silent port.
    //
    // First, duplicate detection ("distinguishing new switches from old
    // ones", Table 3): if an already-known crossbar K is behind the port,
    // then routing through the port and down K's known way home brings the
    // probe back — one probe per comparison, no radix-sized guessing, and
    // redundant links / back-edges stop spawning re-exploration. When the
    // duplicate sits at the same BFS depth, the rejected path is an
    // equal-cost alternative into K — multipath remembers it.
    //
    // Only genuinely new crossbars then pay the bounce-guessing of their
    // entry port (up to max_ports tries).
    std::vector<std::size_t> next;
    for (const SilentPort& sp : silent) {
      const Route sw_forward = known[sp.sw].forward;
      const std::vector<std::uint8_t> sw_reverse = known[sp.sw].reverse;
      Route nf = sw_forward;
      nf.ports.push_back(sp.port);
      // Identity verdict source: behavioral by default (the cycle probe
      // returning means "an old switch is behind this port"). On regular
      // fabrics that test false-merges *distinct* switches at symmetric
      // positions — a probe into a fat-tree edge routed down a sibling
      // edge's way home still loops back to the prober — which silently
      // prunes whole pods from the search. When the operator configured the
      // fabric class (radix_oracle, same knowledge assumption as the radix
      // lookup), the verdict is resolved against the real topology instead.
      // The probe is sent and counted either way: configured identity does
      // not waive Table 3's "distinguishing new switches from old ones"
      // traffic.
      std::optional<net::Device> cand_dev;
      if (cfg_.radix_oracle != nullptr) {
        cand_dev = cfg_.radix_oracle->device_after(nic_.self(), nf);
      }
      const bool identity_db =
          cfg_.configured_identity && cfg_.radix_oracle != nullptr;
      bool duplicate = false;
      for (std::size_t j = 0; j < known.size(); ++j) {
        if (over_budget()) co_return budget_fail();
        std::optional<net::Device> known_dev;
        if (cfg_.radix_oracle != nullptr) {
          known_dev =
              cfg_.radix_oracle->device_after(nic_.self(), known[j].forward);
        }
        bool probe_back = false;
        if (!identity_db) {
          Route vr = nf;
          vr.ports.insert(vr.ports.end(), known[j].reverse.begin(),
                          known[j].reverse.end());
          count_probe();
          probe_back = co_await probe_and_wait_impl(PacketType::kProbeSwitch,
                                                    vr, nullptr);
        }
        const bool is_dup =
            cfg_.radix_oracle != nullptr
                ? (cand_dev.has_value() && cand_dev->is_switch() &&
                   known_dev.has_value() && *cand_dev == *known_dev)
                : probe_back;
        if (is_dup) {
          duplicate = true;
          if (cfg_.multipath) {
            Route alt = nf;
            KnownSwitch& dup = known[j];
            if (alt.ports.size() == dup.forward.ports.size() &&
                alt != dup.forward &&
                dup.alt_forwards.size() < kMaxAltForwards &&
                std::find(dup.alt_forwards.begin(), dup.alt_forwards.end(),
                          alt) == dup.alt_forwards.end()) {
              dup.alt_forwards.push_back(std::move(alt));
            }
          }
          break;
        }
      }
      if (duplicate) continue;
      const std::uint8_t guess_bound = radix_of(nf);
      for (std::uint8_t y = 0; y < guess_bound; ++y) {
        if (over_budget()) co_return budget_fail();
        Route br = sw_forward;
        br.ports.push_back(sp.port);
        br.ports.push_back(y);
        br.ports.insert(br.ports.end(), sw_reverse.begin(), sw_reverse.end());
        count_probe();
        if (co_await probe_and_wait_impl(PacketType::kProbeSwitch, br,
                                         nullptr)) {
          KnownSwitch ns;
          ns.forward = nf;
          ns.entry_port = y;
          ns.radix = guess_bound;
          ns.reverse.push_back(y);
          ns.reverse.insert(ns.reverse.end(), sw_reverse.begin(),
                            sw_reverse.end());
          known.push_back(std::move(ns));
          next.push_back(known.size() - 1);
          break;
        }
      }
    }
    frontier = std::move(next);
  }
  co_return std::nullopt;
}

sim::Process OnDemandMapper::drive() {
  auto& sched = nic_.sched();
  while (!queue_.empty()) {
    PendingRequest req = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.mappings_started;

    const sim::Time t0 = sched.now();
    const std::uint64_t h0 = stats_.host_probes_tx;
    const std::uint64_t s0 = stats_.switch_probes_tx;
    std::uint64_t probes_used = 0;
    active_dst_ = req.dst;
    active_cbs_ = &req.cbs;
    active_invalidated_ = false;
    active_promoted_ = false;
    std::optional<Route> result = co_await bfs(req.dst, &probes_used);
    const bool poisoned = active_invalidated_;
    const bool promoted = active_promoted_;
    active_dst_.reset();
    active_cbs_ = nullptr;
    active_invalidated_ = false;
    active_promoted_ = false;

    stats_.last_mapping_time = sched.now() - t0;
    stats_.mapping_time_total += stats_.last_mapping_time;
    // Mapping runs are rare (permanent failures only), so the string build
    // and registry lookup are off any hot path.
    obs::Registry::of(sched)
        .histogram("mapper.mapping_time_ns{node=" +
                       std::to_string(nic_.self().v) + "}",
                   "ns")
        .record(static_cast<std::uint64_t>(stats_.last_mapping_time));
    stats_.last_host_probes = stats_.host_probes_tx - h0;
    stats_.last_switch_probes = stats_.switch_probes_tx - s0;
    // A run poisoned by a concurrent on_path_failure is served but never
    // cached — including the entry bfs itself may have added when a probe
    // from the (possibly dead) path reached the destination in passing.
    // Exception: when that failure was answered by a backup promotion, the
    // promoted entry is the live truth — it must survive (no double-cache)
    // and it, not the stale BFS result, answers the waiting callbacks.
    if (poisoned && !promoted) {
      path_cache_.erase(req.dst);
    } else if (poisoned && promoted) {
      if (const Route* cur = path_cache_.get(req.dst)) {
        ++stats_.path_cache_hits;
        result = *cur;
      }
    }
    if (result) {
      ++stats_.mappings_succeeded;
      // The requested destination is always cached (capacity permitting);
      // cache_discovered_hosts only governs hosts found in passing.
      if (cfg_.path_cache_capacity > 0 && !poisoned) {
        path_cache_.put(req.dst, *result, &stats_.path_cache_evictions);
        fill_backup(req.dst);
      }
    } else {
      ++stats_.mappings_failed;
    }
    for (auto& cb : req.cbs) cb(result);
  }
  mapping_active_ = false;
}

}  // namespace sanfault::firmware
