#include "firmware/mapper_ondemand.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"

namespace sanfault::firmware {

using net::HostId;
using net::Packet;
using net::PacketType;
using net::Route;

namespace {

/// Outcome of one probe (after retries).
struct ProbeResult {
  bool replied = false;
  HostId replier;
};

}  // namespace

OnDemandMapper::OnDemandMapper(nic::Nic& nic, OnDemandMapperConfig cfg)
    : nic_(nic), cfg_(cfg) {
  // Mirror OnDemandMapperStats into the per-simulation metrics registry
  // (pull model — see docs/OBSERVABILITY.md).
  obs::Registry& reg = obs::Registry::of(nic_.sched());
  const std::string node = "{node=" + std::to_string(nic_.self().v) + "}";
  reg.add_collector(this, [this, &reg, node] {
    const OnDemandMapperStats& s = stats_;
    reg.counter("mapper.mappings_started" + node, "mappings")
        .set(s.mappings_started);
    reg.counter("mapper.mappings_succeeded" + node, "mappings")
        .set(s.mappings_succeeded);
    reg.counter("mapper.mappings_failed" + node, "mappings")
        .set(s.mappings_failed);
    reg.counter("mapper.host_probes_tx" + node, "probes")
        .set(s.host_probes_tx);
    reg.counter("mapper.switch_probes_tx" + node, "probes")
        .set(s.switch_probes_tx);
    reg.counter("mapper.probe_replies_tx" + node, "probes")
        .set(s.probe_replies_tx);
    reg.counter("mapper.probe_replies_rx" + node, "probes")
        .set(s.probe_replies_rx);
    reg.counter("mapper.probe_timeouts" + node, "probes")
        .set(s.probe_timeouts);
    reg.counter("mapper.mapping_time_total_ns" + node, "ns")
        .set(static_cast<std::uint64_t>(s.mapping_time_total));
  });
}

OnDemandMapper::~OnDemandMapper() {
  if (auto* r = obs::Registry::find(nic_.sched())) r->remove_collectors(this);
}

std::uint8_t OnDemandMapper::radix_of(const Route& forward) const {
  if (cfg_.radix_oracle != nullptr) {
    auto dev = cfg_.radix_oracle->device_after(nic_.self(), forward);
    if (dev && dev->is_switch()) {
      return cfg_.radix_oracle->switch_ports(dev->as_switch());
    }
  }
  return cfg_.max_ports;
}

void OnDemandMapper::flush_cache() {
  attach_port_.reset();
  host_cache_.clear();
}

void OnDemandMapper::request_route(HostId dst, RouteCallback cb) {
  // Merge into the mapping currently running for the same destination...
  if (active_dst_ && *active_dst_ == dst && active_cbs_ != nullptr) {
    active_cbs_->push_back(std::move(cb));
    return;
  }
  // ...or into a queued one.
  for (auto& pr : queue_) {
    if (pr.dst == dst) {
      pr.cbs.push_back(std::move(cb));
      return;
    }
  }
  queue_.push_back(PendingRequest{dst, {}});
  queue_.back().cbs.push_back(std::move(cb));
  if (!mapping_active_) {
    mapping_active_ = true;
    drive();
  }
}

void OnDemandMapper::inject_probe(Packet pkt) {
  // Probes use a small dedicated SRAM buffer (they never touch the send
  // pool) and one firmware dispatch on the control processor.
  nic_.cpu().submit(nic_.costs().probe_process,
                    [this, pkt = std::move(pkt)]() mutable {
                      nic_.inject(std::move(pkt));
                    });
}

void OnDemandMapper::on_probe_packet(Packet pkt) {
  auto& sched = nic_.sched();
  switch (pkt.hdr.type) {
    case PacketType::kProbeHost: {
      if (pkt.hdr.src == nic_.self()) return;  // our own probe looped home
      // Answer: "a host lives here" — routed back along the reverse of the
      // path the probe took.
      ++stats_.probe_replies_tx;
      Packet rep;
      rep.hdr.type = PacketType::kProbeReply;
      rep.hdr.src = nic_.self();
      rep.hdr.dst = pkt.hdr.src;
      rep.hdr.user.w0 = pkt.hdr.user.w0;  // nonce
      rep.hdr.user.w1 = nic_.self().v;
      rep.hdr.route.ports.assign(pkt.in_ports.rbegin(), pkt.in_ports.rend());
      inject_probe(std::move(rep));
      return;
    }
    case PacketType::kProbeSwitch: {
      // A bounce probe only means something to its own sender.
      if (pkt.hdr.src != nic_.self()) return;
      auto it = inflight_.find(pkt.hdr.user.w0);
      if (it == inflight_.end() || it->second->replied) return;
      it->second->replied = true;
      it->second->replier = nic_.self();
      it->second->done.fire(sched);
      return;
    }
    case PacketType::kProbeReply: {
      ++stats_.probe_replies_rx;
      auto it = inflight_.find(pkt.hdr.user.w0);
      if (it == inflight_.end() || it->second->replied) return;
      it->second->replied = true;
      it->second->replier = HostId{static_cast<std::uint32_t>(pkt.hdr.user.w1)};
      it->second->done.fire(sched);
      return;
    }
    default:
      return;
  }
}

/// Send one probe of `type` down `route`, wait for reply or timeout,
/// retrying per config.
sim::Task<bool> OnDemandMapper::probe_and_wait_impl(PacketType type,
                                                    Route route,
                                                    HostId* replier) {
  auto& sched = nic_.sched();
  for (int attempt = 0; attempt <= cfg_.probe_retries; ++attempt) {
    ProbeWait w;
    w.nonce = next_nonce_++;
    inflight_[w.nonce] = &w;

    Packet pkt;
    pkt.hdr.type = type;
    pkt.hdr.src = nic_.self();
    pkt.hdr.route = route;
    pkt.hdr.user.w0 = w.nonce;
    if (type == PacketType::kProbeHost) {
      ++stats_.host_probes_tx;
    } else {
      ++stats_.switch_probes_tx;
    }
    inject_probe(std::move(pkt));

    const std::uint64_t nonce = w.nonce;
    sched.after(cfg_.probe_timeout, [this, nonce, &sched] {
      auto it = inflight_.find(nonce);
      if (it != inflight_.end() && !it->second->replied) {
        it->second->done.fire(sched);
      }
    });
    co_await w.done.wait(sched);
    inflight_.erase(w.nonce);
    if (w.replied) {
      if (replier != nullptr) *replier = w.replier;
      co_return true;
    }
    ++stats_.probe_timeouts;
  }
  co_return false;
}

sim::Task<std::optional<Route>> OnDemandMapper::bfs(HostId dst,
                                                    std::uint64_t* probes_used) {
  auto over_budget = [&] { return *probes_used >= cfg_.max_probes; };
  auto count_probe = [&] { ++*probes_used; };

  if (cfg_.cache_discovered_hosts) {
    auto it = host_cache_.find(dst);
    if (it != host_cache_.end()) co_return it->second;
  }

  // --- level -1: what hangs off our own cable? -----------------------------
  // NOTE: all probe routes below are built as named locals; GCC 12 miscompiles
  // braced aggregate temporaries inside co_await arguments ("array used as
  // initializer").
  if (!attach_port_) {
    // A direct host-to-host cable first.
    HostId replier;
    count_probe();
    Route empty_route;
    if (co_await probe_and_wait_impl(PacketType::kProbeHost, empty_route,
                                     &replier)) {
      if (cfg_.cache_discovered_hosts) host_cache_[replier] = Route{};
      if (replier == dst) co_return Route{};
      co_return std::nullopt;  // point-to-point cable; nothing else out there
    }
    // Otherwise find which port of the first crossbar we hang off: bounce
    // probes until one comes straight back.
    for (std::uint8_t y = 0; y < cfg_.max_ports; ++y) {
      if (over_budget()) co_return std::nullopt;
      count_probe();
      Route bounce;
      bounce.ports.push_back(y);
      if (co_await probe_and_wait_impl(PacketType::kProbeSwitch,
                                       std::move(bounce), nullptr)) {
        attach_port_ = y;
        break;
      }
    }
    if (!attach_port_) co_return std::nullopt;  // dead cable
  }

  // --- BFS over crossbars, level by level ----------------------------------
  std::vector<KnownSwitch> frontier{KnownSwitch{
      Route{}, {*attach_port_}, *attach_port_, radix_of(Route{})}};
  // Every switch discovered so far (crossbars have no identity; `known` is
  // what the duplicate-detection probes compare against).
  std::vector<KnownSwitch> known = frontier;

  for (std::size_t depth = 0; depth < cfg_.max_depth && !frontier.empty();
       ++depth) {
    // (a) Host-probe every unexplored port of every frontier switch. The
    // search stops the moment the destination answers, which is what makes
    // same-switch mappings host-probe-only (Table 3, row 1).
    struct SilentPort {
      std::size_t sw;
      std::uint8_t port;
    };
    std::vector<SilentPort> silent;
    for (std::size_t s = 0; s < frontier.size(); ++s) {
      const KnownSwitch& sw = frontier[s];
      for (std::uint8_t p = 0; p < sw.radix; ++p) {
        if (p == sw.entry_port) continue;
        if (over_budget()) co_return std::nullopt;
        Route hr = sw.forward;
        hr.ports.push_back(p);
        HostId replier;
        count_probe();
        if (co_await probe_and_wait_impl(PacketType::kProbeHost, hr, &replier)) {
          if (cfg_.cache_discovered_hosts &&
              !host_cache_.contains(replier)) {
            host_cache_[replier] = hr;
          }
          if (replier == dst) co_return hr;
        } else {
          silent.push_back({s, p});
        }
      }
    }

    // (b) Identify what sits behind each silent port.
    //
    // First, duplicate detection ("distinguishing new switches from old
    // ones", Table 3): if an already-known crossbar K is behind the port,
    // then routing through the port and down K's known way home brings the
    // probe back — one probe per comparison, no radix-sized guessing, and
    // redundant links / back-edges stop spawning re-exploration.
    //
    // Only genuinely new crossbars then pay the bounce-guessing of their
    // entry port (up to max_ports tries).
    std::vector<KnownSwitch> next;
    for (const SilentPort& sp : silent) {
      const KnownSwitch& sw = frontier[sp.sw];
      bool duplicate = false;
      for (const KnownSwitch& k : known) {
        if (over_budget()) co_return std::nullopt;
        Route vr = sw.forward;
        vr.ports.push_back(sp.port);
        vr.ports.insert(vr.ports.end(), k.reverse.begin(), k.reverse.end());
        count_probe();
        if (co_await probe_and_wait_impl(PacketType::kProbeSwitch, vr,
                                         nullptr)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      Route nf = sw.forward;
      nf.ports.push_back(sp.port);
      const std::uint8_t guess_bound = radix_of(nf);
      for (std::uint8_t y = 0; y < guess_bound; ++y) {
        if (over_budget()) co_return std::nullopt;
        Route br = sw.forward;
        br.ports.push_back(sp.port);
        br.ports.push_back(y);
        br.ports.insert(br.ports.end(), sw.reverse.begin(), sw.reverse.end());
        count_probe();
        if (co_await probe_and_wait_impl(PacketType::kProbeSwitch, br,
                                         nullptr)) {
          KnownSwitch ns;
          ns.forward = nf;
          ns.entry_port = y;
          ns.radix = guess_bound;
          ns.reverse.push_back(y);
          ns.reverse.insert(ns.reverse.end(), sw.reverse.begin(),
                            sw.reverse.end());
          known.push_back(ns);
          next.push_back(std::move(ns));
          break;
        }
      }
    }
    frontier = std::move(next);
  }
  co_return std::nullopt;
}

sim::Process OnDemandMapper::drive() {
  auto& sched = nic_.sched();
  while (!queue_.empty()) {
    PendingRequest req = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.mappings_started;

    // A request means any previously known route to dst is dead.
    host_cache_.erase(req.dst);

    const sim::Time t0 = sched.now();
    const std::uint64_t h0 = stats_.host_probes_tx;
    const std::uint64_t s0 = stats_.switch_probes_tx;
    std::uint64_t probes_used = 0;
    active_dst_ = req.dst;
    active_cbs_ = &req.cbs;
    std::optional<Route> result = co_await bfs(req.dst, &probes_used);
    active_dst_.reset();
    active_cbs_ = nullptr;

    stats_.last_mapping_time = sched.now() - t0;
    stats_.mapping_time_total += stats_.last_mapping_time;
    // Mapping runs are rare (permanent failures only), so the string build
    // and registry lookup are off any hot path.
    obs::Registry::of(sched)
        .histogram("mapper.mapping_time_ns{node=" +
                       std::to_string(nic_.self().v) + "}",
                   "ns")
        .record(static_cast<std::uint64_t>(stats_.last_mapping_time));
    stats_.last_host_probes = stats_.host_probes_tx - h0;
    stats_.last_switch_probes = stats_.switch_probes_tx - s0;
    if (result) {
      ++stats_.mappings_succeeded;
      if (cfg_.cache_discovered_hosts) host_cache_[req.dst] = *result;
    } else {
      ++stats_.mappings_failed;
    }
    for (auto& cb : req.cbs) cb(result);
  }
  mapping_active_ = false;
}

}  // namespace sanfault::firmware
