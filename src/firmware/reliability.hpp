// ReliableFirmware: the paper's firmware-level retransmission protocol (§4.1)
// plus the hooks for on-demand re-mapping (§4.2).
//
// Protocol summary (all of it implemented here, on the simulated NIC):
//  * go-back-N with per-remote-node sequence numbers and retransmission
//    queues; buffers move between the global free queue, the wire, and the
//    per-node retransmission queue — no copies;
//  * a single periodic retransmission timer per NIC scans all queues; a
//    queue whose oldest packet has been unacknowledged for one full interval
//    is retransmitted in order;
//  * cumulative ACKs (one ACK frees every buffer up to its sequence number),
//    no NACKs, no receiver buffering: out-of-order packets are dropped;
//  * piggy-backed ACKs on reverse data traffic, explicit ACKs only when the
//    sender's feedback bit requests one (AckPolicy) or the receiver's
//    coalesce safety valve trips;
//  * a path with `fail_threshold_rounds` consecutive fruitless
//    retransmission rounds is declared permanently failed: with a mapper
//    attached the route is invalidated and re-discovered on demand, the
//    sequence space restarts as a new generation, and pending packets are
//    renumbered and resent; without a mapper the node is marked unreachable
//    and pending packets are dropped (§4.2).
//
// Error injection (§5.1.3): `drop_plan` reproduces the paper's methodology —
// every Nth data packet is moved to the retransmission queue without ever
// touching the wire.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "firmware/ack_policy.hpp"
#include "firmware/channel.hpp"
#include "firmware/mapper.hpp"
#include "firmware/route_table.hpp"
#include "nic/nic.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace sanfault::firmware {

struct ReliabilityConfig {
  /// The retransmission timer interval (Table 1 sweeps 10 us .. 1 s).
  sim::Duration retrans_interval = sim::milliseconds(1);
  /// The paper's transient/permanent threshold: a path with no successful
  /// delivery for this long — and at least `fail_min_rounds` go-back-N
  /// rounds attempted — is declared permanently failed. The default is
  /// deliberately conservative: even a 30% transient loss rate with a 10 ms
  /// timer virtually never produces 8 fruitless rounds spanning 200 ms.
  sim::Duration fail_threshold = sim::milliseconds(200);
  std::uint32_t fail_min_rounds = 8;
  AckPolicyConfig ack;
  /// Paper §5.1.3: drop every Nth data packet on the send side, before wire
  /// injection (0 = no injected errors). The dropped packet sits in the
  /// retransmission queue until the timer recovers it. The first drop is
  /// exactly at the Nth injection; later gaps are jittered +-25% (seeded,
  /// deterministic) so the drop pattern cannot phase-lock with go-back-N
  /// rounds — a strictly periodic pattern can re-drop the same sequence
  /// number forever when the queue length is a multiple of N.
  std::uint64_t drop_interval = 0;
  std::uint64_t drop_seed = 0x5eedull;
  /// Ablation (the paper explicitly skipped bursty errors): each drop event
  /// discards this many consecutive data packets (1 = the paper's uniform
  /// scheme). The long-run drop *rate* stays drop_burst/drop_interval.
  std::uint32_t drop_burst = 1;
  /// Ablation: cap on packets re-sent per go-back-N round (0 = whole queue,
  /// the paper's scheme). 1 approximates stop-and-wait recovery; the paper
  /// attributes Figure 8's q128 collapse to the absence of selective
  /// retransmission, which this knob lets you quantify.
  std::uint32_t retransmit_window = 0;
  /// Self-stabilization scrubber (Dolev et al., docs/CHAOS.md): run a state
  /// sanity pass over every channel each `scrub_every` retransmission-timer
  /// fires (0 disables periodic scrubbing; the always-on per-packet guards
  /// remain). The pass checks bounded-capacity invariants — queue sequence
  /// numbers strictly consecutive, queue generation uniform, next_seq
  /// anchored at back()+1 and never 0 — and repairs violations with a forced
  /// generation restart (the §4.2 renumber-and-resend machinery).
  std::uint32_t scrub_every = 4;
  /// Receiver-side generation wraparound handling: after this many
  /// consecutive stale-generation drops with no accepted packet, adopt the
  /// incoming packet's generation (a corrupted local generation running
  /// "ahead" of the sender is otherwise indistinguishable from stale wire
  /// traffic and would deadlock the channel for up to 2^15 restarts).
  /// 0 disables adoption.
  std::uint32_t scrub_stale_adopt_threshold = 64;
  /// After this many consecutive dirty scrub passes on one channel the
  /// scrubber concludes local repair is not converging and escalates to
  /// nic_reset (last resort; 0 = never escalate).
  std::uint32_t scrub_strike_limit = 3;
};

struct ReliabilityStats {
  std::uint64_t data_tx = 0;             // first transmissions
  std::uint64_t retransmissions = 0;     // packets re-injected
  std::uint64_t retrans_rounds = 0;      // go-back-N rounds
  std::uint64_t injected_drops = 0;      // §5.1.3 simulated errors
  std::uint64_t data_rx_in_order = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t ooo_drops = 0;
  std::uint64_t stale_gen_drops = 0;
  std::uint64_t corrupt_drops = 0;
  std::uint64_t acks_explicit_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t ack_advances = 0;        // cumulative ACKs that freed >=1 pkt
  std::uint64_t timer_fires = 0;
  std::uint64_t path_failures = 0;
  std::uint64_t remap_requests = 0;
  std::uint64_t generation_restarts = 0; // successful remaps (new seq space)
  std::uint64_t unreachable_drops = 0;   // packets discarded, no path
  std::uint64_t no_route_drops = 0;      // no route and no mapper attached
  std::uint64_t nic_resets = 0;          // chaos-injected firmware restarts
  std::uint64_t peer_exclusions = 0;     // membership-driven exclusions
  // Self-stabilization scrubber (docs/CHAOS.md "State corruption").
  std::uint64_t scrub_passes = 0;        // periodic/forced sanity passes
  std::uint64_t scrub_tx_repairs = 0;    // tx invariant violations repaired
  std::uint64_t scrub_rx_repairs = 0;    // rx invariant violations repaired
  std::uint64_t scrub_gen_adoptions = 0; // stale-run generation adoptions
  std::uint64_t scrub_bogus_acks = 0;    // acks beyond next_seq-1 rejected
  std::uint64_t scrub_resets = 0;        // strike-limit nic_reset escalations
  std::uint64_t misroute_drops = 0;      // data/ack landed on the wrong host
};

/// A protocol-level recovery transition, published synchronously to an
/// optional observer (ReliableFirmware::set_event_hook). The chaos layer's
/// RecoveryMonitor consumes these to measure remap convergence and to prove
/// sequence generations never regress; the packet-lifecycle trace ring
/// records the same transitions for offline debugging.
struct FwEvent {
  enum class Kind : std::uint8_t {
    kPathFail,    // path declared permanently failed
    kRemapStart,  // on-demand mapping requested
    kRemapDone,   // mapping finished (ok = route found)
    kGenRestart,  // sequence space restarted under generation `gen`
    kNicReset,    // firmware restarted; route cache lost
    kPeerExcluded,  // membership confirmed the peer dead; channel flushed
    kScrubRepair,   // state-sanity scrubber repaired corrupted channel state
  };
  Kind kind;
  net::HostId self;  // the NIC observing the transition
  net::HostId peer;  // the remote node of the affected channel
  std::uint16_t gen = 0;
  bool ok = false;         // kRemapDone only
  std::uint32_t pending = 0;  // queued packets affected, where meaningful
  /// kRemapStart/kRemapDone/kGenRestart: this remap was served by a
  /// proactive backup-path promotion (MapperIface::on_path_failure returned
  /// true) — no probe storm ran. RecoveryMonitor splits TTFR by this bit.
  bool promoted = false;
};

class ReliableFirmware final : public nic::FirmwareIface {
 public:
  explicit ReliableFirmware(nic::Nic& nic, ReliabilityConfig cfg = {});
  ~ReliableFirmware() override;

  [[nodiscard]] RouteTable& routes() { return routes_; }
  [[nodiscard]] const ReliabilityStats& stats() const { return stats_; }
  [[nodiscard]] const ReliabilityConfig& config() const { return cfg_; }

  void set_mapper(MapperIface* mapper) { mapper_ = mapper; }

  /// Observe recovery transitions (path failure, remap, generation restart).
  /// One hook per firmware; called synchronously at the transition instant.
  using EventHook = std::function<void(const FwEvent&)>;
  void set_event_hook(EventHook hook) { event_hook_ = std::move(hook); }

  /// Chaos primitive: model a firmware/NIC reset that loses the volatile
  /// route cache. Every known route is dropped and each channel with pending
  /// traffic immediately re-enters on-demand mapping (generation restart on
  /// success), so in-flight work survives the reset via the §4.2 machinery.
  /// Without a mapper the routes simply vanish; later sends are no-route
  /// drops, as a statically-mapped network would behave.
  void nic_reset();

  /// Proactive exclusion: cluster membership (SWIM, src/membership) has
  /// confirmed `peer` dead, typically well before this NIC's own no-progress
  /// threshold would fire. Invalidates the route and the mapper's cached
  /// path, drops pending traffic (freeing its send buffers) and marks the
  /// channel unreachable so nothing further is retried against the corpse.
  /// Idempotent: repeat calls — and calls racing the local failure detector —
  /// are no-ops once the channel is already down.
  void exclude_peer(net::HostId peer);

  /// Introspection for tests: sender/receiver channel state toward `h`.
  [[nodiscard]] const TxChannel* tx_channel(net::HostId h) const;
  [[nodiscard]] const RxChannel* rx_channel(net::HostId h) const;

  /// Run one state-sanity scrub pass immediately (the periodic scrubber
  /// calls the same routine every scrub_every timer fires). Repairs are
  /// published as kScrubRepair events and counted in scrub_* stats.
  void scrub_now();

  // --- chaos mutation API (src/chaos/corruptor.hpp) ------------------------
  // The ONLY sanctioned way to mutate live protocol state from outside the
  // protocol: the StateCorruptor uses these to model in-SRAM state corruption
  // (docs/CHAOS.md "State corruption"). They expose *existing* channels
  // mutably and never create state, so a corruption campaign cannot
  // accidentally widen the protocol's reachable-state space — it can only
  // garble what is genuinely live. Every mutation made through these is
  // logged in the chaos event log by the corruptor.
  [[nodiscard]] TxChannel* chaos_tx_channel(net::HostId h);
  [[nodiscard]] RxChannel* chaos_rx_channel(net::HostId h);
  /// Peers with live channel state, in deterministic (ordered-map) order.
  [[nodiscard]] std::vector<net::HostId> chaos_tx_peers() const;
  [[nodiscard]] std::vector<net::HostId> chaos_rx_peers() const;

  // --- FirmwareIface -------------------------------------------------------
  void on_host_packet(nic::SendRequest req) override;
  void on_wire_packet(net::Packet pkt, bool crc_ok) override;
  [[nodiscard]] sim::Duration tx_cpu_cost(const nic::SendRequest&) const override;
  [[nodiscard]] sim::Duration rx_cpu_cost(const net::Packet&) const override;

 private:
  TxChannel& tx(net::HostId h) { return tx_[h]; }
  RxChannel& rx(net::HostId h) { return rx_[h]; }

  void arm_timer();
  void on_timer();
  void retransmit_channel(net::HostId h, TxChannel& ch);
  /// Executes one queued retransmission on the control processor; looks the
  /// packet up by (generation, seq) since it may have been acked meanwhile.
  void retransmit_one(net::HostId h, std::uint16_t gen, std::uint32_t seq,
                      bool is_last);
  void process_ack(net::HostId from, std::uint32_t ack, std::uint16_t ack_gen);
  /// `reverse_hint`: route derived from the triggering packet's recorded
  /// trace, usable when no table route to `to` exists (symmetric fabric).
  void send_explicit_ack(net::HostId to,
                         std::optional<net::Route> reverse_hint = std::nullopt);
  void handle_data(net::Packet pkt);
  void declare_path_failure(net::HostId h, TxChannel& ch);
  void begin_remap(net::HostId h, TxChannel& ch);
  void finish_remap(net::HostId h, std::optional<net::Route> route);
  void drop_pending(net::HostId h, TxChannel& ch);
  /// One scrub pass over every channel (scrub_now / the periodic scrubber).
  void scrub_pass();
  /// Repair a tx channel whose bounded-capacity invariants failed: forced
  /// generation restart (renumber + resend, the finish_remap machinery) or,
  /// past the strike limit, a nic_reset escalation. Returns true when the
  /// repair escalated to nic_reset (the caller's channel iteration must
  /// stop — every channel was just re-entered into remapping).
  bool repair_tx(net::HostId h, TxChannel& ch);
  /// Send one queued packet to the wire (or count an injected drop).
  void put_on_wire(net::HostId h, QueuedPacket& qp, bool is_retransmit);
  /// §5.1.3 drop-plan decision for the next data injection.
  bool should_drop_now();

  /// Register this firmware's metrics + collector with the simulation's
  /// observability registry (src/obs); see docs/OBSERVABILITY.md.
  void register_metrics();
  /// Lifecycle trace event derived from a packet header. The enabled() check
  /// comes first so a disabled trace costs one predictable branch per emit
  /// site — the TraceEvent is never materialized (this is on the per-packet
  /// fast path: every data packet emits 2-3 of these).
  void trace_pkt(obs::TraceKind kind, const net::Packet& pkt,
                 std::uint32_t arg = 0) {
    if (!trace_->enabled()) return;
    trace_->emit(obs::TraceEvent{nic_.sched().now(), pkt.hdr.src.v,
                                 pkt.hdr.dst.v, pkt.hdr.seq, arg,
                                 pkt.hdr.generation,
                                 static_cast<std::uint16_t>(nic_.self().v),
                                 kind});
  }
  /// Lifecycle trace event for channel-level transitions (remap, timer...).
  void trace_ch(obs::TraceKind kind, net::HostId peer, std::uint32_t seq,
                std::uint16_t gen, std::uint32_t arg = 0);

  nic::Nic& nic_;
  ReliabilityConfig cfg_;
  AckPolicy policy_;
  RouteTable routes_;
  MapperIface* mapper_ = nullptr;
  EventHook event_hook_;
  // std::map: the timer scan iterates these; ordered maps keep the scan
  // order (and thus every simulation) deterministic.
  std::map<net::HostId, TxChannel> tx_;
  std::map<net::HostId, RxChannel> rx_;
  ReliabilityStats stats_;
  std::uint32_t scrub_countdown_ = 0;  // timer fires until the next scrub
  std::uint64_t next_drop_in_ = 0;  // §5.1.3 countdown to the next drop
  std::uint32_t burst_left_ = 0;    // remaining drops of the current burst
  sim::Rng drop_rng_;

  // Observability (src/obs): cached handles into the per-simulation registry.
  obs::Registry* obs_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;  // retrans-queue depth at enqueue
  obs::Histogram* remap_latency_ = nullptr;  // request_route -> answer, ns
  obs::Gauge* free_bufs_ = nullptr;        // send-buffer feedback signal

  void publish(const FwEvent& ev) {
    if (event_hook_) event_hook_(ev);
  }
};

}  // namespace sanfault::firmware
