// Sender-based acknowledgment feedback (§4.1.2, third optimization).
//
// Each outgoing data packet carries a bit telling the receiver whether to
// acknowledge immediately. The sender chooses the request frequency from its
// own free-buffer level, so the trade-off between buffer pressure and ACK
// traffic is controlled where the pressure is felt:
//   * scarce buffers  -> request an ACK on every packet,
//   * moderate        -> request every ~q/8 packets,
//   * plentiful       -> request every ~q/2 packets.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace sanfault::firmware {

struct AckPolicyConfig {
  /// Below this fraction of free send buffers, ACK every packet.
  double low_watermark = 0.25;
  /// Below this fraction, ACK every q/8 packets; above, every q/2.
  double high_watermark = 0.75;
  /// Receiver-side safety valve: force an explicit ACK after this many
  /// unacknowledged in-order packets even if never requested.
  std::uint32_t receiver_coalesce_max = 64;
};

class AckPolicy {
 public:
  explicit AckPolicy(AckPolicyConfig cfg = {}) : cfg_(cfg) {}

  /// Decide the ACK-request bit for the next data packet, given current pool
  /// state. `since_last_request` is per-destination-channel.
  [[nodiscard]] bool should_request(std::size_t free_buffers,
                                    std::size_t capacity,
                                    std::uint32_t since_last_request) const {
    const auto cap = static_cast<double>(capacity);
    const double free_frac =
        capacity == 0 ? 0.0 : static_cast<double>(free_buffers) / cap;
    std::size_t interval;
    if (free_frac < cfg_.low_watermark) {
      interval = 1;
    } else if (free_frac < cfg_.high_watermark) {
      interval = std::max<std::size_t>(1, capacity / 8);
    } else {
      interval = std::max<std::size_t>(1, capacity / 2);
    }
    return since_last_request + 1 >= interval;
  }

  [[nodiscard]] const AckPolicyConfig& config() const { return cfg_; }

 private:
  AckPolicyConfig cfg_;
};

}  // namespace sanfault::firmware
