#include "firmware/updown.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace sanfault::firmware {

using net::Device;
using net::HostId;
using net::LinkId;
using net::Port;
using net::Route;

UpDownRouting::UpDownRouting(const net::Topology& topo) : topo_(&topo) {
  switch_level_.assign(topo.num_switches(), -1);
  if (topo.num_switches() == 0) return;

  // Root: the lowest-indexed live switch (Autonet picks by unique id; our
  // switch creation order serves as the id).
  std::uint32_t root = 0;
  while (root < topo.num_switches() && !topo.switch_up(net::SwitchId{root})) {
    ++root;
  }
  if (root >= topo.num_switches()) return;

  std::deque<std::uint32_t> frontier{root};
  switch_level_[root] = 0;
  while (!frontier.empty()) {
    const std::uint32_t s = frontier.front();
    frontier.pop_front();
    const Device dev = Device::sw(net::SwitchId{s});
    for (std::uint8_t p = 0; p < topo.switch_ports(net::SwitchId{s}); ++p) {
      auto att = topo.peer_of(Port{dev, p});
      if (!att || !topo.link_up(att->link)) continue;
      if (!att->peer.dev.is_switch()) continue;
      const std::uint32_t n = att->peer.dev.index;
      if (!topo.switch_up(net::SwitchId{n}) || switch_level_[n] >= 0) continue;
      switch_level_[n] = switch_level_[s] + 1;
      frontier.push_back(n);
    }
  }
}

int UpDownRouting::level(Device d) const {
  if (d.is_switch()) return switch_level_[d.index];
  // A host sits one level below its switch (or below a direct-cable peer).
  auto att = topo_->peer_of(Port{d, 0});
  if (!att) return -1;
  if (att->peer.dev.is_switch()) {
    const int l = switch_level_[att->peer.dev.index];
    return l < 0 ? -1 : l + 1;
  }
  return 1;  // host-to-host cable: arbitrary but consistent
}

bool UpDownRouting::is_up(LinkId link, Device from) const {
  auto [a, b] = topo_->link_ends(link);
  const Device to = (a.dev == from) ? b.dev : a.dev;
  const int lf = level(from);
  const int lt = level(to);
  if (lt != lf) return lt < lf;  // toward the root = up
  // Tie: lower (kind, index) wins as "higher" end, matching Autonet's
  // unique-id tie-break.
  return to < from;
}

std::optional<Route> UpDownRouting::route(HostId from, HostId to) const {
  if (from == to) return Route{};
  const Device start = Device::host(from);
  const Device goal = Device::host(to);

  // BFS over (device, phase): phase 0 = still allowed to go up, phase 1 =
  // committed to down-links only.
  struct State {
    Device dev;
    int phase;
    auto operator<=>(const State&) const = default;
  };
  struct Crumb {
    State prev;
    LinkId via;
  };
  std::map<State, Crumb> visited;
  std::deque<State> frontier;

  auto start_att = topo_->peer_of(Port{start, 0});
  if (!start_att || !topo_->link_up(start_att->link)) return std::nullopt;
  // Leaving the source host: hosts are leaves, so this first hop is "up".
  const State s0{start_att->peer.dev, 0};
  if (s0.dev == goal) return Route{};  // direct cable
  visited[s0] = Crumb{State{start, 0}, start_att->link};
  frontier.push_back(s0);

  std::optional<State> goal_state;
  while (!frontier.empty() && !goal_state) {
    const State st = frontier.front();
    frontier.pop_front();
    if (!st.dev.is_switch()) continue;
    const auto sw = st.dev.as_switch();
    if (!topo_->switch_up(sw)) continue;
    for (std::uint8_t p = 0; p < topo_->switch_ports(sw) && !goal_state; ++p) {
      auto att = topo_->peer_of(Port{st.dev, p});
      if (!att || !topo_->link_up(att->link)) continue;
      const Device nbr = att->peer.dev;
      if (nbr.is_switch() && !topo_->switch_up(nbr.as_switch())) continue;

      const bool up = is_up(att->link, st.dev);
      int nphase;
      if (up) {
        if (st.phase == 1) continue;  // down-committed: no more up-links
        nphase = 0;
      } else {
        nphase = 1;
      }
      const State ns{nbr, nphase};
      if (visited.contains(ns)) continue;
      visited[ns] = Crumb{st, att->link};
      if (nbr == goal) {
        goal_state = ns;
        break;
      }
      if (nbr.is_switch()) frontier.push_back(ns);
    }
  }
  if (!goal_state) return std::nullopt;

  Route route;
  State cur = *goal_state;
  while (cur.dev != start) {
    const Crumb& c = visited.at(cur);
    if (c.prev.dev.is_switch()) {
      auto [a, b] = topo_->link_ends(c.via);
      const Port out = (a.dev == c.prev.dev) ? a : b;
      route.ports.push_back(out.port);
    }
    cur = c.prev;
    if (cur.dev == start) break;
    if (!visited.contains(cur)) break;  // reached s0 whose prev is start
  }
  std::reverse(route.ports.begin(), route.ports.end());
  return route;
}

}  // namespace sanfault::firmware
