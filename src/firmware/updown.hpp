// UP*/DOWN* deadlock-free routing (Autonet / Myrinet mapper algorithm).
//
// The classical full-map baseline the paper compares against conceptually:
// build a BFS spanning tree over the switches, orient every link "up" toward
// the root (ties broken by device id), and restrict legal routes to zero or
// more up-links followed by zero or more down-links. Such routes cannot form
// a cycle of waiting packets, hence no deadlock — at the cost of generally
// non-minimal paths and a mapping process that must see the whole fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ids.hpp"
#include "net/route.hpp"
#include "net/topology.hpp"

namespace sanfault::firmware {

class UpDownRouting {
 public:
  /// Computes levels and link orientations over the *currently up* part of
  /// the fabric. Recompute after any topology change.
  explicit UpDownRouting(const net::Topology& topo);

  /// Legal (up*-then-down*) route from one host to another, shortest among
  /// legal ones. nullopt if none exists.
  [[nodiscard]] std::optional<net::Route> route(net::HostId from,
                                                net::HostId to) const;

  /// True if traversing `link` away from `from` goes "up" (toward the root).
  [[nodiscard]] bool is_up(net::LinkId link, net::Device from) const;

  /// BFS level of a device (root switch = 0); hosts sit below their switch.
  [[nodiscard]] int level(net::Device d) const;

 private:
  const net::Topology* topo_;
  std::vector<int> switch_level_;  // -1 = unreachable/dead
};

}  // namespace sanfault::firmware
