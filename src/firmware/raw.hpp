// RawFirmware: the "No Fault Tolerance" baseline MCP.
//
// Unreliable delivery exactly as base VMMC provides it: packets are injected
// with no sequence numbers, the send buffer is recycled the moment the packet
// is on the wire, corrupt packets are silently discarded at the receiver, and
// lost packets are simply lost. Every paper figure's "No Fault Tolerance"
// series runs on this firmware.
#pragma once

#include <cstdint>

#include "firmware/route_table.hpp"
#include "nic/nic.hpp"

namespace sanfault::firmware {

struct RawStats {
  std::uint64_t data_tx = 0;
  std::uint64_t delivered = 0;
  std::uint64_t corrupt_dropped = 0;
  std::uint64_t no_route_dropped = 0;
};

class RawFirmware final : public nic::FirmwareIface {
 public:
  explicit RawFirmware(nic::Nic& nic) : nic_(nic) {
    nic_.load_firmware(this);
  }

  [[nodiscard]] RouteTable& routes() { return routes_; }
  [[nodiscard]] const RawStats& stats() const { return stats_; }

  void on_host_packet(nic::SendRequest req) override {
    const auto route = routes_.get(req.dst);
    if (!route) {
      ++stats_.no_route_dropped;
      nic_.release_send_buffers();
      return;
    }
    net::Packet pkt;
    pkt.hdr.src = nic_.self();
    pkt.hdr.dst = req.dst;
    pkt.hdr.type = req.type;
    pkt.hdr.route = *route;
    pkt.hdr.user = req.user;
    pkt.payload = std::move(req.payload);
    ++stats_.data_tx;
    nic_.inject(std::move(pkt));
    // Unreliable: the buffer returns to the free queue immediately.
    nic_.release_send_buffers();
  }

  void on_wire_packet(net::Packet pkt, bool crc_ok) override {
    if (!crc_ok) {
      ++stats_.corrupt_dropped;
      return;
    }
    ++stats_.delivered;
    nic_.deliver_to_host(std::move(pkt));
  }

  [[nodiscard]] sim::Duration tx_cpu_cost(const nic::SendRequest&) const override {
    return nic_.costs().mcp_tx;
  }
  [[nodiscard]] sim::Duration rx_cpu_cost(const net::Packet&) const override {
    return nic_.costs().mcp_rx;
  }

 private:
  nic::Nic& nic_;
  RouteTable routes_;
  RawStats stats_;
};

}  // namespace sanfault::firmware
