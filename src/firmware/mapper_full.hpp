// FullMapper: the full-network-mapping baseline (§2, [6][28][22]).
//
// Models the conventional scheme the paper argues against: when a route is
// needed after a failure, the *entire* fabric is re-probed (breadth-first
// over every switch port), a spanning tree is formed, and deadlock-free
// UP*/DOWN* routes are computed for all pairs. The probe traffic and time are
// charged against the simulated clock; the resulting routes come from the
// real UpDownRouting computation over the live topology.
//
// Requests that arrive while a remap is running are served from that remap
// when it completes (batching), which is the best case for this baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "firmware/mapper.hpp"
#include "firmware/updown.hpp"
#include "nic/nic.hpp"
#include "sim/time.hpp"

namespace sanfault::firmware {

struct FullMapperConfig {
  /// Average cost of one mapping probe exchange (send + reply/timeout).
  sim::Duration per_probe_time = sim::microseconds(150);
  /// Per-pair UP*/DOWN* route computation cost on the mapping host.
  sim::Duration per_route_compute = sim::microseconds(5);
};

struct FullMapperStats {
  std::uint64_t full_maps = 0;
  std::uint64_t modeled_probes = 0;
  sim::Duration map_time_total = 0;
  sim::Duration last_map_time = 0;
  std::uint64_t routes_served = 0;
  std::uint64_t routes_unavailable = 0;
};

class FullMapper final : public MapperIface {
 public:
  FullMapper(nic::Nic& nic, const net::Topology& topo,
             FullMapperConfig cfg = {});

  void request_route(net::HostId dst, RouteCallback cb) override;
  /// The full mapper's probes are abstracted into the time model; stray
  /// probe packets (from on-demand peers) are ignored.
  void on_probe_packet(net::Packet) override {}

  [[nodiscard]] const FullMapperStats& stats() const { return stats_; }

  /// Number of probes a full BFS map of the current fabric costs.
  [[nodiscard]] std::uint64_t probes_for_full_map() const;

 private:
  void start_remap();
  void finish_remap();

  nic::Nic& nic_;
  const net::Topology* topo_;
  FullMapperConfig cfg_;
  FullMapperStats stats_;
  std::unique_ptr<UpDownRouting> routing_;
  bool remap_running_ = false;
  std::vector<std::pair<net::HostId, RouteCallback>> waiting_;
};

}  // namespace sanfault::firmware
