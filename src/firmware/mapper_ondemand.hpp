// On-demand network mapper (§4.2): the paper's second contribution.
//
// Instead of computing full network maps and deadlock-free UP*/DOWN* routes,
// each NIC lazily BFS-probes the fabric only when it needs a route — at first
// contact with a node, or after the reliability protocol declares a path
// permanently failed. The discovered routes are shortest paths and are *not*
// deadlock-free; deadlock recovery is the retransmission protocol's job.
//
// Probe vocabulary (Table 3's two columns):
//  * host probe   — a kProbeHost packet source-routed down a candidate path;
//    if a host sits at its end, that host's mapper replies along the reverse
//    route. No reply within probe_timeout => no host there.
//  * switch probe — a loop-back (bounce) kProbeSwitch packet: route
//    prefix + [port-under-test, guessed-return-port] + known-way-home. It
//    returns to the prober iff a crossbar sits behind the port and the guess
//    hit the port the packet entered through. Myrinet switches have no
//    identity, so discovering one costs up to radix guesses.
//
// The BFS explores level-by-level and *stops as soon as the destination
// answers*, which is why mapping a same-switch neighbor needs host probes
// only (Table 3, row 1). Probes bypass the send-buffer pool and the
// reliability channels entirely (they are firmware-internal traffic).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "firmware/mapper.hpp"
#include "nic/nic.hpp"
#include "sim/awaitables.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"

namespace sanfault::firmware {

struct OnDemandMapperConfig {
  /// How long to wait for a probe reply before concluding "nothing there".
  sim::Duration probe_timeout = sim::microseconds(300);
  /// Extra attempts per probe (probes themselves can be lost to faults).
  int probe_retries = 1;
  /// Upper bound on crossbar radix: ports 0..max_ports-1 are candidates
  /// when the radix of a discovered switch is unknown.
  std::uint8_t max_ports = 16;
  /// Optional "the operator knows the switch models" knowledge: when set,
  /// the mapper reads the actual radix of a discovered crossbar from the
  /// topology instead of probing max_ports ports on every switch. This is
  /// how deployed Myrinet mappers behaved (switch types were configured);
  /// emptiness of in-radix ports is still discovered by probing.
  const net::Topology* radix_oracle = nullptr;
  /// BFS depth bound (switches traversed). Redundant fabrics make switches
  /// re-discoverable through parallel paths — switches have no identity — so
  /// the search must be bounded to terminate on cyclic topologies.
  std::size_t max_depth = 6;
  /// Hard cap on probes per mapping (runaway guard on unreachable targets;
  /// exhausting it fails the mapping and bumps probe_budget_exhausted).
  std::size_t max_probes = 4096;
  /// Also cache hosts discovered *in passing* while mapping some other
  /// destination (the requested destination is always cached while
  /// path_cache_capacity > 0). Entries live in an LRU path cache; the
  /// reliability layer invalidates a destination's entry on path failure
  /// (MapperIface::on_path_failure), so later requests for an unaffected
  /// destination are served without probing.
  bool cache_discovered_hosts = true;
  /// Capacity of the per-destination path cache (0 disables caching; large
  /// fabrics at default capacity never evict — evictions show up in
  /// mapper.path_cache_evictions when they do).
  std::size_t path_cache_capacity = 1024;
  /// Deterministic multipath: instead of returning the first shortest route
  /// the BFS finds, finish probing the destination's BFS level, collect the
  /// equal-cost routes, and pick one with an Rng seeded from
  /// (multipath_salt, self, dst) — stable across runs and across --jobs
  /// orderings. Off by default (Table 3's probe counts assume first-answer
  /// termination).
  bool multipath = false;
  std::uint64_t multipath_salt = 0x5ca1ab1e;
  /// Operator-configured fabric database: resolve duplicate-detection
  /// verdicts from the radix_oracle *without* emitting the comparison probes.
  /// Dup probes dominate BFS traffic on large fabrics (§4.2's
  /// "distinguishing new switches from old ones" grows with the number of
  /// known switches), so configured deployments shortcut them. Off by
  /// default: Table 3's methodology counts that traffic. Requires
  /// radix_oracle; ignored without it.
  bool configured_identity = false;
};

struct OnDemandMapperStats {
  std::uint64_t mappings_started = 0;
  std::uint64_t mappings_succeeded = 0;
  std::uint64_t mappings_failed = 0;
  std::uint64_t host_probes_tx = 0;
  std::uint64_t switch_probes_tx = 0;
  std::uint64_t probe_replies_tx = 0;   // this NIC answering others' probes
  std::uint64_t probe_replies_rx = 0;
  std::uint64_t probe_timeouts = 0;
  /// Total simulated time spent inside mapping runs.
  sim::Duration mapping_time_total = 0;
  /// Duration and probe counts of the most recent completed mapping.
  sim::Duration last_mapping_time = 0;
  std::uint64_t last_host_probes = 0;
  std::uint64_t last_switch_probes = 0;
  /// Path-cache behavior (docs/OBSERVABILITY.md `mapper.*` scale metrics).
  std::uint64_t path_cache_hits = 0;
  std::uint64_t path_cache_evictions = 0;
  std::uint64_t path_cache_invalidations = 0;
  /// Mappings aborted because max_probes ran out.
  std::uint64_t probe_budget_exhausted = 0;
  /// Equal-cost candidate routes considered by multipath selection (summed).
  std::uint64_t multipath_candidates = 0;
};

class OnDemandMapper final : public MapperIface {
 public:
  OnDemandMapper(nic::Nic& nic, OnDemandMapperConfig cfg = {});
  ~OnDemandMapper() override;

  // --- MapperIface ---------------------------------------------------------
  void request_route(net::HostId dst, RouteCallback cb) override;
  void on_probe_packet(net::Packet pkt) override;
  /// Idempotent: invalidates the cached path once, no matter how many
  /// reporters converge on the same dead destination (the local no-progress
  /// detector and a membership exclusion often race). If a mapping for `dst`
  /// is in flight, its eventual result is also kept out of the cache — the
  /// discovery raced the failure, so the route it found may already be dead.
  void on_path_failure(net::HostId dst) override;
  void on_nic_reset() override { flush_cache(); }

  [[nodiscard]] const OnDemandMapperStats& stats() const { return stats_; }

  /// Drop the cached route to one destination (its path just failed); the
  /// next request for it re-probes while other cached paths stay warm.
  void invalidate_path(net::HostId dst);

  /// Drop all cached discovery state (e.g. the operator knows the fabric
  /// changed wholesale).
  void flush_cache();

 private:
  /// A discovered crossbar: how to reach it and how its packets reach us.
  struct KnownSwitch {
    net::Route forward;                  // bytes from us to (into) the switch
    std::vector<std::uint8_t> reverse;   // bytes from the switch back to us
    std::uint8_t entry_port = 0;         // port we enter it through
    std::uint8_t radix = 16;             // ports to probe on it
    /// Equal-length alternative forwards (multipath only; capped).
    std::vector<net::Route> alt_forwards;
  };

  /// LRU map destination -> discovered route. Deterministic: ordering is the
  /// explicit recency list, never unordered_map iteration.
  class PathCache {
   public:
    explicit PathCache(std::size_t cap) : cap_(cap) {}
    /// Touches the entry (most-recently-used) and returns it, or nullptr.
    const net::Route* get(net::HostId h);
    void put(net::HostId h, net::Route r, std::uint64_t* evictions);
    bool erase(net::HostId h);
    [[nodiscard]] bool contains(net::HostId h) const {
      return idx_.contains(h);
    }
    void clear();

   private:
    using Entry = std::pair<net::HostId, net::Route>;
    std::size_t cap_;
    std::list<Entry> lru_;  // front = most recently used
    std::unordered_map<net::HostId, std::list<Entry>::iterator> idx_;
  };

  /// Radix of the crossbar at the end of `forward` (oracle or max_ports).
  [[nodiscard]] std::uint8_t radix_of(const net::Route& forward) const;

  struct PendingRequest {
    net::HostId dst;
    std::vector<RouteCallback> cbs;
  };

  /// One probe in flight; replies are matched by nonce.
  struct ProbeWait {
    std::uint64_t nonce = 0;
    bool replied = false;
    net::HostId replier;
    sim::Trigger done;
  };

  /// Drains the request queue, one BFS at a time (FIFO).
  sim::Process drive();

  /// Core BFS for one destination; counts probes against the budget.
  sim::Task<std::optional<net::Route>> bfs(net::HostId dst,
                                           std::uint64_t* probes_used);

  /// Send one probe and await reply-or-timeout (with retries). Returns true
  /// on reply; for host probes *replier is set to the answering host.
  sim::Task<bool> probe_and_wait_impl(net::PacketType type, net::Route route,
                                      net::HostId* replier);

  void inject_probe(net::Packet pkt);

  nic::Nic& nic_;
  OnDemandMapperConfig cfg_;
  OnDemandMapperStats stats_;

  std::deque<PendingRequest> queue_;
  bool mapping_active_ = false;
  /// Destination of the BFS currently in flight (for request merging).
  std::optional<net::HostId> active_dst_;
  std::vector<RouteCallback>* active_cbs_ = nullptr;
  /// Set when on_path_failure hits the in-flight destination: the result of
  /// the current BFS must not be cached (it may be the failed path).
  bool active_invalidated_ = false;

  /// Nonce -> in-flight probe bookkeeping.
  std::unordered_map<std::uint64_t, ProbeWait*> inflight_;
  std::uint64_t next_nonce_ = 1;

  /// Cached: port of our first-hop switch we attach to (rediscovered when a
  /// mapping that relied on it fails at level 0).
  std::optional<std::uint8_t> attach_port_;
  /// Hosts discovered during any mapping (LRU; see path_cache_capacity).
  PathCache path_cache_;
};

}  // namespace sanfault::firmware
